package lfs_test

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"lfs"
)

// TestPublicAPIRoundTrip exercises the façade end to end: format,
// mount, file operations, unmount, remount.
func TestPublicAPIRoundTrip(t *testing.T) {
	d := lfs.NewMemDisk(64 << 20)
	cfg := lfs.DefaultConfig()
	if err := lfs.Format(d, cfg); err != nil {
		t.Fatal(err)
	}
	fs, err := lfs.Mount(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/data"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("/data/f"); err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte("abc"), 5000)
	if err := fs.Write("/data/f", 0, want); err != nil {
		t.Fatal(err)
	}
	if err := fs.Unmount(); err != nil {
		t.Fatal(err)
	}

	fs2, err := lfs.Mount(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	n, err := fs2.Read("/data/f", 0, got)
	if err != nil || n != len(want) || !bytes.Equal(got, want) {
		t.Fatalf("round trip failed: n=%d err=%v", n, err)
	}
	if _, err := fs2.Stat("/missing"); !errors.Is(err, lfs.ErrNotExist) {
		t.Fatalf("sentinel error not exported correctly: %v", err)
	}
}

// TestPublicAPIBaseline exercises the FFS baseline façade.
func TestPublicAPIBaseline(t *testing.T) {
	d := lfs.NewMemDisk(32 << 20)
	cfg := lfs.DefaultBaselineConfig()
	if err := lfs.FormatBaseline(d, cfg); err != nil {
		t.Fatal(err)
	}
	fs, err := lfs.MountBaseline(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("/f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Unmount(); err != nil {
		t.Fatal(err)
	}
	rep, err := lfs.FsckBaseline(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Problems) != 0 {
		t.Fatalf("fsck problems on clean fs: %v", rep.Problems)
	}
}

// TestOpenImage verifies the file-backed disk path used by the CLI
// tools, including persistence across process-style reopen.
func TestOpenImage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "vol.img")
	d, err := lfs.OpenImage(path, 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	cfg := lfs.DefaultConfig()
	cfg.MaxInodes = 1024
	if err := lfs.Format(d, cfg); err != nil {
		t.Fatal(err)
	}
	fs, err := lfs.Mount(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("/persisted"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Unmount(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := lfs.OpenImage(path, 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	fs2, err := lfs.Mount(d2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs2.Stat("/persisted"); err != nil {
		t.Fatalf("image did not persist: %v", err)
	}
}

// TestCleanPolicyNames pins the exported policy constants.
func TestCleanPolicyNames(t *testing.T) {
	if lfs.CleanGreedy.String() != "greedy" || lfs.CleanCostBenefit.String() != "cost-benefit" {
		t.Fatal("policy names changed")
	}
}

func ExampleFormat() {
	d := lfs.NewMemDisk(16 << 20)
	cfg := lfs.DefaultConfig()
	cfg.MaxInodes = 1024
	if err := lfs.Format(d, cfg); err != nil {
		panic(err)
	}
	fs, err := lfs.Mount(d, cfg)
	if err != nil {
		panic(err)
	}
	fs.Create("/hello")
	fs.Write("/hello", 0, []byte("world"))
	buf := make([]byte, 5)
	n, _ := fs.Read("/hello", 0, buf)
	fmt.Println(string(buf[:n]))
	// Output: world
}
