package lfs_test

import (
	"fmt"
	"sync"
	"testing"

	"lfs"
)

// buildLFS formats and mounts a small LFS, optionally traced.
func buildLFS(t testing.TB, rec *lfs.TraceRecorder) *lfs.FS {
	t.Helper()
	d := lfs.NewMemDisk(32 << 20)
	cfg := lfs.DefaultConfig()
	cfg.MaxInodes = 8192
	cfg.Trace = rec
	if err := lfs.Format(d, cfg); err != nil {
		t.Fatal(err)
	}
	fs, err := lfs.Mount(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func buildFFS(t testing.TB, rec *lfs.TraceRecorder) *lfs.BaselineFS {
	t.Helper()
	d := lfs.NewMemDisk(32 << 20)
	cfg := lfs.DefaultBaselineConfig()
	cfg.Trace = rec
	if err := lfs.FormatBaseline(d, cfg); err != nil {
		t.Fatal(err)
	}
	fs, err := lfs.MountBaseline(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

// TestStatsSnapshotDuringWorkload hammers StatsSnapshot (and the trace
// recorder's aggregation) from reader goroutines while a workload
// mutates the file system. Run under -race (scripts/ci.sh does) this
// verifies the snapshot surface is safe to read at any time.
func TestStatsSnapshotDuringWorkload(t *testing.T) {
	rec := lfs.NewTraceRecorder()
	fs := buildLFS(t, rec)
	ffs := buildFFS(t, rec)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		//lfslint:allow nogoroutine this test deliberately races StatsSnapshot readers against the workload to prove snapshot safety; goroutines join before any assertion
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := fs.StatsSnapshot()
				if snap.Disk.Reads < 0 {
					t.Error("impossible disk stats")
					return
				}
				_ = snap.WriteCost()
				bsnap := ffs.StatsSnapshot()
				if bsnap.Disk.Writes < 0 {
					t.Error("impossible baseline disk stats")
					return
				}
				if agg := rec.Aggregates(); agg != nil {
					_, _ = agg.AttributedBusy()
				}
			}
		}()
	}

	payload := make([]byte, 4096)
	for i := 0; i < 400; i++ {
		p := fmt.Sprintf("/f%d", i)
		if err := fs.Create(p); err != nil {
			t.Fatal(err)
		}
		if err := fs.Write(p, 0, payload); err != nil {
			t.Fatal(err)
		}
		if err := ffs.Create(p); err != nil {
			t.Fatal(err)
		}
		if err := ffs.Write(p, 0, payload); err != nil {
			t.Fatal(err)
		}
		if i%50 == 0 {
			if err := fs.Sync(); err != nil {
				t.Fatal(err)
			}
			if err := ffs.Sync(); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()

	snap := fs.StatsSnapshot()
	if snap.Trace == nil {
		t.Fatal("traced FS snapshot carries no trace aggregates")
	}
	if snap.Trace.DiskBusy == 0 {
		t.Error("trace aggregates saw no disk time")
	}
}

// TestTracingChargesNoSimulatedTime runs the same workload with and
// without a recorder attached and requires identical simulated
// timelines and identical disk statistics: observation must not
// perturb the experiment.
func TestTracingChargesNoSimulatedTime(t *testing.T) {
	run := func(rec *lfs.TraceRecorder) lfs.StatsSnapshot {
		fs := buildLFS(t, rec)
		payload := make([]byte, 4096)
		for i := 0; i < 300; i++ {
			p := fmt.Sprintf("/f%d", i)
			if err := fs.Create(p); err != nil {
				t.Fatal(err)
			}
			if err := fs.Write(p, 0, payload); err != nil {
				t.Fatal(err)
			}
		}
		if err := fs.Sync(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 300; i += 2 {
			if err := fs.Remove(fmt.Sprintf("/f%d", i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := fs.Sync(); err != nil {
			t.Fatal(err)
		}
		return fs.StatsSnapshot()
	}

	plain := run(nil)
	traced := run(lfs.NewTraceRecorder())
	if plain.Time != traced.Time {
		t.Errorf("simulated end time differs: untraced %v, traced %v", plain.Time, traced.Time)
	}
	if plain.Disk.BusyTime != traced.Disk.BusyTime {
		t.Errorf("disk busy differs: untraced %v, traced %v", plain.Disk.BusyTime, traced.Disk.BusyTime)
	}
	if plain.CPUInstructions != traced.CPUInstructions {
		t.Errorf("CPU instructions differ: untraced %d, traced %d", plain.CPUInstructions, traced.CPUInstructions)
	}
}

// benchWorkload is the create/write/sync loop the overhead benchmarks
// time, in host time: the acceptance bar is that attaching no recorder
// costs nothing measurable and an attached recorder stays within a few
// percent.
func benchWorkload(b *testing.B, rec *lfs.TraceRecorder) {
	b.ReportAllocs()
	payload := make([]byte, 1024)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fs := buildLFS(b, rec)
		b.StartTimer()
		for j := 0; j < 200; j++ {
			p := fmt.Sprintf("/f%d", j)
			if err := fs.Create(p); err != nil {
				b.Fatal(err)
			}
			if err := fs.Write(p, 0, payload); err != nil {
				b.Fatal(err)
			}
		}
		if err := fs.Sync(); err != nil {
			b.Fatal(err)
		}
		if rec != nil {
			rec.Reset()
		}
	}
}

func BenchmarkWorkloadUntraced(b *testing.B) { benchWorkload(b, nil) }

func BenchmarkWorkloadTraced(b *testing.B) { benchWorkload(b, lfs.NewTraceRecorder()) }
