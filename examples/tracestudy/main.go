// Tracestudy runs a synthetic office/engineering trace — the workload
// the paper designs for (§3: many small files, whole-file reads, short
// lifetimes) — against LFS, then answers the question §5.3 leaves
// open: what does the segment utilization distribution look like
// under a nonsynthetic workload?
package main

import (
	"fmt"
	"log"
	"strings"

	"lfs"
	"lfs/internal/workload"
)

func main() {
	const capacity = 48 << 20
	d := lfs.NewMemDisk(capacity)
	cfg := lfs.DefaultConfig()
	if err := lfs.Format(d, cfg); err != nil {
		log.Fatal(err)
	}
	fs, err := lfs.Mount(d, cfg)
	if err != nil {
		log.Fatal(err)
	}

	opts := workload.DefaultOffice()
	opts.Ops = 25000
	opts.TargetFiles = 4000
	opts.MeanLifetimeOps = 5000
	fmt.Printf("running an office/engineering trace: %d events, ~%d live files...\n\n",
		opts.Ops, opts.TargetFiles)
	res, err := workload.Office(fs, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("trace: %d creates, %d deletes, %d whole-file reads, %d overwrites\n",
		res.Creates, res.Deletes, res.Reads, res.Overwrites)
	fmt.Printf("       %.1f MB written, %.1f MB read, %v of simulated time (%.1f ops/s)\n\n",
		float64(res.BytesWritten)/(1<<20), float64(res.BytesRead)/(1<<20),
		res.Elapsed.Duration, res.Elapsed.OpsPerSec())

	st := fs.StatsSnapshot().Log
	fmt.Printf("the log's view of it:\n")
	fmt.Printf("  %d units written (%d blocks), %d segments sealed\n",
		st.UnitsWritten, st.BlocksWritten, st.SegmentsSealed)
	fmt.Printf("  cleaner: %d activations, %d segments reclaimed, %d live blocks copied\n",
		st.CleanerRuns, st.SegmentsCleaned, st.CleanerLiveCopied)
	fmt.Printf("  write amplification: %.2fx\n\n", st.WriteAmplification(cfg.BlockSize))

	// The distribution §5.3 asks about.
	utils := fs.SegmentUtilizations()
	var hist [10]int
	var sum float64
	for _, u := range utils {
		bin := int(u * 10)
		if bin > 9 {
			bin = 9
		}
		hist[bin]++
		sum += u
	}
	fmt.Printf("segment utilization distribution (%d dirty segments):\n", len(utils))
	max := 0
	for _, n := range hist {
		if n > max {
			max = n
		}
	}
	for i, n := range hist {
		bar := ""
		if max > 0 {
			bar = strings.Repeat("#", n*40/max)
		}
		fmt.Printf("  %3d%%-%3d%%  %4d  %s\n", i*10, (i+1)*10, n, bar)
	}
	if len(utils) > 0 {
		fmt.Printf("\nmean segment utilization %.2f vs overall disk utilization %.2f\n",
			sum/float64(len(utils)), float64(fs.LiveBytes())/float64(fs.LogCapacity()))
		fmt.Println("(the greedy cleaner keeps harvesting the emptiest segments, so the")
		fmt.Println(" survivors sit above the disk-wide utilization — the skew that later")
		fmt.Println(" motivated cost-benefit cleaning)")
	}
}
