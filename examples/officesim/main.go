// Officesim reproduces the paper's motivating workload — the
// office/engineering environment of §3: "a large number of relatively
// small files ... The average file life time is short, less than a
// day before it is overwritten or deleted" — and runs it against both
// LFS and the SunOS-style FFS baseline on identical simulated
// hardware.
//
// The output shows the paper's headline: the baseline is pinned to
// disk latency by its synchronous metadata writes, while LFS turns
// the same work into a few large sequential log writes and runs an
// order of magnitude faster.
package main

import (
	"fmt"
	"log"

	"lfs"
)

// officeFS is the slice of each file system we drive.
type officeFS interface {
	Mkdir(string) error
	Create(string) error
	Write(string, int64, []byte) error
	Read(string, int64, []byte) (int, error)
	Remove(string) error
	Sync() error
}

// clocked lets us read each file system's virtual clock.
type clocked interface {
	Clock() *lfs.Clock
}

// runOffice simulates a working day in miniature: users create small
// files (mail messages, object files, editor saves), read some back,
// overwrite others, and delete most of them soon after.
func runOffice(fs officeFS, users, filesPerUser int) error {
	payload := make([]byte, 2048) // "less than 8 kilobytes"
	for i := range payload {
		payload[i] = byte(i)
	}
	buf := make([]byte, len(payload))
	for u := 0; u < users; u++ {
		dir := fmt.Sprintf("/user%d", u)
		if err := fs.Mkdir(dir); err != nil {
			return err
		}
		for f := 0; f < filesPerUser; f++ {
			name := fmt.Sprintf("%s/doc%03d", dir, f)
			if err := fs.Create(name); err != nil {
				return err
			}
			if err := fs.Write(name, 0, payload); err != nil {
				return err
			}
			// Read a recent neighbour (files are read "sequentially
			// and in their entirety").
			if f > 0 {
				prev := fmt.Sprintf("%s/doc%03d", dir, f-1)
				if _, err := fs.Read(prev, 0, buf); err != nil {
					return err
				}
			}
			// Short lifetimes: delete every second file soon after
			// creating it, overwrite every third.
			switch {
			case f%2 == 1:
				if err := fs.Remove(fmt.Sprintf("%s/doc%03d", dir, f-1)); err != nil {
					return err
				}
			case f%3 == 0 && f > 0:
				if err := fs.Write(name, 0, payload); err != nil {
					return err
				}
			}
		}
	}
	return fs.Sync()
}

func main() {
	const capacity = 128 << 20
	const users, filesPerUser = 8, 150

	// LFS.
	ld := lfs.NewMemDisk(capacity)
	lcfg := lfs.DefaultConfig()
	if err := lfs.Format(ld, lcfg); err != nil {
		log.Fatal(err)
	}
	lsys, err := lfs.Mount(ld, lcfg)
	if err != nil {
		log.Fatal(err)
	}

	// FFS baseline.
	fd := lfs.NewMemDisk(capacity)
	fcfg := lfs.DefaultBaselineConfig()
	if err := lfs.FormatBaseline(fd, fcfg); err != nil {
		log.Fatal(err)
	}
	fsys, err := lfs.MountBaseline(fd, fcfg)
	if err != nil {
		log.Fatal(err)
	}

	if err := runOffice(lsys, users, filesPerUser); err != nil {
		log.Fatal("LFS: ", err)
	}
	if err := runOffice(fsys, users, filesPerUser); err != nil {
		log.Fatal("FFS: ", err)
	}

	ops := users * filesPerUser
	lt := lsys.Clock().Now()
	ft := fsys.Clock().Now()
	lds, fds := lsys.StatsSnapshot().Disk, fsys.StatsSnapshot().Disk

	fmt.Printf("office/engineering workload: %d users x %d short-lived 2KB files\n\n", users, filesPerUser)
	fmt.Printf("%-22s %14s %14s\n", "", "LFS", "SunFFS")
	fmt.Printf("%-22s %14v %14v\n", "simulated time", lt, ft)
	fmt.Printf("%-22s %14.1f %14.1f\n", "files/second",
		float64(ops)/lt.Seconds(), float64(ops)/ft.Seconds())
	fmt.Printf("%-22s %14d %14d\n", "disk writes", lds.Writes, fds.Writes)
	fmt.Printf("%-22s %14d %14d\n", "  synchronous", lds.SyncWrites, fds.SyncWrites)
	fmt.Printf("%-22s %14d %14d\n", "  seeks", lds.Seeks, fds.Seeks)
	fmt.Printf("%-22s %13dK %13dK\n", "bytes written", lds.BytesWritten()/1024, fds.BytesWritten()/1024)
	fmt.Printf("\nspeedup: %.1fx\n", float64(ft)/float64(lt))
}
