// Cleanerlab drives an LFS volume toward full utilization and shows
// the segment cleaner (§4.3) at work: how fragmented segments are
// selected, how liveness is decided through versions and inode walks,
// and how the cleaning cost rises with the utilization of the
// segments cleaned (the effect behind Figure 5).
package main

import (
	"fmt"
	"log"

	"lfs"
)

func main() {
	const capacity = 32 << 20
	d := lfs.NewMemDisk(capacity)
	cfg := lfs.DefaultConfig()
	cfg.MaxInodes = 16384
	if err := lfs.Format(d, cfg); err != nil {
		log.Fatal(err)
	}
	fs, err := lfs.Mount(d, cfg)
	if err != nil {
		log.Fatal(err)
	}

	payload := make([]byte, 4096)
	name := func(gen, i int) string { return fmt.Sprintf("/g%d-f%04d", gen, i) }

	fmt.Printf("disk: %d MB, %d segments of %d KB\n\n",
		capacity>>20, capacity/cfg.SegmentSize, cfg.SegmentSize>>10)

	// Generation 0: fill a large part of the disk.
	const filesPerGen = 3500
	for i := 0; i < filesPerGen; i++ {
		if err := fs.Create(name(0, i)); err != nil {
			log.Fatal(err)
		}
		if err := fs.Write(name(0, i), 0, payload); err != nil {
			log.Fatal(err)
		}
	}
	if err := fs.Sync(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after generation 0: %2d clean segments, %5.1f MB live\n",
		fs.CleanSegments(), float64(fs.LiveBytes())/(1<<20))

	// Delete 70%: segments become fragmented (30% utilised).
	for i := 0; i < filesPerGen; i++ {
		if i%10 < 7 {
			if err := fs.Remove(name(0, i)); err != nil {
				log.Fatal(err)
			}
		}
	}
	if err := fs.Sync(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after deleting 70%%:  %2d clean segments, %5.1f MB live (segments are fragmented)\n",
		fs.CleanSegments(), float64(fs.LiveBytes())/(1<<20))

	// Explicit cleaning, the paper's user-level trigger ("cleaning
	// can be initiated at night or other times of slack usage").
	before := d.Clock().Now()
	res, err := fs.CleanUntil(fs.CleanSegments() + 8)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := d.Clock().Now().Sub(before)
	fmt.Printf("\ncleaner run:\n")
	fmt.Printf("  segments cleaned:   %d\n", res.SegmentsCleaned)
	fmt.Printf("  blocks examined:    %d\n", res.BlocksExamined)
	fmt.Printf("  live blocks copied: %d (%.0f%% of examined)\n",
		res.LiveCopied, 100*float64(res.LiveCopied)/float64(max(res.BlocksExamined, 1)))
	fmt.Printf("  net space reclaimed: %.1f MB in %v (%.0f KB/s)\n",
		float64(res.BytesReclaimed)/(1<<20), elapsed,
		float64(res.BytesReclaimed)/1024/elapsed.Seconds())
	fmt.Printf("  clean segments now: %d\n", fs.CleanSegments())

	// Keep churning beyond the disk's raw capacity: each new file
	// replaces its predecessor from the previous generation (short
	// lifetimes, as in the paper's workload), so live data stays
	// bounded while the log wraps the disk several times — which
	// only works because the cleaner keeps reclaiming dead
	// segments.
	for gen := 1; gen <= 3; gen++ {
		for i := 0; i < filesPerGen; i++ {
			prev := name(gen-1, i)
			if _, err := fs.Stat(prev); err == nil {
				if err := fs.Remove(prev); err != nil {
					log.Fatal(err)
				}
			}
			if err := fs.Create(name(gen, i)); err != nil {
				log.Fatal(err)
			}
			if err := fs.Write(name(gen, i), 0, payload); err != nil {
				log.Fatal(err)
			}
		}
	}
	if err := fs.Sync(); err != nil {
		log.Fatal(err)
	}
	st := fs.StatsSnapshot().Log
	fmt.Printf("\nafter 3 more generations of churn (log wrapped the disk several times):\n")
	fmt.Printf("  cleaner activations: %d\n", st.CleanerRuns)
	fmt.Printf("  segments cleaned:    %d\n", st.SegmentsCleaned)
	fmt.Printf("  blocks examined:     %d, live copied: %d\n", st.CleanerBlocksExamined, st.CleanerLiveCopied)
	fmt.Printf("  checkpoints:         %d\n", st.Checkpoints)

	// Everything still consistent?
	rep, err := fs.Check()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  lfsck: %d files, %d problems\n", rep.Files, len(rep.Problems))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
