// Crashrecovery demonstrates §4.4 of the paper: LFS recovers from a
// crash by reading the newest checkpoint region and rolling the log
// tail forward through the segment summaries — never scanning the
// disk — while the update-in-place baseline needs an fsck pass whose
// cost grows with the volume.
//
// The crash here is not a polite shutdown: a fault-injection policy on
// the simulated disk cuts power in the middle of a write, tearing it
// at a sector boundary, exactly the failure a real disk hands a file
// system. A final sweep replays the same workload once per disk write,
// cutting power during each one, and verifies recovery at every point.
package main

import (
	"errors"
	"fmt"
	"log"

	"lfs"
	"lfs/internal/disk"
	"lfs/internal/fstest"
)

func main() {
	const capacity = 128 << 20
	d := lfs.NewMemDisk(capacity)
	cfg := lfs.DefaultConfig()
	if err := lfs.Format(d, cfg); err != nil {
		log.Fatal(err)
	}
	fs, err := lfs.Mount(d, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Work before the checkpoint: durable no matter what.
	if err := fs.Create("/ledger"); err != nil {
		log.Fatal(err)
	}
	if err := fs.Write("/ledger", 0, []byte("balance: 1000")); err != nil {
		log.Fatal(err)
	}
	if err := fs.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("checkpoint taken with /ledger on disk")

	// Work after the checkpoint, synced to the log but never
	// checkpointed: recoverable only by roll-forward.
	if err := fs.Create("/journal"); err != nil {
		log.Fatal(err)
	}
	if err := fs.Write("/journal", 0, []byte("entry: +250")); err != nil {
		log.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote and synced /journal after the checkpoint")

	// Now arm the fault policy: power dies during the next disk
	// write, which persists only a torn prefix. The next checkpoint
	// attempt (trying to make /scratch durable) is the victim, so
	// /scratch never reaches the log and the checkpoint regions still
	// describe the pre-/journal state.
	d.SetFaultPolicy(&disk.CrashPlan{CutWrite: 1, TearFatalWrite: true})
	if err := fs.Create("/scratch"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("created /scratch (still only in the cache)")

	fmt.Println("\n*** POWER CUT (write torn at a sector boundary) ***")
	if err := fs.Checkpoint(); !errors.Is(err, disk.ErrPowerLoss) {
		log.Fatalf("expected power loss during the checkpoint, got %v", err)
	}

	// Power comes back: the disk thaws with whatever the platters
	// held, and mount runs crash recovery.
	d.Thaw()
	d.SetFaultPolicy(nil)
	before := d.Clock().Now()
	recovered, err := lfs.Mount(d, cfg)
	if err != nil {
		log.Fatal(err)
	}
	mountTime := d.Clock().Now().Sub(before)
	fmt.Printf("\nremounted in %v of simulated time (%d log units rolled forward)\n",
		mountTime, recovered.StatsSnapshot().Log.RollForwardUnits)

	show := func(path string) {
		buf := make([]byte, 64)
		n, err := recovered.Read(path, 0, buf)
		switch {
		case err == nil:
			fmt.Printf("  %-10s recovered: %q\n", path, buf[:n])
		case errors.Is(err, lfs.ErrNotExist):
			fmt.Printf("  %-10s lost (was only in the cache)\n", path)
		default:
			fmt.Printf("  %-10s error: %v\n", path, err)
		}
	}
	show("/ledger")
	show("/journal")
	show("/scratch")

	// Consistency check after recovery.
	rep, err := recovered.Check()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlfsck: %d files, %d dirs, problems: %d\n", rep.Files, rep.Dirs, len(rep.Problems))

	// One lucky crash point proves little. Sweep them all: replay the
	// same kind of workload once per disk write, cut power during each
	// write in turn, and verify recovery (checkpoint load,
	// roll-forward, tree consistency, durability of checkpointed
	// files) at every single point.
	sweepCfg := lfs.DefaultConfig()
	sweepCfg.SegmentSize = 64 << 10
	sweepCfg.CacheBlocks = 64
	sweepCfg.MaxInodes = 512
	sweep, err := fstest.RunCrashPoints(fstest.CrashConfig{
		FSConfig:     sweepCfg,
		DiskCapacity: 8 << 20,
		Workload:     fstest.MixedWorkload(24, sweepCfg.BlockSize),
		Torn:         true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncrash-point sweep: %d crash points (%d needed roll-forward), %d recovery failures\n",
		sweep.Points, sweep.RollForwardPoints, len(sweep.Failures))
	for _, f := range sweep.Failures {
		fmt.Printf("  FAILURE: %s\n", f.String())
	}

	// The baseline's alternative: a full-disk scan.
	fd := lfs.NewMemDisk(capacity)
	fcfg := lfs.DefaultBaselineConfig()
	if err := lfs.FormatBaseline(fd, fcfg); err != nil {
		log.Fatal(err)
	}
	bfs, err := lfs.MountBaseline(fd, fcfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := bfs.Create("/f"); err != nil {
		log.Fatal(err)
	}
	if err := bfs.Sync(); err != nil {
		log.Fatal(err)
	}
	bfs.Crash()
	rep2, err := lfs.FsckBaseline(fd, fcfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfor comparison, FFS fsck of the same-size disk: %v (scanned %d inodes)\n",
		rep2.Duration, rep2.InodesScanned)
	fmt.Printf("LFS recovery was %.0fx faster\n", float64(rep2.Duration)/float64(mountTime))
}
