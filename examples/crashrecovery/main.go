// Crashrecovery demonstrates §4.4 of the paper: LFS recovers from a
// crash by reading the newest checkpoint region and rolling the log
// tail forward through the segment summaries — never scanning the
// disk — while the update-in-place baseline needs an fsck pass whose
// cost grows with the volume.
package main

import (
	"errors"
	"fmt"
	"log"

	"lfs"
)

func main() {
	const capacity = 128 << 20
	d := lfs.NewMemDisk(capacity)
	cfg := lfs.DefaultConfig()
	if err := lfs.Format(d, cfg); err != nil {
		log.Fatal(err)
	}
	fs, err := lfs.Mount(d, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Work before the checkpoint: durable no matter what.
	if err := fs.Create("/ledger"); err != nil {
		log.Fatal(err)
	}
	if err := fs.Write("/ledger", 0, []byte("balance: 1000")); err != nil {
		log.Fatal(err)
	}
	if err := fs.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("checkpoint taken with /ledger on disk")

	// Work after the checkpoint, synced to the log but never
	// checkpointed: recoverable only by roll-forward.
	if err := fs.Create("/journal"); err != nil {
		log.Fatal(err)
	}
	if err := fs.Write("/journal", 0, []byte("entry: +250")); err != nil {
		log.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote and synced /journal after the checkpoint")

	// Work still sitting in the file cache: lost by the crash (the
	// paper's bounded vulnerability window, at most one checkpoint
	// interval).
	if err := fs.Create("/scratch"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("created /scratch (still only in the cache)")

	fmt.Println("\n*** CRASH ***")
	fs.Crash()

	before := d.Clock().Now()
	recovered, err := lfs.Mount(d, cfg)
	if err != nil {
		log.Fatal(err)
	}
	mountTime := d.Clock().Now().Sub(before)
	fmt.Printf("\nremounted in %v of simulated time (%d log units rolled forward)\n",
		mountTime, recovered.Stats().RollForwardUnits)

	show := func(path string) {
		buf := make([]byte, 64)
		n, err := recovered.Read(path, 0, buf)
		switch {
		case err == nil:
			fmt.Printf("  %-10s recovered: %q\n", path, buf[:n])
		case errors.Is(err, lfs.ErrNotExist):
			fmt.Printf("  %-10s lost (was only in the cache)\n", path)
		default:
			fmt.Printf("  %-10s error: %v\n", path, err)
		}
	}
	show("/ledger")
	show("/journal")
	show("/scratch")

	// Consistency check after recovery.
	rep, err := recovered.Check()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlfsck: %d files, %d dirs, problems: %d\n", rep.Files, rep.Dirs, len(rep.Problems))

	// The baseline's alternative: a full-disk scan.
	fd := lfs.NewMemDisk(capacity)
	fcfg := lfs.DefaultBaselineConfig()
	if err := lfs.FormatBaseline(fd, fcfg); err != nil {
		log.Fatal(err)
	}
	bfs, err := lfs.MountBaseline(fd, fcfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := bfs.Create("/f"); err != nil {
		log.Fatal(err)
	}
	if err := bfs.Sync(); err != nil {
		log.Fatal(err)
	}
	bfs.Crash()
	rep2, err := lfs.FsckBaseline(fd, fcfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfor comparison, FFS fsck of the same-size disk: %v (scanned %d inodes)\n",
		rep2.Duration, rep2.InodesScanned)
	fmt.Printf("LFS recovery was %.0fx faster\n", float64(rep2.Duration)/float64(mountTime))
}
