// Quickstart: format a RAM-backed LFS, do some file work, and look at
// what the storage manager did under the hood.
package main

import (
	"fmt"
	"log"

	"lfs"
)

func main() {
	// A 64 MB simulated disk modelled on the paper's WREN IV
	// (1.3 MB/s, 17.5 ms average seek), driven by a virtual clock.
	d := lfs.NewMemDisk(64 << 20)
	cfg := lfs.DefaultConfig()
	if err := lfs.Format(d, cfg); err != nil {
		log.Fatal(err)
	}
	fs, err := lfs.Mount(d, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Ordinary file system work. None of this touches the disk
	// synchronously: everything accumulates in the file cache.
	if err := fs.Mkdir("/projects"); err != nil {
		log.Fatal(err)
	}
	if err := fs.Create("/projects/notes.txt"); err != nil {
		log.Fatal(err)
	}
	msg := []byte("log-structured storage: the disk is an append-only log\n")
	if err := fs.Write("/projects/notes.txt", 0, msg); err != nil {
		log.Fatal(err)
	}

	buf := make([]byte, len(msg))
	n, err := fs.Read("/projects/notes.txt", 0, buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read back %d bytes: %s", n, buf[:n])

	entries, err := fs.ReadDir("/projects")
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range entries {
		fi, err := fs.Stat("/projects/" + e.Name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s ino=%d size=%d\n", e.Name, fi.Ino, fi.Size)
	}

	// Force the log write and a checkpoint, then inspect.
	if err := fs.Unmount(); err != nil {
		log.Fatal(err)
	}
	snap := fs.StatsSnapshot()
	st, ds := snap.Log, snap.Disk
	fmt.Printf("\nwhat LFS did:\n")
	fmt.Printf("  log units written:  %d (%d blocks)\n", st.UnitsWritten, st.BlocksWritten)
	fmt.Printf("  checkpoints:        %d\n", st.Checkpoints)
	fmt.Printf("  disk writes:        %d (%d synchronous)\n", ds.Writes, ds.SyncWrites)
	fmt.Printf("  simulated time:     %v\n", snap.Time)

	// Remount: recovery reads the checkpoint, not the whole disk.
	fs2, err := lfs.Mount(d, cfg)
	if err != nil {
		log.Fatal(err)
	}
	n, err = fs2.Read("/projects/notes.txt", 0, buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter remount, still there: %s", buf[:n])
}
