package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestBenchJSONDeterministic asserts that writing the same summary
// twice produces the same bytes — including nested structs, whose
// keys must come out in canonical (sorted) order, not Go field order.
func TestBenchJSONDeterministic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	type point struct {
		Zeta  float64 `json:"zeta"`
		Alpha int     `json:"alpha"`
	}
	summary := map[string]any{
		"experiment": "alpha",
		"ops_per_s":  123.456,
		"curve":      []point{{Zeta: 1.5, Alpha: 2}},
	}
	if err := writeBenchJSON(path, summary); err != nil {
		t.Fatal(err)
	}
	first, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Nested object keys must be sorted, so the byte stream cannot
	// depend on struct field order.
	if za := bytes.Index(first, []byte(`"zeta"`)); za < bytes.Index(first, []byte(`"alpha"`)) {
		t.Errorf("nested keys not canonically sorted:\n%s", first)
	}
	if !bytes.HasSuffix(first, []byte("\n")) {
		t.Error("output missing trailing newline")
	}
	// Rewriting the same experiment into its own file must be a
	// byte-for-byte no-op.
	if err := writeBenchJSON(path, summary); err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("rewrite changed bytes:\n--- first\n%s--- second\n%s", first, second)
	}
}

// TestBenchJSONMergePreservesSiblings asserts the merge contract:
// writing a new experiment into an existing BENCH file keeps every
// sibling key, byte-deterministically, instead of clobbering the file.
func TestBenchJSONMergePreservesSiblings(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	alpha := map[string]any{"experiment": "alpha", "ops_per_s": 123.456, "writes": 42}
	beta := map[string]any{"experiment": "beta", "speedup": 3.38}
	if err := writeBenchJSON(path, alpha); err != nil {
		t.Fatal(err)
	}
	single, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeBenchJSON(path, beta); err != nil {
		t.Fatal(err)
	}
	merged, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	var top struct {
		Experiments map[string]map[string]any `json:"experiments"`
	}
	if err := json.Unmarshal(merged, &top); err != nil {
		t.Fatalf("merged file does not parse: %v\n%s", err, merged)
	}
	if len(top.Experiments) != 2 {
		t.Fatalf("merged file holds %d experiments, want 2:\n%s", len(top.Experiments), merged)
	}
	// Alpha's keys must all survive, with their values' literal digits
	// intact (123.456 must not come back 123.45600000000001).
	a := top.Experiments["alpha"]
	if a == nil || a["ops_per_s"] == nil || a["writes"] == nil {
		t.Fatalf("alpha's sibling keys dropped by merge:\n%s", merged)
	}
	if !strings.Contains(string(merged), `"ops_per_s": 123.456`) {
		t.Errorf("alpha's number literal mangled:\n%s", merged)
	}

	// Re-writing beta with identical data must leave the merged file
	// byte-identical — no reordering on repeated merges.
	if err := writeBenchJSON(path, beta); err != nil {
		t.Fatal(err)
	}
	again, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(merged, again) {
		t.Errorf("repeated merge changed bytes:\n--- merged\n%s--- again\n%s", merged, again)
	}

	// Updating alpha in the multi file must keep beta.
	alpha["writes"] = 43
	if err := writeBenchJSON(path, alpha); err != nil {
		t.Fatal(err)
	}
	final, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(final), `"speedup"`) || !strings.Contains(string(final), `"writes": 43`) {
		t.Errorf("multi-file update dropped keys:\n%s", final)
	}

	// A third experiment pointed at a still-single file must not drop
	// the original either (the historical bug).
	if len(single) == 0 || bytes.Contains(single, []byte("experiments")) {
		t.Fatalf("single form unexpectedly multi:\n%s", single)
	}
}

// TestBenchJSONRejectsAnonymous covers the error paths.
func TestBenchJSONRejectsAnonymous(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	if err := writeBenchJSON(path, map[string]any{"ops": 1}); err == nil {
		t.Error("summary without experiment name accepted")
	}
	if err := os.WriteFile(path, []byte("[1, 2]\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := writeBenchJSON(path, map[string]any{"experiment": "x"}); err == nil {
		t.Error("merge into non-object file accepted")
	}
}
