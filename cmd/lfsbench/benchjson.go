package main

// Every -benchjson writer funnels through writeBenchJSON, which keeps
// the summary files byte-deterministic and merge-safe. Historically
// each experiment clobbered the whole file, so pointing two
// experiments at one BENCH file silently dropped the first one's
// keys; and any non-map values marshalled in struct-field order,
// which made the key sequence depend on Go source order rather than
// on the data. Now summaries are canonicalised (every object's keys
// sorted, numbers preserved verbatim via json.Number) and writing a
// new experiment into an existing file merges it under an
// "experiments" object instead of reordering or dropping the
// siblings. benchdiff.sh compares key sequences positionally, so this
// canonical order is load-bearing: the same data must always produce
// the same bytes.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// canonicalJSON re-decodes v so that every JSON object becomes a map
// (marshalled with sorted keys) and every number a json.Number (its
// literal digits preserved exactly on re-encode).
func canonicalJSON(v any) (any, error) {
	buf, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(buf))
	dec.UseNumber()
	var out any
	if err := dec.Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}

// writeBenchJSON writes an experiment's summary to path. The summary
// must carry its experiment name under the "experiment" key. A fresh
// path, or one already holding the same experiment, gets the single
// flat form benchdiff.sh diffs; a path holding a different experiment
// is upgraded to the multi form — {"experiments": {name: summary}} —
// with the existing experiment's keys byte-for-byte intact.
func writeBenchJSON(path string, summary map[string]any) error {
	name, _ := summary["experiment"].(string)
	if name == "" {
		return fmt.Errorf("benchjson: summary has no experiment name")
	}
	canon, err := canonicalJSON(summary)
	if err != nil {
		return fmt.Errorf("benchjson: %w", err)
	}

	var top any = canon
	if prev, err := os.ReadFile(path); err == nil {
		existing, err := mergeBenchJSON(prev, name, canon)
		if err != nil {
			return fmt.Errorf("benchjson: merging into %s: %w", path, err)
		}
		top = existing
	} else if !os.IsNotExist(err) {
		return err
	}

	buf, err := json.MarshalIndent(top, "", "  ")
	if err != nil {
		return fmt.Errorf("benchjson: %w", err)
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// mergeBenchJSON folds the canonicalised summary for experiment name
// into the previous contents of a BENCH file.
func mergeBenchJSON(prev []byte, name string, canon any) (any, error) {
	dec := json.NewDecoder(bytes.NewReader(prev))
	dec.UseNumber()
	var old any
	if err := dec.Decode(&old); err != nil {
		return nil, err
	}
	obj, ok := old.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("existing file is not a JSON object")
	}
	if multi, ok := obj["experiments"].(map[string]any); ok {
		multi[name] = canon
		return obj, nil
	}
	oldName, _ := obj["experiment"].(string)
	if oldName == "" {
		return nil, fmt.Errorf("existing file has no experiment name")
	}
	if oldName == name {
		return canon, nil
	}
	return map[string]any{"experiments": map[string]any{oldName: obj, name: canon}}, nil
}
