// Command lfsbench regenerates every table and figure of the paper's
// evaluation on the simulated testbed (a Sun-4/260-class CPU and a
// WREN IV disk).
//
// Usage:
//
//	lfsbench -experiment fig1       # Figures 1-2: creation disk traces
//	lfsbench -experiment fig3       # Figure 3: small-file I/O
//	lfsbench -experiment fig4       # Figure 4: large-file I/O
//	lfsbench -experiment fig5       # Figure 5: cleaning rate vs utilization
//	lfsbench -experiment scaling    # §3.1: CPU scaling of create/delete
//	lfsbench -experiment recovery   # §4.4: crash recovery time
//	lfsbench -experiment ablation-segsize   # segment size sweep
//	lfsbench -experiment ablation-policy    # greedy vs cost-benefit cleaning
//	lfsbench -experiment concurrency # multi-client throughput scaling
//	lfsbench -experiment sharding   # multi-log scale-out: ops/s vs shard count
//	lfsbench -experiment crashsweep # crash-point sweep: snapshot vs replay
//	lfsbench -experiment all        # everything
//
// -quick shrinks the workloads by roughly 10x for a fast smoke run.
//
// The trace experiment runs the instrumented small-file + cleaning
// smoke test; -trace exports its full JSONL trace (see cmd/lfstrace)
// and -benchjson writes its headline numbers as one JSON object. The
// concurrency experiment sweeps closed-loop client counts over LFS
// (group commit on and off) and FFS; -benchjson writes its curve.
//
// -metrics <file> attaches a simulated-clock metrics sampler to every
// LFS any experiment builds and writes the combined time-series JSONL
// (one "fs"-labelled stream per instance) at exit; replay it with
// cmd/lfstop. -metrics-interval sets the sampling spacing in
// simulated time. The metrics experiment is the plane's smoke test.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"lfs/internal/experiments"
	"lfs/internal/obs"
	"lfs/internal/sim"
)

func main() {
	exp := flag.String("experiment", "all", "experiment to run (see -experiment list, or \"all\")")
	quick := flag.Bool("quick", false, "shrink workloads ~10x for a fast run")
	csvDir := flag.String("csvdir", "", "also write each experiment's rows as <dir>/<experiment>.csv")
	flag.StringVar(&traceOut, "trace", "", "write the trace experiment's JSONL trace to this file")
	flag.StringVar(&benchJSON, "benchjson", "", "write the trace, concurrency, or metrics experiment's summary JSON to this file")
	metricsOut := flag.String("metrics", "", "sample every LFS's metrics plane and write the combined JSONL time series to this file (replay with lfstop)")
	metricsInterval := flag.Duration("metrics-interval", time.Second, "simulated-time spacing between metrics samples")
	flag.Parse()
	realStdout = os.Stdout
	if *metricsOut != "" {
		if *metricsInterval <= 0 {
			fmt.Fprintln(os.Stderr, "lfsbench: -metrics-interval must be positive")
			os.Exit(2)
		}
		collector = &metricsCollector{interval: sim.Duration(*metricsInterval)}
		experiments.MetricsSink = collector.sampler
		if *metricsOut == "-" {
			// The JSONL stream owns stdout; experiment reports move
			// to stderr so `lfsbench -metrics - | lfstop` stays clean.
			os.Stdout = os.Stderr
		}
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "lfsbench: %v\n", err)
			os.Exit(1)
		}
		csvOut = *csvDir
	}

	runners := map[string]func(bool) error{
		"fig1":               runFig1,
		"fig3":               runFig3,
		"fig4":               runFig4,
		"fig5":               runFig5,
		"scaling":            runScaling,
		"recovery":           runRecovery,
		"ablation-segsize":   runAblationSegSize,
		"ablation-policy":    runAblationPolicy,
		"utilization":        runUtilization,
		"ablation-ckpt":      runAblationCkpt,
		"ablation-blocksize": runAblationBlockSize,
		"cleaning-curve":     runCleaningCurve,
		"trace":              runTrace,
		"concurrency":        runConcurrency,
		"critpath":           runCritPath,
		"metrics":            runMetrics,
		"crashsweep":         runCrashSweep,
		"sharding":           runSharding,
	}
	order := []string{"fig1", "fig3", "fig4", "fig5", "scaling", "recovery", "ablation-segsize", "ablation-policy", "ablation-ckpt", "ablation-blocksize", "utilization", "cleaning-curve", "trace", "concurrency", "critpath", "sharding", "metrics", "crashsweep"}

	if *exp == "all" {
		for _, name := range order {
			fmt.Printf("=== %s ===\n", name)
			if err := runners[name](*quick); err != nil {
				fmt.Fprintf(os.Stderr, "lfsbench: %s: %v\n", name, err)
				os.Exit(1)
			}
			fmt.Println()
		}
		finishMetrics(*metricsOut)
		return
	}
	run, ok := runners[*exp]
	if !ok {
		names := make([]string, 0, len(runners)+1)
		names = append(names, order...)
		names = append(names, "all")
		fmt.Fprintf(os.Stderr, "lfsbench: unknown experiment %q (valid: %s)\n",
			*exp, strings.Join(names, ", "))
		os.Exit(2)
	}
	if err := run(*quick); err != nil {
		fmt.Fprintf(os.Stderr, "lfsbench: %v\n", err)
		os.Exit(1)
	}
	finishMetrics(*metricsOut)
}

// collector gathers one labelled sampler per LFS instance when
// -metrics is on.
var collector *metricsCollector

// realStdout is the process stdout saved before any `-metrics -`
// redirection, so the JSONL stream reaches the pipe.
var realStdout *os.File

// metricsCollector hands fresh samplers to experiments.MetricsSink
// and remembers them for the combined JSONL export.
type metricsCollector struct {
	interval sim.Duration
	samplers []*obs.Sampler
}

// sampler returns a fresh sampler labelled <name>-<n> so the streams
// of a sweep's instances stay distinguishable in one file.
func (c *metricsCollector) sampler(name string) *obs.Sampler {
	s := obs.NewSampler(c.interval)
	s.SetLabel(fmt.Sprintf("%s-%d", strings.ToLower(name), len(c.samplers)))
	c.samplers = append(c.samplers, s)
	return s
}

// write concatenates every sampler's JSONL stream into path; "-"
// streams to stdout (for piping into lfstop) with the status line on
// stderr.
func (c *metricsCollector) write(path string) error {
	out := io.Writer(realStdout)
	status := io.Writer(os.Stderr)
	var f *os.File
	if path != "-" {
		var err error
		f, err = os.Create(path)
		if err != nil {
			return err
		}
		out = f
		status = os.Stdout
	}
	var n int
	for _, s := range c.samplers {
		if err := s.WriteJSONL(out); err != nil {
			if f != nil {
				f.Close()
			}
			return err
		}
		n += len(s.Samples())
	}
	if f != nil {
		if err := f.Close(); err != nil {
			return err
		}
	}
	fmt.Fprintf(status, "metrics: %d samples from %d instances -> %s\n", n, len(c.samplers), path)
	return nil
}

// finishMetrics writes the collected metrics file, if enabled.
func finishMetrics(path string) {
	if collector == nil || path == "" {
		return
	}
	if err := collector.write(path); err != nil {
		fmt.Fprintf(os.Stderr, "lfsbench: writing metrics: %v\n", err)
		os.Exit(1)
	}
}

// csvOut, when non-empty, is the directory experiments write CSVs to.
var csvOut string

// csvFile opens <csvOut>/<name>.csv, or returns nil when CSV output
// is off.
func csvFile(name string) (*os.File, error) {
	if csvOut == "" {
		return nil, nil
	}
	return os.Create(csvOut + "/" + name + ".csv")
}

// emitCSV runs write against the experiment's CSV file if enabled.
func emitCSV(name string, write func(f *os.File) error) error {
	f, err := csvFile(name)
	if err != nil || f == nil {
		return err
	}
	defer f.Close()
	return write(f)
}

func runFig1(bool) error {
	res, err := experiments.Fig1(64 << 20)
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	return nil
}

func runFig3(quick bool) error {
	opts := experiments.DefaultFig3Opts()
	if quick {
		opts.Capacity = 64 << 20
		opts.Files1K = 1000
		opts.Files10K = 100
	}
	rows, err := experiments.Fig3(opts)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatFig3(rows))
	return emitCSV("fig3", func(f *os.File) error { return experiments.CSVFig3(f, rows) })
}

func runFig4(quick bool) error {
	opts := experiments.DefaultFig4Opts()
	if quick {
		opts.Capacity = 64 << 20
		opts.FileSize = 16 << 20
	}
	rows, err := experiments.Fig4(opts)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatFig4(rows))
	return emitCSV("fig4", func(f *os.File) error { return experiments.CSVFig4(f, rows) })
}

func runFig5(quick bool) error {
	opts := experiments.DefaultFig5Opts()
	if quick {
		opts.Capacity = 32 << 20
		opts.NumFiles = 4000
		opts.Utilizations = []float64{0, 0.25, 0.5, 0.75, 0.9}
	}
	rows, err := experiments.Fig5(opts)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatFig5(rows))
	return emitCSV("fig5", func(f *os.File) error { return experiments.CSVFig5(f, rows) })
}

func runScaling(quick bool) error {
	opts := experiments.DefaultScalingOpts()
	if quick {
		opts.Files = 50
	}
	rows, err := experiments.Scaling(opts)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatScaling(rows))
	return emitCSV("scaling", func(f *os.File) error { return experiments.CSVScaling(f, rows) })
}

func runRecovery(quick bool) error {
	opts := experiments.DefaultRecoveryOpts()
	if quick {
		opts.Capacities = []int64{32 << 20, 64 << 20}
		opts.Files = 100
	}
	rows, err := experiments.Recovery(opts)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatRecovery(rows))
	return emitCSV("recovery", func(f *os.File) error { return experiments.CSVRecovery(f, rows) })
}

func runAblationSegSize(quick bool) error {
	opts := experiments.DefaultSegSizeOpts()
	if quick {
		opts.Files = 500
	}
	rows, err := experiments.SegSizeAblation(opts)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatSegSize(rows))
	return emitCSV("ablation-segsize", func(f *os.File) error { return experiments.CSVSegSize(f, rows) })
}

func runAblationPolicy(quick bool) error {
	opts := experiments.DefaultPolicyOpts()
	if quick {
		// Keep the disk as full relative to capacity as the full
		// run, or the cleaner never activates.
		opts.Capacity = 12 << 20
		opts.Files = 2000
		opts.Overwrites = 6000
	}
	rows, err := experiments.PolicyAblation(opts)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatPolicy(rows))
	return emitCSV("ablation-policy", func(f *os.File) error { return experiments.CSVPolicy(f, rows) })
}

func runUtilization(quick bool) error {
	opts := experiments.DefaultUtilizationOpts()
	if quick {
		opts.Capacity = 32 << 20
		opts.Office.Ops = 15000
		opts.Office.TargetFiles = 1200
		opts.Office.MeanLifetimeOps = 4000
	}
	greedy, costBenefit, err := experiments.UtilizationByPolicy(opts)
	if err != nil {
		return err
	}
	fmt.Println("--- greedy cleaning ---")
	fmt.Print(experiments.FormatUtilization(greedy))
	fmt.Println("--- cost-benefit cleaning ---")
	fmt.Print(experiments.FormatUtilization(costBenefit))
	return emitCSV("utilization", func(f *os.File) error {
		if err := experiments.CSVUtilization(f, greedy, "greedy"); err != nil {
			return err
		}
		return experiments.CSVUtilization(f, costBenefit, "cost-benefit")
	})
}

func runAblationCkpt(quick bool) error {
	opts := experiments.DefaultCkptOpts()
	if quick {
		opts.Capacity = 32 << 20
		opts.Office.Ops = 3000
		opts.Office.TargetFiles = 800
		opts.Office.MeanLifetimeOps = 1000
	}
	rows, err := experiments.CheckpointAblation(opts)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatCkpt(rows))
	return emitCSV("ablation-ckpt", func(f *os.File) error { return experiments.CSVCkpt(f, rows) })
}

func runCleaningCurve(quick bool) error {
	opts := experiments.DefaultCleaningOpts()
	if quick {
		// Keep the top setpoints — the 0.80 headline must survive the
		// smoke run — and shrink the volume and churn instead.
		opts.Capacity = 24 << 20
		opts.OverwritesPerFile = 2
		opts.Utilizations = []float64{0.55, 0.75, 0.80}
	}
	rows, err := experiments.CleaningCurve(opts)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatCleaning(rows))
	if benchJSON != "" {
		summary := map[string]any{"experiment": "cleaning-curve"}
		for _, arm := range []struct{ name, key string }{
			{"greedy", "greedy"},
			{"cost-benefit", "costbenefit"},
			{"cost-benefit+seg", "costbenefit_seg"},
		} {
			r, ok := experiments.CleaningAt(rows, arm.name, 0.80)
			if !ok {
				return fmt.Errorf("cleaning-curve: no %s row at utilization 0.80", arm.name)
			}
			summary[arm.key+"_write_cost_u80"] = r.WriteCost
			summary[arm.key+"_write_amp_u80"] = r.WriteAmp
			summary[arm.key+"_segments_cleaned_u80"] = r.SegmentsCleaned
		}
		if err := writeBenchJSON(benchJSON, summary); err != nil {
			return err
		}
	}
	return emitCSV("cleaning-curve", func(f *os.File) error { return experiments.CSVCleaning(f, rows) })
}

// traceOut and benchJSON, when non-empty, are the output paths of the
// trace experiment's JSONL export and JSON summary.
var traceOut, benchJSON string

func runTrace(quick bool) error {
	opts := experiments.DefaultTraceSmokeOpts()
	if quick {
		opts.NumFiles = 500
		opts.ChurnFiles = 1500
		opts.CleanSegments = 6
	}
	rec := obs.NewRecorder()
	opts.Trace = rec
	r, err := experiments.TraceSmoke(opts)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatTraceSmoke(r))
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		if err := rec.WriteJSONL(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace: %d spans, %d disk events, %d cleans -> %s\n",
			len(rec.Spans()), len(rec.Events()), len(rec.Cleans()), traceOut)
	}
	if benchJSON != "" {
		summary := map[string]any{
			"experiment":        "trace",
			"create_ops_per_s":  r.Create.OpsPerSec(),
			"read_ops_per_s":    r.Read.OpsPerSec(),
			"delete_ops_per_s":  r.Delete.OpsPerSec(),
			"disk_busy_s":       r.TraceBusy.Seconds(),
			"named_share":       r.NamedShare(),
			"clean_activations": r.CleanActivations,
			"write_cost":        r.WriteCostTrace,
			"write_cost_stats":  r.WriteCostStats,
			"spans":             r.Spans,
		}
		if err := writeBenchJSON(benchJSON, summary); err != nil {
			return err
		}
	}
	return nil
}

func runConcurrency(quick bool) error {
	opts := experiments.DefaultConcurrencyOpts()
	if quick {
		opts.Capacity = 64 << 20
		opts.ClientCounts = []int{1, 4, 8}
		opts.OpsPerClient = 32
	}
	rows, err := experiments.Concurrency(opts)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatConcurrency(rows))
	if benchJSON != "" {
		type point struct {
			Clients          int     `json:"clients"`
			LFSOpsPerSec     float64 `json:"lfs_ops_per_s"`
			LFSNoGCOpsPerSec float64 `json:"lfs_nogc_ops_per_s"`
			FFSOpsPerSec     float64 `json:"ffs_ops_per_s"`
			GroupCommits     int64   `json:"group_commits"`
			Piggybacked      int64   `json:"piggybacked"`
			LFSWritesPerOp   float64 `json:"lfs_writes_per_op"`
			FFSWritesPerOp   float64 `json:"ffs_writes_per_op"`
			LFSP50Ms         float64 `json:"lfs_p50_ms"`
			LFSP95Ms         float64 `json:"lfs_p95_ms"`
			LFSP99Ms         float64 `json:"lfs_p99_ms"`
		}
		curve := make([]point, len(rows))
		for i, r := range rows {
			curve[i] = point{r.Clients, r.LFSOpsPerSec, r.LFSNoGCOpsPerSec,
				r.FFSOpsPerSec, r.GroupCommits, r.Piggybacked,
				r.LFSWritesPerOp, r.FFSWritesPerOp,
				r.LFSP50.Seconds() * 1000, r.LFSP95.Seconds() * 1000,
				r.LFSP99.Seconds() * 1000}
		}
		summary := map[string]any{"experiment": "concurrency", "curve": curve}
		if err := writeBenchJSON(benchJSON, summary); err != nil {
			return err
		}
	}
	return emitCSV("concurrency", func(f *os.File) error { return experiments.CSVConcurrency(f, rows) })
}

func runCritPath(quick bool) error {
	opts := experiments.DefaultCritPathOpts()
	if quick {
		opts.Capacity = 64 << 20
		opts.ClientCounts = []int{1, 4, 8}
		opts.OpsPerClient = 32
	}
	rows, err := experiments.CritPath(opts)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatCritPath(rows))
	if benchJSON != "" {
		curve := make([]map[string]any, len(rows))
		for i, r := range rows {
			p := map[string]any{
				"clients":         r.Clients,
				"fsyncs":          r.FsyncCount,
				"mean_ms":         r.MeanLatency().Seconds() * 1000,
				"p50_ms":          r.P50.Seconds() * 1000,
				"p95_ms":          r.P95.Seconds() * 1000,
				"top_blame":       r.TopBlame.String(),
				"top_blame_share": r.TopBlameShare,
			}
			for k := obs.PhaseKind(0); k < obs.NumPhaseKinds; k++ {
				p["mean_"+k.String()+"_ms"] = r.MeanPhase[k].Seconds() * 1000
			}
			curve[i] = p
		}
		// Exactness is a verdict: every span decomposed exactly, or
		// CritPath itself would have failed. Recorded as 0/1 so the
		// benchdiff gate pins it.
		summary := map[string]any{
			"experiment": "critpath",
			"curve":      curve,
			"exact":      1,
		}
		if err := writeBenchJSON(benchJSON, summary); err != nil {
			return err
		}
	}
	return nil
}

func runMetrics(quick bool) error {
	opts := experiments.DefaultMetricsSmokeOpts()
	if quick {
		opts.NumFiles = 500
		opts.ChurnFiles = 1500
		opts.CleanSegments = 6
	}
	r, err := experiments.MetricsSmoke(opts)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatMetricsSmoke(r))
	if benchJSON != "" {
		summary := map[string]any{
			"experiment":             "metrics",
			"samples":                r.Samples,
			"series":                 r.Series,
			"elapsed_s":              r.Elapsed.Seconds(),
			"final_ops":              r.FinalOps,
			"final_blocks_written":   r.FinalBlocksWritten,
			"final_segments_cleaned": r.FinalSegmentsCleaned,
			"final_write_cost":       r.FinalWriteCost,
			"final_clean_segments":   r.FinalCleanSegs,
		}
		if err := writeBenchJSON(benchJSON, summary); err != nil {
			return err
		}
	}
	return nil
}

func runSharding(quick bool) error {
	opts := experiments.DefaultShardingOpts()
	if quick {
		opts = experiments.QuickShardingOpts()
	}
	res, err := experiments.Sharding(opts)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatSharding(res))
	// The crash scenario fails the experiment itself on data loss or a
	// dirty fsck; determinism is a verdict, so enforce it here.
	if !res.Deterministic {
		return fmt.Errorf("sharding: same-seed rerun produced different shard images")
	}
	if benchJSON != "" {
		type point struct {
			Shards      int     `json:"shards"`
			Clients     int     `json:"clients"`
			OpsPerSec   float64 `json:"ops_per_s"`
			Speedup     float64 `json:"speedup"`
			WritesPerOp float64 `json:"writes_per_op"`
			P50Ms       float64 `json:"p50_ms"`
			P95Ms       float64 `json:"p95_ms"`
			P99Ms       float64 `json:"p99_ms"`
		}
		curve := make([]point, len(res.Rows))
		for i, r := range res.Rows {
			curve[i] = point{r.Shards, r.Clients, r.OpsPerSec, r.Speedup,
				r.WritesPerOp, r.P50.Seconds() * 1000,
				r.P95.Seconds() * 1000, r.P99.Seconds() * 1000}
		}
		// Booleans don't register with benchdiff's numeric gate, so the
		// two verdicts are recorded as 0/1 counters.
		det, fsck := 0, 0
		if res.Deterministic {
			det = 1
		}
		if res.Crash.FsckOk {
			fsck = 1
		}
		summary := map[string]any{
			"experiment":             "sharding",
			"curve":                  curve,
			"speedup_at_max":         res.Rows[len(res.Rows)-1].Speedup,
			"deterministic":          det,
			"crash_tolerated_errors": res.Crash.ToleratedErrors,
			"crash_healthy_ops":      res.Crash.HealthyOps,
			"crash_files_retained":   res.Crash.FilesRetained,
			"crash_fsck_ok":          fsck,
		}
		if err := writeBenchJSON(benchJSON, summary); err != nil {
			return err
		}
	}
	return emitCSV("sharding", func(f *os.File) error { return experiments.CSVSharding(f, res) })
}

func runAblationBlockSize(quick bool) error {
	opts := experiments.DefaultBlockSizeOpts()
	if quick {
		opts.Capacity = 32 << 20
		opts.Files = 1000
	}
	rows, err := experiments.BlockSizeAblation(opts)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatBlockSize(rows))
	return emitCSV("ablation-blocksize", func(f *os.File) error { return experiments.CSVBlockSize(f, rows) })
}
