package main

// The crashsweep experiment benchmarks the crash-point harness's two
// strategies against each other: the snapshot path restores a
// copy-on-write image per point (O(points)), the replay path re-runs
// the workload per point (O(points × writes)). Both are swept over the
// same mixed workload, wall-clock timed, and normalised to
// points-per-second; the run fails unless the snapshot path is at
// least minCrashSweepSpeedup times faster per point.
//
// This file lives in cmd/ (not internal/experiments) deliberately:
// measuring the harness itself needs wall-clock time, which the
// wallclock lint rule bans inside the simulation packages.

import (
	"fmt"
	"time"

	"lfs"
	"lfs/internal/fstest"
)

// minCrashSweepSpeedup is the acceptance floor: restoring snapshots
// must beat replaying workloads by at least this factor per point.
const minCrashSweepSpeedup = 5.0

// crashSweepWorkload is MixedWorkload followed by churn rounds of
// overwrites on files the mixed phase never deletes, with periodic
// syncs and checkpoints. Overwrites lengthen the disk-write stream —
// what replay pays for per point — while the live tree stays small.
func crashSweepWorkload(files, churn, blockSize int) []fstest.CrashOp {
	ops := fstest.MixedWorkload(files, blockSize)
	name := func(i int) string {
		dir := "/a"
		if i%2 == 1 {
			dir = "/b"
		}
		return fmt.Sprintf("%s/f%02d", dir, i)
	}
	for r := 0; r < churn; r++ {
		n := 0
		for i := 0; i < files; i++ {
			// MixedWorkload removes indices ≡ 2 (mod 6); churn only
			// the survivors ≡ 0 or 1.
			if i%6 > 1 {
				continue
			}
			data := make([]byte, 3*blockSize+blockSize/2)
			for j := range data {
				data[j] = byte(i*31 + (r+2)*7 + j)
			}
			// Sync after every overwrite so each one reaches the log
			// as its own partial-segment flush instead of batching in
			// the cache.
			ops = append(ops,
				fstest.CrashOp{Kind: fstest.OpWrite, Path: name(i), Off: 0, Data: data},
				fstest.CrashOp{Kind: fstest.OpSync},
			)
			if n++; n%4 == 3 {
				ops = append(ops, fstest.CrashOp{Kind: fstest.OpCheckpoint})
			}
		}
		if r%2 == 1 {
			ops = append(ops, fstest.CrashOp{Kind: fstest.OpClean})
		}
	}
	ops = append(ops, fstest.CrashOp{Kind: fstest.OpCheckpoint})
	return ops
}

func runCrashSweep(quick bool) error {
	cfg := lfs.DefaultConfig()
	cfg.SegmentSize = 64 << 10
	cfg.CacheBlocks = 64
	cfg.MaxInodes = 512
	// The workload must be long enough that replaying it dwarfs the
	// per-point verification cost both strategies share — too short
	// and the measured ratio flattens toward 1. Churn rounds extend
	// the write stream without growing the live set (and hence the
	// verification walk).
	files, churn, snapStride, replayStride := 32, 40, 3, 24
	if quick {
		files, churn, snapStride, replayStride = 24, 60, 4, 32
	}
	base := fstest.CrashConfig{
		FSConfig:     cfg,
		DiskCapacity: 8 << 20,
		Workload:     crashSweepWorkload(files, churn, cfg.BlockSize),
		Torn:         true,
	}

	snapCfg := base
	snapCfg.Stride = snapStride
	start := time.Now()
	snap, err := fstest.RunCrashPoints(snapCfg)
	if err != nil {
		return fmt.Errorf("snapshot sweep: %w", err)
	}
	snapElapsed := time.Since(start)

	replayCfg := base
	replayCfg.Replay = true
	replayCfg.Stride = replayStride
	start = time.Now()
	replay, err := fstest.RunCrashPoints(replayCfg)
	if err != nil {
		return fmt.Errorf("replay sweep: %w", err)
	}
	replayElapsed := time.Since(start)

	// The strategies must agree on the workload and both recover
	// cleanly; a failure here is a harness bug, not a perf result.
	if snap.TotalWrites != replay.TotalWrites {
		return fmt.Errorf("strategies disagree on write count: snapshot %d, replay %d",
			snap.TotalWrites, replay.TotalWrites)
	}
	for _, f := range append(snap.Failures, replay.Failures...) {
		fmt.Printf("  FAIL %s\n", f)
	}
	if !snap.Ok() || !replay.Ok() {
		return fmt.Errorf("crash sweep found %d recovery failures",
			len(snap.Failures)+len(replay.Failures))
	}

	snapPerSec := float64(snap.Points) / snapElapsed.Seconds()
	replayPerSec := float64(replay.Points) / replayElapsed.Seconds()
	speedup := snapPerSec / replayPerSec
	fmt.Printf("workload: %d ops, %d disk writes\n", len(base.Workload), snap.TotalWrites)
	fmt.Printf("snapshot: %4d points in %8.2fms  (%8.1f points/s, %d rolled forward)\n",
		snap.Points, snapElapsed.Seconds()*1000, snapPerSec, snap.RollForwardPoints)
	fmt.Printf("replay:   %4d points in %8.2fms  (%8.1f points/s, stride %d)\n",
		replay.Points, replayElapsed.Seconds()*1000, replayPerSec, replayStride)
	fmt.Printf("speedup:  %.1fx per point (floor %.0fx)\n", speedup, minCrashSweepSpeedup)
	if speedup < minCrashSweepSpeedup {
		return fmt.Errorf("snapshot sweep only %.1fx faster than replay (floor %.0fx)",
			speedup, minCrashSweepSpeedup)
	}

	if benchJSON != "" {
		// Deterministic counters are JSON numbers (diffed by
		// benchdiff); wall-clock figures are strings, recorded for
		// humans but exempt from the ±10% gate — the speedup floor is
		// enforced above instead.
		summary := map[string]any{
			"experiment":            "crashsweep",
			"total_writes":          snap.TotalWrites,
			"points":                snap.Points,
			"rollforward_points":    snap.RollForwardPoints,
			"snapshot_points":       snap.SnapshotPoints,
			"replay_points":         replay.Points,
			"crash_failures":        len(snap.Failures) + len(replay.Failures),
			"speedup_floor_met":     1,
			"snapshot_points_per_s": fmt.Sprintf("%.1f", snapPerSec),
			"replay_points_per_s":   fmt.Sprintf("%.1f", replayPerSec),
			"speedup_x":             fmt.Sprintf("%.1f", speedup),
		}
		if err := writeBenchJSON(benchJSON, summary); err != nil {
			return err
		}
	}
	return nil
}
