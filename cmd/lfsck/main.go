// Command lfsck checks the consistency of an LFS disk image: it
// mounts the volume (running normal crash recovery), walks every
// reachable file, and cross-checks block addresses, directory
// structure, the inode map, and the segment usage array.
//
// Usage:
//
//	lfsck -image fs.img -size 300M [-noroll]
//
// Exit status 0 means consistent; 1 means problems were found; 2
// means the image could not be checked at all.
package main

import (
	"flag"
	"fmt"
	"os"

	"lfs"
	"lfs/internal/cli"
)

func main() {
	image := flag.String("image", "", "path of the disk image")
	size := flag.String("size", "300M", "volume capacity the image was created with")
	block := flag.Int("block", 4096, "block size the image was formatted with")
	segment := flag.String("segment", "1M", "segment size the image was formatted with")
	inodes := flag.Int("inodes", 65536, "maximum inodes the image was formatted with")
	noroll := flag.Bool("noroll", false, "skip roll-forward recovery at mount")
	flag.Parse()

	if *image == "" {
		fmt.Fprintln(os.Stderr, "lfsck: -image is required")
		os.Exit(2)
	}
	capacity, err := cli.ParseSize(*size)
	if err != nil {
		fail(err)
	}
	segSize, err := cli.ParseSize(*segment)
	if err != nil {
		fail(err)
	}
	// Opening a missing or short image would silently create or
	// zero-extend it, turning obvious truncation into confusing
	// "corruption" reports — refuse and warn instead.
	info, err := os.Stat(*image)
	if err != nil {
		fail(fmt.Errorf("image: %w", err))
	}
	if want := lfs.ImageBytes(capacity); info.Size() < want {
		fmt.Fprintf(os.Stderr, "lfsck: warning: image is %d bytes, expected %d; the missing tail reads as zeros\n",
			info.Size(), want)
	}
	d, err := lfs.OpenImage(*image, capacity)
	if err != nil {
		fail(err)
	}
	defer d.Close()

	cfg := lfs.DefaultConfig()
	cfg.BlockSize = *block
	cfg.SegmentSize = int(segSize)
	cfg.MaxInodes = *inodes
	cfg.RollForward = !*noroll
	rep, err := lfs.Fsck(d, cfg)
	if err != nil {
		fail(fmt.Errorf("mount: %w", err))
	}
	fmt.Printf("lfsck: %d files, %d directories, %d data blocks, %d orphaned inodes (simulated %v)\n",
		rep.Files, rep.Dirs, rep.DataBlocks, rep.OrphanedInodes, rep.Duration)
	if !rep.Ok() {
		for _, p := range rep.Problems {
			fmt.Printf("lfsck: PROBLEM: %s\n", p)
		}
		os.Exit(1)
	}
	fmt.Println("lfsck: clean")
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "lfsck: %v\n", err)
	os.Exit(2)
}
