package main

import (
	"fmt"
	"strings"
	"testing"

	"lfs/internal/core"
	"lfs/internal/disk"
	"lfs/internal/obs"
	"lfs/internal/server"
	"lfs/internal/sim"
)

// fixture returns two instances' worth of samples.
func fixture() []obs.Sample {
	mk := func(fs string, t, seq int64, depth float64, clean float64) obs.Sample {
		return obs.Sample{
			Type: "metrics", V: obs.MetricsSchemaVersion, FS: fs, Time: t, Seq: seq,
			Counters: map[string]int64{"ops": seq * 10},
			Gauges:   map[string]float64{"disk.queue.depth": depth, "seg.clean": clean},
			Hists: map[string]obs.HistSnapshot{"seg.util": {
				Bounds: []float64{0.5}, Counts: []int64{int64(seq), 2},
			}},
		}
	}
	return []obs.Sample{
		mk("lfs-0", 0, 0, 0, 60),
		mk("lfs-0", 1e9, 1, 3, 58),
		mk("lfs-0", 2e9, 2, 1, 59),
		mk("lfs-1", 0, 0, 0, 60),
		mk("lfs-1", 1e9, 1, 7, 50),
	}
}

func TestDashboardRendersSeries(t *testing.T) {
	out, err := buildDashboard(fixture(), dashOpts{Width: 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"=== lfs-0: 3 samples over 2s",
		"=== lfs-1: 2 samples over 1s",
		"disk.queue.depth",
		"seg.clean",
		"ops",
		"final 20", // lfs-0 ops counter ends at 20
		"final 7",  // lfs-1 queue depth ends at 7
		"seg.util (final)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dashboard missing %q:\n%s", want, out)
		}
	}
	// Sparkline shape: lfs-0 queue depth 0,3,1 → low, high, middle.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "disk.queue.depth") && strings.Contains(line, "final 1 ") {
			if !strings.Contains(line, "▁█") {
				t.Errorf("queue-depth sparkline shape wrong: %q", line)
			}
		}
	}
}

func TestDashboardFilters(t *testing.T) {
	out, err := buildDashboard(fixture(), dashOpts{Width: 16, FS: "lfs-1", Series: []string{"seg.clean"}})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "lfs-0") || strings.Contains(out, "disk.queue.depth") {
		t.Errorf("filters not applied:\n%s", out)
	}
	if !strings.Contains(out, "seg.clean") || !strings.Contains(out, "final 50") {
		t.Errorf("filtered output wrong:\n%s", out)
	}

	if _, err := buildDashboard(fixture(), dashOpts{Width: 16, FS: "nope"}); err == nil {
		t.Error("unknown -fs label accepted")
	}
	if _, err := buildDashboard(fixture(), dashOpts{Width: 16, Series: []string{"nope"}}); err == nil {
		t.Error("unknown -series name accepted")
	}
}

func TestDashboardList(t *testing.T) {
	out, err := buildDashboard(fixture(), dashOpts{Width: 16, List: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "lfs-0: 3 samples") || !strings.Contains(out, "  seg.clean") {
		t.Errorf("list output wrong:\n%s", out)
	}
}

func TestDownsample(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i)
	}
	got := downsample(vals, 10)
	if len(got) != 10 {
		t.Fatalf("downsample kept %d points, want 10", len(got))
	}
	// Bucket means of 0..99 in tens: 4.5, 14.5, ...
	if got[0] != 4.5 || got[9] != 94.5 {
		t.Errorf("bucket means %v wrong", got)
	}
	short := []float64{1, 2}
	if len(downsample(short, 10)) != 2 {
		t.Error("short series must pass through unchanged")
	}
}

// TestDashboardReplaysConcurrentRun is the end-to-end replay golden
// test: a multi-client group-commit run sampled on the event loop,
// replayed through the dashboard, must render the queue-depth and
// utilization series with final values exactly equal to the
// end-of-run aggregates.
func TestDashboardReplaysConcurrentRun(t *testing.T) {
	samp := obs.NewSampler(10 * sim.Millisecond)
	cfg := core.DefaultConfig()
	cfg.GroupCommit = true
	cfg.Metrics = samp
	d := disk.NewMem(64<<20, sim.NewClock())
	if err := core.Format(d, cfg); err != nil {
		t.Fatal(err)
	}
	fs, err := core.Mount(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := server.Run(fs, server.Config{
		Clients: 8, OpsPerClient: 32, WriteSize: 4096,
		FilesPerClient: 4, Seed: 7, MetricsInterval: samp.Interval(),
	})
	if err != nil {
		t.Fatal(err)
	}
	fs.SampleMetricsNow()
	samples := samp.Samples()
	if len(samples) < 3 {
		t.Fatalf("run produced %d samples; replay is vacuous", len(samples))
	}

	out, err := buildDashboard(samples, dashOpts{Width: 32})
	if err != nil {
		t.Fatal(err)
	}

	// The final rendered values equal the live end-of-run aggregates.
	snap := fs.StatsSnapshot()
	finals := map[string]string{
		"disk.queue.max":     fnum(float64(d.MaxQueueDepth())),
		"seg.clean":          fnum(float64(snap.CleanSegments)),
		"log.group_commits":  fnum(float64(snap.Log.GroupCommits)),
		"log.blocks_written": fnum(float64(snap.Log.BlocksWritten)),
	}
	for series, want := range finals {
		found := false
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, series+" ") &&
				strings.Contains(line, fmt.Sprintf("final %s min", want)) {
				found = true
			}
		}
		if !found {
			t.Errorf("dashboard missing %q with final %s:\n%s", series, want, out)
		}
	}
	if !strings.Contains(out, "disk.queue.depth") {
		t.Errorf("dashboard missing queue-depth series:\n%s", out)
	}

	// The rendered final utilization histogram is the real final one.
	wantHist := fmt.Sprintf("%v", samples[len(samples)-1].Hists["seg.util"].Hist())
	if !strings.Contains(out, wantHist) {
		t.Errorf("dashboard utilization histogram missing %q:\n%s", wantHist, out)
	}
	if res.Ops != int64(8*32) {
		t.Errorf("run completed %d ops, want %d", res.Ops, 8*32)
	}
}

func TestSparklineFlatSeries(t *testing.T) {
	if s := sparkline([]float64{5, 5, 5}, 8); s != "▁▁▁" {
		t.Errorf("flat series sparkline %q, want all-low", s)
	}
}

// shardFixture returns samples for a 2-shard run plus one unrelated
// instance.
func shardFixture() []obs.Sample {
	mk := func(fs string, t, seq, ops int64, rate, depth, debt float64) obs.Sample {
		return obs.Sample{
			Type: "metrics", V: obs.MetricsSchemaVersion, FS: fs, Time: t, Seq: seq,
			Counters: map[string]int64{"ops": ops},
			Gauges: map[string]float64{"ops.rate": rate,
				"disk.queue.depth": depth, "cleaner.debt_segments": debt},
		}
	}
	return []obs.Sample{
		mk("shard-1", 0, 0, 0, 0, 0, 0),
		mk("shard-1", 1e9, 1, 40, 40, 2, 1),
		mk("shard-0", 0, 0, 0, 0, 0, 0),
		mk("shard-0", 1e9, 1, 64, 64, 5, 3),
		mk("lfs-0", 0, 0, 9, 9, 1, 0),
	}
}

// TestDashboardShardSummary asserts the per-shard view: shard-N
// streams collapse into one table row each (in shard order, even when
// the stream order differs), other instances keep the full view, and
// -fs shard-K bypasses the summary.
func TestDashboardShardSummary(t *testing.T) {
	out, err := buildDashboard(shardFixture(), dashOpts{Width: 16})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "=== shards: 2 instances") {
		t.Fatalf("shard summary missing:\n%s", out)
	}
	// One row per shard, shard 0 first despite shard-1 appearing first
	// in the stream; no full dashboard blocks for shard labels.
	i0 := strings.Index(out, "\n       0 ")
	i1 := strings.Index(out, "\n       1 ")
	if i0 < 0 || i1 < 0 || i1 < i0 {
		t.Errorf("shard rows missing or out of order:\n%s", out)
	}
	if strings.Contains(out, "=== shard-0") || strings.Contains(out, "=== shard-1") {
		t.Errorf("shard instances still rendered in full:\n%s", out)
	}
	// Row values: shard 0 final ops 64, peak qdepth 5, final debt 3.
	for _, want := range []string{"64", "5", "3"} {
		if !strings.Contains(out, want) {
			t.Errorf("shard row missing value %q:\n%s", want, out)
		}
	}
	// The non-shard instance keeps its full view.
	if !strings.Contains(out, "=== lfs-0") {
		t.Errorf("non-shard instance lost its full view:\n%s", out)
	}

	// -fs shard-0 opens the full single-shard view, no summary.
	out, err = buildDashboard(shardFixture(), dashOpts{Width: 16, FS: "shard-0"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "=== shard-0") || strings.Contains(out, "=== shards:") {
		t.Errorf("-fs shard-0 view wrong:\n%s", out)
	}

	// A single shard stream has nothing to collapse.
	out, err = buildDashboard(shardFixture()[:2], dashOpts{Width: 16})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "=== shards:") || !strings.Contains(out, "=== shard-1") {
		t.Errorf("single shard stream must render in full:\n%s", out)
	}
}

func TestShardIndex(t *testing.T) {
	for label, want := range map[string]int{"shard-0": 0, "shard-12": 12} {
		if n, ok := shardIndex(label); !ok || n != want {
			t.Errorf("shardIndex(%q) = %d, %v", label, n, ok)
		}
	}
	for _, label := range []string{"shard-", "shard-x", "lfs-0", "shard--1", ""} {
		if _, ok := shardIndex(label); ok {
			t.Errorf("shardIndex(%q) accepted", label)
		}
	}
}
