// Command lfstop replays a metrics JSONL time series (written by
// lfsbench -metrics, see FORMAT.md "Metrics JSONL") into an ASCII
// dashboard: one sparkline per series plus a final/min/max table, and
// the final segment-utilization histogram. It answers "what did the
// run look like over time" after the fact, from the recorded samples
// alone — it never touches a simulated clock or a file system.
//
// The per-shard streams of a sharded run (labels shard-0, shard-1,
// ...) collapse into one summary table — one row per shard with its
// ops, peak ops/s, peak queue depth, and cleaner debt — instead of
// interleaving N full dashboards; `-fs shard-K` still opens one
// shard's full view.
//
// Usage:
//
//	lfstop run.metrics.jsonl
//	lfsbench -experiment concurrency -metrics - | lfstop
//	lfstop -series disk.queue.depth,seg.clean -fs lfs-0 run.metrics.jsonl
//	lfstop -fs shard-2 sharding.metrics.jsonl
//	lfstop -list run.metrics.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"lfs/internal/obs"
	"lfs/internal/sim"
)

func main() {
	series := flag.String("series", "", "comma-separated series names to show (default: all)")
	fsLabel := flag.String("fs", "", "only show this instance label (default: all)")
	width := flag.Int("width", 64, "sparkline width in characters")
	list := flag.Bool("list", false, "list instance labels and series names, then exit")
	flag.Parse()
	if *width < 8 {
		fmt.Fprintln(os.Stderr, "lfstop: -width must be at least 8")
		os.Exit(2)
	}

	var in io.Reader = os.Stdin
	if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "lfstop: at most one input file")
		os.Exit(2)
	}
	if flag.NArg() == 1 && flag.Arg(0) != "-" {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "lfstop: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	samples, err := obs.ReadSamples(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lfstop: %v\n", err)
		os.Exit(1)
	}
	if len(samples) == 0 {
		fmt.Fprintln(os.Stderr, "lfstop: no metrics samples in input")
		os.Exit(1)
	}

	opts := dashOpts{Width: *width, FS: *fsLabel, List: *list}
	if *series != "" {
		opts.Series = strings.Split(*series, ",")
	}
	out, err := buildDashboard(samples, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lfstop: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(out)
}

// dashOpts shapes the dashboard.
type dashOpts struct {
	// Width is the sparkline width in characters.
	Width int
	// Series, when non-empty, restricts the rows to these names.
	Series []string
	// FS, when non-empty, restricts the output to one instance label.
	FS string
	// List replaces the dashboard with a label/series inventory.
	List bool
}

// sparkRunes is the eight-level sparkline alphabet, lowest first.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// buildDashboard renders the dashboard for the given samples. Pure:
// its output is a function of the samples and options alone, so the
// replay tests compare it against end-of-run aggregates directly.
func buildDashboard(samples []obs.Sample, opts dashOpts) (string, error) {
	groups, labels := groupByFS(samples)
	if opts.FS != "" {
		if _, ok := groups[opts.FS]; !ok {
			return "", fmt.Errorf("no instance labelled %q (have: %s)",
				opts.FS, strings.Join(labels, ", "))
		}
		labels = []string{opts.FS}
	}

	var b strings.Builder
	if opts.List {
		for _, label := range labels {
			fmt.Fprintf(&b, "%s: %d samples\n", displayLabel(label), len(groups[label]))
			for _, name := range obs.SeriesNames(groups[label]) {
				fmt.Fprintf(&b, "  %s\n", name)
			}
		}
		return b.String(), nil
	}

	if opts.FS == "" && len(opts.Series) == 0 {
		labels = renderShardSummary(&b, groups, labels)
	}
	for _, label := range labels {
		ss := groups[label]
		if err := renderInstance(&b, displayLabel(label), ss, opts); err != nil {
			return "", err
		}
	}
	return b.String(), nil
}

// shardIndex extracts N from a shard-N instance label (the streams
// the sharding experiment emits); ok is false for any other label.
func shardIndex(label string) (int, bool) {
	rest, found := strings.CutPrefix(label, "shard-")
	if !found || rest == "" {
		return 0, false
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// renderShardSummary collapses shard-N-labelled instances into one
// table — one row per shard, in shard order — and returns the labels
// that still need the full per-instance rendering. With fewer than
// two shard streams there is nothing to collapse and the labels pass
// through untouched.
func renderShardSummary(b *strings.Builder, groups map[string][]obs.Sample, labels []string) []string {
	type shardRow struct {
		n     int
		label string
	}
	var shards []shardRow
	var rest []string
	for _, l := range labels {
		if n, ok := shardIndex(l); ok {
			shards = append(shards, shardRow{n, l})
		} else {
			rest = append(rest, l)
		}
	}
	if len(shards) < 2 {
		return labels
	}
	sort.Slice(shards, func(i, j int) bool { return shards[i].n < shards[j].n })
	fmt.Fprintf(b, "=== shards: %d instances, one row per shard (-fs shard-K for the full view) ===\n",
		len(shards))
	fmt.Fprintf(b, "%8s %8s %10s %12s %12s %12s %16s\n",
		"shard", "samples", "ops", "peak ops/s", "peak qdepth", "clean.debt", "top fsync phase")
	for _, s := range shards {
		ss := groups[s.label]
		ops := seriesValues(ss, "ops")
		_, peakRate := minMax(seriesValues(ss, "ops.rate"))
		_, peakDepth := minMax(seriesValues(ss, "disk.queue.depth"))
		debt := seriesValues(ss, "cleaner.debt_segments")
		fmt.Fprintf(b, "%8d %8d %10s %12s %12s %12s %16s\n",
			s.n, len(ss), fnum(ops[len(ops)-1]), fnum(peakRate),
			fnum(peakDepth), fnum(debt[len(debt)-1]), topFsyncPhase(ss))
	}
	return rest
}

// topFsyncPhase names the phase with the largest peak fsync p95
// across the shard's op.fsync.phase.<kind>.p95 series — the one-glance
// answer to "what is this shard's fsync tail waiting on". "-" when
// the stream predates phase metrics or no fsync ever waited.
func topFsyncPhase(ss []obs.Sample) string {
	top, best := "-", 0.0
	for k := obs.PhaseKind(0); k < obs.NumPhaseKinds; k++ {
		_, peak := minMax(seriesValues(ss, "op.fsync.phase."+k.String()+".p95"))
		if peak > best {
			top, best = k.String(), peak
		}
	}
	return top
}

// groupByFS splits samples by instance label, preserving sample order
// inside a group and first-appearance order across groups.
func groupByFS(samples []obs.Sample) (map[string][]obs.Sample, []string) {
	groups := make(map[string][]obs.Sample)
	var labels []string
	for _, sm := range samples {
		if _, ok := groups[sm.FS]; !ok {
			labels = append(labels, sm.FS)
		}
		groups[sm.FS] = append(groups[sm.FS], sm)
	}
	return groups, labels
}

// displayLabel names an instance in the output; an empty wire label
// (a single unlabelled sampler) renders as "(unlabelled)".
func displayLabel(label string) string {
	if label == "" {
		return "(unlabelled)"
	}
	return label
}

// renderInstance renders one instance's header, series rows, and
// final utilization histogram.
func renderInstance(b *strings.Builder, label string, ss []obs.Sample, opts dashOpts) error {
	first, last := ss[0], ss[len(ss)-1]
	span := sim.Time(last.Time).Sub(sim.Time(first.Time))
	fmt.Fprintf(b, "=== %s: %d samples over %v (t=%v..%v) ===\n",
		label, len(ss), span, sim.Time(first.Time), sim.Time(last.Time))

	names := obs.SeriesNames(ss)
	if len(opts.Series) > 0 {
		names = filterNames(names, opts.Series)
		if len(names) == 0 {
			return fmt.Errorf("none of the requested series exist in %s", label)
		}
	}
	nameW := 0
	for _, n := range names {
		if len(n) > nameW {
			nameW = len(n)
		}
	}
	for _, name := range names {
		vals := seriesValues(ss, name)
		lo, hi := minMax(vals)
		fmt.Fprintf(b, "%-*s %s final %s min %s max %s\n",
			nameW, name, sparkline(vals, opts.Width),
			fnum(vals[len(vals)-1]), fnum(lo), fnum(hi))
	}
	if h, ok := last.Hists["seg.util"]; ok && len(opts.Series) == 0 {
		fmt.Fprintf(b, "%-*s %v\n", nameW, "seg.util (final)", h.Hist())
	}
	return nil
}

// filterNames keeps the names present in the requested list.
func filterNames(names, want []string) []string {
	keep := make(map[string]bool, len(want))
	for _, w := range want {
		keep[strings.TrimSpace(w)] = true
	}
	var out []string
	for _, n := range names {
		if keep[n] {
			out = append(out, n)
		}
	}
	return out
}

// seriesValues extracts one series across samples; a sample missing
// the series contributes its zero value.
func seriesValues(ss []obs.Sample, name string) []float64 {
	out := make([]float64, len(ss))
	for i, sm := range ss {
		if v, ok := sm.Counters[name]; ok {
			out[i] = float64(v)
		} else {
			out[i] = sm.Gauges[name]
		}
	}
	return out
}

// minMax returns the extrema of vals (which is never empty).
func minMax(vals []float64) (lo, hi float64) {
	lo, hi = vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// sparkline renders vals as width sparkline characters, min-max
// scaled per series; longer series are downsampled by bucket mean.
func sparkline(vals []float64, width int) string {
	vals = downsample(vals, width)
	lo, hi := minMax(vals)
	var b strings.Builder
	for _, v := range vals {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(sparkRunes) {
				idx = len(sparkRunes) - 1
			}
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// downsample reduces vals to at most width points by averaging
// equal-size buckets (the last bucket may be short).
func downsample(vals []float64, width int) []float64 {
	if len(vals) <= width {
		return vals
	}
	out := make([]float64, width)
	for i := 0; i < width; i++ {
		start := i * len(vals) / width
		end := (i + 1) * len(vals) / width
		if end <= start {
			end = start + 1
		}
		var sum float64
		for _, v := range vals[start:end] {
			sum += v
		}
		out[i] = sum / float64(end-start)
	}
	return out
}

// fnum formats a value compactly: integers without decimals, others
// with up to four significant digits.
func fnum(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4g", v)
}
