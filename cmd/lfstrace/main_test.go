package main

import (
	"bytes"
	"flag"
	"os"
	"testing"

	"lfs/internal/obs"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// TestV1TraceGolden pins backward compatibility with trace schema v1:
// a committed pre-phases trace (no v field, no phases, no wait_ns)
// must still parse, and the aggregate summary must stay byte-identical
// to the committed golden — upgrading the schema must never change
// what old traces report.
func TestV1TraceGolden(t *testing.T) {
	f, err := os.Open("testdata/v1_trace.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := obs.ReadJSONL(f)
	if err != nil {
		t.Fatalf("v1 trace no longer parses: %v", err)
	}
	for _, r := range recs {
		if r.V != 0 {
			t.Fatalf("testdata trace is not v1: record carries v=%d", r.V)
		}
		if r.Type == "span" && len(r.Phases) != 0 {
			t.Fatalf("testdata trace is not v1: span carries phases")
		}
	}

	var buf bytes.Buffer
	summarise(&buf, "testdata/v1_trace.jsonl", recs)
	const golden = "testdata/v1_summary.golden"
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("v1 summary drifted from golden (rerun with -update if intended)\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestV1PhaselessSpansUnattributed checks that v1 spans — which carry
// no phase lists — surface their whole latency as unattributed in the
// phase aggregation rather than being silently dropped or miscounted.
func TestV1PhaselessSpansUnattributed(t *testing.T) {
	f, err := os.Open("testdata/v1_trace.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := obs.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	agg := obs.AggregateRecords(recs)
	for _, o := range agg.Ops {
		if got := attributed(o); got != 0 {
			t.Errorf("op %s: v1 spans attributed %v to phases; want 0", o.Op, got)
		}
	}
}

// TestReportJSONShape checks the -json report parses back and keeps
// phase entries in fixed kind order with every kind present.
func TestReportJSONShape(t *testing.T) {
	f, err := os.Open("testdata/v1_trace.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := obs.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	r := newReport(recs)
	if r.Records != len(recs) {
		t.Errorf("report records = %d, want %d", r.Records, len(recs))
	}
	for _, o := range r.Ops {
		if len(o.Phases) != int(obs.NumPhaseKinds) {
			t.Fatalf("op %s: %d phase entries, want %d", o.Op, len(o.Phases), obs.NumPhaseKinds)
		}
		for k := obs.PhaseKind(0); k < obs.NumPhaseKinds; k++ {
			if o.Phases[k].Kind != k.String() {
				t.Errorf("op %s phase %d = %q, want %q", o.Op, k, o.Phases[k].Kind, k.String())
			}
		}
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
}
