// Command lfstrace summarises a JSONL trace written by the tracing
// subsystem (lfsbench -experiment trace -trace out.jsonl, or any
// program calling TraceRecorder.WriteJSONL).
//
// Usage:
//
//	lfstrace out.jsonl        # aggregate summary
//	lfstrace -raw out.jsonl   # re-print every record one per line
//	lfstrace < out.jsonl      # read from stdin
//
// The summary has three sections: per-operation latency statistics
// (with a log-scale histogram), the disk busy-time decomposition by
// I/O cause, and the cleaner activation summary with the paper's
// write cost.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"lfs/internal/obs"
	"lfs/internal/sim"
)

func main() {
	raw := flag.Bool("raw", false, "dump records instead of aggregating")
	flag.Parse()

	var in io.Reader = os.Stdin
	name := "stdin"
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "lfstrace: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
		name = flag.Arg(0)
	}
	recs, err := obs.ReadJSONL(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lfstrace: %v\n", err)
		os.Exit(1)
	}
	if *raw {
		for _, r := range recs {
			dumpRecord(r)
		}
		return
	}
	summarise(name, recs)
}

func dumpRecord(r obs.Record) {
	switch r.Type {
	case "span":
		status := "ok"
		if r.Err != "" {
			status = r.Err
		}
		fmt.Printf("%-14v span  %-8s %-24s %12v cpu=%-8d %s\n",
			sim.Time(r.Start), r.Op, r.Path,
			sim.Time(r.End).Sub(sim.Time(r.Start)), r.CPU, status)
	case "io":
		fmt.Printf("%-14v io    %-5s sector=%-9d n=%-5d %-14s %12v %s\n",
			sim.Time(r.Time), r.Kind, r.Sector, r.Sectors, r.Cause,
			sim.Duration(r.Service), r.Label)
	case "clean":
		fmt.Printf("%-14v clean seg=%-6d util=%.3f read=%d copied=%d reclaimed=%d cost=%.2f\n",
			sim.Time(r.Time), r.Seg, r.Utilization,
			r.BytesRead, r.BytesCopied, r.BytesReclaimed, r.WriteCost)
	default:
		fmt.Printf("?             %v\n", r)
	}
}

func summarise(name string, recs []obs.Record) {
	agg := obs.AggregateRecords(recs)
	fmt.Printf("%s: %d records\n\n", name, len(recs))

	if len(agg.Ops) > 0 {
		fmt.Printf("operations\n")
		fmt.Printf("%-10s %8s %6s %12s %12s %12s %12s %12s %12s %12s\n",
			"op", "count", "errs", "mean", "min", "max", "p50", "p95", "p99", "cpu/op")
		for _, o := range agg.Ops {
			cpuPerOp := int64(0)
			if o.Count > 0 {
				cpuPerOp = o.CPU / o.Count
			}
			fmt.Printf("%-10s %8d %6d %12v %12v %12v %12v %12v %12v %12d\n",
				o.Op, o.Count, o.Errors, o.Mean(), o.Min, o.Max,
				quantileDur(o.Latency, 0.5), quantileDur(o.Latency, 0.95),
				quantileDur(o.Latency, 0.99), cpuPerOp)
		}
		fmt.Printf("\nlatency histograms (seconds)\n")
		for _, o := range agg.Ops {
			fmt.Printf("%-10s %v\n", o.Op, o.Latency)
		}
		fmt.Println()
	}

	if len(agg.IO) > 0 {
		fmt.Printf("disk busy time by cause (total %v)\n", agg.DiskBusy)
		for _, io := range agg.IO {
			fmt.Printf("  %-14s %8d reqs %10d sectors %14v (%5.1f%%)\n",
				io.Cause, io.Requests, io.Sectors, io.Busy,
				100*io.Busy.Seconds()/agg.DiskBusy.Seconds())
		}
		named, total := agg.AttributedBusy()
		fmt.Printf("  attributed to a named cause: %.2f%%\n\n",
			100*named.Seconds()/total.Seconds())
	}

	if agg.Clean.Activations > 0 {
		c := agg.Clean
		fmt.Printf("cleaner\n")
		fmt.Printf("  activations     %d\n", c.Activations)
		fmt.Printf("  bytes read      %d\n", c.BytesRead)
		fmt.Printf("  bytes copied    %d\n", c.BytesCopied)
		fmt.Printf("  bytes reclaimed %d\n", c.BytesReclaimed)
		fmt.Printf("  write cost      %.2f\n", c.WriteCost)
		fmt.Printf("  victim util     %v\n", c.Utilization)
	}
}

// quantileDur converts a latency-histogram quantile (seconds) to a
// duration for display.
func quantileDur(h obs.Histogram, p float64) sim.Duration {
	return sim.Duration(h.Quantile(p) * float64(sim.Second))
}
