// Command lfstrace summarises a JSONL trace written by the tracing
// subsystem (lfsbench -experiment trace -trace out.jsonl, or any
// program calling TraceRecorder.WriteJSONL).
//
// Usage:
//
//	lfstrace out.jsonl           # aggregate summary
//	lfstrace -critpath out.jsonl # latency decomposition by phase
//	lfstrace -json out.jsonl     # machine-readable report
//	lfstrace -raw out.jsonl      # re-print every record one per line
//	lfstrace < out.jsonl         # read from stdin
//
// The summary has three sections: per-operation latency statistics
// (with a log-scale histogram), the disk busy-time decomposition by
// I/O cause, and the cleaner activation summary with the paper's
// write cost.
//
// -critpath reads the spans' phase lists (trace schema v2) and prints
// each operation's latency decomposed across the phase kinds — CPU,
// lock wait, disk queue wait and service, group-commit leader and
// piggyback waits, cleaner interference, cross-shard fan-out — plus a
// top-blame summary naming the wait that owns each operation's time.
// Spans from v1 traces carry no phases and appear as unattributed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"lfs/internal/obs"
	"lfs/internal/sim"
)

func main() {
	raw := flag.Bool("raw", false, "dump records instead of aggregating")
	critpath := flag.Bool("critpath", false, "decompose each operation's latency by phase")
	jsonOut := flag.Bool("json", false, "write the aggregate report as JSON")
	flag.Parse()

	var in io.Reader = os.Stdin
	name := "stdin"
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "lfstrace: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
		name = flag.Arg(0)
	}
	recs, err := obs.ReadJSONL(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lfstrace: %v\n", err)
		os.Exit(1)
	}
	switch {
	case *raw:
		for _, r := range recs {
			dumpRecord(os.Stdout, r)
		}
	case *jsonOut:
		if err := newReport(recs).WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "lfstrace: %v\n", err)
			os.Exit(1)
		}
	case *critpath:
		summariseCritPath(os.Stdout, name, recs)
	default:
		summarise(os.Stdout, name, recs)
	}
}

func dumpRecord(w io.Writer, r obs.Record) {
	switch r.Type {
	case "span":
		status := "ok"
		if r.Err != "" {
			status = r.Err
		}
		fmt.Fprintf(w, "%-14v span  %-8s %-24s %12v cpu=%-8d %s\n",
			sim.Time(r.Start), r.Op, r.Path,
			sim.Time(r.End).Sub(sim.Time(r.Start)), r.CPU, status)
	case "io":
		fmt.Fprintf(w, "%-14v io    %-5s sector=%-9d n=%-5d %-14s %12v %s\n",
			sim.Time(r.Time), r.Kind, r.Sector, r.Sectors, r.Cause,
			sim.Duration(r.Service), r.Label)
	case "clean":
		fmt.Fprintf(w, "%-14v clean seg=%-6d util=%.3f read=%d copied=%d reclaimed=%d cost=%.2f\n",
			sim.Time(r.Time), r.Seg, r.Utilization,
			r.BytesRead, r.BytesCopied, r.BytesReclaimed, r.WriteCost)
	default:
		fmt.Fprintf(w, "?             %v\n", r)
	}
}

func summarise(w io.Writer, name string, recs []obs.Record) {
	agg := obs.AggregateRecords(recs)
	fmt.Fprintf(w, "%s: %d records\n\n", name, len(recs))

	if len(agg.Ops) > 0 {
		fmt.Fprintf(w, "operations\n")
		fmt.Fprintf(w, "%-10s %8s %6s %12s %12s %12s %12s %12s %12s %12s\n",
			"op", "count", "errs", "mean", "min", "max", "p50", "p95", "p99", "cpu/op")
		for _, o := range agg.Ops {
			cpuPerOp := int64(0)
			if o.Count > 0 {
				cpuPerOp = o.CPU / o.Count
			}
			fmt.Fprintf(w, "%-10s %8d %6d %12v %12v %12v %12v %12v %12v %12d\n",
				o.Op, o.Count, o.Errors, o.Mean(), o.Min, o.Max,
				quantileDur(o.Latency, 0.5), quantileDur(o.Latency, 0.95),
				quantileDur(o.Latency, 0.99), cpuPerOp)
		}
		fmt.Fprintf(w, "\nlatency histograms (seconds)\n")
		for _, o := range agg.Ops {
			fmt.Fprintf(w, "%-10s %v\n", o.Op, o.Latency)
		}
		fmt.Fprintln(w)
	}

	if len(agg.IO) > 0 {
		fmt.Fprintf(w, "disk busy time by cause (total %v)\n", agg.DiskBusy)
		for _, io := range agg.IO {
			fmt.Fprintf(w, "  %-14s %8d reqs %10d sectors %14v (%5.1f%%)\n",
				io.Cause, io.Requests, io.Sectors, io.Busy,
				100*io.Busy.Seconds()/agg.DiskBusy.Seconds())
		}
		named, total := agg.AttributedBusy()
		fmt.Fprintf(w, "  attributed to a named cause: %.2f%%\n\n",
			100*named.Seconds()/total.Seconds())
	}

	if agg.Clean.Activations > 0 {
		c := agg.Clean
		fmt.Fprintf(w, "cleaner\n")
		fmt.Fprintf(w, "  activations     %d\n", c.Activations)
		fmt.Fprintf(w, "  bytes read      %d\n", c.BytesRead)
		fmt.Fprintf(w, "  bytes copied    %d\n", c.BytesCopied)
		fmt.Fprintf(w, "  bytes reclaimed %d\n", c.BytesReclaimed)
		fmt.Fprintf(w, "  write cost      %.2f\n", c.WriteCost)
		fmt.Fprintf(w, "  victim util     %v\n", c.Utilization)
	}
}

// attributed sums an op's per-phase totals; Total minus it is latency
// from spans without phase lists (v1 traces).
func attributed(o obs.OpStats) sim.Duration {
	var sum sim.Duration
	for _, d := range o.Phase {
		sum += d
	}
	return sum
}

// summariseCritPath prints each operation's latency decomposed by
// phase kind, then names the wait that owns each operation's time.
func summariseCritPath(w io.Writer, name string, recs []obs.Record) {
	agg := obs.AggregateRecords(recs)
	fmt.Fprintf(w, "%s: critical path - share of each op's total latency by phase\n\n", name)
	if len(agg.Ops) == 0 {
		fmt.Fprintf(w, "no spans\n")
		return
	}
	fmt.Fprintf(w, "%-10s %8s %12s", "op", "count", "total")
	for k := obs.PhaseKind(0); k < obs.NumPhaseKinds; k++ {
		fmt.Fprintf(w, " %14s", k.String())
	}
	fmt.Fprintf(w, " %14s\n", "unattrib")
	for _, o := range agg.Ops {
		fmt.Fprintf(w, "%-10s %8d %12v", o.Op, o.Count, o.Total)
		share := func(d sim.Duration) float64 {
			if o.Total <= 0 {
				return 0
			}
			return 100 * d.Seconds() / o.Total.Seconds()
		}
		for k := obs.PhaseKind(0); k < obs.NumPhaseKinds; k++ {
			fmt.Fprintf(w, " %13.1f%%", share(o.Phase[k]))
		}
		fmt.Fprintf(w, " %13.1f%%\n", share(o.Total-attributed(o)))
	}

	fmt.Fprintf(w, "\ntop blame (largest wait per op; cpu excluded)\n")
	for _, o := range agg.Ops {
		top := obs.PhaseCPU
		for k := obs.PhaseCPU + 1; k < obs.NumPhaseKinds; k++ {
			if o.Phase[k] > o.Phase[top] || top == obs.PhaseCPU && o.Phase[k] > 0 {
				top = k
			}
		}
		if top == obs.PhaseCPU {
			fmt.Fprintf(w, "  %-10s all compute (no waits attributed)\n", o.Op)
			continue
		}
		fmt.Fprintf(w, "  %-10s %-14s %12v (%4.1f%% of %v)\n",
			o.Op, top, o.Phase[top],
			100*o.Phase[top].Seconds()/o.Total.Seconds(), o.Total)
	}
}

// report is the machine-readable aggregate, written by -json in the
// same idiom as lfslint -json: a single indented object with stable
// field names.
type report struct {
	// Records is the number of trace records read.
	Records int `json:"records"`
	// Ops are the per-operation statistics in op-name order.
	Ops []opReport `json:"ops"`
	// IO is the disk busy-time decomposition in cause order.
	IO []ioReport `json:"io,omitempty"`
	// Clean is the cleaner summary, present when any activation was
	// recorded.
	Clean *cleanReport `json:"clean,omitempty"`
}

// opReport is one operation's row in the JSON report.
type opReport struct {
	Op     string `json:"op"`
	Count  int64  `json:"count"`
	Errors int64  `json:"errors,omitempty"`
	CPU    int64  `json:"cpu"`
	MeanNs int64  `json:"mean_ns"`
	MinNs  int64  `json:"min_ns"`
	MaxNs  int64  `json:"max_ns"`
	// Phases is the op's summed latency by phase in fixed kind order
	// (every kind present, zeros included), so consumers never depend
	// on map iteration order. UnattribNs is latency from spans
	// without phase lists (v1 traces).
	Phases     []phaseReport `json:"phases"`
	UnattribNs int64         `json:"unattrib_ns,omitempty"`
}

// phaseReport is one phase total in the JSON report.
type phaseReport struct {
	Kind  string `json:"kind"`
	DurNs int64  `json:"dur_ns"`
}

// ioReport is one I/O cause's row in the JSON report.
type ioReport struct {
	Cause    string `json:"cause"`
	Requests int64  `json:"requests"`
	Sectors  int64  `json:"sectors"`
	BusyNs   int64  `json:"busy_ns"`
}

// cleanReport is the cleaner summary in the JSON report.
type cleanReport struct {
	Activations    int64   `json:"activations"`
	BytesRead      int64   `json:"bytes_read"`
	BytesCopied    int64   `json:"bytes_copied"`
	BytesReclaimed int64   `json:"bytes_reclaimed"`
	WriteCost      float64 `json:"write_cost"`
}

// newReport assembles the JSON report from parsed trace records.
func newReport(recs []obs.Record) report {
	agg := obs.AggregateRecords(recs)
	r := report{Records: len(recs), Ops: []opReport{}}
	for _, o := range agg.Ops {
		or := opReport{
			Op: o.Op, Count: o.Count, Errors: o.Errors, CPU: o.CPU,
			MeanNs: int64(o.Mean()), MinNs: int64(o.Min), MaxNs: int64(o.Max),
			Phases:     make([]phaseReport, 0, obs.NumPhaseKinds),
			UnattribNs: int64(o.Total - attributed(o)),
		}
		for k := obs.PhaseKind(0); k < obs.NumPhaseKinds; k++ {
			or.Phases = append(or.Phases, phaseReport{Kind: k.String(), DurNs: int64(o.Phase[k])})
		}
		r.Ops = append(r.Ops, or)
	}
	for _, io := range agg.IO {
		r.IO = append(r.IO, ioReport{Cause: io.Cause.String(),
			Requests: io.Requests, Sectors: io.Sectors, BusyNs: int64(io.Busy)})
	}
	if agg.Clean.Activations > 0 {
		r.Clean = &cleanReport{Activations: agg.Clean.Activations,
			BytesRead: agg.Clean.BytesRead, BytesCopied: agg.Clean.BytesCopied,
			BytesReclaimed: agg.Clean.BytesReclaimed, WriteCost: agg.Clean.WriteCost}
	}
	return r
}

// WriteJSON writes the report as indented JSON (the lfslint -json
// idiom).
func (r report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// quantileDur converts a latency-histogram quantile (seconds) to a
// duration for display.
func quantileDur(h obs.Histogram, p float64) sim.Duration {
	return sim.Duration(h.Quantile(p) * float64(sim.Second))
}
