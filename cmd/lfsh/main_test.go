package main

import (
	"os"
	"path/filepath"
	"testing"

	"lfs"
)

func newShell(t *testing.T) *shell {
	t.Helper()
	path := filepath.Join(t.TempDir(), "vol.img")
	d, err := lfs.OpenImage(path, 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	cfg := lfs.DefaultConfig()
	cfg.MaxInodes = 1024
	if err := lfs.Format(d, cfg); err != nil {
		t.Fatal(err)
	}
	fs, err := lfs.Mount(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &shell{d: d, cfg: cfg, fs: fs}
}

func TestShellBasicCommands(t *testing.T) {
	sh := newShell(t)
	for _, cmd := range []string{
		"mkdir /docs",
		"write /docs/readme hello world",
		"ls /docs",
		"cat /docs/readme",
		"stat /docs/readme",
		"mv /docs/readme /docs/intro",
		"truncate /docs/intro 5",
		"df",
		"stats",
		"sync",
		"checkpoint",
		"check",
		"help",
	} {
		if err := sh.run(cmd); err != nil {
			t.Fatalf("%q: %v", cmd, err)
		}
	}
	if err := sh.run("rm /docs/intro"); err != nil {
		t.Fatal(err)
	}
	if err := sh.run("rm /docs"); err != nil {
		t.Fatal(err)
	}
	if err := sh.run("cat /docs/intro"); err == nil {
		t.Fatal("cat of removed file succeeded")
	}
}

func TestShellPutGet(t *testing.T) {
	sh := newShell(t)
	host := filepath.Join(t.TempDir(), "src.txt")
	if err := os.WriteFile(host, []byte("round trip payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := sh.run("put " + host + " /imported"); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "dst.txt")
	if err := sh.run("get /imported " + out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "round trip payload" {
		t.Fatalf("got %q", data)
	}
}

func TestShellCrashAndMount(t *testing.T) {
	sh := newShell(t)
	if err := sh.run("write /pre survived"); err != nil {
		t.Fatal(err)
	}
	if err := sh.run("checkpoint"); err != nil {
		t.Fatal(err)
	}
	if err := sh.run("crash"); err != nil {
		t.Fatal(err)
	}
	// Everything except mount/help is rejected while crashed.
	if err := sh.run("ls /"); err == nil {
		t.Fatal("command ran on crashed machine")
	}
	if err := sh.run("mount"); err != nil {
		t.Fatal(err)
	}
	if err := sh.run("cat /pre"); err != nil {
		t.Fatalf("checkpointed file lost: %v", err)
	}
}

func TestShellCleanCommand(t *testing.T) {
	sh := newShell(t)
	// Make some garbage first.
	for _, cmd := range []string{"mkdir /t", "write /t/a xxxx", "sync", "rm /t/a", "sync"} {
		if err := sh.run(cmd); err != nil {
			t.Fatal(err)
		}
	}
	if err := sh.run("clean 1"); err != nil {
		t.Fatal(err)
	}
}

func TestShellErrors(t *testing.T) {
	sh := newShell(t)
	for _, cmd := range []string{
		"bogus",
		"cat",
		"cat /missing",
		"mv onlyone",
		"truncate /x notanumber",
		"mount", // already mounted
	} {
		if err := sh.run(cmd); err == nil {
			t.Fatalf("%q succeeded", cmd)
		}
	}
}

func TestJoin(t *testing.T) {
	if join("/", "a") != "/a" || join("/d", "b") != "/d/b" {
		t.Fatal("join wrong")
	}
}

func TestShellDu(t *testing.T) {
	sh := newShell(t)
	for _, cmd := range []string{"mkdir /d", "write /d/a hello", "du", "du /d"} {
		if err := sh.run(cmd); err != nil {
			t.Fatalf("%q: %v", cmd, err)
		}
	}
	if err := sh.run("du /missing"); err == nil {
		t.Fatal("du of missing path succeeded")
	}
}

func TestShellLn(t *testing.T) {
	sh := newShell(t)
	for _, cmd := range []string{"write /a hello", "ln /a /b", "cat /b", "rm /a", "cat /b"} {
		if err := sh.run(cmd); err != nil {
			t.Fatalf("%q: %v", cmd, err)
		}
	}
	if err := sh.run("ln /missing /x"); err == nil {
		t.Fatal("ln of missing target succeeded")
	}
}
