// Command lfsh is an interactive shell on an LFS disk image: create,
// inspect, and remove files; import and export data from the host;
// trigger syncs, checkpoints, and cleaning; simulate a crash and
// watch recovery.
//
// Usage:
//
//	lfsh -image fs.img -size 300M
//
// Type "help" at the prompt for the command list.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"lfs"
	"lfs/internal/cli"
)

func main() {
	image := flag.String("image", "", "path of the disk image")
	size := flag.String("size", "300M", "volume capacity the image was created with")
	flag.Parse()
	if *image == "" {
		fmt.Fprintln(os.Stderr, "lfsh: -image is required")
		os.Exit(2)
	}
	capacity, err := cli.ParseSize(*size)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lfsh: %v\n", err)
		os.Exit(2)
	}
	d, err := lfs.OpenImage(*image, capacity)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lfsh: %v\n", err)
		os.Exit(1)
	}
	defer d.Close()
	cfg := lfs.DefaultConfig()
	fs, err := lfs.Mount(d, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lfsh: mount: %v (is the image formatted? try mklfs)\n", err)
		os.Exit(1)
	}
	fmt.Printf("lfsh: mounted %s (%s), %d clean segments; type 'help'\n", *image, *size, fs.CleanSegments())

	sh := &shell{d: d, cfg: cfg, fs: fs}
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("lfs> ")
		if !scanner.Scan() {
			break
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		if line == "quit" || line == "exit" {
			break
		}
		if err := sh.run(line); err != nil {
			fmt.Printf("error: %v\n", err)
		}
	}
	if sh.mounted() {
		if err := sh.fs.Unmount(); err != nil {
			fmt.Fprintf(os.Stderr, "lfsh: unmount: %v\n", err)
		}
	}
}

type shell struct {
	d   *lfs.Disk
	cfg lfs.Config
	fs  *lfs.FS
	// crashed marks the period between "crash" and "mount".
	crashed bool
}

func (s *shell) mounted() bool { return !s.crashed }

func (s *shell) run(line string) error {
	fields := tokenize(line)
	cmd, args := fields[0], fields[1:]
	if s.crashed && cmd != "mount" && cmd != "help" {
		return fmt.Errorf("the machine has crashed; 'mount' to recover")
	}
	switch cmd {
	case "help":
		fmt.Print(helpText)
	case "ls":
		path := "/"
		if len(args) > 0 {
			path = args[0]
		}
		entries, err := s.fs.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			child := join(path, e.Name)
			fi, err := s.fs.Stat(child)
			if err != nil {
				return err
			}
			kind := "-"
			if fi.IsDir() {
				kind = "d"
			}
			fmt.Printf("%s ino=%-6d %10d  %s\n", kind, fi.Ino, fi.Size, e.Name)
		}
	case "cat":
		if len(args) != 1 {
			return fmt.Errorf("usage: cat <path>")
		}
		fi, err := s.fs.Stat(args[0])
		if err != nil {
			return err
		}
		buf := make([]byte, fi.Size)
		n, err := s.fs.Read(args[0], 0, buf)
		if err != nil {
			return err
		}
		os.Stdout.Write(buf[:n])
		if n > 0 && buf[n-1] != '\n' {
			fmt.Println()
		}
	case "write":
		if len(args) < 2 {
			return fmt.Errorf("usage: write <path> <text...>")
		}
		text := strings.Join(args[1:], " ") + "\n"
		if _, err := s.fs.Stat(args[0]); err != nil {
			if err := s.fs.Create(args[0]); err != nil {
				return err
			}
		}
		return s.fs.Write(args[0], 0, []byte(text))
	case "put":
		if len(args) != 2 {
			return fmt.Errorf("usage: put <hostfile> <path>")
		}
		data, err := os.ReadFile(args[0])
		if err != nil {
			return err
		}
		if _, err := s.fs.Stat(args[1]); err != nil {
			if err := s.fs.Create(args[1]); err != nil {
				return err
			}
		} else if err := s.fs.Truncate(args[1], 0); err != nil {
			return err
		}
		return s.fs.Write(args[1], 0, data)
	case "get":
		if len(args) != 2 {
			return fmt.Errorf("usage: get <path> <hostfile>")
		}
		fi, err := s.fs.Stat(args[0])
		if err != nil {
			return err
		}
		buf := make([]byte, fi.Size)
		n, err := s.fs.Read(args[0], 0, buf)
		if err != nil {
			return err
		}
		return os.WriteFile(args[1], buf[:n], 0o644)
	case "mkdir":
		if len(args) != 1 {
			return fmt.Errorf("usage: mkdir <path>")
		}
		return s.fs.Mkdir(args[0])
	case "rm":
		if len(args) != 1 {
			return fmt.Errorf("usage: rm <path>")
		}
		return s.fs.Remove(args[0])
	case "mv":
		if len(args) != 2 {
			return fmt.Errorf("usage: mv <old> <new>")
		}
		return s.fs.Rename(args[0], args[1])
	case "ln":
		if len(args) != 2 {
			return fmt.Errorf("usage: ln <target> <newname>")
		}
		return s.fs.Link(args[0], args[1])
	case "truncate":
		if len(args) != 2 {
			return fmt.Errorf("usage: truncate <path> <size>")
		}
		n, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			return err
		}
		return s.fs.Truncate(args[0], n)
	case "stat":
		if len(args) != 1 {
			return fmt.Errorf("usage: stat <path>")
		}
		fi, err := s.fs.Stat(args[0])
		if err != nil {
			return err
		}
		fmt.Printf("ino=%d dir=%v size=%d nlink=%d mtime=%v atime=%v\n",
			fi.Ino, fi.IsDir(), fi.Size, fi.Nlink, fi.Mtime, fi.Atime)
	case "du":
		path := "/"
		if len(args) > 0 {
			path = args[0]
		}
		bytes, files, dirs, err := lfs.TreeSize(s.fs, path)
		if err != nil {
			return err
		}
		fmt.Printf("%s: %.1f MB in %d files, %d directories\n",
			path, float64(bytes)/(1<<20), files, dirs)
	case "df":
		fmt.Printf("capacity: %d MB, live: %.1f MB, clean segments: %d\n",
			s.d.Capacity()>>20, float64(s.fs.LiveBytes())/(1<<20), s.fs.CleanSegments())
	case "stats":
		snap := s.fs.StatsSnapshot()
		st := snap.Log
		fmt.Printf("units=%d blocks=%d sealed=%d checkpoints=%d cleanerRuns=%d cleaned=%d\n",
			st.UnitsWritten, st.BlocksWritten, st.SegmentsSealed, st.Checkpoints, st.CleanerRuns, st.SegmentsCleaned)
		fmt.Printf("disk: %v\n", snap.Disk)
		if st.SegmentsCleaned > 0 {
			fmt.Printf("cleaner write cost: %.2f\n", snap.WriteCost())
		}
		fmt.Printf("clock: %v\n", snap.Time)
	case "sync":
		return s.fs.Sync()
	case "checkpoint":
		return s.fs.Checkpoint()
	case "clean":
		target := s.fs.CleanSegments() + 1
		if len(args) > 0 {
			n, err := strconv.Atoi(args[0])
			if err != nil {
				return err
			}
			target = s.fs.CleanSegments() + n
		}
		res, err := s.fs.CleanUntil(target)
		if err != nil {
			return err
		}
		fmt.Printf("cleaned %d segments, %d live blocks copied, %.1f MB reclaimed\n",
			res.SegmentsCleaned, res.LiveCopied, float64(res.BytesReclaimed)/(1<<20))
	case "check":
		rep, err := s.fs.Check()
		if err != nil {
			return err
		}
		fmt.Printf("%d files, %d dirs, %d data blocks, %d orphans, %d problems\n",
			rep.Files, rep.Dirs, rep.DataBlocks, rep.OrphanedInodes, len(rep.Problems))
		for _, p := range rep.Problems {
			fmt.Printf("  PROBLEM: %s\n", p)
		}
	case "crash":
		s.fs.Crash()
		s.crashed = true
		fmt.Println("machine crashed; unwritten cache contents are gone. 'mount' to recover")
	case "mount":
		if !s.crashed {
			return fmt.Errorf("already mounted")
		}
		before := s.d.Clock().Now()
		fs, err := lfs.Mount(s.d, s.cfg)
		if err != nil {
			return err
		}
		s.fs = fs
		s.crashed = false
		fmt.Printf("recovered in %v of simulated time (%d units rolled forward)\n",
			s.d.Clock().Now().Sub(before), fs.StatsSnapshot().Log.RollForwardUnits)
	default:
		return fmt.Errorf("unknown command %q (try 'help')", cmd)
	}
	return nil
}

const helpText = `commands:
  ls [path]            list a directory
  cat <path>           print a file
  write <path> <text>  write text to a file (creates it)
  put <host> <path>    import a host file
  get <path> <host>    export to a host file
  mkdir <path>         create a directory
  rm <path>            remove a file or empty directory
  mv <old> <new>       rename
  ln <target> <new>    hard link
  truncate <path> <n>  set file length
  stat <path>          file details
  du [path]            tree size
  df                   space usage
  stats                storage manager counters
  sync                 force a segment write
  checkpoint           write a checkpoint region
  clean [n]            reclaim n segments (default 1)
  check                consistency check
  crash                simulate a machine crash
  mount                recover after a crash
  quit                 checkpoint and exit
`

// tokenize splits on whitespace.
func tokenize(s string) []string { return strings.Fields(s) }

// join appends a name to a directory path.
func join(dir, name string) string {
	if dir == "/" {
		return "/" + name
	}
	return dir + "/" + name
}
