// Command lfslint runs the repository's static-analysis suite: ten
// analyzers that mechanically enforce the simulation, log,
// determinism, and resource invariants the paper's results depend on
// (see internal/lint).
//
// Usage:
//
//	lfslint [-rules] [-timings] [-budget d] [-json file] [package patterns]
//
// Patterns are module-relative in the style of the go tool: "./..."
// (the default) analyses the whole module, "./internal/..." a
// subtree, "./internal/core" one package. The whole module is always
// loaded and analyzed — the reachability and derived-scope analyzers
// need the full import and call graphs — and patterns filter which
// findings are reported. Findings print as "file:line: rule: message"
// and any finding makes the exit status 1, so scripts/ci.sh can use
// the command as a gate.
//
// -timings prints the per-analyzer cost after the findings; -budget
// fails the run (exit 1) when the whole analysis exceeds the given
// duration, which is the ci.sh guard keeping the lint gate fast;
// -json writes the machine-readable report ("-" for stdout) for
// annotation tooling.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"lfs/internal/lint"
)

func main() {
	rules := flag.Bool("rules", false, "list the analyzers and exit")
	timings := flag.Bool("timings", false, "print per-analyzer timings")
	budget := flag.Duration("budget", 0, "fail if the full run takes longer than this (0 = no budget)")
	jsonOut := flag.String("json", "", "write the JSON report to this file (\"-\" for stdout)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: lfslint [-rules] [-timings] [-budget d] [-json file] [package patterns]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *rules {
		for _, a := range lint.Analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "lfslint:", err)
		os.Exit(2)
	}
	start := time.Now()
	pkgs, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lfslint:", err)
		os.Exit(2)
	}
	selected := lint.Match(pkgs, flag.Args())

	// Analyze the whole module — derived scopes and reachability need
	// every package — then report only findings in selected packages.
	diags, times := lint.RunWithTimings(pkgs, lint.Analyzers)
	diags = filterByPackages(diags, selected)
	elapsed := time.Since(start)

	for _, d := range diags {
		fmt.Println(d)
	}
	if *timings {
		for _, tm := range times {
			fmt.Printf("lfslint: %-12s %7.2fms %4d finding(s)\n", tm.Rule, tm.Millis, tm.Findings)
		}
		fmt.Printf("lfslint: total        %7.2fms (%d packages)\n",
			float64(elapsed)/float64(time.Millisecond), len(pkgs))
	}
	if *jsonOut != "" {
		report := lint.NewReport(selected, diags, times)
		w := os.Stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "lfslint:", err)
				os.Exit(2)
			}
			defer f.Close()
			w = f
		}
		if err := report.WriteJSON(w); err != nil {
			fmt.Fprintln(os.Stderr, "lfslint:", err)
			os.Exit(2)
		}
	}

	fail := false
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "lfslint: %d finding(s)\n", len(diags))
		fail = true
	}
	if *budget > 0 && elapsed > *budget {
		fmt.Fprintf(os.Stderr, "lfslint: run took %v, over the %v budget\n",
			elapsed.Round(time.Millisecond), *budget)
		fail = true
	}
	if fail {
		os.Exit(1)
	}
}

// filterByPackages keeps the findings whose file lies in one of the
// selected packages' directories.
func filterByPackages(diags []lint.Diagnostic, pkgs []*lint.Package) []lint.Diagnostic {
	dirs := make(map[string]bool, len(pkgs))
	for _, p := range pkgs {
		dirs[p.RelDir] = true
	}
	out := diags[:0]
	for _, d := range diags {
		dir := filepath.ToSlash(filepath.Dir(d.Pos.Filename))
		if dirs[dir] || dir == "." && dirs["."] {
			out = append(out, d)
		}
	}
	return out
}

// findModuleRoot walks up from the working directory to the directory
// holding go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}
