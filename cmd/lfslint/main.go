// Command lfslint runs the repository's static-analysis suite: five
// analyzers that mechanically enforce the simulation and log
// invariants the paper's results depend on (see internal/lint).
//
// Usage:
//
//	lfslint [-rules] [package patterns]
//
// Patterns are module-relative in the style of the go tool: "./..."
// (the default) analyses the whole module, "./internal/..." a
// subtree, "./internal/core" one package. Findings print as
// "file:line: rule: message" and any finding makes the exit status 1,
// so scripts/ci.sh can use the command as a gate.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"lfs/internal/lint"
)

func main() {
	rules := flag.Bool("rules", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: lfslint [-rules] [package patterns]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *rules {
		for _, a := range lint.Analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "lfslint:", err)
		os.Exit(2)
	}
	pkgs, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lfslint:", err)
		os.Exit(2)
	}
	pkgs = lint.Match(pkgs, flag.Args())

	diags := lint.Run(pkgs, lint.Analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "lfslint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the directory
// holding go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}
