// Command mklfs formats a disk image file as an empty log-structured
// file system. With -shards N it formats N standalone per-shard
// images (fs.shard0.img, fs.shard1.img, ...) that together back a
// sharded multi-log system; each image is an ordinary LFS volume and
// mounts alone (see FORMAT.md).
//
// Usage:
//
//	mklfs -image fs.img -size 300M [-block 4096] [-segment 1M] [-inodes 65536] [-backend file|mmap] [-shards N]
package main

import (
	"flag"
	"fmt"
	"os"

	"lfs"
	"lfs/internal/cli"
)

func main() {
	image := flag.String("image", "", "path of the disk image to create")
	size := flag.String("size", "300M", "total volume capacity (e.g. 64M, 1G), split evenly across shards")
	block := flag.Int("block", 4096, "block size in bytes")
	segment := flag.String("segment", "1M", "segment size (e.g. 512K, 1M)")
	inodes := flag.Int("inodes", 65536, "maximum number of inodes (per shard)")
	backend := flag.String("backend", "file", "image store backend: file or mmap")
	shards := flag.Int("shards", 1, "number of shards; above 1, formats one standalone image per shard")
	flag.Parse()

	if *image == "" {
		fmt.Fprintln(os.Stderr, "mklfs: -image is required")
		os.Exit(2)
	}
	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "mklfs: -shards must be at least 1, got %d\n", *shards)
		os.Exit(2)
	}
	be, ok := lfs.ParseStoreBackend(*backend)
	if !ok || (be != lfs.BackendFile && be != lfs.BackendMmap) {
		fmt.Fprintf(os.Stderr, "mklfs: unknown image backend %q (want file or mmap)\n", *backend)
		os.Exit(2)
	}
	capacity, err := cli.ParseSize(*size)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mklfs: %v\n", err)
		os.Exit(2)
	}
	segSize, err := cli.ParseSize(*segment)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mklfs: %v\n", err)
		os.Exit(2)
	}

	cfg := lfs.DefaultConfig()
	cfg.BlockSize = *block
	cfg.SegmentSize = int(segSize)
	cfg.MaxInodes = *inodes

	if *shards == 1 {
		d, err := lfs.NewDisk(lfs.StoreOptions{Backend: be, Path: *image, Capacity: capacity})
		if err != nil {
			fmt.Fprintf(os.Stderr, "mklfs: %v\n", err)
			os.Exit(1)
		}
		defer d.Close()
		if err := lfs.Format(d, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "mklfs: %v\n", err)
			os.Exit(1)
		}
		if err := d.Sync(); err != nil {
			fmt.Fprintf(os.Stderr, "mklfs: sync: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("mklfs: formatted %s: %d MB, %d-byte blocks, %d KB segments, %d inodes\n",
			*image, capacity>>20, *block, segSize>>10, *inodes)
		return
	}

	// Multi-shard: one standalone image per shard, on one clock, the
	// total capacity split evenly.
	clock := lfs.NewClock()
	per := capacity / int64(*shards)
	disks := make([]*lfs.Disk, *shards)
	for i := range disks {
		path := cli.ShardImagePath(*image, i)
		d, err := lfs.NewDiskWithClock(lfs.StoreOptions{Backend: be, Path: path, Capacity: per}, clock)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mklfs: shard %d (%s): %v\n", i, path, err)
			os.Exit(1)
		}
		defer d.Close()
		disks[i] = d
	}
	if err := lfs.FormatSharded(disks, lfs.ShardOptions{Base: cfg}); err != nil {
		fmt.Fprintf(os.Stderr, "mklfs: %v\n", err)
		os.Exit(1)
	}
	for i, d := range disks {
		if err := d.Sync(); err != nil {
			fmt.Fprintf(os.Stderr, "mklfs: sync shard %d: %v\n", i, err)
			os.Exit(1)
		}
	}
	fmt.Printf("mklfs: formatted %d shard images %s..%s: %d MB each, %d-byte blocks, %d KB segments, %d inodes per shard\n",
		*shards, cli.ShardImagePath(*image, 0), cli.ShardImagePath(*image, *shards-1),
		per>>20, *block, segSize>>10, *inodes)
}
