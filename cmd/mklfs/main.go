// Command mklfs formats a disk image file as an empty log-structured
// file system.
//
// Usage:
//
//	mklfs -image fs.img -size 300M [-block 4096] [-segment 1M] [-inodes 65536] [-backend file|mmap]
package main

import (
	"flag"
	"fmt"
	"os"

	"lfs"
	"lfs/internal/cli"
)

func main() {
	image := flag.String("image", "", "path of the disk image to create")
	size := flag.String("size", "300M", "volume capacity (e.g. 64M, 1G)")
	block := flag.Int("block", 4096, "block size in bytes")
	segment := flag.String("segment", "1M", "segment size (e.g. 512K, 1M)")
	inodes := flag.Int("inodes", 65536, "maximum number of inodes")
	backend := flag.String("backend", "file", "image store backend: file or mmap")
	flag.Parse()

	if *image == "" {
		fmt.Fprintln(os.Stderr, "mklfs: -image is required")
		os.Exit(2)
	}
	be, ok := lfs.ParseStoreBackend(*backend)
	if !ok || (be != lfs.BackendFile && be != lfs.BackendMmap) {
		fmt.Fprintf(os.Stderr, "mklfs: unknown image backend %q (want file or mmap)\n", *backend)
		os.Exit(2)
	}
	capacity, err := cli.ParseSize(*size)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mklfs: %v\n", err)
		os.Exit(2)
	}
	segSize, err := cli.ParseSize(*segment)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mklfs: %v\n", err)
		os.Exit(2)
	}

	d, err := lfs.NewDisk(lfs.StoreOptions{Backend: be, Path: *image, Capacity: capacity})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mklfs: %v\n", err)
		os.Exit(1)
	}
	defer d.Close()

	cfg := lfs.DefaultConfig()
	cfg.BlockSize = *block
	cfg.SegmentSize = int(segSize)
	cfg.MaxInodes = *inodes
	if err := lfs.Format(d, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "mklfs: %v\n", err)
		os.Exit(1)
	}
	if err := d.Sync(); err != nil {
		fmt.Fprintf(os.Stderr, "mklfs: sync: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("mklfs: formatted %s: %d MB, %d-byte blocks, %d KB segments, %d inodes\n",
		*image, capacity>>20, *block, segSize>>10, *inodes)
}
