// Command lfsdump prints the on-disk structures of an LFS image: the
// superblock, both checkpoint regions, the segment usage snapshot,
// and — with -segments — a walk of every log unit's summary.
//
// Usage:
//
//	lfsdump -image fs.img -size 300M [-segments]
package main

import (
	"flag"
	"fmt"
	"os"

	"lfs"
	"lfs/internal/cli"
	"lfs/internal/core"
)

func main() {
	image := flag.String("image", "", "path of the disk image")
	size := flag.String("size", "300M", "volume capacity the image was created with")
	segments := flag.Bool("segments", false, "also walk and print every segment's unit summaries")
	imap := flag.Bool("imap", false, "print the inode map of the newest checkpoint instead")
	flag.Parse()

	if *image == "" {
		fmt.Fprintln(os.Stderr, "lfsdump: -image is required")
		os.Exit(2)
	}
	capacity, err := cli.ParseSize(*size)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lfsdump: %v\n", err)
		os.Exit(2)
	}
	d, err := lfs.OpenImage(*image, capacity)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lfsdump: %v\n", err)
		os.Exit(1)
	}
	defer d.Close()

	if *imap {
		if err := core.DumpImap(os.Stdout, d); err != nil {
			fmt.Fprintf(os.Stderr, "lfsdump: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := core.Dump(os.Stdout, d, *segments); err != nil {
		fmt.Fprintf(os.Stderr, "lfsdump: %v\n", err)
		os.Exit(1)
	}
}
