package lfs

import (
	"lfs/internal/ffs"
)

// The paper compares LFS against SunOS 4.0.3's BSD Fast File System.
// The baseline implementation lives in internal/ffs and is exposed
// here so examples and downstream users can reproduce the
// comparisons.

type (
	// BaselineFS is a mounted FFS-style update-in-place file
	// system — the comparison system of the paper's evaluation.
	BaselineFS = ffs.FS
	// BaselineConfig carries FFS tunables.
	BaselineConfig = ffs.Config
	// FsckReport summarises an FFS full-scan consistency check.
	FsckReport = ffs.FsckReport
	// BaselineStatsSnapshot is an atomic copy of the baseline's
	// statistics surfaces, from BaselineFS.StatsSnapshot.
	BaselineStatsSnapshot = ffs.StatsSnapshot
)

// DefaultBaselineConfig returns the paper's SunOS configuration: 8 KB
// blocks, ~15 MB cache, synchronous metadata writes, 30-second
// delayed write-back.
func DefaultBaselineConfig() BaselineConfig { return ffs.DefaultConfig() }

// FormatBaseline initialises the disk as an empty FFS.
func FormatBaseline(d *Disk, cfg BaselineConfig) error { return ffs.Format(d, cfg) }

// MountBaseline attaches a formatted FFS volume.
func MountBaseline(d *Disk, cfg BaselineConfig) (*BaselineFS, error) { return ffs.Mount(d, cfg) }

// FsckBaseline runs the BSD-style full-disk scan whose cost the
// paper's instant checkpoint recovery eliminates.
func FsckBaseline(d *Disk, cfg BaselineConfig) (*FsckReport, error) { return ffs.Fsck(d, cfg) }
