package cache

import (
	"fmt"
	"testing"
	"testing/quick"

	"lfs/internal/layout"
	"lfs/internal/sim"
)

func key(ino int, off int64) Key {
	return Key{Kind: KindFile, Ino: layout.Ino(ino), Off: off}
}

func TestAddGet(t *testing.T) {
	c := New(4, 4096)
	b := c.Add(key(1, 0))
	if len(b.Data) != 4096 {
		t.Fatalf("block size %d", len(b.Data))
	}
	b.Data[0] = 42
	got := c.Get(key(1, 0))
	if got == nil || got.Data[0] != 42 {
		t.Fatal("Get did not return the added block")
	}
	if c.Get(key(1, 1)) != nil {
		t.Fatal("Get returned a block for a missing key")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Inserted != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v", s.HitRate())
	}
	if (Stats{}).HitRate() != 0 {
		t.Fatal("empty hit rate not 0")
	}
}

func TestAddDuplicatePanics(t *testing.T) {
	c := New(4, 512)
	c.Add(key(1, 0))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Add did not panic")
		}
	}()
	c.Add(key(1, 0))
}

func TestInvalidNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid New did not panic")
		}
	}()
	New(0, 4096)
}

func TestLRUEvictionOrder(t *testing.T) {
	c := New(3, 512)
	c.Add(key(1, 0))
	c.Add(key(2, 0))
	c.Add(key(3, 0))
	// Touch 1 so 2 becomes LRU.
	c.Get(key(1, 0))
	c.Add(key(4, 0))
	if c.Get(key(2, 0)) != nil {
		t.Fatal("LRU block 2 survived eviction")
	}
	for _, k := range []Key{key(1, 0), key(3, 0), key(4, 0)} {
		if c.Peek(k) == nil {
			t.Fatalf("block %v evicted out of order", k)
		}
	}
	if c.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d", c.Stats().Evictions)
	}
}

func TestDirtyBlocksNotEvicted(t *testing.T) {
	c := New(2, 512)
	b1 := c.Add(key(1, 0))
	c.MarkDirty(b1, 0)
	b2 := c.Add(key(2, 0))
	c.MarkDirty(b2, 0)
	c.Add(key(3, 0)) // over capacity, but nothing evictable
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (dirty blocks must not be evicted)", c.Len())
	}
	if !c.Overfull() {
		t.Fatal("cache with no evictable block not reported Overfull")
	}
	c.MarkClean(b1)
	c.Add(key(4, 0)) // now b1 is evictable
	if c.Peek(key(1, 0)) != nil {
		t.Fatal("clean block not evicted when over capacity")
	}
}

func TestPinnedBlocksNotEvicted(t *testing.T) {
	c := New(1, 512)
	b := c.Add(key(1, 0))
	c.Pin(b)
	c.Add(key(2, 0))
	if c.Peek(key(1, 0)) == nil {
		t.Fatal("pinned block evicted")
	}
	c.Unpin(b)
	if b.Pinned() {
		t.Fatal("block still pinned after Unpin")
	}
	c.Add(key(3, 0))
	if c.Peek(key(1, 0)) != nil && c.Peek(key(2, 0)) != nil {
		t.Fatal("nothing evicted after unpin")
	}
}

func TestUnpinUnpinnedPanics(t *testing.T) {
	c := New(1, 512)
	b := c.Add(key(1, 0))
	defer func() {
		if recover() == nil {
			t.Fatal("Unpin of unpinned block did not panic")
		}
	}()
	c.Unpin(b)
}

func TestDirtyTracking(t *testing.T) {
	c := New(8, 512)
	b1 := c.Add(key(1, 0))
	b2 := c.Add(key(2, 0))
	c.MarkDirty(b1, sim.Time(10))
	c.MarkDirty(b2, sim.Time(20))
	// Re-dirtying keeps the original time.
	c.MarkDirty(b1, sim.Time(99))
	if b1.DirtiedAt() != sim.Time(10) {
		t.Fatalf("re-dirty changed DirtiedAt to %v", b1.DirtiedAt())
	}
	if c.DirtyCount() != 2 {
		t.Fatalf("DirtyCount = %d", c.DirtyCount())
	}
	oldest, ok := c.OldestDirty()
	if !ok || oldest != sim.Time(10) {
		t.Fatalf("OldestDirty = %v, %v", oldest, ok)
	}
	dirty := c.DirtyBlocks()
	if len(dirty) != 2 || dirty[0] != b1 || dirty[1] != b2 {
		t.Fatal("DirtyBlocks not in dirtied order")
	}
	c.MarkClean(b1)
	c.MarkClean(b1) // idempotent
	if c.DirtyCount() != 1 {
		t.Fatalf("DirtyCount after clean = %d", c.DirtyCount())
	}
	oldest, ok = c.OldestDirty()
	if !ok || oldest != sim.Time(20) {
		t.Fatalf("OldestDirty after clean = %v, %v", oldest, ok)
	}
	c.MarkClean(b2)
	if _, ok := c.OldestDirty(); ok {
		t.Fatal("OldestDirty on all-clean cache reported a block")
	}
}

func TestAboveDirtyWatermark(t *testing.T) {
	c := New(10, 512)
	for i := 0; i < 6; i++ {
		c.MarkDirty(c.Add(key(i+1, 0)), 0)
	}
	if !c.AboveDirtyWatermark(0.5) {
		t.Fatal("6/10 dirty not above 0.5 watermark")
	}
	if c.AboveDirtyWatermark(0.8) {
		t.Fatal("6/10 dirty above 0.8 watermark")
	}
}

func TestRemove(t *testing.T) {
	c := New(4, 512)
	b := c.Add(key(1, 0))
	c.MarkDirty(b, 0)
	c.Remove(key(1, 0))
	if c.Len() != 0 || c.DirtyCount() != 0 {
		t.Fatal("Remove left state behind")
	}
	c.Remove(key(1, 0)) // removing a missing key is a no-op
}

func TestRemoveMatching(t *testing.T) {
	c := New(8, 512)
	for i := 0; i < 4; i++ {
		c.Add(key(1, int64(i)))
	}
	c.MarkDirty(c.Add(key(2, 0)), 0)
	n := c.RemoveMatching(func(k Key) bool { return k.Ino == 1 })
	if n != 4 || c.Len() != 1 {
		t.Fatalf("RemoveMatching removed %d, len %d", n, c.Len())
	}
	if c.Peek(key(2, 0)) == nil {
		t.Fatal("unrelated block removed")
	}
}

func TestDropClean(t *testing.T) {
	c := New(8, 512)
	c.Add(key(1, 0))
	c.Add(key(2, 0))
	d := c.Add(key(3, 0))
	c.MarkDirty(d, 0)
	p := c.Add(key(4, 0))
	c.Pin(p)
	n := c.DropClean()
	if n != 2 {
		t.Fatalf("DropClean removed %d, want 2", n)
	}
	if c.Peek(key(3, 0)) == nil || c.Peek(key(4, 0)) == nil {
		t.Fatal("DropClean removed a dirty or pinned block")
	}
}

func TestClear(t *testing.T) {
	c := New(8, 512)
	c.MarkDirty(c.Add(key(1, 0)), 0)
	c.Add(key(2, 0))
	c.Clear()
	if c.Len() != 0 || c.DirtyCount() != 0 {
		t.Fatal("Clear left blocks behind")
	}
	if _, ok := c.OldestDirty(); ok {
		t.Fatal("Clear left dirty list populated")
	}
}

func TestKeyString(t *testing.T) {
	if key(1, 2).String() == "" {
		t.Fatal("empty Key.String")
	}
}

// Property: the cache never exceeds capacity as long as blocks stay
// clean and unpinned, and never loses a dirty block.
func TestCacheInvariantsProperty(t *testing.T) {
	type op struct {
		Ino   uint8
		Off   uint8
		Dirty bool
		Clean bool
	}
	f := func(ops []op) bool {
		c := New(8, 64)
		dirtyKeys := map[Key]bool{}
		for i, o := range ops {
			k := key(int(o.Ino)%16+1, int64(o.Off)%4)
			b := c.Get(k)
			if b == nil {
				if c.Peek(k) != nil {
					return false
				}
				b = c.Add(k)
			}
			switch {
			case o.Dirty:
				c.MarkDirty(b, sim.Time(i))
				dirtyKeys[k] = true
			case o.Clean:
				c.MarkClean(b)
				delete(dirtyKeys, k)
			}
			// Invariant: every dirty key is still present.
			//lfslint:allow maporder Peek is read-only and the every-key invariant holds or fails identically in any order
			for dk := range dirtyKeys {
				if c.Peek(dk) == nil {
					return false
				}
			}
			// Invariant: size never exceeds capacity + dirty overflow.
			if c.Len() > c.Capacity()+len(dirtyKeys) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEvictionStress(t *testing.T) {
	c := New(16, 512)
	for i := 0; i < 1000; i++ {
		k := key(i%50+1, int64(i%7))
		if c.Get(k) == nil {
			c.Add(k)
		}
	}
	if c.Len() > 16 {
		t.Fatalf("cache grew to %d blocks, capacity 16", c.Len())
	}
	if c.Stats().Evictions == 0 {
		t.Fatal("no evictions under churn")
	}
}

func BenchmarkCacheGetHit(b *testing.B) {
	c := New(1024, 4096)
	for i := 0; i < 1024; i++ {
		c.Add(key(1, int64(i)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Get(key(1, int64(i%1024)))
	}
}

func BenchmarkCacheChurn(b *testing.B) {
	c := New(256, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := key(i%1000+1, 0)
		if c.Get(k) == nil {
			c.Add(k)
		}
	}
}

func ExampleCache() {
	c := New(128, 4096)
	b := c.Add(Key{Kind: KindFile, Ino: 1, Off: 0})
	copy(b.Data, "hello")
	c.MarkDirty(b, 0)
	fmt.Println(c.DirtyCount())
	// Output: 1
}
