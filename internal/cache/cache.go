// Package cache implements the file/buffer cache shared by both file
// systems. The paper assigns the cache two roles: absorbing reads (so
// that disk traffic is write-dominated) and, for LFS, acting as the
// write buffer that accumulates many small modifications until they
// can be written as one large sequential transfer ("speed matching
// between the CPU and disk subsystem", §4.1).
//
// The cache is a fixed-capacity block store keyed by (namespace,
// inode, offset), with LRU eviction of clean blocks, explicit dirty
// tracking in dirtied order (for the 30-second age write-back policy
// of §4.3.5), and pinning for blocks mid-operation. Eviction never
// touches dirty or pinned blocks: write-back policy belongs to the
// owning file system, which consults DirtyCount, Overfull, and
// OldestDirty after each operation.
package cache

import (
	"container/list"
	"fmt"

	"lfs/internal/layout"
	"lfs/internal/sim"
)

// Kind is the namespace of a cache key, so different block spaces
// (file data, FFS disk blocks, LFS inode-map blocks) cannot collide.
type Kind uint8

// Key namespaces used across the repository.
const (
	// KindFile is file and directory data, keyed by (ino, lbn).
	KindFile Kind = iota
	// KindIndirect is indirect pointer blocks, keyed by (ino, lbn
	// of the first block the indirect block maps, level encoded by
	// the owner).
	KindIndirect
	// KindMeta is file-system-global metadata keyed by an
	// FS-defined offset (FFS: disk block address; LFS: inode map
	// block index).
	KindMeta
)

// Key identifies a cached block.
type Key struct {
	Kind Kind
	Ino  layout.Ino
	Off  int64
}

// String formats the key for diagnostics.
func (k Key) String() string {
	return fmt.Sprintf("{kind=%d ino=%d off=%d}", k.Kind, k.Ino, k.Off)
}

// Block is one cached block. Data always has the cache's block size.
type Block struct {
	Key  Key
	Data []byte

	dirty     bool
	dirtiedAt sim.Time
	pins      int

	lruElem   *list.Element // position in c.lru
	dirtyElem *list.Element // position in c.dirty when dirty
}

// Dirty reports whether the block has unwritten modifications.
func (b *Block) Dirty() bool { return b.dirty }

// DirtiedAt returns when the block was first dirtied (valid only while
// Dirty).
func (b *Block) DirtiedAt() sim.Time { return b.dirtiedAt }

// Pinned reports whether the block is pinned against eviction.
func (b *Block) Pinned() bool { return b.pins > 0 }

// Stats counts cache activity.
type Stats struct {
	Hits, Misses int64
	Evictions    int64
	Inserted     int64
}

// HitRate returns the fraction of lookups served from the cache.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// DebugEvict, when non-nil, is called with every evicted key (test
// instrumentation only).
var DebugEvict func(Key)

// Cache is a fixed-capacity block cache. Not safe for concurrent use;
// the owning file system serialises access.
type Cache struct {
	blockSize int
	capacity  int

	blocks map[Key]*Block
	lru    *list.List // front = most recent; values are *Block
	dirty  *list.List // front = oldest dirtied; values are *Block

	stats Stats
}

// New returns an empty cache of capacity blocks, each blockSize bytes.
func New(capacity, blockSize int) *Cache {
	if capacity <= 0 || blockSize <= 0 {
		panic(fmt.Sprintf("cache: invalid capacity %d or block size %d", capacity, blockSize))
	}
	return &Cache{
		blockSize: blockSize,
		capacity:  capacity,
		blocks:    make(map[Key]*Block),
		lru:       list.New(),
		dirty:     list.New(),
	}
}

// BlockSize returns the size of every cached block.
func (c *Cache) BlockSize() int { return c.blockSize }

// Capacity returns the cache capacity in blocks.
func (c *Cache) Capacity() int { return c.capacity }

// Len returns the number of cached blocks.
func (c *Cache) Len() int { return len(c.blocks) }

// DirtyCount returns the number of dirty blocks.
func (c *Cache) DirtyCount() int { return c.dirty.Len() }

// Stats returns a snapshot of the activity counters.
func (c *Cache) Stats() Stats { return c.stats }

// Get returns the cached block for k, or nil. A hit refreshes the
// block's LRU position.
func (c *Cache) Get(k Key) *Block {
	b, ok := c.blocks[k]
	if !ok {
		c.stats.Misses++
		return nil
	}
	c.stats.Hits++
	c.lru.MoveToFront(b.lruElem)
	return b
}

// Peek returns the cached block for k without touching LRU order or
// statistics; used by write-back scans.
func (c *Cache) Peek(k Key) *Block {
	return c.blocks[k]
}

// Add allocates a zeroed block for k, inserting it and evicting clean
// unpinned LRU blocks as needed. Adding an existing key panics — the
// caller must Get first.
func (c *Cache) Add(k Key) *Block {
	if _, exists := c.blocks[k]; exists {
		panic(fmt.Sprintf("cache: Add of existing key %v", k))
	}
	c.evictFor(1)
	b := &Block{Key: k, Data: make([]byte, c.blockSize)}
	b.lruElem = c.lru.PushFront(b)
	c.blocks[k] = b
	c.stats.Inserted++
	return b
}

// evictFor evicts clean, unpinned LRU blocks until there is room for n
// more blocks or no evictable block remains.
func (c *Cache) evictFor(n int) {
	for len(c.blocks)+n > c.capacity {
		victim := c.evictable()
		if victim == nil {
			return // over capacity: the FS must write back
		}
		if DebugEvict != nil {
			DebugEvict(victim.Key)
		}
		c.remove(victim)
		c.stats.Evictions++
	}
}

// evictable returns the least recently used clean, unpinned block,
// preferring file data over metadata (indirect and meta blocks):
// metadata is tiny, reloading it stalls behind queued segment writes,
// and real buffer caches gave it priority for the same reason.
func (c *Cache) evictable() *Block {
	var meta *Block
	for e := c.lru.Back(); e != nil; e = e.Prev() {
		b := e.Value.(*Block)
		if b.dirty || b.pins > 0 {
			continue
		}
		if b.Key.Kind == KindFile {
			return b
		}
		if meta == nil {
			meta = b
		}
	}
	return meta
}

// Overfull reports whether unevictable (dirty) blocks fill the whole
// capacity, or the cache exceeds capacity with nothing left to evict —
// the condition that forces a write-back (the "cache full" trigger of
// §4.3.5).
func (c *Cache) Overfull() bool {
	if c.dirty.Len() >= c.capacity {
		return true
	}
	return len(c.blocks) > c.capacity && c.evictable() == nil
}

// AboveDirtyWatermark reports whether dirty blocks exceed the given
// fraction of capacity.
func (c *Cache) AboveDirtyWatermark(frac float64) bool {
	return float64(c.dirty.Len()) > frac*float64(c.capacity)
}

// MarkDirty records a modification to b at the given time. Re-dirtying
// keeps the original dirtied time, matching delayed write-back
// semantics (age is measured from first modification).
func (c *Cache) MarkDirty(b *Block, now sim.Time) {
	if b.dirty {
		return
	}
	b.dirty = true
	b.dirtiedAt = now
	b.dirtyElem = c.dirty.PushBack(b)
}

// MarkClean records that b has been written to disk.
func (c *Cache) MarkClean(b *Block) {
	if !b.dirty {
		return
	}
	b.dirty = false
	c.dirty.Remove(b.dirtyElem)
	b.dirtyElem = nil
}

// Pin protects b from eviction until a matching Unpin.
func (c *Cache) Pin(b *Block) { b.pins++ }

// Unpin releases one pin.
func (c *Cache) Unpin(b *Block) {
	if b.pins == 0 {
		panic("cache: Unpin of unpinned block")
	}
	b.pins--
}

// Remove drops the block for k from the cache, dirty or not. Dropping
// a dirty block discards its modifications (used by truncate/unlink).
func (c *Cache) Remove(k Key) {
	if b, ok := c.blocks[k]; ok {
		c.remove(b)
	}
}

// remove unlinks b from all structures.
func (c *Cache) remove(b *Block) {
	delete(c.blocks, b.Key)
	c.lru.Remove(b.lruElem)
	if b.dirty {
		c.dirty.Remove(b.dirtyElem)
	}
	b.lruElem, b.dirtyElem = nil, nil
	b.dirty = false
}

// RemoveMatching drops every block whose key satisfies pred,
// discarding dirty contents; it returns the number removed.
func (c *Cache) RemoveMatching(pred func(Key) bool) int {
	var victims []*Block
	//lfslint:allow maporder removal order does not matter: every victim is removed and the final cache state is identical for any order
	for k, b := range c.blocks {
		if pred(k) {
			victims = append(victims, b)
		}
	}
	for _, b := range victims {
		c.remove(b)
	}
	return len(victims)
}

// DropClean evicts every clean, unpinned block, simulating the
// paper's "flush the file cache" step between benchmark phases.
func (c *Cache) DropClean() int {
	var victims []*Block
	//lfslint:allow maporder eviction order does not matter: every clean block is dropped and the final cache state is identical for any order
	for k, b := range c.blocks {
		if !b.dirty && b.pins == 0 {
			_ = k
			victims = append(victims, b)
		}
	}
	for _, b := range victims {
		c.remove(b)
		c.stats.Evictions++
	}
	return len(victims)
}

// DirtyBlocks returns the dirty blocks in dirtied order (oldest
// first). The slice is a snapshot; callers may MarkClean entries while
// iterating it.
func (c *Cache) DirtyBlocks() []*Block {
	out := make([]*Block, 0, c.dirty.Len())
	for e := c.dirty.Front(); e != nil; e = e.Next() {
		out = append(out, e.Value.(*Block))
	}
	return out
}

// OldestDirty returns the dirtied time of the oldest dirty block.
func (c *Cache) OldestDirty() (sim.Time, bool) {
	e := c.dirty.Front()
	if e == nil {
		return 0, false
	}
	return e.Value.(*Block).dirtiedAt, true
}

// Clear drops everything, including dirty blocks — the crash
// primitive: a machine crash loses exactly the cache contents.
func (c *Cache) Clear() {
	c.blocks = make(map[Key]*Block)
	c.lru.Init()
	c.dirty.Init()
}
