// Package lint implements lfslint, the repository's static-analysis
// suite. The paper's results are shapes produced by a deterministic
// latency model, so every figure we reproduce silently depends on
// conventions the compiler cannot check: the simulated clock is the
// only time source, every disk request names its IOCause, VFS
// operations fail only with *vfs.PathError, and lock-guarded state is
// touched only under the lock. Each analyzer here turns one of those
// conventions into a build gate (run by scripts/ci.sh before the
// tests).
//
// The suite is written against the standard library only (go/ast,
// go/parser, go/token) so go.mod stays dependency-free. Analyses are
// therefore syntactic: they resolve package qualifiers through the
// file's import table rather than full type information, which is
// precise enough for this repository's idioms and keeps a whole-module
// run under a second.
//
// A finding can be suppressed where the violation is intentional by
// placing
//
//	//lfslint:allow <rule>[,<rule>...] <one-line justification>
//
// on the flagged line or the line directly above it. Allow directives
// are deliberately line-scoped: there is no file- or package-wide
// escape hatch, so every exception is visible next to the code it
// excuses.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding: a violated rule at a position.
type Diagnostic struct {
	// Pos locates the finding; Filename is relative to the module
	// root.
	Pos token.Position
	// Rule names the analyzer that produced the finding.
	Rule string
	// Msg explains the violation and the sanctioned alternative.
	Msg string
}

// String formats the finding as "file:line: rule: message", the
// grep- and editor-friendly shape cmd/lfslint prints.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Rule, d.Msg)
}

// File is one parsed source file plus its allow directives.
type File struct {
	// AST is the parsed file (with comments).
	AST *ast.File
	// Allows maps a line number to the set of rules an
	// //lfslint:allow directive on that line suppresses.
	Allows map[int]map[string]bool
}

// Package is all Go files of one directory (test files included: the
// invariants hold for test code too).
type Package struct {
	// RelDir is the slash-separated directory path relative to the
	// module root ("." for the root package).
	RelDir string
	// Name is the package name of the first file (files of a
	// directory are analyzed together regardless of package clause,
	// so external _test packages are covered too).
	Name string
	// Fset is the position table shared by every package of a load.
	Fset *token.FileSet
	// Files are the parsed sources.
	Files []*File
}

// inDirs reports whether the package lies in (or under) one of the
// given module-relative directories.
func (p *Package) inDirs(dirs ...string) bool {
	for _, d := range dirs {
		if p.RelDir == d || strings.HasPrefix(p.RelDir, d+"/") {
			return true
		}
	}
	return false
}

// Analyzer is one named pass over a package.
type Analyzer struct {
	// Name is the rule name, as printed in diagnostics and matched
	// by allow directives.
	Name string
	// Doc is a one-line description for cmd/lfslint -rules.
	Doc string
	// Run inspects one package and returns its findings (allow
	// filtering happens in the driver).
	Run func(pkg *Package) []Diagnostic
}

// Analyzers is the full suite, in the order findings are reported.
var Analyzers = []*Analyzer{
	WallclockAnalyzer,
	IOCauseAnalyzer,
	ErrWrapAnalyzer,
	LockCheckAnalyzer,
	AtomicMixAnalyzer,
}

// allowDirective is the comment prefix of the escape hatch.
const allowDirective = "lfslint:allow"

// parseAllows extracts the allow directives of a parsed file, keyed by
// line number.
func parseAllows(fset *token.FileSet, f *ast.File) map[int]map[string]bool {
	allows := make(map[int]map[string]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, allowDirective) {
				continue
			}
			rest := strings.TrimPrefix(text, allowDirective)
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				continue
			}
			line := fset.Position(c.Pos()).Line
			set := allows[line]
			if set == nil {
				set = make(map[string]bool)
				allows[line] = set
			}
			for _, rule := range strings.Split(fields[0], ",") {
				if rule != "" {
					set[rule] = true
				}
			}
		}
	}
	return allows
}

// allowed reports whether an allow directive for rule covers the given
// line: the directive may sit on the flagged line itself or on the
// line directly above it.
func (f *File) allowed(rule string, line int) bool {
	for _, l := range [2]int{line, line - 1} {
		if f.Allows[l][rule] {
			return true
		}
	}
	return false
}

// fileFor maps a diagnostic back to the file it was reported in, for
// allow filtering.
func fileFor(pkg *Package, d Diagnostic) *File {
	for _, f := range pkg.Files {
		if pkg.Fset.Position(f.AST.Pos()).Filename == d.Pos.Filename {
			return f
		}
	}
	return nil
}

// Run executes the analyzers over the packages, drops findings covered
// by allow directives, and returns the rest sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			for _, d := range a.Run(pkg) {
				if f := fileFor(pkg, d); f != nil && f.allowed(d.Rule, d.Pos.Line) {
					continue
				}
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		return out[i].Rule < out[j].Rule
	})
	return out
}

// importName returns the local name the file binds the given import
// path to, or "" when the file does not import it. The default name is
// the path's last element; a blank or dot import returns "".
func importName(f *ast.File, path string) string {
	for _, imp := range f.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		if p != path {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				return ""
			}
			return imp.Name.Name
		}
		if i := strings.LastIndex(p, "/"); i >= 0 {
			return p[i+1:]
		}
		return p
	}
	return ""
}

// isPkgIdent reports whether the identifier refers to the package
// bound to name in this file: same name and no local declaration
// shadowing it (the parser resolves file-scope objects, so a shadowed
// use carries a non-nil Obj).
func isPkgIdent(id *ast.Ident, name string) bool {
	return name != "" && id.Name == name && id.Obj == nil
}

// walkSkippingFuncLit walks the statements of a function body without
// descending into function literals, for rules about what a method
// itself does (closures escape the method's control flow).
func walkSkippingFuncLit(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		return fn(n)
	})
}
