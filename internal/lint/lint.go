// Package lint implements lfslint, the repository's static-analysis
// suite. The paper's results are shapes produced by a deterministic
// latency model, so every figure we reproduce silently depends on
// conventions the compiler cannot check: the simulated clock is the
// only time source, every disk request names its IOCause, VFS
// operations fail only with *vfs.PathError, lock-guarded state is
// touched only under the lock, deterministic output never depends on
// map iteration order or goroutine scheduling, store sentinels are
// compared with errors.Is, store handles reach Close, and byte/time
// accounting stays in integer arithmetic. Each analyzer here turns
// one of those conventions into a build gate (run by scripts/ci.sh
// before the tests).
//
// The suite is written against the standard library only (go/ast,
// go/parser, go/token) so go.mod stays dependency-free. Analyses are
// therefore syntactic: they resolve package qualifiers through the
// file's import table rather than full type information, which is
// precise enough for this repository's idioms and keeps a whole-module
// run under a second. Analyzers that need more than one package —
// reachability from deterministic-output writers, the derived
// simulation scope — share the Index built once per run.
//
// A finding can be suppressed where the violation is intentional by
// placing
//
//	//lfslint:allow <rule>[,<rule>...] <one-line justification>
//
// on the flagged line or the line directly above it. The
// justification is mandatory: a directive without one is itself
// reported (rule "allow"), as is a stale directive that no longer
// suppresses anything. Allow directives are deliberately line-scoped:
// there is no file- or package-wide escape hatch, so every exception
// is visible next to the code it excuses.
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"sort"
	"strings"
	"time"
)

// Diagnostic is one finding: a violated rule at a position.
type Diagnostic struct {
	// Pos locates the finding; Filename is relative to the module
	// root.
	Pos token.Position
	// Rule names the analyzer that produced the finding.
	Rule string
	// Msg explains the violation and the sanctioned alternative.
	Msg string
}

// String formats the finding as "file:line: rule: message", the
// grep- and editor-friendly shape cmd/lfslint prints.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Rule, d.Msg)
}

// Allow is one parsed //lfslint:allow directive.
type Allow struct {
	// Rules are the analyzer names the directive suppresses.
	Rules []string
	// Justification is everything after the rule list. It is
	// mandatory; an empty justification is reported by the driver.
	Justification string
	// Pos locates the directive.
	Pos token.Position
	// used records whether the directive suppressed at least one
	// finding during the current run.
	used bool
}

// covers reports whether the directive names the rule.
func (a *Allow) covers(rule string) bool {
	for _, r := range a.Rules {
		if r == rule {
			return true
		}
	}
	return false
}

// File is one parsed source file plus its allow directives.
type File struct {
	// AST is the parsed file (with comments).
	AST *ast.File
	// Allows are the file's parsed //lfslint:allow directives.
	Allows []*Allow
}

// Package is all Go files of one directory (test files included: the
// invariants hold for test code too).
type Package struct {
	// RelDir is the slash-separated directory path relative to the
	// module root ("." for the root package).
	RelDir string
	// Name is the package name of the first file (files of a
	// directory are analyzed together regardless of package clause,
	// so external _test packages are covered too).
	Name string
	// Fset is the position table shared by every package of a load.
	Fset *token.FileSet
	// Files are the parsed sources.
	Files []*File
}

// inDirs reports whether the package lies in (or under) one of the
// given module-relative directories.
func (p *Package) inDirs(dirs ...string) bool {
	for _, d := range dirs {
		if p.RelDir == d || strings.HasPrefix(p.RelDir, d+"/") {
			return true
		}
	}
	return false
}

// Analyzer is one named pass over a package.
type Analyzer struct {
	// Name is the rule name, as printed in diagnostics and matched
	// by allow directives.
	Name string
	// Doc is a one-line description for cmd/lfslint -rules.
	Doc string
	// Run inspects one package and returns its findings (allow
	// filtering happens in the driver). The shared index gives
	// cross-package facts: derived simulation scope, call-graph
	// reachability, map-typed names.
	Run func(pkg *Package, ix *Index) []Diagnostic
}

// Analyzers is the full suite, in the order findings are reported.
var Analyzers = []*Analyzer{
	WallclockAnalyzer,
	IOCauseAnalyzer,
	ErrWrapAnalyzer,
	LockCheckAnalyzer,
	AtomicMixAnalyzer,
	MapOrderAnalyzer,
	NoGoroutineAnalyzer,
	SentinelErrAnalyzer,
	StoreCapAnalyzer,
	FloatAccumAnalyzer,
}

// allowDirective is the comment prefix of the escape hatch.
const allowDirective = "lfslint:allow"

// parseAllows extracts the allow directives of a parsed file.
func parseAllows(fset *token.FileSet, f *ast.File) []*Allow {
	var allows []*Allow
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, allowDirective) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, allowDirective))
			ruleList, justification, _ := strings.Cut(rest, " ")
			a := &Allow{
				Justification: strings.TrimSpace(justification),
				Pos:           fset.Position(c.Pos()),
			}
			for _, rule := range strings.Split(ruleList, ",") {
				if rule != "" {
					a.Rules = append(a.Rules, rule)
				}
			}
			if len(a.Rules) > 0 {
				allows = append(allows, a)
			}
		}
	}
	return allows
}

// allowed reports whether an allow directive for rule covers the given
// line — the directive may sit on the flagged line itself or on the
// line directly above it — and marks any covering directive as used.
func (f *File) allowed(rule string, line int) bool {
	ok := false
	for _, a := range f.Allows {
		if (a.Pos.Line == line || a.Pos.Line == line-1) && a.covers(rule) {
			a.used = true
			ok = true
		}
	}
	return ok
}

// fileFor maps a diagnostic back to the file it was reported in, for
// allow filtering.
func fileFor(pkg *Package, d Diagnostic) *File {
	for _, f := range pkg.Files {
		if pkg.Fset.Position(f.AST.Pos()).Filename == d.Pos.Filename {
			return f
		}
	}
	return nil
}

// Timing is the cost of one pass over the whole load, for the ci.sh
// budget line. The pseudo-entry "index" accounts for building the
// shared package index.
type Timing struct {
	Rule     string  `json:"rule"`
	Millis   float64 `json:"ms"`
	Findings int     `json:"findings"`
}

// Run executes the analyzers over the packages, drops findings covered
// by allow directives, and returns the rest — plus any allow-directive
// violations — sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	diags, _ := RunWithTimings(pkgs, analyzers)
	return diags
}

// RunWithTimings is Run plus per-analyzer wall time, one Timing per
// analyzer in suite order after the "index" entry.
func RunWithTimings(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, []Timing) {
	start := time.Now()
	ix := NewIndex(pkgs)
	timings := []Timing{{Rule: "index", Millis: msSince(start)}}
	var out []Diagnostic
	for _, a := range analyzers {
		t0 := time.Now()
		found := 0
		for _, pkg := range pkgs {
			for _, d := range a.Run(pkg, ix) {
				if f := fileFor(pkg, d); f != nil && f.allowed(d.Rule, d.Pos.Line) {
					continue
				}
				found++
				out = append(out, d)
			}
		}
		timings = append(timings, Timing{Rule: a.Name, Millis: msSince(t0), Findings: found})
	}
	out = append(out, checkAllows(pkgs, analyzers)...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		return out[i].Rule < out[j].Rule
	})
	return out, timings
}

func msSince(t time.Time) float64 {
	return float64(time.Since(t)) / float64(time.Millisecond)
}

// checkAllows audits the escape hatch itself after the analyzers ran:
// every directive must carry a justification, and a directive that
// suppressed nothing is stale and must be deleted. Staleness is only
// judged when every rule the directive names was part of this run
// (a partial -rules invocation cannot prove a directive dead). These
// findings carry the pseudo-rule "allow" and cannot themselves be
// suppressed.
func checkAllows(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, a := range f.Allows {
				rules := strings.Join(a.Rules, ",")
				if a.Justification == "" {
					out = append(out, Diagnostic{
						Pos:  a.Pos,
						Rule: "allow",
						Msg: "allow directive for " + rules + " has no justification; " +
							"write why the violation is intentional after the rule list",
					})
					continue
				}
				judgeable := true
				for _, r := range a.Rules {
					if !ran[r] {
						judgeable = false
						break
					}
				}
				if judgeable && !a.used {
					out = append(out, Diagnostic{
						Pos:  a.Pos,
						Rule: "allow",
						Msg: "stale allow directive: no " + rules + " finding on this " +
							"or the next line; delete it",
					})
				}
			}
		}
	}
	return out
}

// Report is the machine-readable result of a run, written by
// cmd/lfslint -json and consumed by future annotation tooling.
type Report struct {
	// Packages is the number of packages analyzed.
	Packages int `json:"packages"`
	// Findings are the surviving diagnostics in report order.
	Findings []ReportFinding `json:"findings"`
	// Timings are the per-analyzer costs (when collected).
	Timings []Timing `json:"timings,omitempty"`
}

// ReportFinding is one diagnostic in the JSON report.
type ReportFinding struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
}

// NewReport assembles the JSON report from a run's results.
func NewReport(pkgs []*Package, diags []Diagnostic, timings []Timing) Report {
	r := Report{Packages: len(pkgs), Findings: []ReportFinding{}, Timings: timings}
	for _, d := range diags {
		r.Findings = append(r.Findings, ReportFinding{
			File: d.Pos.Filename,
			Line: d.Pos.Line,
			Col:  d.Pos.Column,
			Rule: d.Rule,
			Msg:  d.Msg,
		})
	}
	return r
}

// WriteJSON writes the report as indented JSON.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// importName returns the local name the file binds the given import
// path to, or "" when the file does not import it. The default name is
// the path's last element; a blank or dot import returns "".
func importName(f *ast.File, path string) string {
	for _, imp := range f.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		if p != path {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				return ""
			}
			return imp.Name.Name
		}
		if i := strings.LastIndex(p, "/"); i >= 0 {
			return p[i+1:]
		}
		return p
	}
	return ""
}

// isPkgIdent reports whether the identifier refers to the package
// bound to name in this file: same name and no local declaration
// shadowing it (the parser resolves file-scope objects, so a shadowed
// use carries a non-nil Obj).
func isPkgIdent(id *ast.Ident, name string) bool {
	return name != "" && id.Name == name && id.Obj == nil
}

// walkSkippingFuncLit walks the statements of a function body without
// descending into function literals, for rules about what a method
// itself does (closures escape the method's control flow).
func walkSkippingFuncLit(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		return fn(n)
	})
}
