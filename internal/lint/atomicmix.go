package lint

import (
	"go/ast"
)

// AtomicMixAnalyzer flags fields that are accessed both through
// sync/atomic and through plain loads or stores. Mixing the two is a
// data race even when it happens to pass the race detector's
// schedules: the plain access carries no happens-before edge. The
// repository's concurrency story is coarse (one mutex per FS, one per
// recorder), so any sync/atomic use is deliberate and must be total.
//
// The analysis is name-based within a package: a field name that
// appears as &x.f in an atomic call is tracked, and every other
// selector access to a field of that name is flagged. Without type
// information two distinct structs sharing a field name could alias;
// in that unlikely case the finding is silenced with
// //lfslint:allow atomicmix and a justification.
var AtomicMixAnalyzer = &Analyzer{
	Name: "atomicmix",
	Doc:  "fields accessed via sync/atomic must never be accessed plainly",
	Run:  runAtomicMix,
}

func runAtomicMix(pkg *Package, _ *Index) []Diagnostic {
	// Pass 1: find fields used atomically, and remember the exact
	// selector nodes inside atomic calls so pass 2 exempts them.
	atomicFields := make(map[string]bool)
	exempt := make(map[*ast.SelectorExpr]bool)
	for _, f := range pkg.Files {
		atomicName := importName(f.AST, "sync/atomic")
		if atomicName == "" {
			continue
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fun, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := fun.X.(*ast.Ident)
			if !ok || !isPkgIdent(id, atomicName) {
				return true
			}
			for _, arg := range call.Args {
				unary, ok := arg.(*ast.UnaryExpr)
				if !ok {
					continue
				}
				sel, ok := unary.X.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				atomicFields[sel.Sel.Name] = true
				exempt[sel] = true
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}

	// Pass 2: flag every other access to those field names.
	var diags []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !atomicFields[sel.Sel.Name] || exempt[sel] {
				return true
			}
			// A selector on an unresolved identifier is most likely a
			// package-qualified name (pkg.Name), not a field access;
			// receivers and locals carry parser-resolved objects.
			if id, ok := sel.X.(*ast.Ident); ok && id.Obj == nil {
				return true
			}
			diags = append(diags, Diagnostic{
				Pos:  pkg.Fset.Position(sel.Pos()),
				Rule: "atomicmix",
				Msg: "field " + sel.Sel.Name + " is accessed with sync/atomic elsewhere in this package; " +
					"a plain access races with it — use the atomic API everywhere",
			})
			return true
		})
	}
	return diags
}
