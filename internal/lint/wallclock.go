package lint

import (
	"go/ast"
)

// forbiddenTimeFuncs are the package time functions that read or wait
// on the wall clock. Types (time.Duration) and constants
// (time.Millisecond) remain usable: sim.Duration is time.Duration.
var forbiddenTimeFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// allowedRandNames are the math/rand identifiers usable in simulation
// code: the explicit-seed constructors and the types they involve.
// Everything else on the package (Intn, Float64, Perm, Shuffle, Seed,
// ...) goes through the implicitly seeded global source, which makes
// reruns irreproducible.
var allowedRandNames = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	"Rand":      true,
	"Source":    true,
	"Source64":  true,
	"Zipf":      true,
}

// WallclockAnalyzer forbids wall-clock time sources and implicitly
// seeded randomness in the simulation packages. The paper's results
// are deterministic functions of the latency model; a single time.Now
// or global rand.Intn makes a figure unreproducible.
//
// The scope is derived, not listed: any package (outside cmd/) whose
// module-internal import closure reaches internal/sim runs on the
// simulated clock and is held to the rule. The old hardcoded
// directory list needed a manual append every time a subsystem landed
// — each omission was a silent coverage hole. cmd/ stays exempt: the
// tools time wall-clock benchmarks and drive terminal UIs.
var WallclockAnalyzer = &Analyzer{
	Name: "wallclock",
	Doc:  "simulation packages must use the simulated clock and explicitly seeded RNGs",
	Run:  runWallclock,
}

func runWallclock(pkg *Package, ix *Index) []Diagnostic {
	if !ix.InSimScope(pkg) {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		timeName := importName(f.AST, "time")
		randName := importName(f.AST, "math/rand")
		randV2Name := importName(f.AST, "math/rand/v2")
		if timeName == "" && randName == "" && randV2Name == "" {
			continue
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			switch {
			case isPkgIdent(id, timeName) && forbiddenTimeFuncs[sel.Sel.Name]:
				diags = append(diags, Diagnostic{
					Pos:  pkg.Fset.Position(sel.Pos()),
					Rule: "wallclock",
					Msg: "time." + sel.Sel.Name + " reads the wall clock; " +
						"use the simulated clock (sim.Clock) so results stay deterministic",
				})
			case isPkgIdent(id, randName) && !allowedRandNames[sel.Sel.Name]:
				diags = append(diags, Diagnostic{
					Pos:  pkg.Fset.Position(sel.Pos()),
					Rule: "wallclock",
					Msg: "rand." + sel.Sel.Name + " uses the implicitly seeded global source; " +
						"use rand.New(rand.NewSource(seed)) with a seed threaded through config",
				})
			case isPkgIdent(id, randV2Name):
				// math/rand/v2 auto-seeds its global and its
				// constructors take no seed we can thread from
				// config, so the package is rejected wholesale.
				diags = append(diags, Diagnostic{
					Pos:  pkg.Fset.Position(sel.Pos()),
					Rule: "wallclock",
					Msg: "math/rand/v2 is auto-seeded; " +
						"use math/rand with rand.New(rand.NewSource(seed)) instead",
				})
			}
			return true
		})
	}
	return diags
}
