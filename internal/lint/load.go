package lint

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// LoadModule parses every Go file under root (the directory holding
// go.mod) into packages keyed by directory. Hidden directories,
// testdata trees, and generated vendor directories are skipped, the
// same set the go tool ignores. Test files are included: the
// invariants the analyzers enforce apply to test code too.
func LoadModule(root string) ([]*Package, error) {
	fset := token.NewFileSet()
	byDir := make(map[string]*Package)

	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path == root {
				return nil
			}
			if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		// The relative path becomes the position filename, so
		// diagnostics print module-relative locations.
		astFile, err := parser.ParseFile(fset, rel, src, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("lint: %w", err)
		}
		dir := filepath.ToSlash(filepath.Dir(rel))
		pkg := byDir[dir]
		if pkg == nil {
			pkg = &Package{RelDir: dir, Name: astFile.Name.Name, Fset: fset}
			byDir[dir] = pkg
		}
		pkg.Files = append(pkg.Files, &File{
			AST:    astFile,
			Allows: parseAllows(fset, astFile),
		})
		return nil
	})
	if err != nil {
		return nil, err
	}

	pkgs := make([]*Package, 0, len(byDir))
	for _, pkg := range byDir {
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].RelDir < pkgs[j].RelDir })
	return pkgs, nil
}

// Match filters packages by go-style path patterns relative to the
// module root: "./..." (or "...") selects everything, "./dir/..."
// selects a subtree, and "./dir" selects one directory. An empty
// pattern list selects everything.
func Match(pkgs []*Package, patterns []string) []*Package {
	if len(patterns) == 0 {
		return pkgs
	}
	var out []*Package
	for _, pkg := range pkgs {
		for _, pat := range patterns {
			if matchPattern(pkg.RelDir, pat) {
				out = append(out, pkg)
				break
			}
		}
	}
	return out
}

// matchPattern reports whether the module-relative directory matches
// one go-style pattern.
func matchPattern(relDir, pat string) bool {
	pat = strings.TrimPrefix(pat, "./")
	pat = strings.TrimSuffix(pat, "/")
	if pat == "..." || pat == "" || pat == "." {
		return true
	}
	if strings.HasSuffix(pat, "/...") {
		base := strings.TrimSuffix(pat, "/...")
		return relDir == base || strings.HasPrefix(relDir, base+"/")
	}
	return relDir == pat
}
