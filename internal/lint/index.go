package lint

import (
	"go/ast"
	"sort"
	"strings"
)

// Index is the shared package-index layer built once per Run and
// handed to every analyzer: a function table over all loaded
// packages, a lightweight intra-module call graph, the set of
// map-typed names per package, and two derived facts the
// determinism analyzers key off — which packages are simulation
// packages (their import closure reaches internal/sim) and which
// functions are reachable from a deterministic-output writer.
//
// Everything here is syntactic. Imports are resolved by matching an
// import path against the loaded directories (suffix match, so the
// index works for the real module and for the testdata mini-modules,
// which have no go.mod). Method calls resolve by name to every
// candidate in the packages the calling file can see — an
// over-approximation, which for reachability is the safe direction.
type Index struct {
	pkgs  []*Package
	byDir map[string]*Package

	// funcs lists every function/method declaration keyed by bare
	// name (methods drop the receiver type).
	funcs  map[string][]*FuncInfo
	funcOf map[*ast.FuncDecl]*FuncInfo

	// mapNames holds, per package, the names declared with a map
	// type anywhere in the package: struct fields, variables,
	// parameters, and make/composite-literal assignments.
	mapNames map[*Package]map[string]bool

	// simDirs is the derived deterministic scope: every loaded
	// directory outside cmd/ whose module-internal import closure
	// includes internal/sim.
	simDirs map[string]bool

	// reachable marks functions reachable from a deterministic-output
	// root over the call graph.
	reachable map[*FuncInfo]bool

	// resolveCache memoizes import-path resolution; the same stdlib
	// and module paths recur in every file.
	resolveCache map[string]string
}

// FuncInfo is one function or method declaration in the index.
type FuncInfo struct {
	Pkg  *Package
	File *File
	Decl *ast.FuncDecl
	// imports are the module-internal directories the declaring file
	// imports — the candidate targets for method-name resolution.
	imports []string
	// root marks a deterministic-output writer (see isRoot).
	root bool
}

// Name returns the bare declared name (receiver type dropped).
func (fi *FuncInfo) Name() string { return fi.Decl.Name.Name }

// simDirName is the directory anchoring the deterministic scope: a
// package is simulation code exactly when its imports reach the
// simulated clock.
const simDirName = "internal/sim"

// NewIndex builds the index over the loaded packages.
func NewIndex(pkgs []*Package) *Index {
	ix := &Index{
		pkgs:         pkgs,
		byDir:        make(map[string]*Package, len(pkgs)),
		funcs:        make(map[string][]*FuncInfo),
		funcOf:       make(map[*ast.FuncDecl]*FuncInfo),
		mapNames:     make(map[*Package]map[string]bool, len(pkgs)),
		simDirs:      make(map[string]bool),
		reachable:    make(map[*FuncInfo]bool),
		resolveCache: make(map[string]string),
	}
	for _, pkg := range pkgs {
		ix.byDir[pkg.RelDir] = pkg
	}
	for _, pkg := range pkgs {
		ix.indexPackage(pkg)
	}
	ix.deriveSimScope()
	ix.markReachable()
	return ix
}

// resolveImport maps an import path to a loaded directory, or "" when
// the path is not module-internal. The module prefix is unknown (the
// testdata mini-modules carry no go.mod), so the path is matched by
// suffix against the loaded directories, longest directory first; a
// path equal to a bare prefix seen elsewhere resolves to the root
// package.
func (ix *Index) resolveImport(path string) string {
	if dir, ok := ix.resolveCache[path]; ok {
		return dir
	}
	dir := ix.resolveImportUncached(path)
	ix.resolveCache[path] = dir
	return dir
}

func (ix *Index) resolveImportUncached(path string) string {
	best := ""
	for _, p := range ix.pkgs {
		dir := p.RelDir
		if dir == "." {
			continue
		}
		if path == dir || strings.HasSuffix(path, "/"+dir) {
			if len(dir) > len(best) {
				best = dir
			}
		}
	}
	if best != "" {
		return best
	}
	// A single-segment path that other files extend into resolvable
	// module paths ("lfs" next to "lfs/internal/sim") is the root
	// package.
	if _, ok := ix.byDir["."]; ok && !strings.Contains(path, "/") {
		for _, p := range ix.pkgs {
			if p.RelDir != "." && ix.seenImport(path+"/"+p.RelDir) {
				return "."
			}
		}
	}
	return ""
}

// seenImport reports whether any loaded file imports exactly path.
func (ix *Index) seenImport(path string) bool {
	for _, pkg := range ix.pkgs {
		for _, f := range pkg.Files {
			for _, imp := range f.AST.Imports {
				if strings.Trim(imp.Path.Value, `"`) == path {
					return true
				}
			}
		}
	}
	return false
}

// indexPackage records the package's functions, imports, and
// map-typed names. A name also declared with an evident non-map type
// somewhere in the package is ambiguous and dropped: without type
// resolution, a slice named like a map elsewhere ([]blockRef refs in
// one file, map[Ino]int refs in another) would otherwise flag slice
// loops.
func (ix *Index) indexPackage(pkg *Package) {
	names := make(map[string]bool)
	nonMap := make(map[string]bool)
	ix.mapNames[pkg] = names
	for _, f := range pkg.Files {
		var imports []string
		for _, imp := range f.AST.Imports {
			if dir := ix.resolveImport(strings.Trim(imp.Path.Value, `"`)); dir != "" {
				imports = append(imports, dir)
			}
		}
		for _, decl := range f.AST.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fi := &FuncInfo{Pkg: pkg, File: f, Decl: fn, imports: imports}
			fi.root = isRoot(pkg, f, fn)
			ix.funcs[fn.Name.Name] = append(ix.funcs[fn.Name.Name], fi)
			ix.funcOf[fn] = fi
		}
		// Map-typed names: struct fields, var/param/result
		// declarations, and := bindings of make(map...) or map
		// literals.
		ast.Inspect(f.AST, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Field:
				if n.Type != nil {
					record(names, nonMap, isMapType(n.Type), n.Names)
				}
			case *ast.ValueSpec:
				if n.Type != nil {
					record(names, nonMap, isMapType(n.Type), n.Names)
				}
				for i, v := range n.Values {
					if i >= len(n.Names) {
						break
					}
					if isMap, known := classifyExpr(v); known {
						record(names, nonMap, isMap, n.Names[i:i+1])
					}
				}
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if i >= len(n.Lhs) {
						break
					}
					isMap, known := classifyExpr(rhs)
					if !known {
						continue
					}
					name := ""
					if id, ok := n.Lhs[i].(*ast.Ident); ok {
						name = id.Name
					} else if sel, ok := n.Lhs[i].(*ast.SelectorExpr); ok {
						name = sel.Sel.Name
					}
					if name == "" {
						continue
					}
					if isMap {
						names[name] = true
					} else {
						nonMap[name] = true
					}
				}
			}
			return true
		})
	}
	for name := range nonMap {
		delete(names, name)
	}
}

// record files the names under the map or non-map set.
func record(names, nonMap map[string]bool, isMap bool, ids []*ast.Ident) {
	for _, id := range ids {
		if isMap {
			names[id.Name] = true
		} else {
			nonMap[id.Name] = true
		}
	}
}

// isMapType reports whether the type expression is a map type.
func isMapType(t ast.Expr) bool {
	_, ok := t.(*ast.MapType)
	return ok
}

// classifyExpr reports whether the expression's type is evident
// (make call or typed composite literal) and, if so, whether it is a
// map.
func classifyExpr(e ast.Expr) (isMap, known bool) {
	switch e := e.(type) {
	case *ast.CallExpr:
		id, ok := e.Fun.(*ast.Ident)
		if ok && id.Name == "make" && len(e.Args) > 0 {
			return isMapType(e.Args[0]), true
		}
	case *ast.CompositeLit:
		if e.Type != nil {
			return isMapType(e.Type), true
		}
	}
	return false, false
}

// IsMapName reports whether name is declared with a map type anywhere
// in the package. Without type resolution two declarations sharing a
// name can alias (a slice field and a map field); the escape hatch
// covers that unlikely false positive.
func (ix *Index) IsMapName(pkg *Package, name string) bool {
	return ix.mapNames[pkg][name]
}

// deriveSimScope computes the deterministic package scope from the
// import graph instead of a hardcoded directory list: every package
// outside cmd/ whose module-internal import closure reaches
// internal/sim runs on the simulated clock and is held to the
// determinism rules. cmd/ is excluded deliberately — the tools time
// wall-clock benchmarks and render output for humans.
func (ix *Index) deriveSimScope() {
	imports := make(map[string][]string, len(ix.pkgs))
	for _, pkg := range ix.pkgs {
		seen := make(map[string]bool)
		for _, f := range pkg.Files {
			for _, imp := range f.AST.Imports {
				if dir := ix.resolveImport(strings.Trim(imp.Path.Value, `"`)); dir != "" && !seen[dir] {
					seen[dir] = true
					imports[pkg.RelDir] = append(imports[pkg.RelDir], dir)
				}
			}
		}
	}
	var reaches func(dir string, visiting map[string]bool) bool
	memo := make(map[string]bool)
	reaches = func(dir string, visiting map[string]bool) bool {
		if dir == simDirName {
			return true
		}
		if v, ok := memo[dir]; ok {
			return v
		}
		if visiting[dir] {
			return false
		}
		visiting[dir] = true
		out := false
		for _, dep := range imports[dir] {
			if reaches(dep, visiting) {
				out = true
				break
			}
		}
		delete(visiting, dir)
		memo[dir] = out
		return out
	}
	for _, pkg := range ix.pkgs {
		if pkg.RelDir == "cmd" || strings.HasPrefix(pkg.RelDir, "cmd/") {
			continue
		}
		if reaches(pkg.RelDir, make(map[string]bool)) {
			ix.simDirs[pkg.RelDir] = true
		}
	}
}

// InSimScope reports whether the package is simulation code: its
// import closure reaches internal/sim and it is not a cmd/ tool.
func (ix *Index) InSimScope(pkg *Package) bool { return ix.simDirs[pkg.RelDir] }

// SimDirs returns the derived deterministic scope, sorted, for tests
// and the -rules listing.
func (ix *Index) SimDirs() []string {
	out := make([]string, 0, len(ix.simDirs))
	for d := range ix.simDirs {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// isRoot classifies deterministic-output writers, the reachability
// roots: functions that emit bytes whose exact form is promised to be
// reproducible — JSON/JSONL encoders (metrics, traces, benchjson),
// on-disk encoders (checkpoint, summary, layout), tool entry points
// (their stdout is diffed and eyeballed), and test functions (they
// produce and compare the golden files).
func isRoot(pkg *Package, f *File, fn *ast.FuncDecl) bool {
	name := fn.Name.Name
	if name == "WriteJSONL" || strings.HasPrefix(name, "Encode") || strings.HasPrefix(name, "encode") {
		return true
	}
	if name == "main" && pkg.Name == "main" {
		return true
	}
	for _, p := range [4]string{"Test", "Benchmark", "Fuzz", "Example"} {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	if fn.Body == nil {
		return false
	}
	jsonName := importName(f.AST, "encoding/json")
	if jsonName == "" {
		return false
	}
	root := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || !isPkgIdent(id, jsonName) {
			return true
		}
		switch sel.Sel.Name {
		case "Marshal", "MarshalIndent", "NewEncoder":
			root = true
		}
		return true
	})
	return root
}

// markReachable BFS-walks the call graph from every root. Edges
// resolve syntactically: a bare identifier to the same package's
// function of that name, pkg.Name through the file's import table,
// and a method name to every same-named method in the packages the
// calling file can see (same package plus its module imports).
func (ix *Index) markReachable() {
	// Seed the queue in sorted-name order so the index itself honors
	// the maporder rule (the reachable set is order-independent, but
	// the analyzers cannot know that).
	names := make([]string, 0, len(ix.funcs))
	for name := range ix.funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	var queue []*FuncInfo
	for _, name := range names {
		for _, fi := range ix.funcs[name] {
			if fi.root && !ix.reachable[fi] {
				ix.reachable[fi] = true
				queue = append(queue, fi)
			}
		}
	}
	for len(queue) > 0 {
		fi := queue[0]
		queue = queue[1:]
		for _, callee := range ix.callees(fi) {
			if !ix.reachable[callee] {
				ix.reachable[callee] = true
				queue = append(queue, callee)
			}
		}
	}
}

// callees returns the functions fi may invoke (or reference — a
// function handed off as a value runs eventually).
func (ix *Index) callees(fi *FuncInfo) []*FuncInfo {
	if fi.Decl.Body == nil {
		return nil
	}
	visible := make(map[string]bool, len(fi.imports)+1)
	visible[fi.Pkg.RelDir] = true
	for _, d := range fi.imports {
		visible[d] = true
	}
	var out []*FuncInfo
	seen := make(map[*FuncInfo]bool)
	add := func(cand *FuncInfo) {
		if cand != nil && !seen[cand] {
			seen[cand] = true
			out = append(out, cand)
		}
	}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			// Reference to a same-package top-level function
			// (direct call or function value).
			for _, cand := range ix.funcs[n.Name] {
				if cand.Pkg == fi.Pkg && cand.Decl.Recv == nil {
					add(cand)
				}
			}
		case *ast.SelectorExpr:
			if id, ok := n.X.(*ast.Ident); ok && id.Obj == nil {
				// Possibly pkg.Func through the import table.
				if dir := ix.importDirFor(fi.File, id.Name); dir != "" {
					for _, cand := range ix.funcs[n.Sel.Name] {
						if cand.Pkg.RelDir == dir && cand.Decl.Recv == nil {
							add(cand)
						}
					}
					return true
				}
			}
			// Method (or field holding a function) on some value:
			// resolve by name to every candidate the file can see.
			for _, cand := range ix.funcs[n.Sel.Name] {
				if visible[cand.Pkg.RelDir] {
					add(cand)
				}
			}
		}
		return true
	})
	return out
}

// importDirFor resolves a package-qualifier identifier in the file to
// a loaded directory, or "".
func (ix *Index) importDirFor(f *File, name string) string {
	for _, imp := range f.AST.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		local := ""
		if imp.Name != nil {
			local = imp.Name.Name
		} else {
			local = path
			if i := strings.LastIndex(path, "/"); i >= 0 {
				local = path[i+1:]
			}
		}
		if local != name {
			continue
		}
		return ix.resolveImport(path)
	}
	return ""
}

// Reachable reports whether the function declaration is reachable
// from a deterministic-output writer (see isRoot). Unknown
// declarations report false.
func (ix *Index) Reachable(fn *ast.FuncDecl) bool {
	fi, ok := ix.funcOf[fn]
	return ok && ix.reachable[fi]
}

// FuncFor returns the index entry of a declaration, or nil.
func (ix *Index) FuncFor(fn *ast.FuncDecl) *FuncInfo { return ix.funcOf[fn] }
