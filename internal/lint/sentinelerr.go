package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// sentinelErrDirs are the packages whose public error contract is
// sentinel-based: disk.ErrClosed/ErrOutOfRange cross the store
// boundary wrapped in path and operation context, and core wraps
// everything again into *vfs.PathError. A bare == against a sentinel
// works only until someone adds a wrapping layer, then silently
// stops matching — exactly the failure errors.Is exists to prevent.
var sentinelErrDirs = []string{"internal/disk", "internal/core"}

// SentinelErrAnalyzer enforces errors.Is-based sentinel handling in
// internal/disk and internal/core: no ==/!= against Err*-named
// values, no switching on error identity, and fmt.Errorf must wrap
// sentinels with %w so they stay matchable.
var SentinelErrAnalyzer = &Analyzer{
	Name: "sentinelerr",
	Doc:  "store/core sentinels are matched with errors.Is and wrapped with %w",
	Run:  runSentinelErr,
}

func runSentinelErr(pkg *Package, _ *Index) []Diagnostic {
	if !pkg.inDirs(sentinelErrDirs...) {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		fmtName := importName(f.AST, "fmt")
		ast.Inspect(f.AST, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				// err != nil on a sentinel-named variable is the
				// ordinary error check, not an identity match.
				if isNilExpr(n.X) || isNilExpr(n.Y) {
					return true
				}
				name := sentinelName(n.X)
				if name == "" {
					name = sentinelName(n.Y)
				}
				if name == "" {
					return true
				}
				diags = append(diags, Diagnostic{
					Pos:  pkg.Fset.Position(n.Pos()),
					Rule: "sentinelerr",
					Msg: "comparing " + name + " with " + n.Op.String() +
						" stops matching once the error is wrapped; use errors.Is(err, " + name + ")",
				})
			case *ast.SwitchStmt:
				if n.Tag == nil {
					return true
				}
				for _, stmt := range n.Body.List {
					cc, ok := stmt.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if name := sentinelName(e); name != "" {
							diags = append(diags, Diagnostic{
								Pos:  pkg.Fset.Position(n.Pos()),
								Rule: "sentinelerr",
								Msg: "switch on error identity (case " + name + ") stops matching " +
									"once the error is wrapped; use an errors.Is chain",
							})
							return true
						}
					}
				}
			case *ast.CallExpr:
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Errorf" {
					return true
				}
				if id, ok := sel.X.(*ast.Ident); !ok || !isPkgIdent(id, fmtName) {
					return true
				}
				if len(n.Args) == 0 {
					return true
				}
				format, ok := n.Args[0].(*ast.BasicLit)
				if !ok || format.Kind != token.STRING || strings.Contains(format.Value, "%w") {
					return true
				}
				for _, a := range n.Args[1:] {
					if name := sentinelName(a); name != "" {
						diags = append(diags, Diagnostic{
							Pos:  pkg.Fset.Position(n.Pos()),
							Rule: "sentinelerr",
							Msg: "fmt.Errorf formats " + name + " without %w, so errors.Is " +
								"cannot see through the wrap; use %w",
						})
						return true
					}
				}
			}
			return true
		})
	}
	return diags
}

// sentinelName returns the sentinel's display name when the
// expression is an Err*/err*-named identifier or selector, else "".
func sentinelName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		if isSentinelIdent(e.Name) {
			return e.Name
		}
	case *ast.SelectorExpr:
		if isSentinelIdent(e.Sel.Name) {
			if id, ok := e.X.(*ast.Ident); ok {
				return id.Name + "." + e.Sel.Name
			}
			return e.Sel.Name
		}
	}
	return ""
}

// isNilExpr reports whether the expression is the nil identifier.
func isNilExpr(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// isSentinelIdent matches the sentinel naming convention: Err or err
// followed by an upper-case letter (ErrClosed, errBoom).
func isSentinelIdent(name string) bool {
	for _, p := range [2]string{"Err", "err"} {
		if strings.HasPrefix(name, p) && len(name) > len(p) {
			if c := name[len(p)]; c >= 'A' && c <= 'Z' {
				return true
			}
		}
	}
	return false
}
