// Package sim anchors the derived deterministic scope for this
// corpus: packages importing it are simulation code and must stay on
// the single sched.Loop thread.
package sim

// Time is an instant on the simulated clock.
type Time int64

// Clock hands out simulated time.
type Clock struct{ now Time }

// Now returns the current simulated time.
func (c *Clock) Now() Time { return c.now }

// Advance moves the clock forward by d.
func (c *Clock) Advance(d Time) { c.now += d }
