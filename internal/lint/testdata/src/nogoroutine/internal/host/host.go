// Package host never imports internal/sim, so it sits outside the
// derived scope: host-side concurrency is legitimate here and the
// nogoroutine pass must report nothing.
package host

// Spawn runs host-side work on its own goroutine — out of scope, not
// flagged.
func Spawn(work func()) chan struct{} {
	done := make(chan struct{})
	go func() {
		work()
		close(done)
	}()
	return done
}
