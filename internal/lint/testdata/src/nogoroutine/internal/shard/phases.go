package shard

import "nogoroutine/internal/sim"

// gatherPhases fans per-shard phase totals out to goroutines and must
// be flagged once (the go statement; the channel traffic inside rides
// along): the totals would arrive in runtime-scheduler order, not the
// fixed shard order the trace schema promises.
func gatherPhases(totals []chan sim.Time) chan sim.Time {
	out := make(chan sim.Time)
	for _, ch := range totals {
		go func(ch chan sim.Time) { out <- <-ch }(ch)
	}
	return out
}

// foldPhases is the sanctioned pattern: per-shard phase totals fold
// in shard order on the single loop thread, no finding.
func foldPhases(totals []sim.Time) sim.Time {
	var sum sim.Time
	for _, d := range totals {
		sum += d
	}
	return sum
}
