// Package shard is a deliberately broken miniature of the multi-log
// router: one deterministic scheduler drives every shard's log, so
// fanning a broadcast out to per-shard goroutines reintroduces the
// runtime scheduler as an ordering source and must be flagged.
package shard

import "nogoroutine/internal/sim"

// broadcast forks one goroutine per shard and must be flagged once
// (the go statement; the send inside the closure rides along).
func broadcast(shards []chan int, v int) {
	for _, ch := range shards {
		go func(ch chan int) { ch <- v }(ch)
	}
}

// sweep is the sanctioned pattern: the router visits shards in shard
// order on the single loop thread, no finding.
func sweep(c *sim.Clock, n int) sim.Time {
	for i := 0; i < n; i++ {
		c.Advance(1)
	}
	return c.Now()
}
