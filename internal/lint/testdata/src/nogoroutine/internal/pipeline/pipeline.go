// Package pipeline is a deliberately broken miniature of a simulation
// package (its sim import places it in the derived scope): goroutines
// and channel operations reintroduce the runtime scheduler as a
// hidden ordering source and must be flagged — one finding per
// function, the first construct standing for the rest.
package pipeline

import "nogoroutine/internal/sim"

// fanOut forks a goroutine inside the simulation and must be flagged
// once (the go statement; the send inside the closure rides along).
func fanOut(work []int) chan int {
	out := make(chan int)
	for _, w := range work {
		go func(w int) { out <- w }(w)
	}
	return out
}

// push sends on a channel and must be flagged.
func push(ch chan int, v int) { ch <- v }

// drain receives from a channel and must be flagged.
func drain(ch chan int) int {
	total := 0
	for i := 0; i < 4; i++ {
		total += <-ch
	}
	return total
}

// choose selects between channels and must be flagged once (the
// select; the receives inside ride along).
func choose(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// step advances the simulated clock on the single loop thread: the
// sanctioned pattern, no finding.
func step(c *sim.Clock) sim.Time {
	c.Advance(1)
	return c.Now()
}

// replay deliberately exercises the external-waiter seam and takes
// the justified escape hatch, no finding.
func replay(done chan struct{}) {
	//lfslint:allow nogoroutine deliberate: exercises the external waiter seam; the goroutine joins before any simulated state is read
	go func() { done <- struct{}{} }()
}
