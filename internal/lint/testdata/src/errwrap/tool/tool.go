// Package tool sits outside internal/core and internal/ffs: the
// errwrap pass does not apply, even to methods named like VFS ops.
package tool

import "errors"

var errBoom = errors.New("boom")

type scanner struct{}

// Remove shares a VFS op name but is out of scope: no finding.
func (s *scanner) Remove(path string) error { return errBoom }
