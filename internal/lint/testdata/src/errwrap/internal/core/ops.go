// Package core is a deliberately broken miniature of a file system:
// exported VFS operations that return errors without going through
// endOp or WrapPathError must be flagged by the errwrap pass.
package core

import "errors"

var errBoom = errors.New("boom")

// FS stands in for the real file system.
type FS struct{}

func (fs *FS) endOp(op, path string, err error) error { return err }

// WrapPathError stands in for vfs.WrapPathError.
func WrapPathError(op, path string, err error) error { return err }

// Create returns through endOp: ok.
func (fs *FS) Create(path string) error { return fs.endOp("create", path, nil) }

// Mkdir returns through WrapPathError: ok.
func (fs *FS) Mkdir(path string) error { return WrapPathError("mkdir", path, errBoom) }

// Remove leaks a bare sentinel and must be flagged.
func (fs *FS) Remove(path string) error { return errBoom }

// Read leaks a bare sentinel in a multi-result return and must be
// flagged.
func (fs *FS) Read(path string, off int64, buf []byte) (int, error) { return 0, errBoom }

// Sync returns nil: ok.
func (fs *FS) Sync() error { return nil }

// Truncate returns a bare error variable and must be flagged.
func (fs *FS) Truncate(path string, size int64) error {
	err := errBoom
	return err
}

// Unmount returns through endOp; the closure's own bare return is not
// a VFS return and is skipped.
func (fs *FS) Unmount() error {
	fail := func() error { return errBoom }
	return fs.endOp("unmount", "/", fail())
}

// helper is not a VFS operation: no finding.
func (fs *FS) helper() error { return errBoom }

// Link demonstrates the escape hatch.
//
//lfslint:allow errwrap demonstration of the escape hatch
func (fs *FS) Link(oldPath, newPath string) error { return errBoom }
