// Package pkg is a deliberately broken miniature of mixed atomics: a
// field accessed through sync/atomic in one place and plainly in
// another must be flagged by the atomicmix pass.
package pkg

import "sync/atomic"

type gauge struct {
	hits  int64
	total int64
}

// bump and read use the atomic API consistently: ok.
func (g *gauge) bump() { atomic.AddInt64(&g.hits, 1) }

func (g *gauge) read() int64 { return atomic.LoadInt64(&g.hits) }

// racy reads hits plainly while others use sync/atomic: flagged.
func (g *gauge) racy() int64 { return g.hits }

// plain reads a field never touched by sync/atomic: no finding.
func (g *gauge) plain() int64 { return g.total }

// tolerated demonstrates the escape hatch.
//
//lfslint:allow atomicmix approximate read tolerated in this demo
func (g *gauge) tolerated() int64 { return g.hits }
