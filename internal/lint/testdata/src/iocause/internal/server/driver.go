// Package server is a miniature of the multi-client driver issuing
// raw device requests: outside internal/disk the zero-value cause is
// unattributed traffic and must be flagged even here, one level above
// the file systems.
package server

type cause int

// The miniature cause space, mirroring disk.IOCause.
const (
	CauseOther cause = iota
	CauseLogAppend
)

type device struct{}

func (device) WriteSectors(sector int64, p []byte, sync bool, c cause, label string) error {
	return nil
}

func drive(d device, buf []byte) {
	_ = d.WriteSectors(0, buf, false, CauseLogAppend, "named constant: ok")
	_ = d.WriteSectors(0, buf, true, CauseOther, "zero value outside internal/disk: flagged")
}
