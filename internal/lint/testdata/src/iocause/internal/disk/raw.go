// Package disk stands in for the real internal/disk: its own device
// tests exercise the raw sector interface below the file systems, so
// CauseOther is legal here without an annotation.
package disk

type cause int

// CauseOther is the unattributed zero value.
const CauseOther cause = 0

type device struct{}

func (device) ReadSectors(sector int64, p []byte, c cause, label string) error {
	return nil
}

func probe(d device, buf []byte) {
	_ = d.ReadSectors(0, buf, CauseOther, "raw device test: ok here")
}
