// Package dev is a deliberately broken miniature of a disk caller:
// the iocause pass must flag literal, converted, and zero-value cause
// arguments while accepting named constants and forwarded variables.
package dev

type cause int

// The miniature cause space, mirroring disk.IOCause.
const (
	CauseOther cause = iota
	CauseData
	NumCauses
)

type device struct{}

func (device) ReadSectors(sector int64, p []byte, c cause, label string) error {
	return nil
}

func (device) WriteSectors(sector int64, p []byte, sync bool, c cause, label string) error {
	return nil
}

func use(d device, buf []byte) {
	_ = d.ReadSectors(0, buf, CauseData, "named constant: ok")
	_ = d.WriteSectors(0, buf, true, CauseData, "named constant: ok")
	_ = d.ReadSectors(0, buf, 0, "raw literal: flagged")
	_ = d.ReadSectors(0, buf, cause(1), "converted literal: flagged")
	_ = d.ReadSectors(0, buf, CauseOther, "zero value: flagged")
	_ = d.WriteSectors(0, buf, false, NumCauses, "bound: flagged")
	//lfslint:allow iocause raw-device poke in this demo
	_ = d.ReadSectors(0, buf, CauseOther, "annotated: suppressed")
}

// forward passes a cause through a parameter, the sanctioned shape
// for helpers that issue I/O on behalf of a caller.
func forward(d device, c cause, buf []byte) error {
	return d.ReadSectors(0, buf, c, "forwarded variable: ok")
}
