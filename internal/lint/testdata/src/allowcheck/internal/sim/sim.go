// Package sim anchors the derived deterministic scope for this
// corpus so the engine package's wallclock violation is real — the
// allow audit needs a genuine finding to suppress.
package sim

// Time is an instant on the simulated clock.
type Time int64

// Clock hands out simulated time.
type Clock struct{ now Time }

// Now returns the current simulated time.
func (c *Clock) Now() Time { return c.now }

// Advance moves the clock forward by d.
func (c *Clock) Advance(d Time) { c.now += d }
