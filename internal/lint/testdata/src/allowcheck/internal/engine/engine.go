// Package engine exercises the audit of the escape hatch itself: a
// directive with no justification is reported even though it
// suppresses a real finding, and a justified directive that no longer
// suppresses anything is reported as stale.
package engine

import (
	"time"

	"allowcheck/internal/sim"
)

// naked suppresses a real wallclock finding but gives no reason: the
// suppression holds, and the bare directive is itself flagged (rule
// "allow", missing justification).
func naked() int64 {
	//lfslint:allow wallclock
	return time.Now().UnixNano()
}

// stale carries a justification for a violation that was refactored
// away: nothing on the next line triggers wallclock any more, so the
// directive is flagged as stale.
func stale(c *sim.Clock) sim.Time {
	//lfslint:allow wallclock the clock read predates the simulated-clock refactor
	return c.Now()
}

// justified is the healthy shape: a real finding, a directive, a
// reason — only here is the suite silent.
func justified() int64 {
	//lfslint:allow wallclock corpus demonstration of a justified suppression
	return time.Now().UnixNano()
}
