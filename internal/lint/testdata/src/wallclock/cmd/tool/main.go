// Command tool sits outside the simulation directories, where
// wall-clock use is legitimate (progress output, host timing): the
// wallclock pass must report nothing here.
package main

import (
	"fmt"
	"time"
)

func main() {
	start := time.Now()
	fmt.Println("host elapsed:", time.Since(start))
}
