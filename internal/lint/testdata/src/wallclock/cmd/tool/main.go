// Command tool imports internal/sim — its import closure reaches the
// simulated clock — yet cmd/ is exempt from the derived scope by
// design: tools time wall-clock benchmarks and print progress for
// humans, so the wallclock pass must report nothing here.
package main

import (
	"fmt"
	"time"

	"wallclock/internal/sim"
)

func main() {
	start := time.Now()
	var c sim.Clock
	c.Advance(42)
	fmt.Println("simulated now:", c.Now(), "host elapsed:", time.Since(start))
}
