package obs

import (
	"time"

	"wallclock/internal/sim"
)

// phaseMark stamps a phase boundary from the wall clock and must be
// flagged: a span's decomposition is a list of simulated durations,
// and a wall instant mixed in could never sum to a simulated latency.
func phaseMark() int64 { return time.Now().UnixNano() }

// phaseDur measures a phase with the wall clock and must be flagged.
func phaseDur(start time.Time) time.Duration { return time.Since(start) }

// phaseBetween is the sanctioned pattern: both boundaries are
// simulated instants handed in by the caller holding the clock, no
// finding.
func phaseBetween(start, end sim.Time) sim.Time { return end - start }
