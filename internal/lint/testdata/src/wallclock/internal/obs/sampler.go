// Package obs is a deliberately broken miniature of the metrics
// plane: it imports internal/sim and so sits in the derived scope.
// Samplers timestamp every sample, so a wall-clock read here silently
// replaces simulated time and breaks both zero perturbation and
// byte-determinism of the export.
package obs

import (
	"time"

	"wallclock/internal/sim"
)

// sampleTime stamps a sample from the wall clock and must be flagged.
func sampleTime() int64 { return time.Now().UnixNano() }

// sampleAt is the sanctioned pattern: the simulated timestamp is
// passed in by the caller holding the clock, no finding.
func sampleAt(now sim.Time) sim.Time { return now }
