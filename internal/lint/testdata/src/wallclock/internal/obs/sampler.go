// Package obs is a deliberately broken miniature of the metrics
// plane: samplers timestamp every sample, so a wall-clock read here
// silently replaces simulated time and breaks both zero perturbation
// and byte-determinism of the export.
package obs

import "time"

// sampleTime stamps a sample from the wall clock and must be flagged.
func sampleTime() int64 { return time.Now().UnixNano() }

// sampleAt is the sanctioned pattern: the simulated timestamp is
// passed in by the caller holding the clock, no finding.
func sampleAt(now int64) int64 { return now }
