// Package cowstore is a miniature of a store backend under
// internal/disk: persistence code is inside the simulation boundary,
// so wall-clock reads and the global rand source must be flagged even
// two directories below internal/disk itself (the rule matches by
// prefix).
package cowstore

import (
	"math/rand"
	"time"
)

// chunkSalt draws from a seeded source — the sanctioned pattern, not
// flagged.
func chunkSalt(seed int64) uint32 {
	return rand.New(rand.NewSource(seed)).Uint32()
}

// snapshotID stamps a snapshot with wall-clock time and must be
// flagged.
func snapshotID() int64 { return time.Now().UnixNano() }

// scatter picks an eviction victim from the global source and must be
// flagged.
func scatter(n int) int { return rand.Intn(n) }
