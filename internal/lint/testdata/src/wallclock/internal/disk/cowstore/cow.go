// Package cowstore is a miniature of a store backend: its import
// closure reaches internal/sim (through this file's sim import), so
// persistence code two directories below internal/disk is inside the
// derived deterministic scope and wall-clock reads and the global
// rand source must be flagged even here.
package cowstore

import (
	"math/rand"
	"time"

	"wallclock/internal/sim"
)

// chunkSalt draws from a seeded source — the sanctioned pattern, not
// flagged.
func chunkSalt(seed int64) uint32 {
	return rand.New(rand.NewSource(seed)).Uint32()
}

// snapshotID stamps a snapshot with wall-clock time and must be
// flagged.
func snapshotID() int64 { return time.Now().UnixNano() }

// simSnapshotID is the sanctioned pattern: the snapshot is stamped
// with simulated time, no finding.
func simSnapshotID(c *sim.Clock) sim.Time { return c.Now() }

// scatter picks an eviction victim from the global source and must be
// flagged.
func scatter(n int) int { return rand.Intn(n) }
