// Package shard is a deliberately broken miniature of the multi-log
// router: it imports internal/sim (as the real router does through
// internal/core), which places it in the derived deterministic scope,
// so wall-clock reads inside placement or recovery must be flagged.
package shard

import (
	"time"

	"wallclock/internal/sim"
)

// stamp timestamps a shard recovery with the wall clock and must be
// flagged.
func stamp() int64 { return time.Now().UnixNano() }

// route is the sanctioned pattern: placement is a pure function of
// the path and timing comes from the shared simulated clock, no
// finding.
func route(c *sim.Clock, path string) (int, sim.Time) {
	h := 0
	for i := 0; i < len(path); i++ {
		h = h*31 + int(path[i])
	}
	return h % 4, c.Now()
}
