// Package util sits outside the derived scope: nothing in its import
// closure reaches internal/sim, so it never runs on the simulated
// clock and wall-clock use here is legitimate (host-side helpers).
// The wallclock pass must report nothing in this package.
package util

import "time"

// HostStamp reads the wall clock for a host-side log line — out of
// scope, not flagged.
func HostStamp() int64 { return time.Now().UnixNano() }
