// Package sched is a deliberately broken miniature of the event-loop
// package: it owns the simulated clock (importing internal/sim puts
// it in the derived scope), so any wall-clock read or implicitly
// seeded draw here breaks same-seed reproducibility and must be
// flagged.
package sched

import (
	"math/rand"
	"time"

	"wallclock/internal/sim"
)

// deadline reads the wall clock and must be flagged.
func deadline() int64 { return time.Now().UnixNano() }

// jitter draws from the implicitly seeded global source and must be
// flagged.
func jitter() int64 { return rand.Int63n(1000) }

// seededJitter is the sanctioned pattern: an explicit seed threaded
// in, no finding.
func seededJitter(seed int64) int64 {
	return rand.New(rand.NewSource(seed)).Int63n(1000)
}

// tick is the sanctioned pattern: events advance the simulated clock,
// no finding.
func tick(c *sim.Clock, d sim.Time) sim.Time {
	c.Advance(d)
	return c.Now()
}
