// Package workload is a miniature of the synthetic-workload package:
// generators draw from explicitly seeded RNGs (the sanctioned
// rand.NewZipf pattern) and are timed on the simulated clock it
// imports, so the global source and the wall clock must both be
// flagged here.
package workload

import (
	"math/rand"
	"time"

	"wallclock/internal/sim"
)

// skewed is the sanctioned generator pattern: a seeded source feeding
// rand.NewZipf. None of these selectors may be flagged.
func skewed(seed int64, n uint64) uint64 {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, 1.1, 1, n-1)
	return z.Uint64()
}

// jitter draws from the implicitly seeded global source and must be
// flagged.
func jitter() float64 { return rand.Float64() }

// stamp reads the wall clock for a workload timestamp and must be
// flagged.
func stamp() int64 { return time.Now().Unix() }

// stampAt is the sanctioned pattern: operations are stamped with the
// simulated time threaded in, no finding.
func stampAt(now sim.Time) sim.Time { return now }
