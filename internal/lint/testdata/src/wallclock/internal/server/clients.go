// Package server is a deliberately broken miniature of the
// multi-client driver: it imports internal/sim, so client think time
// must come from the event loop's simulated clock, and sleeping or
// ticking on the wall clock must be flagged.
package server

import (
	"time"

	"wallclock/internal/sim"
)

// think sleeps on the wall clock and must be flagged.
func think() { time.Sleep(10 * time.Millisecond) }

// pace ticks on the wall clock and must be flagged.
func pace() <-chan time.Time { return time.Tick(time.Second) }

// simThink is the sanctioned pattern: think time advances the
// simulated clock, no finding.
func simThink(c *sim.Clock, d sim.Time) { c.Advance(d) }
