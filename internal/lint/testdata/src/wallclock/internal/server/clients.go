// Package server is a deliberately broken miniature of the
// multi-client driver: client think time must come from the event
// loop's simulated clock, so sleeping or ticking on the wall clock
// must be flagged.
package server

import "time"

// think sleeps on the wall clock and must be flagged.
func think() { time.Sleep(10 * time.Millisecond) }

// pace ticks on the wall clock and must be flagged.
func pace() <-chan time.Time { return time.Tick(time.Second) }
