// Package core is a deliberately broken miniature of a simulation
// package: it imports internal/sim, which places it in the derived
// deterministic scope, so wall-clock reads and implicitly seeded
// randomness here must be flagged by the wallclock pass.
package core

import (
	"math/rand"
	"time"

	"wallclock/internal/sim"
)

// now reads the wall clock and must be flagged.
func now() int64 { return time.Now().UnixNano() }

// wait sleeps on the wall clock and must be flagged.
func wait() { time.Sleep(time.Millisecond) }

// age measures wall-clock elapsed time and must be flagged.
func age(t0 time.Time) time.Duration { return time.Since(t0) }

// roll uses the implicitly seeded global source and must be flagged.
func roll() int { return rand.Intn(6) }

// seeded is the sanctioned pattern: an explicit seed, no finding.
func seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(6)
}

// simNow is the sanctioned clock pattern: simulated time from the
// threaded-through clock, no finding.
func simNow(c *sim.Clock) sim.Time { return c.Now() }

// sanctioned demonstrates the escape hatch: the directive on the line
// above the violation suppresses it.
//
//lfslint:allow wallclock demonstration of the escape hatch
func sanctioned() int64 { return time.Now().Unix() }
