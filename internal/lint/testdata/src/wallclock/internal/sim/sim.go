// Package sim is the corpus stand-in for the module's simulated
// clock. The deterministic scope is derived, not listed: a package is
// in scope exactly when its module-internal import closure reaches
// internal/sim, so every in-scope file in this corpus imports this
// package (and internal/util deliberately does not).
package sim

// Time is an instant on the simulated clock.
type Time int64

// Clock hands out simulated time.
type Clock struct{ now Time }

// Now returns the current simulated time.
func (c *Clock) Now() Time { return c.now }

// Advance moves the clock forward by d.
func (c *Clock) Advance(d Time) { c.now += d }
