package obs

import "fmt"

// EncodePhases emits a span's phase totals by ranging a map, so the
// line order follows map iteration and must be flagged — the trace
// schema promises phases in fixed kind order.
func EncodePhases(totals map[string]int64) []string {
	var lines []string
	for kind, d := range totals {
		lines = append(lines, fmt.Sprintf("%s=%d", kind, d))
	}
	return lines
}

// phaseKinds is the fixed emission order the schema promises.
var phaseKinds = [...]string{"cpu", "lock_wait", "queue_wait", "disk_service"}

// EncodePhasesFixed is the sanctioned shape: the totals live in an
// array indexed by kind and emit in declared kind order — no map in
// sight, no finding. (The parameter name deliberately differs from
// EncodePhases's map: the index is name-based, and a name declared
// with both a map and a non-map type would drop out of map tracking.)
func EncodePhasesFixed(byKind [4]int64) []string {
	out := make([]string, 0, len(byKind))
	for k, d := range byKind {
		out = append(out, fmt.Sprintf("%s=%d", phaseKinds[k], d))
	}
	return out
}
