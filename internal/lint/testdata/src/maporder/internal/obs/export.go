// Package obs is a miniature of the export path: every function whose
// name marks it a deterministic-output writer (the Encode prefix), or
// that such a writer calls, must not leak map iteration order — the
// exported bytes are promised to be identical across reruns.
package obs

import (
	"fmt"
	"sort"
)

// EncodeCounts is a deterministic-output root: the lines are appended
// in map order and returned unsorted, and must be flagged.
func EncodeCounts(counts map[string]int) []string {
	var lines []string
	for name, n := range counts {
		lines = append(lines, fmt.Sprintf("%s=%d", name, n))
	}
	return lines
}

// EncodeSorted is the sanctioned collect-then-sort idiom: the keys
// leave the loop unordered but are sorted before any other use, no
// finding.
func EncodeSorted(counts map[string]int) []string {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, fmt.Sprintf("%s=%d", k, counts[k]))
	}
	return out
}

// EncodeTotal folds the map into a sum: a pure fold is the same in
// any order, no finding.
func EncodeTotal(counts map[string]int) int {
	sum := 0
	for _, n := range counts {
		sum += n
	}
	return sum
}

// probe returns from inside the range, so map order decides which
// element wins; it is reachable from EncodeFirst and must be flagged.
func probe(counts map[string]int) string {
	for name, n := range counts {
		if n > 0 {
			return name
		}
	}
	return ""
}

// EncodeFirst delegates to probe: reachability flows through the
// call, the finding lands in probe.
func EncodeFirst(counts map[string]int) string { return probe(counts) }

// scratch has the same order-sensitive shape as probe but no root
// reaches it, so it must not be flagged.
func scratch(counts map[string]int) string {
	for name := range counts {
		return name
	}
	return ""
}

// EncodeAny demonstrates the escape hatch on an order-sensitive loop
// whose nondeterminism is argued harmless.
func EncodeAny(counts map[string]int) string {
	//lfslint:allow maporder any key is acceptable here: the pick seeds a heuristic, not output bytes
	for name := range counts {
		return name
	}
	return ""
}
