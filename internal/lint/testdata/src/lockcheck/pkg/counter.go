// Package pkg is a deliberately broken miniature of a lock-guarded
// structure: exported methods touching "guarded by mu" fields without
// the lock must be flagged by the lockcheck pass.
package pkg

import "sync"

type counter struct {
	mu sync.Mutex
	// n is the running count; guarded by mu.
	n int
	// name is immutable after construction.
	name string
}

// Add locks before touching n: ok.
func (c *counter) Add(d int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n += d
}

// Get reads n without the lock and must be flagged.
func (c *counter) Get() int { return c.n }

// GetLocked documents by its suffix that the caller holds mu: ok.
func (c *counter) GetLocked() int { return c.n }

// peek is unexported: internal callers hold the lock by convention.
func (c *counter) peek() int { return c.n }

// Name reads an unguarded field: no finding.
func (c *counter) Name() string { return c.name }

// Racy demonstrates the escape hatch.
//
//lfslint:allow lockcheck racy snapshot tolerated in this demo
func (c *counter) Racy() int { return c.n }

type rwbox struct {
	rw sync.RWMutex
	// v is the boxed value; guarded by rw.
	v int
}

// Load takes the read lock: ok.
func (b *rwbox) Load() int {
	b.rw.RLock()
	defer b.rw.RUnlock()
	return b.v
}

// Store forgets the lock and must be flagged.
func (b *rwbox) Store(v int) { b.v = v }
