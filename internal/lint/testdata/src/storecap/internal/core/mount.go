// Package core is a deliberately broken consumer of the store
// package: it probes capabilities outside the approved sites and
// leaks store handles, both of which must be flagged.
package core

import "storecap/internal/disk"

// probeSnapshot asserts a capability outside the approved probe sites
// (internal/disk, internal/fstest) and must be flagged.
func probeSnapshot(s disk.Store) bool {
	_, ok := s.(disk.Snapshotter)
	return ok
}

// leak opens a store that never reaches Close and never escapes, and
// must be flagged.
func leak(path string) error {
	s, err := disk.OpenStore(path)
	if err != nil {
		return err
	}
	s.Grow(64)
	return nil
}

// discard drops the handle on the floor and must be flagged.
func discard(path string) {
	_, _ = disk.OpenStore(path)
}

// use closes via defer: the sanctioned shape, no finding.
func use(path string) error {
	s, err := disk.OpenStore(path)
	if err != nil {
		return err
	}
	defer s.Close()
	s.Grow(64)
	return nil
}

// handOff returns the handle: the caller owns the Close now, no
// finding.
func handOff(path string) (disk.Store, error) {
	s, err := disk.OpenStore(path)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// probeFailure asserts the constructor must fail — the expected-
// failure probe shape, nothing to close on the asserted path, no
// finding.
func probeFailure() bool {
	if _, err := disk.OpenStore(""); err == nil {
		return false
	}
	return true
}

// adopt deliberately keeps a handle open across the function boundary
// through a package-level registry the corpus does not model; the
// escape hatch documents it.
func adopt(path string) error {
	//lfslint:allow storecap the handle is parked in a process-lifetime registry closed at exit
	s, err := disk.OpenStore(path)
	if err != nil {
		return err
	}
	s.Grow(1)
	return nil
}
