// Package disk is the corpus store package: it defines the
// constructor and the optional capability, and probes the capability
// itself — an approved site, so its assertion is not flagged.
package disk

import "errors"

// Store is the corpus store contract.
type Store interface {
	Grow(n int64)
	Close() error
}

// Snapshotter is the optional capability.
type Snapshotter interface {
	Snapshot() error
}

// ErrBadPath rejects empty paths.
var ErrBadPath = errors.New("bad path")

// OpenStore is the corpus constructor; results own the closed-state
// contract.
func OpenStore(path string) (Store, error) {
	if path == "" {
		return nil, ErrBadPath
	}
	return &memStore{}, nil
}

type memStore struct{}

func (*memStore) Grow(int64)      {}
func (*memStore) Close() error    { return nil }
func (*memStore) Snapshot() error { return nil }

// CanSnapshot probes the capability inside the approved disk package
// — no finding.
func CanSnapshot(s Store) bool {
	_, ok := s.(Snapshotter)
	return ok
}
