// Package acct is a deliberately broken miniature of byte/time
// accounting (its sim import places it in the derived scope): float
// arithmetic truncated into integer accounting loses ulps that
// accumulate into visible divergence and must be flagged.
package acct

import "floataccum/internal/sim"

// scaleBytes truncates float arithmetic into byte accounting and must
// be flagged.
func scaleBytes(live int64, frac float64) int64 {
	return int64(float64(live) * frac)
}

// transferCost truncates float arithmetic into simulated time and
// must be flagged.
func transferCost(n int64, bytesPerTick float64) sim.Time {
	return sim.Time(float64(n) / bytesPerTick)
}

// quarters is the sanctioned integer-scaling idiom: multiply before
// divide, no float, no finding.
func quarters(live int64) int64 { return live * 3 / 4 }

// utilization keeps policy math on float-typed quantities with no
// integer conversion — untouched, no finding.
func utilization(live, capacity int64) float64 {
	return float64(live) / float64(capacity)
}

// stretch scales simulated time integrally, no finding.
func stretch(d sim.Time) sim.Time { return sim.Time(int64(d) * 2) }

// seekModel is a latency model defined in real arithmetic and
// evaluated per request — the deliberate boundary takes the justified
// escape hatch, no finding.
func seekModel(dist int64) sim.Time {
	//lfslint:allow floataccum the model is defined in real arithmetic and evaluated per request; no float state accumulates
	return sim.Time(float64(dist) * 0.02)
}
