// Package report renders host-side summaries and never imports
// internal/sim: it is outside the derived scope, so the float
// round-trip here is display math, not accounting, and must not be
// flagged.
package report

// Percent renders a host-side percentage — out of scope, no finding.
func Percent(n, total int64) int {
	return int(float64(n) / float64(total) * 100)
}
