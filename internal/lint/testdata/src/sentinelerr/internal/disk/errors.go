// Package disk is a deliberately broken miniature of the store
// package's error contract: sentinels cross the boundary wrapped, so
// identity comparison and %v-wrapping silently stop matching and must
// be flagged.
package disk

import (
	"errors"
	"fmt"
)

// ErrClosed is the corpus sentinel.
var ErrClosed = errors.New("store closed")

// errTorn is an unexported sentinel; the convention covers it too.
var errTorn = errors.New("torn write")

// isClosed compares identity with == and must be flagged.
func isClosed(err error) bool { return err == ErrClosed }

// stillOpen compares identity with != and must be flagged.
func stillOpen(err error) bool { return err != ErrClosed }

// classify switches on error identity and must be flagged (once per
// switch).
func classify(err error) string {
	switch err {
	case errTorn:
		return "torn"
	case ErrClosed:
		return "closed"
	default:
		return "other"
	}
}

// wrapBad formats a sentinel with %v, so errors.Is cannot see through
// the wrap; must be flagged.
func wrapBad(op string) error {
	return fmt.Errorf("%s: %v", op, ErrClosed)
}

// wrapGood wraps with %w: the sanctioned pattern, no finding.
func wrapGood(op string) error {
	return fmt.Errorf("%s: %w", op, ErrClosed)
}

// isClosedGood matches through wrapping with errors.Is: the
// sanctioned pattern, no finding.
func isClosedGood(err error) bool { return errors.Is(err, ErrClosed) }

// check is the ordinary nil check on an err-named variable — not an
// identity match, no finding.
func check(errProbe error) bool { return errProbe != nil }
