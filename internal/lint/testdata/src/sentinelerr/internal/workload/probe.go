// Package workload sits outside the sentinel-contract directories
// (internal/disk, internal/core): identity comparison here is still
// poor style, but the rule deliberately scopes to the packages whose
// public contract is sentinel-based, so nothing is flagged.
package workload

import "errors"

// ErrDrained is a local sentinel never wrapped by anyone.
var ErrDrained = errors.New("drained")

// done compares identity outside the scoped directories — no finding.
func done(err error) bool { return err == ErrDrained }
