package lint

import (
	"go/ast"
	"go/token"
)

// intConvNames are the builtin integer types: converting float
// arithmetic through one truncates, and truncation inside accounting
// arithmetic drifts as it accumulates.
var intConvNames = map[string]bool{
	"int": true, "int8": true, "int16": true, "int32": true, "int64": true,
	"uint": true, "uint8": true, "uint16": true, "uint32": true, "uint64": true,
	"uintptr": true, "byte": true, "rune": true,
}

// FloatAccumAnalyzer flags integer conversions whose operand is float
// arithmetic, in simulation packages: shapes like
// int64(float64(live) * frac) or sim.Duration(float64(n) / bw). This
// is the exact bug class behind the PR 6 killBlock live-estimate
// drift — a float round-trip on byte/time accounting that feeds
// checkpoints or counters loses ulps that accumulate into visible
// divergence. Float math on float-typed quantities (utilizations,
// policy ratios) is untouched; only the float→integer boundary is
// policed, and a deliberate boundary (a latency model defined in real
// arithmetic, a config fraction applied once) takes a justified
// allow.
var FloatAccumAnalyzer = &Analyzer{
	Name: "floataccum",
	Doc:  "byte/time accounting stays integral; no float arithmetic feeding integer conversions",
	Run:  runFloatAccum,
}

func runFloatAccum(pkg *Package, ix *Index) []Diagnostic {
	if !ix.InSimScope(pkg) {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		timeName := importName(f.AST, "time")
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			target := intConvTarget(pkg, ix, f, call, timeName)
			if target == "" || !hasFloatArith(call.Args[0]) {
				return true
			}
			diags = append(diags, Diagnostic{
				Pos:  pkg.Fset.Position(call.Pos()),
				Rule: "floataccum",
				Msg: target + " of float arithmetic truncates; accumulated " +
					"byte/time accounting drifts (the killBlock bug class) — " +
					"keep accounting integral or justify the boundary with an allow",
			})
			return true
		})
	}
	return diags
}

// intConvTarget returns the display name of the conversion target
// when the call converts to an integer-like type: a builtin integer
// type, time.Duration, or a module-defined named type (a
// single-argument "call" of a name that is not a known function is a
// conversion; named float types would be an odd thing to define, so
// the target is taken as integral).
func intConvTarget(pkg *Package, ix *Index, f *File, call *ast.CallExpr, timeName string) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if intConvNames[fun.Name] && fun.Obj == nil {
			return fun.Name
		}
		if builtinNames[fun.Name] {
			return "" // float64(...), string(...), len(...)
		}
		// Same-package named type: a conversion exactly when no
		// function of that name exists.
		for _, cand := range ix.funcs[fun.Name] {
			if cand.Pkg == pkg {
				return ""
			}
		}
		return fun.Name
	case *ast.SelectorExpr:
		id, ok := fun.X.(*ast.Ident)
		if !ok || id.Obj != nil {
			return ""
		}
		if isPkgIdent(id, timeName) && fun.Sel.Name == "Duration" {
			return "time.Duration"
		}
		if dir := ix.importDirFor(f, id.Name); dir != "" {
			for _, cand := range ix.funcs[fun.Sel.Name] {
				if cand.Pkg.RelDir == dir && cand.Decl.Recv == nil {
					return "" // a real function, not a conversion
				}
			}
			return id.Name + "." + fun.Sel.Name
		}
	}
	return ""
}

// hasFloatArith reports whether the expression contains arithmetic
// with an evident float operand: a float32/float64 conversion or a
// floating-point literal inside a +,-,*,/ expression.
func hasFloatArith(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO:
			if mentionsFloat(be.X) || mentionsFloat(be.Y) {
				found = true
			}
		}
		return !found
	})
	return found
}

// mentionsFloat reports an evident float in the subtree: a float
// conversion or a float literal.
func mentionsFloat(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && (id.Name == "float64" || id.Name == "float32") {
				found = true
			}
		case *ast.BasicLit:
			if n.Kind == token.FLOAT {
				found = true
			}
		}
		return !found
	})
	return found
}
