package lint

import (
	"go/ast"
)

// IOCauseAnalyzer enforces the 100% I/O-attribution guarantee from the
// tracing work: every disk request is issued with a named Cause*
// constant (or a cause value forwarded through a variable), never a
// raw literal, a converted literal, or the zero value CauseOther.
// disk.Stats.ByCause decomposes busy time exactly because of this
// rule; one unattributed request and the Figure 3-5 decompositions no
// longer sum to the totals.
//
// CauseOther stays legal inside internal/disk itself — the device's
// own unit tests exercise the raw sector interface below the file
// systems, which is exactly what the constant is documented for.
// Anywhere else it needs an //lfslint:allow iocause annotation with a
// justification.
var IOCauseAnalyzer = &Analyzer{
	Name: "iocause",
	Doc:  "disk requests must pass a named disk.Cause* constant (no literals, no zero value)",
	Run:  runIOCause,
}

func runIOCause(pkg *Package, _ *Index) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			var causeIdx int
			switch {
			case sel.Sel.Name == "ReadSectors" && len(call.Args) == 4:
				causeIdx = 2 // (sector, p, cause, label)
			case sel.Sel.Name == "WriteSectors" && len(call.Args) == 5:
				causeIdx = 3 // (sector, p, sync, cause, label)
			default:
				return true
			}
			if msg, bad := checkCauseArg(call.Args[causeIdx], pkg.RelDir); bad {
				diags = append(diags, Diagnostic{
					Pos:  pkg.Fset.Position(call.Args[causeIdx].Pos()),
					Rule: "iocause",
					Msg:  msg,
				})
			}
			return true
		})
	}
	return diags
}

// checkCauseArg classifies the cause argument of a disk request.
func checkCauseArg(arg ast.Expr, relDir string) (msg string, bad bool) {
	switch e := arg.(type) {
	case *ast.BasicLit:
		return "cause is the raw literal " + e.Value + "; pass a named disk.Cause* constant", true
	case *ast.Ident:
		return checkCauseName(e.Name, relDir)
	case *ast.SelectorExpr:
		return checkCauseName(e.Sel.Name, relDir)
	case *ast.CallExpr:
		// A conversion like disk.IOCause(3) launders a literal
		// through the type; a real call could compute anything, so
		// both are rejected in favour of naming the activity.
		return "cause is computed or converted; pass a named disk.Cause* constant", true
	default:
		return "cause must be a named disk.Cause* constant or a forwarded cause variable", true
	}
}

// checkCauseName validates an identifier used as the cause argument:
// a Cause* constant other than the zero value, or any other
// identifier, which is taken to be a forwarded cause parameter.
func checkCauseName(name, relDir string) (msg string, bad bool) {
	switch name {
	case "CauseOther":
		if relDir == "internal/disk" {
			return "", false
		}
		return "CauseOther is the unattributed zero value; name the issuing activity " +
			"(CauseOther is reserved for internal/disk's own device tests)", true
	case "NumCauses":
		return "NumCauses bounds the cause space and is not a cause", true
	default:
		return "", false
	}
}
