package lint

import (
	"go/ast"
	"regexp"
	"strings"
)

// guardedRe matches the field-doc convention "guarded by <mutex>".
var guardedRe = regexp.MustCompile(`(?i)guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

// LockCheckAnalyzer enforces the "guarded by mu" field-doc
// convention: an exported method that reads or writes a field
// documented as guarded must lock the named mutex in its own body.
// The repository's locking discipline has exactly two tiers — exported
// methods take the lock, unexported helpers assume it is held — so the
// pass checks exported methods only. Two escape valves exist for
// exported entry points that legitimately run unlocked: a name ending
// in "Locked" (caller holds the lock by contract) or an
// //lfslint:allow lockcheck annotation with a justification.
//
// The check is a heuristic, not a proof: it matches fs.mu.Lock()
// lexically against the receiver and cannot see locks taken by
// callees. It exists to catch the easy, common mistake — a new
// accessor added without the lock — which the race detector only
// catches if a test happens to race it.
var LockCheckAnalyzer = &Analyzer{
	Name: "lockcheck",
	Doc:  "exported methods touching 'guarded by mu' fields must lock mu (or be *Locked)",
	Run:  runLockCheck,
}

// guardedField records one documented guard: struct S's field F is
// guarded by the mutex field M.
type guardedField struct {
	structName string
	fieldName  string
	mutexName  string
}

func runLockCheck(pkg *Package, _ *Index) []Diagnostic {
	guards := collectGuards(pkg)
	if len(guards) == 0 {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, decl := range f.AST.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Body == nil {
				continue
			}
			if !ast.IsExported(fn.Name.Name) || strings.HasSuffix(fn.Name.Name, "Locked") {
				continue
			}
			recvType, recvName := receiverOf(fn)
			if recvName == "" {
				continue
			}
			fields := guards[recvType]
			if len(fields) == 0 {
				continue
			}
			diags = append(diags, checkMethod(pkg, fn, recvName, fields)...)
		}
	}
	return diags
}

// collectGuards scans the package's struct declarations for fields
// documented "guarded by <mutex>", keyed by struct name.
func collectGuards(pkg *Package) map[string]map[string]string {
	guards := make(map[string]map[string]string)
	for _, f := range pkg.Files {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			// The named mutex must itself be a field of the struct;
			// this drops prose that happens to match the pattern.
			fieldNames := make(map[string]bool)
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					fieldNames[name.Name] = true
				}
			}
			for _, field := range st.Fields.List {
				mu := guardNameOf(field)
				if mu == "" || !fieldNames[mu] {
					continue
				}
				for _, name := range field.Names {
					if name.Name == mu {
						continue // the mutex does not guard itself
					}
					m := guards[ts.Name.Name]
					if m == nil {
						m = make(map[string]string)
						guards[ts.Name.Name] = m
					}
					m[name.Name] = mu
				}
			}
			return true
		})
	}
	return guards
}

// guardNameOf extracts the mutex name from a field's doc or line
// comment, or "" when the field is not documented as guarded.
func guardNameOf(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// receiverOf returns the method's receiver type name (pointer
// stripped) and receiver variable name.
func receiverOf(fn *ast.FuncDecl) (typeName, varName string) {
	if len(fn.Recv.List) == 0 {
		return "", ""
	}
	recv := fn.Recv.List[0]
	t := recv.Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	id, ok := t.(*ast.Ident)
	if !ok {
		return "", ""
	}
	if len(recv.Names) == 0 {
		return id.Name, ""
	}
	return id.Name, recv.Names[0].Name
}

// checkMethod flags guarded-field accesses in one exported method that
// lacks the corresponding lock call. Closures are included: a closure
// defined inside the method runs in the same locking context.
func checkMethod(pkg *Package, fn *ast.FuncDecl, recvName string, fields map[string]string) []Diagnostic {
	// Which mutexes does the body lock (recv.mu.Lock / recv.mu.RLock)?
	locked := make(map[string]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		muSel, ok := sel.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := muSel.X.(*ast.Ident); ok && id.Name == recvName {
			locked[muSel.Sel.Name] = true
		}
		return true
	})

	var diags []Diagnostic
	flagged := make(map[string]bool) // one finding per field per method
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || id.Name != recvName {
			return true
		}
		mu, guarded := fields[sel.Sel.Name]
		if !guarded || locked[mu] || flagged[sel.Sel.Name] {
			return true
		}
		flagged[sel.Sel.Name] = true
		diags = append(diags, Diagnostic{
			Pos:  pkg.Fset.Position(sel.Pos()),
			Rule: "lockcheck",
			Msg: fn.Name.Name + " accesses " + recvName + "." + sel.Sel.Name +
				" (guarded by " + mu + ") without " + recvName + "." + mu +
				".Lock; lock it, rename the method *Locked, or annotate",
		})
		return true
	})
	return diags
}
