package lint_test

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lfs/internal/lint"
)

// -update regenerates the golden files from the current analyzer
// output (inspect the diff before committing).
var update = flag.Bool("update", false, "rewrite golden files")

// runCase loads one testdata/src case as if it were a module root and
// returns the formatted findings, one per line.
func runCase(t *testing.T, caseDir string) []string {
	t.Helper()
	pkgs, err := lint.LoadModule(caseDir)
	if err != nil {
		t.Fatal(err)
	}
	diags := lint.Run(pkgs, lint.Analyzers)
	lines := make([]string, len(diags))
	for i, d := range diags {
		lines[i] = d.String()
	}
	return lines
}

// TestAnalyzersGolden runs the full suite over each miniature module
// under testdata/src and compares the findings — positions, rules,
// and messages — against the case's golden file. The miniatures
// contain positive cases (must be flagged), negative cases (must not
// be), out-of-scope packages, and one escape-hatch use per rule, so
// an exact match exercises both directions of every pass.
func TestAnalyzersGolden(t *testing.T) {
	cases, err := os.ReadDir(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) == 0 {
		t.Fatal("no testdata cases")
	}
	for _, c := range cases {
		if !c.IsDir() {
			continue
		}
		t.Run(c.Name(), func(t *testing.T) {
			got := strings.Join(runCase(t, filepath.Join("testdata", "src", c.Name())), "\n")
			if got != "" {
				got += "\n"
			}
			goldenPath := filepath.Join("testdata", "golden", c.Name()+".txt")
			if *update {
				if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestEveryAnalyzerHasFindings guards the golden corpus itself: each
// of the ten rules — and the "allow" pseudo-rule auditing the escape
// hatch — must produce at least one finding somewhere in testdata, so
// a pass broken into silence cannot hide behind an accidentally empty
// golden file.
func TestEveryAnalyzerHasFindings(t *testing.T) {
	seen := make(map[string]bool)
	cases, err := os.ReadDir(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cases {
		if !c.IsDir() {
			continue
		}
		for _, line := range runCase(t, filepath.Join("testdata", "src", c.Name())) {
			parts := strings.SplitN(line, ": ", 3)
			if len(parts) == 3 {
				seen[parts[1]] = true
			}
		}
	}
	for _, a := range lint.Analyzers {
		if !seen[a.Name] {
			t.Errorf("rule %s produced no findings across testdata", a.Name)
		}
	}
	if !seen["allow"] {
		t.Errorf("the allow audit produced no findings across testdata")
	}
}

// TestRepoIsClean is the meta-test behind the ci.sh gate: running the
// full suite over this repository itself must produce no findings.
// Every invariant the analyzers encode is supposed to hold for real.
func TestRepoIsClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("cannot locate module root: %v", err)
	}
	pkgs, err := lint.LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; loader is missing the module", len(pkgs))
	}
	for _, d := range lint.Run(pkgs, lint.Analyzers) {
		t.Errorf("%s", d)
	}
}

// TestMatch exercises the go-style package patterns cmd/lfslint
// accepts.
func TestMatch(t *testing.T) {
	pkgs, err := lint.LoadModule(filepath.Join("testdata", "src", "wallclock"))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		patterns []string
		want     int
	}{
		{nil, 10},
		{[]string{"./..."}, 10},
		{[]string{"./internal/..."}, 9},
		{[]string{"./internal/core"}, 1},
		{[]string{"./cmd/tool"}, 1},
		{[]string{"./nosuchdir"}, 0},
	} {
		if got := len(lint.Match(pkgs, tc.patterns)); got != tc.want {
			t.Errorf("Match(%v) selected %d packages, want %d", tc.patterns, got, tc.want)
		}
	}
}

// TestDerivedSimScope pins the import-closure derivation on the
// wallclock corpus: every package importing internal/sim (directly or
// transitively) is in scope, cmd/ is exempt by design, and the
// sim-free internal/util stays out.
func TestDerivedSimScope(t *testing.T) {
	pkgs, err := lint.LoadModule(filepath.Join("testdata", "src", "wallclock"))
	if err != nil {
		t.Fatal(err)
	}
	got := strings.Join(lint.NewIndex(pkgs).SimDirs(), " ")
	want := strings.Join([]string{
		"internal/core",
		"internal/disk/cowstore",
		"internal/obs",
		"internal/sched",
		"internal/server",
		"internal/shard",
		"internal/sim",
		"internal/workload",
	}, " ")
	if got != want {
		t.Errorf("derived sim scope = %q, want %q", got, want)
	}
}

// TestRunWithTimings checks the per-analyzer timing stream ci.sh
// prints: one entry per analyzer after the index entry, with finding
// counts that sum to the total (the allow pseudo-findings are audited
// by the driver, not an analyzer, so they are excluded here).
func TestRunWithTimings(t *testing.T) {
	pkgs, err := lint.LoadModule(filepath.Join("testdata", "src", "wallclock"))
	if err != nil {
		t.Fatal(err)
	}
	diags, timings := lint.RunWithTimings(pkgs, lint.Analyzers)
	if len(timings) != len(lint.Analyzers)+1 {
		t.Fatalf("got %d timings, want %d", len(timings), len(lint.Analyzers)+1)
	}
	if timings[0].Rule != "index" {
		t.Errorf("first timing entry is %q, want index", timings[0].Rule)
	}
	for i, a := range lint.Analyzers {
		if timings[i+1].Rule != a.Name {
			t.Errorf("timing %d is %q, want %q", i+1, timings[i+1].Rule, a.Name)
		}
	}
	sum := 0
	for _, tm := range timings {
		sum += tm.Findings
	}
	analyzed := 0
	for _, d := range diags {
		if d.Rule != "allow" {
			analyzed++
		}
	}
	if sum != analyzed {
		t.Errorf("timing finding counts sum to %d, want %d", sum, analyzed)
	}
}

// TestJSONReport round-trips a run through the machine-readable
// report cmd/lfslint -json writes.
func TestJSONReport(t *testing.T) {
	pkgs, err := lint.LoadModule(filepath.Join("testdata", "src", "wallclock"))
	if err != nil {
		t.Fatal(err)
	}
	diags, timings := lint.RunWithTimings(pkgs, lint.Analyzers)
	var buf strings.Builder
	if err := lint.NewReport(pkgs, diags, timings).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back lint.Report
	if err := json.Unmarshal([]byte(buf.String()), &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if back.Packages != len(pkgs) {
		t.Errorf("report has %d packages, want %d", back.Packages, len(pkgs))
	}
	if len(back.Findings) != len(diags) {
		t.Errorf("report has %d findings, want %d", len(back.Findings), len(diags))
	}
	if len(back.Findings) > 0 && (back.Findings[0].Rule == "" || back.Findings[0].File == "" || back.Findings[0].Line == 0) {
		t.Errorf("first finding lost fields in JSON: %+v", back.Findings[0])
	}
	if len(back.Timings) != len(timings) {
		t.Errorf("report has %d timings, want %d", len(back.Timings), len(timings))
	}
}
