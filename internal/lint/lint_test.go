package lint_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lfs/internal/lint"
)

// -update regenerates the golden files from the current analyzer
// output (inspect the diff before committing).
var update = flag.Bool("update", false, "rewrite golden files")

// runCase loads one testdata/src case as if it were a module root and
// returns the formatted findings, one per line.
func runCase(t *testing.T, caseDir string) []string {
	t.Helper()
	pkgs, err := lint.LoadModule(caseDir)
	if err != nil {
		t.Fatal(err)
	}
	diags := lint.Run(pkgs, lint.Analyzers)
	lines := make([]string, len(diags))
	for i, d := range diags {
		lines[i] = d.String()
	}
	return lines
}

// TestAnalyzersGolden runs the full suite over each miniature module
// under testdata/src and compares the findings — positions, rules,
// and messages — against the case's golden file. The miniatures
// contain positive cases (must be flagged), negative cases (must not
// be), out-of-scope packages, and one escape-hatch use per rule, so
// an exact match exercises both directions of every pass.
func TestAnalyzersGolden(t *testing.T) {
	cases, err := os.ReadDir(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) == 0 {
		t.Fatal("no testdata cases")
	}
	for _, c := range cases {
		if !c.IsDir() {
			continue
		}
		t.Run(c.Name(), func(t *testing.T) {
			got := strings.Join(runCase(t, filepath.Join("testdata", "src", c.Name())), "\n")
			if got != "" {
				got += "\n"
			}
			goldenPath := filepath.Join("testdata", "golden", c.Name()+".txt")
			if *update {
				if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestEveryAnalyzerHasFindings guards the golden corpus itself: each
// of the five rules must produce at least one finding somewhere in
// testdata, so a pass broken into silence cannot hide behind an
// accidentally empty golden file.
func TestEveryAnalyzerHasFindings(t *testing.T) {
	seen := make(map[string]bool)
	cases, err := os.ReadDir(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cases {
		if !c.IsDir() {
			continue
		}
		for _, line := range runCase(t, filepath.Join("testdata", "src", c.Name())) {
			parts := strings.SplitN(line, ": ", 3)
			if len(parts) == 3 {
				seen[parts[1]] = true
			}
		}
	}
	for _, a := range lint.Analyzers {
		if !seen[a.Name] {
			t.Errorf("rule %s produced no findings across testdata", a.Name)
		}
	}
}

// TestRepoIsClean is the meta-test behind the ci.sh gate: running the
// full suite over this repository itself must produce no findings.
// Every invariant the analyzers encode is supposed to hold for real.
func TestRepoIsClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("cannot locate module root: %v", err)
	}
	pkgs, err := lint.LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; loader is missing the module", len(pkgs))
	}
	for _, d := range lint.Run(pkgs, lint.Analyzers) {
		t.Errorf("%s", d)
	}
}

// TestMatch exercises the go-style package patterns cmd/lfslint
// accepts.
func TestMatch(t *testing.T) {
	pkgs, err := lint.LoadModule(filepath.Join("testdata", "src", "wallclock"))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		patterns []string
		want     int
	}{
		{nil, 7},
		{[]string{"./..."}, 7},
		{[]string{"./internal/..."}, 6},
		{[]string{"./internal/core"}, 1},
		{[]string{"./cmd/tool"}, 1},
		{[]string{"./nosuchdir"}, 0},
	} {
		if got := len(lint.Match(pkgs, tc.patterns)); got != tc.want {
			t.Errorf("Match(%v) selected %d packages, want %d", tc.patterns, got, tc.want)
		}
	}
}
