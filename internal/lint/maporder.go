package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// MapOrderAnalyzer flags `range` over a map inside any function
// reachable from a deterministic-output writer (JSONL export,
// checkpoint/summary encode, golden producers, tool mains, tests)
// when the loop body is order-sensitive. Go randomizes map iteration
// order per run, so a map-order loop anywhere on the path to
// deterministic output breaks the byte-identical-rerun guarantee —
// and not only through the bytes themselves: a probe issued in map
// order against a mounted file system perturbs the simulated
// timeline.
//
// Order-insensitive bodies pass without a finding: pure folds
// (compound assignment, counters, map/set inserts), conditional
// deletes from the ranged map, and the sorted-keys idiom (collect the
// keys, then a Sort call before any other use). Collected slices may
// also be handed to a module-local callee that owns the ordering;
// handing them to a foreign package (json.Marshal, fmt.Fprintf)
// unsorted is flagged.
var MapOrderAnalyzer = &Analyzer{
	Name: "maporder",
	Doc:  "no order-sensitive map iteration on paths to deterministic output",
	Run:  runMapOrder,
}

func runMapOrder(pkg *Package, ix *Index) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, decl := range f.AST.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !ix.Reachable(fn) {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				name, display := rangedMapName(pkg, ix, rng)
				if name == "" {
					return true
				}
				if d := checkMapRange(pkg, ix, f, fn, rng, display); d != nil {
					diags = append(diags, *d)
				}
				return true
			})
		}
	}
	return diags
}

// rangedMapName reports the map being ranged over, or "" when the
// expression is not evidently a map. Map-ness comes from the index's
// per-package map-typed names (fields, variables, parameters, make
// and literal bindings).
func rangedMapName(pkg *Package, ix *Index, rng *ast.RangeStmt) (name, display string) {
	switch x := rng.X.(type) {
	case *ast.Ident:
		if ix.IsMapName(pkg, x.Name) {
			return x.Name, x.Name
		}
	case *ast.SelectorExpr:
		if ix.IsMapName(pkg, x.Sel.Name) {
			d := x.Sel.Name
			if id, ok := x.X.(*ast.Ident); ok {
				d = id.Name + "." + x.Sel.Name
			}
			return x.Sel.Name, d
		}
	}
	return "", ""
}

// checkMapRange classifies one map range and returns a diagnostic if
// the loop is order-sensitive.
func checkMapRange(pkg *Package, ix *Index, f *File, fn *ast.FuncDecl, rng *ast.RangeStmt, display string) *Diagnostic {
	reason, collected := classifyRangeBody(pkg, ix, f, rng)
	if reason != "" {
		return &Diagnostic{
			Pos:  pkg.Fset.Position(rng.Pos()),
			Rule: "maporder",
			Msg: "range over map " + display + " is order-sensitive (" + reason + ") " +
				"and reachable from deterministic output; iterate sorted keys instead",
		}
	}
	for _, slice := range collected {
		if why := unsortedUse(pkg, ix, f, fn, slice, rng.End()); why != "" {
			return &Diagnostic{
				Pos:  pkg.Fset.Position(rng.Pos()),
				Rule: "maporder",
				Msg: "keys collected from map " + display + " into " + slice +
					" are used unsorted (" + why + "); sort before use",
			}
		}
	}
	return nil
}

// classifyRangeBody walks the loop body. It returns a non-empty
// reason when the body is order-sensitive on its own, plus the names
// of slices the body appends to (their later uses decide safety).
func classifyRangeBody(pkg *Package, ix *Index, f *File, rng *ast.RangeStmt) (reason string, collected []string) {
	// break binds to the nearest enclosing for/switch/select; only a
	// break binding to this range exits it early. Record the spans of
	// nested binders so their breaks pass.
	var binders []ast.Node
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			binders = append(binders, n)
		}
		return true
	})
	boundElsewhere := func(pos token.Pos) bool {
		for _, b := range binders {
			if b.Pos() <= pos && pos < b.End() {
				return true
			}
		}
		return false
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.ReturnStmt:
			reason = "returns from inside the loop"
		case *ast.BranchStmt:
			if n.Tok == token.GOTO {
				reason = "jumps out of the loop"
			}
			if n.Tok == token.BREAK && !boundElsewhere(n.Pos()) {
				reason = "break exits the loop early"
			}
		case *ast.GoStmt, *ast.SendStmt, *ast.DeferStmt, *ast.SelectStmt:
			reason = "escapes the loop's control flow"
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinCall(call, "append") || i >= len(n.Lhs) {
					continue
				}
				switch lhs := n.Lhs[i].(type) {
				case *ast.Ident:
					collected = append(collected, lhs.Name)
				case *ast.SelectorExpr:
					if id, ok := lhs.X.(*ast.Ident); ok {
						collected = append(collected, id.Name+"."+lhs.Sel.Name)
					} else {
						reason = "appends to a non-local destination in map order"
					}
				default:
					reason = "appends to a non-local destination in map order"
				}
			}
		case *ast.CallExpr:
			if who := impureCall(pkg, ix, f, n); who != "" {
				reason = "calls " + who + " in map order"
			}
		}
		return true
	})
	return reason, collected
}

// isBuiltinCall reports whether the call invokes the named builtin.
func isBuiltinCall(call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == name && id.Obj == nil
}

// builtinNames are the predeclared functions and types: calling (or
// converting through) one has no effect the loop order can reorder.
var builtinNames = map[string]bool{
	"append": true, "cap": true, "complex": true, "copy": true,
	"delete": true, "imag": true, "len": true, "make": true,
	"max": true, "min": true, "new": true, "panic": true,
	"real": true, "recover": true,
	"bool": true, "byte": true, "rune": true, "string": true,
	"int": true, "int8": true, "int16": true, "int32": true, "int64": true,
	"uint": true, "uint8": true, "uint16": true, "uint32": true, "uint64": true,
	"uintptr": true, "float32": true, "float64": true,
	"complex64": true, "complex128": true, "error": true, "any": true,
}

// impureCall names the side-effecting callee of a call made in map
// order, or "" when the call cannot observe iteration order:
// builtins, type conversions, and pure stdlib helpers (fmt.Sprintf,
// strings.X) pass; module functions and method calls (they may write
// output or advance the simulated clock) do not. Methods on the
// testing.T/B idents t and b pass — test-failure text is not part of
// the deterministic output contract.
func impureCall(pkg *Package, ix *Index, f *File, call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if builtinNames[fun.Name] && fun.Obj == nil {
			return ""
		}
		// A same-package function is impure; anything else (type
		// conversion, closure variable) is taken as order-safe.
		for _, cand := range ix.funcs[fun.Name] {
			if cand.Pkg == pkg && cand.Decl.Recv == nil {
				return fun.Name
			}
		}
		return ""
	case *ast.SelectorExpr:
		id, ok := fun.X.(*ast.Ident)
		if !ok {
			return exprString(fun) // chained call on an expression
		}
		if id.Obj == nil {
			if dir := ix.importDirFor(f, id.Name); dir != "" {
				// Module-qualified: impure only when it names a real
				// function there (sim.Duration(x) is a conversion).
				for _, cand := range ix.funcs[fun.Sel.Name] {
					if cand.Pkg.RelDir == dir && cand.Decl.Recv == nil {
						return id.Name + "." + fun.Sel.Name
					}
				}
				return ""
			}
			if importName(f.AST, "fmt") == id.Name &&
				(strings.HasPrefix(fun.Sel.Name, "Print") || strings.HasPrefix(fun.Sel.Name, "Fprint")) {
				return id.Name + "." + fun.Sel.Name
			}
			if isStdlibQualifier(f, id.Name) {
				return "" // fmt.Sprintf, strings.X, ...: pure helpers
			}
		}
		if id.Name == "t" || id.Name == "b" {
			return ""
		}
		return id.Name + "." + fun.Sel.Name
	}
	return ""
}

// isStdlibQualifier reports whether name is bound by the file to a
// non-module import (stdlib, since the module has no dependencies).
func isStdlibQualifier(f *File, name string) bool {
	for _, imp := range f.AST.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		local := path
		if i := strings.LastIndex(path, "/"); i >= 0 {
			local = path[i+1:]
		}
		if imp.Name != nil {
			local = imp.Name.Name
		}
		if local == name {
			return true
		}
	}
	return false
}

// exprString renders a short selector chain for a message.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprString(e.Fun) + "()"
	}
	return "call"
}

// unsortedUse inspects every use of a collected slice after the range
// ends. The uses are safe when a Sort call is applied to the slice,
// or when the slice is only handed to module-local callees (which own
// the ordering — writeInodeBatchFor sorts its batch itself). Any
// other use — ranging over it, returning it, passing it to a foreign
// package — leaks map order and is reported.
func unsortedUse(pkg *Package, ix *Index, f *File, fn *ast.FuncDecl, name string, after token.Pos) string {
	sorted := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= after {
			return true
		}
		if countArgMatches(call, name) == 0 {
			return true
		}
		if strings.Contains(strings.ToLower(exprString(call.Fun)), "sort") {
			sorted = true
		}
		return true
	})
	if sorted {
		return ""
	}
	why := ""
	total, asArg := 0, 0
	dotted := strings.Contains(name, ".")
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if call, isCall := n.(*ast.CallExpr); isCall && call.Pos() > after {
			if matches := countArgMatches(call, name); matches > 0 {
				asArg += matches
				if foreignCall(pkg, ix, f, call) {
					why = "passed to " + exprString(call.Fun)
				}
			}
			return true
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if dotted && n.Pos() > after && exprString(n) == name {
				total++
			}
			return !dotted // a dotted name is counted as a whole
		case *ast.Ident:
			if !dotted && n.Name == name && n.Pos() > after {
				total++
			}
		}
		return true
	})
	if why != "" {
		return why
	}
	if total > asArg {
		return "iterated or stored without sorting"
	}
	return ""
}

// countArgMatches counts the call's direct arguments that are exactly
// the named identifier or selector chain.
func countArgMatches(call *ast.CallExpr, name string) int {
	matches := 0
	for _, a := range call.Args {
		switch a.(type) {
		case *ast.Ident, *ast.SelectorExpr:
			if exprString(a) == name {
				matches++
			}
		}
	}
	return matches
}

// callTakesIdent reports whether the call has the named identifier as
// a direct argument.
func callTakesIdent(call *ast.CallExpr, name string) bool {
	for _, a := range call.Args {
		if id, ok := a.(*ast.Ident); ok && id.Name == name {
			return true
		}
	}
	return false
}

// foreignCall reports whether the call targets a non-module package:
// handing an unsorted slice across the module boundary (json.Marshal,
// fmt.Fprintf) emits map order directly.
func foreignCall(pkg *Package, ix *Index, f *File, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false // bare ident: builtin or same-package callee
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || id.Obj != nil {
		return false // method call on a local value
	}
	return ix.importDirFor(f, id.Name) == "" && isStdlibQualifier(f, id.Name)
}
