package lint

import (
	"go/ast"
)

// errwrapDirs are the packages implementing vfs.FileSystem whose
// exported operations promise *vfs.PathError (or nil) to callers —
// the race-safe public error API from the tracing PR. The in-memory
// model in internal/vfs is exempt: it is the behavioural oracle, and
// the equivalence tests compare error classes through errors.Is.
var errwrapDirs = []string{"internal/core", "internal/ffs"}

// vfsOps is the vfs.FileSystem method set plus the fsync extension —
// the operations whose errors cross the VFS boundary.
var vfsOps = map[string]bool{
	"Create":    true,
	"Mkdir":     true,
	"Write":     true,
	"Read":      true,
	"Stat":      true,
	"ReadDir":   true,
	"Remove":    true,
	"Rename":    true,
	"Link":      true,
	"Truncate":  true,
	"Sync":      true,
	"Unmount":   true,
	"FsyncFile": true,
}

// ErrWrapAnalyzer requires every exported VFS operation in the two
// file systems to return its error through endOp (which wraps with
// *vfs.PathError and emits the operation's trace span) or through
// vfs.WrapPathError directly. Returning a bare sentinel would leak an
// unwrapped error to callers — breaking errors.As(*vfs.PathError) —
// and would silently skip the operation's span, violating the
// every-op-is-traced invariant.
var ErrWrapAnalyzer = &Analyzer{
	Name: "errwrap",
	Doc:  "exported VFS ops in core/ffs must return errors via endOp or vfs.WrapPathError",
	Run:  runErrWrap,
}

func runErrWrap(pkg *Package, _ *Index) []Diagnostic {
	if !pkg.inDirs(errwrapDirs...) {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, decl := range f.AST.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Body == nil || !vfsOps[fn.Name.Name] {
				continue
			}
			if !returnsError(fn) {
				continue
			}
			// Closures inside the method return to the closure, not
			// to the VFS caller, so they are skipped.
			walkSkippingFuncLit(fn.Body, func(n ast.Node) bool {
				ret, ok := n.(*ast.ReturnStmt)
				if !ok {
					return true
				}
				if len(ret.Results) == 0 {
					diags = append(diags, Diagnostic{
						Pos:  pkg.Fset.Position(ret.Pos()),
						Rule: "errwrap",
						Msg:  fn.Name.Name + " uses a naked return; return the error through endOp or vfs.WrapPathError",
					})
					return true
				}
				errExpr := ret.Results[len(ret.Results)-1]
				if !wrapsError(errExpr) {
					diags = append(diags, Diagnostic{
						Pos:  pkg.Fset.Position(errExpr.Pos()),
						Rule: "errwrap",
						Msg: fn.Name.Name + " returns a bare error; wrap it with endOp or " +
							"vfs.WrapPathError so callers get a *vfs.PathError (and the op's span is recorded)",
					})
				}
				return true
			})
		}
	}
	return diags
}

// returnsError reports whether the function's last result is an error
// by its type name (syntactic; the VFS ops all spell it "error").
func returnsError(fn *ast.FuncDecl) bool {
	res := fn.Type.Results
	if res == nil || len(res.List) == 0 {
		return false
	}
	last, ok := res.List[len(res.List)-1].Type.(*ast.Ident)
	return ok && last.Name == "error"
}

// wrapsError reports whether the returned error expression is one of
// the sanctioned forms: nil, a call to the receiver's endOp, or a call
// to vfs.WrapPathError.
func wrapsError(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name == "nil"
	case *ast.CallExpr:
		switch fun := e.Fun.(type) {
		case *ast.SelectorExpr:
			return fun.Sel.Name == "endOp" || fun.Sel.Name == "WrapPathError"
		case *ast.Ident:
			return fun.Name == "endOp" || fun.Name == "WrapPathError"
		}
	}
	return false
}
