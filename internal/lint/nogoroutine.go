package lint

import (
	"go/ast"
	"go/token"
)

// NoGoroutineAnalyzer forbids `go` statements and unsynchronized
// channel operations (send, receive, select) in simulation packages.
// The determinism story assumes a single control loop — sched.Loop —
// drives every event in simulated-time order; a goroutine or channel
// handoff reintroduces the runtime scheduler as a hidden source of
// ordering. The scope is the same derived one wallclock uses: every
// package whose imports reach internal/sim, cmd/ excluded (the
// interactive tools may multiplex input freely).
//
// One finding is reported per function: the first offending
// construct stands for the function's concurrency, so a test that
// deliberately exercises races needs exactly one justified
// //lfslint:allow. The escape hatch doubles as the opt-out reserved
// for a future barrier-synchronized parallel simulator.
var NoGoroutineAnalyzer = &Analyzer{
	Name: "nogoroutine",
	Doc:  "simulation packages are single-threaded; sched.Loop owns all concurrency",
	Run:  runNoGoroutine,
}

func runNoGoroutine(pkg *Package, ix *Index) []Diagnostic {
	if !ix.InSimScope(pkg) {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, decl := range f.AST.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			found := false
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if found {
					return false
				}
				var what string
				switch n := n.(type) {
				case *ast.GoStmt:
					what = "go statement forks the runtime scheduler into the simulation"
				case *ast.SendStmt:
					what = "channel send synchronizes through the runtime scheduler"
				case *ast.SelectStmt:
					what = "select order depends on the runtime scheduler"
				case *ast.UnaryExpr:
					if n.Op == token.ARROW {
						what = "channel receive synchronizes through the runtime scheduler"
					}
				}
				if what == "" {
					return true
				}
				found = true
				diags = append(diags, Diagnostic{
					Pos:  pkg.Fset.Position(n.Pos()),
					Rule: "nogoroutine",
					Msg: what + "; simulation code must stay on the single " +
						"sched.Loop thread (justify deliberate concurrency with an allow)",
				})
				return false
			})
		}
	}
	return diags
}
