package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// storeCapNames are the optional store capabilities from the
// pluggable-backend work: asserting them is how code discovers what a
// backend can do, and scattering those probes makes backend behavior
// diverge silently. Probes are confined to the disk package itself
// and the conformance/crash harness.
var storeCapNames = map[string]bool{
	"Snapshotter": true,
	"Allocator":   true,
}

// storeCapDirs are the approved probe sites.
var storeCapDirs = []string{"internal/disk", "internal/fstest"}

// storeCtorNames are the store constructors whose results own an OS
// resource (file descriptor, mmap region) or at minimum the
// closed-state contract: every result must reach a Close.
var storeCtorNames = map[string]bool{
	"OpenStore":     true,
	"OpenFileStore": true,
	"OpenMmapStore": true,
}

// StoreCapAnalyzer enforces the store resource discipline: capability
// assertions like .(disk.Snapshotter) only at approved sites, and
// every store-constructor result must reach a Close in its function
// or escape to an owner (returned, passed on, stored). The Close
// check is flow-light — it looks for a Close selector or an escape
// anywhere after the open, not per-path — which catches the real
// failure mode (a test that opens and forgets) without a dataflow
// engine.
var StoreCapAnalyzer = &Analyzer{
	Name: "storecap",
	Doc:  "store capability probes stay at approved sites; store handles reach Close",
	Run:  runStoreCap,
}

func runStoreCap(pkg *Package, _ *Index) []Diagnostic {
	var diags []Diagnostic
	capApproved := pkg.inDirs(storeCapDirs...)
	for _, f := range pkg.Files {
		if !capApproved {
			ast.Inspect(f.AST, func(n ast.Node) bool {
				ta, ok := n.(*ast.TypeAssertExpr)
				if !ok || ta.Type == nil {
					return true
				}
				if name := capTypeName(ta.Type); name != "" {
					diags = append(diags, Diagnostic{
						Pos:  pkg.Fset.Position(ta.Pos()),
						Rule: "storecap",
						Msg: "capability assertion .(" + name + ") outside the approved " +
							"probe sites (internal/disk, internal/fstest); " +
							"route capability probes through the conformance harness",
					})
				}
				return true
			})
		}
		for _, decl := range f.AST.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			diags = append(diags, checkStoreCloses(pkg, fn)...)
		}
	}
	return diags
}

// capTypeName returns the asserted capability name when the type
// expression names one, else "".
func capTypeName(t ast.Expr) string {
	switch t := t.(type) {
	case *ast.Ident:
		if storeCapNames[t.Name] {
			return t.Name
		}
	case *ast.SelectorExpr:
		if storeCapNames[t.Sel.Name] {
			if id, ok := t.X.(*ast.Ident); ok {
				return id.Name + "." + t.Sel.Name
			}
			return t.Sel.Name
		}
	}
	return ""
}

// checkStoreCloses finds store-constructor calls in the function and
// verifies each bound result reaches a Close or escapes.
func checkStoreCloses(pkg *Package, fn *ast.FuncDecl) []Diagnostic {
	var diags []Diagnostic
	walkSkippingFuncLit(fn.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Rhs) != 1 {
			return true
		}
		call, ok := asg.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		ctor := storeCtorName(call)
		if ctor == "" {
			return true
		}
		id, ok := asg.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		if id.Name == "_" {
			// `if _, err := OpenStore(bad); err == nil { fail }` is
			// the expected-failure probe shape: nothing to close on
			// the asserted path.
			if !expectedFailureProbe(fn, asg) {
				diags = append(diags, Diagnostic{
					Pos:  pkg.Fset.Position(call.Pos()),
					Rule: "storecap",
					Msg: ctor + " result discarded; bind the store and close it " +
						"(or probe the error with `if _, err := ...; err == nil`)",
				})
			}
			return true
		}
		if !reachesClose(fn, id.Name, asg.End()) {
			diags = append(diags, Diagnostic{
				Pos:  pkg.Fset.Position(call.Pos()),
				Rule: "storecap",
				Msg: ctor + " result " + id.Name + " never reaches Close in this " +
					"function and never escapes; defer " + id.Name + ".Close()",
			})
		}
		return true
	})
	return diags
}

// storeCtorName returns the called store constructor's display name,
// or "".
func storeCtorName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if storeCtorNames[fun.Name] {
			return fun.Name
		}
	case *ast.SelectorExpr:
		if storeCtorNames[fun.Sel.Name] {
			if id, ok := fun.X.(*ast.Ident); ok {
				return id.Name + "." + fun.Sel.Name
			}
			return fun.Sel.Name
		}
	}
	return ""
}

// expectedFailureProbe reports whether the assign is the init of an
// if statement whose condition checks err == nil — the shape tests
// use to assert a constructor must fail.
func expectedFailureProbe(fn *ast.FuncDecl, asg *ast.AssignStmt) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || ifs.Init != asg {
			return true
		}
		ast.Inspect(ifs.Cond, func(c ast.Node) bool {
			if be, ok := c.(*ast.BinaryExpr); ok && be.Op == token.EQL {
				if isNilIdent(be.X) || isNilIdent(be.Y) {
					found = true
				}
			}
			return true
		})
		return true
	})
	return found
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// reachesClose reports whether, after the binding, the named handle
// either has Close invoked on it (directly, deferred, or inside a
// closure such as t.Cleanup) or escapes the function: returned,
// passed as an argument, re-assigned, or stored into a composite
// literal. An escaped handle has an owner; a handle that is only ever
// a method receiver and never closed is a leak.
func reachesClose(fn *ast.FuncDecl, name string, after token.Pos) bool {
	ok := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if ok || n == nil || n.End() <= after && !spans(n, after) {
			return !ok
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if id, isID := n.X.(*ast.Ident); isID && id.Name == name &&
				(n.Sel.Name == "Close" || strings.HasPrefix(n.Sel.Name, "Close")) &&
				n.Pos() > after {
				ok = true
			}
		case *ast.CallExpr:
			if n.Pos() > after && callTakesIdent(n, name) {
				ok = true
			}
		case *ast.ReturnStmt:
			if n.Pos() > after && mentionsIdent(n, name) {
				ok = true
			}
		case *ast.AssignStmt:
			if n.Pos() > after {
				for _, rhs := range n.Rhs {
					if mentionsIdent(rhs, name) {
						ok = true
					}
				}
			}
		case *ast.CompositeLit:
			if n.Pos() > after && mentionsIdent(n, name) {
				ok = true
			}
		}
		return !ok
	})
	return ok
}

// spans reports whether the node's extent contains the position (so
// enclosing statements are still descended into).
func spans(n ast.Node, pos token.Pos) bool {
	return n.Pos() <= pos && pos < n.End()
}

// mentionsIdent reports whether the subtree uses the named
// identifier.
func mentionsIdent(n ast.Node, name string) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if id, ok := c.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}
