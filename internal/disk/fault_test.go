package disk

import (
	"bytes"
	"errors"
	"testing"

	"lfs/internal/sim"
)

func newFaultDisk(t *testing.T) *Disk {
	t.Helper()
	return NewMem(16<<20, sim.NewClock())
}

// fill writes n sectors of the given byte at sector 0..n-1 individually
// so every sector is one write (predictable sequence numbers).
func fill(t *testing.T, d *Disk, n int, b byte) {
	t.Helper()
	buf := bytes.Repeat([]byte{b}, SectorSize)
	for i := 0; i < n; i++ {
		if err := d.WriteSectors(int64(i), buf, true, CauseOther, ""); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCrashPlanPowerCut(t *testing.T) {
	d := newFaultDisk(t)
	d.SetFaultPolicy(&CrashPlan{CutWrite: 3})
	buf := bytes.Repeat([]byte{7}, SectorSize)
	for i := 0; i < 2; i++ {
		if err := d.WriteSectors(int64(i), buf, true, CauseOther, ""); err != nil {
			t.Fatalf("write %d before the cut failed: %v", i, err)
		}
	}
	err := d.WriteSectors(2, buf, true, CauseOther, "")
	if !errors.Is(err, ErrPowerLoss) {
		t.Fatalf("fatal write error = %v, want ErrPowerLoss", err)
	}
	// Everything afterwards is dead, reads included.
	if err := d.ReadSectors(0, make([]byte, SectorSize), CauseOther, ""); !errors.Is(err, ErrPowerLoss) {
		t.Fatalf("read after cut = %v, want ErrPowerLoss", err)
	}
	if err := d.WriteSectors(3, buf, true, CauseOther, ""); !errors.Is(err, ErrPowerLoss) {
		t.Fatalf("write after cut = %v, want ErrPowerLoss", err)
	}
	// Reboot: earlier writes persisted, the fatal one did not.
	d.Thaw()
	d.SetFaultPolicy(nil)
	got := make([]byte, SectorSize)
	for i := 0; i < 2; i++ {
		if err := d.ReadSectors(int64(i), got, CauseOther, ""); err != nil {
			t.Fatal(err)
		}
		if got[0] != 7 {
			t.Fatalf("sector %d lost pre-cut data", i)
		}
	}
	if err := d.ReadSectors(2, got, CauseOther, ""); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 {
		t.Fatal("fatal write persisted despite the power cut")
	}
}

func TestCrashPlanTearFatalWrite(t *testing.T) {
	d := newFaultDisk(t)
	old := bytes.Repeat([]byte{0x11}, 4*SectorSize)
	if err := d.WriteSectors(0, old, true, CauseOther, ""); err != nil {
		t.Fatal(err)
	}
	d.SetFaultPolicy(&CrashPlan{CutWrite: 1, TearFatalWrite: true})
	updated := bytes.Repeat([]byte{0x22}, 4*SectorSize)
	if err := d.WriteSectors(0, updated, true, CauseOther, ""); !errors.Is(err, ErrPowerLoss) {
		t.Fatalf("torn fatal write error = %v, want ErrPowerLoss", err)
	}
	d.Thaw()
	d.SetFaultPolicy(nil)
	got := make([]byte, 4*SectorSize)
	if err := d.ReadSectors(0, got, CauseOther, ""); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:2*SectorSize], updated[:2*SectorSize]) {
		t.Fatal("torn write lost its leading half")
	}
	if !bytes.Equal(got[2*SectorSize:], old[2*SectorSize:]) {
		t.Fatal("torn write persisted past the tear point")
	}
}

func TestCrashPlanDropWrite(t *testing.T) {
	d := newFaultDisk(t)
	d.SetFaultPolicy(&CrashPlan{DropWrites: map[int64]bool{2: true}})
	fill(t, d, 3, 9) // writes 1..3; write 2 (sector 1) is dropped
	d.SetFaultPolicy(nil)
	got := make([]byte, SectorSize)
	for i, want := range []byte{9, 0, 9} {
		if err := d.ReadSectors(int64(i), got, CauseOther, ""); err != nil {
			t.Fatal(err)
		}
		if got[0] != want {
			t.Fatalf("sector %d = %d, want %d", i, got[0], want)
		}
	}
}

func TestCrashPlanReadError(t *testing.T) {
	d := newFaultDisk(t)
	fill(t, d, 2, 5)
	boom := errors.New("surface scratch")
	d.SetFaultPolicy(&CrashPlan{ReadErrors: map[int64]error{2: boom}})
	buf := make([]byte, SectorSize)
	if err := d.ReadSectors(0, buf, CauseOther, ""); err != nil { // read 1: fine
		t.Fatal(err)
	}
	if err := d.ReadSectors(1, buf, CauseOther, ""); !errors.Is(err, boom) { // read 2
		t.Fatalf("read 2 error = %v, want injected error", err)
	}
	if err := d.ReadSectors(1, buf, CauseOther, ""); err != nil { // read 3: fine again
		t.Fatal(err)
	}
}

// TestFaultPolicySequenceResets: reattaching a policy restarts the
// write numbering, the property replays rely on.
func TestFaultPolicySequenceResets(t *testing.T) {
	d := newFaultDisk(t)
	d.SetFaultPolicy(&CrashPlan{})
	fill(t, d, 5, 1)
	if n := d.PolicyWrites(); n != 5 {
		t.Fatalf("PolicyWrites = %d, want 5", n)
	}
	d.SetFaultPolicy(&CrashPlan{CutWrite: 2})
	buf := bytes.Repeat([]byte{3}, SectorSize)
	if err := d.WriteSectors(10, buf, true, CauseOther, ""); err != nil {
		t.Fatalf("write 1 after reattach failed: %v", err)
	}
	if err := d.WriteSectors(11, buf, true, CauseOther, ""); !errors.Is(err, ErrPowerLoss) {
		t.Fatalf("write 2 after reattach = %v, want ErrPowerLoss", err)
	}
}

func TestFlipBits(t *testing.T) {
	d := newFaultDisk(t)
	fill(t, d, 1, 0xF0)
	if err := d.FlipBits(0, 3, 0x0F); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, SectorSize)
	if err := d.ReadSectors(0, got, CauseOther, ""); err != nil {
		t.Fatal(err)
	}
	if got[3] != 0xFF {
		t.Fatalf("flipped byte = %#x, want 0xFF", got[3])
	}
	if got[2] != 0xF0 || got[4] != 0xF0 {
		t.Fatal("FlipBits touched neighbouring bytes")
	}
	if err := d.FlipBits(-1, 0, 1); err == nil {
		t.Fatal("FlipBits accepted a negative sector")
	}
	if err := d.FlipBits(0, SectorSize, 1); err == nil {
		t.Fatal("FlipBits accepted an out-of-sector offset")
	}
}
