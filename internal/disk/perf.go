package disk

import (
	"fmt"

	"lfs/internal/sim"
)

// PerfModel is the service-time model of a simulated disk.
//
// A request that continues exactly where the previous one ended pays
// only transfer time (the head is already positioned and the surface
// is streaming past it). Any other request pays a seek — linear in
// cylinder distance between MinSeek and MaxSeek — plus the average
// rotational latency (half a revolution), plus transfer time at
// Bandwidth. This two-regime model is precisely the property the LFS
// paper exploits: sequential I/O runs an order of magnitude faster
// than small random I/O.
type PerfModel struct {
	// RPM is the rotational speed; average rotational latency is
	// half a revolution.
	RPM float64
	// MinSeek is the single-cylinder (track-to-track) seek time.
	MinSeek sim.Duration
	// MaxSeek is the full-stroke seek time.
	MaxSeek sim.Duration
	// Bandwidth is the sustained transfer rate in bytes per second.
	Bandwidth float64
	// PerRequest is fixed controller/command overhead per request.
	PerRequest sim.Duration
}

// WrenIVModel returns the performance model of the CDC WREN IV used in
// the paper's evaluation: 1.3 MB/s maximum transfer bandwidth and
// 17.5 ms average seek time. With MinSeek = 3 ms and MaxSeek = 46.5 ms
// the mean seek over uniformly random request pairs (average cylinder
// distance ≈ one third of the stroke) is 3 + (46.5-3)/3 = 17.5 ms.
func WrenIVModel() PerfModel {
	return PerfModel{
		RPM:        3600,
		MinSeek:    3 * sim.Millisecond,
		MaxSeek:    46500 * sim.Microsecond,
		Bandwidth:  1.3e6,
		PerRequest: 500 * sim.Microsecond,
	}
}

// Validate reports whether the model is usable.
func (m PerfModel) Validate() error {
	if m.RPM <= 0 || m.Bandwidth <= 0 || m.MinSeek < 0 || m.MaxSeek < m.MinSeek || m.PerRequest < 0 {
		return fmt.Errorf("disk: invalid perf model %+v", m)
	}
	return nil
}

// RotationalLatency returns the average rotational delay (half a
// revolution).
func (m PerfModel) RotationalLatency() sim.Duration {
	revNs := 60.0 / m.RPM * 1e9
	return sim.Duration(revNs / 2)
}

// SeekTime returns the time to move the head assembly dist cylinders
// within a disk of the given stroke (total cylinders). A zero distance
// costs nothing: the head is already on-cylinder.
func (m PerfModel) SeekTime(dist, cylinders int) sim.Duration {
	if dist <= 0 {
		return 0
	}
	if cylinders <= 1 {
		return m.MinSeek
	}
	frac := float64(dist) / float64(cylinders-1)
	if frac > 1 {
		frac = 1
	}
	//lfslint:allow floataccum the seek model is defined in real arithmetic and evaluated per request; no float state accumulates
	return m.MinSeek + sim.Duration(float64(m.MaxSeek-m.MinSeek)*frac)
}

// TransferTime returns the time to move n bytes at the sustained
// bandwidth.
func (m PerfModel) TransferTime(n int64) sim.Duration {
	if n <= 0 {
		return 0
	}
	//lfslint:allow floataccum the transfer model is defined in real arithmetic and evaluated per request; no float state accumulates
	return sim.Duration(float64(n) / m.Bandwidth * 1e9)
}
