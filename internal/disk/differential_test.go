package disk_test

// Differential property test: one seeded op stream — writes, reads,
// syncs, snapshots, restores, all at random sector-aligned offsets —
// drives every backend in lockstep, and the images must stay
// byte-identical throughout. Backends without native snapshots emulate
// them with full-image copies, so the logical stream is the same
// everywhere and only the persistence technology differs.

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"

	"lfs/internal/disk"
)

// diffStoreSize keeps the lockstep image comparisons fast.
const diffStoreSize = 2 << 20

// openAllBackends opens one store per backend at diffStoreSize.
func openAllBackends(t *testing.T) (names []string, stores []disk.Store) {
	t.Helper()
	for _, b := range storeBackends {
		var s disk.Store
		switch b.name {
		case "file":
			var err error
			s, err = disk.OpenStore(disk.StoreOptions{
				Backend: disk.BackendFile, Path: filepath.Join(t.TempDir(), "img"), Capacity: diffStoreSize})
			if err != nil {
				t.Fatal(err)
			}
		case "mmap":
			var err error
			s, err = disk.OpenStore(disk.StoreOptions{
				Backend: disk.BackendMmap, Path: filepath.Join(t.TempDir(), "img"), Capacity: diffStoreSize})
			if err != nil {
				t.Logf("skipping mmap backend: %v", err)
				continue
			}
		default:
			backend, ok := disk.ParseStoreBackend(b.name)
			if !ok {
				t.Fatalf("unknown backend %q", b.name)
			}
			var err error
			s, err = disk.OpenStore(disk.StoreOptions{Backend: backend, Capacity: diffStoreSize})
			if err != nil {
				t.Fatal(err)
			}
		}
		t.Cleanup(func() { s.Close() })
		names = append(names, b.name)
		stores = append(stores, s)
	}
	return names, stores
}

// imageCopy snapshots a store natively when it can, by full-image copy
// otherwise, returning a restore function.
func imageCopy(t *testing.T, s disk.Store) func() {
	t.Helper()
	if sn, ok := s.(disk.Snapshotter); ok {
		snap, err := sn.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		return func() {
			if err := snap.Restore(); err != nil {
				t.Fatal(err)
			}
		}
	}
	img := make([]byte, s.Size())
	if err := s.ReadAt(img, 0); err != nil {
		t.Fatal(err)
	}
	return func() {
		if err := s.WriteAt(img, 0); err != nil {
			t.Fatal(err)
		}
	}
}

// runDifferentialStream applies ops pseudo-random operations derived
// from seed to every store in lockstep and fails on the first image
// divergence.
func runDifferentialStream(t *testing.T, seed int64, ops int) {
	t.Helper()
	names, stores := openAllBackends(t)
	if len(stores) < 2 {
		t.Skip("need at least two backends to differentiate")
	}
	rng := rand.New(rand.NewSource(seed))
	sectors := int64(diffStoreSize / disk.SectorSize)
	var restores [][]func()
	compare := func(step int) {
		ref := storeImageFull(t, stores[0])
		for i := 1; i < len(stores); i++ {
			if got := storeImageFull(t, stores[i]); !bytes.Equal(got, ref) {
				t.Fatalf("step %d: %s image diverged from %s (seed %d)", step, names[i], names[0], seed)
			}
		}
	}
	for i := 0; i < ops; i++ {
		n := (1 + rng.Intn(32)) * disk.SectorSize
		off := rng.Int63n(sectors-32) * disk.SectorSize
		switch k := rng.Intn(100); {
		case k < 60: // identical write everywhere
			p := make([]byte, n)
			for j := range p {
				p[j] = byte(rng.Intn(256))
			}
			for si, s := range stores {
				if err := s.WriteAt(p, off); err != nil {
					t.Fatalf("step %d: %s write: %v", i, names[si], err)
				}
			}
		case k < 75: // identical read everywhere
			ref := make([]byte, n)
			if err := stores[0].ReadAt(ref, off); err != nil {
				t.Fatalf("step %d: %s read: %v", i, names[0], err)
			}
			got := make([]byte, n)
			for si := 1; si < len(stores); si++ {
				if err := stores[si].ReadAt(got, off); err != nil {
					t.Fatalf("step %d: %s read: %v", i, names[si], err)
				}
				if !bytes.Equal(got, ref) {
					t.Fatalf("step %d: %s read diverged from %s (seed %d)", i, names[si], names[0], seed)
				}
			}
		case k < 80: // sync everywhere
			for si, s := range stores {
				if err := s.Sync(); err != nil {
					t.Fatalf("step %d: %s sync: %v", i, names[si], err)
				}
			}
		case k < 90: // snapshot everywhere (native or emulated)
			row := make([]func(), len(stores))
			for si, s := range stores {
				row[si] = imageCopy(t, s)
			}
			restores = append(restores, row)
		default: // restore the same point everywhere
			if len(restores) == 0 {
				continue
			}
			row := restores[rng.Intn(len(restores))]
			for _, restore := range row {
				restore()
			}
			compare(i)
		}
	}
	compare(ops)
}

// storeImageFull reads the whole image (test-local copy of the suite
// helper, so this file stands alone).
func storeImageFull(t *testing.T, s disk.Store) []byte {
	t.Helper()
	img := make([]byte, s.Size())
	if err := s.ReadAt(img, 0); err != nil {
		t.Fatal(err)
	}
	return img
}

func TestStoreDifferentialProperty(t *testing.T) {
	for _, seed := range []int64{1, 42, 20260808} {
		t.Run("", func(t *testing.T) { runDifferentialStream(t, seed, 250) })
	}
}

// FuzzStoreDifferential lets the fuzzer hunt for op streams that make
// any backend's image diverge; the seed corpus keeps the lockstep
// check in every ordinary `go test` run.
func FuzzStoreDifferential(f *testing.F) {
	f.Add(int64(7), uint8(60))
	f.Add(int64(99), uint8(120))
	f.Fuzz(func(t *testing.T, seed int64, ops uint8) {
		runDifferentialStream(t, seed, int(ops)%200+10)
	})
}
