package disk

import "fmt"

// memChunkSize is the lazy-allocation granule of MemStore. One
// megabyte matches the default LFS segment size, so a freshly
// formatted file system allocates memory only for segments it touches.
const memChunkSize = 1 << 20

// MemStore is a lazily allocated in-memory Store. Chunks are allocated
// on first write, so a mostly empty multi-hundred-megabyte disk costs
// almost nothing.
type MemStore struct {
	size   int64
	chunks map[int64][]byte // chunk index -> chunk bytes; nil after Close
}

// NewMemStore returns an empty in-memory store of the given capacity.
//
// Deprecated: prefer OpenStore(StoreOptions{Backend: BackendMem,
// Capacity: size}), which covers every backend behind one options API.
func NewMemStore(size int64) *MemStore {
	if size <= 0 {
		panic(fmt.Sprintf("disk: non-positive MemStore size %d", size))
	}
	return &MemStore{size: size, chunks: make(map[int64][]byte)}
}

// Size returns the store capacity in bytes.
func (m *MemStore) Size() int64 { return m.size }

// Sync implements Store; memory is always "stable" here.
func (m *MemStore) Sync() error {
	if m.chunks == nil {
		return fmt.Errorf("disk: sync: %w", ErrClosed)
	}
	return nil
}

// Close releases the chunk map. Close is idempotent.
func (m *MemStore) Close() error {
	m.chunks = nil
	return nil
}

func (m *MemStore) checkRange(p []byte, off int64) error {
	if err := checkStoreRange(p, off, m.size); err != nil {
		return err
	}
	if m.chunks == nil {
		return fmt.Errorf("disk: %w", ErrClosed)
	}
	return nil
}

// ReadAt fills p from the store; unallocated chunks read as zeros.
func (m *MemStore) ReadAt(p []byte, off int64) error {
	if err := m.checkRange(p, off); err != nil {
		return err
	}
	for len(p) > 0 {
		ci := off / memChunkSize
		co := off % memChunkSize
		n := memChunkSize - co
		if n > int64(len(p)) {
			n = int64(len(p))
		}
		if chunk, ok := m.chunks[ci]; ok {
			copy(p[:n], chunk[co:co+n])
		} else {
			for i := range p[:n] {
				p[i] = 0
			}
		}
		p = p[n:]
		off += n
	}
	return nil
}

// WriteAt stores p at off, allocating chunks as needed.
func (m *MemStore) WriteAt(p []byte, off int64) error {
	if err := m.checkRange(p, off); err != nil {
		return err
	}
	for len(p) > 0 {
		ci := off / memChunkSize
		co := off % memChunkSize
		n := memChunkSize - co
		if n > int64(len(p)) {
			n = int64(len(p))
		}
		chunk, ok := m.chunks[ci]
		if !ok {
			chunk = make([]byte, memChunkSize)
			m.chunks[ci] = chunk
		}
		copy(chunk[co:co+n], p[:n])
		p = p[n:]
		off += n
	}
	return nil
}

// AllocatedBytes implements Allocator: how much backing memory the
// store has actually allocated.
func (m *MemStore) AllocatedBytes() int64 {
	return int64(len(m.chunks)) * memChunkSize
}
