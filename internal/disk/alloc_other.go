//go:build !unix

package disk

import "os"

// fileAllocatedBytes reports that hole-aware block accounting is
// unavailable on this platform; callers fall back to the nominal size.
func fileAllocatedBytes(*os.File) (int64, bool) { return 0, false }
