package disk

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"lfs/internal/sim"
)

func newTestDisk(t *testing.T, capacity int64) *Disk {
	t.Helper()
	return NewMem(capacity, sim.NewClock())
}

func TestGeometryForCapacity(t *testing.T) {
	g := GeometryForCapacity(300 << 20)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.TotalBytes() < 300<<20 {
		t.Fatalf("TotalBytes = %d, want >= 300MB", g.TotalBytes())
	}
	// The last sector must map to the last cylinder.
	if c := g.CylinderOf(g.TotalSectors() - 1); c != g.Cylinders-1 {
		t.Fatalf("CylinderOf(last) = %d, want %d", c, g.Cylinders-1)
	}
}

func TestWrenIVAverageSeek(t *testing.T) {
	m := WrenIVModel()
	g := GeometryForCapacity(300 << 20)
	// Mean cylinder distance of uniformly random pairs is ~stroke/3;
	// the model is calibrated so that seek at that distance is the
	// published 17.5 ms average.
	avg := m.SeekTime(g.Cylinders/3, g.Cylinders)
	if avg < 16*sim.Millisecond || avg > 19*sim.Millisecond {
		t.Fatalf("seek at mean distance = %v, want ~17.5ms", avg)
	}
	if m.SeekTime(0, g.Cylinders) != 0 {
		t.Fatal("zero-distance seek should be free")
	}
	if m.SeekTime(1, g.Cylinders) < m.MinSeek {
		t.Fatal("single-cylinder seek below MinSeek")
	}
	if got := m.SeekTime(g.Cylinders-1, g.Cylinders); got != m.MaxSeek {
		t.Fatalf("full-stroke seek = %v, want MaxSeek %v", got, m.MaxSeek)
	}
}

func TestTransferTimeMatchesBandwidth(t *testing.T) {
	m := WrenIVModel()
	// 1.3 MB at 1.3 MB/s is one second.
	if got := m.TransferTime(1_300_000); got != sim.Second {
		t.Fatalf("TransferTime(1.3MB) = %v, want 1s", got)
	}
	if m.TransferTime(0) != 0 || m.TransferTime(-4) != 0 {
		t.Fatal("non-positive transfer should be free")
	}
}

func TestDiskReadWriteRoundTrip(t *testing.T) {
	d := newTestDisk(t, 4<<20)
	want := bytes.Repeat([]byte{0x5A}, 4096)
	if err := d.WriteSectors(100, want, true, CauseOther, "test"); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4096)
	if err := d.ReadSectors(100, got, CauseOther, "test"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("round trip mismatch")
	}
}

func TestDiskRejectsMisalignedAndOutOfRange(t *testing.T) {
	d := newTestDisk(t, 1<<20)
	if err := d.WriteSectors(0, make([]byte, 100), true, CauseOther, ""); err == nil {
		t.Fatal("misaligned write succeeded")
	}
	if err := d.ReadSectors(0, nil, CauseOther, ""); err == nil {
		t.Fatal("empty read succeeded")
	}
	if err := d.ReadSectors(d.Sectors(), make([]byte, 512), CauseOther, ""); err == nil {
		t.Fatal("read past end succeeded")
	}
	if err := d.WriteSectors(-1, make([]byte, 512), false, CauseOther, ""); err == nil {
		t.Fatal("negative-sector write succeeded")
	}
}

func TestSequentialIOFasterThanRandom(t *testing.T) {
	clock := sim.NewClock()
	d := NewMem(64<<20, clock)
	block := make([]byte, 4096)

	// Sequential: 256 back-to-back blocks.
	start := clock.Now()
	sector := int64(0)
	for i := 0; i < 256; i++ {
		if err := d.WriteSectors(sector, block, true, CauseOther, ""); err != nil {
			t.Fatal(err)
		}
		sector += 8
	}
	seqTime := clock.Now().Sub(start)

	// Random: 256 widely scattered blocks.
	start = clock.Now()
	for i := 0; i < 256; i++ {
		s := int64((i * 104729) % int(d.Sectors()-8)) // large prime scatter
		s -= s % 8
		if err := d.WriteSectors(s, block, true, CauseOther, ""); err != nil {
			t.Fatal(err)
		}
	}
	randTime := clock.Now().Sub(start)

	if ratio := float64(randTime) / float64(seqTime); ratio < 5 {
		t.Fatalf("random/sequential = %.1f, want order-of-magnitude gap (>5)", ratio)
	}
}

func TestAsyncWriteDoesNotBlockCaller(t *testing.T) {
	clock := sim.NewClock()
	d := NewMem(16<<20, clock)
	seg := make([]byte, 1<<20)

	before := clock.Now()
	if err := d.WriteSectors(0, seg, false, CauseOther, "segment"); err != nil {
		t.Fatal(err)
	}
	if clock.Now() != before {
		t.Fatalf("async write advanced caller clock by %v", clock.Now().Sub(before))
	}
	if d.BusyUntil() <= before {
		t.Fatal("async write did not extend busy horizon")
	}
	d.Drain()
	if clock.Now() != d.BusyUntil() {
		t.Fatal("Drain did not advance clock to busy horizon")
	}
	// A 1MB transfer at 1.3MB/s takes ~769ms plus positioning.
	if got := clock.Now().Sub(before); got < 700*sim.Millisecond || got > 900*sim.Millisecond {
		t.Fatalf("1MB segment write took %v, want ~770ms", got)
	}
}

func TestSyncWriteBlocksCaller(t *testing.T) {
	clock := sim.NewClock()
	d := NewMem(16<<20, clock)
	before := clock.Now()
	if err := d.WriteSectors(5000, make([]byte, 4096), true, CauseOther, "inode"); err != nil {
		t.Fatal(err)
	}
	if clock.Now() == before {
		t.Fatal("sync write did not advance clock")
	}
	if clock.Now() != d.BusyUntil() {
		t.Fatal("sync write left clock behind busy horizon")
	}
}

func TestQueuedAsyncWritesSerialize(t *testing.T) {
	clock := sim.NewClock()
	d := NewMem(16<<20, clock)
	// Two async writes: the second starts after the first finishes.
	if err := d.WriteSectors(0, make([]byte, 1<<20), false, CauseOther, ""); err != nil {
		t.Fatal(err)
	}
	first := d.BusyUntil()
	if err := d.WriteSectors(2048, make([]byte, 1<<20), false, CauseOther, ""); err != nil {
		t.Fatal(err)
	}
	if d.BusyUntil() <= first {
		t.Fatal("second async write did not queue behind the first")
	}
}

func TestStatsAccounting(t *testing.T) {
	d := newTestDisk(t, 16<<20)
	block := make([]byte, 4096)
	if err := d.WriteSectors(0, block, true, CauseOther, ""); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteSectors(8, block, false, CauseOther, ""); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadSectors(0, block, CauseOther, ""); err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.Writes != 2 || s.SyncWrites != 1 || s.Reads != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.SectorsWritten != 16 || s.SectorsRead != 8 {
		t.Fatalf("sector counts = %+v", s)
	}
	if s.BytesWritten() != 16*512 || s.BytesRead() != 8*512 {
		t.Fatal("byte helpers wrong")
	}
	if s.BusyTime <= 0 {
		t.Fatal("busy time not accumulated")
	}
	snap := d.Stats()
	if err := d.ReadSectors(0, block, CauseOther, ""); err != nil {
		t.Fatal(err)
	}
	delta := d.Stats().Sub(snap)
	if delta.Reads != 1 || delta.Writes != 0 {
		t.Fatalf("Sub delta = %+v", delta)
	}
	d.ResetStats()
	if d.Stats() != (Stats{}) {
		t.Fatal("ResetStats did not zero counters")
	}
	if d.Stats().String() == "" {
		t.Fatal("empty Stats.String")
	}
}

func TestTracerReceivesEvents(t *testing.T) {
	d := newTestDisk(t, 16<<20)
	var events []Event
	d.SetTracer(tracerFunc(func(ev Event) { events = append(events, ev) }))
	if err := d.WriteSectors(40, make([]byte, 4096), true, CauseOther, "inode"); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteSectors(48, make([]byte, 4096), false, CauseOther, "data"); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	if events[0].Label != "inode" || !events[0].Sync || events[0].Kind != OpWrite {
		t.Fatalf("event 0 = %+v", events[0])
	}
	if events[1].Label != "data" || events[1].Sync {
		t.Fatalf("event 1 = %+v", events[1])
	}
	if !events[1].Sequential {
		t.Fatal("back-to-back write not marked sequential")
	}
	if events[0].Sequential {
		t.Fatal("first-ever request marked sequential")
	}
	d.SetTracer(nil)
	if err := d.ReadSectors(40, make([]byte, 4096), CauseOther, ""); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatal("detached tracer still receiving events")
	}
	if OpRead.String() != "read" || OpWrite.String() != "write" {
		t.Fatal("OpKind.String wrong")
	}
}

type tracerFunc func(Event)

func (f tracerFunc) Record(ev Event) { f(ev) }

func TestInjectReadError(t *testing.T) {
	d := newTestDisk(t, 16<<20)
	boom := errors.New("media failure")
	d.InjectReadError(16, boom)
	err := d.ReadSectors(16, make([]byte, 512), CauseOther, "")
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want injected media failure", err)
	}
	// Other sectors unaffected.
	if err := d.ReadSectors(0, make([]byte, 512), CauseOther, ""); err != nil {
		t.Fatal(err)
	}
	d.ClearFaults()
	if err := d.ReadSectors(16, make([]byte, 512), CauseOther, ""); err != nil {
		t.Fatal("fault survived ClearFaults")
	}
}

func TestTornWrite(t *testing.T) {
	d := newTestDisk(t, 16<<20)
	old := bytes.Repeat([]byte{0x11}, 8192)
	if err := d.WriteSectors(0, old, true, CauseOther, ""); err != nil {
		t.Fatal(err)
	}
	d.TearNextWrite()
	updated := bytes.Repeat([]byte{0x22}, 8192)
	if err := d.WriteSectors(0, updated, true, CauseOther, ""); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8192)
	if err := d.ReadSectors(0, got, CauseOther, ""); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:4096], updated[:4096]) {
		t.Fatal("torn write did not persist its first half")
	}
	if !bytes.Equal(got[4096:], old[4096:]) {
		t.Fatal("torn write persisted its second half")
	}
}

func TestFailWrites(t *testing.T) {
	d := newTestDisk(t, 16<<20)
	boom := errors.New("controller fault")
	d.FailWrites(boom)
	if err := d.WriteSectors(0, make([]byte, 512), true, CauseOther, ""); err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want injected failure", err)
	}
	d.FailWrites(nil)
	if err := d.WriteSectors(0, make([]byte, 512), true, CauseOther, ""); err != nil {
		t.Fatal(err)
	}
}

func TestFreezeThaw(t *testing.T) {
	d := newTestDisk(t, 16<<20)
	want := bytes.Repeat([]byte{9}, 512)
	if err := d.WriteSectors(0, want, true, CauseOther, ""); err != nil {
		t.Fatal(err)
	}
	d.Freeze()
	if err := d.ReadSectors(0, make([]byte, 512), CauseOther, ""); err == nil {
		t.Fatal("read on frozen disk succeeded")
	}
	if err := d.WriteSectors(0, make([]byte, 512), true, CauseOther, ""); err == nil {
		t.Fatal("write on frozen disk succeeded")
	}
	d.Thaw()
	got := make([]byte, 512)
	if err := d.ReadSectors(0, got, CauseOther, ""); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("pre-crash data lost across freeze/thaw")
	}
}

func TestNewValidation(t *testing.T) {
	clock := sim.NewClock()
	geom := GeometryForCapacity(1 << 20)
	perf := WrenIVModel()
	if _, err := New(nil, geom, perf, clock); err == nil {
		t.Fatal("nil store accepted")
	}
	if _, err := New(NewMemStore(1), geom, perf, clock); err == nil {
		t.Fatal("undersized store accepted")
	}
	if _, err := New(NewMemStore(geom.TotalBytes()), Geometry{}, perf, clock); err == nil {
		t.Fatal("invalid geometry accepted")
	}
	if _, err := New(NewMemStore(geom.TotalBytes()), geom, PerfModel{}, clock); err == nil {
		t.Fatal("invalid perf model accepted")
	}
	if _, err := New(NewMemStore(geom.TotalBytes()), geom, perf, nil); err == nil {
		t.Fatal("nil clock accepted")
	}
}

// Property: seek time is monotone non-decreasing in distance and
// bounded by [0, MaxSeek].
func TestSeekTimeMonotoneProperty(t *testing.T) {
	m := WrenIVModel()
	const cyls = 2000
	f := func(a, b uint16) bool {
		da, db := int(a)%cyls, int(b)%cyls
		ta, tb := m.SeekTime(da, cyls), m.SeekTime(db, cyls)
		if da <= db && ta > tb {
			return false
		}
		return ta >= 0 && ta <= m.MaxSeek
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: transfer time is additive-monotone — moving more bytes
// never takes less time, and doubling the bytes doubles the time.
func TestTransferTimeLinearProperty(t *testing.T) {
	m := WrenIVModel()
	f := func(n uint16) bool {
		nb := int64(n) + 1
		t1 := m.TransferTime(nb)
		t2 := m.TransferTime(2 * nb)
		diff := int64(t2) - 2*int64(t1)
		if diff < 0 {
			diff = -diff
		}
		return diff <= 2 // ns rounding
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the simulated clock never goes backwards across any
// sequence of mixed disk operations, and busyUntil >= the clock after
// any blocking op.
func TestDiskTimeMonotoneProperty(t *testing.T) {
	type op struct {
		Sector uint16
		Write  bool
		Sync   bool
	}
	f := func(ops []op) bool {
		clock := sim.NewClock()
		d := NewMem(8<<20, clock)
		buf := make([]byte, 4096)
		prev := clock.Now()
		for _, o := range ops {
			sector := int64(o.Sector) % (d.Sectors() - 8)
			var err error
			if o.Write {
				err = d.WriteSectors(sector, buf, o.Sync, CauseOther, "prop")
			} else {
				err = d.ReadSectors(sector, buf, CauseOther, "prop")
			}
			if err != nil {
				return false
			}
			if clock.Now() < prev {
				return false
			}
			if !o.Write || o.Sync {
				// Blocking ops leave the disk free no later than now.
				if d.BusyUntil() > clock.Now() {
					return false
				}
			}
			prev = clock.Now()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
