// Package disk implements the simulated block device the file systems
// run on: a sector-addressed store with an explicit service-time model
// (seek proportional to cylinder distance, rotational latency, transfer
// at a configurable bandwidth), I/O statistics, access tracing, and
// fault injection.
//
// The paper's testbed was a WREN IV disk (1.3 MB/s maximum transfer
// bandwidth, 17.5 ms average seek) on a Sun-4/260. The package's
// WrenIV constructor reproduces those parameters; all experiments in
// this repository are run against it unless they sweep disk parameters
// explicitly.
//
// Time model: every request computes a service time from the current
// head position and the request geometry. Synchronous requests advance
// the simulated clock to the request's completion. Asynchronous writes
// only extend the disk's busy horizon, modelling background I/O that
// overlaps computation; Drain waits for the horizon.
//
// Persistence is pluggable: the Store interface has four backends
// (in-memory, copy-on-write memory, sparse file, memory-mapped file),
// selected through OpenStore. Optional capabilities — O(1) snapshots,
// allocated-bytes reporting — are discovered by interface assertion on
// the concrete store. Every backend produces byte-identical images for
// the same request stream; fstest.RunStoreConformance is the proof.
package disk

import (
	"errors"
	"fmt"
)

// SectorSize is the unit of disk addressing, in bytes.
const SectorSize = 512

// Sentinel errors for store access, tested with errors.Is.
var (
	// ErrClosed reports an operation on a closed store.
	ErrClosed = errors.New("store is closed")
	// ErrOutOfRange reports an access outside the store capacity.
	ErrOutOfRange = errors.New("store access out of range")
)

// Store is the persistence backend of a simulated disk. Offsets and
// lengths are in bytes and always sector-aligned when called through
// Disk. Implementations must be safe for use by a single goroutine;
// Disk adds no locking of its own.
//
// Optional capabilities are discovered by interface assertion:
// Snapshotter for O(1) copy-on-write snapshot/restore, Allocator for
// allocated-bytes reporting on sparse stores.
type Store interface {
	// ReadAt fills p from the store at off. Unwritten regions read
	// as zero bytes.
	ReadAt(p []byte, off int64) error
	// WriteAt stores p at off.
	WriteAt(p []byte, off int64) error
	// Sync flushes buffered writes to stable storage. Memory-backed
	// stores treat it as a no-op.
	Sync() error
	// Size returns the store capacity in bytes.
	Size() int64
	// Close releases resources held by the store. Close is
	// idempotent: a second call is a no-op returning nil.
	Close() error
}

// Snapshotter is an optional Store capability: cheap point-in-time
// snapshots of the full image that can later be restored. The
// crash-point sweep uses it to rewind a volume to the state before
// write k instead of replaying the whole workload per crash point.
type Snapshotter interface {
	// Snapshot captures the current image. The snapshot remains
	// valid across later writes and restores until Release.
	Snapshot() (Snapshot, error)
}

// Snapshot is a point-in-time image captured from a Snapshotter.
type Snapshot interface {
	// Restore resets the originating store to the snapshot state.
	// A snapshot can be restored any number of times.
	Restore() error
	// Release frees the snapshot; restoring afterwards is an error.
	Release() error
}

// Allocator is an optional Store capability: reporting how many bytes
// of backing storage the image has actually allocated. Sparse backends
// (lazily allocated memory, punched files) report far less than Size
// for mostly empty volumes.
type Allocator interface {
	// AllocatedBytes returns the bytes of backing storage currently
	// allocated for the image.
	AllocatedBytes() int64
}

// StoreBackend selects a Store implementation in StoreOptions.
type StoreBackend int

const (
	// BackendMem is the lazily allocated in-memory store (MemStore):
	// fast, sparse, no snapshots.
	BackendMem StoreBackend = iota
	// BackendCow is the copy-on-write in-memory store (CowMemStore):
	// sparse, with O(1) snapshot/restore.
	BackendCow
	// BackendFile is the sparse file-backed store (FileStore): images
	// persist between runs; unwritten regions occupy no disk blocks.
	BackendFile
	// BackendMmap is the memory-mapped file store (MmapStore): the
	// image is mapped shared, so multi-GB volumes are accessed at
	// memory speed without per-request system calls.
	BackendMmap

	numBackends // bounds the backend space
)

// backendNames indexes StoreBackend.String.
var backendNames = [numBackends]string{"mem", "cow", "file", "mmap"}

// String returns the backend's stable name ("mem", "cow", "file",
// "mmap"), as accepted by ParseStoreBackend and tool -backend flags.
func (b StoreBackend) String() string {
	if b < 0 || b >= numBackends {
		return fmt.Sprintf("backend(%d)", int(b))
	}
	return backendNames[b]
}

// ParseStoreBackend maps a backend name to its value.
func ParseStoreBackend(s string) (StoreBackend, bool) {
	for i, n := range backendNames {
		if n == s {
			return StoreBackend(i), true
		}
	}
	return 0, false
}

// StoreOptions configures OpenStore, the single constructor for every
// store backend.
type StoreOptions struct {
	// Backend selects the implementation; the zero value is
	// BackendMem.
	Backend StoreBackend
	// Path locates the image file for the file-backed backends
	// (BackendFile, BackendMmap); ignored by the memory backends.
	Path string
	// Capacity is the store size in bytes; must be positive.
	Capacity int64
}

// OpenStore opens a store described by opts. It replaces the
// positional NewMemStore/OpenFileStore constructors: one options
// struct covers every backend, so call sites select backends by
// configuration rather than by constructor name.
func OpenStore(opts StoreOptions) (Store, error) {
	if opts.Capacity <= 0 {
		return nil, fmt.Errorf("disk: non-positive store capacity %d: %w", opts.Capacity, ErrOutOfRange)
	}
	switch opts.Backend {
	case BackendMem:
		return &MemStore{size: opts.Capacity, chunks: make(map[int64][]byte)}, nil
	case BackendCow:
		return NewCowMemStore(opts.Capacity), nil
	case BackendFile:
		if opts.Path == "" {
			return nil, fmt.Errorf("disk: %s backend needs a path", opts.Backend)
		}
		return OpenFileStore(opts.Path, opts.Capacity)
	case BackendMmap:
		if opts.Path == "" {
			return nil, fmt.Errorf("disk: %s backend needs a path", opts.Backend)
		}
		return OpenMmapStore(opts.Path, opts.Capacity)
	}
	return nil, fmt.Errorf("disk: unknown store backend %d", int(opts.Backend))
}

// checkStoreRange validates an access of len(p) bytes at off against a
// store of the given size, returning an ErrOutOfRange-wrapping error
// for violations. Zero-length accesses are valid anywhere in
// [0, size].
func checkStoreRange(p []byte, off, size int64) error {
	if off < 0 || off+int64(len(p)) > size {
		return fmt.Errorf("disk: store access [%d,%d) outside capacity %d: %w",
			off, off+int64(len(p)), size, ErrOutOfRange)
	}
	return nil
}
