// Package disk implements the simulated block device the file systems
// run on: a sector-addressed store with an explicit service-time model
// (seek proportional to cylinder distance, rotational latency, transfer
// at a configurable bandwidth), I/O statistics, access tracing, and
// fault injection.
//
// The paper's testbed was a WREN IV disk (1.3 MB/s maximum transfer
// bandwidth, 17.5 ms average seek) on a Sun-4/260. The package's
// WrenIV constructor reproduces those parameters; all experiments in
// this repository are run against it unless they sweep disk parameters
// explicitly.
//
// Time model: every request computes a service time from the current
// head position and the request geometry. Synchronous requests advance
// the simulated clock to the request's completion. Asynchronous writes
// only extend the disk's busy horizon, modelling background I/O that
// overlaps computation; Drain waits for the horizon.
package disk

import (
	"fmt"
	"io"
	"os"
	"sync"
)

// SectorSize is the unit of disk addressing, in bytes.
const SectorSize = 512

// Store is the persistence backend of a simulated disk. Offsets and
// lengths are in bytes and always sector-aligned when called through
// Disk. Implementations must be safe for use by a single goroutine;
// Disk adds no locking of its own.
type Store interface {
	// ReadAt fills p from the store at off. Unwritten regions read
	// as zero bytes.
	ReadAt(p []byte, off int64) error
	// WriteAt stores p at off.
	WriteAt(p []byte, off int64) error
	// Size returns the store capacity in bytes.
	Size() int64
	// Close releases resources held by the store.
	Close() error
}

// memChunkSize is the lazy-allocation granule of MemStore. One
// megabyte matches the default LFS segment size, so a freshly
// formatted file system allocates memory only for segments it touches.
const memChunkSize = 1 << 20

// MemStore is a lazily allocated in-memory Store. Chunks are allocated
// on first write, so a mostly empty multi-hundred-megabyte disk costs
// almost nothing.
type MemStore struct {
	size   int64
	chunks map[int64][]byte // chunk index -> chunk bytes
}

// NewMemStore returns an empty in-memory store of the given capacity.
func NewMemStore(size int64) *MemStore {
	if size <= 0 {
		panic(fmt.Sprintf("disk: non-positive MemStore size %d", size))
	}
	return &MemStore{size: size, chunks: make(map[int64][]byte)}
}

// Size returns the store capacity in bytes.
func (m *MemStore) Size() int64 { return m.size }

// Close releases the chunk map.
func (m *MemStore) Close() error {
	m.chunks = nil
	return nil
}

func (m *MemStore) checkRange(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > m.size {
		return fmt.Errorf("disk: store access [%d,%d) outside capacity %d", off, off+int64(len(p)), m.size)
	}
	if m.chunks == nil {
		return fmt.Errorf("disk: store is closed")
	}
	return nil
}

// ReadAt fills p from the store; unallocated chunks read as zeros.
func (m *MemStore) ReadAt(p []byte, off int64) error {
	if err := m.checkRange(p, off); err != nil {
		return err
	}
	for len(p) > 0 {
		ci := off / memChunkSize
		co := off % memChunkSize
		n := memChunkSize - co
		if n > int64(len(p)) {
			n = int64(len(p))
		}
		if chunk, ok := m.chunks[ci]; ok {
			copy(p[:n], chunk[co:co+n])
		} else {
			for i := range p[:n] {
				p[i] = 0
			}
		}
		p = p[n:]
		off += n
	}
	return nil
}

// WriteAt stores p at off, allocating chunks as needed.
func (m *MemStore) WriteAt(p []byte, off int64) error {
	if err := m.checkRange(p, off); err != nil {
		return err
	}
	for len(p) > 0 {
		ci := off / memChunkSize
		co := off % memChunkSize
		n := memChunkSize - co
		if n > int64(len(p)) {
			n = int64(len(p))
		}
		chunk, ok := m.chunks[ci]
		if !ok {
			chunk = make([]byte, memChunkSize)
			m.chunks[ci] = chunk
		}
		copy(chunk[co:co+n], p[:n])
		p = p[n:]
		off += n
	}
	return nil
}

// AllocatedBytes reports how much backing memory the store has
// actually allocated; useful in tests of laziness.
func (m *MemStore) AllocatedBytes() int64 {
	return int64(len(m.chunks)) * memChunkSize
}

// FileStore is a Store backed by a file on the host file system, used
// by the command-line tools (mklfs, lfsck, lfsdump) to operate on disk
// images that persist between runs.
type FileStore struct {
	mu sync.Mutex
	// f is the image file handle; guarded by mu (tools may scan an
	// image while a mounted FS flushes to it).
	f *os.File
	// size is fixed at open and immutable thereafter.
	size int64
}

// OpenFileStore opens (or creates) path as a disk image of the given
// capacity. If the file already exists and is at least size bytes, its
// contents are preserved; otherwise it is extended with zeros.
func OpenFileStore(path string, size int64) (*FileStore, error) {
	if size <= 0 {
		return nil, fmt.Errorf("disk: non-positive FileStore size %d", size)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if info.Size() < size {
		if err := f.Truncate(size); err != nil {
			f.Close()
			return nil, err
		}
	}
	return &FileStore{f: f, size: size}, nil
}

// Size returns the store capacity in bytes.
func (s *FileStore) Size() int64 { return s.size }

// ReadAt fills p from the image file.
func (s *FileStore) ReadAt(p []byte, off int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if off < 0 || off+int64(len(p)) > s.size {
		return fmt.Errorf("disk: store access [%d,%d) outside capacity %d", off, off+int64(len(p)), s.size)
	}
	_, err := s.f.ReadAt(p, off)
	if err == io.EOF {
		err = nil // sparse tail reads as zeros via Truncate
	}
	return err
}

// WriteAt stores p in the image file.
func (s *FileStore) WriteAt(p []byte, off int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if off < 0 || off+int64(len(p)) > s.size {
		return fmt.Errorf("disk: store access [%d,%d) outside capacity %d", off, off+int64(len(p)), s.size)
	}
	_, err := s.f.WriteAt(p, off)
	return err
}

// Close closes the image file. It takes the lock so a close cannot
// race a ReadAt/WriteAt in flight from another goroutine (lfslint's
// lockcheck pass caught the unlocked access).
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}
