package disk_test

import (
	"bytes"
	"path/filepath"
	"testing"

	"lfs/internal/disk"
	"lfs/internal/fstest"
)

// storeBackends is the full backend matrix; every entry must pass the
// exported store conformance suite.
var storeBackends = []struct {
	name string
	open fstest.StoreFactory
}{
	{"mem", func(t *testing.T) disk.Store {
		s, err := disk.OpenStore(disk.StoreOptions{Backend: disk.BackendMem, Capacity: 8 << 20})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}},
	{"cow", func(t *testing.T) disk.Store {
		s, err := disk.OpenStore(disk.StoreOptions{Backend: disk.BackendCow, Capacity: 8 << 20})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}},
	{"file", func(t *testing.T) disk.Store {
		s, err := disk.OpenStore(disk.StoreOptions{
			Backend: disk.BackendFile, Path: filepath.Join(t.TempDir(), "img"), Capacity: 8 << 20})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}},
	{"mmap", func(t *testing.T) disk.Store {
		s, err := disk.OpenStore(disk.StoreOptions{
			Backend: disk.BackendMmap, Path: filepath.Join(t.TempDir(), "img"), Capacity: 8 << 20})
		if err != nil {
			t.Skipf("mmap store unavailable: %v", err)
		}
		return s
	}},
}

// TestStoreConformance runs the exported store battery over every
// backend — the acceptance gate for the pluggable-store API.
func TestStoreConformance(t *testing.T) {
	for _, b := range storeBackends {
		t.Run(b.name, func(t *testing.T) {
			fstest.RunStoreConformance(t, b.open)
		})
	}
}

// TestOpenStoreValidation pins the options API's error behaviour.
func TestOpenStoreValidation(t *testing.T) {
	if _, err := disk.OpenStore(disk.StoreOptions{Backend: disk.BackendMem, Capacity: 0}); err == nil {
		t.Error("zero-capacity OpenStore succeeded")
	}
	if _, err := disk.OpenStore(disk.StoreOptions{Backend: disk.BackendFile, Capacity: 1 << 20}); err == nil {
		t.Error("file backend without a path succeeded")
	}
	if _, err := disk.OpenStore(disk.StoreOptions{Backend: disk.BackendMmap, Capacity: 1 << 20}); err == nil {
		t.Error("mmap backend without a path succeeded")
	}
	if _, err := disk.OpenStore(disk.StoreOptions{Backend: disk.StoreBackend(99), Capacity: 1 << 20}); err == nil {
		t.Error("unknown backend succeeded")
	}
}

// TestParseStoreBackend pins the name round-trip tools rely on.
func TestParseStoreBackend(t *testing.T) {
	for _, b := range []disk.StoreBackend{disk.BackendMem, disk.BackendCow, disk.BackendFile, disk.BackendMmap} {
		got, ok := disk.ParseStoreBackend(b.String())
		if !ok || got != b {
			t.Errorf("ParseStoreBackend(%q) = %v, %v", b.String(), got, ok)
		}
	}
	if _, ok := disk.ParseStoreBackend("floppy"); ok {
		t.Error("ParseStoreBackend accepted an unknown name")
	}
}

// TestMmapStorePersistsAcrossReopen mirrors the FileStore persistence
// test for the mapped backend.
func TestMmapStorePersistsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "img")
	s, err := disk.OpenMmapStore(path, 1<<20)
	if err != nil {
		t.Skipf("mmap store unavailable: %v", err)
	}
	want := bytes.Repeat([]byte{9}, 2048)
	if err := s.WriteAt(want, 8192); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := disk.OpenMmapStore(path, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := make([]byte, len(want))
	if err := s2.ReadAt(got, 8192); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("data did not persist across mmap reopen")
	}
}

// TestCowStoreSnapshotSharing pins the O(1)-ness the crash sweep
// depends on: a snapshot shares chunk storage with the live image
// until a write diverges them.
func TestCowStoreSnapshotSharing(t *testing.T) {
	s := disk.NewCowMemStore(1 << 22)
	defer s.Close()
	p := bytes.Repeat([]byte{7}, 1<<16)
	if err := s.WriteAt(p, 0); err != nil {
		t.Fatal(err)
	}
	before := s.AllocatedBytes()
	sn, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got := s.AllocatedBytes(); got != before {
		t.Fatalf("snapshot changed live allocation %d -> %d; snapshots must share chunks", before, got)
	}
	// Overwrite one sector: exactly one chunk is cloned, and the
	// snapshot still restores the original bytes.
	if err := s.WriteAt(make([]byte, 512), 0); err != nil {
		t.Fatal(err)
	}
	if err := sn.Restore(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 512)
	if err := s.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, p[:512]) {
		t.Fatal("restore did not bring back the pre-snapshot bytes")
	}
	if err := sn.Release(); err != nil {
		t.Fatal(err)
	}
}
