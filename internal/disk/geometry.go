package disk

import "fmt"

// Geometry describes the physical layout of a simulated disk. Only the
// mapping from sector number to cylinder matters for the time model
// (seek distance is measured in cylinders), but the full geometry keeps
// the model honest and lets experiments vary track sizes.
type Geometry struct {
	// SectorsPerTrack is the number of 512-byte sectors on one track.
	SectorsPerTrack int
	// TracksPerCylinder is the number of recording surfaces.
	TracksPerCylinder int
	// Cylinders is the number of cylinder positions of the head
	// assembly.
	Cylinders int
}

// Validate reports whether the geometry is usable.
func (g Geometry) Validate() error {
	if g.SectorsPerTrack <= 0 || g.TracksPerCylinder <= 0 || g.Cylinders <= 0 {
		return fmt.Errorf("disk: invalid geometry %+v", g)
	}
	return nil
}

// SectorsPerCylinder returns the number of sectors under the heads at
// one cylinder position.
func (g Geometry) SectorsPerCylinder() int64 {
	return int64(g.SectorsPerTrack) * int64(g.TracksPerCylinder)
}

// TotalSectors returns the disk capacity in sectors.
func (g Geometry) TotalSectors() int64 {
	return g.SectorsPerCylinder() * int64(g.Cylinders)
}

// TotalBytes returns the disk capacity in bytes.
func (g Geometry) TotalBytes() int64 {
	return g.TotalSectors() * SectorSize
}

// CylinderOf returns the cylinder containing the given sector.
func (g Geometry) CylinderOf(sector int64) int {
	return int(sector / g.SectorsPerCylinder())
}

// GeometryForCapacity builds a WREN-IV-like geometry (42 sectors per
// track, 9 tracks per cylinder) with enough cylinders to hold at least
// capacity bytes. The returned geometry's TotalBytes is >= capacity.
func GeometryForCapacity(capacity int64) Geometry {
	if capacity <= 0 {
		panic(fmt.Sprintf("disk: non-positive capacity %d", capacity))
	}
	g := Geometry{SectorsPerTrack: 42, TracksPerCylinder: 9}
	cylBytes := g.SectorsPerCylinder() * SectorSize
	g.Cylinders = int((capacity + cylBytes - 1) / cylBytes)
	return g
}
