package disk

import (
	"testing"

	"lfs/internal/sim"
)

// queueTestDisk builds a small memory disk for scheduler tests.
func queueTestDisk(t *testing.T) *Disk {
	t.Helper()
	return NewMem(32<<20, sim.NewClock())
}

// scatter returns sector addresses spread across the disk, far apart
// in cylinders, in a deliberately bad (alternating extremes) order.
func scatter(d *Disk, n int) []int64 {
	total := d.Sectors()
	out := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		var s int64
		if i%2 == 0 {
			s = int64(i/2+1) * 64
		} else {
			s = total - int64(i/2+1)*64
		}
		out = append(out, s)
	}
	return out
}

// TestFCFSMatchesSerialTimeline verifies the queue is invisible under
// FCFS: issuing asynchronous writes through the queue produces the
// same busy horizon, statistics, and event stream as the pre-queue
// model (arrival order is service order).
func TestFCFSMatchesSerialTimeline(t *testing.T) {
	buf := make([]byte, 2*SectorSize)
	run := func(sync bool) (sim.Time, Stats) {
		d := queueTestDisk(t)
		for _, s := range scatter(d, 8) {
			if err := d.WriteSectors(s, buf, sync, CauseOther, "q"); err != nil {
				t.Fatal(err)
			}
		}
		end := d.Drain()
		return end, d.Stats()
	}
	asyncEnd, asyncStats := run(false)
	syncEnd, syncStats := run(true)
	if asyncEnd != syncEnd {
		t.Errorf("FCFS async end %v != serial sync end %v", asyncEnd, syncEnd)
	}
	if asyncStats.BusyTime != syncStats.BusyTime {
		t.Errorf("FCFS async busy %v != serial busy %v", asyncStats.BusyTime, syncStats.BusyTime)
	}
	if asyncStats.Seeks != syncStats.Seeks {
		t.Errorf("FCFS async seeks %d != serial seeks %d", asyncStats.Seeks, syncStats.Seeks)
	}
}

// TestSSTFReducesSeekTime verifies SSTF reorders a scattered batch
// into a cheaper schedule than FCFS while doing the same transfers.
func TestSSTFReducesSeekTime(t *testing.T) {
	buf := make([]byte, 2*SectorSize)
	run := func(p SchedPolicy) Stats {
		d := queueTestDisk(t)
		d.SetScheduler(p)
		for _, s := range scatter(d, 16) {
			if err := d.WriteSectors(s, buf, false, CauseOther, "q"); err != nil {
				t.Fatal(err)
			}
		}
		if p == SSTF && d.QueueDepth() != 16 {
			t.Fatalf("SSTF queued %d requests, want 16", d.QueueDepth())
		}
		d.Drain()
		if d.QueueDepth() != 0 {
			t.Fatalf("queue not drained: %d left", d.QueueDepth())
		}
		return d.Stats()
	}
	fcfs := run(FCFS)
	sstf := run(SSTF)
	if sstf.SectorsWritten != fcfs.SectorsWritten || sstf.Writes != fcfs.Writes {
		t.Fatalf("transfer volume differs: sstf %+v fcfs %+v", sstf, fcfs)
	}
	if sstf.SeekCylinders >= fcfs.SeekCylinders {
		t.Errorf("SSTF seek distance %d not below FCFS %d", sstf.SeekCylinders, fcfs.SeekCylinders)
	}
	if sstf.BusyTime >= fcfs.BusyTime {
		t.Errorf("SSTF busy %v not below FCFS %v", sstf.BusyTime, fcfs.BusyTime)
	}
}

// TestQueueBarriers verifies a blocking read dispatches queued writes
// first, and that Stats/BusyUntil observe queued requests.
func TestQueueBarriers(t *testing.T) {
	d := queueTestDisk(t)
	d.SetScheduler(SSTF)
	buf := make([]byte, 2*SectorSize)
	for _, s := range scatter(d, 4) {
		if err := d.WriteSectors(s, buf, false, CauseOther, "q"); err != nil {
			t.Fatal(err)
		}
	}
	if d.MaxQueueDepth() != 4 {
		t.Errorf("max queue depth %d, want 4", d.MaxQueueDepth())
	}
	if got := d.Stats().Writes; got != 4 {
		t.Errorf("Stats barrier saw %d writes, want 4", got)
	}
	for _, s := range scatter(d, 4) {
		if err := d.WriteSectors(s, buf, false, CauseOther, "q"); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.ReadSectors(0, buf, CauseOther, "barrier read"); err != nil {
		t.Fatal(err)
	}
	if d.QueueDepth() != 0 {
		t.Errorf("blocking read left %d queued requests", d.QueueDepth())
	}
	if got := d.Stats().Writes; got != 8 {
		t.Errorf("writes after read barrier %d, want 8", got)
	}
}

// TestSSTFDeterministic runs the same SSTF schedule twice and demands
// identical service order via the event trace.
func TestSSTFDeterministic(t *testing.T) {
	buf := make([]byte, 2*SectorSize)
	run := func() []Event {
		d := queueTestDisk(t)
		d.SetScheduler(SSTF)
		var evs []Event
		d.SetTracer(tracerFunc(func(ev Event) { evs = append(evs, ev) }))
		for _, s := range scatter(d, 12) {
			if err := d.WriteSectors(s, buf, false, CauseOther, "q"); err != nil {
				t.Fatal(err)
			}
		}
		d.Drain()
		return evs
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestClientLabel verifies SetClient stamps events.
func TestClientLabel(t *testing.T) {
	d := queueTestDisk(t)
	var evs []Event
	d.SetTracer(tracerFunc(func(ev Event) { evs = append(evs, ev) }))
	buf := make([]byte, SectorSize)
	d.SetClient(7)
	if err := d.WriteSectors(0, buf, false, CauseOther, "w"); err != nil {
		t.Fatal(err)
	}
	d.SetClient(3)
	if err := d.ReadSectors(0, buf, CauseOther, "r"); err != nil {
		t.Fatal(err)
	}
	d.Drain()
	if len(evs) != 2 || evs[0].Client != 7 || evs[1].Client != 3 {
		t.Errorf("client labels wrong: %+v", evs)
	}
}
