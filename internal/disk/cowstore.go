package disk

import "fmt"

// cowChunkSize is the copy-on-write granule of CowMemStore. Smaller
// than MemStore's lazy-allocation granule because it bounds the bytes
// copied when a write lands on a chunk a snapshot still references:
// a snapshot-per-write recording pass copies at most one chunk per
// touched boundary, not a whole megabyte.
const cowChunkSize = 64 << 10

// cowChunk is one copy-on-write granule. Once shared (referenced by a
// snapshot or by a restored image) a chunk's data is immutable forever;
// writers replace the map entry with a fresh private clone instead.
type cowChunk struct {
	data   []byte
	shared bool
}

// CowMemStore is a copy-on-write in-memory Store with O(1) snapshots:
// Snapshot copies only the chunk table (pointers, not data) and marks
// every chunk immutable; later writes clone just the chunks they
// touch. Restoring a snapshot swaps the chunk table back, so rewinding
// a multi-megabyte image costs microseconds — the property that turns
// the crash-point sweep from O(points × writes) into O(points).
//
// Like every Store, it is meant for use by a single goroutine.
type CowMemStore struct {
	size   int64
	chunks map[int64]*cowChunk // chunk index -> chunk; nil after Close
}

// NewCowMemStore returns an empty copy-on-write store of the given
// capacity.
func NewCowMemStore(size int64) *CowMemStore {
	if size <= 0 {
		panic(fmt.Sprintf("disk: non-positive CowMemStore size %d", size))
	}
	return &CowMemStore{size: size, chunks: make(map[int64]*cowChunk)}
}

// Size returns the store capacity in bytes.
func (s *CowMemStore) Size() int64 { return s.size }

// Sync implements Store; memory is always "stable" here.
func (s *CowMemStore) Sync() error {
	if s.chunks == nil {
		return fmt.Errorf("disk: sync: %w", ErrClosed)
	}
	return nil
}

// Close releases the chunk table. Outstanding snapshots keep their own
// references and stay readable for Restore errors only. Close is
// idempotent.
func (s *CowMemStore) Close() error {
	s.chunks = nil
	return nil
}

func (s *CowMemStore) checkRange(p []byte, off int64) error {
	if err := checkStoreRange(p, off, s.size); err != nil {
		return err
	}
	if s.chunks == nil {
		return fmt.Errorf("disk: %w", ErrClosed)
	}
	return nil
}

// ReadAt fills p from the store; unallocated chunks read as zeros.
func (s *CowMemStore) ReadAt(p []byte, off int64) error {
	if err := s.checkRange(p, off); err != nil {
		return err
	}
	for len(p) > 0 {
		ci := off / cowChunkSize
		co := off % cowChunkSize
		n := cowChunkSize - co
		if n > int64(len(p)) {
			n = int64(len(p))
		}
		if c, ok := s.chunks[ci]; ok {
			copy(p[:n], c.data[co:co+n])
		} else {
			for i := range p[:n] {
				p[i] = 0
			}
		}
		p = p[n:]
		off += n
	}
	return nil
}

// WriteAt stores p at off. Chunks still referenced by a snapshot are
// cloned before the write lands (copy-on-write).
func (s *CowMemStore) WriteAt(p []byte, off int64) error {
	if err := s.checkRange(p, off); err != nil {
		return err
	}
	for len(p) > 0 {
		ci := off / cowChunkSize
		co := off % cowChunkSize
		n := cowChunkSize - co
		if n > int64(len(p)) {
			n = int64(len(p))
		}
		c, ok := s.chunks[ci]
		switch {
		case !ok:
			c = &cowChunk{data: make([]byte, cowChunkSize)}
			s.chunks[ci] = c
		case c.shared:
			clone := &cowChunk{data: make([]byte, cowChunkSize)}
			copy(clone.data, c.data)
			c = clone
			s.chunks[ci] = c
		}
		copy(c.data[co:co+n], p[:n])
		p = p[n:]
		off += n
	}
	return nil
}

// AllocatedBytes implements Allocator: bytes of chunk storage
// reachable from the live image (shared chunks count once; chunk
// versions held only by snapshots are not charged to the store).
func (s *CowMemStore) AllocatedBytes() int64 {
	return int64(len(s.chunks)) * cowChunkSize
}

// Snapshot implements Snapshotter: an O(chunk-table) copy that shares
// every data chunk with the live image.
func (s *CowMemStore) Snapshot() (Snapshot, error) {
	if s.chunks == nil {
		return nil, fmt.Errorf("disk: snapshot: %w", ErrClosed)
	}
	snap := make(map[int64]*cowChunk, len(s.chunks))
	for i, c := range s.chunks {
		c.shared = true
		snap[i] = c
	}
	return &memSnapshot{store: s, chunks: snap}, nil
}

// memSnapshot is a point-in-time image of a CowMemStore. Its chunks
// are immutable (shared), so it survives any number of later writes
// and restores.
type memSnapshot struct {
	store  *CowMemStore
	chunks map[int64]*cowChunk // nil after Release
}

// Restore implements Snapshot: the store's chunk table becomes a fresh
// copy of the snapshot's, all chunks still shared so the snapshot can
// be restored again.
func (sn *memSnapshot) Restore() error {
	if sn.chunks == nil {
		return fmt.Errorf("disk: restore of a released snapshot")
	}
	if sn.store.chunks == nil {
		return fmt.Errorf("disk: restore: %w", ErrClosed)
	}
	m := make(map[int64]*cowChunk, len(sn.chunks))
	for i, c := range sn.chunks {
		m[i] = c
	}
	sn.store.chunks = m
	return nil
}

// Release implements Snapshot. Releasing is idempotent.
func (sn *memSnapshot) Release() error {
	sn.chunks = nil
	return nil
}
