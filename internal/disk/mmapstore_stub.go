//go:build !unix

package disk

import "fmt"

// MmapStore is unavailable on platforms without syscall.Mmap; the
// stub keeps OpenStore's backend space identical everywhere.
type MmapStore struct{ unsupported }

// unsupported fills the Store interface with failing methods for
// platform stubs.
type unsupported struct{}

func (unsupported) ReadAt([]byte, int64) error  { return errMmapUnsupported }
func (unsupported) WriteAt([]byte, int64) error { return errMmapUnsupported }
func (unsupported) Sync() error                 { return errMmapUnsupported }
func (unsupported) Size() int64                 { return 0 }
func (unsupported) Close() error                { return nil }

var errMmapUnsupported = fmt.Errorf("disk: mmap store is not supported on this platform")

// OpenMmapStore always fails on platforms without syscall.Mmap.
func OpenMmapStore(path string, size int64) (*MmapStore, error) {
	return nil, errMmapUnsupported
}
