package disk

import "lfs/internal/sim"

// SchedPolicy selects the order queued asynchronous writes are
// dispatched in. With one outstanding request at a time the policy is
// irrelevant; it matters once callers issue several asynchronous
// requests before the next blocking operation — the multi-client
// server layer does exactly that.
type SchedPolicy int

const (
	// FCFS serves requests in arrival order. This reproduces the
	// pre-queue behaviour exactly (arrival order is service order),
	// so it is the default.
	FCFS SchedPolicy = iota
	// SSTF (shortest seek time first) serves the queued request whose
	// cylinder is nearest the head, the classic elevator-adjacent
	// policy. It reduces seek time for scattered write-back traffic
	// (FFS's delayed writes); LFS rarely benefits because segment
	// writes are sequential already.
	SSTF
)

// String names the policy.
func (p SchedPolicy) String() string {
	if p == SSTF {
		return "sstf"
	}
	return "fcfs"
}

// queuedReq is one asynchronous write whose service time has not been
// accounted yet. The data already reached the backing store at issue
// time (contents-at-issue semantics keep crash and fault injection
// unchanged); the queue only defers the time and statistics model.
type queuedReq struct {
	seq    uint64
	issue  sim.Time
	sector int64
	nbytes int
	cause  IOCause
	label  string
	client int
	shard  int
}

// SetScheduler selects the request scheduling policy. Switching with
// requests queued dispatches them under the old policy first.
func (d *Disk) SetScheduler(p SchedPolicy) {
	d.dispatchQueued()
	d.sched = p
}

// Scheduler returns the active scheduling policy.
func (d *Disk) Scheduler() SchedPolicy { return d.sched }

// QueueDepth returns the number of asynchronous requests whose
// service has not been dispatched yet.
func (d *Disk) QueueDepth() int { return len(d.queue) }

// MaxQueueDepth returns the high-water mark of the request queue.
func (d *Disk) MaxQueueDepth() int { return d.maxQueueDepth }

// SetClient labels subsequent requests with the issuing client ID
// (0 = unattributed); traces carry it so multi-client runs can
// decompose disk traffic per client.
func (d *Disk) SetClient(id int) { d.client = id }

// Client returns the current client label.
func (d *Disk) Client() int { return d.client }

// SetShard labels subsequent requests with the owning shard's 1-based
// ID (0 = unsharded); the shard router sets it once per shard at
// mount so traces decompose disk traffic per log.
func (d *Disk) SetShard(id int) { d.shard = id }

// Shard returns the current shard label.
func (d *Disk) Shard() int { return d.shard }

// enqueue records an asynchronous write for later dispatch. Under
// FCFS the queue drains immediately — arrival order is service order,
// so there is nothing to reorder and the pre-queue timeline is
// preserved bit for bit. Under SSTF requests accumulate until the
// next barrier (a blocking request, Drain, BusyUntil, or Stats) so
// the scheduler has a batch to reorder.
func (d *Disk) enqueue(sector int64, nbytes int, cause IOCause, label string) {
	d.qseq++
	d.queue = append(d.queue, queuedReq{
		seq: d.qseq, issue: d.clock.Now(), sector: sector, nbytes: nbytes,
		cause: cause, label: label, client: d.client, shard: d.shard,
	})
	if len(d.queue) > d.maxQueueDepth {
		d.maxQueueDepth = len(d.queue)
	}
	if d.sched == FCFS {
		d.dispatchQueued()
	}
}

// pickNext chooses the queue index to serve next under the active
// policy. SSTF picks the request with the shortest seek from the
// current head position, breaking ties by arrival order so the
// schedule stays deterministic.
func (d *Disk) pickNext() int {
	if d.sched == FCFS || len(d.queue) == 1 {
		return 0
	}
	head := 0
	if d.nextSector >= 0 {
		head = d.geom.CylinderOf(d.nextSector)
	}
	// cost is the seek distance in cylinders, with -1 for a request
	// continuing exactly at the head position (free of both seek and
	// rotation, so preferred over an equal-cylinder non-sequential
	// one). Ties go to the earliest arrival (strict <), keeping the
	// schedule deterministic.
	cost := func(req queuedReq) int {
		if req.sector == d.nextSector {
			return -1
		}
		dist := d.geom.CylinderOf(req.sector) - head
		if dist < 0 {
			return -dist
		}
		return dist
	}
	best, bestCost := 0, cost(d.queue[0])
	for i := 1; i < len(d.queue); i++ {
		if c := cost(d.queue[i]); c < bestCost {
			best, bestCost = i, c
		}
	}
	return best
}

// dispatchQueued accounts service time for every queued request in
// policy order. Every queued request was issued at or before the
// current simulated time, so the whole batch is eligible; the disk
// serves one request at a time, choosing the next by policy each time
// the arm comes free.
func (d *Disk) dispatchQueued() {
	for len(d.queue) > 0 {
		i := d.pickNext()
		req := d.queue[i]
		d.queue = append(d.queue[:i], d.queue[i+1:]...)
		start := sim.MaxTime(req.issue, d.busyUntil)
		dur, seq, seekCyl := d.service(req.sector, req.nbytes)
		d.busyUntil = start.Add(dur)
		d.stats.Writes++
		d.stats.SectorsWritten += int64(req.nbytes / SectorSize)
		d.stats.ByCause[req.cause].Requests++
		d.stats.ByCause[req.cause].Sectors += int64(req.nbytes / SectorSize)
		d.stats.ByCause[req.cause].Busy += dur
		d.trace(Event{Time: start, Kind: OpWrite, Sector: req.sector,
			Sectors: req.nbytes / SectorSize, Sync: false, Sequential: seq,
			SeekCylinders: seekCyl, Service: dur, Wait: start.Sub(req.issue),
			Cause: req.cause, Label: req.label, Client: req.client, Shard: req.shard})
	}
}
