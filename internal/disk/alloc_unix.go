//go:build unix

package disk

import (
	"os"
	"syscall"
)

// fileAllocatedBytes returns the bytes of file-system blocks the file
// actually occupies — holes punched or never written are excluded —
// and whether the platform reported them. st_blocks is counted in
// 512-byte units regardless of the file system's block size.
func fileAllocatedBytes(f *os.File) (int64, bool) {
	info, err := f.Stat()
	if err != nil {
		return 0, false
	}
	st, ok := info.Sys().(*syscall.Stat_t)
	if !ok {
		return 0, false
	}
	return st.Blocks * 512, true
}
