package disk

import (
	"bytes"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestMemStoreReadsZeroWhenUnwritten(t *testing.T) {
	s := NewMemStore(1 << 22)
	buf := make([]byte, 4096)
	for i := range buf {
		buf[i] = 0xFF
	}
	if err := s.ReadAt(buf, 12345*1); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("byte %d = %#x, want 0", i, b)
		}
	}
}

func TestMemStoreRoundTrip(t *testing.T) {
	s := NewMemStore(1 << 22)
	want := bytes.Repeat([]byte{0xAB, 0xCD}, 4096)
	// Straddle a chunk boundary on purpose.
	off := int64(memChunkSize - 1000)
	if err := s.WriteAt(want, off); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	if err := s.ReadAt(got, off); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("round trip mismatch across chunk boundary")
	}
}

func TestMemStoreLazyAllocation(t *testing.T) {
	s := NewMemStore(1 << 30) // 1 GB capacity
	if s.AllocatedBytes() != 0 {
		t.Fatalf("fresh store allocated %d bytes", s.AllocatedBytes())
	}
	if err := s.WriteAt(make([]byte, 512), 0); err != nil {
		t.Fatal(err)
	}
	if s.AllocatedBytes() != memChunkSize {
		t.Fatalf("one-sector write allocated %d bytes, want one chunk (%d)", s.AllocatedBytes(), memChunkSize)
	}
}

func TestMemStoreBounds(t *testing.T) {
	s := NewMemStore(4096)
	if err := s.WriteAt(make([]byte, 512), 4096-256); err == nil {
		t.Fatal("out-of-range write succeeded")
	}
	if err := s.ReadAt(make([]byte, 512), -1); err == nil {
		t.Fatal("negative-offset read succeeded")
	}
}

func TestMemStoreClosed(t *testing.T) {
	s := NewMemStore(4096)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.ReadAt(make([]byte, 512), 0); err == nil {
		t.Fatal("read after Close succeeded")
	}
}

func TestMemStoreInvalidSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-size store did not panic")
		}
	}()
	NewMemStore(0)
}

// Property: for any set of writes, reading back each write's range
// returns the last data written there. We model the store against a
// plain byte slice.
func TestMemStoreMatchesFlatArrayProperty(t *testing.T) {
	const size = 1 << 21 // two chunks
	type op struct {
		Off  uint32
		Data []byte
	}
	f := func(ops []op) bool {
		s := NewMemStore(size)
		model := make([]byte, size)
		for _, o := range ops {
			off := int64(o.Off) % (size - 1)
			data := o.Data
			if int64(len(data)) > size-off {
				data = data[:size-off]
			}
			if len(data) == 0 {
				continue
			}
			if err := s.WriteAt(data, off); err != nil {
				return false
			}
			copy(model[off:], data)
		}
		got := make([]byte, size)
		if err := s.ReadAt(got, 0); err != nil {
			return false
		}
		return bytes.Equal(got, model)
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestFileStorePersistsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "img")
	s, err := OpenFileStore(path, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{7}, 1024)
	if err := s.WriteAt(want, 4096); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenFileStore(path, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := make([]byte, 1024)
	if err := s2.ReadAt(got, 4096); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("data did not persist across reopen")
	}
	if s2.Size() != 1<<20 {
		t.Fatalf("Size = %d", s2.Size())
	}
}

func TestFileStoreBounds(t *testing.T) {
	path := filepath.Join(t.TempDir(), "img")
	s, err := OpenFileStore(path, 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.WriteAt(make([]byte, 8192), 0); err == nil {
		t.Fatal("oversized write succeeded")
	}
	if err := s.ReadAt(make([]byte, 512), 4096); err == nil {
		t.Fatal("out-of-range read succeeded")
	}
}

func TestFileStoreInvalidSize(t *testing.T) {
	if _, err := OpenFileStore(filepath.Join(t.TempDir(), "img"), 0); err == nil {
		t.Fatal("zero-size FileStore succeeded")
	}
}
