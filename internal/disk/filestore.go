package disk

import (
	"fmt"
	"io"
	"os"
	"sync"
)

// FileStore is a Store backed by a sparse file on the host file
// system, used by the command-line tools (mklfs, lfsck, lfsdump) to
// operate on disk images that persist between runs. The image is
// created with Truncate, so unwritten regions are holes: a freshly
// formatted multi-gigabyte volume occupies a few file-system blocks,
// and AllocatedBytes reports the real (hole-aware) footprint.
type FileStore struct {
	mu sync.Mutex
	// f is the image file handle; guarded by mu (tools may scan an
	// image while a mounted FS flushes to it).
	f *os.File
	// closed reports whether Close has run; guarded by mu.
	closed bool
	// size is fixed at open and immutable thereafter.
	size int64
}

// OpenFileStore opens (or creates) path as a disk image of the given
// capacity. If the file already exists and is at least size bytes, its
// contents are preserved; otherwise it is extended with zeros (holes).
//
// Deprecated: prefer OpenStore(StoreOptions{Backend: BackendFile,
// Path: path, Capacity: size}), which covers every backend behind one
// options API.
func OpenFileStore(path string, size int64) (*FileStore, error) {
	if size <= 0 {
		return nil, fmt.Errorf("disk: non-positive FileStore size %d: %w", size, ErrOutOfRange)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("disk: open image: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("disk: stat image %s: %w", path, err)
	}
	if info.Size() < size {
		if err := f.Truncate(size); err != nil {
			f.Close()
			return nil, fmt.Errorf("disk: extend image %s to %d bytes: %w", path, size, err)
		}
	}
	return &FileStore{f: f, size: size}, nil
}

// Size returns the store capacity in bytes.
func (s *FileStore) Size() int64 { return s.size }

// ReadAt fills p from the image file.
func (s *FileStore) ReadAt(p []byte, off int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := checkStoreRange(p, off, s.size); err != nil {
		return err
	}
	if s.closed {
		return fmt.Errorf("disk: %w", ErrClosed)
	}
	if len(p) == 0 {
		return nil
	}
	_, err := s.f.ReadAt(p, off)
	if err == io.EOF {
		err = nil // sparse tail reads as zeros via Truncate
	}
	if err != nil {
		return fmt.Errorf("disk: read image at %d: %w", off, err)
	}
	return nil
}

// WriteAt stores p in the image file.
func (s *FileStore) WriteAt(p []byte, off int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := checkStoreRange(p, off, s.size); err != nil {
		return err
	}
	if s.closed {
		return fmt.Errorf("disk: %w", ErrClosed)
	}
	if len(p) == 0 {
		return nil
	}
	if _, err := s.f.WriteAt(p, off); err != nil {
		return fmt.Errorf("disk: write image at %d: %w", off, err)
	}
	return nil
}

// Sync flushes the image file to stable storage.
func (s *FileStore) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("disk: sync: %w", ErrClosed)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("disk: sync image: %w", err)
	}
	return nil
}

// AllocatedBytes implements Allocator: the blocks the image file
// actually occupies (holes excluded) where the platform reports them,
// falling back to the nominal size elsewhere.
func (s *FileStore) AllocatedBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0
	}
	if n, ok := fileAllocatedBytes(s.f); ok {
		return n
	}
	return s.size
}

// Close closes the image file. It takes the lock so a close cannot
// race a ReadAt/WriteAt in flight from another goroutine (lfslint's
// lockcheck pass caught the unlocked access). Close is idempotent.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("disk: close image: %w", err)
	}
	return nil
}
