package disk

import (
	"fmt"

	"lfs/internal/sim"
)

// OpKind distinguishes reads from writes in statistics and traces.
type OpKind int

// The two request kinds.
const (
	OpRead OpKind = iota
	OpWrite
)

// String returns "read" or "write".
func (k OpKind) String() string {
	if k == OpRead {
		return "read"
	}
	return "write"
}

// IOCause attributes a disk request to the file-system activity that
// issued it. The paper's evaluation (Figures 3-5) decomposes disk time
// into exactly these categories — log writes vs cleaning vs checkpoints
// vs read misses — so every request names its cause and the disk keeps
// an exact per-cause busy-time decomposition in Stats.ByCause.
type IOCause uint8

// The request causes. CauseOther is the zero value, used by callers
// outside the two file systems (raw device tests, tools that bypass
// the mounted FS); everything the file systems issue is named.
const (
	// CauseOther is unattributed traffic.
	CauseOther IOCause = iota
	// CauseLogAppend is an LFS segment write of new data (the normal
	// asynchronous log transfer, §4.1).
	CauseLogAppend
	// CauseCleanerRead is the cleaner's phase-one segment read
	// (§4.3.2).
	CauseCleanerRead
	// CauseCleanerWrite is a segment write issued while the cleaner
	// is relocating live blocks (§4.3.2 phase two).
	CauseCleanerWrite
	// CauseCheckpoint is a checkpoint-region write (§4.4.1).
	CauseCheckpoint
	// CauseInodeMap is inode and inode-map traffic: reading inodes
	// through the map and loading map blocks at mount (§4.2.1).
	CauseInodeMap
	// CauseReadMiss is a file, directory, or indirect block read
	// serving a cache miss.
	CauseReadMiss
	// CauseSyncWrite is an FFS synchronous metadata write (the
	// creat/unlink inode and directory writes of Figure 1).
	CauseSyncWrite
	// CauseWriteback is an FFS delayed asynchronous write-back.
	CauseWriteback
	// CauseRecovery is mount-time recovery traffic: superblock and
	// checkpoint-region reads plus roll-forward log reads (§4.4).
	CauseRecovery
	// CauseFormat is mkfs initialisation.
	CauseFormat
	// CauseTool is offline tool traffic (lfsdump, fsck image scans).
	CauseTool

	// NumCauses bounds the cause space; Stats.ByCause is indexed by
	// cause.
	NumCauses
)

// causeNames indexes IOCause.String.
var causeNames = [NumCauses]string{
	"other", "log-append", "cleaner-read", "cleaner-write", "checkpoint",
	"inode-map", "read-miss", "sync-write", "writeback", "recovery",
	"format", "tool",
}

// String returns the cause's stable name (used in traces and JSONL
// exports; tools parse these).
func (c IOCause) String() string {
	if c >= NumCauses {
		return fmt.Sprintf("cause(%d)", int(c))
	}
	return causeNames[c]
}

// ParseIOCause maps a cause name back to its value, for trace readers.
func ParseIOCause(s string) (IOCause, bool) {
	for i, n := range causeNames {
		if n == s {
			return IOCause(i), true
		}
	}
	return CauseOther, false
}

// Event describes one disk request, for tracing (Figures 1 and 2 of
// the paper are rendered from these events).
type Event struct {
	// Time is the simulated time the request was issued.
	Time sim.Time
	// Kind is read or write.
	Kind OpKind
	// Sector is the first sector of the request.
	Sector int64
	// Sectors is the request length in sectors.
	Sectors int
	// Sync reports whether the issuing process blocked on the
	// request (true for all reads).
	Sync bool
	// Sequential reports whether the request continued exactly
	// where the previous one ended (no seek, no rotational delay).
	Sequential bool
	// SeekCylinders is the head movement the request paid for.
	SeekCylinders int
	// Service is the modelled service time of the request.
	Service sim.Duration
	// Wait is the request's queue wait: the time between issue and
	// the arm starting service (Time), spent behind earlier
	// transfers. Wait + Service is the request's life end to end;
	// Service alone still sums to Stats.BusyTime (waiting does not
	// occupy the arm).
	Wait sim.Duration
	// Cause attributes the request to the issuing activity.
	Cause IOCause
	// Label is the file-system-provided annotation ("inode",
	// "dir data", "segment", ...).
	Label string
	// Client is the issuing client's ID in multi-client runs
	// (SetClient); 0 when unattributed.
	Client int
	// Shard is the owning shard's 1-based ID in sharded multi-log
	// runs (SetShard); 0 when the disk belongs to an unsharded
	// instance.
	Shard int
}

// Tracer receives every disk request when attached via SetTracer.
type Tracer interface {
	Record(Event)
}

// Waiter receives the latency decomposition of every *blocking*
// request — the ones that advance the issuing caller's clock — split
// into queue wait (behind earlier queued transfers) and arm service
// time. The file systems feed these into per-operation phase
// attribution (internal/obs); queue+service equals the clock advance
// the caller observed, to the tick. Asynchronous writes never invoke
// the waiter: their wait is the disk's, not any caller's.
type Waiter interface {
	DiskWait(cause IOCause, queue, service sim.Duration)
}

// CauseStats accumulates per-cause request counters. The Busy fields
// across all causes sum exactly to Stats.BusyTime: every request is
// tagged with exactly one cause.
type CauseStats struct {
	// Requests counts disk requests attributed to the cause.
	Requests int64
	// Sectors counts sectors transferred for the cause.
	Sectors int64
	// Busy sums modelled service time charged to the cause.
	Busy sim.Duration
}

// Stats accumulates disk activity counters.
type Stats struct {
	// Reads and Writes count requests.
	Reads, Writes int64
	// SyncWrites counts writes the issuing process blocked on.
	SyncWrites int64
	// SectorsRead and SectorsWritten count transferred sectors.
	SectorsRead, SectorsWritten int64
	// Seeks counts requests that paid head movement or rotation
	// (i.e. non-sequential requests).
	Seeks int64
	// SeekCylinders sums head movement distance.
	SeekCylinders int64
	// BusyTime sums service time across all requests.
	BusyTime sim.Duration
	// ByCause decomposes the traffic by issuing activity; the Busy
	// fields sum exactly to BusyTime.
	ByCause [NumCauses]CauseStats
}

// BytesRead returns the read volume in bytes.
func (s Stats) BytesRead() int64 { return s.SectorsRead * SectorSize }

// BytesWritten returns the write volume in bytes.
func (s Stats) BytesWritten() int64 { return s.SectorsWritten * SectorSize }

// Sub returns the difference s - o, for measuring an interval between
// two snapshots.
func (s Stats) Sub(o Stats) Stats {
	out := Stats{
		Reads:          s.Reads - o.Reads,
		Writes:         s.Writes - o.Writes,
		SyncWrites:     s.SyncWrites - o.SyncWrites,
		SectorsRead:    s.SectorsRead - o.SectorsRead,
		SectorsWritten: s.SectorsWritten - o.SectorsWritten,
		Seeks:          s.Seeks - o.Seeks,
		SeekCylinders:  s.SeekCylinders - o.SeekCylinders,
		BusyTime:       s.BusyTime - o.BusyTime,
	}
	for c := range s.ByCause {
		out.ByCause[c] = CauseStats{
			Requests: s.ByCause[c].Requests - o.ByCause[c].Requests,
			Sectors:  s.ByCause[c].Sectors - o.ByCause[c].Sectors,
			Busy:     s.ByCause[c].Busy - o.ByCause[c].Busy,
		}
	}
	return out
}

// AttributedBusy returns the busy time attributed to named causes
// (everything except CauseOther) and the total busy time.
func (s Stats) AttributedBusy() (named, total sim.Duration) {
	for c := IOCause(0); c < NumCauses; c++ {
		if c != CauseOther {
			named += s.ByCause[c].Busy
		}
	}
	return named, s.BusyTime
}

// String summarises the counters on one line.
func (s Stats) String() string {
	return fmt.Sprintf("reads=%d writes=%d (sync=%d) read=%dKB written=%dKB seeks=%d busy=%v",
		s.Reads, s.Writes, s.SyncWrites, s.BytesRead()/1024, s.BytesWritten()/1024, s.Seeks, s.BusyTime)
}

// faultState holds injected faults. Zero value = no faults.
type faultState struct {
	readErrors map[int64]error // first-sector -> error
	tearNext   bool            // apply only the first half of the next write
	writesFail error           // non-nil: all writes fail with this error
	frozen     bool            // post-crash: reject all traffic
}

// Disk is a simulated sector-addressed block device. It is not safe
// for concurrent use; the owning file system serialises access.
type Disk struct {
	store Store
	geom  Geometry
	perf  PerfModel
	clock *sim.Clock

	// busyUntil is the time the disk arm becomes free; asynchronous
	// writes extend it without advancing the caller's clock.
	busyUntil sim.Time
	// nextSector is the sector immediately after the last transfer,
	// or -1 when the head position is unknown (fresh disk).
	nextSector int64

	// sched is the request scheduling policy; queue holds issued
	// asynchronous writes whose service has not been accounted yet
	// (see queue.go). qseq numbers queued requests for stable
	// tie-breaking; maxQueueDepth is the queue's high-water mark.
	sched         SchedPolicy
	queue         []queuedReq
	qseq          uint64
	maxQueueDepth int
	// client labels requests with the issuing client ID (SetClient);
	// 0 means unattributed. shard labels them with the owning
	// shard's 1-based ID (SetShard); 0 means unsharded.
	client int
	shard  int

	stats  Stats
	tracer Tracer
	waiter Waiter
	faults faultState

	// policy, when non-nil, is consulted on every request; the
	// counters number requests since the policy was attached.
	policy       FaultPolicy
	policyWrites int64
	policyReads  int64
}

// New assembles a disk from its parts. The store must be at least as
// large as the geometry's capacity.
func New(store Store, geom Geometry, perf PerfModel, clock *sim.Clock) (*Disk, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	if err := perf.Validate(); err != nil {
		return nil, err
	}
	if store == nil {
		return nil, fmt.Errorf("disk: nil store")
	}
	if clock == nil {
		return nil, fmt.Errorf("disk: nil clock")
	}
	if store.Size() < geom.TotalBytes() {
		return nil, fmt.Errorf("disk: store size %d < geometry capacity %d", store.Size(), geom.TotalBytes())
	}
	return &Disk{store: store, geom: geom, perf: perf, clock: clock, nextSector: -1}, nil
}

// NewMem returns a memory-backed disk of at least the given capacity
// using the WREN IV performance model — the standard testbed of this
// repository's experiments.
func NewMem(capacity int64, clock *sim.Clock) *Disk {
	geom := GeometryForCapacity(capacity)
	d, err := New(NewMemStore(geom.TotalBytes()), geom, WrenIVModel(), clock)
	if err != nil {
		panic(err) // geometry and model are valid by construction
	}
	return d
}

// Clock returns the simulated clock the disk charges time against.
func (d *Disk) Clock() *sim.Clock { return d.clock }

// Geometry returns the disk geometry.
func (d *Disk) Geometry() Geometry { return d.geom }

// Perf returns the service-time model.
func (d *Disk) Perf() PerfModel { return d.perf }

// Capacity returns the usable capacity in bytes.
func (d *Disk) Capacity() int64 { return d.geom.TotalBytes() }

// Sectors returns the usable capacity in sectors.
func (d *Disk) Sectors() int64 { return d.geom.TotalSectors() }

// Stats returns a snapshot of the activity counters. Queued
// asynchronous requests are dispatched first so the counters always
// reflect every issued request.
func (d *Disk) Stats() Stats {
	d.dispatchQueued()
	return d.stats
}

// PeekStats returns the activity counters without dispatching queued
// asynchronous requests: service time for still-queued writes is not
// yet accounted. The metrics sampler reads through here — dispatching
// would reorder an SSTF queue mid-batch, so a sampling-enabled run
// would diverge from a disabled one.
func (d *Disk) PeekStats() Stats { return d.stats }

// ResetStats zeroes the activity counters, dispatching queued
// requests first so their service lands in the old window.
func (d *Disk) ResetStats() {
	d.dispatchQueued()
	d.stats = Stats{}
}

// SetTracer attaches a tracer receiving every request; nil detaches.
func (d *Disk) SetTracer(t Tracer) { d.tracer = t }

// SetWaiter attaches a waiter receiving every blocking request's
// queue-wait/service split; nil detaches.
func (d *Disk) SetWaiter(w Waiter) { d.waiter = w }

// BusyUntil returns the time the disk arm becomes free, dispatching
// any queued asynchronous requests first so the horizon covers them.
func (d *Disk) BusyUntil() sim.Time {
	d.dispatchQueued()
	return d.busyUntil
}

// Drain dispatches all queued asynchronous writes, advances the clock
// until they have completed, and returns the new current time.
func (d *Disk) Drain() sim.Time {
	d.dispatchQueued()
	return d.clock.AdvanceTo(d.busyUntil)
}

// checkRange validates a request's alignment and bounds.
func (d *Disk) checkRange(sector int64, n int) error {
	if n == 0 || n%SectorSize != 0 {
		return fmt.Errorf("disk: request length %d not a positive multiple of the sector size", n)
	}
	count := int64(n / SectorSize)
	if sector < 0 || sector+count > d.geom.TotalSectors() {
		return fmt.Errorf("disk: request [%d,%d) outside disk of %d sectors", sector, sector+count, d.geom.TotalSectors())
	}
	return nil
}

// service computes the service time of a request and updates head
// position and statistics. It returns the modelled duration plus
// whether the request was sequential and the seek distance paid.
func (d *Disk) service(sector int64, nbytes int) (dur sim.Duration, sequential bool, seekCyl int) {
	sequential = d.nextSector == sector
	dur = d.perf.PerRequest + d.perf.TransferTime(int64(nbytes))
	if !sequential {
		from := 0
		if d.nextSector >= 0 {
			from = d.geom.CylinderOf(d.nextSector)
		}
		to := d.geom.CylinderOf(sector)
		seekCyl = to - from
		if seekCyl < 0 {
			seekCyl = -seekCyl
		}
		dur += d.perf.SeekTime(seekCyl, d.geom.Cylinders) + d.perf.RotationalLatency()
		d.stats.Seeks++
		d.stats.SeekCylinders += int64(seekCyl)
	}
	d.nextSector = sector + int64(nbytes/SectorSize)
	d.stats.BusyTime += dur
	return dur, sequential, seekCyl
}

// begin returns the request start time: the disk must be free and, for
// blocking requests, the caller must have reached that point too.
func (d *Disk) begin() sim.Time {
	return sim.MaxTime(d.clock.Now(), d.busyUntil)
}

func (d *Disk) trace(ev Event) {
	if d.tracer != nil {
		d.tracer.Record(ev)
	}
}

// ReadSectors performs a blocking read of len(p) bytes starting at the
// given sector, advancing the clock to the request's completion. The
// cause attributes the request in Stats.ByCause and traces; the label
// annotates traces.
func (d *Disk) ReadSectors(sector int64, p []byte, cause IOCause, label string) error {
	if d.faults.frozen {
		return fmt.Errorf("disk: device is frozen (crashed): %w", ErrPowerLoss)
	}
	if err := d.checkRange(sector, len(p)); err != nil {
		return err
	}
	if err, ok := d.faults.readErrors[sector]; ok {
		return fmt.Errorf("disk: injected read error at sector %d: %w", sector, err)
	}
	if d.policy != nil {
		d.policyReads++
		op := ReadOp{Seq: d.policyReads, Sector: sector, Sectors: len(p) / SectorSize, Label: label}
		if err := d.policy.Read(op); err != nil {
			return fmt.Errorf("disk: injected read fault at sector %d: %w", sector, err)
		}
	}
	if cause >= NumCauses {
		cause = CauseOther
	}
	d.dispatchQueued()
	issue := d.clock.Now()
	start := d.begin()
	dur, seq, seekCyl := d.service(sector, len(p))
	d.busyUntil = start.Add(dur)
	d.clock.AdvanceTo(d.busyUntil)
	d.stats.Reads++
	d.stats.SectorsRead += int64(len(p) / SectorSize)
	d.stats.ByCause[cause].Requests++
	d.stats.ByCause[cause].Sectors += int64(len(p) / SectorSize)
	d.stats.ByCause[cause].Busy += dur
	if d.waiter != nil {
		d.waiter.DiskWait(cause, start.Sub(issue), dur)
	}
	d.trace(Event{Time: start, Kind: OpRead, Sector: sector, Sectors: len(p) / SectorSize,
		Sync: true, Sequential: seq, SeekCylinders: seekCyl, Service: dur, Wait: start.Sub(issue),
		Cause: cause, Label: label, Client: d.client, Shard: d.shard})
	return d.store.ReadAt(p, sector*SectorSize)
}

// WriteSectors writes len(p) bytes starting at the given sector. When
// sync is true the clock advances to the request's completion (the
// issuing process blocks, as FFS does for inode and directory writes);
// otherwise only the disk's busy horizon is extended (LFS-style
// asynchronous segment writes that overlap computation).
func (d *Disk) WriteSectors(sector int64, p []byte, sync bool, cause IOCause, label string) error {
	if d.faults.frozen {
		return fmt.Errorf("disk: device is frozen (crashed): %w", ErrPowerLoss)
	}
	if d.faults.writesFail != nil {
		return fmt.Errorf("disk: injected write failure: %w", d.faults.writesFail)
	}
	if err := d.checkRange(sector, len(p)); err != nil {
		return err
	}
	var dec WriteDecision
	if d.policy != nil {
		d.policyWrites++
		dec = d.policy.Write(WriteOp{Seq: d.policyWrites, Sector: sector,
			Sectors: len(p) / SectorSize, Sync: sync, Label: label})
	}
	if dec.PowerCut {
		// Power dies during this transfer: persist whatever the
		// decision keeps, then refuse all further traffic. The
		// issuing process never observes completion, so no service
		// time is charged and no statistics are recorded.
		d.faults.frozen = true
		keep := 0
		if dec.Action == WriteTear {
			keep = dec.KeepSectors
			if keep > len(p)/SectorSize {
				keep = len(p) / SectorSize
			}
		}
		if keep > 0 {
			if err := d.store.WriteAt(p[:keep*SectorSize], sector*SectorSize); err != nil {
				return err
			}
		}
		return fmt.Errorf("disk: power cut during write of sector %d: %w", sector, ErrPowerLoss)
	}
	if cause >= NumCauses {
		cause = CauseOther
	}
	if sync {
		// A blocking write is a scheduling barrier: everything queued
		// ahead of it is serviced first, then the caller waits for its
		// own request.
		d.dispatchQueued()
		issue := d.clock.Now()
		start := d.begin()
		dur, seq, seekCyl := d.service(sector, len(p))
		d.busyUntil = start.Add(dur)
		d.clock.AdvanceTo(d.busyUntil)
		d.stats.SyncWrites++
		d.stats.Writes++
		d.stats.SectorsWritten += int64(len(p) / SectorSize)
		d.stats.ByCause[cause].Requests++
		d.stats.ByCause[cause].Sectors += int64(len(p) / SectorSize)
		d.stats.ByCause[cause].Busy += dur
		if d.waiter != nil {
			d.waiter.DiskWait(cause, start.Sub(issue), dur)
		}
		d.trace(Event{Time: start, Kind: OpWrite, Sector: sector, Sectors: len(p) / SectorSize,
			Sync: true, Sequential: seq, SeekCylinders: seekCyl, Service: dur, Wait: start.Sub(issue),
			Cause: cause, Label: label, Client: d.client, Shard: d.shard})
	} else {
		// Asynchronous writes join the request queue; the scheduling
		// policy decides their service order at the next barrier.
		// Data still reaches the store below at issue time.
		d.enqueue(sector, len(p), cause, label)
	}
	switch dec.Action {
	case WriteDrop:
		// Silently lost: the caller sees success, nothing persists.
		return nil
	case WriteTear:
		keep := dec.KeepSectors
		if keep > len(p)/SectorSize {
			keep = len(p) / SectorSize
		}
		if keep <= 0 {
			return nil
		}
		return d.store.WriteAt(p[:keep*SectorSize], sector*SectorSize)
	}
	data := p
	if d.faults.tearNext {
		// A torn write persists only a prefix, simulating power
		// loss mid-transfer; the tail of the request keeps its old
		// contents.
		d.faults.tearNext = false
		half := len(p) / 2 / SectorSize * SectorSize
		if half == 0 {
			half = SectorSize
			if len(p) < SectorSize {
				half = len(p)
			}
		}
		data = p[:half]
	}
	return d.store.WriteAt(data, sector*SectorSize)
}

// InjectReadError makes every read starting at the given sector fail
// with err until ClearFaults is called.
func (d *Disk) InjectReadError(sector int64, err error) {
	if d.faults.readErrors == nil {
		d.faults.readErrors = make(map[int64]error)
	}
	d.faults.readErrors[sector] = err
}

// TearNextWrite makes the next write persist only its first half,
// simulating power loss mid-transfer.
func (d *Disk) TearNextWrite() { d.faults.tearNext = true }

// FailWrites makes all subsequent writes fail with err (nil restores
// normal operation).
func (d *Disk) FailWrites(err error) { d.faults.writesFail = err }

// Freeze rejects all subsequent traffic, simulating a crashed machine.
// Data already written remains readable after Thaw.
func (d *Disk) Freeze() { d.faults.frozen = true }

// Thaw re-enables traffic after Freeze, as when a crashed machine
// reboots and remounts the disk.
func (d *Disk) Thaw() { d.faults.frozen = false }

// ClearFaults removes all injected faults.
func (d *Disk) ClearFaults() { d.faults = faultState{} }

// Store exposes the persistence backend, letting tools (lfsdump,
// lfsck) parse the raw image without going through the time model.
func (d *Disk) Store() Store { return d.store }

// Sync dispatches any queued asynchronous writes and flushes the
// backing store to stable storage. The simulation's durability model
// is unchanged — writes persist at issue time — but file-backed
// images survive a host crash only after a Sync (tools call it before
// Close).
func (d *Disk) Sync() error {
	if d.faults.frozen {
		return fmt.Errorf("disk: device is frozen (crashed): %w", ErrPowerLoss)
	}
	d.dispatchQueued()
	return d.store.Sync()
}

// Close releases the backing store.
func (d *Disk) Close() error { return d.store.Close() }
