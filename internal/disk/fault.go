package disk

import (
	"errors"
	"fmt"
)

// ErrPowerLoss is the error all requests fail with once an injected
// power cut has frozen the disk. Recovery harnesses detect the crash
// point with errors.Is(err, ErrPowerLoss), discard the in-memory file
// system, and remount.
var ErrPowerLoss = errors.New("disk: power lost")

// WriteOp describes one write request presented to a FaultPolicy.
type WriteOp struct {
	// Seq is the 1-based index of this write, counted from the moment
	// the policy was attached with SetFaultPolicy.
	Seq int64
	// Sector is the first sector of the request.
	Sector int64
	// Sectors is the request length in sectors.
	Sectors int
	// Sync reports whether the issuing process blocks on the request.
	Sync bool
	// Label is the file-system-provided annotation.
	Label string
}

// ReadOp describes one read request presented to a FaultPolicy.
type ReadOp struct {
	// Seq is the 1-based index of this read since the policy was
	// attached.
	Seq int64
	// Sector is the first sector of the request.
	Sector int64
	// Sectors is the request length in sectors.
	Sectors int
	// Label is the file-system-provided annotation.
	Label string
}

// WriteAction selects what part of a write persists.
type WriteAction int

const (
	// WritePersist stores the full request (normal operation).
	WritePersist WriteAction = iota
	// WriteTear persists only the leading KeepSectors sectors of the
	// request; the tail keeps its old contents, as when power dies
	// mid-transfer.
	WriteTear
	// WriteDrop persists nothing but reports success — a silently
	// lost write.
	WriteDrop
)

// WriteDecision is a FaultPolicy's verdict for one write.
type WriteDecision struct {
	// Action selects what persists. The zero value persists normally.
	Action WriteAction
	// KeepSectors is the persisted prefix length for WriteTear,
	// clamped to the request length.
	KeepSectors int
	// PowerCut freezes the disk after Action is applied: this write
	// and every later request fail with ErrPowerLoss until Thaw.
	PowerCut bool
}

// FaultPolicy decides the fate of every disk request. Attach with
// SetFaultPolicy. Decisions must be a deterministic function of the
// presented operations for crash-point replay to be reproducible.
type FaultPolicy interface {
	// Write is consulted before each write persists.
	Write(op WriteOp) WriteDecision
	// Read is consulted before each read; a non-nil error fails the
	// read without touching the store.
	Read(op ReadOp) error
}

// CrashPlan is a deterministic, scriptable FaultPolicy: it cuts power
// during a chosen write (optionally tearing it at a sector boundary)
// and can silently drop chosen earlier writes. The zero value injects
// nothing.
type CrashPlan struct {
	// CutWrite is the 1-based index of the write during which power is
	// lost; 0 disables the cut. Writes 1..CutWrite-1 persist normally;
	// write CutWrite is lost (or torn, see TearFatalWrite) and the
	// disk freezes.
	CutWrite int64
	// TearFatalWrite persists the leading half of the fatal write
	// (rounded down to a sector boundary) instead of losing it whole.
	TearFatalWrite bool
	// DropWrites lists write indices to silently discard: the write
	// reports success but nothing persists (a lost write a later
	// checksum must catch).
	DropWrites map[int64]bool
	// ReadErrors maps read indices to injected failures.
	ReadErrors map[int64]error
}

// Write implements FaultPolicy.
func (c *CrashPlan) Write(op WriteOp) WriteDecision {
	if c.CutWrite != 0 && op.Seq >= c.CutWrite {
		if op.Seq == c.CutWrite && c.TearFatalWrite {
			return WriteDecision{Action: WriteTear, KeepSectors: op.Sectors / 2, PowerCut: true}
		}
		return WriteDecision{Action: WriteDrop, PowerCut: true}
	}
	if c.DropWrites[op.Seq] {
		return WriteDecision{Action: WriteDrop}
	}
	return WriteDecision{}
}

// Read implements FaultPolicy.
func (c *CrashPlan) Read(op ReadOp) error {
	if err, ok := c.ReadErrors[op.Seq]; ok {
		return err
	}
	return nil
}

// SetFaultPolicy attaches a fault policy consulted on every request
// (nil detaches). Attaching resets the policy's read and write
// sequence counters, so an identical request stream yields identical
// decisions — the property crash-point enumeration depends on.
func (d *Disk) SetFaultPolicy(p FaultPolicy) {
	d.policy = p
	d.policyWrites = 0
	d.policyReads = 0
}

// PolicyWrites returns how many writes the attached policy has seen.
func (d *Disk) PolicyWrites() int64 { return d.policyWrites }

// FlipBits flips the bits in mask at byte offset off within the given
// sector — deterministic media corruption for recovery tests. It
// bypasses the time model and statistics.
func (d *Disk) FlipBits(sector int64, off int, mask byte) error {
	if sector < 0 || sector >= d.geom.TotalSectors() {
		return fmt.Errorf("disk: FlipBits sector %d outside disk of %d sectors", sector, d.geom.TotalSectors())
	}
	if off < 0 || off >= SectorSize {
		return fmt.Errorf("disk: FlipBits offset %d outside sector of %d bytes", off, SectorSize)
	}
	buf := make([]byte, SectorSize)
	if err := d.store.ReadAt(buf, sector*SectorSize); err != nil {
		return err
	}
	buf[off] ^= mask
	return d.store.WriteAt(buf, sector*SectorSize)
}
