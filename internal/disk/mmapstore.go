//go:build unix

package disk

import (
	"fmt"
	"os"
	"sync"
	"syscall"
)

// MmapStore is a Store backed by a shared memory mapping of an image
// file: reads and writes are plain memory copies with no per-request
// system calls, which is what makes multi-GB volumes affordable to
// simulate. Dirty pages live in the host page cache; Sync flushes them
// with fsync (on a MAP_SHARED mapping, file sync covers pages dirtied
// through the mapping).
type MmapStore struct {
	mu sync.Mutex
	// f is the image file handle; guarded by mu.
	f *os.File
	// data is the shared mapping of the whole image; nil after Close;
	// guarded by mu.
	data []byte
	// size is fixed at open and immutable thereafter.
	size int64
}

// OpenMmapStore opens (or creates) path as a disk image of the given
// capacity and maps it shared. Existing contents are preserved, as
// with OpenFileStore.
func OpenMmapStore(path string, size int64) (*MmapStore, error) {
	if size <= 0 {
		return nil, fmt.Errorf("disk: non-positive MmapStore size %d: %w", size, ErrOutOfRange)
	}
	if int64(int(size)) != size {
		return nil, fmt.Errorf("disk: MmapStore size %d overflows the address space", size)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("disk: open image: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("disk: stat image %s: %w", path, err)
	}
	if info.Size() < size {
		if err := f.Truncate(size); err != nil {
			f.Close()
			return nil, fmt.Errorf("disk: extend image %s to %d bytes: %w", path, size, err)
		}
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size),
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("disk: mmap image %s (%d bytes): %w", path, size, err)
	}
	return &MmapStore{f: f, data: data, size: size}, nil
}

// Size returns the store capacity in bytes.
func (s *MmapStore) Size() int64 { return s.size }

// ReadAt copies out of the mapping.
func (s *MmapStore) ReadAt(p []byte, off int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := checkStoreRange(p, off, s.size); err != nil {
		return err
	}
	if s.data == nil {
		return fmt.Errorf("disk: %w", ErrClosed)
	}
	copy(p, s.data[off:off+int64(len(p))])
	return nil
}

// WriteAt copies into the mapping.
func (s *MmapStore) WriteAt(p []byte, off int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := checkStoreRange(p, off, s.size); err != nil {
		return err
	}
	if s.data == nil {
		return fmt.Errorf("disk: %w", ErrClosed)
	}
	copy(s.data[off:off+int64(len(p))], p)
	return nil
}

// Sync flushes dirty pages of the mapping to stable storage.
func (s *MmapStore) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.data == nil {
		return fmt.Errorf("disk: sync: %w", ErrClosed)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("disk: sync image: %w", err)
	}
	return nil
}

// AllocatedBytes implements Allocator, exactly as FileStore does: the
// mapping is file-backed, so block accounting comes from the file.
func (s *MmapStore) AllocatedBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.data == nil {
		return 0
	}
	if n, ok := fileAllocatedBytes(s.f); ok {
		return n
	}
	return s.size
}

// Close unmaps the image and closes the file. Close is idempotent.
func (s *MmapStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.data == nil {
		return nil
	}
	data := s.data
	s.data = nil
	if err := syscall.Munmap(data); err != nil {
		s.f.Close()
		return fmt.Errorf("disk: munmap image: %w", err)
	}
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("disk: close image: %w", err)
	}
	return nil
}
