package disk

import (
	"testing"

	"lfs/internal/sim"
)

// recordingWaiter captures DiskWait callbacks and the clock at each.
type recordingWaiter struct {
	clock *sim.Clock
	calls []struct {
		cause          IOCause
		queue, service sim.Duration
	}
}

func (w *recordingWaiter) DiskWait(cause IOCause, queue, service sim.Duration) {
	w.calls = append(w.calls, struct {
		cause          IOCause
		queue, service sim.Duration
	}{cause, queue, service})
}

// eventTracer retains every traced event.
type eventTracer struct{ events []Event }

func (t *eventTracer) Record(ev Event) { t.events = append(t.events, ev) }

// TestWaitServiceConsistency pins the v2 queue-wait split against the
// disk's pre-existing accounting: over a mix of async queued writes
// and blocking requests, every event's Wait is non-negative, Service
// alone still sums to Stats.BusyTime (waits overlap service and must
// not double-count into busy time), and the waiter hook's queue +
// service equals the clock advance the blocked caller observed.
func TestWaitServiceConsistency(t *testing.T) {
	clock := sim.NewClock()
	d := NewMem(8<<20, clock)
	tr := &eventTracer{}
	d.SetTracer(tr)
	w := &recordingWaiter{clock: clock}
	d.SetWaiter(w)

	buf := make([]byte, 4096)
	// Queue several async writes at distant sectors so the arm stays
	// busy, then issue blocking requests that must wait them out.
	for i := 0; i < 4; i++ {
		if err := d.WriteSectors(int64(1000*i), buf, false, CauseLogAppend, "async"); err != nil {
			t.Fatal(err)
		}
	}
	before := clock.Now()
	if err := d.ReadSectors(5000, buf, CauseReadMiss, "blocking read"); err != nil {
		t.Fatal(err)
	}
	advance := clock.Now().Sub(before)
	if len(w.calls) != 1 {
		t.Fatalf("%d waiter calls, want 1", len(w.calls))
	}
	if got := w.calls[0].queue + w.calls[0].service; got != advance {
		t.Errorf("waiter queue+service = %v, caller observed %v", got, advance)
	}
	if w.calls[0].queue <= 0 {
		t.Errorf("blocking read behind 4 queued writes reports queue wait %v, want > 0", w.calls[0].queue)
	}
	if w.calls[0].cause != CauseReadMiss {
		t.Errorf("waiter cause = %v, want read-miss", w.calls[0].cause)
	}

	before = clock.Now()
	if err := d.WriteSectors(9000, buf, true, CauseSyncWrite, "blocking write"); err != nil {
		t.Fatal(err)
	}
	advance = clock.Now().Sub(before)
	if len(w.calls) != 2 {
		t.Fatalf("%d waiter calls after sync write, want 2", len(w.calls))
	}
	if got := w.calls[1].queue + w.calls[1].service; got != advance {
		t.Errorf("sync write queue+service = %v, caller observed %v", got, advance)
	}

	d.Drain()
	st := d.Stats()
	var service sim.Duration
	for _, ev := range tr.events {
		if ev.Wait < 0 {
			t.Errorf("event %s sector %d: negative wait %v", ev.Label, ev.Sector, ev.Wait)
		}
		service += ev.Service
	}
	if service != st.BusyTime {
		t.Errorf("sum of Event.Service = %v, Stats.BusyTime = %v; the wait split must not change busy accounting",
			service, st.BusyTime)
	}
}

// TestWaitZeroOnIdleDisk pins that a request against an idle disk
// pays no queue wait — the wait field measures contention only.
func TestWaitZeroOnIdleDisk(t *testing.T) {
	clock := sim.NewClock()
	d := NewMem(8<<20, clock)
	tr := &eventTracer{}
	d.SetTracer(tr)
	w := &recordingWaiter{clock: clock}
	d.SetWaiter(w)
	buf := make([]byte, 4096)
	if err := d.ReadSectors(0, buf, CauseReadMiss, "idle read"); err != nil {
		t.Fatal(err)
	}
	if len(tr.events) != 1 || tr.events[0].Wait != 0 {
		t.Fatalf("idle read recorded wait %v, want 0", tr.events[0].Wait)
	}
	if w.calls[0].queue != 0 {
		t.Errorf("idle read waiter queue = %v, want 0", w.calls[0].queue)
	}
}
