package experiments

import (
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"lfs/internal/disk"
	"lfs/internal/sim"
)

var update = flag.Bool("update", false, "rewrite golden files")

// smokeOpts returns the test-sized smoke configuration shared by the
// attribution test and the golden file.
func smokeOpts() TraceSmokeOpts {
	o := DefaultTraceSmokeOpts()
	o.NumFiles = 500
	o.ChurnFiles = 1500
	o.CleanSegments = 6
	return o
}

func TestTraceSmokeAttribution(t *testing.T) {
	r, err := TraceSmoke(smokeOpts())
	if err != nil {
		t.Fatal(err)
	}

	// The acceptance bar: at least 99% of disk busy time carries a
	// named cause. The implementation should in fact hit 100%.
	if share := r.NamedShare(); share < 0.99 {
		t.Errorf("traced named share = %.4f, want >= 0.99", share)
	}
	if share := r.DiskNamedShare(); share < 0.99 {
		t.Errorf("disk-counter named share = %.4f, want >= 0.99", share)
	}

	// The decomposition must sum to the total busy time within 0.1%,
	// both over the trace events and over the disk's own counters.
	var traceSum sim.Duration
	for _, io := range r.Aggregate.IO {
		traceSum += io.Busy
	}
	if r.TraceBusy == 0 || relErr(traceSum, r.TraceBusy) > 0.001 {
		t.Errorf("trace ByCause sum %v vs busy %v (rel err %v)",
			traceSum, r.TraceBusy, relErr(traceSum, r.TraceBusy))
	}
	var statSum sim.Duration
	for c := disk.IOCause(0); c < disk.NumCauses; c++ {
		statSum += r.Snapshot.Disk.ByCause[c].Busy
	}
	if r.Snapshot.Disk.BusyTime == 0 || relErr(statSum, r.Snapshot.Disk.BusyTime) > 0.001 {
		t.Errorf("disk ByCause sum %v vs busy %v (rel err %v)",
			statSum, r.Snapshot.Disk.BusyTime, relErr(statSum, r.Snapshot.Disk.BusyTime))
	}

	// The cleaner ran and its trace-derived write cost agrees with the
	// counter-derived one.
	if r.CleanActivations == 0 {
		t.Fatal("cleaner never ran; the smoke test must exercise cleaning")
	}
	if r.WriteCostTrace < 1 {
		t.Errorf("write cost %v < 1", r.WriteCostTrace)
	}
	if math.Abs(r.WriteCostTrace-r.WriteCostStats) > 1e-9 {
		t.Errorf("write cost from trace %v != from stats %v", r.WriteCostTrace, r.WriteCostStats)
	}

	// Both the log writer and the cleaner must appear in the
	// decomposition by name.
	seen := map[disk.IOCause]bool{}
	for _, io := range r.Aggregate.IO {
		seen[io.Cause] = true
	}
	for _, want := range []disk.IOCause{disk.CauseLogAppend, disk.CauseCleanerRead,
		disk.CauseCleanerWrite, disk.CauseCheckpoint, disk.CauseReadMiss} {
		if !seen[want] {
			t.Errorf("cause %v missing from decomposition", want)
		}
	}
}

func relErr(a, b sim.Duration) float64 {
	return math.Abs(a.Seconds()-b.Seconds()) / b.Seconds()
}

// TestTraceSmokeGolden pins the full smoke report — phase rates, the
// busy-time decomposition, and the cleaner summary — against a golden
// file. The simulation is deterministic, so any diff means the timing
// model, the instrumentation coverage, or the cleaner changed;
// regenerate with `go test ./internal/experiments -run Golden -update`.
func TestTraceSmokeGolden(t *testing.T) {
	r, err := TraceSmoke(smokeOpts())
	if err != nil {
		t.Fatal(err)
	}
	got := FormatTraceSmoke(r)
	golden := filepath.Join("testdata", "tracesmoke.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if got != string(want) {
		t.Errorf("smoke report drifted from golden file (regenerate with -update if intended)\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
