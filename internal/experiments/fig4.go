package experiments

import (
	"fmt"
	"strings"

	"lfs/internal/workload"
)

// Fig4Row is one bar of Figure 4: transfer rate in KB/s for one phase
// of the large-file test on one file system.
type Fig4Row struct {
	FS    string
	Phase string
	KBps  float64
	Raw   workload.Phase
}

// Fig4Opts scales the experiment (the paper uses a 100 MB file with
// 8 KB requests and ~15 MB of file cache).
type Fig4Opts struct {
	Capacity    int64
	FileSize    int64
	RequestSize int
	// CacheFraction sizes the file cache relative to FileSize; the
	// paper's ratio is 15 MB / 100 MB = 0.15. Scaled-down runs must
	// preserve it or the cache absorbs the whole file and the
	// random phases degenerate.
	CacheFraction float64
}

// DefaultFig4Opts returns the paper's parameters.
func DefaultFig4Opts() Fig4Opts {
	return Fig4Opts{Capacity: DiskCapacity, FileSize: 100 << 20, RequestSize: 8192, CacheFraction: 0.15}
}

// Fig4 runs the §5.2 large-file test on both file systems: sequential
// write, sequential read, random write, random read, and sequential
// reread of one large file.
func Fig4(opts Fig4Opts) ([]Fig4Row, error) {
	var rows []Fig4Row
	//lfslint:allow floataccum cache sizing applies a config fraction once at setup; nothing accumulates
	cacheBytes := int64(float64(opts.FileSize) * opts.CacheFraction)
	if opts.CacheFraction <= 0 {
		cacheBytes = 15 << 20
	}
	for _, which := range []string{"LFS", "SunFFS"} {
		var sys *System
		var err error
		if which == "LFS" {
			cfg := defaultLFSConfig()
			cfg.CacheBlocks = int(cacheBytes) / cfg.BlockSize
			sys, err = NewLFS(opts.Capacity, cfg)
		} else {
			cfg := defaultFFSConfig()
			cfg.CacheBlocks = int(cacheBytes) / cfg.BlockSize
			sys, err = NewFFS(opts.Capacity, cfg)
		}
		if err != nil {
			return nil, err
		}
		w := workload.LargeFileOpts{
			FileSize: opts.FileSize, RequestSize: opts.RequestSize,
			Path: "/bigfile", Seed: 7,
		}
		res, err := workload.LargeFile(sys, w)
		if err != nil {
			return nil, fmt.Errorf("fig4 %s: %w", which, err)
		}
		for _, p := range res.Phases() {
			rows = append(rows, Fig4Row{FS: which, Phase: p.Name, KBps: p.KBPerSec(), Raw: p})
		}
	}
	return rows, nil
}

// FormatFig4 renders the rows as the Figure 4 table.
func FormatFig4(rows []Fig4Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4 - Large file I/O (KB/s)\n")
	fmt.Fprintf(&b, "%-12s %10s %10s\n", "phase", "LFS", "SunFFS")
	byPhase := map[string]map[string]float64{}
	var order []string
	for _, r := range rows {
		if byPhase[r.Phase] == nil {
			byPhase[r.Phase] = map[string]float64{}
			order = append(order, r.Phase)
		}
		byPhase[r.Phase][r.FS] = r.KBps
	}
	seen := map[string]bool{}
	var uniq []string
	for _, p := range order {
		if !seen[p] {
			seen[p] = true
			uniq = append(uniq, p)
		}
	}
	for _, p := range uniq {
		fmt.Fprintf(&b, "%-12s %10.0f %10.0f\n", p, byPhase[p]["LFS"], byPhase[p]["SunFFS"])
	}
	return b.String()
}
