package experiments

import (
	"fmt"
	"strings"

	"lfs/internal/core"
	"lfs/internal/workload"
)

// UtilizationResult answers the open question the paper poses in
// §5.3: "For nonsynthetic workloads, segment utilization will form a
// distribution having a mean equal to the overall disk utilization
// ... It is currently not known what the segment distribution looks
// like for nonsynthetic workloads." We run the office/engineering
// trace until the log has wrapped the disk several times, then report
// the distribution of per-segment utilization.
type UtilizationResult struct {
	// Histogram buckets the dirty segments' live fractions into
	// ten 10%-wide bins.
	Histogram [10]int
	// Samples is the number of dirty segments measured.
	Samples int
	// MeanSegmentUtil is the distribution's mean.
	MeanSegmentUtil float64
	// DiskUtil is live bytes over log capacity at measurement time.
	DiskUtil float64
	// Trace summarises the workload that aged the volume.
	Trace workload.OfficeResult
	// CleanerStats is the LFS activity during the run.
	CleanerStats core.Stats
}

// UtilizationOpts parameterises the experiment.
type UtilizationOpts struct {
	Capacity int64
	Office   workload.OfficeOpts
	// Policy selects the cleaning policy whose residual
	// distribution is measured.
	Policy core.CleanPolicy
}

// DefaultUtilizationOpts ages a 64 MB volume with a long office
// trace (enough traffic to wrap the log several times). The
// population is sized for ~60-70% disk utilization: the office size
// distribution averages ~16 KB per file.
func DefaultUtilizationOpts() UtilizationOpts {
	o := workload.DefaultOffice()
	o.Ops = 60000
	o.TargetFiles = 2500
	o.MeanLifetimeOps = 8000
	return UtilizationOpts{Capacity: 64 << 20, Office: o}
}

// UtilizationDistribution runs the office trace on LFS and measures
// the segment utilization distribution of the aged volume.
func UtilizationDistribution(opts UtilizationOpts) (*UtilizationResult, error) {
	cfg := defaultLFSConfig()
	cfg.Policy = opts.Policy
	sys, err := NewLFS(opts.Capacity, cfg)
	if err != nil {
		return nil, err
	}
	lfs := sys.System.(*core.FS)
	trace, err := workload.Office(sys, opts.Office)
	if err != nil {
		return nil, fmt.Errorf("utilization: office trace: %w", err)
	}
	res := &UtilizationResult{Trace: trace, CleanerStats: lfs.Stats()}
	utils := lfs.SegmentUtilizations()
	var sum float64
	for _, u := range utils {
		if u > 1 {
			u = 1
		}
		bin := int(u * 10)
		if bin > 9 {
			bin = 9
		}
		res.Histogram[bin]++
		sum += u
	}
	res.Samples = len(utils)
	if res.Samples > 0 {
		res.MeanSegmentUtil = sum / float64(res.Samples)
	}
	res.DiskUtil = float64(lfs.LiveBytes()) / float64(lfs.LogCapacity())
	return res, nil
}

// UtilizationByPolicy runs the distribution measurement under both
// cleaning policies on identical traces, exposing how the victim
// policy shapes the residual population (the analysis that led the
// authors' follow-up work to cost-benefit selection and the bimodal
// distribution).
func UtilizationByPolicy(opts UtilizationOpts) (greedy, costBenefit *UtilizationResult, err error) {
	g := opts
	g.Policy = core.CleanGreedy
	greedy, err = UtilizationDistribution(g)
	if err != nil {
		return nil, nil, err
	}
	cb := opts
	cb.Policy = core.CleanCostBenefit
	costBenefit, err = UtilizationDistribution(cb)
	if err != nil {
		return nil, nil, err
	}
	return greedy, costBenefit, nil
}

// FormatUtilization renders the distribution.
func FormatUtilization(r *UtilizationResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Segment utilization distribution under the office trace (5.3's open question)\n")
	fmt.Fprintf(&b, "trace: %d creates, %d deletes, %d reads, %d overwrites (%v)\n",
		r.Trace.Creates, r.Trace.Deletes, r.Trace.Reads, r.Trace.Overwrites, r.Trace.Elapsed.Duration)
	fmt.Fprintf(&b, "cleaner: %d runs, %d segments reclaimed\n",
		r.CleanerStats.CleanerRuns, r.CleanerStats.SegmentsCleaned)
	fmt.Fprintf(&b, "%-12s %8s\n", "utilization", "segments")
	max := 0
	for _, n := range r.Histogram {
		if n > max {
			max = n
		}
	}
	for i, n := range r.Histogram {
		bar := ""
		if max > 0 {
			bar = strings.Repeat("#", n*40/max)
		}
		fmt.Fprintf(&b, "%3d%%-%3d%%    %8d  %s\n", i*10, (i+1)*10, n, bar)
	}
	fmt.Fprintf(&b, "mean segment utilization: %.2f; overall disk utilization: %.2f\n",
		r.MeanSegmentUtil, r.DiskUtil)
	return b.String()
}
