package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
)

// Every experiment can emit machine-readable CSV alongside its text
// table, for plotting. Each CSV function writes a header row followed
// by one record per measurement.

// writeCSV writes rows with a uniform error path.
func writeCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// f formats a float for CSV. Degenerate ratios (0/0 from a run too
// small to activate some phase) become 0 so downstream plotting and
// the benchdiff gate never see NaN or Inf.
func f(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		v = 0
	}
	return fmt.Sprintf("%.3f", v)
}
func i(v int64) string { return fmt.Sprintf("%d", v) }

// CSVFig3 writes Figure 3 rows.
func CSVFig3(w io.Writer, rows []Fig3Row) error {
	var recs [][]string
	for _, r := range rows {
		recs = append(recs, []string{r.FS, i(int64(r.FileSize)), i(int64(r.NumFiles)),
			f(r.CreatePS), f(r.ReadPS), f(r.DeletePS)})
	}
	return writeCSV(w, []string{"fs", "file_size", "files", "create_per_s", "read_per_s", "delete_per_s"}, recs)
}

// CSVFig4 writes Figure 4 rows.
func CSVFig4(w io.Writer, rows []Fig4Row) error {
	var recs [][]string
	for _, r := range rows {
		recs = append(recs, []string{r.FS, r.Phase, f(r.KBps)})
	}
	return writeCSV(w, []string{"fs", "phase", "kb_per_s"}, recs)
}

// CSVFig5 writes Figure 5 rows.
func CSVFig5(w io.Writer, rows []Fig5Row) error {
	var recs [][]string
	for _, r := range rows {
		recs = append(recs, []string{f(r.Utilization), f(r.RateKBps),
			i(int64(r.SegmentsCleaned)), i(int64(r.LiveCopied)), i(int64(r.BlocksExamined))})
	}
	return writeCSV(w, []string{"utilization", "clean_kb_per_s", "segments", "live_copied", "examined"}, recs)
}

// CSVScaling writes §3.1 rows.
func CSVScaling(w io.Writer, rows []ScalingRow) error {
	var recs [][]string
	for _, r := range rows {
		recs = append(recs, []string{r.FS, f(r.MIPS), f(r.PerFileMs)})
	}
	return writeCSV(w, []string{"fs", "mips", "ms_per_file"}, recs)
}

// CSVRecovery writes §4.4 rows.
func CSVRecovery(w io.Writer, rows []RecoveryRow) error {
	var recs [][]string
	for _, r := range rows {
		recs = append(recs, []string{i(r.CapacityMB), f(r.LFSMountMs),
			i(r.LFSRollForwardUnits), f(r.FFSFsckMs)})
	}
	return writeCSV(w, []string{"disk_mb", "lfs_mount_ms", "rolled_forward_units", "ffs_fsck_ms"}, recs)
}

// CSVSegSize writes the segment-size ablation.
func CSVSegSize(w io.Writer, rows []SegSizeRow) error {
	var recs [][]string
	for _, r := range rows {
		recs = append(recs, []string{i(int64(r.SegmentKB)), f(r.WriteKBps), f(r.CreatePS)})
	}
	return writeCSV(w, []string{"segment_kb", "write_kb_per_s", "create_per_s"}, recs)
}

// CSVBlockSize writes the block-size ablation.
func CSVBlockSize(w io.Writer, rows []BlockSizeRow) error {
	var recs [][]string
	for _, r := range rows {
		recs = append(recs, []string{i(int64(r.BlockSize)), f(r.CreatePS), f(r.ReadPS), f(r.StorageOverhead)})
	}
	return writeCSV(w, []string{"block_size", "create_per_s", "read_per_s", "live_bytes_per_user_byte"}, recs)
}

// CSVPolicy writes the cleaning-policy ablation.
func CSVPolicy(w io.Writer, rows []PolicyRow) error {
	var recs [][]string
	for _, r := range rows {
		recs = append(recs, []string{r.Policy, i(r.SegmentsCleaned), i(r.LiveCopied),
			f(r.CopyPerSegment), f(r.WriteAmp), f(r.ElapsedSec)})
	}
	return writeCSV(w, []string{"policy", "segments_cleaned", "live_copied", "copies_per_segment", "write_amplification", "elapsed_s"}, recs)
}

// CSVCkpt writes the checkpoint-interval ablation.
func CSVCkpt(w io.Writer, rows []CkptRow) error {
	var recs [][]string
	for _, r := range rows {
		recs = append(recs, []string{f(r.IntervalSec), i(r.Checkpoints), f(r.ThroughputOpsSec),
			i(int64(r.LostFiles)), i(int64(r.LiveFiles)), f(r.MountMs)})
	}
	return writeCSV(w, []string{"interval_s", "checkpoints", "trace_ops_per_s", "files_lost", "window_files", "mount_ms"}, recs)
}

// CSVUtilization writes the utilization-distribution histogram.
func CSVUtilization(w io.Writer, r *UtilizationResult, policy string) error {
	var recs [][]string
	for bin, n := range r.Histogram {
		recs = append(recs, []string{policy, fmt.Sprintf("%d", bin*10), fmt.Sprintf("%d", (bin+1)*10), i(int64(n))})
	}
	return writeCSV(w, []string{"policy", "bin_low_pct", "bin_high_pct", "segments"}, recs)
}

// CSVCleaning writes the write-cost-vs-utilization curve.
func CSVCleaning(w io.Writer, rows []CleaningRow) error {
	var recs [][]string
	for _, r := range rows {
		recs = append(recs, []string{r.Arm, f(r.TargetUtil), f(r.DiskUtil),
			f(r.WriteCost), f(r.WriteAmp), i(r.SegmentsCleaned), i(r.LiveCopied)})
	}
	return writeCSV(w, []string{"arm", "target_util", "disk_util", "write_cost",
		"write_amplification", "segments_cleaned", "live_copied"}, recs)
}

// CSVConcurrency writes the multi-client throughput sweep.
func CSVConcurrency(w io.Writer, rows []ConcurrencyRow) error {
	var recs [][]string
	for _, r := range rows {
		recs = append(recs, []string{i(int64(r.Clients)),
			f(r.LFSOpsPerSec), f(r.LFSNoGCOpsPerSec), f(r.FFSOpsPerSec),
			i(r.GroupCommits), i(r.Piggybacked),
			f(r.LFSWritesPerOp), f(r.FFSWritesPerOp),
			f(ms(r.LFSP50)), f(ms(r.LFSP95)), f(ms(r.LFSP99))})
	}
	return writeCSV(w, []string{"clients", "lfs_ops_per_s", "lfs_nogc_ops_per_s",
		"ffs_ops_per_s", "group_commits", "piggybacked",
		"lfs_writes_per_op", "ffs_writes_per_op",
		"lfs_p50_ms", "lfs_p95_ms", "lfs_p99_ms"}, recs)
}

// CSVSharding writes the multi-log scale-out sweep.
func CSVSharding(w io.Writer, res *ShardingResult) error {
	var recs [][]string
	for _, r := range res.Rows {
		recs = append(recs, []string{i(int64(r.Shards)), i(int64(r.Clients)),
			f(r.OpsPerSec), f(r.Speedup), f(r.WritesPerOp),
			f(ms(r.P50)), f(ms(r.P95)), f(ms(r.P99))})
	}
	return writeCSV(w, []string{"shards", "clients", "ops_per_s", "speedup",
		"writes_per_op", "p50_ms", "p95_ms", "p99_ms"}, recs)
}
