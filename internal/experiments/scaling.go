package experiments

import (
	"fmt"
	"strings"

	"lfs/internal/sim"
)

// ScalingRow is one point of the §3.1 experiment: the time to create
// and delete an empty file as a function of CPU speed. The paper's
// observation: on the BSD FFS, an order-of-magnitude CPU upgrade (a
// 0.9-MIPS MicroVAX II to a 14-MIPS DECstation 3100) improves
// create+delete by only ~20% because the synchronous disk writes
// dominate; LFS, with no synchronous writes, scales with the CPU.
type ScalingRow struct {
	FS        string
	MIPS      float64
	PerFileMs float64
}

// ScalingOpts parameterises the sweep.
type ScalingOpts struct {
	Capacity int64
	MIPS     []float64
	// Files is how many create+delete pairs to average over.
	Files int
}

// DefaultScalingOpts sweeps the paper's two machines plus points
// between and beyond.
func DefaultScalingOpts() ScalingOpts {
	return ScalingOpts{
		Capacity: 64 << 20,
		MIPS:     []float64{0.9, 2, 5, 10, 14, 28},
		Files:    200,
	}
}

// Scaling measures create+delete latency per empty file across CPU
// speeds for both file systems.
func Scaling(opts ScalingOpts) ([]ScalingRow, error) {
	var rows []ScalingRow
	for _, mips := range opts.MIPS {
		for _, which := range []string{"LFS", "SunFFS"} {
			var sys *System
			var err error
			if which == "LFS" {
				cfg := defaultLFSConfig()
				cfg.MIPS = mips
				sys, err = NewLFS(opts.Capacity, cfg)
			} else {
				cfg := defaultFFSConfig()
				cfg.MIPS = mips
				sys, err = NewFFS(opts.Capacity, cfg)
			}
			if err != nil {
				return nil, err
			}
			start := sys.Clock().Now()
			for i := 0; i < opts.Files; i++ {
				p := fmt.Sprintf("/f%d", i)
				if err := sys.Create(p); err != nil {
					return nil, err
				}
				if err := sys.Remove(p); err != nil {
					return nil, err
				}
			}
			if err := sys.Sync(); err != nil {
				return nil, err
			}
			elapsed := sys.Clock().Now().Sub(start)
			rows = append(rows, ScalingRow{
				FS:        which,
				MIPS:      mips,
				PerFileMs: float64(elapsed) / float64(sim.Millisecond) / float64(opts.Files),
			})
		}
	}
	return rows, nil
}

// FormatScaling renders the sweep.
func FormatScaling(rows []ScalingRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "CPU scaling (3.1) - create+delete one empty file (ms)\n")
	fmt.Fprintf(&b, "%-8s %10s %14s\n", "fs", "MIPS", "ms per file")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %10.1f %14.2f\n", r.FS, r.MIPS, r.PerFileMs)
	}
	return b.String()
}
