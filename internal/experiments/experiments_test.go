package experiments

import (
	"testing"

	"lfs/internal/sim"
)

// The tests in this file assert the *shapes* of the paper's results:
// who wins, by roughly what factor, and where the crossovers fall.
// Absolute numbers depend on the simulated WREN IV model and the CPU
// cost table, but the qualitative claims must hold.

// scaled-down parameters keep test runtime reasonable while preserving
// shapes (ratios are insensitive to the file counts at these scales).

func TestFig1Shape(t *testing.T) {
	res, err := Fig1(32 << 20)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: "The total disk I/O in this example includes 8 random
	// writes of which half are synchronous."
	if res.FFS.SyncWrites < 4 {
		t.Errorf("FFS creat of two files did %d sync writes, want >= 4", res.FFS.SyncWrites)
	}
	if res.FFS.Writes < 6 {
		t.Errorf("FFS creat of two files did %d writes, want >= 6 (paper: 8)", res.FFS.Writes)
	}
	// Paper: "LFS performs the 8 writes in one large transfer...
	// all writes are sequential and none are synchronous."
	if res.LFS.SyncWrites != 0 {
		t.Errorf("LFS creat did %d sync writes, want 0", res.LFS.SyncWrites)
	}
	if res.LFS.Writes > 3 {
		t.Errorf("LFS creat issued %d transfers, want <= 3 (one large write)", res.LFS.Writes)
	}
	if res.LFS.BytesWritten < 8*1024 {
		t.Errorf("LFS wrote only %d bytes", res.LFS.BytesWritten)
	}
	// FFS's writes are small and scattered; LFS's single transfer
	// is larger than any individual FFS write.
	maxFFS := int64(0)
	for _, ev := range res.FFSEvents {
		if n := int64(ev.Sectors) * 512; n > maxFFS {
			maxFFS = n
		}
	}
	minSeeks := res.FFS.Seeks
	if minSeeks < 4 {
		t.Errorf("FFS trace shows %d seeks, want >= 4 (random writes)", minSeeks)
	}
}

func TestFig3Shape(t *testing.T) {
	opts := DefaultFig3Opts()
	opts.Capacity = 64 << 20
	opts.Files1K = 1500
	opts.Files10K = 300
	rows, err := Fig3(opts)
	if err != nil {
		t.Fatal(err)
	}
	get := func(fs string, size int) Fig3Row {
		for _, r := range rows {
			if r.FS == fs && r.FileSize == size {
				return r
			}
		}
		t.Fatalf("missing row %s/%d", fs, size)
		return Fig3Row{}
	}
	for _, size := range []int{1024, 10240} {
		l, f := get("LFS", size), get("SunFFS", size)
		// Paper: "order-of-magnitude speedup" on create and delete.
		// The gap narrows as file size grows (LFS becomes
		// bandwidth-bound while FFS amortises its synchronous
		// writes over more data), so the 10 KB bar is lower.
		minCreate := 5.0
		if size > 4096 {
			minCreate = 3.0
		}
		if ratio := l.CreatePS / f.CreatePS; ratio < minCreate {
			t.Errorf("%dB create: LFS/FFS = %.1fx, want >= %.0fx (paper: ~10x for 1K)", size, ratio, minCreate)
		}
		if ratio := l.DeletePS / f.DeletePS; ratio < 5 {
			t.Errorf("%dB delete: LFS/FFS = %.1fx, want >= 5x (paper: ~10x)", size, ratio)
		}
		// Paper: "the read performance of LFS is excellent" —
		// matches or exceeds SunOS (files packed in segments).
		if ratio := l.ReadPS / f.ReadPS; ratio < 0.8 {
			t.Errorf("%dB read: LFS at %.2fx of FFS, want >= 0.8x", size, ratio)
		}
	}
}

func TestFig4Shape(t *testing.T) {
	opts := DefaultFig4Opts()
	opts.Capacity = 100 << 20
	opts.FileSize = 24 << 20
	rows, err := Fig4(opts)
	if err != nil {
		t.Fatal(err)
	}
	rate := func(fs, phase string) float64 {
		for _, r := range rows {
			if r.FS == fs && r.Phase == phase {
				return r.KBps
			}
		}
		t.Fatalf("missing row %s/%s", fs, phase)
		return 0
	}
	// LFS sequential write approaches disk bandwidth (1.3 MB/s ≈
	// 1300 KB/s).
	if v := rate("LFS", "seq write"); v < 900 {
		t.Errorf("LFS seq write = %.0f KB/s, want near disk bandwidth (>900)", v)
	}
	// LFS random writes ≈ LFS sequential writes (the log makes them
	// sequential); FFS random writes are far slower than FFS
	// sequential writes.
	if lr, ls := rate("LFS", "rand write"), rate("LFS", "seq write"); lr < 0.7*ls {
		t.Errorf("LFS rand write %.0f much slower than seq write %.0f; log should equalise them", lr, ls)
	}
	if fr, fsq := rate("SunFFS", "rand write"), rate("SunFFS", "seq write"); fr > 0.5*fsq {
		t.Errorf("FFS rand write %.0f not much slower than seq write %.0f; update-in-place should suffer", fr, fsq)
	}
	// LFS wins random writes big.
	if l, f := rate("LFS", "rand write"), rate("SunFFS", "rand write"); l < 3*f {
		t.Errorf("rand write: LFS %.0f vs FFS %.0f, want LFS >= 3x", l, f)
	}
	// Sequential read after sequential write: comparable.
	if l, f := rate("LFS", "seq read"), rate("SunFFS", "seq read"); l < 0.7*f {
		t.Errorf("seq read: LFS %.0f vs FFS %.0f, want comparable", l, f)
	}
	// The paper's counter-case: sequential reread after random
	// writes favours FFS (update-in-place kept the file contiguous;
	// LFS scattered it through the log).
	if l, f := rate("LFS", "seq reread"), rate("SunFFS", "seq reread"); l >= f {
		t.Errorf("seq reread after random write: LFS %.0f vs FFS %.0f; FFS should win this one", l, f)
	}
	// Random reads: both random, comparable.
	if l, f := rate("LFS", "rand read"), rate("SunFFS", "rand read"); l < 0.5*f || l > 2*f {
		t.Errorf("rand read: LFS %.0f vs FFS %.0f, want within 2x", l, f)
	}
}

func TestFig5Shape(t *testing.T) {
	opts := Fig5Opts{
		Capacity:     48 << 20,
		NumFiles:     6000,
		Utilizations: []float64{0, 0.25, 0.5, 0.75, 0.9},
	}
	rows, err := Fig5(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(opts.Utilizations) {
		t.Fatalf("got %d rows", len(rows))
	}
	// Rate must decrease monotonically (with slack) as utilization
	// rises, and the empty-segment rate must be far above the
	// 90%-utilised rate.
	for i := 1; i < len(rows); i++ {
		if rows[i].RateKBps > rows[i-1].RateKBps*1.15 {
			t.Errorf("cleaning rate rose from %.0f to %.0f KB/s between u=%.2f and u=%.2f",
				rows[i-1].RateKBps, rows[i].RateKBps, rows[i-1].Utilization, rows[i].Utilization)
		}
	}
	first, last := rows[0], rows[len(rows)-1]
	if first.RateKBps < 3*last.RateKBps {
		t.Errorf("cleaning rate at u=0 (%.0f) should dwarf rate at u=0.9 (%.0f)",
			first.RateKBps, last.RateKBps)
	}
	// Nearly nothing should be copied from empty segments; most
	// blocks survive at u=0.9.
	if first.SegmentsCleaned > 0 && first.LiveCopied > first.BlocksExamined/5 {
		t.Errorf("u=0: copied %d of %d blocks", first.LiveCopied, first.BlocksExamined)
	}
	if last.LiveCopied < last.BlocksExamined/2 {
		t.Errorf("u=0.9: copied only %d of %d blocks", last.LiveCopied, last.BlocksExamined)
	}
}

func TestScalingShape(t *testing.T) {
	opts := ScalingOpts{Capacity: 32 << 20, MIPS: []float64{0.9, 14}, Files: 100}
	rows, err := Scaling(opts)
	if err != nil {
		t.Fatal(err)
	}
	get := func(fs string, mips float64) float64 {
		for _, r := range rows {
			if r.FS == fs && r.MIPS == mips {
				return r.PerFileMs
			}
		}
		t.Fatalf("missing %s@%v", fs, mips)
		return 0
	}
	// Paper §3.1: a 15.5x CPU gets FFS only ~20% faster (we allow
	// up to 2.5x — our FFS path has more CPU content per create
	// than an empty 1990 creat); LFS should speed up by several
	// times.
	ffsGain := get("SunFFS", 0.9) / get("SunFFS", 14)
	lfsGain := get("LFS", 0.9) / get("LFS", 14)
	if ffsGain > 2.5 {
		t.Errorf("FFS sped up %.1fx with a 15.5x CPU; sync writes should cap the gain", ffsGain)
	}
	if lfsGain < 4.0 {
		t.Errorf("LFS sped up only %.1fx with a 15.5x CPU; it should scale with CPU", lfsGain)
	}
	if lfsGain < 2*ffsGain {
		t.Errorf("LFS gain %.1fx not clearly above FFS gain %.1fx", lfsGain, ffsGain)
	}
}

func TestRecoveryShape(t *testing.T) {
	opts := RecoveryOpts{Capacities: []int64{32 << 20, 128 << 20}, Files: 120}
	rows, err := Recovery(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// LFS recovery must beat the fsck scan everywhere. On
		// small disks roll-forward (bounded by the crash damage,
		// here ~half the workload) dominates LFS's mount time, so
		// the gap is modest; it widens with disk size.
		if r.LFSMountMs*2 > r.FFSFsckMs {
			t.Errorf("disk %dMB: LFS mount %.1fms vs fsck %.1fms, want >= 2x gap",
				r.CapacityMB, r.LFSMountMs, r.FFSFsckMs)
		}
	}
	if last := rows[len(rows)-1]; last.LFSMountMs*5 > last.FFSFsckMs {
		t.Errorf("disk %dMB: LFS mount %.1fms vs fsck %.1fms, want >= 5x gap on the large disk",
			last.CapacityMB, last.LFSMountMs, last.FFSFsckMs)
	}
	// fsck cost grows with disk size; LFS mount should not.
	small, large := rows[0], rows[1]
	if large.FFSFsckMs < 2*small.FFSFsckMs {
		t.Errorf("fsck on 4x disk only grew from %.1f to %.1f ms", small.FFSFsckMs, large.FFSFsckMs)
	}
	if large.LFSMountMs > 4*small.LFSMountMs+100 {
		t.Errorf("LFS mount grew with disk size: %.1f -> %.1f ms", small.LFSMountMs, large.LFSMountMs)
	}
}

func TestUtilizationDistributionShape(t *testing.T) {
	opts := UtilizationOpts{Capacity: 32 << 20}
	opts.Office = DefaultUtilizationOpts().Office
	opts.Office.Ops = 12000
	opts.Office.TargetFiles = 2500
	opts.Office.MeanLifetimeOps = 3000
	res, err := UtilizationDistribution(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples == 0 {
		t.Fatal("no dirty segments sampled")
	}
	if res.CleanerStats.CleanerRuns == 0 {
		t.Fatal("office trace never wrapped the log (no cleaning)")
	}
	// The paper conjectures the distribution's mean equals the
	// overall disk utilization; with a greedy cleaner continuously
	// harvesting the emptiest segments, the surviving segments are
	// in fact *above* the disk utilization (the skew the authors'
	// follow-up work documents). Assert the measured relationship.
	if res.MeanSegmentUtil < res.DiskUtil*0.9 {
		t.Errorf("mean segment utilization %.2f far below disk utilization %.2f",
			res.MeanSegmentUtil, res.DiskUtil)
	}
	if res.MeanSegmentUtil <= 0 || res.MeanSegmentUtil > 1 {
		t.Errorf("mean segment utilization %.2f out of range", res.MeanSegmentUtil)
	}
	// The distribution has spread (not all segments identical).
	nonEmpty := 0
	for _, n := range res.Histogram {
		if n > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 2 {
		t.Errorf("utilization histogram has no spread: %v", res.Histogram)
	}
}

func TestCheckpointAblationShape(t *testing.T) {
	opts := DefaultCkptOpts()
	opts.Capacity = 32 << 20
	opts.Office.Ops = 2000
	opts.Office.TargetFiles = 600
	opts.Office.MeanLifetimeOps = 800
	opts.Intervals = []sim.Duration{5 * sim.Second, 30 * sim.Second, 120 * sim.Second}
	rows, err := CheckpointAblation(opts)
	if err != nil {
		t.Fatal(err)
	}
	// The vulnerability window (files lost at a crash) grows with
	// the interval; with roll-forward disabled everything in the
	// window dies.
	for i := 1; i < len(rows); i++ {
		if rows[i].LostFiles <= rows[i-1].LostFiles {
			t.Errorf("interval %.0fs lost %d files, %.0fs lost %d; loss should grow with the interval",
				rows[i].IntervalSec, rows[i].LostFiles, rows[i-1].IntervalSec, rows[i-1].LostFiles)
		}
		if rows[i].LostFiles != rows[i].LiveFiles {
			t.Errorf("interval %.0fs: %d of %d window files survived without roll-forward",
				rows[i].IntervalSec, rows[i].LiveFiles-rows[i].LostFiles, rows[i].LiveFiles)
		}
	}
	// Checkpointing more often must not cost much throughput (the
	// paper's 30s default is cheap).
	first, last := rows[0], rows[len(rows)-1]
	if first.ThroughputOpsSec < 0.7*last.ThroughputOpsSec {
		t.Errorf("5s checkpoints cost too much: %.1f vs %.1f ops/s",
			first.ThroughputOpsSec, last.ThroughputOpsSec)
	}
}
