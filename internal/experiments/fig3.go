package experiments

import (
	"fmt"
	"strings"

	"lfs/internal/core"
	"lfs/internal/ffs"
	"lfs/internal/workload"
)

func defaultLFSConfig() core.Config { return core.DefaultConfig() }
func defaultFFSConfig() ffs.Config  { return ffs.DefaultConfig() }

// Fig3Row is one bar group of Figure 3: files per second for the
// create, read, and delete phases of the small-file test.
type Fig3Row struct {
	FS        string
	FileSize  int
	NumFiles  int
	CreatePS  float64
	ReadPS    float64
	DeletePS  float64
	RawCreate workload.Phase
	RawRead   workload.Phase
	RawDelete workload.Phase
}

// Fig3Opts scales the experiment (the full paper size is 10000 1 KB
// files; tests use smaller counts for speed).
type Fig3Opts struct {
	Capacity  int64
	Files1K   int
	Files10K  int
	LFSConfig core.Config
	FFSConfig ffs.Config
}

// DefaultFig3Opts returns the paper's parameters.
func DefaultFig3Opts() Fig3Opts {
	return Fig3Opts{
		Capacity:  DiskCapacity,
		Files1K:   10000,
		Files10K:  1000,
		LFSConfig: defaultLFSConfig(),
		FFSConfig: defaultFFSConfig(),
	}
}

// Fig3 runs the §5.1 small-file test (create 10 MB of small files,
// flush the cache, read them in order, delete them) for 1 KB and
// 10 KB files on both file systems.
func Fig3(opts Fig3Opts) ([]Fig3Row, error) {
	var rows []Fig3Row
	cases := []struct {
		size  int
		count int
	}{
		{1024, opts.Files1K},
		{10240, opts.Files10K},
	}
	for _, c := range cases {
		for _, which := range []string{"LFS", "SunFFS"} {
			var sys *System
			var err error
			if which == "LFS" {
				sys, err = NewLFS(opts.Capacity, opts.LFSConfig)
			} else {
				sys, err = NewFFS(opts.Capacity, opts.FFSConfig)
			}
			if err != nil {
				return nil, err
			}
			w := workload.SmallFileOpts{
				NumFiles: c.count, FileSize: c.size,
				Dir: "/small", SyncBetweenPhases: true, Seed: 42,
			}
			res, err := workload.SmallFile(sys, w)
			if err != nil {
				return nil, fmt.Errorf("fig3 %s %dB: %w", which, c.size, err)
			}
			rows = append(rows, Fig3Row{
				FS: which, FileSize: c.size, NumFiles: c.count,
				CreatePS:  res.Create.OpsPerSec(),
				ReadPS:    res.Read.OpsPerSec(),
				DeletePS:  res.Delete.OpsPerSec(),
				RawCreate: res.Create, RawRead: res.Read, RawDelete: res.Delete,
			})
		}
	}
	return rows, nil
}

// FormatFig3 renders the rows as the Figure 3 table.
func FormatFig3(rows []Fig3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3 - Small file I/O (files per second)\n")
	fmt.Fprintf(&b, "%-8s %-8s %8s %10s %10s %10s\n", "fs", "size", "files", "create/s", "read/s", "delete/s")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-8s %8d %10.1f %10.1f %10.1f\n",
			r.FS, fmt.Sprintf("%dK", r.FileSize/1024), r.NumFiles, r.CreatePS, r.ReadPS, r.DeletePS)
	}
	return b.String()
}
