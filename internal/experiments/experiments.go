// Package experiments reproduces every figure of the paper's
// evaluation (§5) plus the §3.1 CPU-scaling observation and the §4.4
// recovery comparison. Each experiment builds fresh file systems on
// simulated WREN IV disks, runs the paper's workload, and returns the
// same rows/series the paper plots. cmd/lfsbench prints them; the
// repository's tests assert their shapes; bench_test.go exposes them
// as Go benchmarks.
package experiments

import (
	"fmt"

	"lfs/internal/core"
	"lfs/internal/disk"
	"lfs/internal/ffs"
	"lfs/internal/obs"
	"lfs/internal/sim"
	"lfs/internal/workload"
)

// DiskCapacity is the evaluation volume size: the paper formatted
// "around 300 megabytes of usable storage".
const DiskCapacity = 300 << 20

// System bundles a mounted file system with its disk for
// instrumentation.
type System struct {
	workload.System
	Name string
	Disk *disk.Disk
}

// MetricsSink, when set, supplies a metrics sampler for every LFS an
// experiment builds (a fresh sampler per instance — samplers bind to
// exactly one file system). cmd/lfsbench sets it when -metrics is
// given, so every experiment gains time-series sampling without each
// one growing a sampler option; an experiment that sets cfg.Metrics
// itself takes precedence. The name is the experiment-visible system
// label ("LFS"); the sink labels the returned sampler.
var MetricsSink func(name string) *obs.Sampler

// NewLFS formats and mounts an LFS on a fresh simulated disk.
func NewLFS(capacity int64, cfg core.Config) (*System, error) {
	if cfg.Metrics == nil && MetricsSink != nil {
		cfg.Metrics = MetricsSink("LFS")
	}
	d := disk.NewMem(capacity, sim.NewClock())
	if err := core.Format(d, cfg); err != nil {
		return nil, err
	}
	fs, err := core.Mount(d, cfg)
	if err != nil {
		return nil, err
	}
	return &System{System: fs, Name: "LFS", Disk: d}, nil
}

// NewFFS formats and mounts the SunOS-style baseline on a fresh
// simulated disk.
func NewFFS(capacity int64, cfg ffs.Config) (*System, error) {
	d := disk.NewMem(capacity, sim.NewClock())
	if err := ffs.Format(d, cfg); err != nil {
		return nil, err
	}
	fs, err := ffs.Mount(d, cfg)
	if err != nil {
		return nil, err
	}
	return &System{System: fs, Name: "SunFFS", Disk: d}, nil
}

// BothSystems returns a fresh LFS and FFS pair with default (paper)
// configurations on capacity-sized disks.
func BothSystems(capacity int64) (*System, *System, error) {
	l, err := NewLFS(capacity, core.DefaultConfig())
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: building LFS: %w", err)
	}
	f, err := NewFFS(capacity, ffs.DefaultConfig())
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: building FFS: %w", err)
	}
	return l, f, nil
}
