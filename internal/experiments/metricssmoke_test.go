package experiments

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"lfs/internal/core"
	"lfs/internal/obs"
	"lfs/internal/sim"
	"lfs/internal/workload"
)

// metricsTestOpts returns the test-sized metrics smoke configuration.
func metricsTestOpts() MetricsSmokeOpts {
	o := DefaultMetricsSmokeOpts()
	o.NumFiles = 500
	o.ChurnFiles = 1500
	o.CleanSegments = 6
	return o
}

// runMetricsWorkload runs the metrics smoke workload directly (the
// same sequence MetricsSmoke runs) with the given sampler — nil
// disables the plane entirely — and returns the system and mounted FS.
func runMetricsWorkload(t *testing.T, samp *obs.Sampler) (*System, *core.FS) {
	t.Helper()
	opts := metricsTestOpts()
	cfg := opts.LFSConfig
	cfg.Metrics = samp
	sys, err := NewLFS(opts.Capacity, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := workload.SmallFile(sys, workload.SmallFileOpts{
		NumFiles: opts.NumFiles, FileSize: opts.FileSize,
		Dir: "/small", SyncBetweenPhases: true, Seed: 42,
	}); err != nil {
		t.Fatal(err)
	}
	fs := sys.System.(*core.FS)
	if err := fs.Mkdir("/churn"); err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, opts.FileSize)
	for i := 0; i < opts.ChurnFiles; i++ {
		p := fmt.Sprintf("/churn/f%d", i)
		if err := fs.Create(p); err != nil {
			t.Fatal(err)
		}
		if err := fs.Write(p, 0, payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < opts.ChurnFiles; i += 2 {
		if err := fs.Remove(fmt.Sprintf("/churn/f%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.CleanUntil(fs.CleanSegments() + opts.CleanSegments); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	return sys, fs
}

// diskImage reads the entire simulated disk image through the backing
// store, which never touches the simulated clock.
func diskImage(t *testing.T, sys *System) []byte {
	t.Helper()
	buf := make([]byte, sys.Disk.Capacity())
	if err := sys.Disk.Store().ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestMetricsZeroPerturbation is the plane's core golden test:
// enabling sampling must change no simulated timestamp, no statistic,
// and no on-disk byte relative to the identical run without it.
func TestMetricsZeroPerturbation(t *testing.T) {
	sysPlain, fsPlain := runMetricsWorkload(t, nil)
	samp := obs.NewSampler(sim.Second)
	sysSampled, fsSampled := runMetricsWorkload(t, samp)

	if n := len(samp.Samples()); n < 2 {
		t.Fatalf("sampled run produced %d samples; the comparison is vacuous", n)
	}

	plain, sampled := fsPlain.StatsSnapshot(), fsSampled.StatsSnapshot()
	if plain.Time != sampled.Time {
		t.Errorf("sampling moved simulated time: %v vs %v", plain.Time, sampled.Time)
	}
	if plain.Disk.BusyTime != sampled.Disk.BusyTime {
		t.Errorf("sampling changed disk busy time: %v vs %v",
			plain.Disk.BusyTime, sampled.Disk.BusyTime)
	}
	if plain.CPUInstructions != sampled.CPUInstructions {
		t.Errorf("sampling charged CPU: %d vs %d",
			plain.CPUInstructions, sampled.CPUInstructions)
	}
	if !reflect.DeepEqual(plain, sampled) {
		t.Errorf("sampling changed the statistics snapshot:\nplain   %+v\nsampled %+v",
			plain, sampled)
	}
	if !bytes.Equal(diskImage(t, sysPlain), diskImage(t, sysSampled)) {
		t.Error("sampling changed the on-disk bytes")
	}
}

// TestMetricsByteDeterminism pins the JSONL export: two runs with the
// same seed must serialise byte-identically.
func TestMetricsByteDeterminism(t *testing.T) {
	runJSONL := func() []byte {
		opts := metricsTestOpts()
		opts.Metrics = obs.NewSampler(sim.Second)
		if _, err := MetricsSmoke(opts); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := opts.Metrics.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := runJSONL(), runJSONL()
	if len(a) == 0 {
		t.Fatal("empty metrics export")
	}
	if !bytes.Equal(a, b) {
		t.Error("same-seed runs exported different metrics bytes")
	}
	// And the export round-trips through the reader unchanged.
	samples, err := obs.ReadSamples(bytes.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) < 2 {
		t.Errorf("round-trip kept %d samples", len(samples))
	}
}

// TestMetricsFinalSampleEqualsAggregates pins the forced end-of-run
// sample against the live aggregates: the final sample IS the end
// state, exactly, not an approximation of it.
func TestMetricsFinalSampleEqualsAggregates(t *testing.T) {
	samp := obs.NewSampler(sim.Second)
	sys, fs := runMetricsWorkload(t, samp)
	fs.SampleMetricsNow()
	samples := samp.Samples()
	final := samples[len(samples)-1]
	snap := fs.StatsSnapshot()

	if got, want := final.Time, int64(snap.Time); got != want {
		t.Errorf("final sample time %d != snapshot time %d", got, want)
	}
	counters := map[string]int64{
		"log.blocks_written":       snap.Log.BlocksWritten,
		"log.segments_sealed":      snap.Log.SegmentsSealed,
		"log.checkpoints":          snap.Log.Checkpoints,
		"log.user_bytes":           snap.Log.UserBytesWritten,
		"cleaner.runs":             snap.Log.CleanerRuns,
		"cleaner.segments_cleaned": snap.Log.SegmentsCleaned,
		"disk.reads":               snap.Disk.Reads,
		"disk.writes":              snap.Disk.Writes,
		"disk.busy_ns":             int64(snap.Disk.BusyTime),
	}
	for name, want := range counters {
		if got := final.Counters[name]; got != want {
			t.Errorf("final %s = %d, aggregate = %d", name, got, want)
		}
	}
	gauges := map[string]float64{
		"seg.clean":          float64(snap.CleanSegments),
		"seg.live_bytes":     float64(snap.LiveBytes),
		"cleaner.write_cost": snap.WriteCost(),
		"disk.queue.depth":   float64(sys.Disk.QueueDepth()),
		"disk.queue.max":     float64(sys.Disk.MaxQueueDepth()),
	}
	for name, want := range gauges {
		if got := final.Gauges[name]; got != want {
			t.Errorf("final %s = %v, aggregate = %v", name, got, want)
		}
	}
	if final.Counters["ops"] == 0 {
		t.Error("final ops counter is zero")
	}

	// The final utilization histogram equals one rebuilt from the
	// public per-segment utilizations.
	want := obs.NewUtilizationHistogram()
	for _, u := range fs.SegmentUtilizations() {
		want.Observe(u)
	}
	if got := final.Hists["seg.util"].Hist(); !reflect.DeepEqual(got, want) {
		t.Errorf("final seg.util %v != rebuilt %v", got, want)
	}

	// The smoke experiment reports the same agreement.
	r, err := MetricsSmoke(metricsTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	if r.FinalBlocksWritten != r.Snapshot.Log.BlocksWritten {
		t.Errorf("smoke final blocks %d != snapshot %d",
			r.FinalBlocksWritten, r.Snapshot.Log.BlocksWritten)
	}
	if r.FinalSegmentsCleaned != r.Snapshot.Log.SegmentsCleaned {
		t.Errorf("smoke final cleaned %d != snapshot %d",
			r.FinalSegmentsCleaned, r.Snapshot.Log.SegmentsCleaned)
	}
	if r.FinalWriteCost != r.Snapshot.WriteCost() {
		t.Errorf("smoke final write cost %v != snapshot %v",
			r.FinalWriteCost, r.Snapshot.WriteCost())
	}
	if r.FinalSegmentsCleaned == 0 {
		t.Error("smoke run never cleaned; the series cannot exercise the cleaner")
	}
}
