package experiments

import (
	"fmt"
	"sort"
	"strings"

	"lfs/internal/core"
	"lfs/internal/sim"
	"lfs/internal/workload"
)

// CkptRow measures the checkpoint-interval trade-off of §4.4.1: "The
// window of vulnerability can be controlled by setting the
// checkpointing interval" — shorter intervals lose less work at a
// crash but spend more time writing inode-map blocks and checkpoint
// regions.
type CkptRow struct {
	IntervalSec float64
	// Checkpoints taken during the workload.
	Checkpoints int64
	// ThroughputOpsSec is the office-trace operation rate.
	ThroughputOpsSec float64
	// LiveFiles counts files created inside one
	// checkpoint-interval-sized window before the crash; LostFiles
	// of them are unreachable after checkpoint-only recovery. The
	// ratio demonstrates §4.4.1's vulnerability window: everything
	// since the last checkpoint is at risk, and the interval sets
	// how much that can be.
	LiveFiles int
	LostFiles int
	// MountMs is the post-crash recovery time (roll-forward
	// disabled, so the interval alone bounds the loss).
	MountMs float64
}

// CkptOpts parameterises the sweep.
type CkptOpts struct {
	Capacity  int64
	Intervals []sim.Duration
	Office    workload.OfficeOpts
}

// DefaultCkptOpts sweeps intervals around the paper's 30 seconds.
func DefaultCkptOpts() CkptOpts {
	o := workload.DefaultOffice()
	o.Ops = 8000
	o.TargetFiles = 1500
	o.MeanLifetimeOps = 2000
	return CkptOpts{
		Capacity:  64 << 20,
		Intervals: []sim.Duration{5 * sim.Second, 15 * sim.Second, 30 * sim.Second, 60 * sim.Second, 120 * sim.Second},
		Office:    o,
	}
}

// CheckpointAblation runs the office trace under each checkpoint
// interval, crashes at the end (the worst point: just before the next
// checkpoint would fire), and measures how much of the trace's file
// population the checkpoint-only recovery loses — the interval-bounded
// vulnerability window of §4.4.1.
func CheckpointAblation(opts CkptOpts) ([]CkptRow, error) {
	var rows []CkptRow
	for _, interval := range opts.Intervals {
		cfg := defaultLFSConfig()
		cfg.CheckpointInterval = interval
		cfg.RollForward = false // isolate the checkpoint window
		// Long write-back age: nothing reaches the log except
		// through segment-size pressure and checkpoints, keeping
		// the window honest.
		sys, err := NewLFS(opts.Capacity, cfg)
		if err != nil {
			return nil, err
		}
		lfs := sys.System.(*core.FS)
		office := opts.Office
		office.Seed = 31 // same trace for every interval
		res, err := workload.Office(sys, office)
		if err != nil {
			return nil, fmt.Errorf("ckpt ablation %v: %w", interval, err)
		}
		// Measure the vulnerability window deterministically: take
		// a checkpoint, run exactly one interval's worth of further
		// work, then crash. Everything created inside the window is
		// at risk; with roll-forward off it is all lost — the
		// quantity the interval knob controls.
		if err := lfs.Checkpoint(); err != nil {
			return nil, err
		}
		ckptAt := sys.Clock().Now()
		windowFiles := map[string]bool{}
		payload := make([]byte, 2048)
		// Stop just short of the interval so the periodic trigger
		// does not checkpoint the window we are about to lose, and
		// pace the work with think time (one save every half second
		// of simulated time, an editing user).
		window := interval - interval/20
		for i := 0; sys.Clock().Now().Sub(ckptAt) < window; i++ {
			p := fmt.Sprintf("/window%05d", i)
			if err := sys.Create(p); err != nil {
				return nil, err
			}
			if err := sys.Write(p, 0, payload); err != nil {
				return nil, err
			}
			windowFiles[p] = true
			sys.Clock().Advance(500 * sim.Millisecond)
		}
		st := lfs.Stats()
		lfs.Crash()
		before := sys.Clock().Now()
		recovered, err := core.Mount(sys.Disk, cfg)
		if err != nil {
			return nil, fmt.Errorf("ckpt ablation %v: remount: %w", interval, err)
		}
		mountMs := float64(sys.Clock().Now().Sub(before)) / float64(sim.Millisecond)
		// Probe the window files in sorted order: each Stat charges
		// simulated CPU and touches the cache, so probing in map
		// order would perturb the simulated timeline (and any
		// attached metrics samplers) from run to run.
		probes := make([]string, 0, len(windowFiles))
		for p := range windowFiles {
			probes = append(probes, p)
		}
		sort.Strings(probes)
		lost := 0
		for _, p := range probes {
			if _, err := recovered.Stat(p); err != nil {
				lost++
			}
		}
		rows = append(rows, CkptRow{
			IntervalSec:      interval.Seconds(),
			Checkpoints:      st.Checkpoints,
			ThroughputOpsSec: res.Elapsed.OpsPerSec(),
			LiveFiles:        len(windowFiles),
			LostFiles:        lost,
			MountMs:          mountMs,
		})
	}
	return rows, nil
}

// FormatCkpt renders the sweep.
func FormatCkpt(rows []CkptRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation - checkpoint interval (4.4.1's vulnerability window)\n")
	fmt.Fprintf(&b, "%-12s %12s %12s %16s %10s\n", "interval (s)", "checkpoints", "trace ops/s", "files lost", "mount ms")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12.0f %12d %12.1f %10d/%-5d %10.1f\n",
			r.IntervalSec, r.Checkpoints, r.ThroughputOpsSec, r.LostFiles, r.LiveFiles, r.MountMs)
	}
	return b.String()
}
