package experiments

import (
	"bytes"
	"fmt"
	"strings"

	"lfs/internal/core"
	"lfs/internal/disk"
	"lfs/internal/server"
	"lfs/internal/shard"
	"lfs/internal/sim"
)

// ShardingOpts scales the multi-log scale-out experiment: a fixed
// population of closed-loop commit clients drives 1..N independent
// logs behind one router, measuring how throughput grows as the
// single append point — the paper's implicit bottleneck — is split.
type ShardingOpts struct {
	// TotalCapacity is divided evenly among a cell's shards, so every
	// cell manages the same number of bytes.
	TotalCapacity int64
	// ShardCounts is the sweep's x-axis; it should start at 1 so
	// speedups have a base.
	ShardCounts []int
	// Clients, OpsPerClient, WriteSize, and ThinkTime shape the
	// closed loops (see server.Config); the client population is the
	// same for every shard count.
	Clients      int
	OpsPerClient int
	WriteSize    int
	ThinkTime    sim.Duration
	// Seed drives every run; the same seed reproduces every schedule
	// and every per-shard disk image byte for byte.
	Seed int64
	// Config is the per-shard base configuration.
	Config core.Config
	// CrashCut is the 1-based disk-write index at which the crash
	// scenario cuts power on shard 0.
	CrashCut int64
}

// DefaultShardingOpts returns the paper-scale sweep: 32 clients
// against 1..8 shards, group commit on, on a CPU twenty times the
// Sun4. Sharding attacks the single append point, which only binds
// once the CPU outruns one disk — exactly the §3.1 trend argument
// (CPU speed growing exponentially against flat disk speed), so the
// experiment models the machine that trend produces. On the original
// 10-MIPS Sun4 the serial CPU dominates and extra logs cannot help.
func DefaultShardingOpts() ShardingOpts {
	cfg := defaultLFSConfig()
	cfg.GroupCommit = true
	cfg.MIPS = 20 * sim.Sun4MIPS
	return ShardingOpts{
		TotalCapacity: 256 << 20,
		ShardCounts:   []int{1, 2, 4, 8},
		Clients:       32,
		OpsPerClient:  128,
		WriteSize:     4096,
		Seed:          42,
		Config:        cfg,
		CrashCut:      5,
	}
}

// QuickShardingOpts returns the CI-sized variant.
func QuickShardingOpts() ShardingOpts {
	o := DefaultShardingOpts()
	o.TotalCapacity = 96 << 20
	o.ShardCounts = []int{1, 2, 4}
	o.Clients = 16
	o.OpsPerClient = 48
	return o
}

// ShardingRow is one shard count's measurements.
type ShardingRow struct {
	Shards  int
	Clients int
	// OpsPerSec is aggregate committed-operation throughput; Speedup
	// is relative to the sweep's first row.
	OpsPerSec float64
	Speedup   float64
	// P50/P95/P99 are operation-latency percentiles merged across
	// clients.
	P50 sim.Duration
	P95 sim.Duration
	P99 sim.Duration
	// WritesPerOp is disk write requests per operation, summed over
	// every shard's disk.
	WritesPerOp float64
}

// ShardingCrash summarises the fault-injection scenario: power cut
// on one shard of four mid-run while the others keep committing,
// then per-shard recovery through the router.
type ShardingCrash struct {
	Shards int
	// CutWrite is the disk-write index the power cut fired at.
	CutWrite int64
	// ToleratedErrors counts client operations abandoned while the
	// crashed shard was down; HealthyOps counts operations that
	// committed during the same window.
	ToleratedErrors int64
	HealthyOps      int64
	// FilesRetained counts pre-crash committed files still present
	// (with their full size) after recovery — over all shards,
	// crashed one included.
	FilesRetained int
	// FsckOk reports that every shard's image passed the offline
	// consistency check after the final unmount.
	FsckOk bool
}

// ShardingResult is the whole experiment: the scale-out curve, the
// crash scenario, and the same-seed determinism verdict.
type ShardingResult struct {
	Rows  []ShardingRow
	Crash ShardingCrash
	// Deterministic reports that rerunning the largest cell with the
	// same seed reproduced every shard's disk image byte for byte.
	Deterministic bool
}

// NewSharded formats and mounts an n-shard system over fresh
// memory-backed disks on one simulated clock, wiring a fresh metrics
// sampler per shard when the MetricsSink is installed (series are
// labelled shard-0, shard-1, ...).
func NewSharded(n int, totalCapacity int64, cfg core.Config) (*shard.FS, error) {
	opts := shard.Options{Base: cfg}
	if MetricsSink != nil {
		opts.ShardConfig = func(i int, c core.Config) core.Config {
			if c.Metrics == nil {
				c.Metrics = MetricsSink("shard")
			}
			return c
		}
	}
	return shard.NewMem(n, totalCapacity, opts)
}

// runCell builds a fresh n-shard system, drives the configured client
// population, and returns the system (still mounted) with the run's
// row.
func runCell(opts ShardingOpts, n int) (*shard.FS, ShardingRow, error) {
	row := ShardingRow{Shards: n, Clients: opts.Clients}
	fs, err := NewSharded(n, opts.TotalCapacity, opts.Config)
	if err != nil {
		return nil, row, fmt.Errorf("sharding: %d shards: %w", n, err)
	}
	scfg := server.Config{
		Clients:        opts.Clients,
		OpsPerClient:   opts.OpsPerClient,
		WriteSize:      opts.WriteSize,
		FilesPerClient: 8,
		ThinkTime:      opts.ThinkTime,
		Seed:           opts.Seed,
	}
	if samp := fs.ShardFS(0).Metrics(); samp != nil {
		scfg.MetricsInterval = samp.Interval()
	}
	res, err := server.Run(fs, scfg)
	if err != nil {
		return nil, row, fmt.Errorf("sharding: %d shards: %w", n, err)
	}
	fs.SampleMetricsNow()
	row.OpsPerSec = res.OpsPerSecond()
	if row.P50, row.P95, row.P99, err = latencyPercentiles(res.PerClient); err != nil {
		return nil, row, fmt.Errorf("sharding: merging latency histograms: %w", err)
	}
	var writes int64
	for i := 0; i < n; i++ {
		writes += fs.Disk(i).Stats().Writes
	}
	row.WritesPerOp = float64(writes) / float64(res.Ops)
	return fs, row, nil
}

// shardImages snapshots every shard's backing store after unmount.
func shardImages(fs *shard.FS) ([][]byte, error) {
	images := make([][]byte, fs.NumShards())
	for i := range images {
		st := fs.Disk(i).Store()
		buf := make([]byte, st.Size())
		if err := st.ReadAt(buf, 0); err != nil {
			return nil, fmt.Errorf("sharding: reading shard %d image: %w", i, err)
		}
		images[i] = buf
	}
	return images, nil
}

// Sharding sweeps shard counts at a fixed client population, then
// runs the crash scenario and the determinism rerun.
func Sharding(opts ShardingOpts) (*ShardingResult, error) {
	if len(opts.ShardCounts) == 0 {
		return nil, fmt.Errorf("sharding: empty shard counts")
	}
	res := &ShardingResult{}
	var base float64
	largest := 0
	for i, n := range opts.ShardCounts {
		if n < 1 {
			return nil, fmt.Errorf("sharding: shard count %d", n)
		}
		if n > largest {
			largest = n
		}
		fs, row, err := runCell(opts, n)
		if err != nil {
			return nil, err
		}
		if err := fs.Unmount(); err != nil {
			return nil, fmt.Errorf("sharding: %d shards: unmount: %w", n, err)
		}
		if i == 0 {
			base = row.OpsPerSec
		}
		row.Speedup = speedup(row.OpsPerSec, base)
		res.Rows = append(res.Rows, row)
	}

	// Determinism: rerun the largest cell with the same seed and
	// compare every shard's image byte for byte.
	det, err := shardingDeterministic(opts, largest)
	if err != nil {
		return nil, err
	}
	res.Deterministic = det

	crash, err := shardingCrash(opts)
	if err != nil {
		return nil, err
	}
	res.Crash = crash
	return res, nil
}

// shardingDeterministic reruns the n-shard cell twice and compares
// images.
func shardingDeterministic(opts ShardingOpts, n int) (bool, error) {
	var prev [][]byte
	for run := 0; run < 2; run++ {
		fs, _, err := runCell(opts, n)
		if err != nil {
			return false, err
		}
		if err := fs.Unmount(); err != nil {
			return false, fmt.Errorf("sharding: determinism unmount: %w", err)
		}
		images, err := shardImages(fs)
		if err != nil {
			return false, err
		}
		if run == 0 {
			prev = images
			continue
		}
		for i := range images {
			if !bytes.Equal(prev[i], images[i]) {
				return false, nil
			}
		}
	}
	return true, nil
}

// shardingCrash runs the four-shard fault scenario: a healthy
// committed phase, a power cut on shard 0 mid-phase-two with the
// healthy shards still committing, per-shard recovery through the
// router, and an offline fsck of all four images.
func shardingCrash(opts ShardingOpts) (ShardingCrash, error) {
	const n = 4
	out := ShardingCrash{Shards: n, CutWrite: opts.CrashCut}
	fs, err := NewSharded(n, opts.TotalCapacity, opts.Config)
	if err != nil {
		return out, fmt.Errorf("sharding: crash: %w", err)
	}
	scfg := server.Config{
		Clients:        opts.Clients,
		OpsPerClient:   opts.OpsPerClient,
		WriteSize:      opts.WriteSize,
		FilesPerClient: 8,
		ThinkTime:      opts.ThinkTime,
		Seed:           opts.Seed,
	}

	// Phase A: healthy, every op fsynced; then Sync commits the
	// directory tree too.
	if _, err := server.Run(fs, scfg); err != nil {
		return out, fmt.Errorf("sharding: crash phase A: %w", err)
	}
	if err := fs.Sync(); err != nil {
		return out, fmt.Errorf("sharding: crash phase A sync: %w", err)
	}

	// Phase B: arm the power cut on shard 0 and keep driving all
	// shards, tolerating the dead shard's errors.
	fs.Disk(0).SetFaultPolicy(&disk.CrashPlan{CutWrite: opts.CrashCut})
	scfgB := scfg
	scfgB.Seed = opts.Seed + 1
	scfgB.OnOpError = func(client int, err error) bool { return true }
	resB, err := server.Run(fs, scfgB)
	if err != nil {
		return out, fmt.Errorf("sharding: crash phase B: %w", err)
	}
	out.ToleratedErrors = resB.Errors
	out.HealthyOps = resB.Ops

	// Recover shard 0 through the router; the other shards are
	// untouched.
	if err := fs.RecoverShard(0); err != nil {
		return out, fmt.Errorf("sharding: recovering shard 0: %w", err)
	}

	// Every phase-A file must have survived somewhere with its full
	// size — on the crashed shard via its own roll-forward, on the
	// healthy shards trivially.
	for c := 1; c <= scfg.Clients; c++ {
		for s := 0; s < scfg.FilesPerClient; s++ {
			p := fmt.Sprintf("/client%02d/f%03d", c, s)
			fi, err := fs.Stat(p)
			if err != nil {
				return out, fmt.Errorf("sharding: post-recovery %s: %w", p, err)
			}
			if fi.Size != int64(opts.WriteSize) {
				return out, fmt.Errorf("sharding: post-recovery %s: size %d, want %d", p, fi.Size, opts.WriteSize)
			}
			out.FilesRetained++
		}
	}

	if err := fs.Unmount(); err != nil {
		return out, fmt.Errorf("sharding: crash unmount: %w", err)
	}
	fsckCfg := opts.Config
	fsckCfg.Trace, fsckCfg.Metrics = nil, nil
	for i := 0; i < n; i++ {
		rep, err := core.Fsck(fs.Disk(i), fsckCfg)
		if err != nil {
			return out, fmt.Errorf("sharding: fsck shard %d: %w", i, err)
		}
		if !rep.Ok() {
			return out, fmt.Errorf("sharding: fsck shard %d: %v", i, rep.Problems)
		}
	}
	out.FsckOk = true
	return out, nil
}

// FormatSharding renders the scale-out curve and the crash verdict.
func FormatSharding(res *ShardingResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sharding - ops/s vs shard count at fixed clients (multi-log scale-out)\n")
	fmt.Fprintf(&b, "%8s %8s %12s %8s %10s %8s %8s %8s\n",
		"shards", "clients", "ops/s", "speedup", "w/op", "p50ms", "p95ms", "p99ms")
	for _, r := range res.Rows {
		fmt.Fprintf(&b, "%8d %8d %12.1f %8.2f %10.2f %8.2f %8.2f %8.2f\n",
			r.Shards, r.Clients, r.OpsPerSec, r.Speedup, r.WritesPerOp,
			ms(r.P50), ms(r.P95), ms(r.P99))
	}
	fmt.Fprintf(&b, "deterministic: %v (largest cell rerun, per-shard images byte-identical)\n",
		res.Deterministic)
	c := res.Crash
	fmt.Fprintf(&b, "crash: %d shards, power cut at shard-0 write %d: %d ops committed on healthy shards, %d errors tolerated, %d files retained after recovery, fsck ok: %v\n",
		c.Shards, c.CutWrite, c.HealthyOps, c.ToleratedErrors, c.FilesRetained, c.FsckOk)
	return b.String()
}
