package experiments

import (
	"fmt"
	"strings"

	"lfs/internal/core"
	"lfs/internal/workload"
)

// The cleaning curve is the §5 scaling question made quantitative:
// how does the cleaner's write cost grow with disk utilization, and
// how much of it do cost-benefit victim selection and hot/cold
// segregation on write-out buy back under skewed traffic? Three arms
// run the same seeded Zipf overwrite churn at each target utilization:
//
//   - greedy:          greedy victims, single write head (the paper's
//     base policy);
//   - cost-benefit:    age-weighted victims, single write head (the
//     selection refinement alone);
//   - cost-benefit+seg: age-weighted victims plus the cold head, so
//     relocated cold data compacts into stable segments instead of
//     being remixed with hot writes.
//
// The expected shape: all arms are cheap at low utilization, costs
// grow superlinearly past ~0.7, and at 0.8 the combined arm undercuts
// greedy because its cold segments stop being re-cleaned every pass.

// CleaningRow is one (arm, utilization) point of the curve.
type CleaningRow struct {
	// Arm names the policy combination ("greedy", "cost-benefit",
	// "cost-benefit+seg").
	Arm string
	// TargetUtil is the x-axis setpoint; DiskUtil is the utilization
	// actually reached after the churn (live bytes / log capacity).
	TargetUtil float64
	DiskUtil   float64
	// WriteCost is the paper's cleaning cost at end of run:
	// (segment reads + live copies + new space) / new space; 1.0
	// means cleaning was free, 0 means the cleaner never ran.
	WriteCost float64
	// WriteAmp is total log bytes written per user byte.
	WriteAmp float64
	// SegmentsCleaned and LiveCopied detail the cleaner's work.
	SegmentsCleaned int64
	LiveCopied      int64
}

// CleaningOpts parameterises the sweep.
type CleaningOpts struct {
	Capacity int64
	// FileSize is the per-file payload of the Zipf population.
	FileSize int
	// OverwritesPerFile scales churn with the population so every
	// utilization point sees comparable per-file overwrite pressure.
	OverwritesPerFile float64
	// Zipf shapes the skew (S, V) and sync cadence; Files and
	// Overwrites are derived per point.
	Zipf workload.ZipfOpts
	// Utilizations is the x-axis sweep of target disk utilizations.
	Utilizations []float64
}

// DefaultCleaningOpts sweeps to 0.84 utilization — past the paper's
// operating point — on a 48 MB volume.
func DefaultCleaningOpts() CleaningOpts {
	return CleaningOpts{
		Capacity:          48 << 20,
		FileSize:          4096,
		OverwritesPerFile: 3,
		Zipf:              workload.DefaultZipf(),
		Utilizations:      []float64{0.45, 0.55, 0.65, 0.75, 0.80, 0.84},
	}
}

// cleaningArms enumerates the policy combinations under test.
var cleaningArms = []struct {
	Name        string
	Policy      core.CleanPolicy
	Segregation bool
}{
	{"greedy", core.CleanGreedy, false},
	{"cost-benefit", core.CleanCostBenefit, false},
	{"cost-benefit+seg", core.CleanCostBenefit, true},
}

// CleaningCurve runs every arm over the utilization sweep. Each point
// builds a fresh LFS, fills it with a file population sized for the
// target utilization, and churns it with the seeded Zipf overwrite
// load; the row records the end-of-run write cost.
func CleaningCurve(opts CleaningOpts) ([]CleaningRow, error) {
	var rows []CleaningRow
	for _, arm := range cleaningArms {
		for _, u := range opts.Utilizations {
			cfg := defaultLFSConfig()
			cfg.Policy = arm.Policy
			cfg.Segregation = arm.Segregation
			// A small cache keeps overwrite traffic flowing to the
			// log; headroom above the top setpoint lets the
			// population plus its metadata fit under the admission
			// limit. Smaller segments keep the clean-segment reserve a
			// small fraction of the disk so the high-utilization
			// points stay feasible on bench-sized volumes — but the
			// cleaner activates only at flush entry, so the threshold
			// must cover a worst-case full-cache flush
			// (CacheBlocks·BlockSize/SegmentSize = 4 segments here)
			// plus metadata spill.
			cfg.CacheBlocks = 256
			cfg.MaxLiveFraction = 0.92
			cfg.SegmentSize = 256 << 10
			cfg.CleanThresholdSegments = 8
			cfg.CleanTargetSegments = 12
			sys, err := NewLFS(opts.Capacity, cfg)
			if err != nil {
				return nil, err
			}
			lfs := sys.System.(*core.FS)
			z := opts.Zipf
			z.FileSize = opts.FileSize
			//lfslint:allow floataccum workload sizing applies the utilization target once per cell; nothing accumulates
			z.Files = int(u * float64(lfs.LogCapacity()) / float64(opts.FileSize))
			//lfslint:allow floataccum workload sizing applies the overwrite factor once per cell; nothing accumulates
			z.Overwrites = int(opts.OverwritesPerFile * float64(z.Files))
			if _, err := workload.ZipfOverwrite(sys, z); err != nil {
				return nil, fmt.Errorf("cleaning %s u=%.2f: %w", arm.Name, u, err)
			}
			snap := lfs.StatsSnapshot()
			rows = append(rows, CleaningRow{
				Arm:             arm.Name,
				TargetUtil:      u,
				DiskUtil:        float64(lfs.LiveBytes()) / float64(lfs.LogCapacity()),
				WriteCost:       snap.WriteCost(),
				WriteAmp:        snap.Log.WriteAmplification(cfg.BlockSize),
				SegmentsCleaned: snap.Log.SegmentsCleaned,
				LiveCopied:      snap.Log.CleanerLiveCopied,
			})
		}
	}
	return rows, nil
}

// CleaningAt returns the row of the given arm at the given target
// utilization, for headline checks and benchjson keys.
func CleaningAt(rows []CleaningRow, arm string, util float64) (CleaningRow, bool) {
	for _, r := range rows {
		if r.Arm == arm && r.TargetUtil == util {
			return r, true
		}
	}
	return CleaningRow{}, false
}

// FormatCleaning renders the curve grouped by arm.
func FormatCleaning(rows []CleaningRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cleaning curve - write cost vs disk utilization under Zipf overwrites\n")
	fmt.Fprintf(&b, "%-18s %8s %8s %10s %10s %10s %10s\n",
		"arm", "target", "reached", "write cost", "write amp", "cleaned", "copied")
	last := ""
	for _, r := range rows {
		if last != "" && r.Arm != last {
			fmt.Fprintln(&b)
		}
		last = r.Arm
		fmt.Fprintf(&b, "%-18s %8.2f %8.2f %10.2f %10.2f %10d %10d\n",
			r.Arm, r.TargetUtil, r.DiskUtil, r.WriteCost, r.WriteAmp,
			r.SegmentsCleaned, r.LiveCopied)
	}
	return b.String()
}
