package experiments

import (
	"strings"
	"testing"

	"lfs/internal/sim"
)

// TestShardingShape asserts the experiment's headline claims at the
// CI scale: throughput grows with shard count, the same seed
// reproduces every shard image, and the crash scenario recovers the
// crashed shard without losing the healthy shards' commits.
func TestShardingShape(t *testing.T) {
	res, err := Sharding(QuickShardingOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(res.Rows))
	}
	one, four := res.Rows[0], res.Rows[2]
	if one.Shards != 1 || four.Shards != 4 {
		t.Fatalf("row shard counts %d, %d", one.Shards, four.Shards)
	}
	// Splitting the append point must pay: at least 1.5x at 4 shards
	// even at the small CI scale (measured ~2.1x).
	if four.Speedup < 1.5 {
		t.Errorf("speedup at 4 shards %.2f, want >= 1.5", four.Speedup)
	}
	// More logs mean smaller group-commit batches, so per-op write
	// count must rise, not fall — the scaling comes from overlapping
	// disks, not from writing less.
	if four.WritesPerOp <= one.WritesPerOp {
		t.Errorf("writes/op %.2f at 4 shards vs %.2f at 1; want higher",
			four.WritesPerOp, one.WritesPerOp)
	}
	if !res.Deterministic {
		t.Error("same-seed rerun of the largest cell diverged")
	}
	c := res.Crash
	if !c.FsckOk {
		t.Error("post-crash fsck failed")
	}
	if c.ToleratedErrors == 0 {
		t.Error("crash phase tolerated no errors; the power cut never bit")
	}
	if c.HealthyOps == 0 {
		t.Error("no operations committed while one shard was down")
	}
	// runCell drives FilesPerClient=8 files per client; every one must
	// survive the crash and recovery.
	wantFiles := QuickShardingOpts().Clients * 8
	if c.FilesRetained != wantFiles {
		t.Errorf("files retained %d, want %d", c.FilesRetained, wantFiles)
	}
}

// TestShardingFormat pins the output layer.
func TestShardingFormat(t *testing.T) {
	res := &ShardingResult{
		Rows: []ShardingRow{
			{Shards: 1, Clients: 32, OpsPerSec: 250, Speedup: 1,
				WritesPerOp: 0.04, P50: 200 * sim.Millisecond,
				P95: 290 * sim.Millisecond, P99: 298 * sim.Millisecond},
			{Shards: 8, Clients: 32, OpsPerSec: 890, Speedup: 3.38,
				WritesPerOp: 0.26, P50: 58 * sim.Millisecond,
				P95: 96 * sim.Millisecond, P99: 99 * sim.Millisecond},
		},
		Crash: ShardingCrash{Shards: 4, CutWrite: 5, ToleratedErrors: 992,
			HealthyOps: 3104, FilesRetained: 256, FsckOk: true},
		Deterministic: true,
	}
	out := FormatSharding(res)
	if lines := strings.Count(out, "\n"); lines != 6 {
		t.Errorf("formatted output has %d lines, want 6:\n%s", lines, out)
	}
	for _, want := range []string{"shards", "890.0", "3.38", "deterministic: true",
		"992 errors tolerated", "256 files retained", "fsck ok: true"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted output missing %q:\n%s", want, out)
		}
	}
}

// TestShardingRejectsBadOpts covers the error paths.
func TestShardingRejectsBadOpts(t *testing.T) {
	opts := QuickShardingOpts()
	opts.ShardCounts = nil
	if _, err := Sharding(opts); err == nil {
		t.Error("empty shard counts accepted")
	}
	opts = QuickShardingOpts()
	opts.ShardCounts = []int{0}
	if _, err := Sharding(opts); err == nil {
		t.Error("zero shard count accepted")
	}
}
