package experiments

import (
	"fmt"
	"strings"

	"lfs/internal/core"
	"lfs/internal/obs"
	"lfs/internal/sim"
	"lfs/internal/workload"
)

// MetricsSmokeOpts scales the metrics-plane smoke experiment: the
// trace smoke's workload (small-file pass, churn, explicit cleaning)
// run under a metrics sampler, so every series the plane exports moves
// during the run.
type MetricsSmokeOpts struct {
	Capacity int64
	// NumFiles/FileSize parameterise the small-file pass; ChurnFiles
	// and CleanSegments force cleaner activity (see TraceSmokeOpts).
	NumFiles      int
	FileSize      int
	ChurnFiles    int
	CleanSegments int
	// Interval is the sampling interval in simulated time.
	Interval  sim.Duration
	LFSConfig core.Config
	// Metrics, when non-nil, is used instead of a fresh sampler, so a
	// caller can export the JSONL afterwards (Interval is ignored).
	Metrics *obs.Sampler
}

// DefaultMetricsSmokeOpts returns a CI-sized configuration sampling
// once per simulated second over a couple of simulated minutes.
func DefaultMetricsSmokeOpts() MetricsSmokeOpts {
	return MetricsSmokeOpts{
		Capacity:      64 << 20,
		NumFiles:      2000,
		FileSize:      1024,
		ChurnFiles:    3000,
		CleanSegments: 10,
		Interval:      sim.Second,
		LFSConfig:     defaultLFSConfig(),
	}
}

// MetricsSmokeResult reports the series shape plus the final sample's
// agreement with the end-of-run aggregates — the property the plane
// promises: the last (forced) sample IS the end state, not an
// approximation of it.
type MetricsSmokeResult struct {
	// Samples and Series describe the exported time series.
	Samples int
	Series  int
	// Elapsed is the simulated duration covered by the samples.
	Elapsed sim.Duration

	// FinalOps/FinalBlocksWritten/FinalSegmentsCleaned are counters
	// from the final sample; the matching Snapshot fields must equal
	// them exactly.
	FinalOps             int64
	FinalBlocksWritten   int64
	FinalSegmentsCleaned int64
	// FinalWriteCost and FinalCleanSegs are gauges from the final
	// sample.
	FinalWriteCost float64
	FinalCleanSegs float64
	// FinalUtil is the final segment-utilization histogram.
	FinalUtil obs.Histogram

	Snapshot core.StatsSnapshot
	Final    obs.Sample
}

// MetricsSmoke runs the metrics-plane smoke experiment: the small-file
// benchmark plus churn and cleaning with a sampler attached, ending in
// a forced sample so the series' final values pin the end-of-run
// state.
func MetricsSmoke(opts MetricsSmokeOpts) (*MetricsSmokeResult, error) {
	samp := opts.Metrics
	if samp == nil && MetricsSink != nil {
		// lfsbench -metrics: let the sink label the sampler and keep
		// it for the combined JSONL export.
		samp = MetricsSink("LFS")
	}
	if samp == nil {
		interval := opts.Interval
		if interval <= 0 {
			interval = sim.Second
		}
		samp = obs.NewSampler(interval)
	}
	cfg := opts.LFSConfig
	cfg.Metrics = samp
	sys, err := NewLFS(opts.Capacity, cfg)
	if err != nil {
		return nil, err
	}
	if _, err := workload.SmallFile(sys, workload.SmallFileOpts{
		NumFiles: opts.NumFiles, FileSize: opts.FileSize,
		Dir: "/small", SyncBetweenPhases: true, Seed: 42,
	}); err != nil {
		return nil, fmt.Errorf("metricssmoke small-file: %w", err)
	}

	fs, ok := sys.System.(*core.FS)
	if !ok {
		return nil, fmt.Errorf("metricssmoke: system is not an LFS")
	}
	if err := fs.Mkdir("/churn"); err != nil {
		return nil, err
	}
	payload := make([]byte, opts.FileSize)
	for i := 0; i < opts.ChurnFiles; i++ {
		p := fmt.Sprintf("/churn/f%d", i)
		if err := fs.Create(p); err != nil {
			return nil, err
		}
		if err := fs.Write(p, 0, payload); err != nil {
			return nil, err
		}
	}
	if err := fs.Sync(); err != nil {
		return nil, err
	}
	for i := 0; i < opts.ChurnFiles; i += 2 {
		if err := fs.Remove(fmt.Sprintf("/churn/f%d", i)); err != nil {
			return nil, err
		}
	}
	if err := fs.Sync(); err != nil {
		return nil, err
	}
	if _, err := fs.CleanUntil(fs.CleanSegments() + opts.CleanSegments); err != nil {
		return nil, fmt.Errorf("metricssmoke clean: %w", err)
	}
	if err := fs.Sync(); err != nil {
		return nil, err
	}
	fs.SampleMetricsNow()

	samples := samp.Samples()
	if len(samples) < 2 {
		return nil, fmt.Errorf("metricssmoke: only %d samples over the run", len(samples))
	}
	final := samples[len(samples)-1]
	out := &MetricsSmokeResult{
		Samples:              len(samples),
		Series:               len(obs.SeriesNames(samples)),
		Elapsed:              sim.Time(final.Time).Sub(sim.Time(samples[0].Time)),
		FinalOps:             final.Counters["ops"],
		FinalBlocksWritten:   final.Counters["log.blocks_written"],
		FinalSegmentsCleaned: final.Counters["cleaner.segments_cleaned"],
		FinalWriteCost:       final.Gauges["cleaner.write_cost"],
		FinalCleanSegs:       final.Gauges["seg.clean"],
		FinalUtil:            final.Hists["seg.util"].Hist(),
		Snapshot:             fs.StatsSnapshot(),
		Final:                final,
	}
	return out, nil
}

// FormatMetricsSmoke renders the result as the smoke-test report.
func FormatMetricsSmoke(r *MetricsSmokeResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Metrics smoke test - small-file workload with cleaning, sampled on the sim clock\n")
	fmt.Fprintf(&b, "%d samples over %v, %d series\n", r.Samples, r.Elapsed, r.Series)
	fmt.Fprintf(&b, "final: %d ops, %d blocks written, %d segments cleaned, write cost %.2f (stats %.2f), %g clean segments\n",
		r.FinalOps, r.FinalBlocksWritten, r.FinalSegmentsCleaned,
		r.FinalWriteCost, r.Snapshot.WriteCost(), r.FinalCleanSegs)
	fmt.Fprintf(&b, "segment utilisation: %v\n", r.FinalUtil)
	return b.String()
}
