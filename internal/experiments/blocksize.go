package experiments

import (
	"fmt"
	"strings"

	"lfs/internal/core"
	"lfs/internal/workload"
)

// BlockSizeRow measures the block-size trade-off: small blocks reduce
// internal fragmentation for the office environment's ~1 KB files but
// cost more per-block CPU and metadata; large blocks waste space. The
// paper chose 4 KB for LFS against SunOS's 8 KB.
type BlockSizeRow struct {
	BlockSize int
	// CreatePS is small-file creation throughput.
	CreatePS float64
	// ReadPS is the post-flush whole-file read rate.
	ReadPS float64
	// StorageOverhead is live log bytes per user byte (internal
	// fragmentation plus metadata).
	StorageOverhead float64
}

// BlockSizeOpts parameterises the sweep.
type BlockSizeOpts struct {
	Capacity   int64
	Files      int
	FileSize   int
	BlockSizes []int
}

// DefaultBlockSizeOpts sweeps 1-16 KB blocks over the paper's 1 KB
// small-file workload.
func DefaultBlockSizeOpts() BlockSizeOpts {
	// Files is sized so even the 16 KB sweep point (one block per
	// 1 KB file) fits the admission limit: 3000 × 16 KB = 48 MB of
	// 54 MB.
	return BlockSizeOpts{
		Capacity:   64 << 20,
		Files:      3000,
		FileSize:   1024,
		BlockSizes: []int{1024, 2048, 4096, 8192, 16384},
	}
}

// BlockSizeAblation runs the small-file workload under each LFS block
// size.
func BlockSizeAblation(opts BlockSizeOpts) ([]BlockSizeRow, error) {
	var rows []BlockSizeRow
	for _, bs := range opts.BlockSizes {
		cfg := defaultLFSConfig()
		cfg.BlockSize = bs
		cfg.CacheBlocks = (15 << 20) / bs
		sys, err := NewLFS(opts.Capacity, cfg)
		if err != nil {
			return nil, fmt.Errorf("blocksize %d: %w", bs, err)
		}
		lfs := sys.System.(*core.FS)
		res, err := workload.SmallFile(sys, workload.SmallFileOpts{
			NumFiles: opts.Files, FileSize: opts.FileSize,
			Dir: "/s", SyncBetweenPhases: true, Seed: 42,
		})
		if err != nil {
			return nil, fmt.Errorf("blocksize %d: %w", bs, err)
		}
		row := BlockSizeRow{
			BlockSize: bs,
			CreatePS:  res.Create.OpsPerSec(),
			ReadPS:    res.Read.OpsPerSec(),
		}
		// Overhead measured at the point of peak population: the
		// delete phase already ran, so recreate the population.
		userBytes := int64(opts.Files) * int64(opts.FileSize)
		payload := make([]byte, opts.FileSize)
		for i := 0; i < opts.Files; i++ {
			p := fmt.Sprintf("/s/g%06d", i)
			if err := sys.Create(p); err != nil {
				return nil, err
			}
			if err := sys.Write(p, 0, payload); err != nil {
				return nil, err
			}
		}
		if err := sys.Sync(); err != nil {
			return nil, err
		}
		row.StorageOverhead = float64(lfs.LiveBytes()) / float64(userBytes)
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatBlockSize renders the sweep.
func FormatBlockSize(rows []BlockSizeRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation - LFS block size on the 1KB small-file workload\n")
	fmt.Fprintf(&b, "%-10s %10s %10s %18s\n", "block", "create/s", "read/s", "live bytes/user")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %10.1f %10.1f %18.2f\n",
			fmt.Sprintf("%dB", r.BlockSize), r.CreatePS, r.ReadPS, r.StorageOverhead)
	}
	return b.String()
}
