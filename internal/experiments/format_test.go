package experiments

import (
	"strings"
	"testing"
)

// These tests pin the formatting layer: every table renderer must
// produce a header plus one row per input, with the values visible.

func TestFormatFig3(t *testing.T) {
	rows := []Fig3Row{
		{FS: "LFS", FileSize: 1024, NumFiles: 10, CreatePS: 111.5, ReadPS: 222.5, DeletePS: 333.5},
		{FS: "SunFFS", FileSize: 10240, NumFiles: 5, CreatePS: 1, ReadPS: 2, DeletePS: 3},
	}
	out := FormatFig3(rows)
	for _, want := range []string{"Figure 3", "LFS", "SunFFS", "111.5", "333.5", "1K", "10K"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatFig3 missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines != 4 {
		t.Errorf("FormatFig3 has %d lines, want 4", lines)
	}
}

func TestFormatFig4(t *testing.T) {
	rows := []Fig4Row{
		{FS: "LFS", Phase: "seq write", KBps: 1200},
		{FS: "SunFFS", Phase: "seq write", KBps: 800},
		{FS: "LFS", Phase: "rand write", KBps: 1100},
		{FS: "SunFFS", Phase: "rand write", KBps: 300},
	}
	out := FormatFig4(rows)
	for _, want := range []string{"Figure 4", "seq write", "rand write", "1200", "300"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatFig4 missing %q:\n%s", want, out)
		}
	}
	// One row per phase, not per (fs, phase).
	if lines := strings.Count(out, "\n"); lines != 4 {
		t.Errorf("FormatFig4 has %d lines, want 4", lines)
	}
}

func TestFormatFig5(t *testing.T) {
	rows := []Fig5Row{
		{Utilization: 0, RateKBps: 1000, SegmentsCleaned: 10},
		{Utilization: 0.9, RateKBps: 80, SegmentsCleaned: 9, LiveCopied: 2000},
	}
	out := FormatFig5(rows)
	for _, want := range []string{"Figure 5", "0.00", "0.90", "1000", "80"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatFig5 missing %q:\n%s", want, out)
		}
	}
}

func TestFormatScaling(t *testing.T) {
	rows := []ScalingRow{
		{FS: "LFS", MIPS: 0.9, PerFileMs: 36.7},
		{FS: "SunFFS", MIPS: 14, PerFileMs: 65.3},
	}
	out := FormatScaling(rows)
	for _, want := range []string{"3.1", "36.70", "65.30", "0.9", "14.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatScaling missing %q:\n%s", want, out)
		}
	}
}

func TestFormatRecovery(t *testing.T) {
	rows := []RecoveryRow{{CapacityMB: 300, LFSMountMs: 626.1, FFSFsckMs: 10988.9, LFSRollForwardUnits: 3}}
	out := FormatRecovery(rows)
	for _, want := range []string{"4.4", "300", "626.1", "10988.9"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatRecovery missing %q:\n%s", want, out)
		}
	}
}

func TestFormatAblations(t *testing.T) {
	seg := FormatSegSize([]SegSizeRow{{SegmentKB: 1024, WriteKBps: 1204, CreatePS: 242}})
	if !strings.Contains(seg, "1024KB") || !strings.Contains(seg, "1204") {
		t.Errorf("FormatSegSize:\n%s", seg)
	}
	pol := FormatPolicy([]PolicyRow{{Policy: "greedy", SegmentsCleaned: 59, LiveCopied: 8144, CopyPerSegment: 138, WriteAmp: 2.5}})
	if !strings.Contains(pol, "greedy") || !strings.Contains(pol, "2.50") {
		t.Errorf("FormatPolicy:\n%s", pol)
	}
	ck := FormatCkpt([]CkptRow{{IntervalSec: 30, Checkpoints: 3, ThroughputOpsSec: 84.7, LiveFiles: 57, LostFiles: 57, MountMs: 45.2}})
	if !strings.Contains(ck, "vulnerability") || !strings.Contains(ck, "57") {
		t.Errorf("FormatCkpt:\n%s", ck)
	}
}

func TestFormatUtilizationRendering(t *testing.T) {
	r := &UtilizationResult{Samples: 3, MeanSegmentUtil: 0.7, DiskUtil: 0.6}
	r.Histogram[6] = 2
	r.Histogram[9] = 1
	out := FormatUtilization(r)
	for _, want := range []string{"5.3", "60%- 70%", "0.70", "0.60", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatUtilization missing %q:\n%s", want, out)
		}
	}
}

func TestFig1FormatRendering(t *testing.T) {
	res, err := Fig1(16 << 20)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Format()
	for _, want := range []string{"Figure 1", "Figure 2", "creat: inode", "segment write", "summary:"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig1 format missing %q", want)
		}
	}
}

func TestCSVWriters(t *testing.T) {
	check := func(name string, write func(w *strings.Builder) error, wantHeader string, wantRows int) {
		t.Helper()
		var b strings.Builder
		if err := write(&b); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		lines := strings.Split(strings.TrimSpace(b.String()), "\n")
		if lines[0] != wantHeader {
			t.Errorf("%s header = %q, want %q", name, lines[0], wantHeader)
		}
		if len(lines)-1 != wantRows {
			t.Errorf("%s has %d rows, want %d", name, len(lines)-1, wantRows)
		}
	}
	check("fig3", func(w *strings.Builder) error {
		return CSVFig3(w, []Fig3Row{{FS: "LFS", FileSize: 1024, NumFiles: 10, CreatePS: 1.5}})
	}, "fs,file_size,files,create_per_s,read_per_s,delete_per_s", 1)
	check("fig4", func(w *strings.Builder) error {
		return CSVFig4(w, []Fig4Row{{FS: "LFS", Phase: "seq write", KBps: 1}, {FS: "SunFFS", Phase: "seq write", KBps: 2}})
	}, "fs,phase,kb_per_s", 2)
	check("fig5", func(w *strings.Builder) error {
		return CSVFig5(w, []Fig5Row{{Utilization: 0.5, RateKBps: 100}})
	}, "utilization,clean_kb_per_s,segments,live_copied,examined", 1)
	check("scaling", func(w *strings.Builder) error {
		return CSVScaling(w, []ScalingRow{{FS: "LFS", MIPS: 10, PerFileMs: 3}})
	}, "fs,mips,ms_per_file", 1)
	check("recovery", func(w *strings.Builder) error {
		return CSVRecovery(w, []RecoveryRow{{CapacityMB: 64, LFSMountMs: 1, FFSFsckMs: 2}})
	}, "disk_mb,lfs_mount_ms,rolled_forward_units,ffs_fsck_ms", 1)
	check("segsize", func(w *strings.Builder) error {
		return CSVSegSize(w, []SegSizeRow{{SegmentKB: 1024, WriteKBps: 1200, CreatePS: 200}})
	}, "segment_kb,write_kb_per_s,create_per_s", 1)
	check("blocksize", func(w *strings.Builder) error {
		return CSVBlockSize(w, []BlockSizeRow{{BlockSize: 4096, CreatePS: 200, ReadPS: 100, StorageOverhead: 4}})
	}, "block_size,create_per_s,read_per_s,live_bytes_per_user_byte", 1)
	check("policy", func(w *strings.Builder) error {
		return CSVPolicy(w, []PolicyRow{{Policy: "greedy", SegmentsCleaned: 1}})
	}, "policy,segments_cleaned,live_copied,copies_per_segment,write_amplification,elapsed_s", 1)
	check("ckpt", func(w *strings.Builder) error {
		return CSVCkpt(w, []CkptRow{{IntervalSec: 30, Checkpoints: 2}})
	}, "interval_s,checkpoints,trace_ops_per_s,files_lost,window_files,mount_ms", 1)
	check("utilization", func(w *strings.Builder) error {
		r := &UtilizationResult{}
		r.Histogram[3] = 5
		return CSVUtilization(w, r, "greedy")
	}, "policy,bin_low_pct,bin_high_pct,segments", 10)
}
