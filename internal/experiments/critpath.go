package experiments

import (
	"fmt"
	"sort"
	"strings"

	"lfs/internal/core"
	"lfs/internal/obs"
	"lfs/internal/server"
	"lfs/internal/sim"
)

// CritPathOpts scales the critical-path experiment: the multi-client
// commit workload of the concurrency sweep, run on group-commit LFS
// only, with a trace recorder attached so every operation's latency
// arrives decomposed into phases. Where the concurrency curve shows
// *that* p50 jumps when clients contend, this experiment shows *where
// the time goes* — queue wait, commit wait, piggyback wait — span by
// span.
type CritPathOpts struct {
	Capacity int64
	// ClientCounts is the sweep's x-axis.
	ClientCounts []int
	// OpsPerClient, WriteSize, and ThinkTime shape each client's
	// closed loop (see server.Config).
	OpsPerClient int
	WriteSize    int
	ThinkTime    sim.Duration
	Seed         int64
	LFSConfig    core.Config
}

// DefaultCritPathOpts mirrors the concurrency sweep's shape so the two
// curves line up point for point.
func DefaultCritPathOpts() CritPathOpts {
	return CritPathOpts{
		Capacity:     128 << 20,
		ClientCounts: []int{1, 2, 4, 8, 16},
		OpsPerClient: 64,
		WriteSize:    4096,
		Seed:         42,
		LFSConfig:    defaultLFSConfig(),
	}
}

// CritPathRow is one client count's fsync latency decomposition.
type CritPathRow struct {
	Clients int

	// Spans and ExactSpans count all recorded spans and those whose
	// phase lists sum to their latency exactly; the experiment fails
	// unless they are equal (the exactness invariant).
	Spans      int
	ExactSpans int

	// FsyncCount is the number of fsync spans the row aggregates.
	FsyncCount int
	// P50 and P95 are fsync latency percentiles computed from the
	// spans themselves (nearest rank — exact data, no buckets).
	P50 sim.Duration
	P95 sim.Duration
	// MeanPhase is the mean time per fsync spent in each phase; the
	// entries sum to the mean fsync latency (exactness survives
	// averaging).
	MeanPhase [obs.NumPhaseKinds]sim.Duration

	// TopBlame is the phase holding the largest share of tail time —
	// the summed latency of fsync spans at or above P95 — and
	// TopBlameShare its fraction of that tail time.
	TopBlame      obs.PhaseKind
	TopBlameShare float64
}

// MeanLatency returns the mean fsync latency (the sum of the phase
// means).
func (r CritPathRow) MeanLatency() sim.Duration {
	var total sim.Duration
	for _, d := range r.MeanPhase {
		total += d
	}
	return total
}

// spanQuantile returns the q-th nearest-rank percentile of sorted
// durations.
func spanQuantile(sorted []sim.Duration, q float64) sim.Duration {
	if len(sorted) == 0 {
		return 0
	}
	//lfslint:allow floataccum nearest-rank index selection for display percentiles; the result feeds no accounting state
	i := int(q*float64(len(sorted))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// CritPath sweeps client counts over group-commit LFS with tracing on
// and decomposes every fsync's latency by phase. It fails if any
// recorded span — fsync or otherwise — violates the exactness
// invariant, making every run of the experiment a check of the
// attribution plumbing end to end.
func CritPath(opts CritPathOpts) ([]CritPathRow, error) {
	if len(opts.ClientCounts) == 0 {
		return nil, fmt.Errorf("critpath: empty client counts")
	}
	rows := make([]CritPathRow, 0, len(opts.ClientCounts))
	for _, n := range opts.ClientCounts {
		if n < 1 {
			return nil, fmt.Errorf("critpath: client count %d", n)
		}
		rec := obs.NewRecorder()
		cfg := opts.LFSConfig
		cfg.GroupCommit = true
		cfg.Trace = rec
		sys, err := NewLFS(opts.Capacity, cfg)
		if err != nil {
			return nil, err
		}
		lfs := sys.System.(*core.FS)
		scfg := server.Config{
			Clients:        n,
			OpsPerClient:   opts.OpsPerClient,
			WriteSize:      opts.WriteSize,
			FilesPerClient: 8,
			ThinkTime:      opts.ThinkTime,
			Seed:           opts.Seed,
		}
		if _, err := server.Run(lfs, scfg); err != nil {
			return nil, fmt.Errorf("critpath: %d clients: %w", n, err)
		}

		row := CritPathRow{Clients: n}
		var lats []sim.Duration
		var fsyncs []obs.Span
		for _, s := range rec.Spans() {
			row.Spans++
			if s.PhasesExact() {
				row.ExactSpans++
			} else {
				return nil, fmt.Errorf("critpath: %d clients: span %s %q latency %v but phases sum to %v",
					n, s.Op, s.Path, s.Latency(), sumPhases(s.Phases))
			}
			if s.Op == "fsync" {
				fsyncs = append(fsyncs, s)
				lats = append(lats, s.Latency())
			}
		}
		if len(fsyncs) == 0 {
			return nil, fmt.Errorf("critpath: %d clients: no fsync spans recorded", n)
		}
		row.FsyncCount = len(fsyncs)
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		row.P50 = spanQuantile(lats, 0.50)
		row.P95 = spanQuantile(lats, 0.95)

		// Phase means over all fsyncs, and the tail blame over the
		// spans at or above p95.
		var total, tail [obs.NumPhaseKinds]sim.Duration
		for _, s := range fsyncs {
			t := obs.PhaseTotals(s.Phases)
			for k := range t {
				total[k] += t[k]
				if s.Latency() >= row.P95 {
					tail[k] += t[k]
				}
			}
		}
		var tailTotal sim.Duration
		for k := range total {
			row.MeanPhase[k] = total[k] / sim.Duration(len(fsyncs))
			tailTotal += tail[k]
			if tail[k] > tail[row.TopBlame] {
				row.TopBlame = obs.PhaseKind(k)
			}
		}
		if tailTotal > 0 {
			row.TopBlameShare = tail[row.TopBlame].Seconds() / tailTotal.Seconds()
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// sumPhases totals a phase list, for error reporting.
func sumPhases(phases []obs.Phase) sim.Duration {
	var total sim.Duration
	for _, p := range phases {
		total += p.Dur
	}
	return total
}

// FormatCritPath renders the per-client-count fsync decomposition: one
// column per phase kind (mean ms per fsync), the latency percentiles,
// and a top-blame summary naming the phase that owns the tail.
func FormatCritPath(rows []CritPathRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Critical path - mean ms per fsync by phase (group-commit LFS)\n")
	fmt.Fprintf(&b, "%8s %7s", "clients", "fsyncs")
	for k := obs.PhaseKind(0); k < obs.NumPhaseKinds; k++ {
		fmt.Fprintf(&b, " %*s", phaseColWidth(k), k.String())
	}
	fmt.Fprintf(&b, " %8s %8s %8s\n", "mean", "p50ms", "p95ms")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8d %7d", r.Clients, r.FsyncCount)
		for k := obs.PhaseKind(0); k < obs.NumPhaseKinds; k++ {
			fmt.Fprintf(&b, " %*.2f", phaseColWidth(k), ms(r.MeanPhase[k]))
		}
		fmt.Fprintf(&b, " %8.2f %8.2f %8.2f\n", ms(r.MeanLatency()), ms(r.P50), ms(r.P95))
	}
	fmt.Fprintf(&b, "top blame (share of tail time at/above p95):\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8d clients: %s %5.1f%%\n",
			r.Clients, r.TopBlame, 100*r.TopBlameShare)
	}
	return b.String()
}

// phaseColWidth sizes a phase column to its header.
func phaseColWidth(k obs.PhaseKind) int {
	w := len(k.String())
	if w < 7 {
		w = 7
	}
	return w
}
