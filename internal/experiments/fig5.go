package experiments

import (
	"fmt"
	"strings"

	"lfs/internal/core"
	"lfs/internal/workload"
)

// Fig5Row is one point of Figure 5: the rate (KB/s) at which clean
// segments can be generated when the segments being cleaned have the
// given utilization.
type Fig5Row struct {
	// Utilization is the live fraction of the cleaned segments.
	Utilization float64
	// RateKBps is clean bytes generated per simulated second.
	RateKBps float64
	// SegmentsCleaned and LiveCopied detail the run.
	SegmentsCleaned int
	LiveCopied      int
	BlocksExamined  int
}

// Fig5Opts scales the experiment.
type Fig5Opts struct {
	Capacity int64
	// NumFiles is how many 1 KB files to create before deleting a
	// fraction.
	NumFiles int
	// Utilizations is the x-axis sweep.
	Utilizations []float64
}

// DefaultFig5Opts returns a sweep matching the paper's x-axis.
func DefaultFig5Opts() Fig5Opts {
	return Fig5Opts{
		Capacity:     128 << 20,
		NumFiles:     20000,
		Utilizations: []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9},
	}
}

// Fig5 measures the §5.3 cleaning-rate curve: for each utilization u,
// create many 1 KB files, delete (1-u) of them evenly, and measure
// the simulated rate at which the cleaner generates clean segments.
func Fig5(opts Fig5Opts) ([]Fig5Row, error) {
	var rows []Fig5Row
	for _, u := range opts.Utilizations {
		cfg := defaultLFSConfig()
		// Let the bench drive cleaning explicitly.
		cfg.CleanThresholdSegments = 1
		cfg.CleanTargetSegments = 2
		// Allow cleaning of highly utilised segments (the sweep
		// reaches u=0.9) but never of fully compacted ones: a
		// sealed segment of pure live data reaches ~0.97
		// utilization (summary blocks are overhead), and cleaning
		// it frees nothing.
		cfg.MinLiveFraction = 0.96
		sys, err := NewLFS(opts.Capacity, cfg)
		if err != nil {
			return nil, err
		}
		if err := workload.Fragment(sys, workload.FragmentOpts{
			NumFiles: opts.NumFiles, FileSize: 1024,
			KeepFraction: u, Dir: "/frag", Seed: 11,
		}); err != nil {
			return nil, fmt.Errorf("fig5 u=%.2f: %w", u, err)
		}
		lfs := sys.System.(*core.FS)
		start := sys.Clock().Now()
		res, err := lfs.CleanUntil(int(opts.Capacity) / cfg.SegmentSize) // clean everything cleanable
		if err != nil {
			return nil, fmt.Errorf("fig5 u=%.2f clean: %w", u, err)
		}
		sys.Disk.Drain()
		elapsed := sys.Clock().Now().Sub(start)
		rate := 0.0
		if elapsed > 0 {
			rate = float64(res.BytesReclaimed) / 1024 / elapsed.Seconds()
		}
		rows = append(rows, Fig5Row{
			Utilization:     u,
			RateKBps:        rate,
			SegmentsCleaned: res.SegmentsCleaned,
			LiveCopied:      res.LiveCopied,
			BlocksExamined:  res.BlocksExamined,
		})
	}
	return rows, nil
}

// FormatFig5 renders the curve as a table.
func FormatFig5(rows []Fig5Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5 - Segment cleaning rate vs segment utilization\n")
	fmt.Fprintf(&b, "%-12s %12s %10s %10s %10s\n", "utilization", "KB/s cleaned", "segments", "live", "examined")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12.2f %12.0f %10d %10d %10d\n",
			r.Utilization, r.RateKBps, r.SegmentsCleaned, r.LiveCopied, r.BlocksExamined)
	}
	return b.String()
}
