package experiments

import (
	"fmt"
	"strings"

	"lfs/internal/core"
	"lfs/internal/ffs"
	"lfs/internal/sim"
)

// RecoveryRow compares crash-recovery cost (§4.4): LFS mounts from a
// checkpoint (plus bounded roll-forward) while FFS must run a
// full-disk fsck scan whose cost grows with the volume, not with the
// damage.
type RecoveryRow struct {
	CapacityMB   int64
	FilesWritten int
	// LFSMountMs is the simulated time to remount LFS after a
	// crash, including roll-forward.
	LFSMountMs float64
	// LFSRollForwardUnits counts log units replayed.
	LFSRollForwardUnits int64
	// FFSFsckMs is the simulated time of the FFS full scan.
	FFSFsckMs float64
}

// RecoveryOpts parameterises the comparison.
type RecoveryOpts struct {
	// Capacities is the disk-size sweep in bytes.
	Capacities []int64
	// Files is how many 4 KB files to write before crashing.
	Files int
}

// DefaultRecoveryOpts sweeps disk sizes to show fsck's scaling.
func DefaultRecoveryOpts() RecoveryOpts {
	return RecoveryOpts{
		Capacities: []int64{32 << 20, 64 << 20, 128 << 20, 300 << 20},
		Files:      300,
	}
}

// Recovery crashes both file systems mid-workload and measures the
// simulated recovery time of each.
func Recovery(opts RecoveryOpts) ([]RecoveryRow, error) {
	var rows []RecoveryRow
	for _, capacity := range opts.Capacities {
		row := RecoveryRow{CapacityMB: capacity >> 20, FilesWritten: opts.Files}

		// LFS: workload, checkpoint midway, more work, crash,
		// remount (with roll-forward).
		lcfg := core.DefaultConfig()
		lsys, err := NewLFS(capacity, lcfg)
		if err != nil {
			return nil, err
		}
		lfs := lsys.System.(*core.FS)
		payload := make([]byte, 4096)
		for i := 0; i < opts.Files; i++ {
			p := fmt.Sprintf("/f%d", i)
			if err := lsys.Create(p); err != nil {
				return nil, err
			}
			if err := lsys.Write(p, 0, payload); err != nil {
				return nil, err
			}
			if i == opts.Files/2 {
				if err := lfs.Checkpoint(); err != nil {
					return nil, err
				}
			}
		}
		if err := lsys.Sync(); err != nil {
			return nil, err
		}
		lfs.Crash()
		before := lsys.Clock().Now()
		recovered, err := core.Mount(lsys.Disk, lcfg)
		if err != nil {
			return nil, fmt.Errorf("recovery: LFS remount: %w", err)
		}
		row.LFSMountMs = float64(lsys.Clock().Now().Sub(before)) / float64(sim.Millisecond)
		row.LFSRollForwardUnits = recovered.Stats().RollForwardUnits

		// FFS: same workload, crash, fsck.
		fcfg := ffs.DefaultConfig()
		fsys, err := NewFFS(capacity, fcfg)
		if err != nil {
			return nil, err
		}
		bfs := fsys.System.(*ffs.FS)
		for i := 0; i < opts.Files; i++ {
			p := fmt.Sprintf("/f%d", i)
			if err := fsys.Create(p); err != nil {
				return nil, err
			}
			if err := fsys.Write(p, 0, payload); err != nil {
				return nil, err
			}
		}
		if err := fsys.Sync(); err != nil {
			return nil, err
		}
		bfs.Crash()
		before = fsys.Clock().Now()
		if _, err := ffs.Fsck(fsys.Disk, fcfg); err != nil {
			return nil, fmt.Errorf("recovery: fsck: %w", err)
		}
		row.FFSFsckMs = float64(fsys.Clock().Now().Sub(before)) / float64(sim.Millisecond)

		rows = append(rows, row)
	}
	return rows, nil
}

// FormatRecovery renders the comparison.
func FormatRecovery(rows []RecoveryRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Crash recovery (4.4) - simulated recovery time\n")
	fmt.Fprintf(&b, "%-10s %14s %16s %14s\n", "disk (MB)", "LFS mount (ms)", "rolled-fwd units", "FFS fsck (ms)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10d %14.1f %16d %14.1f\n",
			r.CapacityMB, r.LFSMountMs, r.LFSRollForwardUnits, r.FFSFsckMs)
	}
	return b.String()
}
