package experiments

import (
	"strings"
	"testing"

	"lfs/internal/core"
	"lfs/internal/obs"
	"lfs/internal/server"
	"lfs/internal/shard"
	"lfs/internal/sim"
)

// smallCritPathOpts shrinks the experiment for test runtimes.
func smallCritPathOpts() CritPathOpts {
	opts := DefaultCritPathOpts()
	opts.Capacity = 64 << 20
	opts.ClientCounts = []int{1, 4}
	opts.OpsPerClient = 16
	return opts
}

// TestCritPathExactness runs the experiment small and checks the
// invariant it is built around: every span decomposes exactly, so the
// per-phase means sum back to the mean latency and the reported rows
// are internally consistent.
func TestCritPathExactness(t *testing.T) {
	rows, err := CritPath(smallCritPathOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Spans == 0 || r.Spans != r.ExactSpans {
			t.Errorf("%d clients: %d/%d spans exact; the invariant must hold on every span",
				r.Clients, r.ExactSpans, r.Spans)
		}
		if r.FsyncCount == 0 {
			t.Errorf("%d clients: no fsyncs aggregated", r.Clients)
		}
		if r.P95 < r.P50 {
			t.Errorf("%d clients: p95 %v < p50 %v", r.Clients, r.P95, r.P50)
		}
		if r.MeanLatency() <= 0 {
			t.Errorf("%d clients: non-positive mean latency %v", r.Clients, r.MeanLatency())
		}
	}
	// The experiment exists to explain the concurrency curve's p50
	// jump: with contention, fsync time shifts from the client's own
	// commit into waiting on the group commit (piggyback or leader
	// wait). At 4 clients that contention must be visible.
	r4 := rows[1]
	if r4.MeanPhase[obs.PhasePiggybackWait]+r4.MeanPhase[obs.PhaseCommitWait] <= 0 {
		t.Errorf("4 clients: no commit or piggyback wait attributed: %+v", r4.MeanPhase)
	}

	out := FormatCritPath(rows)
	for _, want := range []string{"clients", "piggyback_wait", "top blame"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatCritPath output missing %q:\n%s", want, out)
		}
	}
}

// TestCritPathRejectsBadOpts pins the input validation.
func TestCritPathRejectsBadOpts(t *testing.T) {
	if _, err := CritPath(CritPathOpts{}); err == nil {
		t.Error("empty client counts accepted")
	}
	opts := smallCritPathOpts()
	opts.ClientCounts = []int{0}
	if _, err := CritPath(opts); err == nil {
		t.Error("zero client count accepted")
	}
}

// TestShardedSpansExact drives a multi-client workload over a sharded
// system with a fresh recorder per shard and checks the exactness
// invariant on every span of every shard — the cross-shard waits
// (dispatch handoff, fan-out broadcast) must be attributed without
// perturbing the decomposition.
func TestShardedSpansExact(t *testing.T) {
	const shards = 3
	recs := make([]*obs.Recorder, shards)
	cfg := defaultLFSConfig()
	cfg.GroupCommit = true
	opts := shard.Options{
		Base: cfg,
		ShardConfig: func(i int, c core.Config) core.Config {
			recs[i] = obs.NewRecorder()
			c.Trace = recs[i]
			return c
		},
	}
	fs, err := shard.NewMem(shards, 96<<20, opts)
	if err != nil {
		t.Fatal(err)
	}
	scfg := server.Config{
		Clients:        4,
		OpsPerClient:   16,
		WriteSize:      4096,
		FilesPerClient: 8,
		Seed:           7,
	}
	if _, err := server.Run(fs, scfg); err != nil {
		t.Fatal(err)
	}

	var spans, fsyncs int
	var waits [obs.NumPhaseKinds]sim.Duration
	for i, rec := range recs {
		if rec == nil {
			t.Fatalf("shard %d: ShardConfig hook never ran", i)
		}
		for _, s := range rec.Spans() {
			spans++
			if !s.PhasesExact() {
				t.Errorf("shard %d: span %s %q latency %v, phases sum %v",
					i, s.Op, s.Path, s.Latency(), obs.PhaseTotals(s.Phases))
			}
			if s.Op == "fsync" {
				fsyncs++
			}
			for k, d := range obs.PhaseTotals(s.Phases) {
				waits[k] += d
			}
		}
	}
	if spans == 0 || fsyncs == 0 {
		t.Fatalf("recorded %d spans, %d fsyncs; want both > 0", spans, fsyncs)
	}
	// Cross-shard dispatch gaps are real on a contended sharded run:
	// the router hands each op's pre-dispatch wait to the owning
	// shard, so lock_wait must show up somewhere.
	if waits[obs.PhaseLockWait] <= 0 {
		t.Errorf("no dispatch-gap wait attributed across %d spans: %+v", spans, waits)
	}
}
