package experiments

import (
	"fmt"
	"strings"

	"lfs/internal/disk"
	"lfs/internal/trace"
)

// Fig1Result holds the traces behind Figures 1 and 2: the disk
// accesses caused by creating two single-block files in different
// directories under each file system.
type Fig1Result struct {
	FFSEvents []disk.Event
	LFSEvents []disk.Event
	FFS       trace.Summary
	LFS       trace.Summary
}

// Fig1 reproduces the Figure 1 / Figure 2 pair. The workload is the
// paper's:
//
//	fd = creat("dir1/file1", 0); write(fd, buffer, blockSize); close(fd);
//	fd = creat("dir2/file2", 0); write(fd, buffer, blockSize); close(fd);
//
// followed by the delayed write-back (a sync). Figure 1 shows FFS
// issuing small random writes, half of them synchronous; Figure 2
// shows LFS issuing a single large sequential asynchronous transfer.
func Fig1(capacity int64) (*Fig1Result, error) {
	res := &Fig1Result{}
	for _, which := range []string{"ffs", "lfs"} {
		var sys *System
		var err error
		if which == "ffs" {
			sys, err = NewFFS(capacity, defaultFFSConfig())
		} else {
			sys, err = NewLFS(capacity, defaultLFSConfig())
		}
		if err != nil {
			return nil, err
		}
		if err := sys.Mkdir("/dir1"); err != nil {
			return nil, err
		}
		if err := sys.Mkdir("/dir2"); err != nil {
			return nil, err
		}
		if err := sys.Sync(); err != nil {
			return nil, err
		}
		var rec trace.Recorder
		sys.Disk.SetTracer(&rec)
		blockSize := 4096
		buf := make([]byte, blockSize)
		for i, p := range []string{"/dir1/file1", "/dir2/file2"} {
			buf[0] = byte(i)
			if err := sys.Create(p); err != nil {
				return nil, err
			}
			if err := sys.Write(p, 0, buf); err != nil {
				return nil, err
			}
		}
		// The delayed write-back.
		if err := sys.Sync(); err != nil {
			return nil, err
		}
		sys.Disk.SetTracer(nil)
		if which == "ffs" {
			res.FFSEvents = rec.Events()
			res.FFS = trace.Summarize(rec.Events())
		} else {
			res.LFSEvents = rec.Events()
			res.LFS = trace.Summarize(rec.Events())
		}
	}
	return res, nil
}

// Format renders both traces and their summaries.
func (r *Fig1Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1 - BSD FFS file creation (two 1-block files in two directories)\n")
	b.WriteString(trace.FormatTable(r.FFSEvents))
	fmt.Fprintf(&b, "summary: %v\n\n", r.FFS)
	fmt.Fprintf(&b, "Figure 2 - LFS file creation (same workload)\n")
	b.WriteString(trace.FormatTable(r.LFSEvents))
	fmt.Fprintf(&b, "summary: %v\n", r.LFS)
	return b.String()
}
