package experiments

import (
	"fmt"
	"strings"

	"lfs/internal/core"
	"lfs/internal/ffs"
	"lfs/internal/obs"
	"lfs/internal/server"
	"lfs/internal/sim"
)

// ConcurrencyOpts scales the multi-client throughput experiment: N
// closed-loop clients issuing 4 KB write+fsync operations against one
// file system (§4.1's many-users-one-server environment).
type ConcurrencyOpts struct {
	Capacity int64
	// ClientCounts is the sweep's x-axis; it should start at 1 so
	// speedups have a base.
	ClientCounts []int
	// OpsPerClient, WriteSize, and ThinkTime shape each client's
	// closed loop (see server.Config).
	OpsPerClient int
	WriteSize    int
	ThinkTime    sim.Duration
	// Seed drives every run; the same seed reproduces every schedule.
	Seed      int64
	LFSConfig core.Config
	FFSConfig ffs.Config
}

// DefaultConcurrencyOpts returns a CI-sized sweep: 1..16 clients, 64
// commits each, no think time (the clients are disk-bound, which is
// where the batching question is interesting).
func DefaultConcurrencyOpts() ConcurrencyOpts {
	return ConcurrencyOpts{
		Capacity:     128 << 20,
		ClientCounts: []int{1, 2, 4, 8, 16},
		OpsPerClient: 64,
		WriteSize:    4096,
		Seed:         42,
		LFSConfig:    defaultLFSConfig(),
		FFSConfig:    ffs.DefaultConfig(),
	}
}

// ConcurrencyRow is one client count's measurements across the three
// systems: LFS with group commit, LFS without, and the FFS baseline.
type ConcurrencyRow struct {
	Clients int

	// Throughput in fsynced small-file operations per simulated
	// second.
	LFSOpsPerSec     float64
	LFSNoGCOpsPerSec float64
	FFSOpsPerSec     float64

	// GroupCommits and Piggybacked decompose the group-commit LFS
	// run's sync requests: flushes that carried the batch vs syncs
	// that found their data already committed.
	GroupCommits int64
	Piggybacked  int64

	// LFSWritesPerOp and FFSWritesPerOp are disk write requests per
	// operation — the per-op cost that group commit amortises.
	LFSWritesPerOp float64
	FFSWritesPerOp float64

	// LFSP50/P95/P99 are operation-latency percentiles of the
	// group-commit LFS run, bucket-interpolated from the per-client
	// latency histograms merged across clients.
	LFSP50 sim.Duration
	LFSP95 sim.Duration
	LFSP99 sim.Duration
}

// latencyPercentiles merges the per-client latency histograms and
// returns the p50/p95/p99 operation latencies.
func latencyPercentiles(per []server.ClientStats) (p50, p95, p99 sim.Duration, err error) {
	merged := obs.NewLatencyHistogram()
	for i := range per {
		if e := merged.Merge(per[i].Latency); e != nil {
			return 0, 0, 0, e
		}
	}
	//lfslint:allow floataccum converting reported histogram quantiles for display; the result feeds no accounting state
	toDur := func(s float64) sim.Duration { return sim.Duration(s * float64(sim.Second)) }
	return toDur(merged.Quantile(0.5)), toDur(merged.Quantile(0.95)), toDur(merged.Quantile(0.99)), nil
}

// Concurrency sweeps client counts over LFS (group commit on and off)
// and FFS, one fresh file system per cell so runs never share state.
func Concurrency(opts ConcurrencyOpts) ([]ConcurrencyRow, error) {
	if len(opts.ClientCounts) == 0 {
		return nil, fmt.Errorf("concurrency: empty client counts")
	}
	rows := make([]ConcurrencyRow, 0, len(opts.ClientCounts))
	for _, n := range opts.ClientCounts {
		if n < 1 {
			return nil, fmt.Errorf("concurrency: client count %d", n)
		}
		scfg := server.Config{
			Clients:        n,
			OpsPerClient:   opts.OpsPerClient,
			WriteSize:      opts.WriteSize,
			FilesPerClient: 8,
			ThinkTime:      opts.ThinkTime,
			Seed:           opts.Seed,
		}
		row := ConcurrencyRow{Clients: n}

		// LFS with group commit.
		lcfg := opts.LFSConfig
		lcfg.GroupCommit = true
		sys, err := NewLFS(opts.Capacity, lcfg)
		if err != nil {
			return nil, err
		}
		lfs := sys.System.(*core.FS)
		// When a metrics sampler is attached (lfsbench -metrics), the
		// event loop pumps it at the sampler's own interval and a
		// final forced sample pins the end-of-run state.
		if samp := lfs.Metrics(); samp != nil {
			scfg.MetricsInterval = samp.Interval()
		} else {
			scfg.MetricsInterval = 0
		}
		res, err := server.Run(lfs, scfg)
		if err != nil {
			return nil, fmt.Errorf("concurrency: lfs %d clients: %w", n, err)
		}
		lfs.SampleMetricsNow()
		st := lfs.Stats()
		row.LFSOpsPerSec = res.OpsPerSecond()
		if row.LFSP50, row.LFSP95, row.LFSP99, err = latencyPercentiles(res.PerClient); err != nil {
			return nil, fmt.Errorf("concurrency: merging latency histograms: %w", err)
		}
		row.GroupCommits = st.GroupCommits
		row.Piggybacked = st.PiggybackedSyncs
		row.LFSWritesPerOp = float64(sys.Disk.Stats().Writes) / float64(res.Ops)

		// LFS without group commit (the ablation: same log, every
		// fsync pays its own flush).
		sys2, err := NewLFS(opts.Capacity, opts.LFSConfig)
		if err != nil {
			return nil, err
		}
		lfs2 := sys2.System.(*core.FS)
		if samp := lfs2.Metrics(); samp != nil {
			scfg.MetricsInterval = samp.Interval()
		} else {
			scfg.MetricsInterval = 0
		}
		res2, err := server.Run(lfs2, scfg)
		if err != nil {
			return nil, fmt.Errorf("concurrency: lfs-nogc %d clients: %w", n, err)
		}
		lfs2.SampleMetricsNow()
		row.LFSNoGCOpsPerSec = res2.OpsPerSecond()
		scfg.MetricsInterval = 0

		// FFS baseline.
		fsys, err := NewFFS(opts.Capacity, opts.FFSConfig)
		if err != nil {
			return nil, err
		}
		res3, err := server.Run(fsys.System.(*ffs.FS), scfg)
		if err != nil {
			return nil, fmt.Errorf("concurrency: ffs %d clients: %w", n, err)
		}
		row.FFSOpsPerSec = res3.OpsPerSecond()
		row.FFSWritesPerOp = float64(fsys.Disk.Stats().Writes) / float64(res3.Ops)

		rows = append(rows, row)
	}
	return rows, nil
}

// ms converts a simulated duration to milliseconds for display.
func ms(d sim.Duration) float64 { return d.Seconds() * 1000 }

// speedup returns v relative to base, 0 when base is 0.
func speedup(v, base float64) float64 {
	if base == 0 {
		return 0
	}
	return v / base
}

// FormatConcurrency renders the throughput-vs-client-count curve.
func FormatConcurrency(rows []ConcurrencyRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Concurrency - closed-loop clients issuing 4KB write+fsync (throughput in ops/s)\n")
	fmt.Fprintf(&b, "%8s %12s %12s %12s %9s %9s %8s %8s %10s %10s %8s %8s %8s\n",
		"clients", "lfs", "lfs-nogc", "ffs", "lfs-spdup", "ffs-spdup",
		"commits", "piggybk", "lfs-w/op", "ffs-w/op",
		"p50ms", "p95ms", "p99ms")
	var lfsBase, ffsBase float64
	for i, r := range rows {
		if i == 0 {
			lfsBase, ffsBase = r.LFSOpsPerSec, r.FFSOpsPerSec
		}
		fmt.Fprintf(&b, "%8d %12.1f %12.1f %12.1f %9.2f %9.2f %8d %8d %10.2f %10.2f %8.2f %8.2f %8.2f\n",
			r.Clients, r.LFSOpsPerSec, r.LFSNoGCOpsPerSec, r.FFSOpsPerSec,
			speedup(r.LFSOpsPerSec, lfsBase), speedup(r.FFSOpsPerSec, ffsBase),
			r.GroupCommits, r.Piggybacked, r.LFSWritesPerOp, r.FFSWritesPerOp,
			ms(r.LFSP50), ms(r.LFSP95), ms(r.LFSP99))
	}
	return b.String()
}
