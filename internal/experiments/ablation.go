package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"lfs/internal/core"
	"lfs/internal/workload"
)

// newPolicyRNG returns the deterministic RNG driving the hot/cold
// overwrite pattern.
func newPolicyRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// --- segment size ablation ---------------------------------------------

// SegSizeRow measures how segment size affects log write bandwidth on
// a fragmented disk. §4.3: "What really matters is that the log is
// written in large enough pieces to support I/O at near-maximum disk
// bandwidth ... sizing segments so that the disk seek at the start of
// a segment write is amortized across a long data transfer time." On
// an aged disk whose clean segments alternate with live ones, every
// segment transition pays a seek and rotational delay; small segments
// pay it per few hundred kilobytes, large segments per megabyte.
type SegSizeRow struct {
	SegmentKB int
	// WriteKBps is the effective log write bandwidth for a large
	// sync-bounded write on the fragmented volume.
	WriteKBps float64
	// CreatePS is small-file creation throughput on the same
	// volume.
	CreatePS float64
}

// SegSizeOpts parameterises the sweep.
type SegSizeOpts struct {
	Capacity int64
	// Files sizes the small-file phase.
	Files int
	// WriteMB is the size of the bandwidth-probe write.
	WriteMB      int
	SegmentSizes []int
}

// DefaultSegSizeOpts sweeps 128 KB to 4 MB around the paper's 1 MB.
func DefaultSegSizeOpts() SegSizeOpts {
	return SegSizeOpts{
		Capacity:     64 << 20,
		Files:        2000,
		WriteMB:      12,
		SegmentSizes: []int{128 << 10, 256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20},
	}
}

// SegSizeAblation ages each volume so that clean segments alternate
// with live ones (file A and file B written in alternating
// segment-sized chunks, then A deleted and its dead segments
// reclaimed), then measures the effective bandwidth of a large write
// that must hop across the scattered clean segments.
func SegSizeAblation(opts SegSizeOpts) ([]SegSizeRow, error) {
	var rows []SegSizeRow
	for _, ss := range opts.SegmentSizes {
		cfg := defaultLFSConfig()
		cfg.SegmentSize = ss
		sys, err := NewLFS(opts.Capacity, cfg)
		if err != nil {
			return nil, fmt.Errorf("segsize %d: %w", ss, err)
		}
		lfs := sys.System.(*core.FS)

		// Age the volume: alternate segment-sized chunks of two
		// files so segment ownership alternates, then delete one
		// file and reclaim its (fully dead) segments.
		if err := sys.Create("/a"); err != nil {
			return nil, err
		}
		if err := sys.Create("/b"); err != nil {
			return nil, err
		}
		chunk := make([]byte, ss*3/4) // leaves room for metadata in the same segment
		// Fill ~60% of the disk alternately.
		total := opts.Capacity * 6 / 10
		var offA, offB int64
		for written := int64(0); written < total; written += 2 * int64(len(chunk)) {
			if err := sys.Write("/a", offA, chunk); err != nil {
				return nil, err
			}
			if err := sys.Sync(); err != nil {
				return nil, err
			}
			offA += int64(len(chunk))
			if err := sys.Write("/b", offB, chunk); err != nil {
				return nil, err
			}
			if err := sys.Sync(); err != nil {
				return nil, err
			}
			offB += int64(len(chunk))
		}
		if err := sys.Remove("/a"); err != nil {
			return nil, err
		}
		if err := sys.Sync(); err != nil {
			return nil, err
		}
		if _, err := lfs.CleanUntil(int(opts.Capacity) / ss); err != nil {
			return nil, err
		}

		// Bandwidth probe: a large write through the scattered
		// clean segments.
		if err := sys.Create("/probe"); err != nil {
			return nil, err
		}
		probe := make([]byte, 64<<10)
		start := sys.Clock().Now()
		for off := int64(0); off < int64(opts.WriteMB)<<20; off += int64(len(probe)) {
			if err := sys.Write("/probe", off, probe); err != nil {
				return nil, err
			}
		}
		if err := sys.Sync(); err != nil {
			return nil, err
		}
		elapsed := sys.Clock().Now().Sub(start)
		row := SegSizeRow{
			SegmentKB: ss >> 10,
			WriteKBps: float64(opts.WriteMB<<20) / 1024 / elapsed.Seconds(),
		}

		// Small-file phase on the same aged volume.
		res, err := workload.SmallFile(sys, workload.SmallFileOpts{
			NumFiles: opts.Files, FileSize: 1024, Dir: "/s", SyncBetweenPhases: true, Seed: 42,
		})
		if err != nil {
			return nil, fmt.Errorf("segsize %d small files: %w", ss, err)
		}
		row.CreatePS = res.Create.OpsPerSec()
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatSegSize renders the sweep.
func FormatSegSize(rows []SegSizeRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation - segment size vs log bandwidth on a fragmented disk\n")
	fmt.Fprintf(&b, "%-12s %14s %12s\n", "segment", "write KB/s", "create/s")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %14.0f %12.1f\n", fmt.Sprintf("%dKB", r.SegmentKB), r.WriteKBps, r.CreatePS)
	}
	return b.String()
}

// --- cleaning policy ablation -------------------------------------------

// PolicyRow compares cleaning policies under a hot/cold workload: 90%
// of overwrites hit 10% of the files, the locality pattern for which
// the authors' later work introduced cost-benefit selection.
type PolicyRow struct {
	Policy string
	// SegmentsCleaned and LiveCopied over the whole run.
	SegmentsCleaned int64
	LiveCopied      int64
	// CopyPerSegment = LiveCopied / SegmentsCleaned: the copying
	// the cleaner causes per reclaimed segment (lower is better).
	CopyPerSegment float64
	// WriteAmp is total log bytes written per user byte, including
	// metadata, summaries, and cleaner copies.
	WriteAmp float64
	// ElapsedSec is the simulated time of the whole churn run.
	ElapsedSec float64
}

// PolicyOpts parameterises the comparison.
type PolicyOpts struct {
	Capacity int64
	// Files is the file population; Overwrites is the number of
	// overwrite operations issued.
	Files      int
	Overwrites int
	// HotFraction of files receives HotBias of the overwrites.
	HotFraction float64
	HotBias     float64
}

// DefaultPolicyOpts uses a 90/10 hot/cold split on a small,
// highly-utilised disk (≈two thirds live) so cleaned segments carry
// live cold data and the policies actually differ.
func DefaultPolicyOpts() PolicyOpts {
	return PolicyOpts{
		Capacity:    24 << 20,
		Files:       4000,
		Overwrites:  10000,
		HotFraction: 0.1,
		HotBias:     0.9,
	}
}

// PolicyAblation runs the hot/cold churn under each policy.
func PolicyAblation(opts PolicyOpts) ([]PolicyRow, error) {
	var rows []PolicyRow
	for _, pol := range []core.CleanPolicy{core.CleanGreedy, core.CleanCostBenefit} {
		cfg := defaultLFSConfig()
		cfg.Policy = pol
		cfg.CacheBlocks = 512
		sys, err := NewLFS(opts.Capacity, cfg)
		if err != nil {
			return nil, err
		}
		lfs := sys.System.(*core.FS)
		payload := make([]byte, 4096)
		name := func(i int) string { return fmt.Sprintf("/f%06d", i) }
		for i := 0; i < opts.Files; i++ {
			if err := sys.Create(name(i)); err != nil {
				return nil, err
			}
			if err := sys.Write(name(i), 0, payload); err != nil {
				return nil, err
			}
		}
		if err := sys.Sync(); err != nil {
			return nil, err
		}
		start := sys.Clock().Now()
		//lfslint:allow floataccum hot-set sizing applies a config fraction once at setup; nothing accumulates
		hot := int(float64(opts.Files) * opts.HotFraction)
		if hot < 1 {
			hot = 1
		}
		rng := newPolicyRNG(17)
		for i := 0; i < opts.Overwrites; i++ {
			var idx int
			if rng.Float64() < opts.HotBias {
				idx = rng.Intn(hot)
			} else {
				idx = hot + rng.Intn(opts.Files-hot)
			}
			payload[0] = byte(i)
			if err := sys.Write(name(idx), 0, payload); err != nil {
				return nil, err
			}
		}
		if err := sys.Sync(); err != nil {
			return nil, err
		}
		st := lfs.Stats()
		row := PolicyRow{
			Policy:          pol.String(),
			SegmentsCleaned: st.SegmentsCleaned,
			LiveCopied:      st.CleanerLiveCopied,
			WriteAmp:        st.WriteAmplification(cfg.BlockSize),
			ElapsedSec:      sys.Clock().Now().Sub(start).Seconds(),
		}
		if st.SegmentsCleaned > 0 {
			row.CopyPerSegment = float64(st.CleanerLiveCopied) / float64(st.SegmentsCleaned)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatPolicy renders the comparison.
func FormatPolicy(rows []PolicyRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation - cleaning policy under 90/10 hot/cold overwrites\n")
	fmt.Fprintf(&b, "%-14s %10s %12s %14s %10s %12s\n", "policy", "cleaned", "live copied", "copies/segment", "write amp", "elapsed (s)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %10d %12d %14.1f %10.2f %12.1f\n",
			r.Policy, r.SegmentsCleaned, r.LiveCopied, r.CopyPerSegment, r.WriteAmp, r.ElapsedSec)
	}
	return b.String()
}
