package experiments

import (
	"bytes"
	"strings"
	"testing"

	"lfs/internal/sim"
)

// quickConcurrencyOpts shrinks the sweep for CI: the {1, 8} endpoints
// are enough to assert the scaling shape.
func quickConcurrencyOpts() ConcurrencyOpts {
	opts := DefaultConcurrencyOpts()
	opts.Capacity = 64 << 20
	opts.ClientCounts = []int{1, 8}
	opts.OpsPerClient = 48
	return opts
}

// TestConcurrencyShape asserts the headline claims of the experiment:
// group-commit LFS throughput scales with client count, the
// no-group-commit ablation and the FFS baseline stay flat, and the
// scaling comes from amortised per-op write cost.
func TestConcurrencyShape(t *testing.T) {
	rows, err := Concurrency(quickConcurrencyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	one, eight := rows[0], rows[1]
	if one.Clients != 1 || eight.Clients != 8 {
		t.Fatalf("row client counts %d, %d", one.Clients, eight.Clients)
	}

	// LFS with group commit must scale: at least 2x throughput at 8
	// clients (measured ~3x).
	if s := speedup(eight.LFSOpsPerSec, one.LFSOpsPerSec); s < 2 {
		t.Errorf("LFS speedup at 8 clients %.2f, want >= 2", s)
	}
	// FFS must flatten near 1: synchronous metadata writes cost the
	// same however many clients queue behind them.
	if s := speedup(eight.FFSOpsPerSec, one.FFSOpsPerSec); s < 0.5 || s > 1.3 {
		t.Errorf("FFS speedup at 8 clients %.2f, want ~1", s)
	}
	// The ablation isolates the mechanism: without group commit,
	// 8-client LFS must not meaningfully beat 1-client LFS, and the
	// group-commit run must clearly beat the ablation.
	if s := speedup(eight.LFSNoGCOpsPerSec, one.LFSNoGCOpsPerSec); s > 1.3 {
		t.Errorf("no-group-commit LFS speedup %.2f, want ~1", s)
	}
	if eight.LFSOpsPerSec < 1.5*eight.LFSNoGCOpsPerSec {
		t.Errorf("group commit %.1f ops/s vs ablation %.1f; want >= 1.5x",
			eight.LFSOpsPerSec, eight.LFSNoGCOpsPerSec)
	}
	// The mechanism must be visible in the counters: most syncs
	// piggyback, and per-op write cost drops.
	if eight.Piggybacked == 0 || eight.GroupCommits == 0 {
		t.Errorf("no batching at 8 clients: %d commits, %d piggybacks",
			eight.GroupCommits, eight.Piggybacked)
	}
	if eight.LFSWritesPerOp >= one.LFSWritesPerOp/2 {
		t.Errorf("per-op writes %.2f at 8 clients vs %.2f at 1; want halved",
			eight.LFSWritesPerOp, one.LFSWritesPerOp)
	}
}

// TestConcurrencyFormatAndCSV pins the output layer.
func TestConcurrencyFormatAndCSV(t *testing.T) {
	rows := []ConcurrencyRow{
		{Clients: 1, LFSOpsPerSec: 40, LFSNoGCOpsPerSec: 41, FFSOpsPerSec: 25,
			GroupCommits: 64, Piggybacked: 0, LFSWritesPerOp: 1.1, FFSWritesPerOp: 11.3,
			LFSP50: 25 * sim.Millisecond, LFSP95: 40 * sim.Millisecond, LFSP99: 45 * sim.Millisecond},
		{Clients: 8, LFSOpsPerSec: 120, LFSNoGCOpsPerSec: 42, FFSOpsPerSec: 22,
			GroupCommits: 64, Piggybacked: 448, LFSWritesPerOp: 0.14, FFSWritesPerOp: 3.4,
			LFSP50: 60 * sim.Millisecond, LFSP95: 81 * sim.Millisecond, LFSP99: 95 * sim.Millisecond},
	}
	out := FormatConcurrency(rows)
	if lines := strings.Count(out, "\n"); lines != 4 {
		t.Errorf("formatted output has %d lines, want 4:\n%s", lines, out)
	}
	for _, want := range []string{"clients", "120.0", "448", "3.00", "p95ms", "81.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted output missing %q:\n%s", want, out)
		}
	}

	var buf bytes.Buffer
	if err := CSVConcurrency(&buf, rows); err != nil {
		t.Fatal(err)
	}
	csv := buf.String()
	if lines := strings.Count(csv, "\n"); lines != 3 {
		t.Errorf("CSV has %d lines, want 3:\n%s", lines, csv)
	}
	if !strings.Contains(csv, "clients,lfs_ops_per_s") || !strings.Contains(csv, "8,120.000") {
		t.Errorf("CSV content wrong:\n%s", csv)
	}
}

// TestConcurrencyRejectsBadOpts covers the error paths.
func TestConcurrencyRejectsBadOpts(t *testing.T) {
	opts := quickConcurrencyOpts()
	opts.ClientCounts = nil
	if _, err := Concurrency(opts); err == nil {
		t.Error("empty client counts accepted")
	}
	opts = quickConcurrencyOpts()
	opts.ClientCounts = []int{0}
	if _, err := Concurrency(opts); err == nil {
		t.Error("zero client count accepted")
	}
}
