package experiments

import (
	"fmt"
	"strings"

	"lfs/internal/core"
	"lfs/internal/obs"
	"lfs/internal/sim"
	"lfs/internal/workload"
)

// TraceSmokeOpts scales the tracing smoke experiment: a small-file
// create/read/delete pass followed by a churn phase that forces the
// cleaner to run, all under a trace recorder.
type TraceSmokeOpts struct {
	Capacity int64
	// NumFiles/FileSize parameterise the Figure 3 small-file pass.
	NumFiles int
	FileSize int
	// ChurnFiles are written and half-deleted afterwards to create
	// fragmented segments for the cleaner.
	ChurnFiles int
	// CleanSegments is how many extra clean segments to demand from
	// CleanUntil once the churn is done.
	CleanSegments int
	LFSConfig     core.Config
	// Trace, when non-nil, is used instead of a fresh recorder, so a
	// caller can export the JSONL afterwards.
	Trace *obs.Recorder
}

// DefaultTraceSmokeOpts returns a CI-sized configuration (a few
// thousand files on a small disk; a couple of simulated minutes).
func DefaultTraceSmokeOpts() TraceSmokeOpts {
	return TraceSmokeOpts{
		Capacity:      64 << 20,
		NumFiles:      2000,
		FileSize:      1024,
		ChurnFiles:    3000,
		CleanSegments: 10,
		LFSConfig:     defaultLFSConfig(),
	}
}

// TraceSmokeResult reports the experiment's headline numbers plus the
// cross-checks the tracing subsystem is supposed to satisfy.
type TraceSmokeResult struct {
	Create workload.Phase
	Read   workload.Phase
	Delete workload.Phase

	// Attribution from the recorder's event stream.
	TraceNamed sim.Duration
	TraceBusy  sim.Duration
	// Attribution from the disk's own ByCause counters (includes
	// format-time I/O, which predates the tracer attachment).
	DiskNamed sim.Duration
	DiskBusy  sim.Duration

	// WriteCostTrace is the cleaner cost aggregated from per-activation
	// trace records; WriteCostStats is the same quantity derived from
	// the FS counters. The two must agree exactly.
	WriteCostTrace   float64
	WriteCostStats   float64
	CleanActivations int64

	Spans     int
	Aggregate *obs.Aggregates
	Snapshot  core.StatsSnapshot
}

// NamedShare returns the fraction of traced disk busy time carrying a
// named cause.
func (r *TraceSmokeResult) NamedShare() float64 {
	if r.TraceBusy == 0 {
		return 0
	}
	return r.TraceNamed.Seconds() / r.TraceBusy.Seconds()
}

// DiskNamedShare is NamedShare over the disk's lifetime ByCause
// counters.
func (r *TraceSmokeResult) DiskNamedShare() float64 {
	if r.DiskBusy == 0 {
		return 0
	}
	return r.DiskNamed.Seconds() / r.DiskBusy.Seconds()
}

// TraceSmoke runs the tracing smoke experiment on LFS: the small-file
// benchmark, then churn and explicit cleaning, with every disk request
// cause-tagged and every operation spanned.
func TraceSmoke(opts TraceSmokeOpts) (*TraceSmokeResult, error) {
	rec := opts.Trace
	if rec == nil {
		rec = obs.NewRecorder()
	}
	cfg := opts.LFSConfig
	cfg.Trace = rec
	sys, err := NewLFS(opts.Capacity, cfg)
	if err != nil {
		return nil, err
	}
	res, err := workload.SmallFile(sys, workload.SmallFileOpts{
		NumFiles: opts.NumFiles, FileSize: opts.FileSize,
		Dir: "/small", SyncBetweenPhases: true, Seed: 42,
	})
	if err != nil {
		return nil, fmt.Errorf("tracesmoke small-file: %w", err)
	}

	fs, ok := sys.System.(*core.FS)
	if !ok {
		return nil, fmt.Errorf("tracesmoke: system is not an LFS")
	}
	// Churn: fill segments, delete every other file, and demand clean
	// segments so the cleaner reads fragmented victims.
	if err := fs.Mkdir("/churn"); err != nil {
		return nil, err
	}
	payload := make([]byte, opts.FileSize)
	for i := 0; i < opts.ChurnFiles; i++ {
		p := fmt.Sprintf("/churn/f%d", i)
		if err := fs.Create(p); err != nil {
			return nil, err
		}
		if err := fs.Write(p, 0, payload); err != nil {
			return nil, err
		}
	}
	if err := fs.Sync(); err != nil {
		return nil, err
	}
	for i := 0; i < opts.ChurnFiles; i += 2 {
		if err := fs.Remove(fmt.Sprintf("/churn/f%d", i)); err != nil {
			return nil, err
		}
	}
	if err := fs.Sync(); err != nil {
		return nil, err
	}
	if _, err := fs.CleanUntil(fs.CleanSegments() + opts.CleanSegments); err != nil {
		return nil, fmt.Errorf("tracesmoke clean: %w", err)
	}
	if err := fs.Sync(); err != nil {
		return nil, err
	}

	snap := fs.StatsSnapshot()
	agg := rec.Aggregates()
	out := &TraceSmokeResult{
		Create: res.Create, Read: res.Read, Delete: res.Delete,
		WriteCostTrace:   agg.Clean.WriteCost,
		WriteCostStats:   snap.WriteCost(),
		CleanActivations: agg.Clean.Activations,
		Spans:            len(rec.Spans()),
		Aggregate:        agg,
		Snapshot:         snap,
	}
	out.TraceNamed, out.TraceBusy = agg.AttributedBusy()
	out.DiskNamed, out.DiskBusy = snap.Disk.AttributedBusy()
	return out, nil
}

// FormatTraceSmoke renders the result as the smoke-test report: the
// phase rates, the busy-time decomposition, and the cleaner summary.
func FormatTraceSmoke(r *TraceSmokeResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tracing smoke test - small-file workload with cleaning\n")
	fmt.Fprintf(&b, "%v\n%v\n%v\n", r.Create, r.Read, r.Delete)
	fmt.Fprintf(&b, "disk busy %v, %.2f%% attributed to a named cause\n",
		r.TraceBusy, 100*r.NamedShare())
	for _, io := range r.Aggregate.IO {
		fmt.Fprintf(&b, "  %-14s %8d reqs %10d sectors %12v (%5.1f%%)\n",
			io.Cause, io.Requests, io.Sectors, io.Busy,
			100*io.Busy.Seconds()/r.TraceBusy.Seconds())
	}
	fmt.Fprintf(&b, "cleaner: %d activations, write cost %.2f (stats-derived %.2f)\n",
		r.CleanActivations, r.WriteCostTrace, r.WriteCostStats)
	fmt.Fprintf(&b, "victim utilisation: %v\n", r.Aggregate.Clean.Utilization)
	return b.String()
}
