package core

import (
	"testing"

	"lfs/internal/layout"
)

// TestEvictInodesDeterministic is the regression test for the lfslint
// maporder finding fixed in inode.go: eviction used to walk the inode
// table in map iteration order, so which inodes survived — and which
// future lookups went back to disk, charging simulated time — varied
// between reruns of the same seed. The eviction set must be the
// ascending-inode prefix of the clean inodes, every dirty inode must
// survive, and the table must land exactly on the half-limit mark.
func TestEvictInodesDeterministic(t *testing.T) {
	fs := &FS{
		inodes:      make(map[layout.Ino]*layout.Inode),
		dirtyInodes: make(map[layout.Ino]bool),
	}
	for i := 1; i <= inodeCacheLimit; i++ {
		ino := layout.Ino(i)
		fs.inodes[ino] = &layout.Inode{Ino: ino}
		if i%3 == 0 {
			fs.dirtyInodes[ino] = true
		}
	}
	fs.evictInodes()

	if got, want := len(fs.inodes), inodeCacheLimit/2-1; got != want {
		t.Fatalf("evictInodes left %d inodes, want %d", got, want)
	}
	for ino := range fs.dirtyInodes {
		if _, ok := fs.inodes[ino]; !ok {
			t.Fatalf("dirty inode %d was evicted", ino)
		}
	}
	// The surviving clean inodes must be exactly the largest ones: an
	// ascending eviction never removes a clean inode above a survivor.
	minClean := layout.Ino(0)
	for ino := range fs.inodes {
		if !fs.dirtyInodes[ino] && (minClean == 0 || ino < minClean) {
			minClean = ino
		}
	}
	if minClean == 0 {
		t.Fatal("no clean inode survived")
	}
	for i := layout.Ino(1); i < minClean; i++ {
		if _, ok := fs.inodes[i]; ok && !fs.dirtyInodes[i] {
			t.Fatalf("clean inode %d survived below the eviction frontier %d", i, minClean)
		}
	}
	for i := minClean; i <= layout.Ino(inodeCacheLimit); i++ {
		if _, ok := fs.inodes[i]; !ok && !fs.dirtyInodes[i] {
			t.Fatalf("clean inode %d above the frontier %d was evicted", i, minClean)
		}
	}
}
