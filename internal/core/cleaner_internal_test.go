package core

import (
	"testing"

	"lfs/internal/disk"
	"lfs/internal/layout"
	"lfs/internal/sim"
)

// Tiny aliases keeping the eviction test terse.
func layoutIno(i int) layout.Ino { return layout.Ino(i) }
func layoutNewInode(ino layout.Ino) *layout.Inode {
	in := layout.NewInode(ino, layout.ModeFile|0o644)
	return &in
}

// newTestFS builds a mounted FS on a fresh memory disk for white-box
// tests.
func newTestFS(t *testing.T, capacity int64, cfg Config) *FS {
	t.Helper()
	d := disk.NewMem(capacity, sim.NewClock())
	if err := Format(d, cfg); err != nil {
		t.Fatal(err)
	}
	fs, err := Mount(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.MaxInodes = 1024
	return cfg
}

func TestSelectVictimGreedyPicksEmptiest(t *testing.T) {
	fs := newTestFS(t, 16<<20, smallConfig())
	// Hand-craft the usage array.
	for i := range fs.usage {
		fs.usage[i].State = segClean
		fs.usage[i].Live = 0
	}
	fs.usage[fs.curSeg].State = segActive
	seg := func(i int, live int64) {
		fs.usage[i].State = segDirty
		fs.usage[i].Live = live
	}
	segSize := int64(fs.sb.SegmentSize)
	seg(3, segSize/2)
	seg(5, segSize/10) // emptiest
	seg(7, segSize*9/10)
	victim, ok := fs.selectVictim()
	if !ok || victim != 5 {
		t.Fatalf("greedy picked %d (ok=%v), want 5", victim, ok)
	}
}

func TestSelectVictimSkipsHighUtilization(t *testing.T) {
	cfg := smallConfig()
	cfg.MinLiveFraction = 0.80
	fs := newTestFS(t, 16<<20, cfg)
	for i := range fs.usage {
		fs.usage[i].State = segClean
	}
	fs.usage[fs.curSeg].State = segActive
	segSize := int64(fs.sb.SegmentSize)
	fs.usage[2].State = segDirty
	fs.usage[2].Live = segSize * 85 / 100 // above MinLiveFraction
	if victim, ok := fs.selectVictim(); ok {
		t.Fatalf("picked %d despite utilization above the cutoff", victim)
	}
	fs.usage[2].Live = segSize * 70 / 100
	if _, ok := fs.selectVictim(); !ok {
		t.Fatal("did not pick a below-cutoff segment")
	}
}

func TestSelectVictimNeverPicksActiveOrClean(t *testing.T) {
	fs := newTestFS(t, 16<<20, smallConfig())
	for i := range fs.usage {
		fs.usage[i].State = segClean
	}
	fs.usage[fs.curSeg].State = segActive
	fs.usage[fs.curSeg].Live = 0 // tempting but active
	if victim, ok := fs.selectVictim(); ok {
		t.Fatalf("picked %d from clean/active-only disk", victim)
	}
}

func TestSelectVictimCostBenefitPrefersOldCold(t *testing.T) {
	cfg := smallConfig()
	cfg.Policy = CleanCostBenefit
	fs := newTestFS(t, 16<<20, cfg)
	fs.clock.Advance(1000 * sim.Second)
	for i := range fs.usage {
		fs.usage[i].State = segClean
	}
	fs.usage[fs.curSeg].State = segActive
	segSize := int64(fs.sb.SegmentSize)
	// Segment 2: fairly empty but hot (just written). Segment 4:
	// more utilised but very old/cold. Cost-benefit should prefer
	// the cold one; greedy would prefer the empty one.
	fs.usage[2].State = segDirty
	fs.usage[2].Live = segSize * 30 / 100
	fs.usage[2].LastWrite = fs.clock.Now()
	fs.usage[4].State = segDirty
	fs.usage[4].Live = segSize * 50 / 100
	fs.usage[4].LastWrite = 0 // 1000 seconds old
	victim, ok := fs.selectVictim()
	if !ok || victim != 4 {
		t.Fatalf("cost-benefit picked %d, want old cold segment 4", victim)
	}
	// Same state under greedy picks the emptier one.
	fs.cfg.Policy = CleanGreedy
	victim, ok = fs.selectVictim()
	if !ok || victim != 2 {
		t.Fatalf("greedy picked %d, want emptier segment 2", victim)
	}
}

func TestPlaceBlocksSpansSegments(t *testing.T) {
	cfg := smallConfig()
	cfg.SegmentSize = 64 << 10 // 16 blocks per segment
	fs := newTestFS(t, 16<<20, cfg)
	// Place more blocks than one segment holds.
	n := 40
	refs := make([]blockRef, n)
	payload := make([][]byte, n)
	for i := range payload {
		payload[i] = make([]byte, cfg.BlockSize)
		payload[i][0] = byte(i)
		refs[i] = blockRef{Kind: kindData, Ino: 99, ID: int64(i)}
	}
	startSeg := fs.curSeg
	addrs, err := fs.placeBlocks(refs, payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != n {
		t.Fatalf("placed %d, want %d", len(addrs), n)
	}
	if fs.curSeg == startSeg {
		t.Fatal("placement did not span segments")
	}
	// All addresses distinct and within the segment area.
	seen := make(map[int64]bool)
	for i, a := range addrs {
		if fs.segOf(a) < 0 {
			t.Fatalf("block %d placed outside the segment area (%v)", i, a)
		}
		if seen[int64(a)] {
			t.Fatalf("address %v assigned twice", a)
		}
		seen[int64(a)] = true
	}
	if err := fs.flushPendingIO(); err != nil {
		t.Fatal(err)
	}
	// Every placed block must read back with its payload.
	buf := make([]byte, cfg.BlockSize)
	for i, a := range addrs {
		//lfslint:allow iocause raw-device readback below the FS; attribution is irrelevant here
		if err := fs.d.ReadSectors(int64(a), buf, disk.CauseOther, "test"); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(i) {
			t.Fatalf("block %d read back %d", i, buf[0])
		}
	}
}

func TestAdvanceSegmentExhaustion(t *testing.T) {
	fs := newTestFS(t, 16<<20, smallConfig())
	// Mark everything dirty so no clean segment remains.
	for i := range fs.usage {
		if fs.usage[i].State == segClean {
			fs.usage[i].State = segDirty
		}
	}
	fs.cleanCount = 0
	if err := fs.advanceSegment(); err == nil {
		t.Fatal("advanceSegment succeeded with no clean segments")
	}
}

func TestFindCleanSegmentWraps(t *testing.T) {
	fs := newTestFS(t, 16<<20, smallConfig())
	for i := range fs.usage {
		fs.usage[i].State = segDirty
	}
	// Only a segment behind the head is clean.
	fs.usage[1].State = segClean
	fs.curSeg = len(fs.usage) - 2
	fs.usage[fs.curSeg].State = segActive
	next, ok := fs.findCleanSegment()
	if !ok || next != 1 {
		t.Fatalf("findCleanSegment = %d, %v; want wrap to 1", next, ok)
	}
}

func TestInodeCacheEviction(t *testing.T) {
	fs := newTestFS(t, 16<<20, smallConfig())
	// Fill the in-core table beyond the limit with clean inodes.
	for i := 0; i < inodeCacheLimit+10; i++ {
		ino := layoutIno(i + 10)
		in := layoutNewInode(ino)
		fs.inodes[ino] = in
	}
	fs.evictInodes()
	if len(fs.inodes) >= inodeCacheLimit {
		t.Fatalf("evictInodes left %d in-core inodes", len(fs.inodes))
	}
}

// TestCheckDetectsDanglingPointer: the checker must notice a live
// block pointer into a clean (reusable) segment — the invariant the
// cleaner's checkpoint-before-reuse protocol exists to uphold.
func TestCheckDetectsDanglingPointer(t *testing.T) {
	fs := newTestFS(t, 16<<20, smallConfig())
	if err := fs.Create("/f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Write("/f", 0, make([]byte, 8192)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	// Sanity: clean before sabotage.
	rep, err := fs.Check()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("pre-sabotage problems: %v", rep.Problems)
	}
	// Sabotage: mark the segment holding /f's data clean, as a
	// buggy cleaner might.
	in, err := fs.getInode(2) // first file after the root
	if err != nil {
		fi, serr := fs.Stat("/f")
		if serr != nil {
			t.Fatal(serr)
		}
		in, err = fs.getInode(fi.Ino)
		if err != nil {
			t.Fatal(err)
		}
	}
	addr, err := fs.blockAddrOf(in, 0)
	if err != nil || addr.IsNil() {
		t.Fatalf("no on-disk block for /f: %v %v", addr, err)
	}
	seg := fs.segOf(addr)
	fs.usage[seg].State = segClean
	rep, err = fs.Check()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ok() {
		t.Fatal("checker blessed a live pointer into a clean segment")
	}
}

// TestCheckDetectsFreeInodeReference: a directory entry pointing at a
// free inode-map slot must be reported.
func TestCheckDetectsFreeInodeReference(t *testing.T) {
	fs := newTestFS(t, 16<<20, smallConfig())
	if err := fs.Create("/ghost"); err != nil {
		t.Fatal(err)
	}
	fi, err := fs.Stat("/ghost")
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage: free the inode in the map while the directory entry
	// remains.
	fs.imap.free(fi.Ino)
	rep, err := fs.Check()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ok() {
		t.Fatal("checker blessed a directory entry to a free inode")
	}
}
