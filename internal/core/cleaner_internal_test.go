package core

import (
	"bytes"
	"testing"

	"lfs/internal/disk"
	"lfs/internal/layout"
	"lfs/internal/sim"
)

// Tiny aliases keeping the eviction test terse.
func layoutIno(i int) layout.Ino { return layout.Ino(i) }
func layoutNewInode(ino layout.Ino) *layout.Inode {
	in := layout.NewInode(ino, layout.ModeFile|0o644)
	return &in
}

// newTestFS builds a mounted FS on a fresh memory disk for white-box
// tests.
func newTestFS(t *testing.T, capacity int64, cfg Config) *FS {
	t.Helper()
	d := disk.NewMem(capacity, sim.NewClock())
	if err := Format(d, cfg); err != nil {
		t.Fatal(err)
	}
	fs, err := Mount(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.MaxInodes = 1024
	return cfg
}

func TestSelectVictimGreedyPicksEmptiest(t *testing.T) {
	fs := newTestFS(t, 16<<20, smallConfig())
	// Hand-craft the usage array.
	for i := range fs.usage {
		fs.usage[i].State = segClean
		fs.usage[i].Live = 0
	}
	fs.usage[fs.heads[classHot].seg].State = segActive
	seg := func(i int, live int64) {
		fs.usage[i].State = segDirty
		fs.usage[i].Live = live
	}
	segSize := int64(fs.sb.SegmentSize)
	seg(3, segSize/2)
	seg(5, segSize/10) // emptiest
	seg(7, segSize*9/10)
	victim, ok := fs.selectVictim(nil)
	if !ok || victim != 5 {
		t.Fatalf("greedy picked %d (ok=%v), want 5", victim, ok)
	}
}

func TestSelectVictimSkipsHighUtilization(t *testing.T) {
	cfg := smallConfig()
	cfg.MinLiveFraction = 0.80
	fs := newTestFS(t, 16<<20, cfg)
	for i := range fs.usage {
		fs.usage[i].State = segClean
	}
	fs.usage[fs.heads[classHot].seg].State = segActive
	segSize := int64(fs.sb.SegmentSize)
	fs.usage[2].State = segDirty
	fs.usage[2].Live = segSize * 85 / 100 // above MinLiveFraction
	if victim, ok := fs.selectVictim(nil); ok {
		t.Fatalf("picked %d despite utilization above the cutoff", victim)
	}
	fs.usage[2].Live = segSize * 70 / 100
	if _, ok := fs.selectVictim(nil); !ok {
		t.Fatal("did not pick a below-cutoff segment")
	}
}

func TestSelectVictimNeverPicksActiveOrClean(t *testing.T) {
	fs := newTestFS(t, 16<<20, smallConfig())
	for i := range fs.usage {
		fs.usage[i].State = segClean
	}
	fs.usage[fs.heads[classHot].seg].State = segActive
	fs.usage[fs.heads[classHot].seg].Live = 0 // tempting but active
	if victim, ok := fs.selectVictim(nil); ok {
		t.Fatalf("picked %d from clean/active-only disk", victim)
	}
}

func TestSelectVictimCostBenefitPrefersOldCold(t *testing.T) {
	cfg := smallConfig()
	cfg.Policy = CleanCostBenefit
	fs := newTestFS(t, 16<<20, cfg)
	fs.clock.Advance(1000 * sim.Second)
	for i := range fs.usage {
		fs.usage[i].State = segClean
	}
	fs.usage[fs.heads[classHot].seg].State = segActive
	segSize := int64(fs.sb.SegmentSize)
	// Segment 2: fairly empty but hot (just written). Segment 4:
	// more utilised but very old/cold. Cost-benefit should prefer
	// the cold one; greedy would prefer the empty one.
	fs.usage[2].State = segDirty
	fs.usage[2].Live = segSize * 30 / 100
	fs.usage[2].LastWrite = fs.clock.Now()
	fs.usage[4].State = segDirty
	fs.usage[4].Live = segSize * 50 / 100
	fs.usage[4].LastWrite = 0 // 1000 seconds old
	victim, ok := fs.selectVictim(nil)
	if !ok || victim != 4 {
		t.Fatalf("cost-benefit picked %d, want old cold segment 4", victim)
	}
	// Same state under greedy picks the emptier one.
	fs.cfg.Policy = CleanGreedy
	victim, ok = fs.selectVictim(nil)
	if !ok || victim != 2 {
		t.Fatalf("greedy picked %d, want emptier segment 2", victim)
	}
}

// TestSelectVictimExactUtilizationBoundary: the MinLiveFraction
// cutoff is exclusive — a segment at exactly the threshold is never
// picked, one byte below it is. (0.75 of a power-of-two segment is
// exactly representable, so the comparison is exact.)
func TestSelectVictimExactUtilizationBoundary(t *testing.T) {
	cfg := smallConfig()
	cfg.MinLiveFraction = 0.75
	fs := newTestFS(t, 16<<20, cfg)
	for i := range fs.usage {
		fs.usage[i].State = segClean
	}
	fs.usage[fs.heads[classHot].seg].State = segActive
	segSize := int64(fs.sb.SegmentSize)
	fs.usage[2].State = segDirty
	fs.usage[2].Live = segSize * 3 / 4 // exactly the cutoff
	if victim, ok := fs.selectVictim(nil); ok {
		t.Fatalf("picked %d at exactly MinLiveFraction; the cutoff is exclusive", victim)
	}
	fs.usage[2].Live--
	if victim, ok := fs.selectVictim(nil); !ok || victim != 2 {
		t.Fatalf("one byte below the cutoff: got %d, %v; want 2", victim, ok)
	}
}

// TestSelectVictimTieBreaksLowestIndex: equal scores must resolve to
// the lowest segment index (strict > keeps the first candidate), so
// victim selection — and everything downstream of it — is
// deterministic across runs.
func TestSelectVictimTieBreaksLowestIndex(t *testing.T) {
	fs := newTestFS(t, 16<<20, smallConfig())
	for i := range fs.usage {
		fs.usage[i].State = segClean
	}
	fs.usage[fs.heads[classHot].seg].State = segActive
	segSize := int64(fs.sb.SegmentSize)
	for _, i := range []int{9, 3, 6} {
		fs.usage[i].State = segDirty
		fs.usage[i].Live = segSize / 4
	}
	if victim, ok := fs.selectVictim(nil); !ok || victim != 3 {
		t.Fatalf("tie broke to %d (ok=%v), want lowest index 3", victim, ok)
	}
	if victim, ok := fs.selectVictim(map[int]bool{3: true}); !ok || victim != 6 {
		t.Fatalf("tie with 3 excluded broke to %d (ok=%v), want 6", victim, ok)
	}
}

// TestSelectVictimSpaceGuardOverridesCostBenefit: with the clean
// reserve exhausted, cost-benefit must fall back to greedy — the old
// dense victim it prefers nets almost no space, and picking it under
// pressure is the death spiral the guard exists to break.
func TestSelectVictimSpaceGuardOverridesCostBenefit(t *testing.T) {
	cfg := smallConfig()
	cfg.Policy = CleanCostBenefit
	fs := newTestFS(t, 16<<20, cfg)
	fs.clock.Advance(1000 * sim.Second)
	for i := range fs.usage {
		fs.usage[i].State = segClean
	}
	fs.usage[fs.heads[classHot].seg].State = segActive
	segSize := int64(fs.sb.SegmentSize)
	fs.usage[2].State = segDirty
	fs.usage[2].Live = segSize * 30 / 100
	fs.usage[2].LastWrite = fs.clock.Now() // sparse but hot
	fs.usage[4].State = segDirty
	fs.usage[4].Live = segSize * 50 / 100
	fs.usage[4].LastWrite = 0 // dense but old
	fs.recountClean()
	if victim, ok := fs.selectVictim(nil); !ok || victim != 4 {
		t.Fatalf("precondition: cost-benefit with headroom picked %d (ok=%v), want 4", victim, ok)
	}
	fs.cleanCount = fs.cleanReserve()
	if victim, ok := fs.selectVictim(nil); !ok || victim != 2 {
		t.Fatalf("space guard picked %d (ok=%v), want emptiest segment 2", victim, ok)
	}
}

// TestSelectBatchGathersSparseVictims: sparse victims whose combined
// live data fits the relocation budget are batched together in greedy
// order without duplicates, and the needed cap is honored.
func TestSelectBatchGathersSparseVictims(t *testing.T) {
	fs := newTestFS(t, 16<<20, smallConfig())
	for i := range fs.usage {
		fs.usage[i].State = segClean
	}
	fs.usage[fs.heads[classHot].seg].State = segActive
	segSize := int64(fs.sb.SegmentSize)
	dirty := func(i int, live int64) {
		fs.usage[i].State = segDirty
		fs.usage[i].Live = live
	}
	dirty(3, segSize/4)
	dirty(5, segSize/8)
	dirty(7, segSize/2)
	fs.recountClean()
	batch := fs.selectBatch(8)
	// Combined live data (7/8 of a segment) fits the two-segment
	// budget, so all three come back, emptiest first.
	want := []int{5, 3, 7}
	if len(batch) != len(want) {
		t.Fatalf("batch = %v, want %v", batch, want)
	}
	for i := range want {
		if batch[i] != want[i] {
			t.Fatalf("batch = %v, want %v", batch, want)
		}
	}
	if batch = fs.selectBatch(2); len(batch) != 2 {
		t.Fatalf("needed=2 returned %v", batch)
	}
}

// TestSelectBatchStopsAtBudget: victims stop accumulating when their
// combined live data would overflow the relocation budget — but the
// first victim is always admitted, even over budget, so a cleaner
// under space pressure can still start.
func TestSelectBatchStopsAtBudget(t *testing.T) {
	fs := newTestFS(t, 16<<20, smallConfig())
	for i := range fs.usage {
		fs.usage[i].State = segClean
	}
	fs.usage[fs.heads[classHot].seg].State = segActive
	segSize := int64(fs.sb.SegmentSize)
	dirty := func(i int) {
		fs.usage[i].State = segDirty
		fs.usage[i].Live = segSize * 9 / 10
	}
	dirty(3)
	dirty(6)
	dirty(9)
	// Headroom for a two-segment budget: 0.9 + 0.9 fits, the third
	// victim would overflow.
	fs.cleanCount = 4
	batch := fs.selectBatch(8)
	if len(batch) != 2 || batch[0] != 3 || batch[1] != 6 {
		t.Fatalf("batch = %v, want [3 6] (third victim overflows the budget)", batch)
	}
	// No headroom at all: the budget is zero, yet the first victim
	// must still be admitted.
	fs.cleanCount = 2
	batch = fs.selectBatch(8)
	if len(batch) != 1 || batch[0] != 3 {
		t.Fatalf("batch under zero budget = %v, want [3]", batch)
	}
}

func TestPlaceBlocksSpansSegments(t *testing.T) {
	cfg := smallConfig()
	cfg.SegmentSize = 64 << 10 // 16 blocks per segment
	fs := newTestFS(t, 16<<20, cfg)
	// Place more blocks than one segment holds.
	n := 40
	refs := make([]blockRef, n)
	payload := make([][]byte, n)
	for i := range payload {
		payload[i] = make([]byte, cfg.BlockSize)
		payload[i][0] = byte(i)
		refs[i] = blockRef{Kind: kindData, Ino: 99, ID: int64(i)}
	}
	startSeg := fs.heads[classHot].seg
	addrs, err := fs.placeBlocks(classHot, refs, payload, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != n {
		t.Fatalf("placed %d, want %d", len(addrs), n)
	}
	if fs.heads[classHot].seg == startSeg {
		t.Fatal("placement did not span segments")
	}
	// All addresses distinct and within the segment area.
	seen := make(map[int64]bool)
	for i, a := range addrs {
		if fs.segOf(a) < 0 {
			t.Fatalf("block %d placed outside the segment area (%v)", i, a)
		}
		if seen[int64(a)] {
			t.Fatalf("address %v assigned twice", a)
		}
		seen[int64(a)] = true
	}
	if err := fs.flushPendingIO(); err != nil {
		t.Fatal(err)
	}
	// Every placed block must read back with its payload.
	buf := make([]byte, cfg.BlockSize)
	for i, a := range addrs {
		//lfslint:allow iocause raw-device readback below the FS; attribution is irrelevant here
		if err := fs.d.ReadSectors(int64(a), buf, disk.CauseOther, "test"); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(i) {
			t.Fatalf("block %d read back %d", i, buf[0])
		}
	}
}

func TestAdvanceSegmentExhaustion(t *testing.T) {
	fs := newTestFS(t, 16<<20, smallConfig())
	// Mark everything dirty so no clean segment remains.
	for i := range fs.usage {
		if fs.usage[i].State == segClean {
			fs.usage[i].State = segDirty
		}
	}
	fs.cleanCount = 0
	if err := fs.advanceSegment(classHot); err == nil {
		t.Fatal("advanceSegment succeeded with no clean segments")
	}
}

func TestFindCleanSegmentWraps(t *testing.T) {
	fs := newTestFS(t, 16<<20, smallConfig())
	for i := range fs.usage {
		fs.usage[i].State = segDirty
	}
	// Only a segment behind the head is clean.
	fs.usage[1].State = segClean
	fs.heads[classHot].seg = len(fs.usage) - 2
	fs.usage[fs.heads[classHot].seg].State = segActive
	next, ok := fs.findCleanSegmentFrom(fs.heads[classHot].seg)
	if !ok || next != 1 {
		t.Fatalf("findCleanSegmentFrom = %d, %v; want wrap to 1", next, ok)
	}
}

// TestCleanerPreservesDestinationAge: relocated blocks must carry
// their victim segment's data age to the destination segment, not the
// copy time. The old code stamped relocations "just written", so one
// cleaner pass made cold data look hot and cost-benefit stopped ever
// re-selecting the segments it landed in — age segregation silently
// degraded to random placement.
func TestCleanerPreservesDestinationAge(t *testing.T) {
	cfg := smallConfig()
	cfg.SegmentSize = 64 << 10
	cfg.CacheBlocks = 64
	cfg.MaxInodes = 512
	fs := newTestFS(t, 8<<20, cfg)
	// Write the population strictly after t=0 so a real data age is
	// never confused with the zero value.
	fs.clock.Advance(10 * sim.Second)
	for i := 0; i < 40; i++ {
		p := pathOf(i)
		if err := fs.Create(p); err != nil {
			t.Fatal(err)
		}
		if err := fs.Write(p, 0, bytes.Repeat([]byte{byte(i)}, 8192)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	t0 := fs.clock.Now()
	fs.clock.Advance(500 * sim.Second)
	// Kill every other file so the old segments are worth cleaning;
	// the deletions' metadata lands in fresh segments and leaves the
	// victims' recorded age untouched.
	for i := 0; i < 40; i += 2 {
		if err := fs.Remove(pathOf(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	victim := -1
	for i := range fs.usage {
		u := fs.usage[i]
		if u.State == segDirty && u.Live > 0 && u.Age > 0 && u.Age <= t0 {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatal("no old partially-live segment; test setup is wrong")
	}
	srcAge := fs.usage[victim].Age
	fs.cleaning = true
	res, err := fs.cleanSegment(victim)
	fs.cleaning = false
	if err != nil {
		t.Fatal(err)
	}
	if res.LiveCopied == 0 {
		t.Fatal("victim had no live blocks; test setup is wrong")
	}
	if !fs.heads[classCold].open {
		t.Fatal("segregated cleaning did not route relocations to the cold head")
	}
	dest := fs.heads[classCold].seg
	destAge := fs.usage[dest].Age
	now := fs.clock.Now()
	if destAge != srcAge {
		t.Fatalf("destination age = %d, want the victim's data age %d (now = %d): "+
			"relocation must carry age, not restamp it", destAge, srcAge, now)
	}
	if destAge >= now {
		t.Fatalf("destination age %d not older than the copy time %d", destAge, now)
	}
}

func TestInodeCacheEviction(t *testing.T) {
	fs := newTestFS(t, 16<<20, smallConfig())
	// Fill the in-core table beyond the limit with clean inodes.
	for i := 0; i < inodeCacheLimit+10; i++ {
		ino := layoutIno(i + 10)
		in := layoutNewInode(ino)
		fs.inodes[ino] = in
	}
	fs.evictInodes()
	if len(fs.inodes) >= inodeCacheLimit {
		t.Fatalf("evictInodes left %d in-core inodes", len(fs.inodes))
	}
}

// TestCheckDetectsDanglingPointer: the checker must notice a live
// block pointer into a clean (reusable) segment — the invariant the
// cleaner's checkpoint-before-reuse protocol exists to uphold.
func TestCheckDetectsDanglingPointer(t *testing.T) {
	fs := newTestFS(t, 16<<20, smallConfig())
	if err := fs.Create("/f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Write("/f", 0, make([]byte, 8192)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	// Sanity: clean before sabotage.
	rep, err := fs.Check()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("pre-sabotage problems: %v", rep.Problems)
	}
	// Sabotage: mark the segment holding /f's data clean, as a
	// buggy cleaner might.
	in, err := fs.getInode(2) // first file after the root
	if err != nil {
		fi, serr := fs.Stat("/f")
		if serr != nil {
			t.Fatal(serr)
		}
		in, err = fs.getInode(fi.Ino)
		if err != nil {
			t.Fatal(err)
		}
	}
	addr, err := fs.blockAddrOf(in, 0)
	if err != nil || addr.IsNil() {
		t.Fatalf("no on-disk block for /f: %v %v", addr, err)
	}
	seg := fs.segOf(addr)
	fs.usage[seg].State = segClean
	rep, err = fs.Check()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ok() {
		t.Fatal("checker blessed a live pointer into a clean segment")
	}
}

// TestCheckDetectsFreeInodeReference: a directory entry pointing at a
// free inode-map slot must be reported.
func TestCheckDetectsFreeInodeReference(t *testing.T) {
	fs := newTestFS(t, 16<<20, smallConfig())
	if err := fs.Create("/ghost"); err != nil {
		t.Fatal(err)
	}
	fi, err := fs.Stat("/ghost")
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage: free the inode in the map while the directory entry
	// remains.
	fs.imap.free(fi.Ino)
	rep, err := fs.Check()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ok() {
		t.Fatal("checker blessed a directory entry to a free inode")
	}
}
