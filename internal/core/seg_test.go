package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"lfs/internal/layout"
	"lfs/internal/sim"
)

func TestSegUsageRoundTrip(t *testing.T) {
	u := segUsage{Live: 123456, LastWrite: sim.Time(9 * sim.Second), State: segDirty}
	buf := make([]byte, segUsageEntrySize)
	u.encode(buf)
	if got := decodeSegUsage(buf); got != u {
		t.Fatalf("round trip: %+v vs %+v", got, u)
	}
}

func TestSummaryRoundTrip(t *testing.T) {
	refs := []blockRef{
		{Kind: kindData, Ino: 5, ID: 17, Version: 3},
		{Kind: kindIndirect, Ino: 5, ID: indSingle, Version: 3},
		{Kind: kindInodes},
		{Kind: kindImap, ID: 12},
	}
	h := summaryHeader{
		Serial: 42, NBlocks: len(refs), SumBlocks: 1,
		Timestamp: sim.Time(7), DataCRC: 0xDEADBEEF,
	}
	buf := make([]byte, 4096)
	encodeSummary(h, refs, buf)
	gotH, gotRefs, err := decodeSummary(buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotH != h {
		t.Fatalf("header: %+v vs %+v", gotH, h)
	}
	if !reflect.DeepEqual(gotRefs, refs) {
		t.Fatalf("refs: %+v vs %+v", gotRefs, refs)
	}
}

func TestSummaryDetectsCorruption(t *testing.T) {
	refs := []blockRef{{Kind: kindData, Ino: 1, ID: 0, Version: 0}}
	h := summaryHeader{Serial: 1, NBlocks: 1, SumBlocks: 1}
	buf := make([]byte, 4096)
	encodeSummary(h, refs, buf)
	buf[40] ^= 0x01
	if _, _, err := decodeSummary(buf); err == nil {
		t.Fatal("corrupted summary decoded")
	}
}

func TestSummaryRejectsGarbage(t *testing.T) {
	if _, _, err := decodeSummary(make([]byte, 4096)); err == nil {
		t.Fatal("zero block decoded as summary")
	}
	if _, _, err := decodeSummary(make([]byte, 10)); err == nil {
		t.Fatal("short buffer decoded as summary")
	}
}

func TestSummaryRoundTripProperty(t *testing.T) {
	f := func(serial uint64, n uint8, seed int64) bool {
		count := int(n%60) + 1
		rng := rand.New(rand.NewSource(seed))
		refs := make([]blockRef, count)
		for i := range refs {
			refs[i] = blockRef{
				Kind:    blockKind(rng.Intn(4)),
				Ino:     layout.Ino(rng.Uint32()),
				ID:      rng.Int63() - rng.Int63(),
				Version: rng.Uint32(),
			}
		}
		sumBlks := summaryBlocks(count, 4096)
		h := summaryHeader{Serial: serial, NBlocks: count, SumBlocks: sumBlks, Timestamp: sim.Time(rng.Int63())}
		buf := make([]byte, sumBlks*4096)
		encodeSummary(h, refs, buf)
		gotH, gotRefs, err := decodeSummary(buf)
		return err == nil && gotH == h && reflect.DeepEqual(gotRefs, refs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxUnitBlocks(t *testing.T) {
	bs := 4096
	// Not even one data block fits in less than 2 blocks.
	if maxUnitBlocks(0, bs) != 0 || maxUnitBlocks(1, bs) != 0 {
		t.Fatal("tiny avail should fit nothing")
	}
	// n blocks plus their summary always fit in the reported avail.
	for avail := 2; avail <= 512; avail++ {
		n := maxUnitBlocks(avail, bs)
		if n < 1 {
			t.Fatalf("avail %d fits nothing", avail)
		}
		if summaryBlocks(n, bs)+n > avail {
			t.Fatalf("avail %d: %d blocks + %d summary overflow", avail, n, summaryBlocks(n, bs))
		}
		// Maximality: one more block must not fit.
		if summaryBlocks(n+1, bs)+n+1 <= avail {
			t.Fatalf("avail %d: %d not maximal", avail, n)
		}
	}
}

func TestBlockKindString(t *testing.T) {
	for k, want := range map[blockKind]string{
		kindData: "data", kindIndirect: "indirect", kindInodes: "inodes", kindImap: "imap",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
	if blockKind(9).String() == "" {
		t.Error("unknown kind has empty name")
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	st := checkpointState{
		Serial: 7, Timestamp: sim.Time(3 * sim.Second),
		HeadSeg: 5, HeadBlk: 100, WriteSerial: 99, LiveBytes: 1 << 20,
		ImapAddrs: []layout.DiskAddr{1, layout.NilAddr, 3},
		Usage: []segUsage{
			{Live: 10, LastWrite: 1, State: segClean},
			{Live: 20, LastWrite: 2, State: segDirty},
			{Live: 0, LastWrite: 3, State: segActive},
		},
	}
	size := ckptHeaderSize + len(st.ImapAddrs)*layout.AddrSize + len(st.Usage)*segUsageEntrySize + 4
	buf := make([]byte, (size+511)&^511)
	encodeCheckpoint(st, buf)
	got, err := decodeCheckpoint(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, st) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, st)
	}
}

func TestCheckpointDetectsCorruption(t *testing.T) {
	st := checkpointState{Serial: 1, ImapAddrs: []layout.DiskAddr{1}, Usage: []segUsage{{}}}
	buf := make([]byte, 1024)
	encodeCheckpoint(st, buf)
	buf[50] ^= 0xFF
	if _, err := decodeCheckpoint(buf); err == nil {
		t.Fatal("corrupted checkpoint decoded")
	}
	if _, err := decodeCheckpoint(make([]byte, 1024)); err == nil {
		t.Fatal("zero checkpoint decoded")
	}
}
