package core

import (
	"encoding/binary"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"lfs/internal/layout"
	"lfs/internal/sim"
)

func TestSegUsageRoundTrip(t *testing.T) {
	u := segUsage{
		Live:      123456,
		LastWrite: sim.Time(9 * sim.Second),
		Age:       sim.Time(4 * sim.Second), // older than LastWrite: relocated cold data
		State:     segDirty,
	}
	buf := make([]byte, segUsageEntrySize)
	u.encode(buf)
	if got := decodeSegUsage(buf); got != u {
		t.Fatalf("round trip: %+v vs %+v", got, u)
	}
}

// TestSegUsageDecodeV1 pins the pre-age entry layout (Live at 0,
// LastWrite at 8, State at 16, 24 bytes total) and the decode
// fallback: with no recorded age, the last write time is the best
// available estimate.
func TestSegUsageDecodeV1(t *testing.T) {
	buf := make([]byte, segUsageEntrySizeV1)
	le := binary.LittleEndian
	le.PutUint64(buf[0:], 777)
	le.PutUint64(buf[8:], uint64(6*sim.Second))
	buf[16] = segDirty
	got := decodeSegUsageV1(buf)
	want := segUsage{
		Live:      777,
		LastWrite: sim.Time(6 * sim.Second),
		Age:       sim.Time(6 * sim.Second),
		State:     segDirty,
	}
	if got != want {
		t.Fatalf("v1 decode: %+v, want %+v", got, want)
	}
}

func TestSummaryRoundTrip(t *testing.T) {
	refs := []blockRef{
		{Kind: kindData, Ino: 5, ID: 17, Version: 3},
		{Kind: kindIndirect, Ino: 5, ID: indSingle, Version: 3},
		{Kind: kindInodes},
		{Kind: kindImap, ID: 12},
	}
	h := summaryHeader{
		Serial: 42, NBlocks: len(refs), SumBlocks: 1,
		Timestamp: sim.Time(7), DataCRC: 0xDEADBEEF,
		Class: classCold, Age: sim.Time(3), // a relocation unit: data older than its write
	}
	buf := make([]byte, 4096)
	encodeSummary(h, refs, buf)
	gotH, gotRefs, err := decodeSummary(buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotH != h {
		t.Fatalf("header: %+v vs %+v", gotH, h)
	}
	if !reflect.DeepEqual(gotRefs, refs) {
		t.Fatalf("refs: %+v vs %+v", gotRefs, refs)
	}
}

func TestSummaryDetectsCorruption(t *testing.T) {
	refs := []blockRef{{Kind: kindData, Ino: 1, ID: 0, Version: 0}}
	h := summaryHeader{Serial: 1, NBlocks: 1, SumBlocks: 1}
	buf := make([]byte, 4096)
	encodeSummary(h, refs, buf)
	buf[40] ^= 0x01
	if _, _, err := decodeSummary(buf); err == nil {
		t.Fatal("corrupted summary decoded")
	}
}

func TestSummaryRejectsGarbage(t *testing.T) {
	if _, _, err := decodeSummary(make([]byte, 4096)); err == nil {
		t.Fatal("zero block decoded as summary")
	}
	if _, _, err := decodeSummary(make([]byte, 10)); err == nil {
		t.Fatal("short buffer decoded as summary")
	}
}

func TestSummaryRoundTripProperty(t *testing.T) {
	f := func(serial uint64, n uint8, seed int64) bool {
		count := int(n%60) + 1
		rng := rand.New(rand.NewSource(seed))
		refs := make([]blockRef, count)
		for i := range refs {
			refs[i] = blockRef{
				Kind:    blockKind(rng.Intn(4)),
				Ino:     layout.Ino(rng.Uint32()),
				ID:      rng.Int63() - rng.Int63(),
				Version: rng.Uint32(),
			}
		}
		sumBlks := summaryBlocks(count, 4096)
		h := summaryHeader{Serial: serial, NBlocks: count, SumBlocks: sumBlks, Timestamp: sim.Time(rng.Int63())}
		buf := make([]byte, sumBlks*4096)
		encodeSummary(h, refs, buf)
		gotH, gotRefs, err := decodeSummary(buf)
		return err == nil && gotH == h && reflect.DeepEqual(gotRefs, refs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxUnitBlocks(t *testing.T) {
	bs := 4096
	// Not even one data block fits in less than 2 blocks.
	if maxUnitBlocks(0, bs) != 0 || maxUnitBlocks(1, bs) != 0 {
		t.Fatal("tiny avail should fit nothing")
	}
	// n blocks plus their summary always fit in the reported avail.
	for avail := 2; avail <= 512; avail++ {
		n := maxUnitBlocks(avail, bs)
		if n < 1 {
			t.Fatalf("avail %d fits nothing", avail)
		}
		if summaryBlocks(n, bs)+n > avail {
			t.Fatalf("avail %d: %d blocks + %d summary overflow", avail, n, summaryBlocks(n, bs))
		}
		// Maximality: one more block must not fit.
		if summaryBlocks(n+1, bs)+n+1 <= avail {
			t.Fatalf("avail %d: %d not maximal", avail, n)
		}
	}
}

func TestBlockKindString(t *testing.T) {
	for k, want := range map[blockKind]string{
		kindData: "data", kindIndirect: "indirect", kindInodes: "inodes", kindImap: "imap",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
	if blockKind(9).String() == "" {
		t.Error("unknown kind has empty name")
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	st := checkpointState{
		Serial: 7, Timestamp: sim.Time(3 * sim.Second),
		HeadSeg: 5, HeadBlk: 100, WriteSerial: 99, LiveBytes: 1 << 20,
		ColdOpen: true, ColdSeg: 9, ColdBlk: 42,
		ImapAddrs: []layout.DiskAddr{1, layout.NilAddr, 3},
		Usage: []segUsage{
			{Live: 10, LastWrite: 1, Age: 1, State: segClean},
			{Live: 20, LastWrite: 2, Age: 1, State: segDirty},
			{Live: 0, LastWrite: 3, Age: 3, State: segActive},
		},
	}
	size := ckptHeaderSize + len(st.ImapAddrs)*layout.AddrSize + len(st.Usage)*segUsageEntrySize + 4
	buf := make([]byte, (size+511)&^511)
	encodeCheckpoint(st, buf)
	got, err := decodeCheckpoint(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, st) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, st)
	}
}

// TestCheckpointColdHeadClosed: a closed cold head encodes as the
// sentinel, and the decoder must normalise the position to zero — a
// stale ColdSeg/ColdBlk must not leak through a closed head.
func TestCheckpointColdHeadClosed(t *testing.T) {
	st := checkpointState{
		Serial: 1, HeadSeg: 2, HeadBlk: 3,
		ColdOpen: false, ColdSeg: 14, ColdBlk: 77, // stale in-core values
		ImapAddrs: []layout.DiskAddr{1},
		Usage:     []segUsage{{Live: 5, LastWrite: 1, Age: 1, State: segDirty}},
	}
	buf := make([]byte, 1024)
	encodeCheckpoint(st, buf)
	got, err := decodeCheckpoint(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ColdOpen || got.ColdSeg != 0 || got.ColdBlk != 0 {
		t.Fatalf("closed cold head decoded as open=%v seg=%d blk=%d",
			got.ColdOpen, got.ColdSeg, got.ColdBlk)
	}
}

// TestDecodeCheckpointV1Image hand-builds a pre-age ("LCKP")
// checkpoint region byte by byte and decodes it with the current
// code: the 24-byte usage entries must parse at the v1 offsets, Age
// must fall back to LastWrite, and the cold head must stay closed.
// This is the compatibility guard for volumes checkpointed before the
// format change.
func TestDecodeCheckpointV1Image(t *testing.T) {
	imap := []layout.DiskAddr{100, layout.NilAddr}
	usage := []segUsage{
		{Live: 4096, LastWrite: sim.Time(2 * sim.Second), State: segDirty},
		{Live: 0, LastWrite: sim.Time(5 * sim.Second), State: segActive},
	}
	size := ckptHeaderSize + len(imap)*layout.AddrSize + len(usage)*segUsageEntrySizeV1 + 4
	buf := make([]byte, (size+511)&^511)
	le := binary.LittleEndian
	le.PutUint32(buf[0:], ckptMagicV1)
	le.PutUint64(buf[4:], 9)                     // Serial
	le.PutUint64(buf[12:], uint64(7*sim.Second)) // Timestamp
	le.PutUint32(buf[20:], 1)                    // HeadSeg
	le.PutUint32(buf[24:], 30)                   // HeadBlk
	le.PutUint64(buf[28:], 55)                   // WriteSerial
	le.PutUint64(buf[36:], 4096)                 // LiveBytes
	le.PutUint32(buf[44:], uint32(len(imap)))
	le.PutUint32(buf[48:], uint32(len(usage)))
	// A v1 writer left bytes 52..59 zero; leave them zero here — the
	// decoder must not read a cold head out of them.
	off := ckptHeaderSize
	for _, a := range imap {
		le.PutUint32(buf[off:], uint32(a))
		off += layout.AddrSize
	}
	for _, u := range usage {
		le.PutUint64(buf[off+0:], uint64(u.Live))
		le.PutUint64(buf[off+8:], uint64(u.LastWrite))
		buf[off+16] = u.State
		off += segUsageEntrySizeV1
	}
	le.PutUint32(buf[off:], layout.Checksum(buf[:off]))

	got, err := decodeCheckpoint(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Serial != 9 || got.Timestamp != sim.Time(7*sim.Second) ||
		got.HeadSeg != 1 || got.HeadBlk != 30 ||
		got.WriteSerial != 55 || got.LiveBytes != 4096 {
		t.Fatalf("v1 header decoded wrong: %+v", got)
	}
	if got.ColdOpen || got.ColdSeg != 0 || got.ColdBlk != 0 {
		t.Fatalf("v1 image decoded with an open cold head: %+v", got)
	}
	if !reflect.DeepEqual(got.ImapAddrs, imap) {
		t.Fatalf("imap addrs: %v, want %v", got.ImapAddrs, imap)
	}
	for i, u := range usage {
		want := u
		want.Age = want.LastWrite // the v1 fallback
		if got.Usage[i] != want {
			t.Fatalf("usage[%d]: %+v, want %+v", i, got.Usage[i], want)
		}
	}
}

func TestCheckpointDetectsCorruption(t *testing.T) {
	st := checkpointState{Serial: 1, ImapAddrs: []layout.DiskAddr{1}, Usage: []segUsage{{}}}
	buf := make([]byte, 1024)
	encodeCheckpoint(st, buf)
	buf[50] ^= 0xFF
	if _, err := decodeCheckpoint(buf); err == nil {
		t.Fatal("corrupted checkpoint decoded")
	}
	if _, err := decodeCheckpoint(make([]byte, 1024)); err == nil {
		t.Fatal("zero checkpoint decoded")
	}
}
