package core

import (
	"lfs/internal/cache"
	"lfs/internal/disk"
	"lfs/internal/layout"
)

// getDataBlock returns the cached block (ino, lbn), reading it from
// the log when it exists only on disk. With create true a missing
// block (a hole) is materialised as a zeroed dirty-to-be block; with
// create false a hole returns nil.
func (fs *FS) getDataBlock(in *layout.Inode, lbn int64, create bool) (*cache.Block, error) {
	key := dataKey(in.Ino, lbn)
	if b := fs.bc.Get(key); b != nil {
		fs.cpu.Charge(fs.cfg.Costs.BlockSetup)
		return b, nil
	}
	addr, err := fs.blockAddrOf(in, lbn)
	if err != nil {
		return nil, err
	}
	if addr.IsNil() {
		if !create {
			return nil, nil
		}
		b := fs.bc.Add(key)
		fs.cpu.Charge(fs.cfg.Costs.BlockSetup)
		return b, nil
	}
	b := fs.bc.Add(key)
	fs.cpu.Charge(fs.cfg.Costs.BlockSetup + fs.cfg.Costs.DiskOpSetup)
	if err := fs.d.ReadSectors(int64(addr), b.Data, disk.CauseReadMiss, "file read"); err != nil {
		fs.bc.Remove(key)
		return nil, err
	}
	return b, nil
}

// readAheadBlocks is how many contiguous blocks a cache-miss read
// fetches in one transfer when the blocks are physically adjacent on
// disk — standard UNIX read-ahead, which both SunOS and Sprite
// performed. Files written sequentially through the log are laid out
// contiguously, so sequential reads run at near disk bandwidth; a
// file scattered by random log writes gets no benefit (the paper's
// seq-reread-after-random-write case).
const readAheadBlocks = 16

// readDataBlock is getDataBlock for the read path: on a miss during
// a detected sequential scan it fetches up to readAheadBlocks
// physically contiguous blocks in one disk request.
func (fs *FS) readDataBlock(in *layout.Inode, lbn int64) (*cache.Block, error) {
	sequential := lbn == 0 || fs.lastRead[in.Ino]+1 == lbn
	fs.lastRead[in.Ino] = lbn
	key := dataKey(in.Ino, lbn)
	if b := fs.bc.Get(key); b != nil {
		fs.cpu.Charge(fs.cfg.Costs.BlockSetup)
		return b, nil
	}
	addr, err := fs.blockAddrOf(in, lbn)
	if err != nil {
		return nil, err
	}
	if addr.IsNil() {
		return nil, nil // hole
	}
	// During sequential scans, collect physically contiguous
	// successors not already cached.
	bs := fs.cfg.BlockSize
	spb := layout.DiskAddr(fs.cfg.sectorsPerBlock())
	maxLbn := layout.BlocksForSize(in.Size, bs)
	limit := 1
	if sequential {
		limit = readAheadBlocks
	}
	run := 1
	for run < limit && lbn+int64(run) < maxLbn {
		next, err := fs.blockAddrOf(in, lbn+int64(run))
		if err != nil {
			return nil, err
		}
		if next != addr+layout.DiskAddr(run)*spb {
			break
		}
		if fs.bc.Peek(dataKey(in.Ino, lbn+int64(run))) != nil {
			break
		}
		run++
	}
	fs.cpu.Charge(fs.cfg.Costs.BlockSetup + fs.cfg.Costs.DiskOpSetup)
	span := make([]byte, run*bs)
	if err := fs.d.ReadSectors(int64(addr), span, disk.CauseReadMiss, "file read"); err != nil {
		return nil, err
	}
	var first *cache.Block
	for i := 0; i < run; i++ {
		b := fs.bc.Add(dataKey(in.Ino, lbn+int64(i)))
		copy(b.Data, span[i*bs:(i+1)*bs])
		if i == 0 {
			first = b
		}
	}
	return first, nil
}

// readFile copies bytes [off, off+len(buf)) into buf, clamped to the
// file size.
func (fs *FS) readFile(in *layout.Inode, off int64, buf []byte) (int, error) {
	size := int64(in.Size)
	if off >= size {
		return 0, nil
	}
	if max := size - off; int64(len(buf)) > max {
		buf = buf[:max]
	}
	bs := int64(fs.cfg.BlockSize)
	read := 0
	for read < len(buf) {
		pos := off + int64(read)
		lbn := pos / bs
		bo := pos % bs
		n := int(bs - bo)
		if n > len(buf)-read {
			n = len(buf) - read
		}
		b, err := fs.readDataBlock(in, lbn)
		if err != nil {
			return read, err
		}
		if b == nil {
			for i := 0; i < n; i++ {
				buf[read+i] = 0
			}
		} else {
			copy(buf[read:read+n], b.Data[bo:])
		}
		fs.cpu.Charge(fs.cfg.Costs.Copy(n))
		read += n
	}
	return read, nil
}

// writeFile stores data at off. All modifications stay in the cache;
// the segment writer assigns disk addresses later. Size growth is
// applied to the inode by the caller's bookkeeping here.
func (fs *FS) writeFile(in *layout.Inode, off int64, data []byte) error {
	bs := int64(fs.cfg.BlockSize)
	written := 0
	for written < len(data) {
		pos := off + int64(written)
		lbn := pos / bs
		bo := pos % bs
		n := int(bs - bo)
		if n > len(data)-written {
			n = len(data) - written
		}
		var b *cache.Block
		var err error
		if bo == 0 && n == int(bs) {
			// Full overwrite: no read-modify-write. Use the
			// cached block if present, else a fresh one.
			key := dataKey(in.Ino, lbn)
			if b = fs.bc.Get(key); b == nil {
				b = fs.bc.Add(key)
			}
			fs.cpu.Charge(fs.cfg.Costs.BlockSetup)
		} else {
			b, err = fs.getDataBlock(in, lbn, true)
			if err != nil {
				return err
			}
		}
		copy(b.Data[bo:], data[written:written+n])
		fs.cpu.Charge(fs.cfg.Costs.Copy(n))
		fs.bc.MarkDirty(b, fs.clock.Now())
		written += n
	}
	if end := uint64(off) + uint64(len(data)); end > in.Size {
		in.Size = end
		fs.markInodeDirty(in.Ino)
	}
	return nil
}

// truncateFile sets the file length. Shrinking kills the on-disk
// copies of dropped blocks in the usage array, clears their pointers,
// releases indirect blocks that no longer map anything, and discards
// their cached copies.
func (fs *FS) truncateFile(in *layout.Inode, size int64) error {
	bs := int64(fs.cfg.BlockSize)
	oldBlocks := layout.BlocksForSize(in.Size, fs.cfg.BlockSize)
	newBlocks := layout.BlocksForSize(uint64(size), fs.cfg.BlockSize)

	for lbn := newBlocks; lbn < oldBlocks; lbn++ {
		old, err := fs.setBlockAddr(in, lbn, layout.NilAddr)
		if err != nil {
			return err
		}
		fs.killBlock(old, bs)
		fs.bc.Remove(dataKey(in.Ino, lbn))
	}
	if newBlocks < oldBlocks {
		if err := fs.pruneIndirects(in, newBlocks); err != nil {
			return err
		}
	}
	// Zero the tail of the final partial block so regrowth reads
	// zeros.
	if size > 0 && size%bs != 0 && size < int64(in.Size) {
		lbn := size / bs
		b, err := fs.getDataBlock(in, lbn, false)
		if err != nil {
			return err
		}
		if b != nil {
			for i := size % bs; i < bs; i++ {
				b.Data[i] = 0
			}
			fs.bc.MarkDirty(b, fs.clock.Now())
		}
	}
	if uint64(size) != in.Size {
		in.Size = uint64(size)
		fs.markInodeDirty(in.Ino)
	}
	return nil
}

// pruneIndirects releases indirect blocks unused below newBlocks.
func (fs *FS) pruneIndirects(in *layout.Inode, newBlocks int64) error {
	bs := int64(fs.cfg.BlockSize)
	apb := int64(layout.AddrsPerBlock(fs.cfg.BlockSize))
	dropIndirect := func(id int64) error {
		old, err := fs.setIndirectAddr(in, id, layout.NilAddr)
		if err != nil {
			return err
		}
		fs.killBlock(old, bs)
		fs.bc.Remove(indKey(in.Ino, id))
		return nil
	}

	doubleStart := int64(layout.NDirect) + apb
	// Inner double-indirect blocks beyond the kept range.
	if !in.DoubleIndirect.IsNil() {
		keepInner := int64(0)
		if newBlocks > doubleStart {
			keepInner = (newBlocks - doubleStart + apb - 1) / apb
		}
		outer, err := fs.getIndirect(in.Ino, indDoubleOuter, in.DoubleIndirect, false)
		if err != nil {
			return err
		}
		if outer != nil {
			for idx := keepInner; idx < apb; idx++ {
				if a := loadAddr(outer, int(idx)); !a.IsNil() {
					if err := dropIndirect(indDoubleInnerBase + idx); err != nil {
						return err
					}
				} else {
					fs.bc.Remove(indKey(in.Ino, indDoubleInnerBase+idx))
				}
			}
		}
		if keepInner == 0 {
			if err := dropIndirect(indDoubleOuter); err != nil {
				return err
			}
		}
	}
	if newBlocks <= layout.NDirect && !in.Indirect.IsNil() {
		if err := dropIndirect(indSingle); err != nil {
			return err
		}
	}
	return nil
}

// removeFileBlocks releases everything the file owns (the unlink
// path): its data and indirect blocks, cached copies, and the live
// estimate of its inode record.
func (fs *FS) removeFileBlocks(in *layout.Inode) error {
	if err := fs.truncateFile(in, 0); err != nil {
		return err
	}
	// Drop any remaining cached blocks of this file.
	ino := in.Ino
	fs.bc.RemoveMatching(func(k cache.Key) bool { return k.Ino == ino })
	return nil
}
