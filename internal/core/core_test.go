package core_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"lfs/internal/cache"
	"lfs/internal/core"
	"lfs/internal/disk"
	"lfs/internal/fstest"
	"lfs/internal/sim"
	"lfs/internal/vfs"
)

// newPair formats a fresh LFS on a memory disk and mounts it.
func newPair(t *testing.T, capacity int64, cfg core.Config) (*disk.Disk, *core.FS) {
	t.Helper()
	d := disk.NewMem(capacity, sim.NewClock())
	if err := core.Format(d, cfg); err != nil {
		t.Fatal(err)
	}
	fs, err := core.Mount(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d, fs
}

// testConfig shrinks the inode map so small test disks format quickly.
func testConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.MaxInodes = 4096
	return cfg
}

func newFS(t *testing.T, capacity int64) *core.FS {
	t.Helper()
	_, fs := newPair(t, capacity, testConfig())
	return fs
}

func TestLFSConformance(t *testing.T) {
	fstest.RunConformance(t, func(t *testing.T) vfs.FileSystem {
		return newFS(t, 64<<20)
	})
}

func TestLFSDurabilityEquivalence(t *testing.T) {
	for seed := int64(10); seed <= 13; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			cfg := testConfig()
			fstest.RunDurabilityEquivalence(t, func(t *testing.T) (vfs.FileSystem, func() vfs.FileSystem) {
				d, fs := newPair(t, 64<<20, cfg)
				return fs, func() vfs.FileSystem {
					fs2, err := core.Mount(d, cfg)
					if err != nil {
						t.Fatalf("remount: %v", err)
					}
					return fs2
				}
			}, seed, 300)
		})
	}
}

func TestLFSModelEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			fstest.RunEquivalence(t, func(t *testing.T) vfs.FileSystem {
				return newFS(t, 64<<20)
			}, seed, 400)
		})
	}
}

func TestFormatValidation(t *testing.T) {
	d := disk.NewMem(8<<20, sim.NewClock())
	bad := testConfig()
	bad.BlockSize = 1000
	if err := core.Format(d, bad); err == nil {
		t.Fatal("bad block size accepted")
	}
	tiny := disk.NewMem(2<<20, sim.NewClock())
	if err := core.Format(tiny, testConfig()); err == nil {
		t.Fatal("disk smaller than 4 segments accepted")
	}
}

func TestMountRejectsUnformatted(t *testing.T) {
	d := disk.NewMem(16<<20, sim.NewClock())
	if _, err := core.Mount(d, testConfig()); err == nil {
		t.Fatal("mounted an unformatted disk")
	}
}

func TestMountRejectsMismatchedGeometry(t *testing.T) {
	d := disk.NewMem(16<<20, sim.NewClock())
	cfg := testConfig()
	if err := core.Format(d, cfg); err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.SegmentSize = 512 << 10
	if _, err := core.Mount(d, cfg2); err == nil {
		t.Fatal("mounted with wrong segment size")
	}
	cfg3 := cfg
	cfg3.MaxInodes = 8192
	if _, err := core.Mount(d, cfg3); err == nil {
		t.Fatal("mounted with wrong inode count")
	}
}

// writeCounter tallies writes by sync flag.
type writeCounter struct {
	sync, async, reads int
}

func (c *writeCounter) Record(ev disk.Event) {
	switch {
	case ev.Kind == disk.OpRead:
		c.reads++
	case ev.Sync:
		c.sync++
	default:
		c.async++
	}
}

// TestCreateIsAsynchronous is the LFS half of Figures 1-2: creating
// files performs no synchronous writes and, until a segment write
// triggers, no disk writes at all.
func TestCreateIsAsynchronous(t *testing.T) {
	fs := newFS(t, 64<<20)
	if err := fs.Mkdir("/dir1"); err != nil {
		t.Fatal(err)
	}
	var c writeCounter
	fs.Disk().SetTracer(&c)
	before := fs.Clock().Now()
	for i := 0; i < 50; i++ {
		p := fmt.Sprintf("/dir1/file%d", i)
		if err := fs.Create(p); err != nil {
			t.Fatal(err)
		}
		if err := fs.Write(p, 0, bytes.Repeat([]byte{1}, 1024)); err != nil {
			t.Fatal(err)
		}
	}
	if c.sync != 0 {
		t.Fatalf("small-file creation performed %d synchronous writes, want 0", c.sync)
	}
	if c.async != 0 {
		t.Fatalf("small-file creation performed %d eager writes, want 0 (buffered)", c.async)
	}
	// Creation speed is CPU-bound: 50 create+write pairs take a few
	// hundred ms of simulated CPU, far below the >1s that 100 sync
	// random writes would cost.
	elapsed := fs.Clock().Now().Sub(before)
	if elapsed > sim.Second {
		t.Fatalf("50 small-file creations took %v; LFS should be CPU-bound, not disk-bound", elapsed)
	}
}

// TestSyncWritesOneLargeTransfer: after many small creates, a sync
// produces a small number of large sequential writes.
func TestSyncWritesOneLargeTransfer(t *testing.T) {
	fs := newFS(t, 64<<20)
	for i := 0; i < 20; i++ {
		p := fmt.Sprintf("/f%d", i)
		if err := fs.Create(p); err != nil {
			t.Fatal(err)
		}
		if err := fs.Write(p, 0, bytes.Repeat([]byte{2}, 1024)); err != nil {
			t.Fatal(err)
		}
	}
	var events []disk.Event
	fs.Disk().SetTracer(tracerFunc(func(ev disk.Event) { events = append(events, ev) }))
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	var writes, seq int
	var bytesOut int64
	for _, ev := range events {
		if ev.Kind != disk.OpWrite {
			continue
		}
		writes++
		if ev.Sequential {
			seq++
		}
		bytesOut += int64(ev.Sectors) * disk.SectorSize
	}
	if writes == 0 {
		t.Fatal("sync wrote nothing")
	}
	if writes > 8 {
		t.Fatalf("sync issued %d writes for 20 small files; LFS should batch into a few large transfers", writes)
	}
	if bytesOut < 20*1024 {
		t.Fatalf("sync wrote only %d bytes", bytesOut)
	}
}

type tracerFunc func(disk.Event)

func (f tracerFunc) Record(ev disk.Event) { f(ev) }

func TestDataPersistsAcrossCleanRemount(t *testing.T) {
	cfg := testConfig()
	d, fs := newPair(t, 64<<20, cfg)
	want := bytes.Repeat([]byte{0xEE}, 30000)
	if err := fs.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("/d/f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Write("/d/f", 0, want); err != nil {
		t.Fatal(err)
	}
	if err := fs.Unmount(); err != nil {
		t.Fatal(err)
	}

	fs2, err := core.Mount(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	n, err := fs2.Read("/d/f", 0, got)
	if err != nil || n != len(want) || !bytes.Equal(got, want) {
		t.Fatalf("data lost across remount: n=%d err=%v", n, err)
	}
	entries, err := fs2.ReadDir("/d")
	if err != nil || len(entries) != 1 || entries[0].Name != "f" {
		t.Fatalf("directory lost across remount: %v %v", entries, err)
	}
}

// TestCrashRecoveryFromCheckpoint: state up to the last checkpoint
// survives a crash even with roll-forward disabled.
func TestCrashRecoveryFromCheckpoint(t *testing.T) {
	cfg := testConfig()
	cfg.RollForward = false
	d, fs := newPair(t, 64<<20, cfg)
	if err := fs.Create("/durable"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Write("/durable", 0, []byte("checkpointed")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint activity that will be lost.
	if err := fs.Create("/volatile"); err != nil {
		t.Fatal(err)
	}
	fs.Crash()

	fs2, err := core.Mount(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32)
	n, err := fs2.Read("/durable", 0, buf)
	if err != nil || string(buf[:n]) != "checkpointed" {
		t.Fatalf("checkpointed data lost: %q %v", buf[:n], err)
	}
	if _, err := fs2.Stat("/volatile"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("uncheckpointed create should be lost without roll-forward, got %v", err)
	}
}

// TestRollForwardRecoversPostCheckpointWrites: with roll-forward, data
// that reached the log (via sync) after the last checkpoint survives.
func TestRollForwardRecoversPostCheckpointWrites(t *testing.T) {
	cfg := testConfig()
	cfg.RollForward = true
	d, fs := newPair(t, 64<<20, cfg)
	if err := fs.Create("/old"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Written and synced after the checkpoint, but never
	// checkpointed.
	if err := fs.Mkdir("/post"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("/post/f"); err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{0x5C}, 9000)
	if err := fs.Write("/post/f", 0, want); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	fs.Crash()

	fs2, err := core.Mount(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fs2.Stats().RollForwardUnits == 0 {
		t.Fatal("mount performed no roll-forward")
	}
	got := make([]byte, len(want))
	n, err := fs2.Read("/post/f", 0, got)
	if err != nil || n != len(want) || !bytes.Equal(got, want) {
		t.Fatalf("rolled-forward data wrong: n=%d err=%v", n, err)
	}
	if _, err := fs2.Stat("/old"); err != nil {
		t.Fatalf("checkpointed file lost: %v", err)
	}
}

// TestRollForwardStopsAtTornWrite: a torn final segment write must
// not be replayed.
func TestRollForwardStopsAtTornWrite(t *testing.T) {
	cfg := testConfig()
	d, fs := newPair(t, 64<<20, cfg)
	if err := fs.Create("/safe"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("/torn"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Write("/torn", 0, bytes.Repeat([]byte{7}, 60000)); err != nil {
		t.Fatal(err)
	}
	d.TearNextWrite()
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	fs.Crash()

	fs2, err := core.Mount(d, cfg)
	if err != nil {
		t.Fatalf("mount after torn write failed: %v", err)
	}
	if _, err := fs2.Stat("/safe"); err != nil {
		t.Fatalf("checkpointed file lost after torn write: %v", err)
	}
	// The torn file may or may not exist depending on where the
	// tear fell, but reading whatever exists must not fail.
	if _, err := fs2.Stat("/torn"); err == nil {
		buf := make([]byte, 60000)
		if _, err := fs2.Read("/torn", 0, buf); err != nil {
			t.Fatalf("reading partially recovered file failed: %v", err)
		}
	}
}

// TestMountIsFast: LFS recovery reads checkpoints and the log tail,
// not the whole disk — simulated mount time must be far below a full
// scan.
func TestMountIsFast(t *testing.T) {
	cfg := testConfig()
	d, fs := newPair(t, 128<<20, cfg)
	for i := 0; i < 100; i++ {
		p := fmt.Sprintf("/f%d", i)
		if err := fs.Create(p); err != nil {
			t.Fatal(err)
		}
		if err := fs.Write(p, 0, bytes.Repeat([]byte{byte(i)}, 4096)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Unmount(); err != nil {
		t.Fatal(err)
	}
	before := d.Clock().Now()
	if _, err := core.Mount(d, cfg); err != nil {
		t.Fatal(err)
	}
	mountTime := d.Clock().Now().Sub(before)
	// A full 128 MB scan at 1.3 MB/s would take ~98 seconds; the
	// checkpoint mount should take well under one.
	if mountTime > sim.Second {
		t.Fatalf("mount took %v of simulated time; recovery must not scan the disk", mountTime)
	}
}

func TestCleanerReclaimsDeletedSpace(t *testing.T) {
	cfg := testConfig()
	cfg.CacheBlocks = 256 // force frequent segment writes
	_, fs := newPair(t, 32<<20, cfg)
	payload := bytes.Repeat([]byte{3}, 4096)
	// Fill several segments, then delete everything.
	for i := 0; i < 800; i++ {
		p := fmt.Sprintf("/f%d", i)
		if err := fs.Create(p); err != nil {
			t.Fatal(err)
		}
		if err := fs.Write(p, 0, payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 800; i++ {
		if err := fs.Remove(fmt.Sprintf("/f%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	before := fs.CleanSegments()
	res, err := fs.CleanUntil(int(32 << 20 / cfg.SegmentSize)) // everything
	if err != nil {
		t.Fatal(err)
	}
	if res.SegmentsCleaned == 0 {
		t.Fatal("cleaner reclaimed nothing from a fully deleted log")
	}
	if fs.CleanSegments() <= before {
		t.Fatal("clean segment count did not rise")
	}
	// Dead blocks must not be copied: utilization was ~0.
	if res.LiveCopied > res.BlocksExamined/4 {
		t.Fatalf("cleaner copied %d of %d blocks from dead segments", res.LiveCopied, res.BlocksExamined)
	}
}

func TestCleanerPreservesLiveData(t *testing.T) {
	cfg := testConfig()
	cfg.CacheBlocks = 256
	d, fs := newPair(t, 32<<20, cfg)
	payload := func(i int) []byte {
		return bytes.Repeat([]byte{byte(i*13 + 7)}, 4096)
	}
	// Interleave survivors and victims so every segment is half
	// live.
	for i := 0; i < 600; i++ {
		p := fmt.Sprintf("/f%d", i)
		if err := fs.Create(p); err != nil {
			t.Fatal(err)
		}
		if err := fs.Write(p, 0, payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 600; i += 2 {
		if err := fs.Remove(fmt.Sprintf("/f%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	res, err := fs.CleanUntil(fs.CleanSegments() + 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.SegmentsCleaned == 0 {
		t.Fatal("cleaner did nothing")
	}
	if res.LiveCopied == 0 {
		t.Fatal("cleaner copied no live blocks from half-utilised segments")
	}
	// All survivors intact, after cleaning AND after a remount.
	check := func(fsys vfs.FileSystem, tag string) {
		for i := 1; i < 600; i += 2 {
			p := fmt.Sprintf("/f%d", i)
			buf := make([]byte, 4096)
			n, err := fsys.Read(p, 0, buf)
			if err != nil || n != 4096 || !bytes.Equal(buf, payload(i)) {
				t.Fatalf("%s: survivor %s corrupted (n=%d err=%v)", tag, p, n, err)
			}
		}
	}
	check(fs, "after clean")
	if err := fs.Unmount(); err != nil {
		t.Fatal(err)
	}
	fs2, err := core.Mount(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	check(fs2, "after remount")
}

// TestCleanerActivatesAutomatically: sustained churn beyond the disk's
// capacity must keep succeeding because the cleaner reclaims dead
// segments.
func TestCleanerActivatesAutomatically(t *testing.T) {
	cfg := testConfig()
	cfg.CacheBlocks = 128
	_, fs := newPair(t, 12<<20, cfg)
	payload := bytes.Repeat([]byte{9}, 4096)
	// Total log traffic (data + metadata rewrites) far exceeds the
	// 12 MB disk while live data stays around 2.5-5 MB — the log
	// wraps several times, which only works if cleaning happens.
	for gen := 0; gen < 5; gen++ {
		for i := 0; i < 600; i++ {
			p := fmt.Sprintf("/g%d-%d", gen, i)
			if err := fs.Create(p); err != nil {
				t.Fatalf("gen %d file %d: %v", gen, i, err)
			}
			if err := fs.Write(p, 0, payload); err != nil {
				t.Fatalf("gen %d file %d: %v", gen, i, err)
			}
		}
		if gen > 0 {
			for i := 0; i < 600; i++ {
				if err := fs.Remove(fmt.Sprintf("/g%d-%d", gen-1, i)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if fs.Stats().CleanerRuns == 0 {
		t.Fatal("cleaner never activated under log wrap-around")
	}
	// Final generation fully readable.
	buf := make([]byte, 4096)
	for i := 0; i < 600; i += 37 {
		if _, err := fs.Read(fmt.Sprintf("/g4-%d", i), 0, buf); err != nil {
			t.Fatal(err)
		}
	}
}

func TestNoSpaceWhenLiveDataFillsDisk(t *testing.T) {
	cfg := testConfig()
	cfg.CacheBlocks = 64
	_, fs := newPair(t, 8<<20, cfg)
	if err := fs.Create("/hog"); err != nil {
		t.Fatal(err)
	}
	var wErr error
	for i := 0; i < 4096; i++ {
		wErr = fs.Write("/hog", int64(i)*4096, make([]byte, 4096))
		if wErr != nil {
			break
		}
	}
	if !errors.Is(wErr, vfs.ErrNoSpace) {
		t.Fatalf("filling the disk returned %v, want ErrNoSpace", wErr)
	}
}

func TestInodeExhaustion(t *testing.T) {
	cfg := testConfig()
	cfg.MaxInodes = 64
	_, fs := newPair(t, 16<<20, cfg)
	var cErr error
	for i := 0; i < 128; i++ {
		cErr = fs.Create(fmt.Sprintf("/f%d", i))
		if cErr != nil {
			break
		}
	}
	if !errors.Is(cErr, vfs.ErrNoSpace) {
		t.Fatalf("inode exhaustion returned %v, want ErrNoSpace", cErr)
	}
}

func TestVersionBumpOnDeleteAndReuse(t *testing.T) {
	_, fs := newPair(t, 32<<20, testConfig())
	if err := fs.Create("/a"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Write("/a", 0, bytes.Repeat([]byte{1}, 8192)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	fiA, _ := fs.Stat("/a")
	if err := fs.Remove("/a"); err != nil {
		t.Fatal(err)
	}
	// The inode number is reused; the version bump keeps the old
	// file's logged blocks dead.
	if err := fs.Create("/b"); err != nil {
		t.Fatal(err)
	}
	fiB, _ := fs.Stat("/b")
	if fiA.Ino != fiB.Ino {
		t.Skipf("inode number not reused (%d then %d); version path not exercised", fiA.Ino, fiB.Ino)
	}
	if err := fs.Write("/b", 0, bytes.Repeat([]byte{2}, 4096)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	res, err := fs.CleanUntil(fs.CleanSegments() + 1)
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	buf := make([]byte, 4096)
	n, err := fs.Read("/b", 0, buf)
	if err != nil || n != 4096 || buf[0] != 2 {
		t.Fatalf("reused-ino file corrupted after clean: n=%d err=%v", n, err)
	}
}

func TestCheckpointIntervalTriggers(t *testing.T) {
	cfg := testConfig()
	cfg.CheckpointInterval = 2 * sim.Second
	_, fs := newPair(t, 32<<20, cfg)
	base := fs.Stats().Checkpoints
	// Writing 6 MB at ~1.3 MB/s of disk plus CPU time advances the
	// simulated clock well past several intervals.
	payload := bytes.Repeat([]byte{4}, 64<<10)
	if err := fs.Create("/big"); err != nil {
		t.Fatal(err)
	}
	for off := int64(0); off < 6<<20; off += int64(len(payload)) {
		if err := fs.Write("/big", off, payload); err != nil {
			t.Fatal(err)
		}
		if err := fs.Sync(); err != nil { // advances the clock
			t.Fatal(err)
		}
	}
	if fs.Stats().Checkpoints <= base {
		t.Fatal("no periodic checkpoint occurred")
	}
}

func TestWritebackAgeTriggersSegmentWrite(t *testing.T) {
	cfg := testConfig()
	cfg.WritebackAge = 1 * sim.Second
	_, fs := newPair(t, 32<<20, cfg)
	if err := fs.Create("/f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Write("/f", 0, bytes.Repeat([]byte{5}, 4096)); err != nil {
		t.Fatal(err)
	}
	// Burn CPU time past the age threshold with reads.
	buf := make([]byte, 4096)
	for i := 0; i < 20000; i++ {
		if _, err := fs.Read("/f", 0, buf); err != nil {
			t.Fatal(err)
		}
		if fs.Stats().UnitsWritten > 0 {
			break
		}
	}
	if fs.Stats().UnitsWritten == 0 {
		t.Fatal("age-based write-back never triggered")
	}
}

func TestDropCaches(t *testing.T) {
	_, fs := newPair(t, 32<<20, testConfig())
	if err := fs.Create("/f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Write("/f", 0, bytes.Repeat([]byte{1}, 64<<10)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	fs.DropCaches()
	before := fs.Disk().Stats().Reads
	buf := make([]byte, 64<<10)
	if _, err := fs.Read("/f", 0, buf); err != nil {
		t.Fatal(err)
	}
	if fs.Disk().Stats().Reads == before {
		t.Fatal("read after DropCaches hit no disk")
	}
}

func TestAtimeInImapDoesNotMoveInode(t *testing.T) {
	_, fs := newPair(t, 32<<20, testConfig())
	if err := fs.Create("/f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Write("/f", 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	unitsBefore := fs.Stats().UnitsWritten
	// Reads update atime...
	fi1, _ := fs.Stat("/f")
	buf := make([]byte, 1)
	if _, err := fs.Read("/f", 0, buf); err != nil {
		t.Fatal(err)
	}
	fi2, _ := fs.Stat("/f")
	if fi2.Atime < fi1.Atime {
		t.Fatal("atime went backwards")
	}
	// ...but a sync after pure reads writes no inodes (the atime
	// lives in the imap, which is logged only at checkpoints).
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	if fs.Stats().UnitsWritten != unitsBefore {
		t.Fatal("reading a file caused log writes (inode moved on read)")
	}
}

func TestLargeFileRandomWritesStaySequentialOnDisk(t *testing.T) {
	cfg := testConfig()
	_, fs := newPair(t, 64<<20, cfg)
	if err := fs.Create("/big"); err != nil {
		t.Fatal(err)
	}
	// Pre-size the file.
	if err := fs.Write("/big", 8<<20-4096, make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	var events []disk.Event
	fs.Disk().SetTracer(tracerFunc(func(ev disk.Event) { events = append(events, ev) }))
	// Random-offset writes.
	for i := 0; i < 256; i++ {
		off := int64((i*2654435761)%(8<<20-4096)) / 4096 * 4096
		if err := fs.Write("/big", off, bytes.Repeat([]byte{byte(i)}, 4096)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	var writes, seq int
	for _, ev := range events {
		if ev.Kind == disk.OpWrite {
			writes++
			if ev.Sequential {
				seq++
			}
		}
	}
	if writes == 0 {
		t.Fatal("no writes issued")
	}
	// Random file writes become sequential log writes: nearly all
	// transfers continue where the last ended.
	if float64(seq) < 0.5*float64(writes) {
		t.Fatalf("only %d of %d log writes were sequential", seq, writes)
	}
}

// TestFsyncFileSelective: FsyncFile persists one file without flushing
// the rest of the cache, and the file survives a crash via
// roll-forward.
func TestFsyncFileSelective(t *testing.T) {
	cfg := testConfig()
	d, fs := newPair(t, 32<<20, cfg)
	if err := fs.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("/a"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("/b"); err != nil {
		t.Fatal(err)
	}
	wantA := bytes.Repeat([]byte{0xAA}, 20000)
	if err := fs.Write("/a", 0, wantA); err != nil {
		t.Fatal(err)
	}
	if err := fs.Write("/b", 0, bytes.Repeat([]byte{0xBB}, 20000)); err != nil {
		t.Fatal(err)
	}
	unitsBefore := fs.Stats().UnitsWritten
	if err := fs.FsyncFile("/a"); err != nil {
		t.Fatal(err)
	}
	if fs.Stats().UnitsWritten == unitsBefore {
		t.Fatal("FsyncFile wrote nothing")
	}
	// /b's data blocks must still be dirty (not flushed).
	dirtyB := 0
	for _, blk := range fs.CacheDirtyKeys() {
		if blk.Kind == cache.KindFile && blk.Ino != 1 {
			fiB, _ := fs.Stat("/b")
			if blk.Ino == fiB.Ino {
				dirtyB++
			}
		}
	}
	if dirtyB == 0 {
		t.Fatal("FsyncFile flushed unrelated file /b too")
	}
	// Crash: /a's DATA is on disk, but without its directory entry
	// (the root dir block was not flushed) the file may be
	// unreachable — that is UNIX fsync semantics. Sync the dir via
	// full Sync for the recoverability check instead.
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	fs2, err := core.Mount(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(wantA))
	n, err := fs2.Read("/a", 0, got)
	if err != nil || n != len(wantA) || !bytes.Equal(got, wantA) {
		t.Fatalf("fsynced file lost: n=%d err=%v", n, err)
	}
}

// TestCleanOnIdle: with the idle-cleaning extension enabled, dead
// segments are reclaimed during quiet periods without an explicit
// CleanUntil call.
func TestCleanOnIdle(t *testing.T) {
	cfg := testConfig()
	cfg.CleanOnIdle = true
	cfg.CacheBlocks = 256
	cfg.CleanTargetSegments = 1 << 30 // always below target: idle cleaning stays eager
	_, fs := newPair(t, 16<<20, cfg)
	// Create garbage: files filling several segments, then delete.
	for i := 0; i < 400; i++ {
		p := fmt.Sprintf("/f%d", i)
		if err := fs.Create(p); err != nil {
			t.Fatal(err)
		}
		if err := fs.Write(p, 0, bytes.Repeat([]byte{1}, 4096)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		if err := fs.Remove(fmt.Sprintf("/f%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("/marker"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Write("/marker", 0, []byte("idle")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	base := fs.Stats().SegmentsCleaned
	// Quiet period: reads only; the disk goes idle between them.
	buf := make([]byte, 16)
	for i := 0; i < 50 && fs.Stats().SegmentsCleaned == base; i++ {
		if _, err := fs.Read("/marker", 0, buf); err != nil {
			t.Fatal(err)
		}
	}
	if fs.Stats().SegmentsCleaned == base {
		t.Fatal("idle cleaning never ran during the quiet period")
	}
}

// TestConcurrentAccess exercises the FS mutex: goroutines operate on
// disjoint directories concurrently; all operations must succeed and
// the final state must be consistent. Run with -race to validate the
// locking.
func TestConcurrentAccess(t *testing.T) {
	_, fs := newPair(t, 64<<20, testConfig())
	const workers, filesEach = 8, 40
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		//lfslint:allow nogoroutine this test deliberately exercises the external mutex under real concurrency; simulated results are not read until all workers join
		go func() {
			dir := fmt.Sprintf("/w%d", w)
			if err := fs.Mkdir(dir); err != nil {
				errCh <- err
				return
			}
			payload := bytes.Repeat([]byte{byte(w)}, 2048)
			for i := 0; i < filesEach; i++ {
				p := fmt.Sprintf("%s/f%d", dir, i)
				if err := fs.Create(p); err != nil {
					errCh <- err
					return
				}
				if err := fs.Write(p, 0, payload); err != nil {
					errCh <- err
					return
				}
				buf := make([]byte, len(payload))
				if _, err := fs.Read(p, 0, buf); err != nil {
					errCh <- err
					return
				}
				if i%3 == 0 {
					if err := fs.Remove(p); err != nil {
						errCh <- err
						return
					}
				}
			}
			errCh <- nil
		}()
	}
	for w := 0; w < workers; w++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	rep, err := fs.Check()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("problems after concurrent workload: %v", rep.Problems)
	}
	wantFiles := workers * (filesEach - (filesEach+2)/3)
	if rep.Files != wantFiles {
		t.Fatalf("found %d files, want %d", rep.Files, wantFiles)
	}
}

// TestRollForwardAcrossSegments: post-checkpoint writes spanning
// several segments must replay across the segment boundaries.
func TestRollForwardAcrossSegments(t *testing.T) {
	cfg := testConfig()
	cfg.SegmentSize = 256 << 10 // force multiple segments quickly
	cfg.CacheBlocks = 512
	d, fs := newPair(t, 32<<20, cfg)
	if err := fs.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// ~1.5 MB of files after the checkpoint: at least 6 segments of
	// log, synced but never checkpointed.
	payload := bytes.Repeat([]byte{0x7E}, 8192)
	for i := 0; i < 190; i++ {
		p := fmt.Sprintf("/rf%03d", i)
		if err := fs.Create(p); err != nil {
			t.Fatal(err)
		}
		if err := fs.Write(p, 0, payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	sealed := fs.Stats().SegmentsSealed
	if sealed < 3 {
		t.Fatalf("workload sealed only %d segments; test needs several", sealed)
	}
	fs.Crash()
	fs2, err := core.Mount(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fs2.Stats().RollForwardUnits == 0 {
		t.Fatal("no roll-forward happened")
	}
	buf := make([]byte, 8192)
	for i := 0; i < 190; i += 17 {
		p := fmt.Sprintf("/rf%03d", i)
		n, err := fs2.Read(p, 0, buf)
		if err != nil || n != 8192 || !bytes.Equal(buf, payload) {
			t.Fatalf("%s not recovered across segment boundary: n=%d err=%v", p, n, err)
		}
	}
	rep, err := fs2.Check()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("problems after multi-segment roll-forward: %v", rep.Problems)
	}
}

// TestImapSpansMultipleBlocks: enough files that the inode map needs
// several blocks, all of which must survive checkpoint and remount.
func TestImapSpansMultipleBlocks(t *testing.T) {
	cfg := testConfig() // 4096 inodes -> ~25 imap blocks
	d, fs := newPair(t, 64<<20, cfg)
	const files = 800 // spans several imap blocks (170 entries each)
	for i := 0; i < files; i++ {
		if err := fs.Create(fmt.Sprintf("/f%04d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Unmount(); err != nil {
		t.Fatal(err)
	}
	fs2, err := core.Mount(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := fs2.ReadDir("/")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != files {
		t.Fatalf("recovered %d files, want %d", len(entries), files)
	}
	// Every inode must be reachable through the multi-block map.
	for i := 0; i < files; i += 97 {
		if _, err := fs2.Stat(fmt.Sprintf("/f%04d", i)); err != nil {
			t.Fatal(err)
		}
	}
}

// TestLFSDoubleIndirectLifecycle exercises sparse files through the
// double-indirect pointer tree, partial truncation, and release.
func TestLFSDoubleIndirectLifecycle(t *testing.T) {
	_, fs := newPair(t, 64<<20, testConfig())
	if err := fs.Create("/sparse"); err != nil {
		t.Fatal(err)
	}
	bs := int64(4096)
	apb := int64(1024) // addrs per 4K block
	offsets := []int64{
		0,                           // direct
		(12 + 9) * bs,               // single indirect
		(12 + apb + 2) * bs,         // double indirect, outer 0
		(12 + apb + apb + 5) * bs,   // outer 1
		(12 + apb + 3*apb + 9) * bs, // outer 3
	}
	for i, off := range offsets {
		if err := fs.Write("/sparse", off, bytes.Repeat([]byte{byte(i + 1)}, 4096)); err != nil {
			t.Fatalf("write at %d: %v", off, err)
		}
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	fs.DropCaches()
	buf := make([]byte, 4096)
	for i, off := range offsets {
		n, err := fs.Read("/sparse", off, buf)
		if err != nil || n != 4096 || buf[0] != byte(i+1) {
			t.Fatalf("read at %d: n=%d b=%d err=%v", off, n, buf[0], err)
		}
	}
	// Hole in the double-indirect region.
	n, err := fs.Read("/sparse", (12+apb+100)*bs, buf)
	if err != nil || n != 4096 {
		t.Fatalf("hole read: %d %v", n, err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("hole not zero")
		}
	}
	// Partial truncate: keep outer slot 0, drop outer 1 and 3.
	if err := fs.Truncate("/sparse", (12+2*apb)*bs); err != nil {
		t.Fatal(err)
	}
	n, err = fs.Read("/sparse", offsets[2], buf)
	if err != nil || n != 4096 || buf[0] != 3 {
		t.Fatalf("outer-0 lost by truncate: n=%d b=%d err=%v", n, buf[0], err)
	}
	// Truncate below the single-indirect boundary drops everything
	// indirect.
	if err := fs.Truncate("/sparse", 12*4096); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	rep, err := fs.Check()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("problems after double-indirect truncation: %v", rep.Problems)
	}
	if err := fs.Remove("/sparse"); err != nil {
		t.Fatal(err)
	}
}

// TestLFSConfigValidation pins the config validator.
func TestLFSConfigValidation(t *testing.T) {
	base := testConfig()
	cases := []func(*core.Config){
		func(c *core.Config) { c.BlockSize = 1000 },
		func(c *core.Config) { c.SegmentSize = c.BlockSize },
		func(c *core.Config) { c.SegmentSize = 1<<20 + 1 },
		func(c *core.Config) { c.MaxInodes = 2 },
		func(c *core.Config) { c.CacheBlocks = 2 },
		func(c *core.Config) { c.WritebackAge = 0 },
		func(c *core.Config) { c.CheckpointInterval = 0 },
		func(c *core.Config) { c.MinLiveFraction = 0 },
		func(c *core.Config) { c.MinLiveFraction = 1.5 },
		func(c *core.Config) { c.MaxLiveFraction = 0 },
		func(c *core.Config) { c.MaxLiveFraction = 1.0 },
		func(c *core.Config) { c.MIPS = -1 },
	}
	for i, mutate := range cases {
		cfg := base
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if err := base.Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

// TestCleanOncePublic drives the public single-step cleaner.
func TestCleanOncePublic(t *testing.T) {
	cfg := testConfig()
	cfg.CacheBlocks = 128
	_, fs := newPair(t, 16<<20, cfg)
	for i := 0; i < 400; i++ {
		p := fmt.Sprintf("/f%d", i)
		if err := fs.Create(p); err != nil {
			t.Fatal(err)
		}
		if err := fs.Write(p, 0, bytes.Repeat([]byte{1}, 4096)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		if err := fs.Remove(fmt.Sprintf("/f%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	before := fs.CleanSegments()
	res, err := fs.CleanOnce()
	if err != nil {
		t.Fatal(err)
	}
	if res.SegmentsCleaned < 1 || fs.CleanSegments() <= before {
		t.Fatalf("CleanOnce reclaimed nothing: %+v", res)
	}
}
