package core

import (
	"fmt"

	"lfs/internal/disk"
	"lfs/internal/layout"
	"lfs/internal/sim"
)

// CheckReport summarises an LFS consistency check.
type CheckReport struct {
	// Files and Dirs count reachable objects.
	Files, Dirs int
	// DataBlocks counts referenced data blocks on disk (holes and
	// cache-only blocks excluded).
	DataBlocks int64
	// OrphanedInodes counts allocated inode-map entries not
	// reachable from the root (possible after roll-forward past a
	// deletion; harmless leaks the checker can report).
	OrphanedInodes int
	// Problems lists real inconsistencies.
	Problems []string
	// Duration is the simulated time of the check.
	Duration sim.Duration
}

// Ok reports whether no problems were found.
func (r *CheckReport) Ok() bool { return len(r.Problems) == 0 }

// Fsck mounts the volume with the given configuration and runs the
// consistency check — the shared implementation behind cmd/lfsck and
// the crash-point harness. Mounting runs full crash recovery, so a
// roll-forward (and the checkpoint stabilising it) may write to the
// device.
func Fsck(d *disk.Disk, cfg Config) (*CheckReport, error) {
	fs, err := Mount(d, cfg)
	if err != nil {
		return nil, err
	}
	return fs.Check()
}

// Check verifies the consistency of a mounted LFS: every reachable
// file's blocks must be addressable and live in non-clean segments,
// directory structures must parse, the inode map must agree with
// reachability, and every referenced address must fall inside the
// segment area.
func (fs *FS) Check() (*CheckReport, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.checkMounted(); err != nil {
		return nil, err
	}
	start := fs.clock.Now()
	rep := &CheckReport{}
	// refs counts directory entries per inode; regular files may
	// legitimately be reached through several hard links.
	refs := make(map[layout.Ino]int)

	var checkAddr func(ino layout.Ino, what string, a layout.DiskAddr)
	checkAddr = func(ino layout.Ino, what string, a layout.DiskAddr) {
		if a.IsNil() {
			return
		}
		seg := fs.segOf(a)
		if seg < 0 {
			rep.Problems = append(rep.Problems, fmt.Sprintf("inode %d: %s address %v outside the segment area", ino, what, a))
			return
		}
		if fs.usage[seg].State == segClean {
			rep.Problems = append(rep.Problems, fmt.Sprintf("inode %d: %s address %v points into clean segment %d", ino, what, a, seg))
		}
	}

	var walk func(ino layout.Ino, path string) error
	walk = func(ino layout.Ino, path string) error {
		refs[ino]++
		if refs[ino] > 1 {
			// A second reference is fine for files (hard links)
			// and wrong for directories; either way the inode's
			// blocks were already verified.
			in, err := fs.getInode(ino)
			if err == nil && in.Mode.IsDir() {
				rep.Problems = append(rep.Problems, fmt.Sprintf("directory inode %d reached twice (at %s)", ino, path))
			}
			return nil
		}
		e := fs.imap.get(ino)
		if !e.Allocated {
			rep.Problems = append(rep.Problems, fmt.Sprintf("%s: inode %d referenced but free in the inode map", path, ino))
			return nil
		}
		in, err := fs.getInode(ino)
		if err != nil {
			rep.Problems = append(rep.Problems, fmt.Sprintf("%s: reading inode %d: %v", path, ino, err))
			return nil
		}
		// Verify every block pointer.
		blocks := layout.BlocksForSize(in.Size, fs.cfg.BlockSize)
		for lbn := int64(0); lbn < blocks; lbn++ {
			a, err := fs.blockAddrOf(in, lbn)
			if err != nil {
				rep.Problems = append(rep.Problems, fmt.Sprintf("%s: mapping block %d: %v", path, lbn, err))
				continue
			}
			if !a.IsNil() {
				rep.DataBlocks++
				checkAddr(ino, fmt.Sprintf("block %d", lbn), a)
			}
		}
		checkAddr(ino, "indirect", in.Indirect)
		checkAddr(ino, "double indirect", in.DoubleIndirect)
		checkAddr(ino, "inode", e.Addr)

		if !in.Mode.IsDir() {
			rep.Files++
			return nil
		}
		rep.Dirs++
		entries, err := fs.dirEntries(in)
		if err != nil {
			rep.Problems = append(rep.Problems, fmt.Sprintf("%s: listing: %v", path, err))
			return nil
		}
		seen := map[string]bool{}
		for _, ent := range entries {
			if seen[ent.Name] {
				rep.Problems = append(rep.Problems, fmt.Sprintf("%s: duplicate entry %q", path, ent.Name))
				continue
			}
			seen[ent.Name] = true
			child := path + "/" + ent.Name
			if path == "/" {
				child = "/" + ent.Name
			}
			if err := walk(ent.Ino, child); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(layout.RootIno, "/"); err != nil {
		return nil, err
	}

	// Inode map cross-check, including link counts.
	for ino := layout.RootIno; ino <= fs.imap.maxIno(); ino++ {
		e := fs.imap.get(ino)
		if e.Allocated && refs[ino] == 0 {
			rep.OrphanedInodes++
		}
		if e.Allocated && e.Addr.IsNil() && !fs.dirtyInodes[ino] {
			rep.Problems = append(rep.Problems, fmt.Sprintf("inode %d allocated with no disk address and not dirty", ino))
		}
		if n := refs[ino]; n > 0 && ino != layout.RootIno {
			in, err := fs.getInode(ino)
			if err == nil && !in.Mode.IsDir() && int(in.Nlink) != n {
				rep.Problems = append(rep.Problems, fmt.Sprintf("inode %d has nlink %d but %d directory entries", ino, in.Nlink, n))
			}
		}
	}

	// Imap block addresses must live in non-clean segments.
	for idx, a := range fs.imap.blockAddrs {
		if a.IsNil() {
			continue
		}
		seg := fs.segOf(a)
		if seg < 0 {
			rep.Problems = append(rep.Problems, fmt.Sprintf("imap block %d address %v outside the segment area", idx, a))
		} else if fs.usage[seg].State == segClean {
			rep.Problems = append(rep.Problems, fmt.Sprintf("imap block %d address %v in clean segment %d", idx, a, seg))
		}
	}

	rep.Duration = fs.clock.Now().Sub(start)
	return rep, nil
}
