package core

import (
	"testing"

	"lfs/internal/layout"
	"lfs/internal/sim"
)

// The on-disk decoders parse raw bytes from (possibly corrupted or
// torn) disk images; none of them may panic or over-read, whatever
// the input. Each fuzz target seeds with a valid encoding plus
// mutations; without -fuzz these run as ordinary regression tests
// over the seed corpus.

func FuzzDecodeSummary(f *testing.F) {
	refs := []blockRef{
		{Kind: kindData, Ino: 7, ID: 3, Version: 1},
		{Kind: kindInodes},
	}
	h := summaryHeader{Serial: 5, NBlocks: 2, SumBlocks: 1, Timestamp: sim.Time(9)}
	valid := make([]byte, 4096)
	encodeSummary(h, refs, valid)
	f.Add(valid)
	f.Add(make([]byte, 4096))
	f.Add([]byte{0x4D, 0x55, 0x53, 0x4C})
	truncated := make([]byte, 70)
	copy(truncated, valid)
	f.Add(truncated)
	f.Fuzz(func(t *testing.T, data []byte) {
		h, refs, err := decodeSummary(data)
		if err == nil {
			if h.NBlocks != len(refs) {
				t.Fatalf("accepted summary with %d blocks but %d refs", h.NBlocks, len(refs))
			}
		}
	})
}

func FuzzDecodeCheckpoint(f *testing.F) {
	st := checkpointState{
		Serial: 3, Timestamp: 11, HeadSeg: 1, HeadBlk: 2, WriteSerial: 9,
		ImapAddrs: []layout.DiskAddr{1, 2},
		Usage:     []segUsage{{Live: 5}, {State: segDirty}},
	}
	valid := make([]byte, 1024)
	encodeCheckpoint(st, valid)
	f.Add(valid)
	f.Add(make([]byte, 1024))
	f.Add(valid[:ckptHeaderSize-1]) // truncated mid-header
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := decodeCheckpoint(data)
		if err == nil {
			// Accepted checkpoints must have internally consistent
			// lengths. The entry size depends on the format version
			// (a v1 image packs 24-byte entries), so bound with the
			// smaller size — valid for either format.
			need := ckptHeaderSize + len(st.ImapAddrs)*layout.AddrSize + len(st.Usage)*segUsageEntrySizeV1 + 4
			if need > len(data) {
				t.Fatalf("accepted checkpoint larger than its buffer")
			}
		}
	})
}

func FuzzDecodeSuperblockLFS(f *testing.F) {
	sb := superblock{BlockSize: 4096, SegmentSize: 1 << 20, MaxInodes: 1024, Segments: 8, CkptBytes: 1024, Ckpt0Sector: 8, Ckpt1Sector: 10, SegStart: 16}
	valid := make([]byte, 4096)
	sb.encode(valid)
	f.Add(valid)
	f.Add(make([]byte, 4096))
	f.Add(valid[:63]) // truncated mid-header
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = decodeSuperblock(data)
	})
}

func FuzzDecodeImapEntry(f *testing.F) {
	e := imapEntry{Addr: 99, Slot: 2, Allocated: true, Version: 7, Atime: 123}
	buf := make([]byte, imapEntrySize)
	e.encode(buf)
	f.Add(buf)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < imapEntrySize {
			return
		}
		_ = decodeImapEntry(data)
	})
}
