package core

import (
	"fmt"
	"sort"

	"lfs/internal/cache"
	"lfs/internal/disk"
	"lfs/internal/layout"
	"lfs/internal/sim"
	"lfs/internal/vfs"
)

// logHead is one append position in the log: the active segment, the
// next free block, the start of the assembled-but-unissued region of
// buf, and whether the head currently owns a segment at all. The hot
// head is always open; the cold head opens on the first cleaner
// relocation and closes if the log cannot spare it a segment.
type logHead struct {
	seg     int
	blk     int
	pending int
	buf     []byte
	open    bool
}

// flushScope controls what a segment write includes.
type flushScope int

const (
	// flushAll writes all dirty data, indirect blocks, and inodes —
	// the normal segment write (§4.1, §4.3.5).
	flushAll flushScope = iota
	// flushCheckpoint additionally writes dirty inode map blocks,
	// as the first half of a checkpoint (§4.4.1).
	flushCheckpoint
)

// flush is the segment writer: it gathers every dirty block from the
// cache, packs the blocks into log units (partial segments) with
// summary blocks, writes them with large asynchronous sequential
// transfers, and redirects all metadata pointers to the new locations.
//
// Batches are ordered bottom-up so every pointer update lands in a
// structure written later in the same flush: data blocks first (their
// new addresses dirty indirect blocks and inodes), then double-
// indirect inner blocks, the outer blocks, single indirect blocks,
// then inodes packed into inode blocks (updating the inode map), and
// finally — during checkpoints — the dirty inode map blocks
// themselves.
func (fs *FS) flush(scope flushScope) error {
	// Activate the cleaner below the clean-segment watermark
	// (§4.3.4) before starting to consume segments.
	if !fs.cleaning && fs.cleanCount <= fs.cfg.cleanThreshold(int(fs.sb.Segments)) {
		if err := fs.cleanSegments(); err != nil {
			return err
		}
	}

	// Batch 1: file and directory data blocks.
	var dataBlocks []*cache.Block
	for _, b := range fs.bc.DirtyBlocks() {
		if b.Key.Kind == cache.KindFile {
			dataBlocks = append(dataBlocks, b)
		}
	}
	if err := fs.writeDataBatch(dataBlocks); err != nil {
		return err
	}

	// Batches 2-4: indirect blocks, innermost first.
	for _, pass := range []func(int64) bool{
		func(id int64) bool { return id >= indDoubleInnerBase },
		func(id int64) bool { return id == indDoubleOuter },
		func(id int64) bool { return id == indSingle },
	} {
		var batch []*cache.Block
		for _, b := range fs.bc.DirtyBlocks() {
			if b.Key.Kind == cache.KindIndirect && pass(b.Key.Off) {
				batch = append(batch, b)
			}
		}
		if err := fs.writeIndirectBatch(batch); err != nil {
			return err
		}
	}

	// Batch 5: inodes, packed into inode blocks.
	if err := fs.writeInodeBatch(); err != nil {
		return err
	}

	// Batch 6: inode map blocks (checkpoints only; between
	// checkpoints the summaries carry enough to roll forward).
	if scope == flushCheckpoint {
		if err := fs.writeImapBatch(); err != nil {
			return err
		}
	}
	return fs.flushPendingIO()
}

// splitColdBlocks partitions a dirty batch into fresh blocks and
// cleaner-revived relocations. Outside a cleaner pass (or when the
// pass revived nothing) the batch passes through untouched.
func (fs *FS) splitColdBlocks(blocks []*cache.Block) (hot, cold []*cache.Block) {
	if len(fs.coldAges) == 0 {
		return blocks, nil
	}
	for _, b := range blocks {
		if _, ok := fs.coldAges[b.Key]; ok {
			cold = append(cold, b)
		} else {
			hot = append(hot, b)
		}
	}
	return hot, cold
}

// blockAges returns the data age credited for each block of a batch:
// relocations carry their victim segment's age so cold data stays old
// across copies (§3.6), fresh writes are as young as now. One batch
// can mix ages — the cleaner relocates several victims per pass.
func (fs *FS) blockAges(blocks []*cache.Block, class writeClass) []sim.Time {
	now := fs.clock.Now()
	ages := make([]sim.Time, len(blocks))
	for i, b := range blocks {
		ages[i] = now
		if class == classCold {
			if a, ok := fs.coldAges[b.Key]; ok && a > 0 {
				ages[i] = a
			}
		}
	}
	return ages
}

// writeDataBatch logs the given dirty data blocks and redirects their
// block pointers. During a cleaner pass the batch splits: blocks
// revived from the victim go to the cold stream carrying the victim's
// data age, everything else to the hot stream.
func (fs *FS) writeDataBatch(blocks []*cache.Block) error {
	hot, cold := fs.splitColdBlocks(blocks)
	if err := fs.writeDataClass(cold, classCold); err != nil {
		return err
	}
	return fs.writeDataClass(hot, classHot)
}

// writeDataClass logs one class's data blocks.
func (fs *FS) writeDataClass(blocks []*cache.Block, class writeClass) error {
	if len(blocks) == 0 {
		return nil
	}
	refs := make([]blockRef, len(blocks))
	payload := make([][]byte, len(blocks))
	for i, b := range blocks {
		refs[i] = blockRef{
			Kind:    kindData,
			Ino:     b.Key.Ino,
			ID:      b.Key.Off,
			Version: fs.imap.get(b.Key.Ino).Version,
		}
		payload[i] = b.Data
	}
	ages := fs.blockAges(blocks, class)
	addrs, err := fs.placeBlocks(class, refs, payload, ages)
	if err != nil {
		return err
	}
	bs := int64(fs.cfg.BlockSize)
	for i, b := range blocks {
		in, err := fs.getInode(b.Key.Ino)
		if err != nil {
			return fmt.Errorf("lfs: flushing data of inode %d: %w", b.Key.Ino, err)
		}
		old, err := fs.setBlockAddr(in, b.Key.Off, addrs[i])
		if err != nil {
			return err
		}
		fs.killBlock(old, bs)
		fs.creditSegmentAged(fs.segOf(addrs[i]), bs, ages[i])
		fs.bc.MarkClean(b)
	}
	return nil
}

// writeIndirectBatch logs dirty indirect blocks and redirects their
// parent pointers, with the same hot/cold split as data blocks.
func (fs *FS) writeIndirectBatch(blocks []*cache.Block) error {
	hot, cold := fs.splitColdBlocks(blocks)
	if err := fs.writeIndirectClass(cold, classCold); err != nil {
		return err
	}
	return fs.writeIndirectClass(hot, classHot)
}

// writeIndirectClass logs one class's indirect blocks.
func (fs *FS) writeIndirectClass(blocks []*cache.Block, class writeClass) error {
	if len(blocks) == 0 {
		return nil
	}
	refs := make([]blockRef, len(blocks))
	payload := make([][]byte, len(blocks))
	for i, b := range blocks {
		refs[i] = blockRef{
			Kind:    kindIndirect,
			Ino:     b.Key.Ino,
			ID:      b.Key.Off,
			Version: fs.imap.get(b.Key.Ino).Version,
		}
		payload[i] = b.Data
	}
	ages := fs.blockAges(blocks, class)
	addrs, err := fs.placeBlocks(class, refs, payload, ages)
	if err != nil {
		return err
	}
	bs := int64(fs.cfg.BlockSize)
	for i, b := range blocks {
		in, err := fs.getInode(b.Key.Ino)
		if err != nil {
			return fmt.Errorf("lfs: flushing indirect block of inode %d: %w", b.Key.Ino, err)
		}
		old, err := fs.setIndirectAddr(in, b.Key.Off, addrs[i])
		if err != nil {
			return err
		}
		fs.killBlock(old, bs)
		fs.creditSegmentAged(fs.segOf(addrs[i]), bs, ages[i])
		fs.bc.MarkClean(b)
	}
	return nil
}

// writeInodeBatch packs every dirty inode into inode blocks, logs
// them, and updates the inode map.
func (fs *FS) writeInodeBatch() error {
	inos := make([]layout.Ino, 0, len(fs.dirtyInodes))
	for ino := range fs.dirtyInodes {
		inos = append(inos, ino)
	}
	return fs.writeInodeBatchFor(inos)
}

// writeInodeBatchFor logs the given dirty inodes.
func (fs *FS) writeInodeBatchFor(inos []layout.Ino) error {
	if len(inos) == 0 {
		return nil
	}
	sort.Slice(inos, func(i, j int) bool { return inos[i] < inos[j] })

	per := fs.inodesPerBlock()
	var refs []blockRef
	var payload [][]byte
	var blockInos [][]layout.Ino
	for start := 0; start < len(inos); start += per {
		end := start + per
		if end > len(inos) {
			end = len(inos)
		}
		buf := make([]byte, fs.cfg.BlockSize)
		group := inos[start:end]
		for i, ino := range group {
			in := fs.inodes[ino]
			if in == nil {
				return fmt.Errorf("lfs: dirty inode %d missing from the in-core table", ino)
			}
			in.Encode(buf[i*layout.InodeSize:])
		}
		refs = append(refs, blockRef{Kind: kindInodes})
		payload = append(payload, buf)
		blockInos = append(blockInos, group)
	}
	// Inode blocks always go hot: they aggregate records of many
	// files and are rewritten whenever any of them changes.
	addrs, err := fs.placeBlocks(classHot, refs, payload, nil)
	if err != nil {
		return err
	}
	for bi, group := range blockInos {
		base := addrs[bi]
		for i, ino := range group {
			e := fs.imap.get(ino)
			fs.killBlock(e.Addr, layout.InodeSize)
			e.Addr = base + layout.DiskAddr(i/inodesPerSector)
			e.Slot = uint8(i % inodesPerSector)
			fs.imap.markDirty(ino)
			fs.creditSegment(fs.segOf(base), layout.InodeSize)
			delete(fs.dirtyInodes, ino)
		}
	}
	return nil
}

// writeImapBatch logs every dirty inode map block and records the new
// addresses for the next checkpoint region write.
func (fs *FS) writeImapBatch() error {
	var refs []blockRef
	var payload [][]byte
	var idxs []int
	for idx, dirty := range fs.imap.dirtyBlock {
		if !dirty {
			continue
		}
		buf := make([]byte, fs.cfg.BlockSize)
		fs.imap.encodeBlock(idx, buf)
		refs = append(refs, blockRef{Kind: kindImap, ID: int64(idx)})
		payload = append(payload, buf)
		idxs = append(idxs, idx)
	}
	if len(refs) == 0 {
		return nil
	}
	addrs, err := fs.placeBlocks(classHot, refs, payload, nil)
	if err != nil {
		return err
	}
	bs := int64(fs.cfg.BlockSize)
	for i, idx := range idxs {
		fs.killBlock(fs.imap.blockAddrs[idx], bs)
		fs.imap.blockAddrs[idx] = addrs[i]
		fs.creditSegment(fs.segOf(addrs[i]), bs)
		fs.imap.dirtyBlock[idx] = false
	}
	return nil
}

// placeBlocks appends the given blocks to the log as one or more
// units, assembling them in the class's segment buffer, and returns
// the disk address assigned to each block. Consecutive units in one
// segment are contiguous, so the eventual disk transfers are
// sequential. Cold placements fall back to the hot head when
// segregation is off or the log cannot spare the cold stream a
// segment; the unit's summary then records the head it actually
// landed in, while its Age still carries the relocated data's age.
// ages carries the per-block data age (nil means everything is as
// young as now); each unit's summary records the youngest age it
// contains, matching the segment-age semantics of §3.6.
func (fs *FS) placeBlocks(class writeClass, refs []blockRef, payload [][]byte, ages []sim.Time) ([]layout.DiskAddr, error) {
	now := fs.clock.Now()
	if class == classCold && !fs.cfg.Segregation {
		class = classHot
	}
	if class == classCold && !fs.heads[classCold].open && !fs.openColdHead() {
		class = classHot
	}
	bs := fs.cfg.BlockSize
	addrs := make([]layout.DiskAddr, 0, len(payload))
	i := 0
	for i < len(payload) {
		h := &fs.heads[class]
		avail := fs.cfg.blocksPerSegment() - h.blk
		fit := maxUnitBlocks(avail, bs)
		if fit == 0 {
			if err := fs.advanceSegment(class); err != nil {
				if class == classCold {
					// No segment to spare for the cold stream (its
					// full segment is already sealed): close it and
					// share the hot head until space frees up.
					fs.heads[classCold].open = false
					class = classHot
					continue
				}
				return nil, err
			}
			continue
		}
		n := fit
		if rest := len(payload) - i; n > rest {
			n = rest
		}
		sumBlks := summaryBlocks(n, bs)
		dataStart := h.blk + sumBlks
		for j := 0; j < n; j++ {
			blk := payload[i+j]
			if len(blk) != bs {
				return nil, fmt.Errorf("lfs: placing block of %d bytes, want %d", len(blk), bs)
			}
			copy(h.buf[(dataStart+j)*bs:], blk)
			addrs = append(addrs, layout.DiskAddr(fs.blockSector(h.seg, dataStart+j)))
		}
		unitAge := now
		if ages != nil {
			unitAge = ages[i]
			for j := i + 1; j < i+n; j++ {
				if ages[j] > unitAge {
					unitAge = ages[j]
				}
			}
		}
		hdr := summaryHeader{
			Serial:    fs.writeSerial,
			NBlocks:   n,
			SumBlocks: sumBlks,
			Timestamp: fs.clock.Now(),
			DataCRC:   layout.DataChecksum(h.buf[dataStart*bs : (dataStart+n)*bs]),
			Class:     class,
			Age:       unitAge,
		}
		encodeSummary(hdr, refs[i:i+n], h.buf[h.blk*bs:dataStart*bs])
		fs.writeSerial++
		h.blk = dataStart + n
		fs.usage[h.seg].LastWrite = fs.clock.Now()
		fs.stats.UnitsWritten++
		fs.stats.BlocksWritten += int64(sumBlks + n)
		fs.cpu.Charge(fs.cfg.Costs.SegWriteSetup + int64(n)*fs.cfg.Costs.SegBlockLayout)
		i += n
	}
	return addrs, nil
}

// flushPendingIO issues the assembled-but-unwritten region of each
// open head as one asynchronous sequential write, hot before cold.
// The issue order is what crash recovery sees: replay stops at the
// first missing serial, so a unit that persisted ahead of a lost
// earlier-serial unit is simply discarded with everything after it —
// none of it was acknowledged before a sync drained the queue.
func (fs *FS) flushPendingIO() error {
	bs := fs.cfg.BlockSize
	for class := writeClass(0); class < numClasses; class++ {
		h := &fs.heads[class]
		if !h.open || h.blk == h.pending {
			continue
		}
		fs.cpu.Charge(fs.cfg.Costs.DiskOpSetup)
		// Attribution: the cold head only ever carries cleaner
		// relocations; the hot head carries log appends except when
		// the cleaner's flush rides it (fs.cleaning), matching the
		// paper's write-cost accounting.
		cause := disk.CauseLogAppend
		if fs.cleaning || class == classCold {
			cause = disk.CauseCleanerWrite
		}
		if err := fs.d.WriteSectors(fs.blockSector(h.seg, h.pending),
			h.buf[h.pending*bs:h.blk*bs], false, cause, "segment write"); err != nil {
			return err
		}
		h.pending = h.blk
	}
	return nil
}

// advanceSegment seals the class's active segment and activates the
// next clean one.
func (fs *FS) advanceSegment(class writeClass) error {
	if err := fs.flushPendingIO(); err != nil {
		return err
	}
	h := &fs.heads[class]
	fs.usage[h.seg].State = segDirty
	fs.stats.SegmentsSealed++
	next, ok := fs.findCleanSegmentFrom(h.seg)
	if !ok {
		return fmt.Errorf("%w: no clean segments", vfs.ErrNoSpace)
	}
	fs.activateHead(class, next)
	return nil
}

// openColdHead claims a clean segment for the cold stream, scanning
// from the hot head so the two streams stay near each other on disk.
// Returns false when the log cannot spare one — taking the last clean
// segment would starve the hot head — and the relocation shares the
// hot head instead.
func (fs *FS) openColdHead() bool {
	if fs.cleanCount <= 1 {
		return false
	}
	next, ok := fs.findCleanSegmentFrom(fs.heads[classHot].seg)
	if !ok {
		return false
	}
	fs.activateHead(classCold, next)
	return true
}

// activateHead points the class's head at seg and readies it for
// appends. The segment's age resets: it holds no data yet, so its
// first credit establishes the true age.
func (fs *FS) activateHead(class writeClass, seg int) {
	h := &fs.heads[class]
	h.seg, h.blk, h.pending, h.open = seg, 0, 0, true
	fs.usage[seg].State = segActive
	fs.usage[seg].Age = 0
	fs.cleanCount--
}

// findCleanSegmentFrom scans forward (wrapping) from the given
// segment for a clean one, keeping each stream roughly sequential on
// disk.
func (fs *FS) findCleanSegmentFrom(start int) (int, bool) {
	n := int(fs.sb.Segments)
	for i := 1; i <= n; i++ {
		seg := (start + i) % n
		if fs.usage[seg].State == segClean {
			return seg, true
		}
	}
	return 0, false
}
