package core

import (
	"fmt"
	"sort"

	"lfs/internal/cache"
	"lfs/internal/disk"
	"lfs/internal/layout"
	"lfs/internal/vfs"
)

// flushScope controls what a segment write includes.
type flushScope int

const (
	// flushAll writes all dirty data, indirect blocks, and inodes —
	// the normal segment write (§4.1, §4.3.5).
	flushAll flushScope = iota
	// flushCheckpoint additionally writes dirty inode map blocks,
	// as the first half of a checkpoint (§4.4.1).
	flushCheckpoint
)

// flush is the segment writer: it gathers every dirty block from the
// cache, packs the blocks into log units (partial segments) with
// summary blocks, writes them with large asynchronous sequential
// transfers, and redirects all metadata pointers to the new locations.
//
// Batches are ordered bottom-up so every pointer update lands in a
// structure written later in the same flush: data blocks first (their
// new addresses dirty indirect blocks and inodes), then double-
// indirect inner blocks, the outer blocks, single indirect blocks,
// then inodes packed into inode blocks (updating the inode map), and
// finally — during checkpoints — the dirty inode map blocks
// themselves.
func (fs *FS) flush(scope flushScope) error {
	// Activate the cleaner below the clean-segment watermark
	// (§4.3.4) before starting to consume segments.
	if !fs.cleaning && fs.cleanCount <= fs.cfg.cleanThreshold(int(fs.sb.Segments)) {
		if err := fs.cleanSegments(); err != nil {
			return err
		}
	}

	// Batch 1: file and directory data blocks.
	var dataBlocks []*cache.Block
	for _, b := range fs.bc.DirtyBlocks() {
		if b.Key.Kind == cache.KindFile {
			dataBlocks = append(dataBlocks, b)
		}
	}
	if err := fs.writeDataBatch(dataBlocks); err != nil {
		return err
	}

	// Batches 2-4: indirect blocks, innermost first.
	for _, pass := range []func(int64) bool{
		func(id int64) bool { return id >= indDoubleInnerBase },
		func(id int64) bool { return id == indDoubleOuter },
		func(id int64) bool { return id == indSingle },
	} {
		var batch []*cache.Block
		for _, b := range fs.bc.DirtyBlocks() {
			if b.Key.Kind == cache.KindIndirect && pass(b.Key.Off) {
				batch = append(batch, b)
			}
		}
		if err := fs.writeIndirectBatch(batch); err != nil {
			return err
		}
	}

	// Batch 5: inodes, packed into inode blocks.
	if err := fs.writeInodeBatch(); err != nil {
		return err
	}

	// Batch 6: inode map blocks (checkpoints only; between
	// checkpoints the summaries carry enough to roll forward).
	if scope == flushCheckpoint {
		if err := fs.writeImapBatch(); err != nil {
			return err
		}
	}
	return fs.flushPendingIO()
}

// writeDataBatch logs the given dirty data blocks and redirects their
// block pointers.
func (fs *FS) writeDataBatch(blocks []*cache.Block) error {
	if len(blocks) == 0 {
		return nil
	}
	refs := make([]blockRef, len(blocks))
	payload := make([][]byte, len(blocks))
	for i, b := range blocks {
		refs[i] = blockRef{
			Kind:    kindData,
			Ino:     b.Key.Ino,
			ID:      b.Key.Off,
			Version: fs.imap.get(b.Key.Ino).Version,
		}
		payload[i] = b.Data
	}
	addrs, err := fs.placeBlocks(refs, payload)
	if err != nil {
		return err
	}
	bs := int64(fs.cfg.BlockSize)
	for i, b := range blocks {
		in, err := fs.getInode(b.Key.Ino)
		if err != nil {
			return fmt.Errorf("lfs: flushing data of inode %d: %w", b.Key.Ino, err)
		}
		old, err := fs.setBlockAddr(in, b.Key.Off, addrs[i])
		if err != nil {
			return err
		}
		fs.killBlock(old, bs)
		fs.creditSegment(fs.segOf(addrs[i]), bs)
		fs.bc.MarkClean(b)
	}
	return nil
}

// writeIndirectBatch logs dirty indirect blocks and redirects their
// parent pointers.
func (fs *FS) writeIndirectBatch(blocks []*cache.Block) error {
	if len(blocks) == 0 {
		return nil
	}
	refs := make([]blockRef, len(blocks))
	payload := make([][]byte, len(blocks))
	for i, b := range blocks {
		refs[i] = blockRef{
			Kind:    kindIndirect,
			Ino:     b.Key.Ino,
			ID:      b.Key.Off,
			Version: fs.imap.get(b.Key.Ino).Version,
		}
		payload[i] = b.Data
	}
	addrs, err := fs.placeBlocks(refs, payload)
	if err != nil {
		return err
	}
	bs := int64(fs.cfg.BlockSize)
	for i, b := range blocks {
		in, err := fs.getInode(b.Key.Ino)
		if err != nil {
			return fmt.Errorf("lfs: flushing indirect block of inode %d: %w", b.Key.Ino, err)
		}
		old, err := fs.setIndirectAddr(in, b.Key.Off, addrs[i])
		if err != nil {
			return err
		}
		fs.killBlock(old, bs)
		fs.creditSegment(fs.segOf(addrs[i]), bs)
		fs.bc.MarkClean(b)
	}
	return nil
}

// writeInodeBatch packs every dirty inode into inode blocks, logs
// them, and updates the inode map.
func (fs *FS) writeInodeBatch() error {
	inos := make([]layout.Ino, 0, len(fs.dirtyInodes))
	for ino := range fs.dirtyInodes {
		inos = append(inos, ino)
	}
	return fs.writeInodeBatchFor(inos)
}

// writeInodeBatchFor logs the given dirty inodes.
func (fs *FS) writeInodeBatchFor(inos []layout.Ino) error {
	if len(inos) == 0 {
		return nil
	}
	sort.Slice(inos, func(i, j int) bool { return inos[i] < inos[j] })

	per := fs.inodesPerBlock()
	var refs []blockRef
	var payload [][]byte
	var blockInos [][]layout.Ino
	for start := 0; start < len(inos); start += per {
		end := start + per
		if end > len(inos) {
			end = len(inos)
		}
		buf := make([]byte, fs.cfg.BlockSize)
		group := inos[start:end]
		for i, ino := range group {
			in := fs.inodes[ino]
			if in == nil {
				return fmt.Errorf("lfs: dirty inode %d missing from the in-core table", ino)
			}
			in.Encode(buf[i*layout.InodeSize:])
		}
		refs = append(refs, blockRef{Kind: kindInodes})
		payload = append(payload, buf)
		blockInos = append(blockInos, group)
	}
	addrs, err := fs.placeBlocks(refs, payload)
	if err != nil {
		return err
	}
	for bi, group := range blockInos {
		base := addrs[bi]
		for i, ino := range group {
			e := fs.imap.get(ino)
			fs.killBlock(e.Addr, layout.InodeSize)
			e.Addr = base + layout.DiskAddr(i/inodesPerSector)
			e.Slot = uint8(i % inodesPerSector)
			fs.imap.markDirty(ino)
			fs.creditSegment(fs.segOf(base), layout.InodeSize)
			delete(fs.dirtyInodes, ino)
		}
	}
	return nil
}

// writeImapBatch logs every dirty inode map block and records the new
// addresses for the next checkpoint region write.
func (fs *FS) writeImapBatch() error {
	var refs []blockRef
	var payload [][]byte
	var idxs []int
	for idx, dirty := range fs.imap.dirtyBlock {
		if !dirty {
			continue
		}
		buf := make([]byte, fs.cfg.BlockSize)
		fs.imap.encodeBlock(idx, buf)
		refs = append(refs, blockRef{Kind: kindImap, ID: int64(idx)})
		payload = append(payload, buf)
		idxs = append(idxs, idx)
	}
	if len(refs) == 0 {
		return nil
	}
	addrs, err := fs.placeBlocks(refs, payload)
	if err != nil {
		return err
	}
	bs := int64(fs.cfg.BlockSize)
	for i, idx := range idxs {
		fs.killBlock(fs.imap.blockAddrs[idx], bs)
		fs.imap.blockAddrs[idx] = addrs[i]
		fs.creditSegment(fs.segOf(addrs[i]), bs)
		fs.imap.dirtyBlock[idx] = false
	}
	return nil
}

// placeBlocks appends the given blocks to the log as one or more
// units, assembling them in the segment buffer, and returns the disk
// address assigned to each block. Consecutive units in one segment
// are contiguous, so the eventual disk transfers are sequential.
func (fs *FS) placeBlocks(refs []blockRef, payload [][]byte) ([]layout.DiskAddr, error) {
	bs := fs.cfg.BlockSize
	addrs := make([]layout.DiskAddr, 0, len(payload))
	i := 0
	for i < len(payload) {
		avail := fs.cfg.blocksPerSegment() - fs.curBlk
		fit := maxUnitBlocks(avail, bs)
		if fit == 0 {
			if err := fs.advanceSegment(); err != nil {
				return nil, err
			}
			continue
		}
		n := fit
		if rest := len(payload) - i; n > rest {
			n = rest
		}
		sumBlks := summaryBlocks(n, bs)
		dataStart := fs.curBlk + sumBlks
		for j := 0; j < n; j++ {
			blk := payload[i+j]
			if len(blk) != bs {
				return nil, fmt.Errorf("lfs: placing block of %d bytes, want %d", len(blk), bs)
			}
			copy(fs.segBuf[(dataStart+j)*bs:], blk)
			addrs = append(addrs, layout.DiskAddr(fs.blockSector(fs.curSeg, dataStart+j)))
		}
		h := summaryHeader{
			Serial:    fs.writeSerial,
			NBlocks:   n,
			SumBlocks: sumBlks,
			Timestamp: fs.clock.Now(),
			DataCRC:   layout.Checksum(fs.segBuf[dataStart*bs : (dataStart+n)*bs]),
		}
		encodeSummary(h, refs[i:i+n], fs.segBuf[fs.curBlk*bs:dataStart*bs])
		fs.writeSerial++
		fs.curBlk = dataStart + n
		fs.usage[fs.curSeg].LastWrite = fs.clock.Now()
		fs.stats.UnitsWritten++
		fs.stats.BlocksWritten += int64(sumBlks + n)
		fs.cpu.Charge(fs.cfg.Costs.SegWriteSetup + int64(n)*fs.cfg.Costs.SegBlockLayout)
		i += n
	}
	return addrs, nil
}

// flushPendingIO issues the assembled-but-unwritten region of the
// active segment as one asynchronous sequential write.
func (fs *FS) flushPendingIO() error {
	if fs.curBlk == fs.pendingBlk {
		return nil
	}
	bs := fs.cfg.BlockSize
	start := fs.pendingBlk
	fs.cpu.Charge(fs.cfg.Costs.DiskOpSetup)
	// Attribution: the same code path writes new data (log append) and
	// relocates live blocks for the cleaner; fs.cleaning tells the two
	// apart so the busy-time decomposition matches the paper's
	// write-cost accounting.
	cause := disk.CauseLogAppend
	if fs.cleaning {
		cause = disk.CauseCleanerWrite
	}
	if err := fs.d.WriteSectors(fs.blockSector(fs.curSeg, start),
		fs.segBuf[start*bs:fs.curBlk*bs], false, cause, "segment write"); err != nil {
		return err
	}
	fs.pendingBlk = fs.curBlk
	return nil
}

// advanceSegment seals the active segment and activates the next
// clean one.
func (fs *FS) advanceSegment() error {
	if err := fs.flushPendingIO(); err != nil {
		return err
	}
	fs.usage[fs.curSeg].State = segDirty
	fs.stats.SegmentsSealed++
	next, ok := fs.findCleanSegment()
	if !ok {
		return fmt.Errorf("%w: no clean segments", vfs.ErrNoSpace)
	}
	fs.curSeg = next
	fs.curBlk = 0
	fs.pendingBlk = 0
	fs.usage[next].State = segActive
	fs.cleanCount--
	return nil
}

// findCleanSegment scans forward (wrapping) from the active segment
// for a clean one, keeping the log roughly sequential on disk.
func (fs *FS) findCleanSegment() (int, bool) {
	n := int(fs.sb.Segments)
	for i := 1; i <= n; i++ {
		seg := (fs.curSeg + i) % n
		if fs.usage[seg].State == segClean {
			return seg, true
		}
	}
	return 0, false
}
