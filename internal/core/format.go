package core

import (
	"encoding/binary"
	"fmt"

	"lfs/internal/disk"
	"lfs/internal/layout"
)

// lfsMagic identifies an LFS superblock.
const lfsMagic = 0x4C465331 // "LFS1"

// imapEntrySize is the on-disk size of one inode map entry: disk
// address (4), slot-in-sector (1), flags (1), padding (2), version
// (4), access time (8), and 4 spare bytes.
const imapEntrySize = 24

// superblock is the static description of an LFS volume, stored at
// sector 0 and never rewritten after Format.
type superblock struct {
	BlockSize   uint32
	SegmentSize uint32
	MaxInodes   uint32
	Segments    uint32
	CkptBytes   uint32 // size of each checkpoint region
	Ckpt0Sector uint32
	Ckpt1Sector uint32
	SegStart    uint32 // first sector of segment 0
}

func (sb *superblock) encode(p []byte) {
	for i := range p {
		p[i] = 0
	}
	le := binary.LittleEndian
	le.PutUint32(p[0:], lfsMagic)
	le.PutUint32(p[4:], sb.BlockSize)
	le.PutUint32(p[8:], sb.SegmentSize)
	le.PutUint32(p[12:], sb.MaxInodes)
	le.PutUint32(p[16:], sb.Segments)
	le.PutUint32(p[20:], sb.CkptBytes)
	le.PutUint32(p[24:], sb.Ckpt0Sector)
	le.PutUint32(p[28:], sb.Ckpt1Sector)
	le.PutUint32(p[32:], sb.SegStart)
	le.PutUint32(p[60:], layout.Checksum(p[:60]))
}

func decodeSuperblock(p []byte) (superblock, error) {
	if len(p) < 64 {
		return superblock{}, fmt.Errorf("lfs: superblock truncated: %d bytes", len(p))
	}
	le := binary.LittleEndian
	if le.Uint32(p[0:]) != lfsMagic {
		return superblock{}, fmt.Errorf("lfs: bad magic %#x", le.Uint32(p[0:]))
	}
	if got, want := layout.Checksum(p[:60]), le.Uint32(p[60:]); got != want {
		return superblock{}, fmt.Errorf("lfs: superblock checksum mismatch")
	}
	return superblock{
		BlockSize:   le.Uint32(p[4:]),
		SegmentSize: le.Uint32(p[8:]),
		MaxInodes:   le.Uint32(p[12:]),
		Segments:    le.Uint32(p[16:]),
		CkptBytes:   le.Uint32(p[20:]),
		Ckpt0Sector: le.Uint32(p[24:]),
		Ckpt1Sector: le.Uint32(p[28:]),
		SegStart:    le.Uint32(p[32:]),
	}, nil
}

// imapEntriesPerBlock returns how many imap entries one block holds.
func imapEntriesPerBlock(blockSize int) int { return blockSize / imapEntrySize }

// imapBlockCount returns the number of imap blocks for maxInodes.
func imapBlockCount(maxInodes, blockSize int) int {
	per := imapEntriesPerBlock(blockSize)
	return (maxInodes + per - 1) / per
}

// checkpointBytes returns the (sector-aligned) size of one checkpoint
// region for the given parameters.
func checkpointBytes(cfg Config, segments int) int {
	n := ckptHeaderSize +
		imapBlockCount(cfg.MaxInodes, cfg.BlockSize)*layout.AddrSize +
		segments*segUsageEntrySize +
		4 // trailing CRC
	return (n + 511) &^ 511
}

// planLayout computes the volume layout for a disk of the given
// capacity. The segment count must be solved iteratively because the
// checkpoint regions' size depends on it.
func planLayout(cfg Config, capacity int64) (superblock, error) {
	bs := int64(cfg.BlockSize)
	segments := int(capacity / int64(cfg.SegmentSize)) // upper bound
	for {
		if segments < 4 {
			return superblock{}, fmt.Errorf("lfs: disk too small for 4 segments of %d bytes", cfg.SegmentSize)
		}
		ckptBytes := int64(checkpointBytes(cfg, segments))
		// Superblock block, then two checkpoint regions, then
		// segments, block aligned.
		meta := bs + 2*ckptBytes
		meta = (meta + bs - 1) / bs * bs
		fit := int((capacity - meta) / int64(cfg.SegmentSize))
		if fit >= segments {
			sb := superblock{
				BlockSize:   uint32(cfg.BlockSize),
				SegmentSize: uint32(cfg.SegmentSize),
				MaxInodes:   uint32(cfg.MaxInodes),
				Segments:    uint32(segments),
				CkptBytes:   uint32(ckptBytes),
				Ckpt0Sector: uint32(bs / 512),
				Ckpt1Sector: uint32((bs + ckptBytes) / 512),
				SegStart:    uint32(meta / 512),
			}
			return sb, nil
		}
		segments = fit
	}
}

// Format initialises the disk as an empty LFS with a root directory.
// The root inode is written into segment 0 together with the initial
// imap blocks, and both checkpoint regions are written.
func Format(d *disk.Disk, cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	sb, err := planLayout(cfg, d.Capacity())
	if err != nil {
		return err
	}
	buf := make([]byte, cfg.BlockSize)
	sb.encode(buf)
	if err := d.WriteSectors(0, buf, true, disk.CauseFormat, "format: superblock"); err != nil {
		return err
	}
	// Build the initial state through a throwaway FS skeleton: an
	// empty imap with the root directory allocated, all segments
	// clean, then one checkpoint into each region so either is
	// valid.
	fs := newSkeleton(d, cfg, sb)
	root := layout.NewInode(layout.RootIno, layout.ModeDir|0o755)
	root.Nlink = 2
	fs.inodes[layout.RootIno] = &root
	fs.dirtyInodes[layout.RootIno] = true
	fs.imap.alloc(layout.RootIno)
	if err := fs.flush(flushCheckpoint); err != nil {
		return err
	}
	// Write the checkpoint twice so both regions hold a valid
	// (identical) state; mount picks the higher serial.
	if err := fs.writeCheckpoint(); err != nil {
		return err
	}
	if err := fs.writeCheckpoint(); err != nil {
		return err
	}
	d.Drain()
	return nil
}

// --- address arithmetic ------------------------------------------------

// segSectors returns the sectors per segment.
func (fs *FS) segSectors() int64 { return int64(fs.sb.SegmentSize) / 512 }

// segFirstSector returns the first sector of segment seg.
func (fs *FS) segFirstSector(seg int) int64 {
	return int64(fs.sb.SegStart) + int64(seg)*fs.segSectors()
}

// segOf returns the segment containing the given sector address, or
// -1 when the address is outside the segment area.
func (fs *FS) segOf(a layout.DiskAddr) int {
	s := int64(a) - int64(fs.sb.SegStart)
	if s < 0 {
		return -1
	}
	seg := int(s / fs.segSectors())
	if seg >= int(fs.sb.Segments) {
		return -1
	}
	return seg
}

// blockSector returns the sector of block index blk within segment
// seg.
func (fs *FS) blockSector(seg, blk int) int64 {
	return fs.segFirstSector(seg) + int64(blk)*fs.cfg.sectorsPerBlock()
}
