package core

import (
	"testing"
	"testing/quick"

	"lfs/internal/layout"
	"lfs/internal/sim"
)

func TestImapEntryRoundTrip(t *testing.T) {
	e := imapEntry{Addr: 12345, Slot: 3, Allocated: true, Version: 99, Atime: sim.Time(7 * sim.Second)}
	buf := make([]byte, imapEntrySize)
	e.encode(buf)
	got := decodeImapEntry(buf)
	if got != e {
		t.Fatalf("round trip: %+v vs %+v", got, e)
	}
}

func TestImapEntryRoundTripProperty(t *testing.T) {
	f := func(addr uint32, slot uint8, alloc bool, version uint32, atime int64) bool {
		e := imapEntry{Addr: layout.DiskAddr(addr), Slot: slot, Allocated: alloc, Version: version, Atime: sim.Time(atime)}
		buf := make([]byte, imapEntrySize)
		e.encode(buf)
		return decodeImapEntry(buf) == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestImapAllocFree(t *testing.T) {
	m := newImap(64, 4096)
	ino, err := m.allocNew()
	if err != nil {
		t.Fatal(err)
	}
	if ino != layout.RootIno {
		t.Fatalf("first ino = %d", ino)
	}
	ino2, _ := m.allocNew()
	if ino2 != ino+1 {
		t.Fatalf("second ino = %d", ino2)
	}
	if m.Allocated() != 2 {
		t.Fatalf("allocated = %d", m.Allocated())
	}
	v := m.get(ino2).Version
	m.free(ino2)
	if m.get(ino2).Version != v+1 {
		t.Fatal("free did not bump version")
	}
	// Freed number is reused, version preserved.
	ino3, _ := m.allocNew()
	if ino3 != ino2 {
		t.Fatalf("reuse gave %d, want %d", ino3, ino2)
	}
	if m.get(ino3).Version != v+1 {
		t.Fatal("reuse reset version")
	}
}

func TestImapExhaustion(t *testing.T) {
	m := newImap(16, 4096)
	for i := 0; i < 16; i++ {
		if _, err := m.allocNew(); err != nil {
			t.Fatalf("alloc %d failed: %v", i, err)
		}
	}
	if _, err := m.allocNew(); err == nil {
		t.Fatal("17th alloc on 16-inode map succeeded")
	}
}

func TestImapDoubleFreePanics(t *testing.T) {
	m := newImap(16, 4096)
	ino, _ := m.allocNew()
	m.free(ino)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	m.free(ino)
}

func TestImapBlockRoundTrip(t *testing.T) {
	m := newImap(600, 4096)
	for i := 0; i < 500; i++ {
		ino, _ := m.allocNew()
		e := m.get(ino)
		e.Addr = layout.DiskAddr(1000 + i)
		e.Slot = uint8(i % 4)
		e.Atime = sim.Time(i)
	}
	// Serialize every block, load into a fresh map, compare.
	m2 := newImap(600, 4096)
	buf := make([]byte, 4096)
	for idx := 0; idx < m.blockCount(); idx++ {
		m.encodeBlock(idx, buf)
		m2.decodeBlock(idx, buf)
	}
	for ino := layout.RootIno; ino <= m.maxIno(); ino++ {
		if *m.get(ino) != *m2.get(ino) {
			t.Fatalf("ino %d differs after block round trip", ino)
		}
	}
	m2.rebuildFreeState()
	if m2.Allocated() != m.Allocated() {
		t.Fatalf("allocated %d vs %d after rebuild", m2.Allocated(), m.Allocated())
	}
}

func TestImapRebuildFreeState(t *testing.T) {
	m := newImap(64, 4096)
	var inos []layout.Ino
	for i := 0; i < 10; i++ {
		ino, _ := m.allocNew()
		inos = append(inos, ino)
	}
	m.free(inos[3])
	m.free(inos[7])
	m.rebuildFreeState()
	if m.Allocated() != 8 {
		t.Fatalf("allocated = %d", m.Allocated())
	}
	// The two freed numbers come back before any new high number.
	a, _ := m.allocNew()
	b, _ := m.allocNew()
	got := map[layout.Ino]bool{a: true, b: true}
	if !got[inos[3]] || !got[inos[7]] {
		t.Fatalf("rebuild lost freed numbers: reallocated %v and %v", a, b)
	}
	c, _ := m.allocNew()
	if c != inos[9]+1 {
		t.Fatalf("next fresh ino = %d, want %d", c, inos[9]+1)
	}
}

func TestImapDirtyTracking(t *testing.T) {
	m := newImap(1000, 4096)
	per := m.perBlock
	ino := layout.Ino(per + 1) // second block
	m.alloc(ino)
	if !m.dirtyBlock[1] {
		t.Fatal("alloc did not dirty the covering block")
	}
	if m.dirtyBlock[0] {
		t.Fatal("alloc dirtied an unrelated block")
	}
}
