package core_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"lfs/internal/core"
	"lfs/internal/disk"
	"lfs/internal/sim"
)

func TestCheckCleanVolume(t *testing.T) {
	_, fs := newPair(t, 32<<20, testConfig())
	if err := fs.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		p := fmt.Sprintf("/d/f%d", i)
		if err := fs.Create(p); err != nil {
			t.Fatal(err)
		}
		if err := fs.Write(p, 0, bytes.Repeat([]byte{byte(i)}, 5000)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	rep, err := fs.Check()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("problems on clean volume: %v", rep.Problems)
	}
	if rep.Files != 30 || rep.Dirs != 2 {
		t.Fatalf("found %d files, %d dirs", rep.Files, rep.Dirs)
	}
	if rep.DataBlocks == 0 {
		t.Fatal("no data blocks counted")
	}
}

func TestCheckAfterCleaning(t *testing.T) {
	cfg := testConfig()
	cfg.CacheBlocks = 256
	_, fs := newPair(t, 24<<20, cfg)
	for i := 0; i < 700; i++ {
		p := fmt.Sprintf("/f%d", i)
		if err := fs.Create(p); err != nil {
			t.Fatal(err)
		}
		if err := fs.Write(p, 0, bytes.Repeat([]byte{1}, 4096)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 700; i += 2 {
		if err := fs.Remove(fmt.Sprintf("/f%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.CleanUntil(fs.CleanSegments() + 4); err != nil {
		t.Fatal(err)
	}
	rep, err := fs.Check()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("problems after cleaning: %v", rep.Problems)
	}
	if rep.Files != 350 {
		t.Fatalf("found %d files, want 350", rep.Files)
	}
}

// TestCrashTortureConsistency crashes the file system at arbitrary
// points of random workloads and requires that the recovered volume
// always passes the consistency check.
func TestCrashTortureConsistency(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			cfg := testConfig()
			cfg.CacheBlocks = 128
			d, fs := newPair(t, 24<<20, cfg)
			rng := rand.New(rand.NewSource(seed))
			var live []string
			nextID := 0
			crashAt := 100 + rng.Intn(400)
			for op := 0; op < crashAt; op++ {
				switch r := rng.Intn(100); {
				case r < 40: // create
					p := fmt.Sprintf("/f%d", nextID)
					nextID++
					if err := fs.Create(p); err != nil {
						t.Fatal(err)
					}
					live = append(live, p)
				case r < 70 && len(live) > 0: // write
					p := live[rng.Intn(len(live))]
					data := make([]byte, rng.Intn(20000)+1)
					rng.Read(data)
					if err := fs.Write(p, int64(rng.Intn(30000)), data); err != nil {
						t.Fatal(err)
					}
				case r < 80 && len(live) > 0: // remove
					i := rng.Intn(len(live))
					if err := fs.Remove(live[i]); err != nil {
						t.Fatal(err)
					}
					live = append(live[:i], live[i+1:]...)
				case r < 85 && len(live) > 0: // rename
					i := rng.Intn(len(live))
					dst := fmt.Sprintf("/r%d", nextID)
					nextID++
					if err := fs.Rename(live[i], dst); err != nil {
						t.Fatal(err)
					}
					live[i] = dst
				case r < 88 && len(live) > 0: // hard link
					i := rng.Intn(len(live))
					dst := fmt.Sprintf("/l%d", nextID)
					nextID++
					if err := fs.Link(live[i], dst); err != nil {
						t.Fatal(err)
					}
					live = append(live, dst)
				case r < 93: // sync
					if err := fs.Sync(); err != nil {
						t.Fatal(err)
					}
				default: // checkpoint
					if err := fs.Checkpoint(); err != nil {
						t.Fatal(err)
					}
				}
			}
			fs.Crash()
			recovered, err := core.Mount(d, cfg)
			if err != nil {
				t.Fatalf("remount after crash: %v", err)
			}
			rep, err := recovered.Check()
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Ok() {
				t.Fatalf("inconsistencies after crash recovery:\n%s", strings.Join(rep.Problems, "\n"))
			}
			// Every reachable file must be fully readable.
			entries, err := recovered.ReadDir("/")
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range entries {
				fi, err := recovered.Stat("/" + e.Name)
				if err != nil {
					t.Fatal(err)
				}
				buf := make([]byte, fi.Size)
				if _, err := recovered.Read("/"+e.Name, 0, buf); err != nil {
					t.Fatalf("reading recovered %s: %v", e.Name, err)
				}
			}
		})
	}
}

// TestCrashTortureWithTornWrites adds torn final writes to the mix.
func TestCrashTortureWithTornWrites(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		cfg := testConfig()
		d, fs := newPair(t, 16<<20, cfg)
		rng := rand.New(rand.NewSource(seed + 100))
		for i := 0; i < 50; i++ {
			p := fmt.Sprintf("/f%d", i)
			if err := fs.Create(p); err != nil {
				t.Fatal(err)
			}
			if err := fs.Write(p, 0, bytes.Repeat([]byte{byte(i)}, rng.Intn(8000)+1)); err != nil {
				t.Fatal(err)
			}
			if rng.Intn(10) == 0 {
				if err := fs.Checkpoint(); err != nil {
					t.Fatal(err)
				}
			}
		}
		d.TearNextWrite()
		_ = fs.Sync() // the torn write may or may not surface an error later
		fs.Crash()
		recovered, err := core.Mount(d, cfg)
		if err != nil {
			t.Fatalf("seed %d: remount: %v", seed, err)
		}
		rep, err := recovered.Check()
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Ok() {
			t.Fatalf("seed %d: problems after torn write:\n%s", seed, strings.Join(rep.Problems, "\n"))
		}
	}
}

func TestDumpFormats(t *testing.T) {
	clock := sim.NewClock()
	d := disk.NewMem(16<<20, clock)
	cfg := testConfig()
	if err := core.Format(d, cfg); err != nil {
		t.Fatal(err)
	}
	fs, err := core.Mount(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("/x"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Write("/x", 0, bytes.Repeat([]byte{1}, 9000)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Unmount(); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := core.Dump(&sb, d, true); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"superblock:", "checkpoint 0:", "checkpoint 1:", "log units:", "serial"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump output missing %q:\n%s", want, out)
		}
	}
}

func TestDumpRejectsUnformatted(t *testing.T) {
	d := disk.NewMem(8<<20, sim.NewClock())
	var sb strings.Builder
	if err := core.Dump(&sb, d, false); err == nil {
		t.Fatal("dump of unformatted disk succeeded")
	}
}

// TestCheckCleanAfterRemount: a freshly remounted volume passes the
// checker (the corruption-detection cases live in the package-internal
// test file, which can sabotage state directly).
func TestCheckCleanAfterRemount(t *testing.T) {
	d, fs := newPair(t, 16<<20, testConfig())
	if err := fs.Create("/f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Write("/f", 0, bytes.Repeat([]byte{1}, 8192)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Unmount(); err != nil {
		t.Fatal(err)
	}
	fs2, err := core.Mount(d, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fs2.Check()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("unexpected problems: %v", rep.Problems)
	}
}

func TestDumpImap(t *testing.T) {
	d, fs := newPair(t, 16<<20, testConfig())
	for i := 0; i < 5; i++ {
		if err := fs.Create(fmt.Sprintf("/f%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Unmount(); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := core.DumpImap(&sb, d); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// Root + 5 files.
	if !strings.Contains(out, "6 allocated inodes") {
		t.Fatalf("imap dump:\n%s", out)
	}
	if !strings.Contains(out, "version") {
		t.Fatal("missing header")
	}
}

func TestDumpImapRejectsUnformatted(t *testing.T) {
	d := disk.NewMem(8<<20, sim.NewClock())
	var sb strings.Builder
	if err := core.DumpImap(&sb, d); err == nil {
		t.Fatal("imap dump of unformatted disk succeeded")
	}
}
