package core

import (
	"fmt"

	"lfs/internal/disk"
	"lfs/internal/layout"
	"lfs/internal/obs"
)

// CleanResult summarises one cleaner activation.
type CleanResult struct {
	// SegmentsCleaned is the number of segments reclaimed.
	SegmentsCleaned int
	// BlocksExamined counts blocks whose liveness was checked.
	BlocksExamined int
	// LiveCopied counts live blocks rewritten to the head of the
	// log.
	LiveCopied int
	// BytesReclaimed is the *net* clean log space generated:
	// segments reclaimed minus the space the relocated live data
	// consumes at the log head. This is the y-axis of Figure 5 —
	// cleaning a 90%-utilised segment frees a whole segment but
	// immediately fills 90% of another, so it nets almost nothing.
	BytesReclaimed int64
}

// cleanSegments is the automatic activation: clean until the target
// number of clean segments is reached or no profitable victim
// remains.
func (fs *FS) cleanSegments() error {
	target := fs.cfg.cleanTarget(int(fs.sb.Segments))
	_, err := fs.cleanUntil(target)
	return err
}

// CleanUntil runs the cleaner until at least target segments are
// clean (or no candidate remains), mirroring the paper's user-level
// cleaning trigger (§4.3.4: "the user-level process interface allows
// cleaning to be initiated at night or other times of slack usage").
func (fs *FS) CleanUntil(target int) (CleanResult, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.cleanUntil(target)
}

// cleanUntil is CleanUntil without the lock, for internal callers.
func (fs *FS) cleanUntil(target int) (CleanResult, error) {
	var res CleanResult
	if err := fs.checkMounted(); err != nil {
		return res, err
	}
	if fs.cleaning {
		return res, nil
	}
	fs.cleaning = true
	defer func() { fs.cleaning = false }()
	fs.stats.CleanerRuns++

	cleaned := false
	// Termination guard: compaction frees only dead bytes, so a
	// bounded number of passes suffices; anything beyond means the
	// target is unreachable (the disk is simply full of live data).
	maxIters := 2*int(fs.sb.Segments) + 16
	for iter := 0; fs.cleanCount+fs.pendingClean < target && iter < maxIters; iter++ {
		victim, ok := fs.selectVictim()
		if !ok {
			break
		}
		r, err := fs.cleanSegment(victim)
		if err != nil {
			return res, err
		}
		res.SegmentsCleaned++
		res.BlocksExamined += r.BlocksExamined
		res.LiveCopied += r.LiveCopied
		// Net clean space is signed per victim: cleaning a segment
		// more than one-segment's-worth full of live data (possible
		// when the estimate drifted) costs more space than it frees,
		// and dropping those negatives would overstate the total.
		res.BytesReclaimed += int64(fs.sb.SegmentSize) - int64(r.LiveCopied)*int64(fs.cfg.BlockSize)
		cleaned = true
		// Reclaimed segments stay segPending — unusable — until a
		// checkpoint records the relocations. Checkpoint mid-run
		// before truly clean segments run out, so the next victim's
		// relocation flush always has somewhere to go.
		if fs.cleanCount < 2 {
			if err := fs.checkpoint(); err != nil {
				return res, err
			}
		}
	}
	if cleaned {
		// A checkpoint pins the relocated blocks' new addresses and
		// releases the pending segments for reuse; without it a
		// crash could resurrect pointers into segments we are about
		// to overwrite.
		if err := fs.checkpoint(); err != nil {
			return res, err
		}
	}
	if res.BytesReclaimed < 0 {
		res.BytesReclaimed = 0
	}
	fs.stats.CleanerBytesReclaimed += res.BytesReclaimed
	return res, nil
}

// CleanOnce cleans the single best victim segment, if any.
func (fs *FS) CleanOnce() (CleanResult, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.cleanUntil(fs.cleanCount + 1)
}

// selectVictim picks the next segment to clean according to the
// configured policy. Segments at or above MinLiveFraction utilisation
// are never picked (§4.3.4).
func (fs *FS) selectVictim() (int, bool) {
	segSize := float64(fs.sb.SegmentSize)
	bestScore := 0.0
	best := -1
	now := fs.clock.Now()
	for seg := range fs.usage {
		u := &fs.usage[seg]
		if u.State != segDirty {
			continue
		}
		util := float64(u.Live) / segSize
		if util >= fs.cfg.MinLiveFraction {
			continue
		}
		var score float64
		switch fs.cfg.Policy {
		case CleanCostBenefit:
			// benefit/cost = free space generated × age of data
			// / cost of reading and rewriting: (1-u)·age/(1+u).
			age := now.Sub(u.LastWrite).Seconds() + 1
			score = (1 - util) * age / (1 + util)
		default: // CleanGreedy
			score = 1 - util
		}
		if best < 0 || score > bestScore {
			best, bestScore = seg, score
		}
	}
	return best, best >= 0
}

// cleanSegment performs the two-phase clean of one segment (§4.3.2):
// phase one reads the segment and identifies its live blocks through
// the summary, the inode map version check, and the inode walk
// (§4.3.3); phase two re-dirties the live blocks in the cache and
// lets the segment writer copy them to the head of the log.
func (fs *FS) cleanSegment(seg int) (CleanResult, error) {
	var res CleanResult
	if fs.usage[seg].State != segDirty {
		return res, fmt.Errorf("lfs: cleaning segment %d in state %d", seg, fs.usage[seg].State)
	}
	// Victim utilisation as the selection policy saw it, for the
	// activation record (Figure 5's x-axis).
	victimUtil := float64(fs.usage[seg].Live) / float64(fs.sb.SegmentSize)
	// Phase 1: one large sequential read of the whole segment.
	raw := make([]byte, fs.sb.SegmentSize)
	fs.cpu.Charge(fs.cfg.Costs.DiskOpSetup)
	if err := fs.d.ReadSectors(fs.segFirstSector(seg), raw, disk.CauseCleanerRead, "cleaner: segment read"); err != nil {
		return res, err
	}

	bs := fs.cfg.BlockSize
	blk := 0
	for blk < fs.cfg.blocksPerSegment() {
		h, refs, err := decodeSummary(raw[blk*bs:])
		if err != nil {
			break // end of the segment's used region
		}
		dataStart := blk + h.SumBlocks
		for j, ref := range refs {
			res.BlocksExamined++
			fs.stats.CleanerBlocksExamined++
			fs.cpu.Charge(fs.cfg.Costs.CleanPerBlock)
			addr := layout.DiskAddr(fs.blockSector(seg, dataStart+j))
			data := raw[(dataStart+j)*bs : (dataStart+j+1)*bs]
			live, err := fs.reviveBlock(ref, addr, data)
			if err != nil {
				return res, err
			}
			if live {
				res.LiveCopied++
				fs.stats.CleanerLiveCopied++
			}
		}
		blk = dataStart + h.NBlocks
	}

	// Phase 2: write the re-dirtied live blocks to the log head.
	if err := fs.flush(flushAll); err != nil {
		return res, err
	}
	// Every live block has been relocated (the pointer updates in
	// the flush decremented this segment's live estimate), but the
	// segment is only pending: until a checkpoint records the
	// relocations, a crash recovers from a checkpoint whose
	// pointers still reach into it, so it must not be rewritten.
	fs.killRemaining(seg)
	fs.usage[seg].State = segPending
	fs.usage[seg].Live = 0
	fs.pendingClean++
	fs.stats.SegmentsCleaned++
	if fs.rec.Enabled() {
		// Measured byte counts, so the recorder's aggregate write
		// cost is exactly the Stats-derived value.
		read := int64(fs.sb.SegmentSize)
		copied := int64(res.LiveCopied) * int64(fs.cfg.BlockSize)
		fs.rec.Clean(obs.CleanRecord{
			Time:           fs.clock.Now(),
			Seg:            seg,
			Utilization:    victimUtil,
			BytesRead:      read,
			BytesCopied:    copied,
			BytesReclaimed: read - copied,
		})
	}
	return res, nil
}

// killRemaining clears any residual live estimate for a segment being
// reclaimed (the estimate is a hint and can drift; reclamation is the
// truth point).
func (fs *FS) killRemaining(seg int) {
	fs.liveBytes -= fs.usage[seg].Live
	if fs.liveBytes < 0 {
		fs.liveBytes = 0
	}
	fs.usage[seg].Live = 0
}

// reviveBlock decides whether a logged block is live (§4.3.3) and, if
// so, reinstates it in the cache as dirty so the next segment write
// relocates it. Returns whether the block was live.
func (fs *FS) reviveBlock(ref blockRef, addr layout.DiskAddr, data []byte) (bool, error) {
	switch ref.Kind {
	case kindData:
		e := fs.imap.get(ref.Ino)
		// Step 1: the version check catches deleted and truncated
		// files without touching the inode.
		if !e.Allocated || e.Version != ref.Version {
			return false, nil
		}
		// Step 2: the inode walk confirms the block is still part
		// of the file at this address.
		in, err := fs.getInode(ref.Ino)
		if err != nil {
			return false, err
		}
		cur, err := fs.blockAddrOf(in, ref.ID)
		if err != nil {
			return false, err
		}
		if cur != addr {
			return false, nil
		}
		key := dataKey(ref.Ino, ref.ID)
		if b := fs.bc.Peek(key); b != nil {
			// The cache already holds this block; re-dirty it so
			// the flush relocates it (a dirty copy would be
			// relocated anyway).
			fs.bc.MarkDirty(b, fs.clock.Now())
			return true, nil
		}
		b := fs.bc.Add(key)
		copy(b.Data, data)
		fs.bc.MarkDirty(b, fs.clock.Now())
		return true, nil

	case kindIndirect:
		e := fs.imap.get(ref.Ino)
		if !e.Allocated || e.Version != ref.Version {
			return false, nil
		}
		in, err := fs.getInode(ref.Ino)
		if err != nil {
			return false, err
		}
		cur, err := fs.indirectAddrOf(in, ref.ID)
		if err != nil {
			return false, err
		}
		if cur != addr {
			return false, nil
		}
		key := indKey(ref.Ino, ref.ID)
		if b := fs.bc.Peek(key); b != nil {
			fs.bc.MarkDirty(b, fs.clock.Now())
			return true, nil
		}
		b := fs.bc.Add(key)
		copy(b.Data, data)
		fs.bc.MarkDirty(b, fs.clock.Now())
		return true, nil

	case kindInodes:
		// Decode each record; an inode is live when the map still
		// points at this block.
		live := false
		for slot := 0; slot < fs.inodesPerBlock(); slot++ {
			raw := data[slot*layout.InodeSize : (slot+1)*layout.InodeSize]
			if allZero(raw) {
				continue
			}
			rec, err := layout.DecodeInode(raw)
			if err != nil || !rec.Allocated() {
				continue
			}
			e := fs.imap.get(rec.Ino)
			wantAddr := addr + layout.DiskAddr(slot/inodesPerSector)
			if !e.Allocated || e.Addr != wantAddr || int(e.Slot) != slot%inodesPerSector {
				continue
			}
			// Live: pull it in core and queue a rewrite. On failure,
			// report the liveness found so far — earlier slots were
			// already marked dirty, and discarding them would leave
			// the caller's copy accounting inconsistent.
			if _, err := fs.getInode(rec.Ino); err != nil {
				return live, err
			}
			fs.markInodeDirty(rec.Ino)
			live = true
		}
		return live, nil

	case kindImap:
		idx := int(ref.ID)
		if idx < 0 || idx >= fs.imap.blockCount() || fs.imap.blockAddrs[idx] != addr {
			return false, nil
		}
		// Re-dirty the imap block; it is rewritten at the
		// checkpoint that ends this cleaner run.
		fs.imap.dirtyBlock[idx] = true
		return true, nil
	}
	return false, fmt.Errorf("lfs: unknown block kind %d in summary", ref.Kind)
}

// allZero reports whether p contains only zero bytes.
func allZero(p []byte) bool {
	for _, b := range p {
		if b != 0 {
			return false
		}
	}
	return true
}
