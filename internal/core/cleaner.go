package core

import (
	"fmt"

	"lfs/internal/cache"
	"lfs/internal/disk"
	"lfs/internal/layout"
	"lfs/internal/obs"
	"lfs/internal/sim"
)

// CleanResult summarises one cleaner activation.
type CleanResult struct {
	// SegmentsCleaned is the number of segments reclaimed.
	SegmentsCleaned int
	// BlocksExamined counts blocks whose liveness was checked.
	BlocksExamined int
	// LiveCopied counts live blocks rewritten to the head of the
	// log.
	LiveCopied int
	// BytesReclaimed is the *net* clean log space generated:
	// segments reclaimed minus the space the relocated live data
	// consumes at the log head. This is the y-axis of Figure 5 —
	// cleaning a 90%-utilised segment frees a whole segment but
	// immediately fills 90% of another, so it nets almost nothing.
	// It is signed: a run over victims whose live estimates drifted
	// high can net negative, and presentation layers (not the
	// accounting) decide whether to floor it at zero.
	BytesReclaimed int64
}

// cleanSegments is the automatic activation: clean until the target
// number of clean segments is reached or no profitable victim
// remains.
func (fs *FS) cleanSegments() error {
	target := fs.cfg.cleanTarget(int(fs.sb.Segments))
	_, err := fs.cleanUntil(target)
	return err
}

// CleanUntil runs the cleaner until at least target segments are
// clean (or no candidate remains), mirroring the paper's user-level
// cleaning trigger (§4.3.4: "the user-level process interface allows
// cleaning to be initiated at night or other times of slack usage").
func (fs *FS) CleanUntil(target int) (CleanResult, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.cleanUntil(target)
}

// cleanUntil is CleanUntil without the lock, for internal callers.
func (fs *FS) cleanUntil(target int) (CleanResult, error) {
	var res CleanResult
	if err := fs.checkMounted(); err != nil {
		return res, err
	}
	if fs.cleaning {
		return res, nil
	}
	fs.cleaning = true
	// Bracket the whole activation — victim reads, relocation writes,
	// mid-run and final checkpoints, and the CPU they charge — as
	// cleaner interference on whichever operation triggered it. The
	// disk.Waiter hook skips requests issued while cleaning, so the
	// delta is attributed exactly once.
	cleanT0 := fs.clock.Now()
	defer func() {
		fs.cleaning = false
		fs.phases.Add(obs.PhaseCleaner, fs.clock.Now().Sub(cleanT0))
	}()
	fs.stats.CleanerRuns++

	cleaned := false
	// Termination guard: compaction frees only dead bytes, so a
	// bounded number of passes suffices; anything beyond means the
	// target is unreachable (the disk is simply full of live data).
	maxIters := 2*int(fs.sb.Segments) + 16
	for iter := 0; fs.cleanCount+fs.pendingClean < target && iter < maxIters; {
		batch := fs.selectBatch(target - fs.cleanCount - fs.pendingClean)
		if len(batch) == 0 {
			break
		}
		iter += len(batch)
		r, err := fs.cleanBatch(batch)
		res.SegmentsCleaned += r.SegmentsCleaned
		res.BlocksExamined += r.BlocksExamined
		res.LiveCopied += r.LiveCopied
		// Net clean space is signed per victim: cleaning a segment
		// more than one-segment's-worth full of live data (possible
		// when the estimate drifted) costs more space than it frees,
		// and dropping those negatives would overstate the total.
		res.BytesReclaimed += r.BytesReclaimed
		if err != nil {
			return res, err
		}
		cleaned = true
		// Reclaimed segments stay segPending — unusable — until a
		// checkpoint records the relocations. Checkpoint mid-run
		// before truly clean segments run out, so the next batch's
		// relocation flush always has somewhere to go. With
		// segregation one relocation flush can claim several
		// segments — opening the cold head, advancing both streams
		// mid-fill, and spilling the pointer-update inode blocks —
		// hence the larger reserve.
		if fs.cleanCount < fs.cleanReserve() && fs.pendingClean > 0 {
			if err := fs.checkpoint(); err != nil {
				return res, err
			}
		}
	}
	if cleaned {
		// A checkpoint pins the relocated blocks' new addresses and
		// releases the pending segments for reuse; without it a
		// crash could resurrect pointers into segments we are about
		// to overwrite.
		if err := fs.checkpoint(); err != nil {
			return res, err
		}
	}
	// Accumulate the signed value: flooring a net-negative run here
	// would overstate cumulative reclaim. Consumers that want a
	// nonnegative rate clamp at presentation.
	fs.stats.CleanerBytesReclaimed += res.BytesReclaimed
	return res, nil
}

// CleanOnce cleans the single best victim segment, if any.
func (fs *FS) CleanOnce() (CleanResult, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.cleanUntil(fs.cleanCount + 1)
}

// selectBatch gathers up to needed victims for one relocation pass,
// stopping when their combined live data would overflow the pass's
// relocation budget. Cleaning several segments per flush is the
// paper's own prescription (§4.3.4 cleans "a few tens of segments at
// a time"): the pointer updates for a victim's relocated blocks dirty
// inode and inode-map blocks, and cleaning one segment per pass pays
// that metadata rewrite per segment — at high utilization the
// metadata alone can exceed what a dense victim frees, so the cleaner
// consumes clean segments faster than it makes them. Batching pays it
// once per batch.
func (fs *FS) selectBatch(needed int) []int {
	// The budget is expressed in live bytes to relocate: about two
	// destination segments' worth, capped by half the cache (revived
	// blocks sit dirty in the cache until the flush) and by the clean
	// segments actually available to absorb the copies.
	budget := 2 * int64(fs.sb.SegmentSize)
	if half := int64(fs.cfg.CacheBlocks) * int64(fs.cfg.BlockSize) / 2; budget > half {
		budget = half
	}
	if avail := int64(fs.cleanCount-2) * int64(fs.sb.SegmentSize); budget > avail {
		budget = avail
	}
	var batch []int
	var live int64
	excl := make(map[int]bool)
	for len(batch) < needed {
		victim, ok := fs.selectVictim(excl)
		if !ok {
			break
		}
		vl := fs.usage[victim].Live
		// The first victim is always admitted — otherwise a cleaner
		// under space pressure could never start.
		if len(batch) > 0 && live+vl > budget {
			break
		}
		batch = append(batch, victim)
		excl[victim] = true
		live += vl
	}
	return batch
}

// cleanReserve is the emergency clean-segment floor: below it the
// cleaner checkpoints mid-run to release pending segments, and victim
// selection switches to space-first. With segregation one relocation
// flush can claim more segments (the cold head opens and both streams
// can advance mid-fill), hence the larger reserve.
func (fs *FS) cleanReserve() int {
	if fs.cfg.Segregation {
		return 5
	}
	return 3
}

// selectVictim picks the next segment to clean according to the
// configured policy, skipping the exclusion set (victims already in
// the current batch). Segments at or above MinLiveFraction
// utilisation are never picked (§4.3.4).
func (fs *FS) selectVictim(excl map[int]bool) (int, bool) {
	policy := fs.cfg.Policy
	// Space guard: cost-benefit favors old, dense victims, which
	// consume nearly a full clean segment of copies to net a sliver
	// of free space. With the clean reserve nearly exhausted that is
	// a death spiral — each pass consumes segments faster than it
	// frees them — so survival overrides age: fall back to greedy
	// (most-empty victim), which maximizes net space per pass.
	if fs.cleanCount <= fs.cleanReserve() {
		policy = CleanGreedy
	}
	segSize := float64(fs.sb.SegmentSize)
	bestScore := 0.0
	best := -1
	now := fs.clock.Now()
	for seg := range fs.usage {
		u := &fs.usage[seg]
		if u.State != segDirty || excl[seg] {
			continue
		}
		util := float64(u.Live) / segSize
		if util >= fs.cfg.MinLiveFraction {
			continue
		}
		var score float64
		switch policy {
		case CleanCostBenefit:
			// benefit/cost = free space generated × age of data
			// / cost of reading and rewriting: (1-u)·age/(1+u).
			// Age is the youngest-block modified time (§3.6),
			// preserved across cleaner copies; LastWrite is the
			// fallback for segments written before age tracking,
			// whose append time is the only estimate on record.
			ageAt := u.Age
			if ageAt == 0 {
				ageAt = u.LastWrite
			}
			age := now.Sub(ageAt).Seconds() + 1
			score = (1 - util) * age / (1 + util)
		default: // CleanGreedy
			score = 1 - util
		}
		if best < 0 || score > bestScore {
			best, bestScore = seg, score
		}
	}
	return best, best >= 0
}

// cleanSegment cleans a single segment; tests and CleanOnce use it.
func (fs *FS) cleanSegment(seg int) (CleanResult, error) {
	return fs.cleanBatch([]int{seg})
}

// cleanBatch performs the two-phase clean of a batch of segments
// (§4.3.2): phase one reads each victim and identifies its live blocks
// through the summary, the inode map version check, and the inode walk
// (§4.3.3); phase two re-dirties the live blocks in the cache and lets
// one segment write copy them all to the head of the log, so the
// pointer-update metadata (inode and inode-map blocks) is rewritten
// once per batch rather than once per victim.
func (fs *FS) cleanBatch(victims []int) (CleanResult, error) {
	var res CleanResult
	type victimStat struct {
		seg    int
		copied int
		util   float64
	}
	stats := make([]victimStat, 0, len(victims))
	fs.coldAges = make(map[cache.Key]sim.Time)
	defer func() { fs.coldAges = nil }()
	for _, seg := range victims {
		if fs.usage[seg].State != segDirty {
			return res, fmt.Errorf("lfs: cleaning segment %d in state %d", seg, fs.usage[seg].State)
		}
		// Victim utilisation as the selection policy saw it, for the
		// activation record (Figure 5's x-axis).
		util := float64(fs.usage[seg].Live) / float64(fs.sb.SegmentSize)
		copied, examined, err := fs.reviveSegment(seg)
		res.BlocksExamined += examined
		res.LiveCopied += copied
		if err != nil {
			return res, err
		}
		stats = append(stats, victimStat{seg: seg, copied: copied, util: util})
	}

	// Phase 2: write the re-dirtied live blocks to the log head.
	if err := fs.flush(flushAll); err != nil {
		return res, err
	}
	for _, vs := range stats {
		// Every live block has been relocated (the pointer updates in
		// the flush decremented this segment's live estimate), but the
		// segment is only pending: until a checkpoint records the
		// relocations, a crash recovers from a checkpoint whose
		// pointers still reach into it, so it must not be rewritten.
		fs.killRemaining(vs.seg)
		fs.usage[vs.seg].State = segPending
		fs.usage[vs.seg].Live = 0
		fs.pendingClean++
		fs.stats.SegmentsCleaned++
		res.SegmentsCleaned++
		read := int64(fs.sb.SegmentSize)
		copied := int64(vs.copied) * int64(fs.cfg.BlockSize)
		res.BytesReclaimed += read - copied
		if fs.rec.Enabled() {
			// Measured byte counts, so the recorder's aggregate write
			// cost is exactly the Stats-derived value.
			fs.rec.Clean(obs.CleanRecord{
				Time:           fs.clock.Now(),
				Seg:            vs.seg,
				Utilization:    vs.util,
				BytesRead:      read,
				BytesCopied:    copied,
				BytesReclaimed: read - copied,
			})
		}
	}
	return res, nil
}

// reviveSegment reads one victim segment and re-dirties its live
// blocks in the cache, tagging each with the victim's data age: the
// segment writer credits the relocated copy at its destination with
// that age — not the copy time — and routes it to the cold head when
// segregation is on. Without the carry, relocated cold data is
// stamped "just written" and cost-benefit stops ever re-selecting the
// segments it lands in. Returns the live and examined block counts.
func (fs *FS) reviveSegment(seg int) (copied, examined int, err error) {
	srcAge := fs.usage[seg].Age
	if srcAge == 0 {
		srcAge = fs.usage[seg].LastWrite
	}
	// Phase 1: one large sequential read of the whole segment.
	raw := make([]byte, fs.sb.SegmentSize)
	fs.cpu.Charge(fs.cfg.Costs.DiskOpSetup)
	if err := fs.d.ReadSectors(fs.segFirstSector(seg), raw, disk.CauseCleanerRead, "cleaner: segment read"); err != nil {
		return copied, examined, err
	}

	bs := fs.cfg.BlockSize
	blk := 0
	for blk < fs.cfg.blocksPerSegment() {
		h, refs, err := decodeSummary(raw[blk*bs:])
		if err != nil {
			break // end of the segment's used region
		}
		dataStart := blk + h.SumBlocks
		for j, ref := range refs {
			examined++
			fs.stats.CleanerBlocksExamined++
			fs.cpu.Charge(fs.cfg.Costs.CleanPerBlock)
			addr := layout.DiskAddr(fs.blockSector(seg, dataStart+j))
			data := raw[(dataStart+j)*bs : (dataStart+j+1)*bs]
			live, err := fs.reviveBlock(ref, addr, data, srcAge)
			if err != nil {
				return copied, examined, err
			}
			if live {
				copied++
				fs.stats.CleanerLiveCopied++
			}
		}
		blk = dataStart + h.NBlocks
	}
	return copied, examined, nil
}

// killRemaining clears any residual live estimate for a segment being
// reclaimed (the estimate is a hint and can drift; reclamation is the
// truth point).
func (fs *FS) killRemaining(seg int) {
	fs.liveBytes -= fs.usage[seg].Live
	if fs.liveBytes < 0 {
		fs.liveBytes = 0
	}
	fs.usage[seg].Live = 0
}

// reviveBlock decides whether a logged block is live (§4.3.3) and, if
// so, reinstates it in the cache as dirty so the next segment write
// relocates it. Returns whether the block was live.
func (fs *FS) reviveBlock(ref blockRef, addr layout.DiskAddr, data []byte, srcAge sim.Time) (bool, error) {
	switch ref.Kind {
	case kindData:
		e := fs.imap.get(ref.Ino)
		// Step 1: the version check catches deleted and truncated
		// files without touching the inode.
		if !e.Allocated || e.Version != ref.Version {
			return false, nil
		}
		// Step 2: the inode walk confirms the block is still part
		// of the file at this address.
		in, err := fs.getInode(ref.Ino)
		if err != nil {
			return false, err
		}
		cur, err := fs.blockAddrOf(in, ref.ID)
		if err != nil {
			return false, err
		}
		if cur != addr {
			return false, nil
		}
		key := dataKey(ref.Ino, ref.ID)
		if b := fs.bc.Peek(key); b != nil {
			// The cache already holds this block; re-dirty it so
			// the flush relocates it (a dirty copy would be
			// relocated anyway). Tag it cold only if it was clean:
			// an already-dirty copy holds fresh application data
			// that belongs in the hot stream.
			if !b.Dirty() {
				fs.markCold(key, srcAge)
			}
			fs.bc.MarkDirty(b, fs.clock.Now())
			return true, nil
		}
		b := fs.bc.Add(key)
		copy(b.Data, data)
		fs.bc.MarkDirty(b, fs.clock.Now())
		fs.markCold(key, srcAge)
		return true, nil

	case kindIndirect:
		e := fs.imap.get(ref.Ino)
		if !e.Allocated || e.Version != ref.Version {
			return false, nil
		}
		in, err := fs.getInode(ref.Ino)
		if err != nil {
			return false, err
		}
		cur, err := fs.indirectAddrOf(in, ref.ID)
		if err != nil {
			return false, err
		}
		if cur != addr {
			return false, nil
		}
		key := indKey(ref.Ino, ref.ID)
		if b := fs.bc.Peek(key); b != nil {
			if !b.Dirty() {
				fs.markCold(key, srcAge)
			}
			fs.bc.MarkDirty(b, fs.clock.Now())
			return true, nil
		}
		b := fs.bc.Add(key)
		copy(b.Data, data)
		fs.bc.MarkDirty(b, fs.clock.Now())
		fs.markCold(key, srcAge)
		return true, nil

	case kindInodes:
		// Decode each record; an inode is live when the map still
		// points at this block.
		live := false
		for slot := 0; slot < fs.inodesPerBlock(); slot++ {
			raw := data[slot*layout.InodeSize : (slot+1)*layout.InodeSize]
			if allZero(raw) {
				continue
			}
			rec, err := layout.DecodeInode(raw)
			if err != nil || !rec.Allocated() {
				continue
			}
			e := fs.imap.get(rec.Ino)
			wantAddr := addr + layout.DiskAddr(slot/inodesPerSector)
			if !e.Allocated || e.Addr != wantAddr || int(e.Slot) != slot%inodesPerSector {
				continue
			}
			// Live: pull it in core and queue a rewrite. On failure,
			// report the liveness found so far — earlier slots were
			// already marked dirty, and discarding them would leave
			// the caller's copy accounting inconsistent.
			if _, err := fs.getInode(rec.Ino); err != nil {
				return live, err
			}
			fs.markInodeDirty(rec.Ino)
			live = true
		}
		return live, nil

	case kindImap:
		idx := int(ref.ID)
		if idx < 0 || idx >= fs.imap.blockCount() || fs.imap.blockAddrs[idx] != addr {
			return false, nil
		}
		// Re-dirty the imap block; it is rewritten at the
		// checkpoint that ends this cleaner run.
		fs.imap.dirtyBlock[idx] = true
		return true, nil
	}
	return false, fmt.Errorf("lfs: unknown block kind %d in summary", ref.Kind)
}

// markCold tags a revived cache block as a cleaner relocation
// carrying its victim segment's data age, for the segment writer's
// hot/cold split and age credit. A no-op outside a cleaner pass.
func (fs *FS) markCold(key cache.Key, srcAge sim.Time) {
	if fs.coldAges != nil {
		fs.coldAges[key] = srcAge
	}
}

// allZero reports whether p contains only zero bytes.
func allZero(p []byte) bool {
	for _, b := range p {
		if b != 0 {
			return false
		}
	}
	return true
}
