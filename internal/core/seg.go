package core

import (
	"encoding/binary"
	"fmt"

	"lfs/internal/layout"
	"lfs/internal/sim"
)

// Segment states tracked in the usage array.
const (
	// segClean segments are fully reusable log space.
	segClean uint8 = iota
	// segDirty segments hold (possibly dead) logged data.
	segDirty
	// segActive is the segment currently being appended to.
	segActive
	// segPending segments were reclaimed by the cleaner but must not
	// be reused until a checkpoint records the relocation of their
	// live blocks: a crash before that checkpoint recovers from the
	// previous one, whose pointers still reach into these segments,
	// so their old contents must survive untouched. A checkpoint
	// flips them to segClean between its log flush and its region
	// write (never persisted: no checkpoint image contains it).
	segPending
)

// segUsage is one segment usage array entry (§4.3.4): an estimate of
// the live bytes in the segment, the time of its last write, and the
// age of its data — §3.6's "modified time of the youngest block",
// which the cost-benefit policy scores on. LastWrite records when the
// segment was last appended to; Age records when the youngest data in
// it was modified. The two differ exactly when the cleaner relocates
// cold blocks: the copy is written now, but the data is as old as it
// was in the victim. The paper notes the estimate is only a cleaning
// hint, so it needs no exact crash recovery; it is snapshotted in
// checkpoints.
type segUsage struct {
	Live      int64
	LastWrite sim.Time
	Age       sim.Time
	State     uint8
}

// segUsageEntrySize is the encoded size of one usage entry in the
// current (v2) checkpoint format; segUsageEntrySizeV1 is the size in
// pre-age checkpoints, which decodeCheckpoint still accepts.
const (
	segUsageEntrySize   = 32
	segUsageEntrySizeV1 = 24
)

func (u *segUsage) encode(p []byte) {
	le := binary.LittleEndian
	le.PutUint64(p[0:], uint64(u.Live))
	le.PutUint64(p[8:], uint64(u.LastWrite))
	le.PutUint64(p[16:], uint64(u.Age))
	p[24] = u.State
	for i := 25; i < segUsageEntrySize; i++ {
		p[i] = 0
	}
}

func decodeSegUsage(p []byte) segUsage {
	le := binary.LittleEndian
	return segUsage{
		Live:      int64(le.Uint64(p[0:])),
		LastWrite: sim.Time(le.Uint64(p[8:])),
		Age:       sim.Time(le.Uint64(p[16:])),
		State:     p[24],
	}
}

// decodeSegUsageV1 parses a pre-age usage entry. The age of the data
// is unrecorded; the last write time is the closest available
// estimate (exact for segments the cleaner never touched).
func decodeSegUsageV1(p []byte) segUsage {
	le := binary.LittleEndian
	u := segUsage{
		Live:      int64(le.Uint64(p[0:])),
		LastWrite: sim.Time(le.Uint64(p[8:])),
		State:     p[16],
	}
	u.Age = u.LastWrite
	return u
}

// --- write classes -----------------------------------------------------

// writeClass separates the log's two append streams: fresh
// application writes (hot) and cleaner-relocated live blocks (cold).
// Each class appends to its own open segment, so cold data compacts
// into stable high-utilization segments instead of being remixed with
// hot data that will soon die (§3.6's age-sorted write-out).
type writeClass uint8

const (
	classHot writeClass = iota
	classCold
	numClasses
)

// String names the class.
func (c writeClass) String() string {
	if c == classCold {
		return "cold"
	}
	return "hot"
}

// --- segment summaries (§4.3.1) ----------------------------------------

// blockKind classifies a logged block in a segment summary.
type blockKind uint8

const (
	// kindData is a file or directory data block; id is the
	// logical block number.
	kindData blockKind = iota
	// kindIndirect is an indirect pointer block; id identifies
	// which one (see indirect ids in inode.go).
	kindIndirect
	// kindInodes is a block packed with inode records; ino/id are
	// unused (the records carry their own numbers).
	kindInodes
	// kindImap is an inode map block; id is the imap block index.
	kindImap
)

// String names the kind.
func (k blockKind) String() string {
	switch k {
	case kindData:
		return "data"
	case kindIndirect:
		return "indirect"
	case kindInodes:
		return "inodes"
	case kindImap:
		return "imap"
	}
	return fmt.Sprintf("kind%d", uint8(k))
}

// blockRef is one summary entry: the identity of a logged block. For
// each block the summary records the owning file and position (§4.3.1)
// plus the file's imap version at write time (§4.3.3 step 1).
type blockRef struct {
	Kind    blockKind
	Ino     layout.Ino
	ID      int64
	Version uint32
}

const (
	summaryMagic      = 0x4C53554D // "LSUM"
	summaryHeaderSize = 64
	summaryEntrySize  = 24
)

// summaryHeader describes one log write unit (a partial segment): the
// summary block(s) followed by nBlocks data blocks. Units are written
// with monotonically increasing serials; roll-forward recovery walks
// units in serial order and stops at the first gap or checksum
// mismatch (a torn write). Class records which append stream wrote
// the unit (hot encodes as zero, so pre-segregation images parse as
// all-hot); Age is the modified time of the unit's youngest data —
// equal to Timestamp for fresh writes, older for cleaner relocations
// — so recovery can rebuild age-correct usage entries.
type summaryHeader struct {
	Serial    uint64
	NBlocks   int
	SumBlocks int
	Timestamp sim.Time
	DataCRC   uint32
	Class     writeClass
	Age       sim.Time
}

// summaryBytes returns the byte size of a summary for n blocks.
func summaryBytes(n int) int { return summaryHeaderSize + n*summaryEntrySize }

// summaryBlocks returns the blocks a summary for n entries occupies.
func summaryBlocks(n, blockSize int) int {
	return (summaryBytes(n) + blockSize - 1) / blockSize
}

// maxUnitBlocks returns the largest n such that a unit with n data
// blocks plus its summary fits in avail blocks. Returns 0 when not
// even one data block fits.
func maxUnitBlocks(avail, blockSize int) int {
	if avail < 2 {
		return 0
	}
	n := avail - 1 // optimistic: one summary block
	for n > 0 && summaryBlocks(n, blockSize)+n > avail {
		n--
	}
	return n
}

// encodeSummary writes the unit summary into p, which must span the
// summary blocks.
func encodeSummary(h summaryHeader, refs []blockRef, p []byte) {
	for i := range p {
		p[i] = 0
	}
	le := binary.LittleEndian
	le.PutUint32(p[0:], summaryMagic)
	le.PutUint64(p[4:], h.Serial)
	le.PutUint16(p[12:], uint16(h.NBlocks))
	le.PutUint16(p[14:], uint16(h.SumBlocks))
	le.PutUint64(p[16:], uint64(h.Timestamp))
	le.PutUint32(p[24:], h.DataCRC)
	p[32] = uint8(h.Class)
	le.PutUint64(p[40:], uint64(h.Age))
	off := summaryHeaderSize
	for _, r := range refs {
		p[off] = uint8(r.Kind)
		le.PutUint32(p[off+4:], uint32(r.Ino))
		le.PutUint64(p[off+8:], uint64(r.ID))
		le.PutUint32(p[off+16:], r.Version)
		off += summaryEntrySize
	}
	// Header checksum covers the header and all entries; stored in
	// the spare header word.
	le.PutUint32(p[28:], 0)
	crc := layout.Checksum(p[:summaryBytes(len(refs))])
	le.PutUint32(p[28:], crc)
}

// decodeSummary parses a unit summary from p. It returns an error for
// anything that is not a valid summary (the roll-forward stop
// condition).
func decodeSummary(p []byte) (summaryHeader, []blockRef, error) {
	if len(p) < summaryHeaderSize {
		return summaryHeader{}, nil, fmt.Errorf("lfs: summary shorter than header")
	}
	le := binary.LittleEndian
	if le.Uint32(p[0:]) != summaryMagic {
		return summaryHeader{}, nil, fmt.Errorf("lfs: bad summary magic")
	}
	h := summaryHeader{
		Serial:    le.Uint64(p[4:]),
		NBlocks:   int(le.Uint16(p[12:])),
		SumBlocks: int(le.Uint16(p[14:])),
		Timestamp: sim.Time(le.Uint64(p[16:])),
		DataCRC:   le.Uint32(p[24:]),
		Class:     writeClass(p[32]),
		Age:       sim.Time(le.Uint64(p[40:])),
	}
	total := summaryBytes(h.NBlocks)
	if total > len(p) {
		return summaryHeader{}, nil, fmt.Errorf("lfs: summary claims %d blocks beyond buffer", h.NBlocks)
	}
	stored := le.Uint32(p[28:])
	scratch := make([]byte, total)
	copy(scratch, p[:total])
	le.PutUint32(scratch[28:], 0)
	if layout.Checksum(scratch) != stored {
		return summaryHeader{}, nil, fmt.Errorf("lfs: summary checksum mismatch")
	}
	refs := make([]blockRef, h.NBlocks)
	off := summaryHeaderSize
	for i := range refs {
		refs[i] = blockRef{
			Kind:    blockKind(p[off]),
			Ino:     layout.Ino(le.Uint32(p[off+4:])),
			ID:      int64(le.Uint64(p[off+8:])),
			Version: le.Uint32(p[off+16:]),
		}
		off += summaryEntrySize
	}
	return h, refs, nil
}
