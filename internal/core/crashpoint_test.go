package core_test

import (
	"testing"

	"lfs/internal/core"
	"lfs/internal/fstest"
)

// crashConfig shrinks segments and the cache so a modest workload
// produces many log units, segment advances, cleaner passes, and
// checkpoints — and therefore many distinct crash points.
func crashConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.SegmentSize = 64 << 10
	cfg.CacheBlocks = 64
	cfg.MaxInodes = 512
	return cfg
}

// TestCrashPointSweep enumerates every disk write of a mixed
// create/write/overwrite/truncate/delete/clean workload and cuts power
// during each one — once losing the fatal write whole, once tearing it
// at a sector boundary. Recovery must succeed at every point: mount
// from the checkpoint regions alone, mount with roll-forward, pass the
// consistency checker, restore only states the tree actually held, and
// pass the offline fsck path.
// cleaningWorkload maximises cleaner activity relative to everything
// else: populate, delete most files to fragment the log, then clean.
// Used by TestCrashDuringCleaningRecovers below.
func cleaningWorkload(blockSize int) []fstest.CrashOp {
	var ops []fstest.CrashOp
	name := func(round, i int) string {
		return "/c" + string(rune('a'+round)) + string(rune('a'+i))
	}
	// Three rounds of populate → fragment → clean → write again, so
	// reclaimed segments are actually reused while crash points keep
	// landing inside and between cleaner runs.
	for round := 0; round < 3; round++ {
		for i := 0; i < 16; i++ {
			data := make([]byte, 3*blockSize)
			for j := range data {
				data[j] = byte(round*41 + i*13 + j)
			}
			ops = append(ops,
				fstest.CrashOp{Kind: fstest.OpCreate, Path: name(round, i)},
				fstest.CrashOp{Kind: fstest.OpWrite, Path: name(round, i), Off: 0, Data: data},
			)
		}
		ops = append(ops, fstest.CrashOp{Kind: fstest.OpSync})
		for i := 0; i < 16; i++ {
			if i%4 != 3 {
				ops = append(ops, fstest.CrashOp{Kind: fstest.OpRemove, Path: name(round, i)})
			}
		}
		ops = append(ops,
			fstest.CrashOp{Kind: fstest.OpSync},
			fstest.CrashOp{Kind: fstest.OpClean},
			fstest.CrashOp{Kind: fstest.OpClean},
			fstest.CrashOp{Kind: fstest.OpClean},
			fstest.CrashOp{Kind: fstest.OpCheckpoint},
		)
	}
	return ops
}

// TestCrashDuringCleaningRecovers sweeps every crash point of a
// cleaner-dominated workload. Regression for segment resurrection:
// the cleaner used to mark reclaimed segments clean before any
// checkpoint recorded the relocation of their live blocks, so writes
// later in the same run could overwrite data the only durable
// checkpoint still pointed at; crashing in that window recovered a
// tree with corrupted inodes. Reclaimed segments now stay pending
// until a checkpoint commits.
func TestCrashDuringCleaningRecovers(t *testing.T) {
	cfg := crashConfig()
	rep, err := fstest.RunCrashPoints(fstest.CrashConfig{
		FSConfig:     cfg,
		DiskCapacity: 4 << 20,
		Workload:     cleaningWorkload(cfg.BlockSize),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Points == 0 {
		t.Fatal("workload produced no crash points")
	}
	for i, f := range rep.Failures {
		if i >= 20 {
			t.Errorf("... and %d more failures", len(rep.Failures)-i)
			break
		}
		t.Error(f.String())
	}
}

func TestCrashPointSweep(t *testing.T) {
	cfg := crashConfig()
	for _, tc := range []struct {
		name string
		torn bool
	}{
		{"lost", false},
		{"torn", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rep, err := fstest.RunCrashPoints(fstest.CrashConfig{
				FSConfig:     cfg,
				DiskCapacity: 8 << 20,
				Workload:     fstest.MixedWorkload(48, cfg.BlockSize),
				Torn:         tc.torn,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.TotalWrites < 100 {
				t.Errorf("workload issued only %d disk writes, want >= 100 crash points", rep.TotalWrites)
			}
			if rep.Points != int(rep.TotalWrites) {
				t.Errorf("replayed %d of %d crash points", rep.Points, rep.TotalWrites)
			}
			if rep.RollForwardPoints == 0 {
				t.Error("no crash point exercised roll-forward recovery")
			}
			for i, f := range rep.Failures {
				if i >= 20 {
					t.Errorf("... and %d more failures", len(rep.Failures)-i)
					break
				}
				t.Error(f.String())
			}
		})
	}
}
