package core

import (
	"encoding/binary"
	"fmt"

	"lfs/internal/layout"
	"lfs/internal/sim"
)

// imapEntry is one inode map record (§4.2.1): where the inode
// currently lives on disk, whether it is allocated, its version
// number (bumped whenever the file is truncated to length zero or
// deleted, so the cleaner can dismiss dead blocks cheaply, §4.3.3),
// and the file's access time (footnote 2: kept here so reading a file
// does not relocate its inode).
type imapEntry struct {
	// Addr is the sector holding the inode record.
	Addr layout.DiskAddr
	// Slot is the inode's index within that sector.
	Slot uint8
	// Allocated marks the inode number as in use.
	Allocated bool
	// Version counts truncations/deletions of this inode number.
	Version uint32
	// Atime is the file's last access time.
	Atime sim.Time
}

// encode writes the entry into p (imapEntrySize bytes).
func (e *imapEntry) encode(p []byte) {
	le := binary.LittleEndian
	le.PutUint32(p[0:], uint32(e.Addr))
	p[4] = e.Slot
	if e.Allocated {
		p[5] = 1
	} else {
		p[5] = 0
	}
	p[6], p[7] = 0, 0
	le.PutUint32(p[8:], e.Version)
	le.PutUint64(p[12:], uint64(e.Atime))
	le.PutUint32(p[20:], 0)
}

// decodeImapEntry parses an entry from p.
func decodeImapEntry(p []byte) imapEntry {
	le := binary.LittleEndian
	return imapEntry{
		Addr:      layout.DiskAddr(le.Uint32(p[0:])),
		Slot:      p[4],
		Allocated: p[5] != 0,
		Version:   le.Uint32(p[8:]),
		Atime:     sim.Time(le.Uint64(p[12:])),
	}
}

// imapTable is the in-memory inode map. The paper partitions the map
// into blocks "cached like regular files"; here the full table is
// memory resident (it is small) while dirtiness is still tracked per
// block so that only modified imap blocks are logged at checkpoints.
type imapTable struct {
	entries    []imapEntry // index = ino (entry 0 unused)
	dirtyBlock []bool      // per imap block
	blockAddrs []layout.DiskAddr
	perBlock   int
	freeList   []layout.Ino
	nextIno    layout.Ino // lowest never-used ino
	allocated  int
}

// newImap returns an empty map for maxInodes inode numbers.
func newImap(maxInodes, blockSize int) *imapTable {
	per := imapEntriesPerBlock(blockSize)
	blocks := imapBlockCount(maxInodes, blockSize)
	m := &imapTable{
		entries:    make([]imapEntry, maxInodes+1),
		dirtyBlock: make([]bool, blocks),
		blockAddrs: make([]layout.DiskAddr, blocks),
		perBlock:   per,
		nextIno:    layout.RootIno,
	}
	for i := range m.entries {
		m.entries[i].Addr = layout.NilAddr
	}
	for i := range m.blockAddrs {
		m.blockAddrs[i] = layout.NilAddr
	}
	return m
}

// maxIno returns the largest valid inode number.
func (m *imapTable) maxIno() layout.Ino { return layout.Ino(len(m.entries) - 1) }

// blockOf returns the imap block index covering ino.
func (m *imapTable) blockOf(ino layout.Ino) int { return int(ino-1) / m.perBlock }

// get returns the entry for ino; callers must not retain it across
// map mutations.
func (m *imapTable) get(ino layout.Ino) *imapEntry {
	return &m.entries[ino]
}

// markDirty records a modification to ino's entry.
func (m *imapTable) markDirty(ino layout.Ino) {
	m.dirtyBlock[m.blockOf(ino)] = true
}

// alloc marks a specific ino allocated (used during Format for the
// root).
func (m *imapTable) alloc(ino layout.Ino) {
	e := m.get(ino)
	e.Allocated = true
	m.allocated++
	m.markDirty(ino)
	if ino >= m.nextIno {
		m.nextIno = ino + 1
	}
}

// allocNew returns a fresh inode number, reusing freed numbers first.
// The entry's version survives reuse, so blocks of the number's
// previous life stay detectably dead.
func (m *imapTable) allocNew() (layout.Ino, error) {
	var ino layout.Ino
	switch {
	case len(m.freeList) > 0:
		ino = m.freeList[len(m.freeList)-1]
		m.freeList = m.freeList[:len(m.freeList)-1]
	case m.nextIno <= m.maxIno():
		ino = m.nextIno
		m.nextIno++
	default:
		return 0, fmt.Errorf("inode map full (%d inodes)", m.maxIno())
	}
	e := m.get(ino)
	e.Allocated = true
	e.Addr = layout.NilAddr
	e.Slot = 0
	m.allocated++
	m.markDirty(ino)
	return ino, nil
}

// free releases ino and bumps its version (§4.3.3).
func (m *imapTable) free(ino layout.Ino) {
	e := m.get(ino)
	if !e.Allocated {
		panic(fmt.Sprintf("lfs: double free of inode %d", ino))
	}
	e.Allocated = false
	e.Addr = layout.NilAddr
	e.Version++
	m.allocated--
	m.freeList = append(m.freeList, ino)
	m.markDirty(ino)
}

// bumpVersion increments ino's version (truncate-to-zero).
func (m *imapTable) bumpVersion(ino layout.Ino) {
	m.get(ino).Version++
	m.markDirty(ino)
}

// blockCount returns the number of imap blocks.
func (m *imapTable) blockCount() int { return len(m.blockAddrs) }

// encodeBlock serialises imap block idx into p (one FS block).
func (m *imapTable) encodeBlock(idx int, p []byte) {
	for i := range p {
		p[i] = 0
	}
	first := layout.Ino(idx*m.perBlock) + 1
	for i := 0; i < m.perBlock; i++ {
		ino := first + layout.Ino(i)
		if int(ino) >= len(m.entries) {
			break
		}
		m.entries[ino].encode(p[i*imapEntrySize:])
	}
}

// decodeBlock loads imap block idx from p.
func (m *imapTable) decodeBlock(idx int, p []byte) {
	first := layout.Ino(idx*m.perBlock) + 1
	for i := 0; i < m.perBlock; i++ {
		ino := first + layout.Ino(i)
		if int(ino) >= len(m.entries) {
			break
		}
		m.entries[ino] = decodeImapEntry(p[i*imapEntrySize:])
	}
}

// rebuildFreeState reconstructs the free list and next-ino high water
// mark after loading entries at mount.
func (m *imapTable) rebuildFreeState() {
	m.freeList = m.freeList[:0]
	m.allocated = 0
	m.nextIno = layout.RootIno
	for ino := layout.RootIno; ino <= m.maxIno(); ino++ {
		if m.entries[ino].Allocated {
			m.allocated++
			m.nextIno = ino + 1
		}
	}
	// Freed numbers below the high-water mark are reusable; recover
	// them (in descending order so low numbers are handed out
	// first).
	for ino := m.nextIno - 1; ino >= layout.RootIno; ino-- {
		if !m.entries[ino].Allocated {
			m.freeList = append(m.freeList, ino)
		}
	}
}

// Allocated returns the number of live inodes.
func (m *imapTable) Allocated() int { return m.allocated }
