package core

import (
	"fmt"

	"lfs/internal/cache"
	"lfs/internal/layout"
	"lfs/internal/obs"
	"lfs/internal/sim"
	"lfs/internal/vfs"
)

// FS implements vfs.FileSystem.
var _ vfs.FileSystem = (*FS)(nil)

// maxFileSize returns the double-indirect limit in bytes.
func (fs *FS) maxFileSize() int64 {
	return layout.MaxFileBlocks(fs.cfg.BlockSize) * int64(fs.cfg.BlockSize)
}

// opStart samples the simulated clock and CPU at operation entry, for
// the span recorded by endOp, and arms phase attribution: the
// accumulator is reset and any wait noted before entry (NoteWait) is
// credited, backdating the span's start by the same amount. All reads
// are cheap enough to do even with tracing disabled.
func (fs *FS) opStart() (sim.Time, int64) {
	fs.phases.Reset()
	start := fs.clock.Now()
	for k := range fs.pendingWait {
		if d := fs.pendingWait[k]; d > 0 {
			fs.phases.Add(obs.PhaseKind(k), d)
			start = start.Add(-d)
			fs.pendingWait[k] = 0
		}
	}
	return start, fs.cpu.Instructions()
}

// endOp closes an operation: it wraps err with the operation and path
// context (*vfs.PathError) and, when a recorder is attached, emits the
// operation's span with its phase decomposition — the attributed
// waits plus a derived CPU residual, summing to the span's latency
// exactly. Must be called with fs.mu held. Recording reads only the
// simulated clock, so tracing never perturbs the timeline.
func (fs *FS) endOp(op, path string, start sim.Time, cpu0 int64, err error) error {
	err = vfs.WrapPathError(op, path, err)
	var phases []obs.Phase
	if fs.rec != nil || fs.samp != nil {
		phases = fs.phases.Phases(fs.clock.Now().Sub(start))
	}
	if fs.rec != nil {
		msg := ""
		if err != nil {
			msg = err.Error()
		}
		fs.rec.Span(obs.Span{Op: op, Path: path, Start: start,
			End: fs.clock.Now(), CPU: fs.cpu.Instructions() - cpu0, Err: msg,
			Client: fs.client, Shard: fs.shard, Phases: phases})
	}
	if fs.samp != nil {
		fs.opsDone++
		if err != nil {
			fs.opsErr++
		}
		fs.opLat.Observe(fs.clock.Now().Sub(start).Seconds())
		if op == "fsync" {
			// Observe every kind, zeros included: the series is the
			// distribution of that phase across all fsyncs, so an
			// fsync that paid no queue wait drags queue_wait.p95
			// down rather than being invisible to it.
			totals := obs.PhaseTotals(phases)
			for k := range totals {
				fs.fsyncPhase[k].Observe(totals[k].Seconds())
			}
		}
		fs.samp.Tick(fs.clock.Now())
	}
	return err
}

// drainAs waits out the disk's queued transfers, attributing the wait
// to the given phase kind — PhaseCommitWait for a group-commit leader
// (and plain syncs), PhasePiggybackWait for an fsync whose data rode
// an earlier commit.
func (fs *FS) drainAs(kind obs.PhaseKind) {
	t0 := fs.clock.Now()
	fs.d.Drain()
	fs.phases.Add(kind, fs.clock.Now().Sub(t0))
}

// createNode is the shared implementation of Create and Mkdir. In LFS
// this performs no disk I/O at all (Figure 2): the inode is allocated
// in the inode map, the directory block is modified in the cache, and
// everything rides the next segment write.
func (fs *FS) createNode(path string, isDir bool) error {
	if err := fs.checkMounted(); err != nil {
		return err
	}
	fs.cpu.Charge(fs.cfg.Costs.Syscall + fs.cfg.Costs.Create)
	dirParts, base, err := vfs.SplitDirBase(path)
	if err != nil {
		return err
	}
	parent, err := fs.resolveDir(dirParts)
	if err != nil {
		return err
	}
	if _, exists, err := fs.dirLookup(parent, base); err != nil {
		return err
	} else if exists {
		return fmt.Errorf("%w: %q", vfs.ErrExist, path)
	}
	if err := fs.admitBytes(int64(fs.cfg.BlockSize)); err != nil {
		return err
	}
	ino, err := fs.imap.allocNew()
	if err != nil {
		return fmt.Errorf("%w: %v", vfs.ErrNoSpace, err)
	}
	mode := layout.ModeFile | 0o644
	if isDir {
		mode = layout.ModeDir | 0o755
	}
	in := layout.NewInode(ino, mode)
	if isDir {
		in.Nlink = 2
	}
	now := int64(fs.clock.Now())
	in.Mtime, in.Ctime = now, now
	in.Gen = fs.imap.get(ino).Version
	fs.inodes[ino] = &in
	fs.markInodeDirty(ino)
	e := fs.imap.get(ino)
	e.Atime = fs.clock.Now()
	fs.imap.markDirty(ino)

	if err := fs.dirInsert(parent, base, ino); err != nil {
		return err
	}
	parent.Mtime = now
	fs.markInodeDirty(parent.Ino)
	return fs.epilogue()
}

// Create makes a new empty regular file.
func (fs *FS) Create(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	start, cpu0 := fs.opStart()
	return fs.endOp("create", path, start, cpu0, fs.createNode(path, false))
}

// Mkdir makes a new empty directory.
func (fs *FS) Mkdir(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	start, cpu0 := fs.opStart()
	return fs.endOp("mkdir", path, start, cpu0, fs.createNode(path, true))
}

// lookupFile resolves path to a regular file's in-core inode.
func (fs *FS) lookupFile(path string) (*layout.Inode, error) {
	parts, err := vfs.SplitPath(path)
	if err != nil {
		return nil, err
	}
	in, err := fs.resolve(parts)
	if err != nil {
		return nil, err
	}
	if in.Mode.IsDir() {
		return nil, fmt.Errorf("%w: %q", vfs.ErrIsDir, path)
	}
	return in, nil
}

// Write stores data at off. Purely asynchronous: bursts of small
// writes accumulate in the cache and convert into large sequential
// segment transfers (§4.1).
func (fs *FS) Write(path string, off int64, data []byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	start, cpu0 := fs.opStart()
	return fs.endOp("write", path, start, cpu0, fs.write(path, off, data))
}

// write is Write without the lock, span, or error wrapping.
func (fs *FS) write(path string, off int64, data []byte) error {
	if err := fs.checkMounted(); err != nil {
		return err
	}
	fs.cpu.Charge(fs.cfg.Costs.Syscall)
	in, err := fs.lookupFile(path)
	if err != nil {
		return err
	}
	if off < 0 {
		return fmt.Errorf("%w: negative offset %d", vfs.ErrInvalid, off)
	}
	end := off + int64(len(data))
	if end > fs.maxFileSize() {
		return fmt.Errorf("%w: %q to %d bytes", vfs.ErrTooLarge, path, end)
	}
	if grow := end - int64(in.Size); grow > 0 {
		if err := fs.admitBytes(grow + int64(fs.cfg.BlockSize)); err != nil {
			return err
		}
	}
	if err := fs.writeFile(in, off, data); err != nil {
		return err
	}
	fs.stats.UserBytesWritten += int64(len(data))
	in.Mtime = int64(fs.clock.Now())
	fs.markInodeDirty(in.Ino)
	return fs.epilogue()
}

// Read fills buf from off. Access time is recorded in the inode map
// (footnote 2), so reading never relocates the inode.
func (fs *FS) Read(path string, off int64, buf []byte) (int, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	start, cpu0 := fs.opStart()
	n, err := fs.read(path, off, buf)
	return n, fs.endOp("read", path, start, cpu0, err)
}

// read is Read without the lock, span, or error wrapping.
func (fs *FS) read(path string, off int64, buf []byte) (int, error) {
	if err := fs.checkMounted(); err != nil {
		return 0, err
	}
	fs.cpu.Charge(fs.cfg.Costs.Syscall)
	in, err := fs.lookupFile(path)
	if err != nil {
		return 0, err
	}
	if off < 0 {
		return 0, fmt.Errorf("%w: negative offset %d", vfs.ErrInvalid, off)
	}
	n, err := fs.readFile(in, off, buf)
	if err != nil {
		return n, err
	}
	e := fs.imap.get(in.Ino)
	e.Atime = fs.clock.Now()
	fs.imap.markDirty(in.Ino)
	if err := fs.epilogue(); err != nil {
		return n, err
	}
	return n, nil
}

// Stat describes the file at path.
func (fs *FS) Stat(path string) (vfs.FileInfo, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	start, cpu0 := fs.opStart()
	fi, err := fs.stat(path)
	return fi, fs.endOp("stat", path, start, cpu0, err)
}

// stat is Stat without the lock, span, or error wrapping.
func (fs *FS) stat(path string) (vfs.FileInfo, error) {
	if err := fs.checkMounted(); err != nil {
		return vfs.FileInfo{}, err
	}
	fs.cpu.Charge(fs.cfg.Costs.Syscall)
	parts, err := vfs.SplitPath(path)
	if err != nil {
		return vfs.FileInfo{}, err
	}
	in, err := fs.resolve(parts)
	if err != nil {
		return vfs.FileInfo{}, err
	}
	fi := vfs.FileInfo{
		Ino:   in.Ino,
		Mode:  in.Mode,
		Nlink: int(in.Nlink),
		Mtime: sim.Time(in.Mtime),
		Atime: fs.imap.get(in.Ino).Atime,
	}
	if !in.Mode.IsDir() {
		fi.Size = int64(in.Size)
	}
	return fi, nil
}

// ReadDir lists the directory in name order.
func (fs *FS) ReadDir(path string) ([]layout.DirEntry, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	start, cpu0 := fs.opStart()
	ents, err := fs.readDir(path)
	return ents, fs.endOp("readdir", path, start, cpu0, err)
}

// readDir is ReadDir without the lock, span, or error wrapping.
func (fs *FS) readDir(path string) ([]layout.DirEntry, error) {
	if err := fs.checkMounted(); err != nil {
		return nil, err
	}
	fs.cpu.Charge(fs.cfg.Costs.Syscall)
	parts, err := vfs.SplitPath(path)
	if err != nil {
		return nil, err
	}
	dir, err := fs.resolveDir(parts)
	if err != nil {
		return nil, err
	}
	return fs.dirEntries(dir)
}

// Remove unlinks a file or removes an empty directory — again with no
// synchronous I/O; the freed blocks become dead in the usage array
// and the version bump lets the cleaner discard them cheaply.
func (fs *FS) Remove(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	start, cpu0 := fs.opStart()
	return fs.endOp("remove", path, start, cpu0, fs.remove(path))
}

// remove is Remove without the lock, span, or error wrapping.
func (fs *FS) remove(path string) error {
	if err := fs.checkMounted(); err != nil {
		return err
	}
	fs.cpu.Charge(fs.cfg.Costs.Syscall + fs.cfg.Costs.Unlink)
	dirParts, base, err := vfs.SplitDirBase(path)
	if err != nil {
		return err
	}
	parent, err := fs.resolveDir(dirParts)
	if err != nil {
		return err
	}
	ino, found, err := fs.dirLookup(parent, base)
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("%w: %q", vfs.ErrNotExist, path)
	}
	in, err := fs.getInode(ino)
	if err != nil {
		return err
	}
	if in.Mode.IsDir() {
		empty, err := fs.dirEmpty(in)
		if err != nil {
			return err
		}
		if !empty {
			return fmt.Errorf("%w: %q", vfs.ErrNotEmpty, path)
		}
	}
	if err := fs.dirRemove(parent, base); err != nil {
		return err
	}
	if in.Mode.IsDir() {
		fs.forgetDir(ino)
	}
	// With other hard links remaining, only the link count drops;
	// the storage dies with the last name (when the version bump in
	// imap.free lets the cleaner discard the blocks).
	if !in.Mode.IsDir() && in.Nlink > 1 {
		in.Nlink--
		fs.markInodeDirty(ino)
	} else {
		if err := fs.removeFileBlocks(in); err != nil {
			return err
		}
		fs.killBlock(fs.imap.get(ino).Addr, layout.InodeSize)
		fs.dropInode(ino)
		fs.imap.free(ino)
	}
	parent.Mtime = int64(fs.clock.Now())
	fs.markInodeDirty(parent.Ino)
	return fs.epilogue()
}

// Link creates a second directory entry for an existing regular
// file — like everything else in LFS, with no synchronous I/O: the
// dirtied directory block and inode ride the next segment write.
func (fs *FS) Link(oldPath, newPath string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	start, cpu0 := fs.opStart()
	return fs.endOp("link", oldPath, start, cpu0, fs.link(oldPath, newPath))
}

// link is Link without the lock, span, or error wrapping.
func (fs *FS) link(oldPath, newPath string) error {
	if err := fs.checkMounted(); err != nil {
		return err
	}
	fs.cpu.Charge(fs.cfg.Costs.Syscall + fs.cfg.Costs.Create)
	in, err := fs.lookupFile(oldPath) // rejects directories
	if err != nil {
		return err
	}
	newDirParts, newBase, err := vfs.SplitDirBase(newPath)
	if err != nil {
		return err
	}
	newParent, err := fs.resolveDir(newDirParts)
	if err != nil {
		return err
	}
	if _, exists, err := fs.dirLookup(newParent, newBase); err != nil {
		return err
	} else if exists {
		return fmt.Errorf("%w: %q", vfs.ErrExist, newPath)
	}
	if err := fs.dirInsert(newParent, newBase, in.Ino); err != nil {
		return err
	}
	in.Nlink++
	fs.markInodeDirty(in.Ino)
	newParent.Mtime = int64(fs.clock.Now())
	fs.markInodeDirty(newParent.Ino)
	return fs.epilogue()
}

// Rename moves oldPath to newPath.
func (fs *FS) Rename(oldPath, newPath string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	start, cpu0 := fs.opStart()
	return fs.endOp("rename", oldPath, start, cpu0, fs.rename(oldPath, newPath))
}

// rename is Rename without the lock, span, or error wrapping.
func (fs *FS) rename(oldPath, newPath string) error {
	if err := fs.checkMounted(); err != nil {
		return err
	}
	fs.cpu.Charge(fs.cfg.Costs.Syscall)
	oldDirParts, oldBase, err := vfs.SplitDirBase(oldPath)
	if err != nil {
		return err
	}
	newDirParts, newBase, err := vfs.SplitDirBase(newPath)
	if err != nil {
		return err
	}
	oldParent, err := fs.resolveDir(oldDirParts)
	if err != nil {
		return err
	}
	ino, found, err := fs.dirLookup(oldParent, oldBase)
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("%w: %q", vfs.ErrNotExist, oldPath)
	}
	in, err := fs.getInode(ino)
	if err != nil {
		return err
	}
	if in.Mode.IsDir() && len(newPath) > len(oldPath) && newPath[:len(oldPath)+1] == oldPath+"/" {
		return fmt.Errorf("%w: cannot move %q inside itself", vfs.ErrInvalid, oldPath)
	}
	newParent, err := fs.resolveDir(newDirParts)
	if err != nil {
		return err
	}
	if _, exists, err := fs.dirLookup(newParent, newBase); err != nil {
		return err
	} else if exists {
		return fmt.Errorf("%w: %q", vfs.ErrExist, newPath)
	}
	if err := fs.dirInsert(newParent, newBase, ino); err != nil {
		return err
	}
	if err := fs.dirRemove(oldParent, oldBase); err != nil {
		return err
	}
	now := int64(fs.clock.Now())
	oldParent.Mtime = now
	newParent.Mtime = now
	fs.markInodeDirty(oldParent.Ino)
	fs.markInodeDirty(newParent.Ino)
	return fs.epilogue()
}

// Truncate sets the file length. Truncation to zero bumps the file's
// version in the inode map (§4.2.1).
func (fs *FS) Truncate(path string, size int64) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	start, cpu0 := fs.opStart()
	return fs.endOp("truncate", path, start, cpu0, fs.truncate(path, size))
}

// truncate is Truncate without the lock, span, or error wrapping.
func (fs *FS) truncate(path string, size int64) error {
	if err := fs.checkMounted(); err != nil {
		return err
	}
	fs.cpu.Charge(fs.cfg.Costs.Syscall)
	in, err := fs.lookupFile(path)
	if err != nil {
		return err
	}
	if size < 0 {
		return fmt.Errorf("%w: negative size %d", vfs.ErrInvalid, size)
	}
	if size > fs.maxFileSize() {
		return fmt.Errorf("%w: %q to %d bytes", vfs.ErrTooLarge, path, size)
	}
	if grow := size - int64(in.Size); grow > 0 {
		if err := fs.admitBytes(grow); err != nil {
			return err
		}
	}
	wasNonEmpty := in.Size > 0
	if err := fs.truncateFile(in, size); err != nil {
		return err
	}
	if size == 0 && wasNonEmpty {
		fs.imap.bumpVersion(in.Ino)
		in.Gen = fs.imap.get(in.Ino).Version
	}
	in.Mtime = int64(fs.clock.Now())
	fs.markInodeDirty(in.Ino)
	return fs.epilogue()
}

// FsyncFile forces one file's data and metadata to the log and waits
// for the disk — the fsync half of §4.3.5's "sync request" trigger.
// Like UNIX fsync it does not force the parent directory's entry; use
// Sync (or fsync the directory's path) for that.
func (fs *FS) FsyncFile(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	start, cpu0 := fs.opStart()
	return fs.endOp("fsync", path, start, cpu0, fs.fsyncFile(path))
}

// fsyncFile is FsyncFile without the lock, span, or error wrapping.
func (fs *FS) fsyncFile(path string) error {
	if err := fs.checkMounted(); err != nil {
		return err
	}
	fs.cpu.Charge(fs.cfg.Costs.Syscall)
	parts, err := vfs.SplitPath(path)
	if err != nil {
		return err
	}
	in, err := fs.resolve(parts)
	if err != nil {
		return err
	}
	ino := in.Ino
	if fs.cfg.GroupCommit {
		return fs.groupFsync(ino)
	}
	// Data blocks of this file only.
	var data []*cache.Block
	for _, b := range fs.bc.DirtyBlocks() {
		if b.Key.Kind == cache.KindFile && b.Key.Ino == ino {
			data = append(data, b)
		}
	}
	if err := fs.writeDataBatch(data); err != nil {
		return err
	}
	// Its indirect blocks, innermost first.
	for _, pass := range []func(int64) bool{
		func(id int64) bool { return id >= indDoubleInnerBase },
		func(id int64) bool { return id == indDoubleOuter },
		func(id int64) bool { return id == indSingle },
	} {
		var batch []*cache.Block
		for _, b := range fs.bc.DirtyBlocks() {
			if b.Key.Kind == cache.KindIndirect && b.Key.Ino == ino && pass(b.Key.Off) {
				batch = append(batch, b)
			}
		}
		if err := fs.writeIndirectBatch(batch); err != nil {
			return err
		}
	}
	// Its inode, if dirty.
	if fs.dirtyInodes[ino] {
		if err := fs.writeInodeBatchFor([]layout.Ino{ino}); err != nil {
			return err
		}
	}
	if err := fs.flushPendingIO(); err != nil {
		return err
	}
	fs.drainAs(obs.PhaseCommitWait)
	return nil
}

// groupFsync is the Config.GroupCommit sync path: if the file still
// has dirty state, flush everything dirty in one log transfer (the
// group commit — every other client's pending data rides it); if an
// earlier group commit already carried this file's data, there is
// nothing to write and the sync merely waits for the disk (it
// piggybacks). With N clients interleaving writes and fsyncs, one
// segment transfer satisfies up to N sync requests, which is where
// multi-client throughput scaling comes from.
func (fs *FS) groupFsync(ino layout.Ino) error {
	if !fs.fileDirty(ino) {
		fs.stats.PiggybackedSyncs++
		// Whatever dispatch gap this fsync paid before it could run
		// was time parked behind the group commit that carried its
		// data — the follower's wait, not generic serialization — so
		// the pre-op lock_wait credit moves to piggyback_wait. (In the
		// event-driven sim the leader's drain advances the clock past
		// the transfer's end, so the drain below is usually free and
		// the dispatch gap holds the whole wait.)
		fs.phases.Reclassify(obs.PhaseLockWait, obs.PhasePiggybackWait)
		fs.drainAs(obs.PhasePiggybackWait)
		return nil
	}
	fs.stats.GroupCommits++
	if err := fs.flush(flushAll); err != nil {
		return err
	}
	fs.drainAs(obs.PhaseCommitWait)
	return nil
}

// fileDirty reports whether the file has any state not yet written to
// the log: dirty data or indirect blocks, or a dirty inode.
func (fs *FS) fileDirty(ino layout.Ino) bool {
	if fs.dirtyInodes[ino] {
		return true
	}
	for _, b := range fs.bc.DirtyBlocks() {
		if b.Key.Ino != ino {
			continue
		}
		if b.Key.Kind == cache.KindFile || b.Key.Kind == cache.KindIndirect {
			return true
		}
	}
	return false
}

// FlushAsync issues everything dirty to the log as asynchronous
// segment writes and returns without waiting for the disk. It is the
// cross-shard group-commit hook: when one shard of a sharded
// multi-log system must sync, the router calls FlushAsync on every
// other shard first, so all disks transfer in overlapping simulated
// time and each shard's own fsync then finds its data already in
// flight (it piggybacks). A clean file system returns immediately
// without charging CPU, so the broadcast costs nothing on idle
// shards. No operation span is recorded; the issued writes carry
// their usual log-append causes.
func (fs *FS) FlushAsync() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.checkMounted(); err != nil {
		return vfs.WrapPathError("flush", "/", err)
	}
	if len(fs.dirtyInodes) == 0 && len(fs.bc.DirtyBlocks()) == 0 {
		return nil
	}
	fs.cpu.Charge(fs.cfg.Costs.Syscall)
	return vfs.WrapPathError("flush", "/", fs.flush(flushAll))
}

// Sync forces a segment write of everything dirty and waits for the
// disk (§4.3.5 "sync request").
func (fs *FS) Sync() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	start, cpu0 := fs.opStart()
	return fs.endOp("sync", "/", start, cpu0, fs.sync())
}

// sync is Sync without the lock, span, or error wrapping.
func (fs *FS) sync() error {
	if err := fs.checkMounted(); err != nil {
		return err
	}
	fs.cpu.Charge(fs.cfg.Costs.Syscall)
	if err := fs.flush(flushAll); err != nil {
		return err
	}
	fs.drainAs(obs.PhaseCommitWait)
	return nil
}

// Unmount checkpoints and detaches; remounting is then instantaneous.
func (fs *FS) Unmount() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	start, cpu0 := fs.opStart()
	return fs.endOp("unmount", "/", start, cpu0, fs.unmount())
}

// unmount is Unmount without the lock, span, or error wrapping.
func (fs *FS) unmount() error {
	if err := fs.checkMounted(); err != nil {
		return err
	}
	if err := fs.checkpoint(); err != nil {
		return err
	}
	fs.drainAs(obs.PhaseCommitWait)
	fs.unmounted = true
	return nil
}
