package core

// Regression tests for the recovery and cleaner-accounting bugs found
// by code review and the crash-point harness (internal/fstest).

import (
	"bytes"
	"testing"

	"lfs/internal/disk"
	"lfs/internal/layout"
)

// TestDecodeCheckpointTruncated: header fields used to be read before
// any length check, so a checkpoint region shorter than the header
// (a truncated image fed to lfsck/lfsdump) panicked instead of
// returning an error.
func TestDecodeCheckpointTruncated(t *testing.T) {
	for _, n := range []int{0, 1, 3, 4, 20, ckptHeaderSize - 1} {
		if _, err := decodeCheckpoint(make([]byte, n)); err == nil {
			t.Errorf("decodeCheckpoint accepted a %d-byte region", n)
		}
	}
}

// TestDecodeSuperblockTruncated: same guard for the superblock
// decoder, which read the magic and checksum words unconditionally.
func TestDecodeSuperblockTruncated(t *testing.T) {
	for _, n := range []int{0, 3, 59, 63} {
		if _, err := decodeSuperblock(make([]byte, n)); err == nil {
			t.Errorf("decodeSuperblock accepted a %d-byte buffer", n)
		}
	}
}

// fragmentedFS builds a volume with several partially-live dirty
// segments: many small files, every other one removed, all flushed.
func fragmentedFS(t *testing.T) *FS {
	t.Helper()
	cfg := smallConfig()
	cfg.SegmentSize = 64 << 10
	cfg.CacheBlocks = 64
	cfg.MaxInodes = 512
	fs := newTestFS(t, 8<<20, cfg)
	for i := 0; i < 40; i++ {
		p := pathOf(i)
		if err := fs.Create(p); err != nil {
			t.Fatal(err)
		}
		if err := fs.Write(p, 0, bytes.Repeat([]byte{byte(i)}, 8192)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i += 2 {
		if err := fs.Remove(pathOf(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	return fs
}

func pathOf(i int) string {
	return "/f" + string(rune('a'+i/26)) + string(rune('a'+i%26))
}

// TestCleanerBytesReclaimedNet pins the cleaner's net-space
// accounting: the run total must be exactly segments reclaimed minus
// the space the relocated live blocks consume at the head, clamped at
// zero only as a whole. The old code clamped each victim separately,
// silently dropping negative nets and overstating the total.
func TestCleanerBytesReclaimedNet(t *testing.T) {
	fs := fragmentedFS(t)
	before := fs.stats.CleanerBytesReclaimed
	res, err := fs.CleanUntil(fs.CleanSegments() + 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.SegmentsCleaned == 0 {
		t.Fatal("cleaner found nothing to clean; test setup is wrong")
	}
	want := int64(res.SegmentsCleaned)*int64(fs.sb.SegmentSize) -
		int64(res.LiveCopied)*int64(fs.cfg.BlockSize)
	if res.BytesReclaimed != want {
		t.Errorf("BytesReclaimed = %d, want signed net %d", res.BytesReclaimed, want)
	}
	if got := fs.stats.CleanerBytesReclaimed - before; got != res.BytesReclaimed {
		t.Errorf("stats accumulated %d, result says %d", got, res.BytesReclaimed)
	}
}

// TestReclaimedSegmentPendingUntilCheckpoint: a reclaimed segment must
// not become reusable before a checkpoint records the relocation of
// its live blocks. The old code marked victims clean immediately, so
// later writes in the same cleaner run could overwrite blocks that
// the only durable checkpoint still referenced — a crash then
// resurrected garbage (found by the crash-point sweep as corrupted
// root inodes from one crash point onward).
func TestReclaimedSegmentPendingUntilCheckpoint(t *testing.T) {
	fs := fragmentedFS(t)
	victim, ok := fs.selectVictim(nil)
	if !ok {
		t.Fatal("no victim on a fragmented volume")
	}
	cleanBefore := fs.cleanCount
	coldOpenBefore := fs.heads[classCold].open
	fs.cleaning = true
	_, err := fs.cleanSegment(victim)
	fs.cleaning = false
	if err != nil {
		t.Fatal(err)
	}
	// Relocating the victim's live blocks may lazily open the cold
	// head, which legitimately activates (consumes) one clean segment;
	// the victim itself must still not count as clean yet.
	opened := 0
	if !coldOpenBefore && fs.heads[classCold].open {
		opened = 1
	}
	if st := fs.usage[victim].State; st != segPending {
		t.Fatalf("victim state = %d after cleaning, want segPending (%d)", st, segPending)
	}
	if fs.pendingClean != 1 {
		t.Fatalf("pendingClean = %d, want 1", fs.pendingClean)
	}
	if fs.cleanCount != cleanBefore-opened {
		t.Fatalf("cleanCount moved from %d to %d before the checkpoint (cold head opened: %d)",
			cleanBefore, fs.cleanCount, opened)
	}
	if err := fs.checkpoint(); err != nil {
		t.Fatal(err)
	}
	if st := fs.usage[victim].State; st != segClean {
		t.Fatalf("victim state = %d after checkpoint, want segClean", st)
	}
	if fs.pendingClean != 0 {
		t.Fatalf("pendingClean = %d after checkpoint, want 0", fs.pendingClean)
	}
	if fs.cleanCount != cleanBefore-opened+1 {
		t.Fatalf("cleanCount = %d after checkpoint, want %d", fs.cleanCount, cleanBefore-opened+1)
	}
}

// TestReviveBlockInodeErrorKeepsLiveness: when reviving an inode block
// fails partway (getInode error on a later slot), earlier slots were
// already marked dirty, so the liveness found so far must be reported
// with the error instead of discarded — otherwise the caller's copy
// accounting no longer matches the dirtied cache.
func TestReviveBlockInodeErrorKeepsLiveness(t *testing.T) {
	fs := newTestFS(t, 16<<20, smallConfig())
	if err := fs.Create("/a"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("/b"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	fiA, err := fs.Stat("/a")
	if err != nil {
		t.Fatal(err)
	}
	fiB, err := fs.Stat("/b")
	if err != nil {
		t.Fatal(err)
	}
	eA, eB := fs.imap.get(fiA.Ino), fs.imap.get(fiB.Ino)
	blockOf := func(addr layout.DiskAddr) int64 {
		seg := fs.segOf(addr)
		spb := fs.cfg.sectorsPerBlock()
		rel := int64(addr) - fs.segFirstSector(seg)
		return fs.segFirstSector(seg) + rel/spb*spb
	}
	blockStart := blockOf(eA.Addr)
	if blockOf(eB.Addr) != blockStart {
		t.Fatal("inodes landed in different blocks; test setup is wrong")
	}
	// /a must occupy an earlier slot than /b so the error hits after
	// liveness was found.
	if eA.Addr > eB.Addr || (eA.Addr == eB.Addr && eA.Slot >= eB.Slot) {
		eA, eB = eB, eA
	}
	// Snapshot the intact block — the cleaner reads the victim
	// segment before examining it.
	blk := make([]byte, fs.cfg.BlockSize)
	//lfslint:allow iocause raw-device snapshot below the FS; attribution is irrelevant here
	if err := fs.d.ReadSectors(blockStart, blk, disk.CauseOther, "test"); err != nil {
		t.Fatal(err)
	}
	// Zero /b's slot on the medium and evict both inodes so the
	// revive path must fetch them from disk; /b's fetch then fails.
	off := int64(eB.Addr)*512 + int64(eB.Slot)*int64(layout.InodeSize)
	if err := fs.d.Store().WriteAt(make([]byte, layout.InodeSize), off); err != nil {
		t.Fatal(err)
	}
	delete(fs.inodes, fiA.Ino)
	delete(fs.inodes, fiB.Ino)

	live, err := fs.reviveBlock(blockRef{Kind: kindInodes}, layout.DiskAddr(blockStart), blk, fs.clock.Now())
	if err == nil {
		t.Fatal("reviveBlock succeeded despite the corrupted slot")
	}
	if !live {
		t.Fatal("reviveBlock dropped the liveness found before the error")
	}
}

// TestRollForwardRejectsStaleEpochUnit: a unit whose serial matches
// the checkpoint's expectation but whose timestamp predates the
// checkpoint is a leftover from an earlier log epoch (or a forgery)
// and must not be replayed. Without the timestamp filter the crafted
// unit below redirects a live file's inode to garbage.
func TestRollForwardRejectsStaleEpochUnit(t *testing.T) {
	fs := newTestFS(t, 16<<20, smallConfig())
	content := bytes.Repeat([]byte{0xAB}, 4096)
	if err := fs.Create("/f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Write("/f", 0, content); err != nil {
		t.Fatal(err)
	}
	if err := fs.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	fi, err := fs.Stat("/f")
	if err != nil {
		t.Fatal(err)
	}
	bs := fs.cfg.BlockSize
	headSector := fs.blockSector(fs.heads[classHot].seg, fs.heads[classHot].blk)
	serial := fs.writeSerial
	d := fs.d
	fs.Crash()

	// Craft a valid-looking unit at the head: expected serial, intact
	// checksums, but a timestamp of zero — before the checkpoint was
	// taken. Its payload is an inode block that would redirect /f to
	// an empty inode if replayed.
	forged := layout.NewInode(fi.Ino, layout.ModeFile|0o644)
	inodeBlk := make([]byte, bs)
	forged.Encode(inodeBlk)
	h := summaryHeader{
		Serial:    serial,
		NBlocks:   1,
		SumBlocks: 1,
		Timestamp: 0,
		DataCRC:   layout.DataChecksum(inodeBlk),
	}
	unit := make([]byte, 2*bs)
	encodeSummary(h, []blockRef{{Kind: kindInodes}}, unit[:bs])
	copy(unit[bs:], inodeBlk)
	//lfslint:allow iocause raw-device forgery of a stale log unit; attribution is irrelevant here
	if err := d.WriteSectors(headSector, unit, true, disk.CauseOther, "test: stale unit"); err != nil {
		t.Fatal(err)
	}

	fs2, err := Mount(d, fs.cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n := fs2.Stats().RollForwardUnits; n != 0 {
		t.Fatalf("roll-forward replayed %d stale unit(s)", n)
	}
	got := make([]byte, len(content))
	if _, err := fs2.Read("/f", 0, got); err != nil {
		t.Fatalf("reading /f after recovery: %v", err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("/f lost its checkpointed content")
	}
}
