package core

import (
	"fmt"
	"sync"

	"lfs/internal/cache"
	"lfs/internal/disk"
	"lfs/internal/layout"
	"lfs/internal/obs"
	"lfs/internal/sim"
	"lfs/internal/vfs"
)

// Stats counts LFS-internal activity for experiments and tools.
type Stats struct {
	// UnitsWritten counts log write units (partial segments).
	UnitsWritten int64
	// BlocksWritten counts blocks written through the log,
	// including summary blocks.
	BlocksWritten int64
	// SegmentsSealed counts segments filled and retired from the
	// active position.
	SegmentsSealed int64
	// Checkpoints counts checkpoint-region writes.
	Checkpoints int64
	// CleanerRuns counts cleaner activations.
	CleanerRuns int64
	// SegmentsCleaned counts segments reclaimed by the cleaner.
	SegmentsCleaned int64
	// CleanerBlocksExamined counts blocks whose liveness the
	// cleaner checked.
	CleanerBlocksExamined int64
	// CleanerLiveCopied counts live blocks the cleaner rewrote.
	CleanerLiveCopied int64
	// CleanerBytesReclaimed counts clean bytes generated.
	CleanerBytesReclaimed int64
	// RollForwardUnits counts log units recovered at mount.
	RollForwardUnits int64
	// UserBytesWritten counts bytes written through the Write API;
	// comparing it with BlocksWritten gives the log's write
	// amplification (metadata, summaries, and cleaner copies).
	UserBytesWritten int64
	// GroupCommits counts fsyncs that flushed the dirty set on behalf
	// of every waiting client (Config.GroupCommit).
	GroupCommits int64
	// PiggybackedSyncs counts fsyncs that found their file already
	// clean — their data rode an earlier group commit — and only
	// waited for the disk.
	PiggybackedSyncs int64
}

// WriteAmplification returns total log bytes written per user byte,
// given the block size; zero when nothing was written.
func (s Stats) WriteAmplification(blockSize int) float64 {
	if s.UserBytesWritten == 0 {
		return 0
	}
	return float64(s.BlocksWritten*int64(blockSize)) / float64(s.UserBytesWritten)
}

// FS is a mounted LFS instance implementing vfs.FileSystem. It is
// safe for concurrent use: a single mutex serialises all operations,
// which also matches the single-system-image timeline of the
// simulated clock (concurrent callers' operations interleave at
// operation granularity on one clock).
type FS struct {
	// mu serialises all operations. Fields documented "guarded by
	// mu" are enforced by lfslint's lockcheck pass: exported methods
	// must lock, unexported helpers run with the lock already held.
	mu sync.Mutex
	// d, cfg, sb, clock, cpu, and bc are set at mount and immutable
	// thereafter (the structures they point to do their own
	// serialisation under fs.mu).
	d   *disk.Disk
	cfg Config
	sb  superblock

	clock *sim.Clock
	cpu   *sim.CPU
	bc    *cache.Cache

	// imap is the inode map; guarded by mu.
	imap *imapTable
	// usage tracks per-segment live bytes and state; guarded by mu.
	usage []segUsage

	// inodes is the in-core inode table; dirtyInodes queues inodes
	// for the next segment write. Both guarded by mu.
	inodes      map[layout.Ino]*layout.Inode
	dirtyInodes map[layout.Ino]bool

	// names is the directory name cache (the UNIX namei cache both
	// SunOS and Sprite relied on): per directory, name → (child
	// inode, directory block holding the entry). Without it,
	// directory operations scan blocks linearly and the paper's
	// 10000-files-in-one-directory workload turns quadratic.
	// Guarded by mu.
	names map[layout.Ino]map[string]nameEntry
	// insertHint remembers, per directory, the first data block
	// that may have room for a new entry. Guarded by mu.
	insertHint map[layout.Ino]int64
	// lastRead tracks each file's last-read block for sequential
	// read-ahead detection. Guarded by mu.
	lastRead map[layout.Ino]int64

	// heads are the active log positions, one per write class: the
	// hot head takes fresh application writes and metadata, the cold
	// head cleaner-relocated blocks (when Config.Segregation is on).
	// The hot head is always open; the cold head opens lazily on the
	// first relocation and closes if the log runs out of segments for
	// it. Guarded by mu.
	heads [numClasses]logHead

	// coldAges marks cache blocks revived by the current cleaner pass
	// as relocations (nil outside a pass), each mapped to its victim
	// segment's data age: the segment writer routes them to the cold
	// head and credits them with that age rather than the current
	// time. Guarded by mu.
	coldAges map[cache.Key]sim.Time

	// writeSerial numbers log units; ckptSerial numbers
	// checkpoints. Guarded by mu.
	writeSerial uint64
	ckptSerial  uint64
	lastCkpt    sim.Time

	// liveBytes is the total live-data estimate across segments;
	// cleanCount the number of clean segments. Guarded by mu.
	liveBytes  int64
	cleanCount int
	// pendingClean counts segPending segments: reclaimed by the
	// cleaner, reusable only after the next checkpoint. Guarded by
	// mu.
	pendingClean int

	// cleaning and unmounted are lifecycle flags; guarded by mu.
	cleaning  bool
	unmounted bool

	// stats holds the internal counters; guarded by mu.
	stats Stats

	// client labels spans and disk events with the issuing client's
	// ID in multi-client runs (0 = unattributed). Guarded by mu.
	client int

	// shard labels spans and disk events with this instance's 1-based
	// shard ID when it serves as one log of a sharded multi-log
	// system (0 = unsharded). Guarded by mu.
	shard int

	// rec is the attached trace recorder (cfg.Trace); nil when
	// tracing is disabled. The recorder has its own lock, so spans
	// recorded under fs.mu never deadlock with concurrent readers.
	rec *obs.Recorder

	// samp is the attached metrics sampler (cfg.Metrics); nil when
	// the metrics plane is disabled. Its registered probes read
	// fs state directly, so sampling happens only with mu held.
	samp *obs.Sampler
	// opsDone/opsErr/opLat feed the sampler's throughput and latency
	// series; maintained only when samp is non-nil. Guarded by mu.
	opsDone int64
	opsErr  int64
	opLat   obs.Histogram

	// phases accumulates the running operation's latency attribution:
	// disk waits arrive through the disk.Waiter hook, drains and the
	// cleaner bracket their own clock deltas, and opStart folds in
	// pendingWait. Reset at operation entry; guarded by mu.
	phases obs.PhaseAccum
	// pendingWait holds wait attributed to the *next* operation
	// before it enters the FS — scheduler dispatch gaps and
	// cross-shard fan-out noted via NoteWait. opStart backdates the
	// span's start by the pending total, keeping the exactness
	// invariant: the time really elapsed, just before the call.
	// Guarded by mu.
	pendingWait [obs.NumPhaseKinds]sim.Duration
	// fsyncPhase feeds the per-phase fsync latency series
	// (op.fsync.phase.*); maintained only when samp is non-nil.
	// Guarded by mu.
	fsyncPhase [obs.NumPhaseKinds]obs.Histogram
}

// newSkeleton builds an FS with empty state: every segment clean, an
// empty imap, the log positioned at segment 0.
func newSkeleton(d *disk.Disk, cfg Config, sb superblock) *FS {
	fs := &FS{
		d:           d,
		cfg:         cfg,
		sb:          sb,
		clock:       d.Clock(),
		cpu:         sim.NewCPU(cfg.MIPS, d.Clock()),
		bc:          cache.New(cfg.CacheBlocks, cfg.BlockSize),
		imap:        newImap(cfg.MaxInodes, cfg.BlockSize),
		usage:       make([]segUsage, sb.Segments),
		inodes:      make(map[layout.Ino]*layout.Inode),
		dirtyInodes: make(map[layout.Ino]bool),
		names:       make(map[layout.Ino]map[string]nameEntry),
		insertHint:  make(map[layout.Ino]int64),
		lastRead:    make(map[layout.Ino]int64),
		writeSerial: 1,
		rec:         cfg.Trace,
		samp:        cfg.Metrics,
		opLat:       obs.NewLatencyHistogram(),
	}
	for c := range fs.heads {
		fs.heads[c].buf = make([]byte, cfg.SegmentSize)
	}
	fs.heads[classHot].open = true
	fs.usage[0].State = segActive
	fs.cleanCount = int(sb.Segments) - 1
	for k := range fs.fsyncPhase {
		fs.fsyncPhase[k] = obs.NewLatencyHistogram()
	}
	return fs
}

// diskWaiter adapts FS to disk.Waiter. DiskWait is invoked from
// inside the FS's own disk calls, which only ever happen with fs.mu
// held, so it reads guarded state directly without locking (the
// adapter type keeps it off the FS method set lockcheck audits).
type diskWaiter struct{ fs *FS }

// DiskWait attributes a blocking request's queue wait and service
// time to the running operation's phases. Requests issued while the
// cleaner runs are skipped: the cleaner bracket in cleanUntil
// attributes its whole clock delta as PhaseCleaner, reads, writes,
// and mid-run checkpoints included.
func (w diskWaiter) DiskWait(cause disk.IOCause, queue, service sim.Duration) {
	if w.fs.cleaning {
		return
	}
	w.fs.phases.Add(obs.PhaseQueueWait, queue)
	w.fs.phases.AddService(cause, service)
}

// NoteWait credits the next operation with wait time that elapsed
// before it entered the FS: the multi-client server notes scheduler
// dispatch gaps (PhaseLockWait), the shard router its fan-out
// broadcasts (PhaseFanout). The next span's start is backdated by the
// noted total, so its phase list still sums to its latency exactly.
func (fs *FS) NoteWait(kind obs.PhaseKind, d sim.Duration) {
	if d <= 0 || kind >= obs.NumPhaseKinds {
		return
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.pendingWait[kind] += d
}

// Disk returns the underlying device for experiment instrumentation.
func (fs *FS) Disk() *disk.Disk { return fs.d }

// SetClient labels subsequent operations (their spans and the disk
// events they cause) with the issuing client's ID; the multi-client
// server sets it before each operation it dispatches. Zero restores
// unattributed traffic.
func (fs *FS) SetClient(id int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.client = id
	fs.d.SetClient(id)
}

// SetShard labels this instance's spans and disk events with its
// 1-based shard ID; the shard router sets it once per shard at mount
// so sharded traces and per-cause busy time decompose per log. Zero
// restores unsharded labelling.
func (fs *FS) SetShard(id int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.shard = id
	fs.d.SetShard(id)
}

// Clock returns the simulated clock.
func (fs *FS) Clock() *sim.Clock { return fs.clock }

// Stats returns a snapshot of internal counters.
func (fs *FS) Stats() Stats {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.stats
}

// StatsSnapshot is a consistent copy of every statistics surface of a
// mounted FS — log counters, disk, cache, CPU, cleaner state, and the
// aggregated trace — taken atomically under the FS lock. Prefer it
// over reading the individual accessors: those each lock separately,
// so a workload running between two reads skews derived ratios.
type StatsSnapshot struct {
	// Time is the simulated time of the snapshot.
	Time sim.Time
	// Log holds the LFS-internal counters.
	Log Stats
	// Disk holds the device counters, including the busy-time
	// decomposition by I/O cause.
	Disk disk.Stats
	// Cache holds the file cache counters.
	Cache cache.Stats
	// CPUInstructions is the total simulated instructions charged.
	CPUInstructions int64
	// CleanSegments is the number of clean segments.
	CleanSegments int
	// LiveBytes is the live-data estimate.
	LiveBytes int64
	// SegmentSize and BlockSize record the geometry the counters are
	// denominated in, so derived quantities (WriteCost) need no
	// config in hand.
	SegmentSize int
	BlockSize   int
	// Trace is the aggregated trace when a recorder is attached, nil
	// otherwise.
	Trace *obs.Aggregates
}

// WriteCost returns the paper's cleaning cost derived from the
// snapshot counters: (read + copied + new)/new over all cleaner
// activity, where every cleaned segment was read whole and new space
// is what remained after the live data was copied out. Zero when the
// cleaner has not run (no cleaning means no cleaning overhead) or
// generated no new space.
func (s StatsSnapshot) WriteCost() float64 {
	read := s.Log.SegmentsCleaned * int64(s.SegmentSize)
	copied := s.Log.CleanerLiveCopied * int64(s.BlockSize)
	fresh := read - copied
	if fresh <= 0 {
		return 0
	}
	return float64(read+copied+fresh) / float64(fresh)
}

// StatsSnapshot atomically captures all statistics surfaces.
func (fs *FS) StatsSnapshot() StatsSnapshot {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return StatsSnapshot{
		Time:            fs.clock.Now(),
		Log:             fs.stats,
		Disk:            fs.d.Stats(),
		Cache:           fs.bc.Stats(),
		CPUInstructions: fs.cpu.Instructions(),
		CleanSegments:   fs.cleanCount,
		LiveBytes:       fs.liveBytes,
		SegmentSize:     int(fs.sb.SegmentSize),
		BlockSize:       fs.cfg.BlockSize,
		Trace:           fs.rec.Aggregates(),
	}
}

// CacheStats returns file cache statistics.
func (fs *FS) CacheStats() cache.Stats {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.bc.Stats()
}

// CPUInstructions returns the total simulated instructions charged,
// for CPU-boundedness reporting in experiments.
func (fs *FS) CPUInstructions() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.cpu.Instructions()
}

// CacheDirtyKeys returns the keys of all dirty cached blocks, in
// dirtied order — test and tool instrumentation.
func (fs *FS) CacheDirtyKeys() []cache.Key {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	blocks := fs.bc.DirtyBlocks()
	keys := make([]cache.Key, len(blocks))
	for i, b := range blocks {
		keys[i] = b.Key
	}
	return keys
}

// CleanSegments returns the number of clean segments.
func (fs *FS) CleanSegments() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.cleanCount
}

// LiveBytes returns the live-data estimate.
func (fs *FS) LiveBytes() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.liveBytes
}

// SegmentUtilizations returns the live fraction of every non-clean,
// non-active segment — the distribution §5.3 of the paper poses as an
// open question for nonsynthetic workloads ("It is currently not
// known what the segment distribution looks like").
func (fs *FS) SegmentUtilizations() []float64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	segSize := float64(fs.sb.SegmentSize)
	var out []float64
	for i := range fs.usage {
		if fs.usage[i].State == segDirty {
			out = append(out, float64(fs.usage[i].Live)/segSize)
		}
	}
	return out
}

// Config returns the configuration the FS was mounted with.
func (fs *FS) Config() Config { return fs.cfg }

// DropCaches evicts all clean cached blocks and clean in-core inodes —
// the paper's between-phase "flush the file cache".
func (fs *FS) DropCaches() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.bc.DropClean()
	for ino := range fs.inodes {
		if !fs.dirtyInodes[ino] {
			delete(fs.inodes, ino)
		}
	}
}

// Crash simulates a machine crash: every volatile structure vanishes.
// Only what reached the disk (segments, checkpoint regions) survives;
// remounting runs crash recovery.
func (fs *FS) Crash() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.bc.Clear()
	fs.inodes = nil
	fs.dirtyInodes = nil
	fs.unmounted = true
}

// LogCapacity returns the total byte capacity of the segment area.
func (fs *FS) LogCapacity() int64 { return fs.logCapacity() }

// logCapacity returns the total byte capacity of the segment area.
func (fs *FS) logCapacity() int64 {
	return int64(fs.sb.Segments) * int64(fs.sb.SegmentSize)
}

// killBlock marks nbytes at addr dead in the usage array (the block
// was overwritten, truncated, or relocated).
func (fs *FS) killBlock(addr layout.DiskAddr, nbytes int64) {
	if addr.IsNil() {
		return
	}
	seg := fs.segOf(addr)
	if seg < 0 {
		return
	}
	// Decrement the global estimate by exactly what the segment
	// estimate loses. Clamping the two independently lets them drift
	// apart under heavy cleaning — the segment floors at zero while
	// the global keeps falling — and the global estimate feeds both
	// the admission limit and the utilization headline.
	if fs.usage[seg].Live < nbytes {
		nbytes = fs.usage[seg].Live
	}
	fs.usage[seg].Live -= nbytes
	fs.liveBytes -= nbytes
}

// creditSegment marks nbytes at the active position live, with the
// data's modified time equal to the write time (fresh data).
func (fs *FS) creditSegment(seg int, nbytes int64) {
	fs.creditSegmentAged(seg, nbytes, fs.clock.Now())
}

// creditSegmentAged marks nbytes live in seg carrying an explicit
// data age: cleaner relocations pass the victim's age so cold data
// stays old (§3.6), fresh writes pass now. The segment's Age is the
// modified time of its *youngest* data, hence the max.
func (fs *FS) creditSegmentAged(seg int, nbytes int64, age sim.Time) {
	fs.usage[seg].Live += nbytes
	fs.usage[seg].LastWrite = fs.clock.Now()
	if age > fs.usage[seg].Age {
		fs.usage[seg].Age = age
	}
	fs.liveBytes += nbytes
}

// admitBytes checks the disk-space admission limit for newBytes of
// additional live data, counting data already dirty in the cache.
func (fs *FS) admitBytes(newBytes int64) error {
	dirty := int64(fs.bc.DirtyCount()) * int64(fs.cfg.BlockSize)
	//lfslint:allow floataccum admission limit is recomputed from integers on every call; the fraction never accumulates
	limit := int64(float64(fs.logCapacity()) * fs.cfg.MaxLiveFraction)
	if fs.liveBytes+dirty+newBytes > limit {
		return fmt.Errorf("%w: live data %d + %d would exceed limit %d",
			vfs.ErrNoSpace, fs.liveBytes+dirty, newBytes, limit)
	}
	return nil
}

// epilogue runs after every operation: it triggers segment writes on
// cache pressure or write-back age (§4.3.5) and checkpoints on the
// checkpoint interval (§4.4.1).
func (fs *FS) epilogue() error {
	// "The file cache may request a segment write when it detects a
	// shortage of clean blocks": a segment write starts as soon as
	// a full segment of dirty data has accumulated. Flushing in
	// segment-sized increments keeps each flush's clean-segment
	// demand bounded (so the cleaner's reserve suffices) and keeps
	// hot clean blocks from being evicted under dirty pressure.
	dirtyBytes := int64(fs.bc.DirtyCount()) * int64(fs.cfg.BlockSize)
	if dirtyBytes >= int64(fs.cfg.SegmentSize) || fs.bc.Overfull() {
		if err := fs.flush(flushAll); err != nil {
			return err
		}
	} else if oldest, ok := fs.bc.OldestDirty(); ok && fs.clock.Now().Sub(oldest) >= fs.cfg.WritebackAge {
		if err := fs.flush(flushAll); err != nil {
			return err
		}
	}
	if fs.clock.Now().Sub(fs.lastCkpt) >= fs.cfg.CheckpointInterval {
		if err := fs.checkpoint(); err != nil {
			return err
		}
	}
	// Idle cleaning (§5.3): with nothing dirty and the disk arm
	// free, reclaim fragmented segments ahead of demand.
	if fs.cfg.CleanOnIdle && !fs.cleaning &&
		fs.bc.DirtyCount() == 0 && len(fs.dirtyInodes) == 0 &&
		fs.d.BusyUntil() <= fs.clock.Now() &&
		fs.cleanCount < fs.cfg.cleanTarget(int(fs.sb.Segments)) {
		if _, err := fs.cleanUntil(fs.cleanCount + 1); err != nil {
			return err
		}
	}
	return nil
}

// checkMounted fails operations on an unmounted FS.
func (fs *FS) checkMounted() error {
	if fs.unmounted {
		return vfs.ErrUnmounted
	}
	return nil
}
