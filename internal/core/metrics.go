package core

import (
	"lfs/internal/disk"
	"lfs/internal/obs"
)

// initMetrics binds cfg.Metrics and registers every metric the plane
// exports. The probes are closures over fs and its subsystems; they
// run from Sampler sampling calls, which only ever happen with fs.mu
// held (endOp ticks inline; TickMetrics/SampleMetricsNow lock), so
// they read lock-guarded state directly and never call the exported
// locking accessors. Every probe is a pure read: no clock, CPU, disk,
// or RNG access, so a sampling-enabled run replays the identical
// simulated timeline, statistics, and on-disk bytes (the golden
// zero-perturbation test pins this).
func (fs *FS) initMetrics() error {
	if fs.samp == nil {
		return nil
	}
	if err := fs.samp.Bind(); err != nil {
		return err
	}
	r := fs.samp.Registry()

	// Operation throughput and latency: per-interval rate plus
	// bucket-interpolated percentiles of the interval's latencies.
	r.RatedCounter("ops", func() int64 { return fs.opsDone })
	r.Counter("ops.errors", func() int64 { return fs.opsErr })
	r.QuantileHist("op.latency_s", func() obs.Histogram { return fs.opLat },
		0.5, 0.95, 0.99)

	// Fsync latency by phase: one distribution per phase kind, in
	// fixed kind order, each with a derived p95 — the series the
	// critical-path report reads (e.g. op.fsync.phase.queue_wait.p95).
	for k := obs.PhaseKind(0); k < obs.NumPhaseKinds; k++ {
		kind := k
		r.QuantileHist("op.fsync.phase."+kind.String(),
			func() obs.Histogram { return fs.fsyncPhase[kind] }, 0.95)
	}

	// Log activity.
	r.RatedCounter("log.blocks_written", func() int64 { return fs.stats.BlocksWritten })
	r.Counter("log.segments_sealed", func() int64 { return fs.stats.SegmentsSealed })
	r.Counter("log.checkpoints", func() int64 { return fs.stats.Checkpoints })
	r.RatedCounter("log.user_bytes", func() int64 { return fs.stats.UserBytesWritten })
	r.Counter("log.group_commits", func() int64 { return fs.stats.GroupCommits })
	r.Counter("log.piggybacked_syncs", func() int64 { return fs.stats.PiggybackedSyncs })

	// Segment state: free/clean counts, live data, and the
	// utilization distribution over dirty segments (§5.3's open
	// question, now a time series).
	totalSegs := int(fs.sb.Segments)
	r.Gauge("seg.clean", func() float64 { return float64(fs.cleanCount) })
	r.Gauge("seg.pending", func() float64 { return float64(fs.pendingClean) })
	r.Gauge("seg.live_bytes", func() float64 { return float64(fs.liveBytes) })
	r.Hist("seg.util", func() obs.Histogram {
		h := obs.NewUtilizationHistogram()
		segSize := float64(fs.sb.SegmentSize)
		for i := range fs.usage {
			if fs.usage[i].State == segDirty {
				h.Observe(float64(fs.usage[i].Live) / segSize)
			}
		}
		return h
	})

	// Cleaner: activations, reclaimed segments, the debt to the
	// clean-segment target, and the paper's running write cost.
	r.Counter("cleaner.runs", func() int64 { return fs.stats.CleanerRuns })
	r.Counter("cleaner.segments_cleaned", func() int64 { return fs.stats.SegmentsCleaned })
	r.Gauge("cleaner.debt_segments", func() float64 {
		debt := fs.cfg.cleanTarget(totalSegs) - fs.cleanCount
		if debt < 0 {
			debt = 0
		}
		return float64(debt)
	})
	r.Gauge("cleaner.write_cost", func() float64 {
		read := fs.stats.SegmentsCleaned * int64(fs.sb.SegmentSize)
		copied := fs.stats.CleanerLiveCopied * int64(fs.cfg.BlockSize)
		fresh := read - copied
		if fresh <= 0 {
			return 0
		}
		return float64(read+copied+fresh) / float64(fresh)
	})

	// File cache: hit ratio and dirty bytes pending write-back.
	r.Gauge("cache.hit_ratio", func() float64 { return fs.bc.Stats().HitRate() })
	r.Gauge("cache.dirty_bytes", func() float64 {
		return float64(fs.bc.DirtyCount()) * float64(fs.cfg.BlockSize)
	})

	// Disk: request counters, queue depth (instant + high-water), and
	// busy fraction, total and decomposed by cause. All through
	// PeekStats/read-only queue accessors — Disk.Stats would dispatch
	// queued writes and perturb an SSTF run.
	r.RatedCounter("disk.reads", func() int64 { return fs.d.PeekStats().Reads })
	r.RatedCounter("disk.writes", func() int64 { return fs.d.PeekStats().Writes })
	r.Gauge("disk.queue.depth", func() float64 { return float64(fs.d.QueueDepth()) })
	r.Gauge("disk.queue.max", func() float64 { return float64(fs.d.MaxQueueDepth()) })
	r.FracCounter("disk.busy_ns", func() int64 { return int64(fs.d.PeekStats().BusyTime) })
	for c := disk.IOCause(0); c < disk.NumCauses; c++ {
		cause := c
		r.FracCounter("disk.busy_ns."+cause.String(), func() int64 {
			return int64(fs.d.PeekStats().ByCause[cause].Busy)
		})
	}
	return nil
}

// Metrics returns the attached sampler (nil when the plane is
// disabled), for tools that export the series after a run.
func (fs *FS) Metrics() *obs.Sampler { return fs.samp }

// TickMetrics samples the metrics plane if the sampling interval has
// elapsed. Operations tick implicitly; the multi-client event loop
// pumps this between operations so long think-time gaps still get
// samples. A no-op without an attached sampler.
func (fs *FS) TickMetrics() {
	if fs.samp == nil {
		return
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.samp.Tick(fs.clock.Now())
}

// SampleMetricsNow forces a sample at the current simulated time
// regardless of the interval — experiments take one at run end so the
// final sample equals the end-of-run aggregates exactly. A no-op
// without an attached sampler.
func (fs *FS) SampleMetricsNow() {
	if fs.samp == nil {
		return
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.samp.SampleNow(fs.clock.Now())
}
