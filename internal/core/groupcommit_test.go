package core_test

import (
	"fmt"
	"testing"

	"lfs/internal/core"
	"lfs/internal/disk"
	"lfs/internal/obs"
)

// writeFiles creates and writes n small files, returning their paths.
func writeFiles(t *testing.T, fs *core.FS, n int) []string {
	t.Helper()
	paths := make([]string, n)
	data := make([]byte, 4096)
	for i := range paths {
		paths[i] = fmt.Sprintf("/f%02d", i)
		if err := fs.Create(paths[i]); err != nil {
			t.Fatal(err)
		}
		if err := fs.Write(paths[i], 0, data); err != nil {
			t.Fatal(err)
		}
	}
	return paths
}

// TestGroupCommitPiggyback verifies the group-commit contract: the
// first fsync of a batch flushes everyone's dirty data, and the
// remaining fsyncs piggyback (no further log writes).
func TestGroupCommitPiggyback(t *testing.T) {
	cfg := testConfig()
	cfg.GroupCommit = true
	_, fs := newPair(t, 64<<20, cfg)
	paths := writeFiles(t, fs, 8)

	before := fs.Stats()
	for _, p := range paths {
		if err := fs.FsyncFile(p); err != nil {
			t.Fatal(err)
		}
	}
	after := fs.Stats()
	if got := after.GroupCommits - before.GroupCommits; got != 1 {
		t.Errorf("group commits %d, want 1 (one flush for the whole batch)", got)
	}
	if got := after.PiggybackedSyncs - before.PiggybackedSyncs; got != 7 {
		t.Errorf("piggybacked syncs %d, want 7", got)
	}
	// The whole batch rides one flush; the unit count must not scale
	// with the number of fsyncs (flushAll may issue data and metadata
	// as separate log units, hence <= 2 rather than == 1).
	if got := after.UnitsWritten - before.UnitsWritten; got > 2 {
		t.Errorf("log units written %d, want <= 2", got)
	}

	// A dirty file fsynced after the batch starts a new group commit.
	if err := fs.Write(paths[0], 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := fs.FsyncFile(paths[0]); err != nil {
		t.Fatal(err)
	}
	if got := fs.Stats().GroupCommits - after.GroupCommits; got != 1 {
		t.Errorf("post-batch group commits %d, want 1", got)
	}
}

// TestGroupCommitCheaperThanPerFileFsync verifies group commit reduces
// total disk write traffic for the same interleaved workload: N small
// writes each followed (later) by an fsync.
func TestGroupCommitCheaperThanPerFileFsync(t *testing.T) {
	run := func(group bool) disk.Stats {
		cfg := testConfig()
		cfg.GroupCommit = group
		d, fs := newPair(t, 64<<20, cfg)
		paths := writeFiles(t, fs, 8)
		for _, p := range paths {
			if err := fs.FsyncFile(p); err != nil {
				t.Fatal(err)
			}
		}
		return d.Stats()
	}
	per := run(false)
	grp := run(true)
	if grp.Writes >= per.Writes {
		t.Errorf("group commit issued %d write requests, per-file fsync %d; want fewer", grp.Writes, per.Writes)
	}
	if grp.BusyTime >= per.BusyTime {
		t.Errorf("group commit busy %v, per-file fsync %v; want less", grp.BusyTime, per.BusyTime)
	}
}

// TestGroupCommitDurability verifies data synced through the group
// path survives a crash, including piggybacked files.
func TestGroupCommitDurability(t *testing.T) {
	cfg := testConfig()
	cfg.GroupCommit = true
	d, fs := newPair(t, 64<<20, cfg)
	paths := writeFiles(t, fs, 4)
	for _, p := range paths {
		if err := fs.FsyncFile(p); err != nil {
			t.Fatal(err)
		}
	}
	fs.Crash()
	fs2, err := core.Mount(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	for _, p := range paths {
		n, err := fs2.Read(p, 0, buf)
		if err != nil {
			t.Fatalf("after crash, read %s: %v", p, err)
		}
		if n != len(buf) {
			t.Errorf("after crash, %s has %d bytes, want %d", p, n, len(buf))
		}
	}
}

// TestClientAttributionInSpans verifies SetClient flows into spans and
// disk events.
func TestClientAttributionInSpans(t *testing.T) {
	cfg := testConfig()
	rec := obs.NewRecorder()
	cfg.Trace = rec
	_, fs := newPair(t, 64<<20, cfg)
	fs.SetClient(5)
	if err := fs.Create("/a"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	fs.SetClient(0)
	spans := rec.Spans()
	var saw bool
	for _, s := range spans {
		if s.Op == "create" && s.Client == 5 {
			saw = true
		}
	}
	if !saw {
		t.Errorf("no create span attributed to client 5: %+v", spans)
	}
	var sawIO bool
	for _, ev := range rec.Events() {
		if ev.Kind == disk.OpWrite && ev.Client == 5 {
			sawIO = true
		}
	}
	if !sawIO {
		t.Errorf("no disk write attributed to client 5")
	}
}
