// Package core implements the paper's contribution: the LFS
// log-structured storage manager. The disk is treated as a segmented
// append-only log. All modifications — file data, directories,
// indirect blocks, inodes, and inode-map blocks — accumulate in the
// file cache and are written to disk in large sequential segment
// transfers. Nothing is ever updated in place.
//
// The major data structures follow §4 of the paper:
//
//   - segments (§4.3): large fixed-size disk regions, linked into a
//     logical log, each with summary blocks identifying every block
//     it holds (§4.3.1);
//   - the inode map (§4.2.1): inode number → current inode disk
//     address, allocation state, version, and access time (footnote
//     2), partitioned into blocks cached and logged like file blocks;
//   - the segment usage array (§4.3.4): per-segment live-byte
//     estimates guiding the cleaner;
//   - the segment cleaner (§4.3.2–4.3.4): two-phase incremental GC
//     that reads fragmented segments and compacts their live blocks;
//   - checkpoints (§4.4.1): two alternating checkpoint regions from
//     which mount recovers instantly, plus roll-forward through the
//     segment summaries (the paper's "ultimate" recovery scheme,
//     implemented here) to recover work since the last checkpoint.
package core

import (
	"fmt"

	"lfs/internal/obs"
	"lfs/internal/sim"
)

// CleanPolicy selects which segments the cleaner picks.
type CleanPolicy int

const (
	// CleanGreedy picks the segments with the fewest live bytes —
	// the policy of this paper.
	CleanGreedy CleanPolicy = iota
	// CleanCostBenefit weights free space by segment age
	// (benefit/cost = (1-u)·age/(1+u)), the refinement introduced
	// in the authors' follow-up work; included as an ablation.
	CleanCostBenefit
)

// String names the policy.
func (p CleanPolicy) String() string {
	if p == CleanCostBenefit {
		return "cost-benefit"
	}
	return "greedy"
}

// Config carries the tunables of an LFS instance. The zero value is
// not valid; use DefaultConfig.
type Config struct {
	// BlockSize is the file system block size; the paper used 4 KB.
	BlockSize int
	// SegmentSize is the log segment size; the paper used 1 MB,
	// sized so the seek at the start of a segment write is
	// amortised across a long transfer (§4.3).
	SegmentSize int
	// MaxInodes bounds the inode map.
	MaxInodes int
	// CacheBlocks is the file cache capacity in blocks (~15 MB in
	// the paper's testbed).
	CacheBlocks int
	// WritebackAge triggers a segment write for dirty blocks older
	// than this (§4.3.5 "cache write-back", 30 seconds).
	WritebackAge sim.Duration
	// CheckpointInterval bounds the crash-loss window (§4.4.1,
	// 30 seconds).
	CheckpointInterval sim.Duration
	// CleanThresholdSegments is the clean-segment low watermark
	// that activates the cleaner (§4.3.4). Zero means auto
	// (max(2, segments/32)).
	CleanThresholdSegments int
	// CleanTargetSegments is how many clean segments the cleaner
	// tries to reach once activated. Zero means auto (2×threshold).
	CleanTargetSegments int
	// MinLiveFraction stops cleaning segments that are at least
	// this utilised ("segments are cleaned until all segments are
	// either clean or contain at least a file-system-settable
	// fraction of live blocks", §4.3.4).
	MinLiveFraction float64
	// MaxLiveFraction is the disk-space admission limit; writes
	// that would push live data beyond this fraction of the log
	// fail with ErrNoSpace, keeping slack for the cleaner.
	MaxLiveFraction float64
	// Policy selects the cleaning policy.
	Policy CleanPolicy
	// Segregation routes cleaner-relocated blocks to a separate open
	// segment (the cold head) instead of remixing them with fresh
	// writes, so cold data compacts into stable high-utilization
	// segments — the age-sorting §3.6 pairs with cost-benefit
	// selection. Off reproduces the single-head writer, as the
	// ablation arm of the cleaning-curve experiment.
	Segregation bool
	// RollForward enables roll-forward recovery through segment
	// summaries at mount (on by default; off reproduces the
	// paper's "current implementation" that loses everything since
	// the last checkpoint).
	RollForward bool
	// CleanOnIdle opportunistically cleans one segment at a time
	// while the disk is idle and the cache holds no dirty data —
	// the paper's §5.3 hope that "much of the cleaning can be done
	// using the idle cycles of the disk subsystem". Off by default
	// so experiments measure cleaning cost explicitly.
	CleanOnIdle bool
	// GroupCommit batches concurrent fsyncs: a sync request flushes
	// everything dirty in one segment transfer, so a later fsync whose
	// data rode that transfer finds nothing left to write and only
	// waits for the disk (it piggybacks). This is the log analogue of
	// group commit in logging databases — §4.1's observation that "a
	// single [log] write can handle multiple sync requests" — and it
	// is what makes small-file throughput scale with concurrent
	// clients. Off by default: a lone client gains nothing, and the
	// default fsync path touches only the synced file's blocks.
	GroupCommit bool
	// MIPS is the simulated CPU speed.
	MIPS float64
	// Costs is the instruction cost table.
	Costs sim.Costs
	// Trace, when non-nil, receives operation spans, cause-tagged
	// disk events, and cleaner activation records. Mount registers it
	// as the disk's tracer. A nil recorder costs nothing; a non-nil
	// one never changes the simulated timeline.
	Trace *obs.Recorder
	// Metrics, when non-nil, samples the metrics plane: Mount binds
	// the sampler (a sampler serves exactly one instance) and
	// registers every producer; thereafter each operation tick
	// appends a time-series sample whenever the simulated clock
	// crosses the sampler's interval. Like Trace, a nil sampler costs
	// nothing and a non-nil one never changes the simulated timeline,
	// the statistics, or the bytes on disk.
	Metrics *obs.Sampler
}

// DefaultConfig returns the paper's evaluation configuration: 4 KB
// blocks, 1 MB segments, ~15 MB cache, 30-second write-back and
// checkpoints, greedy cleaning.
func DefaultConfig() Config {
	return Config{
		BlockSize:          4096,
		SegmentSize:        1 << 20,
		MaxInodes:          65536,
		CacheBlocks:        3840, // ~15 MB at 4 KB
		WritebackAge:       30 * sim.Second,
		CheckpointInterval: 30 * sim.Second,
		MinLiveFraction:    0.95,
		MaxLiveFraction:    0.85,
		Policy:             CleanGreedy,
		Segregation:        true,
		RollForward:        true,
		MIPS:               sim.Sun4MIPS,
		Costs:              sim.DefaultCosts(),
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.BlockSize <= 0 || c.BlockSize%512 != 0 {
		return fmt.Errorf("lfs: block size %d not a positive multiple of the sector size", c.BlockSize)
	}
	if c.SegmentSize < 4*c.BlockSize || c.SegmentSize%c.BlockSize != 0 {
		return fmt.Errorf("lfs: segment size %d must be a multiple of the block size and hold several blocks", c.SegmentSize)
	}
	if c.MaxInodes < 16 {
		return fmt.Errorf("lfs: max inodes %d too small", c.MaxInodes)
	}
	if c.CacheBlocks <= 8 {
		return fmt.Errorf("lfs: cache of %d blocks too small", c.CacheBlocks)
	}
	if c.WritebackAge <= 0 || c.CheckpointInterval <= 0 {
		return fmt.Errorf("lfs: non-positive write-back age or checkpoint interval")
	}
	if c.MinLiveFraction <= 0 || c.MinLiveFraction > 1 {
		return fmt.Errorf("lfs: MinLiveFraction %v out of (0,1]", c.MinLiveFraction)
	}
	if c.MaxLiveFraction <= 0 || c.MaxLiveFraction >= 1 {
		return fmt.Errorf("lfs: MaxLiveFraction %v out of (0,1)", c.MaxLiveFraction)
	}
	if c.MIPS <= 0 {
		return fmt.Errorf("lfs: non-positive MIPS %v", c.MIPS)
	}
	return nil
}

// blocksPerSegment returns the segment capacity in blocks.
func (c Config) blocksPerSegment() int { return c.SegmentSize / c.BlockSize }

// sectorsPerBlock returns the sectors per file system block.
func (c Config) sectorsPerBlock() int64 { return int64(c.BlockSize / 512) }

// cleanThreshold resolves the clean-segment low watermark.
func (c Config) cleanThreshold(totalSegments int) int {
	if c.CleanThresholdSegments > 0 {
		return c.CleanThresholdSegments
	}
	// The floor of 3 covers a flush's worst-case demand: one
	// segment of application dirty data, one of cleaner-relocated
	// live data, and metadata spill.
	t := totalSegments / 32
	if t < 3 {
		t = 3
	}
	return t
}

// cleanTarget resolves the cleaner's clean-segment goal.
func (c Config) cleanTarget(totalSegments int) int {
	if c.CleanTargetSegments > 0 {
		return c.CleanTargetSegments
	}
	return 2 * c.cleanThreshold(totalSegments)
}
