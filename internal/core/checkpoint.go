package core

import (
	"encoding/binary"
	"fmt"

	"lfs/internal/disk"
	"lfs/internal/layout"
	"lfs/internal/sim"
)

// ckptMagicV1 identifies a pre-age checkpoint region (24-byte usage
// entries, single log head); ckptMagic2 the current format (32-byte
// entries carrying data age, plus the cold head position). New
// checkpoints are always written in the current format; decode
// accepts both so volumes formatted before the change still mount.
const (
	ckptMagicV1 = 0x4C434B50 // "LCKP"
	ckptMagic2  = 0x4C434B32 // "LCK2"
)

// ckptHeaderSize is the fixed header of a checkpoint region.
const ckptHeaderSize = 96

// ckptNoColdHead is the on-disk sentinel for "cold head closed".
const ckptNoColdHead = 0xFFFFFFFF

// checkpointState is the dynamic file system state snapshotted into a
// checkpoint region (§4.4.1): both log heads, the unit serial
// counter, the locations of every inode map block, and the segment
// usage array. ColdOpen records whether the cold (cleaner-relocation)
// head had an open segment; HeadSeg/HeadBlk are the hot head.
type checkpointState struct {
	Serial      uint64
	Timestamp   sim.Time
	HeadSeg     int
	HeadBlk     int
	WriteSerial uint64
	LiveBytes   int64
	ColdOpen    bool
	ColdSeg     int
	ColdBlk     int
	ImapAddrs   []layout.DiskAddr
	Usage       []segUsage
}

// encodeCheckpoint serialises the state into p (one checkpoint
// region).
func encodeCheckpoint(st checkpointState, p []byte) {
	for i := range p {
		p[i] = 0
	}
	le := binary.LittleEndian
	le.PutUint32(p[0:], ckptMagic2)
	le.PutUint64(p[4:], st.Serial)
	le.PutUint64(p[12:], uint64(st.Timestamp))
	le.PutUint32(p[20:], uint32(st.HeadSeg))
	le.PutUint32(p[24:], uint32(st.HeadBlk))
	le.PutUint64(p[28:], st.WriteSerial)
	le.PutUint64(p[36:], uint64(st.LiveBytes))
	le.PutUint32(p[44:], uint32(len(st.ImapAddrs)))
	le.PutUint32(p[48:], uint32(len(st.Usage)))
	coldSeg, coldBlk := uint32(ckptNoColdHead), uint32(ckptNoColdHead)
	if st.ColdOpen {
		coldSeg, coldBlk = uint32(st.ColdSeg), uint32(st.ColdBlk)
	}
	le.PutUint32(p[52:], coldSeg)
	le.PutUint32(p[56:], coldBlk)
	off := ckptHeaderSize
	for _, a := range st.ImapAddrs {
		le.PutUint32(p[off:], uint32(a))
		off += layout.AddrSize
	}
	for i := range st.Usage {
		st.Usage[i].encode(p[off:])
		off += segUsageEntrySize
	}
	le.PutUint32(p[off:], layout.Checksum(p[:off]))
}

// decodeCheckpoint parses and verifies a checkpoint region.
func decodeCheckpoint(p []byte) (checkpointState, error) {
	if len(p) < ckptHeaderSize {
		// Truncated images (a cut-short dd, a partial download) must
		// fail cleanly in lfsck/lfsdump, not panic on a header read.
		return checkpointState{}, fmt.Errorf("lfs: checkpoint region truncated: %d bytes", len(p))
	}
	le := binary.LittleEndian
	magic := le.Uint32(p[0:])
	if magic != ckptMagicV1 && magic != ckptMagic2 {
		return checkpointState{}, fmt.Errorf("lfs: bad checkpoint magic")
	}
	entrySize, decodeEntry := segUsageEntrySize, decodeSegUsage
	if magic == ckptMagicV1 {
		entrySize, decodeEntry = segUsageEntrySizeV1, decodeSegUsageV1
	}
	st := checkpointState{
		Serial:      le.Uint64(p[4:]),
		Timestamp:   sim.Time(le.Uint64(p[12:])),
		HeadSeg:     int(le.Uint32(p[20:])),
		HeadBlk:     int(le.Uint32(p[24:])),
		WriteSerial: le.Uint64(p[28:]),
		LiveBytes:   int64(le.Uint64(p[36:])),
	}
	if magic == ckptMagic2 {
		// A v1 region has no cold head (written before segregation
		// existed), which the zero-value ColdOpen already encodes.
		coldSeg, coldBlk := le.Uint32(p[52:]), le.Uint32(p[56:])
		if coldSeg != ckptNoColdHead {
			st.ColdOpen = true
			st.ColdSeg = int(coldSeg)
			st.ColdBlk = int(coldBlk)
		}
	}
	nImap := int(le.Uint32(p[44:]))
	nSegs := int(le.Uint32(p[48:]))
	need := ckptHeaderSize + nImap*layout.AddrSize + nSegs*entrySize + 4
	if need > len(p) {
		return checkpointState{}, fmt.Errorf("lfs: checkpoint region truncated")
	}
	crcOff := need - 4
	if layout.Checksum(p[:crcOff]) != le.Uint32(p[crcOff:]) {
		return checkpointState{}, fmt.Errorf("lfs: checkpoint checksum mismatch")
	}
	off := ckptHeaderSize
	st.ImapAddrs = make([]layout.DiskAddr, nImap)
	for i := range st.ImapAddrs {
		st.ImapAddrs[i] = layout.DiskAddr(le.Uint32(p[off:]))
		off += layout.AddrSize
	}
	st.Usage = make([]segUsage, nSegs)
	for i := range st.Usage {
		st.Usage[i] = decodeEntry(p[off:])
		off += entrySize
	}
	return st, nil
}

// Checkpoint forces all dirty state to the log and writes a
// checkpoint region. After it returns, a crash loses nothing that
// preceded the call (§4.4.1).
func (fs *FS) Checkpoint() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.checkpoint()
}

// checkpoint is Checkpoint without the lock, for internal callers.
func (fs *FS) checkpoint() error {
	if err := fs.checkMounted(); err != nil {
		return err
	}
	if err := fs.flush(flushCheckpoint); err != nil {
		return err
	}
	// Release cleaner-reclaimed segments between the flush and the
	// region write: the flush just logged the relocated copies and
	// the new inode map, so the region write about to be issued lands
	// after them in the store, and any mount that reads this
	// checkpoint also sees the relocations. If the region write never
	// persists, recovery falls back to the previous checkpoint — and
	// since nothing can write into the released segments before this
	// function returns, their old contents are still intact for it.
	fs.flipPendingClean()
	return fs.writeCheckpoint()
}

// flipPendingClean makes every segPending segment reusable. Only
// checkpoint may call it; see the ordering argument there.
func (fs *FS) flipPendingClean() {
	if fs.pendingClean == 0 {
		return
	}
	for i := range fs.usage {
		if fs.usage[i].State == segPending {
			fs.usage[i].State = segClean
			fs.cleanCount++
		}
	}
	fs.pendingClean = 0
}

// writeCheckpoint serialises the current state into the next
// checkpoint region (the two regions alternate) with a synchronous
// write.
func (fs *FS) writeCheckpoint() error {
	fs.cpu.Charge(fs.cfg.Costs.CheckpointSetup)
	st := checkpointState{
		Serial:      fs.ckptSerial + 1,
		Timestamp:   fs.clock.Now(),
		HeadSeg:     fs.heads[classHot].seg,
		HeadBlk:     fs.heads[classHot].blk,
		WriteSerial: fs.writeSerial,
		LiveBytes:   fs.liveBytes,
		ColdOpen:    fs.heads[classCold].open,
		ColdSeg:     fs.heads[classCold].seg,
		ColdBlk:     fs.heads[classCold].blk,
		ImapAddrs:   fs.imap.blockAddrs,
		Usage:       fs.usage,
	}
	buf := make([]byte, fs.sb.CkptBytes)
	encodeCheckpoint(st, buf)
	sector := int64(fs.sb.Ckpt0Sector)
	if st.Serial%2 == 1 {
		sector = int64(fs.sb.Ckpt1Sector)
	}
	fs.cpu.Charge(fs.cfg.Costs.DiskOpSetup)
	if err := fs.d.WriteSectors(sector, buf, true, disk.CauseCheckpoint, "checkpoint"); err != nil {
		return err
	}
	fs.ckptSerial = st.Serial
	fs.lastCkpt = fs.clock.Now()
	fs.stats.Checkpoints++
	return nil
}

// Mount attaches a formatted LFS. Recovery is the paper's headline:
// read the newest valid checkpoint region, restore the inode map and
// segment usage array from it, and — when roll-forward is enabled —
// replay the log units written after the checkpoint.
func Mount(d *disk.Disk, cfg Config) (*FS, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Attach the trace recorder before the first recovery read so the
	// mount-time I/O is part of the trace. The nil guard matters: a
	// typed-nil *obs.Recorder stored in the disk.Tracer interface
	// would look non-nil to the disk.
	if cfg.Trace != nil {
		d.SetTracer(cfg.Trace)
	}
	buf := make([]byte, cfg.BlockSize)
	if err := d.ReadSectors(0, buf, disk.CauseRecovery, "mount: superblock"); err != nil {
		return nil, err
	}
	sb, err := decodeSuperblock(buf)
	if err != nil {
		return nil, err
	}
	if sb.BlockSize != uint32(cfg.BlockSize) || sb.SegmentSize != uint32(cfg.SegmentSize) {
		return nil, fmt.Errorf("lfs: volume is %d/%d byte blocks/segments, config wants %d/%d",
			sb.BlockSize, sb.SegmentSize, cfg.BlockSize, cfg.SegmentSize)
	}
	if sb.MaxInodes != uint32(cfg.MaxInodes) {
		return nil, fmt.Errorf("lfs: volume has %d inodes, config wants %d", sb.MaxInodes, cfg.MaxInodes)
	}
	fs := newSkeleton(d, cfg, sb)
	// Attach the phase-attribution hook: every blocking request's
	// queue-wait/service split feeds the running operation's latency
	// decomposition. Pure arithmetic on already-computed durations,
	// so attaching never perturbs the timeline.
	d.SetWaiter(diskWaiter{fs})

	// Read both checkpoint regions; use the newest valid one.
	var best checkpointState
	found := false
	for _, sector := range []int64{int64(sb.Ckpt0Sector), int64(sb.Ckpt1Sector)} {
		region := make([]byte, sb.CkptBytes)
		if err := d.ReadSectors(sector, region, disk.CauseRecovery, "mount: checkpoint"); err != nil {
			return nil, err
		}
		st, err := decodeCheckpoint(region)
		if err != nil {
			continue // torn or never-written region
		}
		if !found || st.Serial > best.Serial {
			best, found = st, true
		}
	}
	if !found {
		return nil, fmt.Errorf("lfs: no valid checkpoint region; volume is not formatted or is damaged")
	}
	if len(best.Usage) != int(sb.Segments) || len(best.ImapAddrs) != fs.imap.blockCount() {
		return nil, fmt.Errorf("lfs: checkpoint geometry mismatch")
	}
	if best.HeadSeg < 0 || best.HeadSeg >= int(sb.Segments) ||
		(best.ColdOpen && (best.ColdSeg < 0 || best.ColdSeg >= int(sb.Segments))) {
		return nil, fmt.Errorf("lfs: checkpoint head outside the segment area")
	}
	// The simulated clock restarts at zero with every process, but the
	// volume's history does not: advance to the checkpoint's capture
	// time so everything stamped from here on — log units, checkpoint
	// timestamps, cleaner age estimates — postdates everything already
	// in the log. Roll-forward's stale-unit filter relies on this.
	fs.clock.AdvanceTo(best.Timestamp)
	fs.ckptSerial = best.Serial
	fs.writeSerial = best.WriteSerial
	hot := &fs.heads[classHot]
	hot.seg, hot.blk, hot.pending, hot.open = best.HeadSeg, best.HeadBlk, best.HeadBlk, true
	cold := &fs.heads[classCold]
	cold.open = best.ColdOpen
	if best.ColdOpen {
		cold.seg, cold.blk, cold.pending = best.ColdSeg, best.ColdBlk, best.ColdBlk
	}
	fs.liveBytes = best.LiveBytes
	copy(fs.usage, best.Usage)
	copy(fs.imap.blockAddrs, best.ImapAddrs)
	for i := range fs.usage {
		// segPending is never written to a checkpoint; seeing it in
		// an image means corruption. Demote to dirty: the cleaner
		// will re-examine the segment instead of overwriting it.
		if fs.usage[i].State == segPending {
			fs.usage[i].State = segDirty
		}
	}
	fs.usage[hot.seg].State = segActive
	if cold.open {
		fs.usage[cold.seg].State = segActive
	}

	// Load the inode map blocks named by the checkpoint.
	for idx, addr := range fs.imap.blockAddrs {
		if addr.IsNil() {
			continue
		}
		blk := make([]byte, cfg.BlockSize)
		if err := d.ReadSectors(int64(addr), blk, disk.CauseInodeMap, "mount: imap"); err != nil {
			return nil, err
		}
		fs.imap.decodeBlock(idx, blk)
	}
	fs.imap.rebuildFreeState()
	fs.recountClean()
	fs.lastCkpt = fs.clock.Now()

	if cfg.RollForward {
		if err := fs.rollForward(best.Timestamp); err != nil {
			return nil, err
		}
	} else {
		// The paper's "current implementation": everything after
		// the checkpoint is discarded. The log simply resumes at
		// the checkpointed head.
		_ = 0
	}
	// Register the metrics plane last so its probes see fully
	// recovered state, and take the baseline sample at mount time.
	if err := fs.initMetrics(); err != nil {
		return nil, err
	}
	fs.samp.Tick(fs.clock.Now())
	return fs, nil
}

// recountClean recomputes the clean-segment counter from the usage
// array.
func (fs *FS) recountClean() {
	n := 0
	for i := range fs.usage {
		if fs.usage[i].State == segClean {
			n++
		}
	}
	fs.cleanCount = n
}

// rollForward replays log units written after the checkpoint (§4.4:
// "using information in the segment summary blocks, LFS can roll
// forward from the last checkpoint, updating metadata structures such
// as the inode map"). Units must appear at the expected position with
// the expected serial and an intact data checksum; the first mismatch
// is the end of the recoverable log.
//
// ckptTime is the recovered checkpoint's capture time: any unit
// stamped earlier predates the checkpoint and cannot be new work, no
// matter what its serial claims. The serial check alone is not
// airtight — after a crash, recovery, and a second crash, the head can
// sit over leftovers of an earlier epoch whose serials coincide with
// the expected ones (the clock advance in Mount keeps the comparison
// sound across process restarts).
// With two append streams the units of one serial sequence interleave
// across two disk positions, so each expected serial is probed at
// every place the writer could have put it: the current position of
// each open head, then — when a head is full or the cold head was
// closed at the checkpoint — block 0 of the clean segment that head
// would have advanced to (the writer's segment choice is a
// deterministic function of state recovery mirrors). The summary's
// class byte pins each unit to its stream, so a probe never misreads
// a unit of the other head. Head movements commit only after the
// expected unit validates at the new position.
func (fs *FS) rollForward(ckptTime sim.Time) error {
	recovered := 0
	for {
		applied, err := fs.replayNextUnit(ckptTime)
		if err != nil {
			return err
		}
		if !applied {
			break
		}
		recovered++
	}
	if recovered > 0 {
		fs.imap.rebuildFreeState()
		// Stabilise the recovered state immediately.
		return fs.checkpoint()
	}
	return nil
}

// replayNextUnit locates, validates, and applies the unit carrying
// the next expected write serial. Returns false (with no state
// change) when no candidate position holds it: the end of the
// recoverable log.
func (fs *FS) replayNextUnit(ckptTime sim.Time) (bool, error) {
	bs := fs.cfg.BlockSize
	// In-place candidates: each open head with room for a unit.
	for class := writeClass(0); class < numClasses; class++ {
		h := &fs.heads[class]
		if !h.open || maxUnitBlocks(fs.cfg.blocksPerSegment()-h.blk, bs) == 0 {
			continue
		}
		ok, err := fs.replayUnitAt(class, h.seg, h.blk, ckptTime, false)
		if ok || err != nil {
			return ok, err
		}
	}
	// Advance candidates: a full head moved on to the clean segment
	// the writer's scan would pick; a closed cold head would have
	// opened scanning from the hot position.
	for class := writeClass(0); class < numClasses; class++ {
		h := &fs.heads[class]
		from := h.seg
		if h.open {
			if maxUnitBlocks(fs.cfg.blocksPerSegment()-h.blk, bs) != 0 {
				continue // had room: the in-place probe already said no
			}
		} else {
			if class != classCold {
				continue
			}
			from = fs.heads[classHot].seg
		}
		cand, found := fs.findCleanSegmentFrom(from)
		if !found {
			continue
		}
		ok, err := fs.replayUnitAt(class, cand, 0, ckptTime, true)
		if ok || err != nil {
			return ok, err
		}
	}
	return false, nil
}

// replayUnitAt probes (seg, blk) for a valid unit of the given class
// carrying the expected serial and applies it. With activate set the
// head is moved to seg first — sealing its previous segment — but
// only once the unit has fully validated, so a failed probe leaves
// recovery state untouched.
func (fs *FS) replayUnitAt(class writeClass, seg, blk int, ckptTime sim.Time, activate bool) (bool, error) {
	bs := fs.cfg.BlockSize
	// Read a candidate summary header (one block is enough to hold
	// the header; entries may spill into further blocks).
	head := make([]byte, bs)
	if err := fs.d.ReadSectors(fs.blockSector(seg, blk), head, disk.CauseRecovery, "recovery: summary probe"); err != nil {
		return false, err
	}
	probe, _, errProbe := decodeSummaryHeaderOnly(head)
	if errProbe != nil || probe.Serial != fs.writeSerial || probe.Class != class {
		return false, nil // end of this stream (or torn header)
	}
	if probe.Timestamp < ckptTime {
		return false, nil // stale unit from an earlier log epoch
	}
	if probe.SumBlocks < 1 || blk+probe.SumBlocks+probe.NBlocks > fs.cfg.blocksPerSegment() {
		return false, nil
	}
	// Read the full unit and re-validate with all entries.
	unit := make([]byte, (probe.SumBlocks+probe.NBlocks)*bs)
	if err := fs.d.ReadSectors(fs.blockSector(seg, blk), unit, disk.CauseRecovery, "recovery: unit"); err != nil {
		return false, err
	}
	h, refs, err := decodeSummary(unit)
	if err != nil || h.Serial != fs.writeSerial || h.Timestamp < ckptTime || h.Class != class {
		return false, nil
	}
	data := unit[h.SumBlocks*bs:]
	if layout.DataChecksum(data) != h.DataCRC {
		return false, nil // torn data: the unit never fully reached disk
	}
	if activate {
		if fs.heads[class].open {
			fs.usage[fs.heads[class].seg].State = segDirty
		}
		fs.activateHead(class, seg)
	}
	// Apply the unit: inode blocks rebuild the inode map; data and
	// indirect blocks need no action because the inodes written in
	// the same flush carry the pointers.
	for j, ref := range refs {
		addr := layout.DiskAddr(fs.blockSector(seg, blk+h.SumBlocks+j))
		if ref.Kind == kindInodes {
			blkData := data[j*bs : (j+1)*bs]
			for slot := 0; slot < fs.inodesPerBlock(); slot++ {
				raw := blkData[slot*layout.InodeSize : (slot+1)*layout.InodeSize]
				if allZero(raw) {
					continue
				}
				rec, err := layout.DecodeInode(raw)
				if err != nil || !rec.Allocated() {
					continue
				}
				e := fs.imap.get(rec.Ino)
				e.Allocated = true
				e.Addr = addr + layout.DiskAddr(slot/inodesPerSector)
				e.Slot = uint8(slot % inodesPerSector)
				e.Version = rec.Gen
				fs.imap.markDirty(rec.Ino)
			}
		}
		if ref.Kind == kindImap {
			idx := int(ref.ID)
			if idx >= 0 && idx < fs.imap.blockCount() {
				fs.imap.decodeBlock(idx, data[j*bs:(j+1)*bs])
				fs.imap.blockAddrs[idx] = addr
				// decodeBlock overwrote entries that later
				// units may refine; that is fine because
				// units replay in write order.
			}
		}
	}
	// Credit with the age the summary recorded (the victim's age for
	// relocations), so recovered usage entries stay age-correct; old
	// images without the field fall back to the write time.
	age := h.Age
	if age == 0 {
		age = h.Timestamp
	}
	fs.creditSegmentAged(seg, int64(h.NBlocks*bs), age)
	hd := &fs.heads[class]
	hd.blk = blk + h.SumBlocks + h.NBlocks
	hd.pending = hd.blk
	fs.writeSerial++
	fs.stats.RollForwardUnits++
	return true, nil
}

// decodeSummaryHeaderOnly parses just the summary header (entry
// checksums are validated later on the full unit).
func decodeSummaryHeaderOnly(p []byte) (summaryHeader, []blockRef, error) {
	if len(p) < summaryHeaderSize {
		return summaryHeader{}, nil, fmt.Errorf("lfs: short summary")
	}
	le := binary.LittleEndian
	if le.Uint32(p[0:]) != summaryMagic {
		return summaryHeader{}, nil, fmt.Errorf("lfs: bad summary magic")
	}
	h := summaryHeader{
		Serial:    le.Uint64(p[4:]),
		NBlocks:   int(le.Uint16(p[12:])),
		SumBlocks: int(le.Uint16(p[14:])),
		Timestamp: sim.Time(le.Uint64(p[16:])),
		DataCRC:   le.Uint32(p[24:]),
		Class:     writeClass(p[32]),
		Age:       sim.Time(le.Uint64(p[40:])),
	}
	return h, nil, nil
}
