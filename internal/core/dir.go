package core

import (
	"fmt"

	"lfs/internal/layout"
	"lfs/internal/vfs"
)

// nameEntry is one directory name cache record: the child's inode
// number and the directory data block holding the entry. Directory
// entries never migrate between blocks (inserts and removals rewrite
// a single block), so the cached block number stays valid for the
// entry's lifetime.
type nameEntry struct {
	ino layout.Ino
	lbn int64
}

// nameCacheDirLimit bounds one directory's cached entries.
const nameCacheDirLimit = 32768

// dirBlocks returns the directory's data block count.
func (fs *FS) dirBlocks(dir *layout.Inode) int64 {
	return layout.BlocksForSize(dir.Size, fs.cfg.BlockSize)
}

// cacheName records name→(ino,lbn) for the directory.
func (fs *FS) cacheName(dir layout.Ino, name string, ino layout.Ino, lbn int64) {
	m := fs.names[dir]
	if m == nil {
		m = make(map[string]nameEntry)
		fs.names[dir] = m
	}
	if len(m) < nameCacheDirLimit {
		m[name] = nameEntry{ino: ino, lbn: lbn}
	}
}

// forgetName drops one cached name.
func (fs *FS) forgetName(dir layout.Ino, name string) {
	if m := fs.names[dir]; m != nil {
		delete(m, name)
	}
}

// forgetDir drops a directory's whole name cache (the directory was
// removed; its inode number may be reused).
func (fs *FS) forgetDir(dir layout.Ino) {
	delete(fs.names, dir)
	delete(fs.insertHint, dir)
}

// dirLookup searches the directory for name, consulting the name
// cache first.
func (fs *FS) dirLookup(dir *layout.Inode, name string) (layout.Ino, bool, error) {
	if e, ok := fs.names[dir.Ino][name]; ok {
		return e.ino, true, nil
	}
	for lbn := int64(0); lbn < fs.dirBlocks(dir); lbn++ {
		b, err := fs.getDataBlock(dir, lbn, false)
		if err != nil {
			return 0, false, err
		}
		if b == nil {
			return 0, false, fmt.Errorf("lfs: directory %d has a hole at block %d", dir.Ino, lbn)
		}
		ino, found, err := layout.DirBlockFind(b.Data, name)
		if err != nil {
			return 0, false, err
		}
		if found {
			fs.cacheName(dir.Ino, name, ino, lbn)
			return ino, true, nil
		}
	}
	return 0, false, nil
}

// dirInsert adds name→ino, growing the directory when needed. Unlike
// FFS nothing is written synchronously: the dirtied block rides the
// next segment write (Figure 2). The per-directory hint makes
// append-mostly insertion O(1) instead of a scan of every block.
func (fs *FS) dirInsert(dir *layout.Inode, name string, ino layout.Ino) error {
	for lbn := fs.insertHint[dir.Ino]; lbn < fs.dirBlocks(dir); lbn++ {
		b, err := fs.getDataBlock(dir, lbn, false)
		if err != nil {
			return err
		}
		if b == nil {
			return fmt.Errorf("lfs: directory %d has a hole at block %d", dir.Ino, lbn)
		}
		ok, err := layout.DirBlockInsert(b.Data, layout.DirEntry{Ino: ino, Name: name})
		if err != nil {
			return err
		}
		if ok {
			fs.bc.MarkDirty(b, fs.clock.Now())
			fs.insertHint[dir.Ino] = lbn
			fs.cacheName(dir.Ino, name, ino, lbn)
			return nil
		}
	}
	lbn := fs.dirBlocks(dir)
	b, err := fs.getDataBlock(dir, lbn, true)
	if err != nil {
		return err
	}
	layout.InitDirBlock(b.Data)
	ok, err := layout.DirBlockInsert(b.Data, layout.DirEntry{Ino: ino, Name: name})
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("lfs: entry %q does not fit in an empty block", name)
	}
	fs.bc.MarkDirty(b, fs.clock.Now())
	dir.Size += uint64(fs.cfg.BlockSize)
	fs.markInodeDirty(dir.Ino)
	fs.insertHint[dir.Ino] = lbn
	fs.cacheName(dir.Ino, name, ino, lbn)
	return nil
}

// dirRemove deletes name from the directory, going straight to the
// cached block when the name cache knows it.
func (fs *FS) dirRemove(dir *layout.Inode, name string) error {
	start := int64(0)
	if e, ok := fs.names[dir.Ino][name]; ok {
		start = e.lbn
	}
	for pass := 0; pass < 2; pass++ {
		for lbn := start; lbn < fs.dirBlocks(dir); lbn++ {
			b, err := fs.getDataBlock(dir, lbn, false)
			if err != nil {
				return err
			}
			if b == nil {
				continue
			}
			removed, err := layout.DirBlockRemove(b.Data, name)
			if err != nil {
				return err
			}
			if removed {
				fs.bc.MarkDirty(b, fs.clock.Now())
				fs.forgetName(dir.Ino, name)
				// Freed space may precede the insert hint.
				if hint, ok := fs.insertHint[dir.Ino]; ok && lbn < hint {
					fs.insertHint[dir.Ino] = lbn
				}
				return nil
			}
		}
		if start == 0 {
			break // full scan already done
		}
		start = 0 // stale hint: rescan from the beginning
	}
	return fmt.Errorf("%w: %q", vfs.ErrNotExist, name)
}

// dirEntries lists the directory in name order.
func (fs *FS) dirEntries(dir *layout.Inode) ([]layout.DirEntry, error) {
	var all []layout.DirEntry
	for lbn := int64(0); lbn < fs.dirBlocks(dir); lbn++ {
		b, err := fs.getDataBlock(dir, lbn, false)
		if err != nil {
			return nil, err
		}
		if b == nil {
			continue
		}
		entries, err := layout.DirBlockEntries(b.Data)
		if err != nil {
			return nil, err
		}
		all = append(all, entries...)
	}
	layout.SortEntries(all)
	return all, nil
}

// dirEmpty reports whether the directory has no entries.
func (fs *FS) dirEmpty(dir *layout.Inode) (bool, error) {
	for lbn := int64(0); lbn < fs.dirBlocks(dir); lbn++ {
		b, err := fs.getDataBlock(dir, lbn, false)
		if err != nil {
			return false, err
		}
		if b == nil {
			continue
		}
		n, err := layout.DirBlockCount(b.Data)
		if err != nil {
			return false, err
		}
		if n > 0 {
			return false, nil
		}
	}
	return true, nil
}

// resolve walks path components from the root.
func (fs *FS) resolve(parts []string) (*layout.Inode, error) {
	in, err := fs.getInode(layout.RootIno)
	if err != nil {
		return nil, err
	}
	for i, name := range parts {
		fs.cpu.Charge(fs.cfg.Costs.PathComponent)
		if !in.Mode.IsDir() {
			return nil, fmt.Errorf("%w: %q", vfs.ErrNotDir, parts[:i])
		}
		ino, found, err := fs.dirLookup(in, name)
		if err != nil {
			return nil, err
		}
		if !found {
			return nil, fmt.Errorf("%w: %q", vfs.ErrNotExist, parts[:i+1])
		}
		in, err = fs.getInode(ino)
		if err != nil {
			return nil, err
		}
	}
	return in, nil
}

// resolveDir resolves parts and requires a directory.
func (fs *FS) resolveDir(parts []string) (*layout.Inode, error) {
	in, err := fs.resolve(parts)
	if err != nil {
		return nil, err
	}
	if !in.Mode.IsDir() {
		return nil, fmt.Errorf("%w: %q", vfs.ErrNotDir, parts)
	}
	return in, nil
}
