package core

import (
	"fmt"
	"io"

	"lfs/internal/disk"
	"lfs/internal/layout"
)

// Dump prints the on-disk structures of an LFS volume in human
// readable form: the superblock, both checkpoint regions, and — with
// segments set — a walk of every log unit summary on the disk. It
// parses the raw image without mounting, so it works on crashed
// volumes too.
func Dump(w io.Writer, d *disk.Disk, segments bool) error {
	buf := make([]byte, 4096)
	if err := d.ReadSectors(0, buf, disk.CauseTool, "dump: superblock"); err != nil {
		return err
	}
	sb, err := decodeSuperblock(buf)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "superblock:\n")
	fmt.Fprintf(w, "  block size     %d\n", sb.BlockSize)
	fmt.Fprintf(w, "  segment size   %d\n", sb.SegmentSize)
	fmt.Fprintf(w, "  segments       %d\n", sb.Segments)
	fmt.Fprintf(w, "  max inodes     %d\n", sb.MaxInodes)
	fmt.Fprintf(w, "  ckpt regions   sectors %d and %d (%d bytes each)\n", sb.Ckpt0Sector, sb.Ckpt1Sector, sb.CkptBytes)
	fmt.Fprintf(w, "  segment area   sector %d\n", sb.SegStart)

	var newest *checkpointState
	for i, sector := range []int64{int64(sb.Ckpt0Sector), int64(sb.Ckpt1Sector)} {
		region := make([]byte, sb.CkptBytes)
		if err := d.ReadSectors(sector, region, disk.CauseTool, "dump: checkpoint"); err != nil {
			return err
		}
		st, err := decodeCheckpoint(region)
		if err != nil {
			fmt.Fprintf(w, "checkpoint %d: invalid (%v)\n", i, err)
			continue
		}
		fmt.Fprintf(w, "checkpoint %d:\n", i)
		fmt.Fprintf(w, "  serial        %d\n", st.Serial)
		fmt.Fprintf(w, "  timestamp     %v\n", st.Timestamp)
		fmt.Fprintf(w, "  log head      segment %d block %d\n", st.HeadSeg, st.HeadBlk)
		fmt.Fprintf(w, "  write serial  %d\n", st.WriteSerial)
		fmt.Fprintf(w, "  live bytes    %d\n", st.LiveBytes)
		nImap := 0
		for _, a := range st.ImapAddrs {
			if !a.IsNil() {
				nImap++
			}
		}
		fmt.Fprintf(w, "  imap blocks   %d of %d on disk\n", nImap, len(st.ImapAddrs))
		var clean, dirty, active int
		for _, u := range st.Usage {
			switch u.State {
			case segClean:
				clean++
			case segDirty:
				dirty++
			default:
				active++
			}
		}
		fmt.Fprintf(w, "  segments      %d clean, %d dirty, %d active\n", clean, dirty, active)
		if newest == nil || st.Serial > newest.Serial {
			cp := st
			newest = &cp
		}
	}
	if newest == nil {
		return fmt.Errorf("lfsdump: no valid checkpoint region")
	}
	if !segments {
		return nil
	}

	fmt.Fprintf(w, "log units:\n")
	bs := int(sb.BlockSize)
	blocksPerSeg := int(sb.SegmentSize) / bs
	spb := int64(bs / 512)
	for seg := 0; seg < int(sb.Segments); seg++ {
		if newest.Usage[seg].State == segClean {
			continue
		}
		first := int64(sb.SegStart) + int64(seg)*int64(sb.SegmentSize)/512
		blk := 0
		for blk < blocksPerSeg {
			head := make([]byte, bs)
			if err := d.ReadSectors(first+int64(blk)*spb, head, disk.CauseTool, "dump: summary"); err != nil {
				return err
			}
			h, _, err := decodeSummaryHeaderOnly(head)
			if err != nil || h.SumBlocks < 1 || blk+h.SumBlocks+h.NBlocks > blocksPerSeg {
				break
			}
			unit := make([]byte, (h.SumBlocks+h.NBlocks)*bs)
			if err := d.ReadSectors(first+int64(blk)*spb, unit, disk.CauseTool, "dump: unit"); err != nil {
				return err
			}
			hh, refs, err := decodeSummary(unit)
			if err != nil {
				break
			}
			kinds := map[blockKind]int{}
			for _, r := range refs {
				kinds[r.Kind]++
			}
			fmt.Fprintf(w, "  seg %4d blk %4d: serial %6d, %3d blocks (%d data, %d indirect, %d inodes, %d imap), t=%v\n",
				seg, blk, hh.Serial, hh.NBlocks,
				kinds[kindData], kinds[kindIndirect], kinds[kindInodes], kinds[kindImap], hh.Timestamp)
			blk += hh.SumBlocks + hh.NBlocks
		}
	}
	_ = layout.RootIno
	return nil
}

// DumpImap prints the allocated inode-map entries of the volume's
// newest checkpoint: inode number, version, disk address, and slot.
// Like Dump it parses the raw image without mounting.
func DumpImap(w io.Writer, d *disk.Disk) error {
	buf := make([]byte, 4096)
	if err := d.ReadSectors(0, buf, disk.CauseTool, "dump: superblock"); err != nil {
		return err
	}
	sb, err := decodeSuperblock(buf)
	if err != nil {
		return err
	}
	var newest *checkpointState
	for _, sector := range []int64{int64(sb.Ckpt0Sector), int64(sb.Ckpt1Sector)} {
		region := make([]byte, sb.CkptBytes)
		if err := d.ReadSectors(sector, region, disk.CauseTool, "dump: checkpoint"); err != nil {
			return err
		}
		st, err := decodeCheckpoint(region)
		if err != nil {
			continue
		}
		if newest == nil || st.Serial > newest.Serial {
			cp := st
			newest = &cp
		}
	}
	if newest == nil {
		return fmt.Errorf("lfsdump: no valid checkpoint region")
	}
	per := imapEntriesPerBlock(int(sb.BlockSize))
	fmt.Fprintf(w, "%-8s %-8s %-12s %-5s %s\n", "ino", "version", "addr", "slot", "atime")
	count := 0
	for idx, addr := range newest.ImapAddrs {
		if addr.IsNil() {
			continue
		}
		blk := make([]byte, sb.BlockSize)
		if err := d.ReadSectors(int64(addr), blk, disk.CauseTool, "dump: imap"); err != nil {
			return err
		}
		for i := 0; i < per; i++ {
			ino := layout.Ino(idx*per+i) + 1
			if uint32(ino) > sb.MaxInodes {
				break
			}
			e := decodeImapEntry(blk[i*imapEntrySize:])
			if !e.Allocated {
				continue
			}
			fmt.Fprintf(w, "%-8d %-8d %-12v %-5d %v\n", ino, e.Version, e.Addr, e.Slot, e.Atime)
			count++
		}
	}
	fmt.Fprintf(w, "%d allocated inodes (as of checkpoint serial %d)\n", count, newest.Serial)
	return nil
}
