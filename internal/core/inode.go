package core

import (
	"fmt"
	"sort"

	"lfs/internal/cache"
	"lfs/internal/disk"
	"lfs/internal/layout"
	"lfs/internal/vfs"
)

// Indirect block identifiers within a file. LFS keys indirect blocks
// logically (by owner and role) because their physical addresses
// change on every rewrite.
const (
	// indSingle is the single indirect block.
	indSingle int64 = 0
	// indDoubleOuter is the double indirect (outer) block.
	indDoubleOuter int64 = 1
	// indDoubleInnerBase + k is the k-th inner block under the
	// double indirect block.
	indDoubleInnerBase int64 = 2
)

// inodesPerBlock returns the inode records packed into one FS block.
func (fs *FS) inodesPerBlock() int { return fs.cfg.BlockSize / layout.InodeSize }

// inodesPerSector is how many inode records fit in one sector.
const inodesPerSector = 512 / layout.InodeSize

// dataKey returns the cache key of data block lbn of ino.
func dataKey(ino layout.Ino, lbn int64) cache.Key {
	return cache.Key{Kind: cache.KindFile, Ino: ino, Off: lbn}
}

// indKey returns the cache key of an indirect block.
func indKey(ino layout.Ino, id int64) cache.Key {
	return cache.Key{Kind: cache.KindIndirect, Ino: ino, Off: id}
}

// fillNil initialises an indirect block so every entry is NilAddr.
func fillNil(p []byte) {
	for i := range p {
		p[i] = 0xFF
	}
}

// loadAddr reads entry idx of a cached indirect block.
func loadAddr(b *cache.Block, idx int) layout.DiskAddr {
	return layout.DecodeAddrBlock(b.Data[idx*layout.AddrSize:], 1)[0]
}

// storeAddr writes entry idx of a cached indirect block.
func storeAddr(b *cache.Block, idx int, a layout.DiskAddr) {
	layout.EncodeAddrBlock([]layout.DiskAddr{a}, b.Data[idx*layout.AddrSize:])
}

// inodeCacheLimit bounds the in-core inode table; clean inodes beyond
// it are dropped (they can always be refetched through the imap).
const inodeCacheLimit = 16384

// getInode returns the in-core inode for ino, fetching it through the
// inode map when absent (§4.2.1: "except for the address lookup using
// the inode map, the file reading algorithm of LFS is identical to
// UNIX").
func (fs *FS) getInode(ino layout.Ino) (*layout.Inode, error) {
	if in, ok := fs.inodes[ino]; ok {
		return in, nil
	}
	if ino < 1 || ino > fs.imap.maxIno() {
		return nil, fmt.Errorf("%w: inode %d out of range", vfs.ErrInvalid, ino)
	}
	e := fs.imap.get(ino)
	if !e.Allocated {
		return nil, fmt.Errorf("%w: inode %d is not allocated", vfs.ErrNotExist, ino)
	}
	if e.Addr.IsNil() {
		return nil, fmt.Errorf("lfs: allocated inode %d has no disk address", ino)
	}
	// Inodes were logged in whole inode blocks; read the containing
	// block and batch-cache every inode in it whose inode map entry
	// still points here. This amortises one disk read over up to
	// blockSize/InodeSize inodes, which is what keeps LFS's
	// small-file read performance competitive (§5.1): files created
	// together have their inodes packed together.
	seg := fs.segOf(e.Addr)
	if seg < 0 {
		return nil, fmt.Errorf("lfs: inode %d address %v outside the segment area", ino, e.Addr)
	}
	spb := fs.cfg.sectorsPerBlock()
	rel := int64(e.Addr) - fs.segFirstSector(seg)
	blockStart := fs.segFirstSector(seg) + rel/spb*spb
	fs.cpu.Charge(fs.cfg.Costs.BlockSetup + fs.cfg.Costs.DiskOpSetup)
	blk := make([]byte, fs.cfg.BlockSize)
	if err := fs.d.ReadSectors(blockStart, blk, disk.CauseInodeMap, "inode read"); err != nil {
		return nil, err
	}
	fs.evictInodes()
	var want *layout.Inode
	for slot := 0; slot < fs.inodesPerBlock(); slot++ {
		raw := blk[slot*layout.InodeSize : (slot+1)*layout.InodeSize]
		if allZero(raw) {
			continue
		}
		rec, err := layout.DecodeInode(raw)
		if err != nil {
			continue // stale or torn slot; only the wanted ino matters
		}
		slotAddr := layout.DiskAddr(blockStart) + layout.DiskAddr(slot/inodesPerSector)
		slotIdx := uint8(slot % inodesPerSector)
		re := fs.imap.get(rec.Ino)
		if rec.Ino == ino {
			if slotAddr != e.Addr || slotIdx != e.Slot {
				continue
			}
			cp := rec
			want = &cp
			fs.inodes[ino] = want
			continue
		}
		// Opportunistically cache neighbours that are still
		// current, unless a (possibly dirty) copy is already in
		// core.
		if _, present := fs.inodes[rec.Ino]; present {
			continue
		}
		if rec.Ino < 1 || rec.Ino > fs.imap.maxIno() || !rec.Allocated() {
			continue
		}
		if re.Allocated && re.Addr == slotAddr && re.Slot == slotIdx {
			cp := rec
			fs.inodes[rec.Ino] = &cp
		}
	}
	if want == nil {
		return nil, fmt.Errorf("lfs: inode %d not found at %v slot %d", ino, e.Addr, e.Slot)
	}
	return want, nil
}

// evictInodes drops clean in-core inodes when over the limit. The
// eviction set is chosen in ascending inode order, never by map
// iteration order: which inodes survive decides which future lookups
// go back to disk, and those reads charge simulated time — a random
// eviction set would make the whole timeline differ between reruns
// of the same seed.
func (fs *FS) evictInodes() {
	if len(fs.inodes) < inodeCacheLimit {
		return
	}
	clean := make([]layout.Ino, 0, len(fs.inodes))
	for ino := range fs.inodes {
		if !fs.dirtyInodes[ino] {
			clean = append(clean, ino)
		}
	}
	sort.Slice(clean, func(i, j int) bool { return clean[i] < clean[j] })
	for _, ino := range clean {
		if len(fs.inodes) < inodeCacheLimit/2 {
			break
		}
		delete(fs.inodes, ino)
	}
}

// markInodeDirty queues ino for the next segment write.
func (fs *FS) markInodeDirty(ino layout.Ino) { fs.dirtyInodes[ino] = true }

// dropInode removes ino from the in-core table (unlink).
func (fs *FS) dropInode(ino layout.Ino) {
	delete(fs.inodes, ino)
	delete(fs.dirtyInodes, ino)
}

// getIndirect returns the cached indirect block (ino, id). When the
// block is not cached it is read from addr; a nil addr with create
// set yields a fresh all-holes block, and a nil addr without create
// returns nil.
func (fs *FS) getIndirect(ino layout.Ino, id int64, addr layout.DiskAddr, create bool) (*cache.Block, error) {
	if b := fs.bc.Get(indKey(ino, id)); b != nil {
		fs.cpu.Charge(fs.cfg.Costs.BlockSetup)
		return b, nil
	}
	if addr.IsNil() {
		if !create {
			return nil, nil
		}
		b := fs.bc.Add(indKey(ino, id))
		fillNil(b.Data)
		fs.bc.MarkDirty(b, fs.clock.Now())
		return b, nil
	}
	b := fs.bc.Add(indKey(ino, id))
	fs.cpu.Charge(fs.cfg.Costs.BlockSetup + fs.cfg.Costs.DiskOpSetup)
	if err := fs.d.ReadSectors(int64(addr), b.Data, disk.CauseReadMiss, "indirect read"); err != nil {
		fs.bc.Remove(indKey(ino, id))
		return nil, err
	}
	return b, nil
}

// blockAddrOf returns the current on-disk address of data block lbn,
// or NilAddr when the block has never been written (a hole or a
// cache-only block).
func (fs *FS) blockAddrOf(in *layout.Inode, lbn int64) (layout.DiskAddr, error) {
	path, err := layout.MapBlock(lbn, fs.cfg.BlockSize)
	if err != nil {
		return layout.NilAddr, err
	}
	switch path.Level {
	case 0:
		return in.Direct[path.Direct], nil
	case 1:
		ib, err := fs.getIndirect(in.Ino, indSingle, in.Indirect, false)
		if err != nil || ib == nil {
			return layout.NilAddr, err
		}
		return loadAddr(ib, path.Inner), nil
	default:
		outer, err := fs.getIndirect(in.Ino, indDoubleOuter, in.DoubleIndirect, false)
		if err != nil || outer == nil {
			return layout.NilAddr, err
		}
		innerAddr := loadAddr(outer, path.Outer)
		inner, err := fs.getIndirect(in.Ino, indDoubleInnerBase+int64(path.Outer), innerAddr, false)
		if err != nil || inner == nil {
			return layout.NilAddr, err
		}
		return loadAddr(inner, path.Inner), nil
	}
}

// setBlockAddr points lbn at addr, creating and dirtying indirect
// blocks as needed (this is how the segment writer redirects pointers
// to a block's new log location). It returns the address previously
// stored there.
func (fs *FS) setBlockAddr(in *layout.Inode, lbn int64, addr layout.DiskAddr) (layout.DiskAddr, error) {
	path, err := layout.MapBlock(lbn, fs.cfg.BlockSize)
	if err != nil {
		return layout.NilAddr, err
	}
	switch path.Level {
	case 0:
		old := in.Direct[path.Direct]
		if old != addr {
			in.Direct[path.Direct] = addr
			fs.markInodeDirty(in.Ino)
		}
		return old, nil
	case 1:
		ib, err := fs.getIndirect(in.Ino, indSingle, in.Indirect, true)
		if err != nil {
			return layout.NilAddr, err
		}
		old := loadAddr(ib, path.Inner)
		if old != addr {
			storeAddr(ib, path.Inner, addr)
			fs.bc.MarkDirty(ib, fs.clock.Now())
		}
		return old, nil
	default:
		outer, err := fs.getIndirect(in.Ino, indDoubleOuter, in.DoubleIndirect, true)
		if err != nil {
			return layout.NilAddr, err
		}
		innerAddr := loadAddr(outer, path.Outer)
		inner, err := fs.getIndirect(in.Ino, indDoubleInnerBase+int64(path.Outer), innerAddr, true)
		if err != nil {
			return layout.NilAddr, err
		}
		old := loadAddr(inner, path.Inner)
		if old != addr {
			storeAddr(inner, path.Inner, addr)
			fs.bc.MarkDirty(inner, fs.clock.Now())
		}
		return old, nil
	}
}

// indirectAddrOf returns the current on-disk address of indirect
// block id of the file, looking through the inode (for the single and
// outer blocks) or the outer indirect block (for inner blocks).
func (fs *FS) indirectAddrOf(in *layout.Inode, id int64) (layout.DiskAddr, error) {
	switch {
	case id == indSingle:
		return in.Indirect, nil
	case id == indDoubleOuter:
		return in.DoubleIndirect, nil
	default:
		outer, err := fs.getIndirect(in.Ino, indDoubleOuter, in.DoubleIndirect, false)
		if err != nil || outer == nil {
			return layout.NilAddr, err
		}
		return loadAddr(outer, int(id-indDoubleInnerBase)), nil
	}
}

// setIndirectAddr redirects indirect block id to addr, dirtying the
// parent (inode or outer indirect block). It returns the previous
// address.
func (fs *FS) setIndirectAddr(in *layout.Inode, id int64, addr layout.DiskAddr) (layout.DiskAddr, error) {
	switch {
	case id == indSingle:
		old := in.Indirect
		in.Indirect = addr
		fs.markInodeDirty(in.Ino)
		return old, nil
	case id == indDoubleOuter:
		old := in.DoubleIndirect
		in.DoubleIndirect = addr
		fs.markInodeDirty(in.Ino)
		return old, nil
	default:
		outer, err := fs.getIndirect(in.Ino, indDoubleOuter, in.DoubleIndirect, true)
		if err != nil {
			return layout.NilAddr, err
		}
		idx := int(id - indDoubleInnerBase)
		old := loadAddr(outer, idx)
		storeAddr(outer, idx, addr)
		fs.bc.MarkDirty(outer, fs.clock.Now())
		return old, nil
	}
}
