// Package server drives a file system with N closed-loop simulated
// clients — the paper's office-and-engineering environment of "many
// users sharing one server", where sync requests from different users
// overlap and the log can satisfy several of them with one segment
// write (§4.1).
//
// Each client issues small-file write/fsync operations in a loop:
// think, write, then fsync as a *separate* scheduled event. Splitting
// the op in two is the point of the exercise — between one client's
// write and its fsync the event loop runs other clients' writes, so by
// the time the first fsync fires the cache holds several clients'
// dirty data. With Config.GroupCommit enabled on LFS, that first fsync
// flushes everything in one segment transfer and the other clients'
// fsyncs piggyback; FFS gains nothing because its per-file costs are
// dominated by scattered synchronous metadata writes.
//
// Everything runs on one goroutine over one simulated clock
// (internal/sched), so a run is a pure function of the seed: same
// seed, same interleaving, byte-identical traces.
package server

import (
	"errors"
	"fmt"
	"math/rand"

	"lfs/internal/obs"
	"lfs/internal/sched"
	"lfs/internal/sim"
	"lfs/internal/vfs"
)

// FS is the surface the server drives: the common VFS operations plus
// the hooks both file systems provide for attribution and timing.
type FS interface {
	vfs.FileSystem
	// SetClient labels subsequent operations with the issuing
	// client's ID for span and I/O attribution.
	SetClient(id int)
	// Clock is the simulated clock the file system runs on; the
	// event loop shares it.
	Clock() *sim.Clock
}

// fileSyncer is the optional single-file sync (LFS has it). Targets
// without it fall back to Sync, which is what fsync cost on the FFS
// of the day: forcing the file's blocks plus whatever else is dirty.
type fileSyncer interface {
	FsyncFile(path string) error
}

// metricsTicker is the optional metrics-plane pump (LFS has it when a
// sampler is attached). The loop schedules periodic ticks so think-time
// gaps between operations still produce samples.
type metricsTicker interface {
	TickMetrics()
}

// waitNoter is the optional pre-operation wait attribution hook (all
// three file systems have it). The server notes scheduler dispatch
// gaps — an event firing later than scheduled because other clients'
// operations consumed the intervening simulated time — so the next
// span's phase decomposition carries the serialization wait
// (obs.PhaseLockWait) instead of silently losing it.
type waitNoter interface {
	NoteWait(kind obs.PhaseKind, d sim.Duration)
}

// Config shapes a multi-client run.
type Config struct {
	// Clients is the number of closed-loop clients.
	Clients int
	// OpsPerClient is how many write+fsync operations each client
	// issues.
	OpsPerClient int
	// WriteSize is the bytes written per operation.
	WriteSize int
	// FilesPerClient is how many files each client cycles through.
	FilesPerClient int
	// ThinkTime is the mean simulated pause between one operation
	// completing and the next being issued; each pause is jittered
	// uniformly in [0, ThinkTime) plus a sub-microsecond stagger so
	// clients do not stay in lockstep. Zero means back-to-back.
	ThinkTime sim.Duration
	// Seed makes the run reproducible; it feeds the event loop and
	// every per-client RNG.
	Seed int64
	// MetricsInterval, when positive, schedules periodic metrics-pump
	// events calling the target's TickMetrics at this spacing, so
	// samples land even inside think-time gaps. The pump is cancelled
	// the moment the last operation completes — it never extends the
	// run — and its events are excluded from Result.Events, so a
	// metrics-enabled run reports identical results. Ignored for
	// targets without a metrics plane.
	MetricsInterval sim.Duration
	// OnOpError, when non-nil, is consulted on every operation error.
	// Returning true tolerates the failure: it is counted in the
	// client's Errors, the operation is abandoned, and the client
	// moves on to its next operation after a think pause. Returning
	// false — or leaving the hook nil — aborts the run with the
	// error, the default. Fault-injection experiments use it to keep
	// healthy shards committing while one shard is down.
	OnOpError func(client int, err error) bool
}

// DefaultConfig returns a small-file commit workload: 4 KB writes,
// each fsynced, no think time.
func DefaultConfig() Config {
	return Config{
		Clients:        4,
		OpsPerClient:   64,
		WriteSize:      4096,
		FilesPerClient: 8,
		Seed:           1,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Clients < 1 {
		return fmt.Errorf("server: %d clients", c.Clients)
	}
	if c.OpsPerClient < 1 {
		return fmt.Errorf("server: %d ops per client", c.OpsPerClient)
	}
	if c.WriteSize < 1 {
		return fmt.Errorf("server: write size %d", c.WriteSize)
	}
	if c.FilesPerClient < 1 {
		return fmt.Errorf("server: %d files per client", c.FilesPerClient)
	}
	if c.ThinkTime < 0 {
		return fmt.Errorf("server: negative think time %v", c.ThinkTime)
	}
	if c.MetricsInterval < 0 {
		return fmt.Errorf("server: negative metrics interval %v", c.MetricsInterval)
	}
	return nil
}

// ClientStats is one client's view of the run.
type ClientStats struct {
	// Client is the client ID (1-based; 0 means unattributed).
	Client int
	// Ops counts completed write+fsync operations.
	Ops int64
	// Errors counts operations abandoned after a tolerated error
	// (Config.OnOpError returned true); always zero without the hook.
	Errors int64
	// BytesWritten counts payload bytes.
	BytesWritten int64
	// TotalLatency sums write-to-fsync-completion latencies.
	TotalLatency sim.Duration
	// MaxLatency is the worst single operation.
	MaxLatency sim.Duration
	// Latency is the distribution of per-operation latencies in
	// seconds, for percentile reporting (Quantile).
	Latency obs.Histogram
}

// MeanLatency returns the client's average operation latency.
func (s ClientStats) MeanLatency() sim.Duration {
	if s.Ops == 0 {
		return 0
	}
	return s.TotalLatency / sim.Duration(s.Ops)
}

// Result summarises a multi-client run.
type Result struct {
	// Clients echoes the client count.
	Clients int
	// Ops and BytesWritten total over all clients.
	Ops          int64
	BytesWritten int64
	// Errors totals tolerated operation errors over all clients.
	Errors int64
	// Start and End bound the run in simulated time.
	Start sim.Time
	End   sim.Time
	// Events is the number of scheduler events processed.
	Events int64
	// PerClient holds each client's statistics, in client order.
	PerClient []ClientStats
}

// Elapsed returns the simulated duration of the run.
func (r Result) Elapsed() sim.Duration { return r.End.Sub(r.Start) }

// OpsPerSecond returns aggregate throughput in operations per
// simulated second.
func (r Result) OpsPerSecond() float64 {
	el := r.Elapsed().Seconds()
	if el <= 0 {
		return 0
	}
	return float64(r.Ops) / el
}

// Run drives cfg.Clients closed-loop clients against fsys until every
// client has issued its operations, then returns the aggregate result.
// The first operation error aborts the run and is returned, unless
// Config.OnOpError tolerates it. Runs are idempotent over an existing
// client tree — directories and files left by an earlier Run against
// the same target are reused — so multi-phase experiments can call
// Run repeatedly on one file system.
func Run(fsys FS, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	loop := sched.NewLoop(fsys.Clock(), cfg.Seed)
	res := Result{
		Clients:   cfg.Clients,
		Start:     fsys.Clock().Now(),
		PerClient: make([]ClientStats, cfg.Clients),
	}
	// The metrics pump keeps exactly one pending tick event; it is
	// cancelled when the run ends (last op or first error), so it
	// never advances the clock past the real end of the run, and its
	// firings are subtracted from Result.Events so the event count is
	// identical with metrics on or off.
	var pumpID sched.EventID
	var pumpFired int64
	stopPump := func() {
		if pumpID != 0 {
			loop.Cancel(pumpID)
			pumpID = 0
		}
	}

	// Dispatch-gap attribution: an event that fires later than its
	// scheduled instant waited for the file system, serialized behind
	// other clients. The gap is noted before the operation runs so
	// its span starts at the scheduled time and carries the wait as
	// an explicit lock_wait phase. Pure arithmetic on clock reads —
	// the timeline, event count, and results are unchanged.
	noter, _ := fsys.(waitNoter)
	noteDispatchGap := func(intended sim.Time) {
		if noter == nil {
			return
		}
		if gap := loop.Clock().Now().Sub(intended); gap > 0 {
			noter.NoteWait(obs.PhaseLockWait, gap)
		}
	}

	opsLeft := cfg.Clients * cfg.OpsPerClient
	var firstErr error
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
		stopPump()
	}
	// tolerate routes an operation error through Config.OnOpError:
	// true means the client abandons the op and moves on.
	tolerate := func(st *ClientStats, err error) bool {
		if cfg.OnOpError != nil && cfg.OnOpError(st.Client, err) {
			st.Errors++
			return true
		}
		fail(err)
		return false
	}

	// Per-client working directories, created up front so the run
	// itself is pure write/fsync traffic. A directory left over from
	// an earlier run against the same target is fine.
	for c := 1; c <= cfg.Clients; c++ {
		fsys.SetClient(c)
		if err := fsys.Mkdir(clientDir(c)); err != nil && !errors.Is(err, vfs.ErrExist) {
			fsys.SetClient(0)
			return Result{}, err
		}
	}

	payload := make([]byte, cfg.WriteSize)
	for c := 1; c <= cfg.Clients; c++ {
		client := c
		st := &res.PerClient[client-1]
		st.Client = client
		// Each client draws think-time jitter from its own seeded
		// stream, so adding a client never perturbs the others'
		// schedules.
		rng := rand.New(rand.NewSource(cfg.Seed + int64(client)*0x9e3779b9))
		st.Latency = obs.NewLatencyHistogram()
		created := make([]bool, cfg.FilesPerClient)
		n := 0
		// intendedWrite is when the client's next write event is due;
		// the difference between it and the actual fire time is the
		// dispatch gap noted to the wait hook.
		var intendedWrite sim.Time
		var issue func()
		// next retires the current operation — completed or
		// abandoned after a tolerated error — and schedules the
		// client's following one.
		next := func() {
			n++
			opsLeft--
			if opsLeft == 0 {
				stopPump()
			}
			if n < cfg.OpsPerClient {
				d := think(rng, cfg.ThinkTime)
				intendedWrite = loop.Clock().Now().Add(d)
				loop.After(d, "write", issue)
			}
		}
		issue = func() {
			if firstErr != nil {
				return
			}
			noteDispatchGap(intendedWrite)
			slot := n % cfg.FilesPerClient
			path := fmt.Sprintf("%s/f%03d", clientDir(client), slot)
			start := loop.Clock().Now()
			fsys.SetClient(client)
			if !created[slot] {
				// A file surviving from an earlier run is reused.
				if err := fsys.Create(path); err != nil && !errors.Is(err, vfs.ErrExist) {
					if tolerate(st, err) {
						next()
					}
					return
				}
				created[slot] = true
			}
			if err := fsys.Write(path, 0, payload); err != nil {
				if tolerate(st, err) {
					next()
				}
				return
			}
			// The fsync is a separate event: other clients' writes
			// scheduled at or before now run first, so the sync
			// request finds a batch to commit, not just this file.
			// Any writes that do run in between show up as the
			// fsync span's dispatch gap.
			fsyncIntended := loop.Clock().Now()
			loop.After(0, "fsync", func() {
				if firstErr != nil {
					return
				}
				noteDispatchGap(fsyncIntended)
				fsys.SetClient(client)
				if err := syncFile(fsys, path); err != nil {
					if tolerate(st, err) {
						next()
					}
					return
				}
				lat := loop.Clock().Now().Sub(start)
				st.Ops++
				st.BytesWritten += int64(len(payload))
				st.TotalLatency += lat
				if lat > st.MaxLatency {
					st.MaxLatency = lat
				}
				st.Latency.Observe(lat.Seconds())
				next()
			})
		}
		// Stagger the first issue by one nanosecond per client: a
		// deterministic ramp that fixes the initial arrival order
		// without meaningfully offsetting the clients.
		intendedWrite = res.Start.Add(sim.Duration(client))
		loop.At(intendedWrite, "write", issue)
	}

	if cfg.MetricsInterval > 0 {
		if mt, ok := fsys.(metricsTicker); ok {
			var pump func()
			pump = func() {
				pumpFired++
				pumpID = 0
				mt.TickMetrics()
				if firstErr == nil && opsLeft > 0 {
					pumpID = loop.After(cfg.MetricsInterval, "metrics", pump)
				}
			}
			pumpID = loop.After(cfg.MetricsInterval, "metrics", pump)
		}
	}

	res.Events = loop.Run() - pumpFired
	fsys.SetClient(0)
	if firstErr != nil {
		return Result{}, firstErr
	}
	res.End = fsys.Clock().Now()
	for i := range res.PerClient {
		res.Ops += res.PerClient[i].Ops
		res.BytesWritten += res.PerClient[i].BytesWritten
		res.Errors += res.PerClient[i].Errors
	}
	return res, nil
}

// clientDir returns client c's working directory.
func clientDir(c int) string { return fmt.Sprintf("/client%02d", c) }

// think draws the pause before a client's next operation: uniform
// jitter in [0, mean) on top of a sub-microsecond floor, so same-seed
// runs repeat exactly and zero think time still breaks lockstep.
func think(rng *rand.Rand, mean sim.Duration) sim.Duration {
	d := sim.Duration(rng.Int63n(1000))
	if mean > 0 {
		d += sim.Duration(rng.Int63n(int64(mean)))
	}
	return d
}

// syncFile forces path's data to disk, preferring the single-file
// fsync when the target has one.
func syncFile(fsys FS, path string) error {
	if s, ok := fsys.(fileSyncer); ok {
		return s.FsyncFile(path)
	}
	return fsys.Sync()
}
