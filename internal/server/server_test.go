package server_test

import (
	"bytes"
	"reflect"
	"testing"

	"lfs/internal/core"
	"lfs/internal/disk"
	"lfs/internal/ffs"
	"lfs/internal/obs"
	"lfs/internal/server"
	"lfs/internal/sim"
)

// newLFS mounts a fresh LFS with group commit and a trace recorder.
func newLFS(t *testing.T, group bool) (*core.FS, *obs.Recorder) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.MaxInodes = 4096
	cfg.GroupCommit = group
	cfg.Trace = obs.NewRecorder()
	d := disk.NewMem(128<<20, sim.NewClock())
	if err := core.Format(d, cfg); err != nil {
		t.Fatal(err)
	}
	fs, err := core.Mount(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fs, cfg.Trace
}

// newFFS mounts a fresh FFS baseline.
func newFFS(t *testing.T) *ffs.FS {
	t.Helper()
	cfg := ffs.DefaultConfig()
	d := disk.NewMem(128<<20, sim.NewClock())
	if err := ffs.Format(d, cfg); err != nil {
		t.Fatal(err)
	}
	fs, err := ffs.Mount(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

// TestRunCompletesAllOps checks every client finishes its quota and
// the totals add up, on both file systems.
func TestRunCompletesAllOps(t *testing.T) {
	cfg := server.DefaultConfig()
	cfg.Clients = 3
	cfg.OpsPerClient = 10

	lfs, _ := newLFS(t, true)
	res, err := server.Run(lfs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != int64(cfg.Clients*cfg.OpsPerClient) {
		t.Errorf("LFS ops %d, want %d", res.Ops, cfg.Clients*cfg.OpsPerClient)
	}
	for _, st := range res.PerClient {
		if st.Ops != int64(cfg.OpsPerClient) {
			t.Errorf("client %d did %d ops, want %d", st.Client, st.Ops, cfg.OpsPerClient)
		}
		if st.MeanLatency() <= 0 {
			t.Errorf("client %d mean latency %v, want > 0", st.Client, st.MeanLatency())
		}
	}
	if res.OpsPerSecond() <= 0 {
		t.Errorf("throughput %v, want > 0", res.OpsPerSecond())
	}

	fres, err := server.Run(newFFS(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fres.Ops != res.Ops {
		t.Errorf("FFS ops %d, want %d", fres.Ops, res.Ops)
	}
}

// TestGroupCommitBatchesClients verifies the concurrency mechanism end
// to end: with several clients interleaving, most fsyncs piggyback on
// another client's group commit.
func TestGroupCommitBatchesClients(t *testing.T) {
	cfg := server.DefaultConfig()
	cfg.Clients = 8
	cfg.OpsPerClient = 16

	lfs, _ := newLFS(t, true)
	if _, err := server.Run(lfs, cfg); err != nil {
		t.Fatal(err)
	}
	st := lfs.Stats()
	if st.GroupCommits == 0 || st.PiggybackedSyncs == 0 {
		t.Fatalf("no batching: %d group commits, %d piggybacks", st.GroupCommits, st.PiggybackedSyncs)
	}
	// With 8 clients most sync requests should ride someone else's
	// commit; demand at least a 2:1 piggyback ratio.
	if st.PiggybackedSyncs < 2*st.GroupCommits {
		t.Errorf("piggybacks %d < 2x group commits %d; batching too weak",
			st.PiggybackedSyncs, st.GroupCommits)
	}
}

// TestClientAttribution verifies spans and disk events carry the
// issuing client's ID.
func TestClientAttribution(t *testing.T) {
	cfg := server.DefaultConfig()
	cfg.Clients = 3
	cfg.OpsPerClient = 4

	lfs, rec := newLFS(t, true)
	if _, err := server.Run(lfs, cfg); err != nil {
		t.Fatal(err)
	}
	opsByClient := make(map[int]int)
	for _, s := range rec.Spans() {
		opsByClient[s.Client]++
	}
	for c := 1; c <= cfg.Clients; c++ {
		if opsByClient[c] == 0 {
			t.Errorf("no spans attributed to client %d: %v", c, opsByClient)
		}
	}
	ioByClient := make(map[int]int)
	for _, ev := range rec.Events() {
		ioByClient[ev.Client]++
	}
	var attributed int
	for c := 1; c <= cfg.Clients; c++ {
		attributed += ioByClient[c]
	}
	if attributed == 0 {
		t.Errorf("no disk events attributed to any client: %v", ioByClient)
	}
}

// TestDeterminism is the golden determinism check from the issue: two
// same-seed runs must produce byte-identical JSONL traces and
// identical statistics snapshots.
func TestDeterminism(t *testing.T) {
	run := func() ([]byte, core.StatsSnapshot) {
		cfg := server.DefaultConfig()
		cfg.Clients = 6
		cfg.OpsPerClient = 12
		cfg.ThinkTime = 2 * sim.Millisecond
		lfs, rec := newLFS(t, true)
		if _, err := server.Run(lfs, cfg); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rec.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), lfs.StatsSnapshot()
	}
	trace1, snap1 := run()
	trace2, snap2 := run()
	if !bytes.Equal(trace1, trace2) {
		t.Errorf("same-seed traces differ (%d vs %d bytes)", len(trace1), len(trace2))
	}
	if !reflect.DeepEqual(snap1, snap2) {
		t.Errorf("same-seed snapshots differ:\n%+v\nvs\n%+v", snap1, snap2)
	}
	// Different seed must actually change the schedule, or the
	// determinism check above is vacuous.
	cfg := server.DefaultConfig()
	cfg.Clients = 6
	cfg.OpsPerClient = 12
	cfg.ThinkTime = 2 * sim.Millisecond
	cfg.Seed = 99
	lfs, rec := newLFS(t, true)
	if _, err := server.Run(lfs, cfg); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(trace1, buf.Bytes()) {
		t.Errorf("different seeds produced identical traces")
	}
}

// TestConfigValidation rejects bad configurations.
func TestConfigValidation(t *testing.T) {
	bad := []server.Config{
		{Clients: 0, OpsPerClient: 1, WriteSize: 1, FilesPerClient: 1},
		{Clients: 1, OpsPerClient: 0, WriteSize: 1, FilesPerClient: 1},
		{Clients: 1, OpsPerClient: 1, WriteSize: 0, FilesPerClient: 1},
		{Clients: 1, OpsPerClient: 1, WriteSize: 1, FilesPerClient: 0},
		{Clients: 1, OpsPerClient: 1, WriteSize: 1, FilesPerClient: 1, ThinkTime: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d validated: %+v", i, cfg)
		}
	}
	lfs, _ := newLFS(t, false)
	if _, err := server.Run(lfs, server.Config{}); err == nil {
		t.Error("Run accepted the zero config")
	}
}

// TestMetricsPumpIsInvisible runs the identical workload with and
// without a metrics sampler attached: the Result (times, events, every
// per-client stat) must be identical, the pump must not extend the
// run past the last operation, and samples must actually land.
func TestMetricsPumpIsInvisible(t *testing.T) {
	cfg := server.DefaultConfig()
	cfg.Clients = 3
	cfg.OpsPerClient = 20
	cfg.ThinkTime = 5 * sim.Millisecond

	base, _ := newLFS(t, true)
	want, err := server.Run(base, cfg)
	if err != nil {
		t.Fatal(err)
	}

	lcfg := core.DefaultConfig()
	lcfg.MaxInodes = 4096
	lcfg.GroupCommit = true
	lcfg.Metrics = obs.NewSampler(sim.Millisecond)
	d := disk.NewMem(128<<20, sim.NewClock())
	if err := core.Format(d, lcfg); err != nil {
		t.Fatal(err)
	}
	lfs, err := core.Mount(d, lcfg)
	if err != nil {
		t.Fatal(err)
	}
	mcfg := cfg
	mcfg.MetricsInterval = sim.Millisecond
	got, err := server.Run(lfs, mcfg)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(got, want) {
		t.Errorf("metrics-enabled Result differs:\n got %+v\nwant %+v", got, want)
	}
	samples := lcfg.Metrics.Samples()
	if len(samples) < 3 {
		t.Fatalf("%d samples, want several (pump every %v over %v)",
			len(samples), sim.Millisecond, got.Elapsed())
	}
	if last := samples[len(samples)-1]; sim.Time(last.Time) > got.End {
		t.Errorf("last sample at %v is past run end %v: pump extended the run",
			sim.Time(last.Time), got.End)
	}
}

// TestClientLatencyHistogram checks the per-client latency histograms
// are populated and consistent with the op counts.
func TestClientLatencyHistogram(t *testing.T) {
	cfg := server.DefaultConfig()
	cfg.Clients = 2
	cfg.OpsPerClient = 8

	lfs, _ := newLFS(t, true)
	res, err := server.Run(lfs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range res.PerClient {
		if st.Latency.Total() != st.Ops {
			t.Errorf("client %d: histogram holds %d observations, want %d",
				st.Client, st.Latency.Total(), st.Ops)
		}
		p50, p95, p99 := st.Latency.Quantile(0.5), st.Latency.Quantile(0.95), st.Latency.Quantile(0.99)
		if p50 <= 0 || p50 > p95 || p95 > p99 {
			t.Errorf("client %d: percentiles not monotone: p50 %v p95 %v p99 %v",
				st.Client, p50, p95, p99)
		}
	}
}
