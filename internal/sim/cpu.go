package sim

import "fmt"

// CPU charges instruction costs against a Clock at a fixed MIPS
// (million instructions per second) rating. The paper's machines are
// characterised by their MIPS ratings (a 0.9-MIPS MicroVAX II, a
// 14-MIPS DECstation 3100, and the 16.6 MHz SPARC of the Sun-4/260),
// and the §3.1 argument — synchronous disk I/O decouples application
// speed from CPU speed — is reproduced by sweeping this rating.
type CPU struct {
	mips  float64
	clock *Clock

	// instructions counts the total instructions charged, for
	// reporting CPU-boundedness in experiment output.
	instructions int64
}

// Sun4MIPS approximates the Sun-4/260 used in the paper's evaluation.
const Sun4MIPS = 10.0

// NewCPU returns a CPU with the given MIPS rating charging the given
// clock. A non-positive rating panics: it would make time stand still
// or run backwards.
func NewCPU(mips float64, clock *Clock) *CPU {
	if mips <= 0 {
		panic(fmt.Sprintf("sim: non-positive MIPS rating %v", mips))
	}
	if clock == nil {
		panic("sim: NewCPU with nil clock")
	}
	return &CPU{mips: mips, clock: clock}
}

// MIPS returns the CPU's rating.
func (c *CPU) MIPS() float64 { return c.mips }

// Charge advances the clock by the time needed to execute n
// instructions. Charging a negative count panics.
func (c *CPU) Charge(n int64) {
	if n < 0 {
		panic(fmt.Sprintf("sim: negative instruction charge %d", n))
	}
	if n == 0 {
		return
	}
	c.instructions += n
	// n instructions at mips*1e6 instructions/second.
	ns := float64(n) / c.mips * 1e3 // = n/(mips*1e6) * 1e9
	c.clock.Advance(Duration(ns))
}

// Instructions returns the total instructions charged so far.
func (c *CPU) Instructions() int64 { return c.instructions }

// Costs is the per-operation instruction cost table shared by both
// file systems. The absolute values are calibrated so that, at the
// Sun-4/260's rating, LFS small-file creation is CPU-bound at a few
// hundred files per second (paper §5.1) while FFS remains bound by its
// synchronous disk writes. Experiments that sweep CPU speed leave this
// table fixed and vary only the MIPS rating.
type Costs struct {
	// Syscall is the fixed entry/exit overhead of any file system
	// call (trap, argument copy, dispatch).
	Syscall int64
	// PathComponent is charged per path component resolved during
	// lookup (directory search in the cache).
	PathComponent int64
	// Create covers inode allocation and directory entry insertion.
	Create int64
	// Unlink covers directory entry removal and inode free.
	Unlink int64
	// BlockSetup is charged per block touched by read or write
	// (cache lookup, bookkeeping).
	BlockSetup int64
	// CopyPerByte is charged per byte moved between the user buffer
	// and the cache.
	CopyPerByte float64
	// SegWriteSetup is charged per segment (or partial segment)
	// write assembled by the LFS writer.
	SegWriteSetup int64
	// SegBlockLayout is charged per block packed into a segment
	// (summary entry construction, address rewrite).
	SegBlockLayout int64
	// CleanPerBlock is charged per block examined by the cleaner
	// (liveness check plus copy bookkeeping).
	CleanPerBlock int64
	// CheckpointSetup is charged per checkpoint write.
	CheckpointSetup int64
	// DiskOpSetup is charged per disk request issued (driver and
	// interrupt overhead).
	DiskOpSetup int64
}

// DefaultCosts returns the calibrated cost table described above.
func DefaultCosts() Costs {
	return Costs{
		Syscall:         2000,
		PathComponent:   1500,
		Create:          12000,
		Unlink:          9000,
		BlockSetup:      2500,
		CopyPerByte:     1.0,
		SegWriteSetup:   40000,
		SegBlockLayout:  1200,
		CleanPerBlock:   2500,
		CheckpointSetup: 25000,
		DiskOpSetup:     1500,
	}
}

// Copy returns the instruction cost of copying n bytes.
func (c Costs) Copy(n int) int64 {
	if n <= 0 {
		return 0
	}
	//lfslint:allow floataccum the per-byte cost model is evaluated fresh per call; truncation is deterministic and nothing accumulates in float
	return int64(c.CopyPerByte * float64(n))
}
