// Package sim provides the simulated-time substrate used by the whole
// repository: a deterministic virtual clock, a CPU cost model expressed
// in instructions at a configurable MIPS rating, and duration helpers.
//
// The LFS paper's results are produced by the gap between disk latency
// and disk bandwidth, and by the gap between CPU speed and both. To
// reproduce those shapes deterministically on modern hardware, all
// "elapsed time" in this repository is simulated: file systems charge
// CPU instructions for the work they do, and the simulated disk charges
// seek/rotation/transfer time for every I/O. Synchronous I/O advances
// the caller's clock; asynchronous I/O only extends the disk's busy
// horizon, modelling overlap of computation with background writes.
package sim

import (
	"fmt"
	"time"
)

// Time is a point on the simulated timeline, in nanoseconds since the
// start of the simulation. It is intentionally a distinct type from
// time.Time so that wall-clock time cannot leak into measurements.
type Time int64

// Duration is a span of simulated time in nanoseconds. It converts
// freely to and from time.Duration, which is also nanoseconds.
type Duration = time.Duration

// Common durations re-exported for convenience.
const (
	Nanosecond  = time.Nanosecond
	Microsecond = time.Microsecond
	Millisecond = time.Millisecond
	Second      = time.Second
)

// Add returns the time t+d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns the time as a float64 number of seconds since the
// simulation epoch.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time as a duration since the simulation epoch.
func (t Time) String() string { return Duration(t).String() }

// MaxTime returns the later of a and b.
func MaxTime(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Clock is the simulated process timeline. It is not safe for
// concurrent use; the owning file system serialises access under its
// own lock, which mirrors the single-system-image semantics of the
// paper's measurements.
type Clock struct {
	now Time
}

// NewClock returns a clock positioned at the simulation epoch.
func NewClock() *Clock { return &Clock{} }

// Now returns the current simulated time.
func (c *Clock) Now() Time { return c.now }

// Advance moves the clock forward by d. Negative advances are a
// programming error and panic: simulated time never runs backwards.
func (c *Clock) Advance(d Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative clock advance %v", d))
	}
	c.now += Time(d)
}

// AdvanceTo moves the clock forward to t if t is in the future; it is
// a no-op when t is in the past. It returns the new current time.
func (c *Clock) AdvanceTo(t Time) Time {
	if t > c.now {
		c.now = t
	}
	return c.now
}

// Reset rewinds the clock to the epoch. Only tests should call this.
func (c *Clock) Reset() { c.now = 0 }
