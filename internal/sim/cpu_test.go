package sim

import (
	"testing"
	"testing/quick"
)

func TestCPUCharge(t *testing.T) {
	clock := NewClock()
	cpu := NewCPU(10, clock) // 10 MIPS: 1e7 instructions/second.
	cpu.Charge(1e7)
	if got := clock.Now(); got != Time(Second) {
		t.Fatalf("1e7 instructions at 10 MIPS took %v, want 1s", got)
	}
	if cpu.Instructions() != 1e7 {
		t.Fatalf("Instructions = %d", cpu.Instructions())
	}
}

func TestCPUChargeZero(t *testing.T) {
	clock := NewClock()
	cpu := NewCPU(1, clock)
	cpu.Charge(0)
	if clock.Now() != 0 {
		t.Fatal("zero charge advanced clock")
	}
}

func TestCPUChargeNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative charge did not panic")
		}
	}()
	NewCPU(1, NewClock()).Charge(-1)
}

func TestCPUInvalidMIPSPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero MIPS did not panic")
		}
	}()
	NewCPU(0, NewClock())
}

func TestCPUNilClockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil clock did not panic")
		}
	}()
	NewCPU(1, nil)
}

func TestFasterCPUTakesLessTime(t *testing.T) {
	slow, fast := NewClock(), NewClock()
	NewCPU(0.9, slow).Charge(1e6)  // MicroVAX II
	NewCPU(14.0, fast).Charge(1e6) // DECstation 3100
	if slow.Now() <= fast.Now() {
		t.Fatalf("slow CPU (%v) not slower than fast CPU (%v)", slow.Now(), fast.Now())
	}
	ratio := float64(slow.Now()) / float64(fast.Now())
	if ratio < 15 || ratio > 16 {
		t.Fatalf("speed ratio = %.2f, want ~15.6 (14/0.9)", ratio)
	}
}

func TestCostsCopy(t *testing.T) {
	c := DefaultCosts()
	if c.Copy(0) != 0 || c.Copy(-5) != 0 {
		t.Fatal("Copy of non-positive size should cost 0")
	}
	if got := c.Copy(1000); got != int64(1000*c.CopyPerByte) {
		t.Fatalf("Copy(1000) = %d", got)
	}
}

func TestDefaultCostsPositive(t *testing.T) {
	c := DefaultCosts()
	for name, v := range map[string]int64{
		"Syscall":         c.Syscall,
		"PathComponent":   c.PathComponent,
		"Create":          c.Create,
		"Unlink":          c.Unlink,
		"BlockSetup":      c.BlockSetup,
		"SegWriteSetup":   c.SegWriteSetup,
		"SegBlockLayout":  c.SegBlockLayout,
		"CleanPerBlock":   c.CleanPerBlock,
		"CheckpointSetup": c.CheckpointSetup,
		"DiskOpSetup":     c.DiskOpSetup,
	} {
		if v <= 0 {
			t.Errorf("default cost %s = %d, want > 0", name, v)
		}
	}
	if c.CopyPerByte <= 0 {
		t.Errorf("CopyPerByte = %v, want > 0", c.CopyPerByte)
	}
}

// Property: charging is additive — charging a+b equals charging a then b.
func TestCPUChargeAdditiveProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		c1, c2 := NewClock(), NewClock()
		cpu1, cpu2 := NewCPU(5, c1), NewCPU(5, c2)
		cpu1.Charge(int64(a) + int64(b))
		cpu2.Charge(int64(a))
		cpu2.Charge(int64(b))
		// Floating point rounding may differ by at most a nanosecond
		// per charge.
		diff := int64(c1.Now()) - int64(c2.Now())
		if diff < 0 {
			diff = -diff
		}
		return diff <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
