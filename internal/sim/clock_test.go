package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestClockStartsAtEpoch(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatalf("new clock at %v, want 0", c.Now())
	}
}

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	c.Advance(5 * Millisecond)
	if got := c.Now(); got != Time(5*Millisecond) {
		t.Fatalf("Now() = %v, want 5ms", got)
	}
	c.Advance(0)
	if got := c.Now(); got != Time(5*Millisecond) {
		t.Fatalf("zero advance moved clock to %v", got)
	}
}

func TestClockAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Advance did not panic")
		}
	}()
	NewClock().Advance(-1)
}

func TestClockAdvanceTo(t *testing.T) {
	c := NewClock()
	c.Advance(10 * Millisecond)
	// Past target is a no-op.
	if got := c.AdvanceTo(Time(3 * Millisecond)); got != Time(10*Millisecond) {
		t.Fatalf("AdvanceTo(past) = %v, want 10ms", got)
	}
	if got := c.AdvanceTo(Time(25 * Millisecond)); got != Time(25*Millisecond) {
		t.Fatalf("AdvanceTo(future) = %v, want 25ms", got)
	}
}

func TestClockReset(t *testing.T) {
	c := NewClock()
	c.Advance(time.Hour)
	c.Reset()
	if c.Now() != 0 {
		t.Fatalf("after Reset Now() = %v, want 0", c.Now())
	}
}

func TestTimeHelpers(t *testing.T) {
	a := Time(0).Add(3 * Second)
	if a != Time(3*Second) {
		t.Fatalf("Add = %v", a)
	}
	if d := a.Sub(Time(Second)); d != 2*Second {
		t.Fatalf("Sub = %v, want 2s", d)
	}
	if s := a.Seconds(); s != 3.0 {
		t.Fatalf("Seconds = %v, want 3", s)
	}
	if MaxTime(a, Time(Second)) != a || MaxTime(Time(Second), a) != a {
		t.Fatal("MaxTime wrong")
	}
	if a.String() != "3s" {
		t.Fatalf("String = %q", a.String())
	}
}

// Property: clock time is the sum of all advances, for any sequence of
// non-negative advances.
func TestClockAdvanceSumProperty(t *testing.T) {
	f := func(steps []uint16) bool {
		c := NewClock()
		var sum int64
		for _, s := range steps {
			c.Advance(Duration(s))
			sum += int64(s)
		}
		return c.Now() == Time(sum)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: AdvanceTo is monotone — the clock never moves backwards.
func TestClockMonotoneProperty(t *testing.T) {
	f := func(targets []int32) bool {
		c := NewClock()
		prev := c.Now()
		for _, raw := range targets {
			c.AdvanceTo(Time(raw))
			if c.Now() < prev {
				return false
			}
			prev = c.Now()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
