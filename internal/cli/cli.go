// Package cli holds small helpers shared by the command-line tools.
package cli

import (
	"fmt"
	"path/filepath"
	"strconv"
	"strings"
)

// ShardImagePath names shard i's image for a multi-shard volume
// rooted at base, inserting the shard index before the extension:
// "fs.img" → "fs.shard0.img", "vol" → "vol.shard2". Every shard image
// is a standalone LFS volume (see FORMAT.md); the naming is only a
// convention tying the set together on disk.
func ShardImagePath(base string, shard int) string {
	ext := filepath.Ext(base)
	return fmt.Sprintf("%s.shard%d%s", strings.TrimSuffix(base, ext), shard, ext)
}

// ParseSize parses a human-friendly byte size: a plain number, or a
// number suffixed with K, M, or G (binary multiples, case
// insensitive). Examples: "512", "4K", "300M", "1g".
func ParseSize(s string) (int64, error) {
	t := strings.TrimSpace(strings.ToUpper(s))
	if t == "" {
		return 0, fmt.Errorf("empty size")
	}
	mult := int64(1)
	switch t[len(t)-1] {
	case 'K':
		mult, t = 1<<10, t[:len(t)-1]
	case 'M':
		mult, t = 1<<20, t[:len(t)-1]
	case 'G':
		mult, t = 1<<30, t[:len(t)-1]
	}
	n, err := strconv.ParseInt(t, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q", s)
	}
	if n <= 0 {
		return 0, fmt.Errorf("non-positive size %q", s)
	}
	return n * mult, nil
}
