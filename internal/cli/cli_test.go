package cli

import "testing"

func TestParseSize(t *testing.T) {
	cases := map[string]int64{
		"512":  512,
		"4K":   4 << 10,
		"4k":   4 << 10,
		"300M": 300 << 20,
		"1G":   1 << 30,
		" 8M ": 8 << 20,
	}
	for in, want := range cases {
		got, err := ParseSize(in)
		if err != nil || got != want {
			t.Errorf("ParseSize(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "x", "12Q", "-5", "0", "K"} {
		if _, err := ParseSize(bad); err == nil {
			t.Errorf("ParseSize(%q) accepted", bad)
		}
	}
}
