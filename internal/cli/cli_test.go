package cli

import "testing"

func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want int64
	}{
		{"512", 512},
		{"4K", 4 << 10},
		{"4k", 4 << 10},
		{"300M", 300 << 20},
		{"1G", 1 << 30},
		{" 8M ", 8 << 20},
	}
	for _, tc := range cases {
		got, err := ParseSize(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseSize(%q) = %d, %v; want %d", tc.in, got, err, tc.want)
		}
	}
	for _, bad := range []string{"", "x", "12Q", "-5", "0", "K"} {
		if _, err := ParseSize(bad); err == nil {
			t.Errorf("ParseSize(%q) accepted", bad)
		}
	}
}

func TestShardImagePath(t *testing.T) {
	cases := []struct {
		base  string
		shard int
		want  string
	}{
		{"fs.img", 0, "fs.shard0.img"},
		{"fs.img", 12, "fs.shard12.img"},
		{"vol", 2, "vol.shard2"},
		{"dir/fs.img", 1, "dir/fs.shard1.img"},
	}
	for _, tc := range cases {
		if got := ShardImagePath(tc.base, tc.shard); got != tc.want {
			t.Errorf("ShardImagePath(%q, %d) = %q, want %q", tc.base, tc.shard, got, tc.want)
		}
	}
}
