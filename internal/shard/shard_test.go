package shard_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"lfs/internal/core"
	"lfs/internal/disk"
	"lfs/internal/fstest"
	"lfs/internal/server"
	"lfs/internal/shard"
	"lfs/internal/sim"
	"lfs/internal/vfs"
	"lfs/internal/workload"
)

// The router must satisfy every surface that drives a single LFS.
var (
	_ server.FS       = (*shard.FS)(nil)
	_ workload.System = (*shard.FS)(nil)
)

// testConfig is a small, fast per-shard configuration.
func testConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.CacheBlocks = 512
	cfg.GroupCommit = true
	return cfg
}

// newShards builds an n-shard system over 16 MB-per-shard disks.
func newShards(t *testing.T, n int, opts shard.Options) *shard.FS {
	t.Helper()
	fs, err := shard.NewMem(n, int64(n)*(16<<20), opts)
	if err != nil {
		t.Fatalf("NewMem(%d): %v", n, err)
	}
	return fs
}

// TestConformanceSingleShard runs the full VFS conformance suite
// against a one-shard router: with a single shard the router is a
// pure passthrough and must behave exactly like a bare core.FS.
func TestConformanceSingleShard(t *testing.T) {
	fstest.RunConformance(t, func(t *testing.T) vfs.FileSystem {
		return newShards(t, 1, shard.Options{Base: testConfig()})
	})
}

func TestPlacement(t *testing.T) {
	fs := newShards(t, 4, shard.Options{
		Base: testConfig(),
		Pins: map[string]int{"/pinned": 2, "/pinned/deeper": 2},
	})

	s1, err := fs.ShardFor("/some/file")
	if err != nil {
		t.Fatalf("ShardFor: %v", err)
	}
	s2, err := fs.ShardFor("/some/file/")
	if err != nil {
		t.Fatalf("ShardFor trailing slash: %v", err)
	}
	if s1 != s2 {
		t.Fatalf("equivalent spellings place differently: %d vs %d", s1, s2)
	}
	for _, p := range []string{"/pinned", "/pinned/a", "/pinned/deeper/x/y"} {
		s, err := fs.ShardFor(p)
		if err != nil {
			t.Fatalf("ShardFor(%s): %v", p, err)
		}
		if s != 2 {
			t.Fatalf("ShardFor(%s) = %d, want pinned shard 2", p, s)
		}
	}
	if _, err := fs.ShardFor("bad"); !errors.Is(err, vfs.ErrInvalid) {
		t.Fatalf("ShardFor(relative) = %v, want ErrInvalid", err)
	}
}

func TestPinValidation(t *testing.T) {
	mk := func(opts shard.Options) error {
		_, err := shard.NewMem(2, 32<<20, opts)
		return err
	}
	if err := mk(shard.Options{Base: testConfig(), Pins: map[string]int{"/a": 5}}); err == nil {
		t.Fatal("out-of-range pin accepted")
	}
	if err := mk(shard.Options{Base: testConfig(), Pins: map[string]int{"/": 0}}); err == nil {
		t.Fatal("root pin accepted")
	}
	if err := mk(shard.Options{Base: testConfig(), Pins: map[string]int{"/a": 0, "/a/b": 1}}); err == nil {
		t.Fatal("disagreeing nested pins accepted")
	}
	if err := mk(shard.Options{Base: testConfig(), Pins: map[string]int{"/a": 1, "/a/b": 1}}); err != nil {
		t.Fatalf("agreeing nested pins rejected: %v", err)
	}
}

// TestReplicatedDirs exercises Mkdir broadcast, merged ReadDir, and
// replicated-directory Remove across four shards.
func TestReplicatedDirs(t *testing.T) {
	fs := newShards(t, 4, shard.Options{Base: testConfig()})
	if err := fs.Mkdir("/d"); err != nil {
		t.Fatalf("mkdir: %v", err)
	}
	// The replicated directory must exist on every shard.
	for i := 0; i < fs.NumShards(); i++ {
		if _, err := fs.ShardFS(i).Stat("/d"); err != nil {
			t.Fatalf("shard %d missing /d: %v", i, err)
		}
	}
	// Spread files until at least two shards hold children of /d.
	used := map[int]bool{}
	var names []string
	for i := 0; len(used) < 2 || i < 8; i++ {
		name := fmt.Sprintf("f%02d", i)
		path := "/d/" + name
		if err := fs.Create(path); err != nil {
			t.Fatalf("create %s: %v", path, err)
		}
		s, _ := fs.ShardFor(path)
		used[s] = true
		names = append(names, name)
	}
	ents, err := fs.ReadDir("/d")
	if err != nil {
		t.Fatalf("readdir: %v", err)
	}
	if len(ents) != len(names) {
		t.Fatalf("readdir merged %d entries, want %d", len(ents), len(names))
	}
	for i, e := range ents {
		if i > 0 && ents[i-1].Name >= e.Name {
			t.Fatalf("readdir not name-sorted: %q then %q", ents[i-1].Name, e.Name)
		}
		// The merged entry must agree with Stat's inode.
		fi, err := fs.Stat("/d/" + e.Name)
		if err != nil {
			t.Fatalf("stat %s: %v", e.Name, err)
		}
		if fi.Ino != e.Ino {
			t.Fatalf("entry %s ino %d, stat ino %d", e.Name, e.Ino, fi.Ino)
		}
	}
	// ReadDir of a file must fail with the file's own ErrNotDir.
	if _, err := fs.ReadDir("/d/" + names[0]); !errors.Is(err, vfs.ErrNotDir) {
		t.Fatalf("readdir(file) = %v, want ErrNotDir", err)
	}
	// Removing a non-empty replicated directory fails everywhere.
	if err := fs.Remove("/d"); !errors.Is(err, vfs.ErrNotEmpty) {
		t.Fatalf("remove non-empty = %v, want ErrNotEmpty", err)
	}
	for _, n := range names {
		if err := fs.Remove("/d/" + n); err != nil {
			t.Fatalf("remove %s: %v", n, err)
		}
	}
	if err := fs.Remove("/d"); err != nil {
		t.Fatalf("remove empty dir: %v", err)
	}
	// Every replica must be gone.
	for i := 0; i < fs.NumShards(); i++ {
		if _, err := fs.ShardFS(i).Stat("/d"); !errors.Is(err, vfs.ErrNotExist) {
			t.Fatalf("shard %d still has /d (err=%v)", i, err)
		}
	}
}

// findNames returns sibling file names under dir whose placements
// land on the same shard as anchor (same=true) or a different shard
// (same=false).
func findName(t *testing.T, fs *shard.FS, dir, prefix, anchor string, same bool) string {
	t.Helper()
	as, err := fs.ShardFor(anchor)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		p := fmt.Sprintf("%s/%s%03d", dir, prefix, i)
		s, err := fs.ShardFor(p)
		if err != nil {
			t.Fatal(err)
		}
		if (s == as) == same {
			return p
		}
	}
	t.Fatalf("no candidate with same=%v placement as %s", same, anchor)
	return ""
}

func TestRenameAndLinkPlacement(t *testing.T) {
	fs := newShards(t, 4, shard.Options{
		Base: testConfig(),
		Pins: map[string]int{"/pa": 1, "/pb": 1},
	})
	if err := fs.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	const f = "/d/file"
	if err := fs.Create(f); err != nil {
		t.Fatal(err)
	}
	if err := fs.Write(f, 0, []byte("payload")); err != nil {
		t.Fatal(err)
	}

	// Same-shard rename succeeds and the content follows the name.
	dst := findName(t, fs, "/d", "ren", f, true)
	if err := fs.Rename(f, dst); err != nil {
		t.Fatalf("same-shard rename: %v", err)
	}
	buf := make([]byte, 7)
	if n, err := fs.Read(dst, 0, buf); err != nil || n != 7 || string(buf) != "payload" {
		t.Fatalf("read after rename: n=%d err=%v buf=%q", n, err, buf)
	}
	if _, err := fs.Stat(f); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("old name still resolves: %v", err)
	}

	// Cross-shard rename fails with ErrCrossShard in a *vfs.PathError
	// and leaves the source untouched.
	cross := findName(t, fs, "/d", "crs", dst, false)
	err := fs.Rename(dst, cross)
	if !errors.Is(err, shard.ErrCrossShard) {
		t.Fatalf("cross-shard rename = %v, want ErrCrossShard", err)
	}
	var pe *vfs.PathError
	if !errors.As(err, &pe) || pe.Op != "rename" {
		t.Fatalf("cross-shard rename error not a rename PathError: %v", err)
	}
	if _, err := fs.Stat(dst); err != nil {
		t.Fatalf("source vanished after rejected rename: %v", err)
	}

	// Cross-shard link fails the same way; same-shard link works.
	if err := fs.Link(dst, cross); !errors.Is(err, shard.ErrCrossShard) {
		t.Fatalf("cross-shard link = %v, want ErrCrossShard", err)
	}
	samelink := findName(t, fs, "/d", "lnk", dst, true)
	if err := fs.Link(dst, samelink); err != nil {
		t.Fatalf("same-shard link: %v", err)
	}

	// Renaming a replicated directory is rejected outright.
	if err := fs.Rename("/d", "/d2"); !errors.Is(err, shard.ErrCrossShard) {
		t.Fatalf("replicated dir rename = %v, want ErrCrossShard", err)
	}

	// A directory rename between pinned subtrees on one shard works,
	// and files inside keep resolving.
	if err := fs.Mkdir("/pa"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/pb"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/pa/sub"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("/pa/sub/x"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/pa/sub", "/pb/sub"); err != nil {
		t.Fatalf("pinned dir rename: %v", err)
	}
	if _, err := fs.Stat("/pb/sub/x"); err != nil {
		t.Fatalf("stat after pinned dir rename: %v", err)
	}
}

// imageBytes snapshots a disk's entire backing store.
func imageBytes(t *testing.T, d *disk.Disk) []byte {
	t.Helper()
	st := d.Store()
	buf := make([]byte, st.Size())
	if err := st.ReadAt(buf, 0); err != nil {
		t.Fatalf("reading image: %v", err)
	}
	return buf
}

// TestDeterminismAcrossShardCounts reruns the same seeded multi-client
// workload at shard counts 1, 2, and 4 and requires byte-identical
// per-shard disk images between same-seed runs.
func TestDeterminismAcrossShardCounts(t *testing.T) {
	scfg := server.Config{
		Clients:        6,
		OpsPerClient:   24,
		WriteSize:      4096,
		FilesPerClient: 4,
		ThinkTime:      2 * sim.Millisecond,
		Seed:           7,
	}
	for _, n := range []int{1, 2, 4} {
		run := func() ([][]byte, sim.Time) {
			fs := newShards(t, n, shard.Options{Base: testConfig()})
			if _, err := server.Run(fs, scfg); err != nil {
				t.Fatalf("%d shards: %v", n, err)
			}
			if err := fs.Unmount(); err != nil {
				t.Fatalf("%d shards: unmount: %v", n, err)
			}
			images := make([][]byte, n)
			for i := 0; i < n; i++ {
				images[i] = imageBytes(t, fs.Disk(i))
			}
			return images, fs.Clock().Now()
		}
		img1, end1 := run()
		img2, end2 := run()
		if end1 != end2 {
			t.Fatalf("%d shards: same seed ended at %v then %v", n, end1, end2)
		}
		for i := 0; i < n; i++ {
			if !bytes.Equal(img1[i], img2[i]) {
				t.Fatalf("%d shards: shard %d image differs between same-seed runs", n, i)
			}
		}
	}
}

// TestCrashOneShardOthersCommit cuts power on shard 0 mid-run while
// tolerating its errors, proves the healthy shards kept committing,
// recovers shard 0 through the router, and fscks every image.
func TestCrashOneShardOthersCommit(t *testing.T) {
	const n = 4
	fs := newShards(t, n, shard.Options{Base: testConfig()})
	scfg := server.Config{
		Clients:        8,
		OpsPerClient:   16,
		WriteSize:      4096,
		FilesPerClient: 4,
		Seed:           3,
	}

	// Phase A: healthy run; every op is fsynced, so all data is
	// committed to some shard's log.
	resA, err := server.Run(fs, scfg)
	if err != nil {
		t.Fatalf("phase A: %v", err)
	}

	// Record the committed files per shard for the retention check.
	type fileAt struct {
		path  string
		shard int
	}
	var files []fileAt
	for c := 1; c <= scfg.Clients; c++ {
		for s := 0; s < scfg.FilesPerClient; s++ {
			p := fmt.Sprintf("/client%02d/f%03d", c, s)
			sh, err := fs.ShardFor(p)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := fs.Stat(p); err != nil {
				t.Fatalf("phase A file %s missing: %v", p, err)
			}
			files = append(files, fileAt{p, sh})
		}
	}
	// Flush everything so phase A's state is fully durable before the
	// fault is armed (fsync already committed the data; Sync also
	// commits directories).
	if err := fs.Sync(); err != nil {
		t.Fatalf("sync after phase A: %v", err)
	}

	// Phase B: cut power on shard 0's 5th write; tolerate errors so
	// the healthy shards keep going.
	fs.Disk(0).SetFaultPolicy(&disk.CrashPlan{CutWrite: 5})
	var tolerated int
	scfgB := scfg
	scfgB.Seed = 4
	scfgB.OnOpError = func(client int, err error) bool {
		tolerated++
		return true
	}
	resB, err := server.Run(fs, scfgB)
	if err != nil {
		t.Fatalf("phase B: %v", err)
	}
	if tolerated == 0 || resB.Errors == 0 {
		t.Fatalf("phase B: expected tolerated errors, got %d (result %d)", tolerated, resB.Errors)
	}
	if resB.Ops == 0 {
		t.Fatal("phase B: no operation completed on healthy shards")
	}

	// Shard 0 is dead until recovered...
	if err := fs.ShardFS(0).Sync(); err == nil {
		t.Fatal("shard 0 sync succeeded on a frozen disk")
	}
	if err := fs.RecoverShard(0); err != nil {
		t.Fatalf("recover shard 0: %v", err)
	}
	// ...and serves again afterwards, through the same router.
	for _, f := range files {
		fi, err := fs.Stat(f.path)
		if err != nil {
			t.Fatalf("post-recovery stat %s (shard %d): %v", f.path, f.shard, err)
		}
		if fi.Size != int64(scfg.WriteSize) {
			t.Fatalf("post-recovery %s size %d, want %d", f.path, fi.Size, scfg.WriteSize)
		}
	}
	if resA.Ops != int64(scfg.Clients*scfg.OpsPerClient) {
		t.Fatalf("phase A completed %d ops, want %d", resA.Ops, scfg.Clients*scfg.OpsPerClient)
	}

	// Phase C: a healthy full-strength run across all shards.
	scfgC := scfg
	scfgC.Seed = 5
	resC, err := server.Run(fs, scfgC)
	if err != nil {
		t.Fatalf("phase C: %v", err)
	}
	if resC.Errors != 0 {
		t.Fatalf("phase C tolerated %d errors, want 0", resC.Errors)
	}

	// Unmount and fsck every shard image offline.
	if err := fs.Unmount(); err != nil {
		t.Fatalf("unmount: %v", err)
	}
	cfg := testConfig()
	for i := 0; i < n; i++ {
		rep, err := core.Fsck(fs.Disk(i), cfg)
		if err != nil {
			t.Fatalf("fsck shard %d: %v", i, err)
		}
		if !rep.Ok() {
			t.Fatalf("fsck shard %d: %v", i, rep.Problems)
		}
	}
}
