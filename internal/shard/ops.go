package shard

import (
	"fmt"
	"sort"

	"lfs/internal/core"
	"lfs/internal/layout"
	"lfs/internal/obs"
	"lfs/internal/vfs"
)

// route resolves a single-path operation to its owning shard,
// wrapping path validation errors with the operation name. Waits
// parked on the router (NoteWait) are handed to the resolved shard so
// the operation's span carries them.
func (fs *FS) route(op, path string) (*core.FS, error) {
	parts, err := vfs.SplitPath(path)
	if err != nil {
		return nil, vfs.WrapPathError(op, path, err)
	}
	s := fs.shards[fs.place(path, parts)]
	fs.handoffWait(s)
	return s, nil
}

// Create makes the file on its placed shard.
func (fs *FS) Create(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	s, err := fs.route("create", path)
	if err != nil {
		return err
	}
	return s.Create(path)
}

// Mkdir creates a pinned directory on its pin's shard and replicates
// an unpinned one on every shard (in shard order), so the parent
// chain of any hash-placed file exists wherever the hash may land.
func (fs *FS) Mkdir(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parts, err := vfs.SplitPath(path)
	if err != nil {
		return vfs.WrapPathError("mkdir", path, err)
	}
	if s, ok := fs.pinFor(parts); ok {
		fs.handoffWait(fs.shards[s])
		return fs.shards[s].Mkdir(path)
	}
	for i, s := range fs.shards {
		if i == 0 {
			fs.handoffWait(s)
		}
		if err := s.Mkdir(path); err != nil {
			return err
		}
	}
	return nil
}

// Write stores data through the file's shard.
func (fs *FS) Write(path string, off int64, data []byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	s, err := fs.route("write", path)
	if err != nil {
		return err
	}
	return s.Write(path, off, data)
}

// Read reads through the file's shard.
func (fs *FS) Read(path string, off int64, buf []byte) (int, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	s, err := fs.route("read", path)
	if err != nil {
		return 0, err
	}
	return s.Read(path, off, buf)
}

// Stat describes the path from its home shard. A replicated
// directory exists on every shard; its attributes are reported from
// the home shard (the deterministic hash of its path), which is also
// where a file of the same name would live.
func (fs *FS) Stat(path string) (vfs.FileInfo, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	s, err := fs.route("stat", path)
	if err != nil {
		return vfs.FileInfo{}, err
	}
	return s.Stat(path)
}

// ReadDir lists a pinned directory from its pin's shard; for a
// replicated directory it merges every shard's listing, deduplicated
// by name (a replicated subdirectory appears on all shards) and
// name-sorted. Each name's entry is taken from the name's own home
// shard — the shard Stat would serve it from — so inode numbers are
// consistent between ReadDir and Stat.
func (fs *FS) ReadDir(path string) ([]layout.DirEntry, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parts, err := vfs.SplitPath(path)
	if err != nil {
		return nil, vfs.WrapPathError("readdir", path, err)
	}
	if s, ok := fs.pinFor(parts); ok {
		return fs.shards[s].ReadDir(path)
	}
	if len(fs.shards) == 1 {
		return fs.shards[0].ReadDir(path)
	}
	home := fs.place(path, parts)
	lists := make([][]layout.DirEntry, len(fs.shards))
	errs := make([]error, len(fs.shards))
	for i, s := range fs.shards {
		lists[i], errs[i] = s.ReadDir(path)
	}
	// The home shard's verdict wins: listing a file must fail with
	// its ErrNotDir, not a sibling shard's ErrNotExist.
	if errs[home] != nil {
		return nil, errs[home]
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	seen := make(map[string]layout.DirEntry)
	var names []string
	for i, list := range lists {
		for _, e := range list {
			child := path + "/" + e.Name
			if path == "/" {
				child = "/" + e.Name
			}
			if _, ok := seen[e.Name]; !ok {
				names = append(names, e.Name)
				seen[e.Name] = e
			}
			if fs.place(child, append(parts[:len(parts):len(parts)], e.Name)) == i {
				seen[e.Name] = e
			}
		}
	}
	sort.Strings(names)
	out := make([]layout.DirEntry, 0, len(names))
	for _, n := range names {
		out = append(out, seen[n])
	}
	return out, nil
}

// Remove unlinks a file on its shard; removing a replicated
// directory first verifies it is empty on every shard (any entry
// anywhere fails the whole operation) and then removes every
// replica, so no shard is left with a stale copy.
func (fs *FS) Remove(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parts, err := vfs.SplitPath(path)
	if err != nil {
		return vfs.WrapPathError("remove", path, err)
	}
	if s, ok := fs.pinFor(parts); ok {
		return fs.shards[s].Remove(path)
	}
	if len(fs.shards) == 1 || len(parts) == 0 {
		// Single shard, or the root: delegate for the exact core
		// error (the root cannot be removed).
		return fs.shards[fs.place(path, parts)].Remove(path)
	}
	home := fs.shards[fs.place(path, parts)]
	fi, err := home.Stat(path)
	if err != nil {
		// Nonexistent either way; delegate so the error carries the
		// remove op, not stat.
		return home.Remove(path)
	}
	if !fi.IsDir() {
		return home.Remove(path)
	}
	for _, s := range fs.shards {
		ents, err := s.ReadDir(path)
		if err != nil {
			return vfs.WrapPathError("remove", path, err)
		}
		if len(ents) > 0 {
			return vfs.WrapPathError("remove", path, vfs.ErrNotEmpty)
		}
	}
	for _, s := range fs.shards {
		if err := s.Remove(path); err != nil {
			return err
		}
	}
	return nil
}

// Rename moves oldPath to newPath when both place on one shard. A
// cross-shard rename fails with ErrCrossShard — a log-structured
// shard cannot atomically adopt blocks another log owns — as does
// renaming a replicated directory (its descendants would re-hash to
// other shards); directory renames are allowed when both ends sit
// inside pinned subtrees on the same shard.
func (fs *FS) Rename(oldPath, newPath string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.relink("rename", oldPath, newPath, true,
		func(s *core.FS) error { return s.Rename(oldPath, newPath) })
}

// Link creates a hard link when both paths place on one shard; a
// cross-shard link fails with ErrCrossShard (an inode lives in
// exactly one shard's inode map).
func (fs *FS) Link(oldPath, newPath string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.relink("link", oldPath, newPath, false,
		func(s *core.FS) error { return s.Link(oldPath, newPath) })
}

// relink implements the shared two-path placement rules of Rename
// and Link and delegates to apply on the owning shard. dirOK permits
// directory sources when both ends are pinned to one shard (renames
// do; links never link directories, so core rejects them anyway).
func (fs *FS) relink(op, oldPath, newPath string, dirOK bool, apply func(*core.FS) error) error {
	po, err := vfs.SplitPath(oldPath)
	if err != nil {
		return vfs.WrapPathError(op, oldPath, err)
	}
	pn, err := vfs.SplitPath(newPath)
	if err != nil {
		return vfs.WrapPathError(op, oldPath, err)
	}
	if len(fs.shards) == 1 {
		return apply(fs.shards[0])
	}
	so := fs.place(oldPath, po)
	sn := fs.place(newPath, pn)
	fi, err := fs.shards[so].Stat(oldPath)
	if err != nil {
		// Source missing (or the root): delegate for the exact core
		// error under the right op name.
		return apply(fs.shards[so])
	}
	if fi.IsDir() && dirOK {
		_, oldPinned := fs.pinFor(po)
		_, newPinned := fs.pinFor(pn)
		if oldPinned && newPinned && so == sn {
			return apply(fs.shards[so])
		}
		if so != sn {
			return vfs.WrapPathError(op, oldPath, fmt.Errorf(
				"%w: directory %q places on shard %d, %q on shard %d",
				ErrCrossShard, oldPath, so, newPath, sn))
		}
		return vfs.WrapPathError(op, oldPath, fmt.Errorf(
			"%w: directory %q is replicated across shards; pin the subtree to rename it",
			ErrCrossShard, oldPath))
	}
	if so != sn {
		return vfs.WrapPathError(op, oldPath, fmt.Errorf(
			"%w: %q places on shard %d, %q on shard %d",
			ErrCrossShard, oldPath, so, newPath, sn))
	}
	return apply(fs.shards[so])
}

// Truncate resizes the file through its shard.
func (fs *FS) Truncate(path string, size int64) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	s, err := fs.route("truncate", path)
	if err != nil {
		return err
	}
	return s.Truncate(path, size)
}

// FsyncFile durably commits one file through its shard. Before
// waiting, the router starts every other shard's pending transfer
// with an asynchronous flush — the cross-shard group commit: disk
// service overlaps in simulated time across the array, and each
// shard's own fsync then finds its data already in flight. An error
// from another shard's flush (a crashed disk, say) is deliberately
// ignored here: it must not fail this shard's fsync, and it
// resurfaces on the failed shard's own operations.
func (fs *FS) FsyncFile(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parts, err := vfs.SplitPath(path)
	if err != nil {
		return vfs.WrapPathError("fsync", path, err)
	}
	home := fs.place(path, parts)
	// Time spent kicking the other shards' transfers is cross-shard
	// fan-out wait: the home fsync could not start until the
	// broadcast finished, so its span carries the delay explicitly
	// (backdated through NoteWait, timeline unchanged).
	t0 := fs.clock.Now()
	for i, s := range fs.shards {
		if i != home {
			_ = s.FlushAsync()
		}
	}
	if dt := fs.clock.Now().Sub(t0); dt > 0 {
		fs.shards[home].NoteWait(obs.PhaseFanout, dt)
	}
	fs.handoffWait(fs.shards[home])
	return fs.shards[home].FsyncFile(path)
}

// Sync flushes every shard. A first pass issues every shard's dirty
// data asynchronously so the disks transfer in parallel; the second
// pass syncs each shard, mostly just waiting out its own horizon.
// All shards are attempted even when one fails (a crashed shard must
// not block the others' durability); the first error is returned.
func (fs *FS) Sync() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var first error
	fs.handoffWait(fs.shards[0])
	for _, s := range fs.shards {
		if err := s.FlushAsync(); err != nil && first == nil {
			first = err
		}
	}
	for _, s := range fs.shards {
		if err := s.Sync(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Unmount checkpoints and detaches every shard, in shard order; all
// shards are attempted and the first error returned.
func (fs *FS) Unmount() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var first error
	for _, s := range fs.shards {
		if err := s.Unmount(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Crash drops every shard's volatile state without flushing, as if
// power failed on the whole array.
func (fs *FS) Crash() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for _, s := range fs.shards {
		s.Crash()
	}
}

// DropCaches empties every shard's block cache.
func (fs *FS) DropCaches() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for _, s := range fs.shards {
		s.DropCaches()
	}
}

// SetClient labels subsequent operations on every shard with the
// issuing client's ID (server attribution).
func (fs *FS) SetClient(id int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for _, s := range fs.shards {
		s.SetClient(id)
	}
}

// TickMetrics advances every shard's metrics sampler to the current
// simulated time.
func (fs *FS) TickMetrics() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for _, s := range fs.shards {
		s.TickMetrics()
	}
}

// SampleMetricsNow forces one sample row on every shard.
func (fs *FS) SampleMetricsNow() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for _, s := range fs.shards {
		s.SampleMetricsNow()
	}
}

var _ vfs.FileSystem = (*FS)(nil)
