// Package shard scales the storage manager out horizontally: it
// presents one vfs.FileSystem whose namespace is partitioned across N
// independent core.FS instances ("shards"), each owning its own log,
// cleaner, checkpoint regions, disk queue, and disk. The paper's
// single append point is exactly what flattens multi-client
// throughput — every client funnels through one log head and one
// cleaner — so the router splits the namespace instead of the log
// format: every shard's image is a complete, standalone LFS volume
// (see FORMAT.md), and SSDFS-style multi-log layouts are the
// precedent.
//
// Placement. A file lives on exactly one shard. By default the shard
// is a deterministic hash (FNV-1a) of the file's canonical absolute
// path; Options.Pins overrides the hash for whole directory subtrees
// (longest-prefix wins), so a workload can keep a tree's files — and
// the tree itself — on one log. Directories outside pinned subtrees
// are *replicated*: Mkdir broadcasts to every shard, so the parent
// chain of any hashed file exists on its shard, and ReadDir of a
// replicated directory merges every shard's entries (deduplicated by
// name, name-sorted). Paths inside a pinned subtree — directories
// included — exist only on the pin's shard.
//
// Renames and links resolve both paths: when they place on the same
// shard the operation delegates untouched; when they cross shards it
// fails with ErrCrossShard (wrapped in *vfs.PathError), because a
// log-structured shard cannot atomically move blocks it does not own.
// Renaming a replicated directory is likewise rejected (its
// descendants would re-hash to other shards); a directory rename is
// allowed when both ends sit inside pinned subtrees on one shard.
// With a single shard the router is a transparent passthrough and
// every operation, directory renames included, delegates.
//
// Determinism. The router holds no clock and charges no CPU: it is a
// pure function from path to shard, and all shards share one
// simulated clock (Mount enforces pointer equality). Every operation
// is executed by the single deterministic internal/sched loop in
// (sim.Time, seq) order, and each shard's on-disk image is a function
// of the operation subsequence routed to it — so same-seed runs
// produce byte-identical per-shard images for any shard count.
// Per-disk busy horizons still advance independently, which is where
// the scale-out comes from: N shards overlap their segment writes in
// simulated time while CPU charges remain the serial component.
package shard

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"lfs/internal/core"
	"lfs/internal/disk"
	"lfs/internal/obs"
	"lfs/internal/sim"
	"lfs/internal/vfs"
)

// ErrCrossShard reports a two-path operation (Rename, Link) whose
// source and destination place on different shards, or a rename of a
// replicated directory. Callers test it with errors.Is; the router
// wraps it in *vfs.PathError like every other operation error.
var ErrCrossShard = errors.New("operation crosses shard boundaries")

// Options shapes a sharded system. The shard count is the number of
// disks given to Format/Mount; the zero Options is valid and places
// everything by hash.
type Options struct {
	// Pins maps directory-subtree roots (canonical absolute paths,
	// e.g. "/build") to the shard index that owns the whole subtree.
	// Longest-prefix wins. Nested pins must agree on the shard:
	// pinning "/a" and "/a/b" to different shards would strand
	// "/a/b"'s parent chain and is rejected at Format/Mount.
	Pins map[string]int
	// Base is the per-shard core configuration. Format and Mount use
	// it verbatim for every shard unless ShardConfig is set.
	Base core.Config
	// ShardConfig, when non-nil, derives shard i's configuration from
	// Base — the hook for attaching per-shard observability (a fresh
	// obs.Sampler or Recorder per shard; samplers bind to exactly one
	// instance). It is a mount-time hook: Format ignores it (layout
	// parameters must live in Base), and RecoverShard calls it again
	// for the shard's new incarnation, so it must hand out a fresh
	// sampler each call (or none).
	ShardConfig func(shard int, base core.Config) core.Config
}

// pin is one validated subtree pin.
type pin struct {
	parts []string
	shard int
}

// FS is the sharded multi-log file system: a router over N core.FS
// instances. It implements vfs.FileSystem (plus the FsyncFile,
// SetClient, Clock, TickMetrics, and DropCaches hooks the server and
// workload layers use), so everything that drives one LFS drives N.
type FS struct {
	// mu serialises router operations; shards is guarded by mu
	// (RecoverShard swaps entries in place). Each core.FS does its
	// own locking underneath.
	mu     sync.Mutex
	shards []*core.FS

	// disks, clock, opts, and pins are set at mount and immutable
	// thereafter.
	disks []*disk.Disk
	clock *sim.Clock
	opts  Options
	// pins is the validated pin list, longest prefix first.
	pins []pin

	// pendingWait holds waits noted against the router before the
	// next operation (the event loop's dispatch gaps); routing hands
	// them to the executing shard, whose next span carries them.
	// Guarded by mu.
	pendingWait [obs.NumPhaseKinds]sim.Duration
}

// NoteWait credits d of kind to the next routed operation's span. The
// router holds no spans of its own, so the wait parks here until the
// next operation resolves its shard and hands it down.
func (fs *FS) NoteWait(kind obs.PhaseKind, d sim.Duration) {
	if d <= 0 || kind >= obs.NumPhaseKinds {
		return
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.pendingWait[kind] += d
}

// handoffWait transfers the parked waits to the shard about to
// execute an operation. Must be called with fs.mu held.
func (fs *FS) handoffWait(s *core.FS) {
	for k := range fs.pendingWait {
		if d := fs.pendingWait[k]; d > 0 {
			s.NoteWait(obs.PhaseKind(k), d)
			fs.pendingWait[k] = 0
		}
	}
}

// validatePins parses and orders opts.Pins for n shards.
func validatePins(opts Options, n int) ([]pin, error) {
	keys := make([]string, 0, len(opts.Pins))
	for k := range opts.Pins {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	pins := make([]pin, 0, len(keys))
	for _, k := range keys {
		s := opts.Pins[k]
		if s < 0 || s >= n {
			return nil, fmt.Errorf("shard: pin %q names shard %d of %d", k, s, n)
		}
		parts, err := vfs.SplitPath(k)
		if err != nil {
			return nil, fmt.Errorf("shard: pin %q: %w", k, err)
		}
		if len(parts) == 0 {
			return nil, fmt.Errorf("shard: cannot pin the root (use a single shard instead)")
		}
		pins = append(pins, pin{parts: parts, shard: s})
	}
	// Nested pins must agree on the shard, or the inner subtree's
	// parent chain would not exist on its shard.
	for i := range pins {
		for j := range pins {
			if i != j && isPrefix(pins[i].parts, pins[j].parts) && pins[i].shard != pins[j].shard {
				return nil, fmt.Errorf("shard: nested pins %q (shard %d) and %q (shard %d) disagree",
					"/"+strings.Join(pins[i].parts, "/"), pins[i].shard,
					"/"+strings.Join(pins[j].parts, "/"), pins[j].shard)
			}
		}
	}
	// Longest prefix first, so pinFor's first match wins.
	sort.SliceStable(pins, func(i, j int) bool { return len(pins[i].parts) > len(pins[j].parts) })
	return pins, nil
}

// isPrefix reports whether a is a proper path-component prefix of b.
func isPrefix(a, b []string) bool {
	if len(a) >= len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkDisks validates the disk set and the shared clock.
func checkDisks(disks []*disk.Disk) error {
	if len(disks) == 0 {
		return fmt.Errorf("shard: no disks")
	}
	clock := disks[0].Clock()
	for i, d := range disks {
		if d == nil {
			return fmt.Errorf("shard: disk %d is nil", i)
		}
		if d.Clock() != clock {
			return fmt.Errorf("shard: disk %d runs on its own clock; all shards must share one simulated clock", i)
		}
	}
	return nil
}

// shardConfig derives shard i's core configuration from the options.
func shardConfig(opts Options, i int) core.Config {
	cfg := opts.Base
	if opts.ShardConfig != nil {
		cfg = opts.ShardConfig(i, cfg)
	}
	return cfg
}

// Format formats every disk as an independent, standalone LFS volume
// — shard images carry no sharding metadata and any one of them
// mounts alone with core.Mount (see FORMAT.md).
func Format(disks []*disk.Disk, opts Options) error {
	if err := checkDisks(disks); err != nil {
		return err
	}
	if _, err := validatePins(opts, len(disks)); err != nil {
		return err
	}
	for i, d := range disks {
		// Formatting must not consume the per-shard observability
		// hooks: samplers bind once, at mount, so the ShardConfig hook
		// (which may mint a fresh sampler per call) stays unmade here
		// and the base config's wiring is stripped.
		cfg := opts.Base
		cfg.Trace, cfg.Metrics = nil, nil
		if err := core.Format(d, cfg); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// Mount mounts every disk (running each shard's own crash recovery:
// checkpoint load plus roll-forward) and assembles the router. All
// disks must share one simulated clock.
func Mount(disks []*disk.Disk, opts Options) (*FS, error) {
	if err := checkDisks(disks); err != nil {
		return nil, err
	}
	pins, err := validatePins(opts, len(disks))
	if err != nil {
		return nil, err
	}
	fs := &FS{
		shards: make([]*core.FS, len(disks)),
		disks:  append([]*disk.Disk(nil), disks...),
		clock:  disks[0].Clock(),
		opts:   opts,
		pins:   pins,
	}
	for i, d := range disks {
		sfs, err := core.Mount(d, shardConfig(opts, i))
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		sfs.SetShard(i + 1)
		fs.shards[i] = sfs
	}
	return fs, nil
}

// NewMem formats and mounts a sharded system over n fresh
// memory-backed disks sharing one simulated clock, splitting
// totalCapacity evenly — the standard testbed constructor.
func NewMem(n int, totalCapacity int64, opts Options) (*FS, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: %d shards", n)
	}
	clock := sim.NewClock()
	disks := make([]*disk.Disk, n)
	for i := range disks {
		disks[i] = disk.NewMem(totalCapacity/int64(n), clock)
	}
	if err := Format(disks, opts); err != nil {
		return nil, err
	}
	return Mount(disks, opts)
}

// NumShards returns the shard count.
func (fs *FS) NumShards() int { return len(fs.disks) }

// Clock returns the simulated clock shared by every shard.
func (fs *FS) Clock() *sim.Clock { return fs.clock }

// Disk returns shard i's device, for experiment instrumentation and
// offline checking (core.Fsck per shard).
func (fs *FS) Disk(i int) *disk.Disk { return fs.disks[i] }

// ShardFS returns shard i's mounted core.FS — the current
// incarnation, so callers observe RecoverShard swaps.
func (fs *FS) ShardFS(i int) *core.FS {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.shards[i]
}

// ShardFor reports which shard owns path: the pinned shard inside a
// pinned subtree, the path hash otherwise. Replicated directories
// report their home shard (the one Stat serves them from).
func (fs *FS) ShardFor(path string) (int, error) {
	parts, err := vfs.SplitPath(path)
	if err != nil {
		return 0, err
	}
	return fs.place(path, parts), nil
}

// pinFor returns the pinned shard for parts if any pin's subtree
// contains it (the pin root itself included). pins is ordered longest
// prefix first, so the first match is the innermost pin.
func (fs *FS) pinFor(parts []string) (int, bool) {
	for _, p := range fs.pins {
		if len(p.parts) > len(parts) {
			continue
		}
		match := true
		for i := range p.parts {
			if p.parts[i] != parts[i] {
				match = false
				break
			}
		}
		if match {
			return p.shard, true
		}
	}
	return 0, false
}

// place maps a validated path to its owning shard.
func (fs *FS) place(path string, parts []string) int {
	if s, ok := fs.pinFor(parts); ok {
		return s
	}
	return int(hashPath(parts) % uint64(len(fs.disks)))
}

// hashPath is FNV-1a over the canonical path components. Hashing the
// split components (with a separator) rather than the raw string
// keeps equivalent spellings ("/a/b", "/a/b/") on one shard.
func hashPath(parts []string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			h ^= uint64(p[i])
			h *= prime64
		}
		h ^= uint64('/')
		h *= prime64
	}
	return h
}

// RecoverShard brings shard i back after a crash or power cut: it
// clears any injected fault policy, thaws the device, and remounts
// the shard's volume — checkpoint load plus per-shard roll-forward —
// swapping the fresh incarnation into the router. Other shards are
// untouched; subsequent operations re-resolve through the router to
// the new instance. The shard's configuration is re-derived through
// Options.ShardConfig, so the new incarnation gets fresh
// observability hooks.
func (fs *FS) RecoverShard(i int) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if i < 0 || i >= len(fs.disks) {
		return fmt.Errorf("shard: recover: no shard %d of %d", i, len(fs.disks))
	}
	d := fs.disks[i]
	d.SetFaultPolicy(nil)
	d.Thaw()
	sfs, err := core.Mount(d, shardConfig(fs.opts, i))
	if err != nil {
		return fmt.Errorf("shard %d: recover: %w", i, err)
	}
	sfs.SetShard(i + 1)
	fs.shards[i] = sfs
	return nil
}
