package vfs

import (
	"fmt"

	"lfs/internal/layout"
	"lfs/internal/sim"
)

// Model is an in-memory reference implementation of FileSystem with
// deliberately simple data structures (a literal tree of nodes and
// byte slices). It exists to be *obviously* correct: property tests
// drive a real file system and a Model with the same operation
// sequence and require identical observable behaviour.
type Model struct {
	root      *modelNode
	nextIno   layout.Ino
	clock     *sim.Clock
	unmounted bool

	// MaxFileSize bounds file growth, mirroring the double-indirect
	// limit of the real file systems; zero means unlimited.
	MaxFileSize int64
}

type modelNode struct {
	ino      layout.Ino
	isDir    bool
	data     []byte
	children map[string]*modelNode
	nlink    int
	mtime    sim.Time
	atime    sim.Time
}

// NewModel returns an empty model file system. The clock may be nil,
// in which case all timestamps stay zero.
func NewModel(clock *sim.Clock) *Model {
	return &Model{
		root:    &modelNode{ino: layout.RootIno, isDir: true, children: map[string]*modelNode{}, nlink: 2},
		nextIno: layout.RootIno + 1,
		clock:   clock,
	}
}

func (m *Model) now() sim.Time {
	if m.clock == nil {
		return 0
	}
	return m.clock.Now()
}

func (m *Model) check() error {
	if m.unmounted {
		return ErrUnmounted
	}
	return nil
}

// lookup walks the components to a node.
func (m *Model) lookup(parts []string) (*modelNode, error) {
	n := m.root
	for i, p := range parts {
		if !n.isDir {
			return nil, fmt.Errorf("%w: %q", ErrNotDir, p)
		}
		child, ok := n.children[p]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrNotExist, parts[:i+1])
		}
		n = child
	}
	return n, nil
}

// lookupParent resolves the parent directory of path and the leaf
// name.
func (m *Model) lookupParent(path string) (*modelNode, string, error) {
	dir, base, err := SplitDirBase(path)
	if err != nil {
		return nil, "", err
	}
	parent, err := m.lookup(dir)
	if err != nil {
		return nil, "", err
	}
	if !parent.isDir {
		return nil, "", fmt.Errorf("%w: parent of %q", ErrNotDir, path)
	}
	return parent, base, nil
}

func (m *Model) create(path string, isDir bool) error {
	if err := m.check(); err != nil {
		return err
	}
	parent, base, err := m.lookupParent(path)
	if err != nil {
		return err
	}
	if _, exists := parent.children[base]; exists {
		return fmt.Errorf("%w: %q", ErrExist, path)
	}
	n := &modelNode{ino: m.nextIno, isDir: isDir, nlink: 1, mtime: m.now(), atime: m.now()}
	if isDir {
		n.children = map[string]*modelNode{}
		n.nlink = 2
	}
	m.nextIno++
	parent.children[base] = n
	parent.mtime = m.now()
	return nil
}

// Create makes a new empty regular file.
func (m *Model) Create(path string) error { return m.create(path, false) }

// Mkdir makes a new empty directory.
func (m *Model) Mkdir(path string) error { return m.create(path, true) }

func (m *Model) fileNode(path string) (*modelNode, error) {
	if err := m.check(); err != nil {
		return nil, err
	}
	parts, err := SplitPath(path)
	if err != nil {
		return nil, err
	}
	n, err := m.lookup(parts)
	if err != nil {
		return nil, err
	}
	if n.isDir {
		return nil, fmt.Errorf("%w: %q", ErrIsDir, path)
	}
	return n, nil
}

// Write stores data at off, growing the file as needed.
func (m *Model) Write(path string, off int64, data []byte) error {
	n, err := m.fileNode(path)
	if err != nil {
		return err
	}
	if off < 0 {
		return fmt.Errorf("%w: negative offset %d", ErrInvalid, off)
	}
	end := off + int64(len(data))
	if m.MaxFileSize > 0 && end > m.MaxFileSize {
		return fmt.Errorf("%w: %q to %d bytes", ErrTooLarge, path, end)
	}
	if end > int64(len(n.data)) {
		grown := make([]byte, end)
		copy(grown, n.data)
		n.data = grown
	}
	copy(n.data[off:], data)
	n.mtime = m.now()
	return nil
}

// Read fills buf from off.
func (m *Model) Read(path string, off int64, buf []byte) (int, error) {
	n, err := m.fileNode(path)
	if err != nil {
		return 0, err
	}
	if off < 0 {
		return 0, fmt.Errorf("%w: negative offset %d", ErrInvalid, off)
	}
	n.atime = m.now()
	if off >= int64(len(n.data)) {
		return 0, nil
	}
	return copy(buf, n.data[off:]), nil
}

// Stat describes the file at path.
func (m *Model) Stat(path string) (FileInfo, error) {
	if err := m.check(); err != nil {
		return FileInfo{}, err
	}
	parts, err := SplitPath(path)
	if err != nil {
		return FileInfo{}, err
	}
	n, err := m.lookup(parts)
	if err != nil {
		return FileInfo{}, err
	}
	fi := FileInfo{Ino: n.ino, Size: int64(len(n.data)), Nlink: n.nlink, Mtime: n.mtime, Atime: n.atime}
	if n.isDir {
		fi.Mode = layout.ModeDir | 0o755
		fi.Size = 0
	} else {
		fi.Mode = layout.ModeFile | 0o644
	}
	return fi, nil
}

// ReadDir lists a directory in name order.
func (m *Model) ReadDir(path string) ([]layout.DirEntry, error) {
	if err := m.check(); err != nil {
		return nil, err
	}
	parts, err := SplitPath(path)
	if err != nil {
		return nil, err
	}
	n, err := m.lookup(parts)
	if err != nil {
		return nil, err
	}
	if !n.isDir {
		return nil, fmt.Errorf("%w: %q", ErrNotDir, path)
	}
	entries := make([]layout.DirEntry, 0, len(n.children))
	for name, child := range n.children {
		entries = append(entries, layout.DirEntry{Ino: child.ino, Name: name})
	}
	layout.SortEntries(entries)
	return entries, nil
}

// Remove unlinks a file or removes an empty directory.
func (m *Model) Remove(path string) error {
	if err := m.check(); err != nil {
		return err
	}
	parent, base, err := m.lookupParent(path)
	if err != nil {
		return err
	}
	n, ok := parent.children[base]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotExist, path)
	}
	if n.isDir && len(n.children) > 0 {
		return fmt.Errorf("%w: %q", ErrNotEmpty, path)
	}
	delete(parent.children, base)
	if !n.isDir {
		n.nlink-- // other hard links keep the node alive
	}
	parent.mtime = m.now()
	return nil
}

// Rename moves oldPath to newPath; newPath must not exist.
func (m *Model) Rename(oldPath, newPath string) error {
	if err := m.check(); err != nil {
		return err
	}
	oldParent, oldBase, err := m.lookupParent(oldPath)
	if err != nil {
		return err
	}
	n, ok := oldParent.children[oldBase]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotExist, oldPath)
	}
	newParent, newBase, err := m.lookupParent(newPath)
	if err != nil {
		return err
	}
	if _, exists := newParent.children[newBase]; exists {
		return fmt.Errorf("%w: %q", ErrExist, newPath)
	}
	// Reject moving a directory into itself (newPath strictly below
	// oldPath).
	if n.isDir && len(newPath) > len(oldPath) && newPath[:len(oldPath)+1] == oldPath+"/" {
		return fmt.Errorf("%w: cannot move %q inside itself", ErrInvalid, oldPath)
	}
	delete(oldParent.children, oldBase)
	newParent.children[newBase] = n
	oldParent.mtime = m.now()
	newParent.mtime = m.now()
	return nil
}

// Link creates a second directory entry for the file at oldPath.
func (m *Model) Link(oldPath, newPath string) error {
	if err := m.check(); err != nil {
		return err
	}
	n, err := m.fileNode(oldPath) // rejects directories with ErrIsDir
	if err != nil {
		return err
	}
	newParent, newBase, err := m.lookupParent(newPath)
	if err != nil {
		return err
	}
	if _, exists := newParent.children[newBase]; exists {
		return fmt.Errorf("%w: %q", ErrExist, newPath)
	}
	newParent.children[newBase] = n
	n.nlink++
	newParent.mtime = m.now()
	return nil
}

// Truncate sets the file length.
func (m *Model) Truncate(path string, size int64) error {
	n, err := m.fileNode(path)
	if err != nil {
		return err
	}
	if size < 0 {
		return fmt.Errorf("%w: negative size %d", ErrInvalid, size)
	}
	if m.MaxFileSize > 0 && size > m.MaxFileSize {
		return fmt.Errorf("%w: %q to %d bytes", ErrTooLarge, path, size)
	}
	switch {
	case size <= int64(len(n.data)):
		n.data = n.data[:size]
	default:
		grown := make([]byte, size)
		copy(grown, n.data)
		n.data = grown
	}
	n.mtime = m.now()
	return nil
}

// Sync is a no-op: the model has no disk.
func (m *Model) Sync() error { return m.check() }

// Unmount detaches the model.
func (m *Model) Unmount() error {
	if err := m.check(); err != nil {
		return err
	}
	m.unmounted = true
	return nil
}
