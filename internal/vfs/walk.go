package vfs

// Walk visits every file and directory under root in depth-first,
// name-sorted order, calling fn with each path and its FileInfo. The
// root itself is visited first. Errors from fn or from the file
// system abort the walk.
func Walk(fs FileSystem, root string, fn func(path string, fi FileInfo) error) error {
	fi, err := fs.Stat(root)
	if err != nil {
		return err
	}
	if err := fn(root, fi); err != nil {
		return err
	}
	if !fi.IsDir() {
		return nil
	}
	entries, err := fs.ReadDir(root)
	if err != nil {
		return err
	}
	for _, e := range entries {
		child := root + "/" + e.Name
		if root == "/" {
			child = "/" + e.Name
		}
		if err := Walk(fs, child, fn); err != nil {
			return err
		}
	}
	return nil
}

// TreeSize returns the total size in bytes of all regular files under
// root, plus the file and directory counts.
func TreeSize(fs FileSystem, root string) (bytes int64, files, dirs int, err error) {
	err = Walk(fs, root, func(path string, fi FileInfo) error {
		if fi.IsDir() {
			dirs++
		} else {
			files++
			bytes += fi.Size
		}
		return nil
	})
	return bytes, files, dirs, err
}
