// Package vfs defines the file-system interface implemented by both
// the FFS baseline and the LFS storage manager, plus path utilities
// and an in-memory model file system that serves as the behavioural
// oracle for property-based tests: any sequence of operations applied
// to a real file system and to the model must produce identical
// observable results.
package vfs

import (
	"errors"

	"lfs/internal/layout"
	"lfs/internal/sim"
)

// Sentinel errors returned by all FileSystem implementations. Callers
// test them with errors.Is; implementations wrap them with path
// context.
var (
	// ErrNotExist reports that a path component does not exist.
	ErrNotExist = errors.New("file does not exist")
	// ErrExist reports that the target of Create/Mkdir/Rename
	// already exists.
	ErrExist = errors.New("file already exists")
	// ErrIsDir reports a file operation applied to a directory.
	ErrIsDir = errors.New("is a directory")
	// ErrNotDir reports a directory operation applied to a file, or
	// a path that uses a file as a directory.
	ErrNotDir = errors.New("not a directory")
	// ErrNotEmpty reports removal of a non-empty directory.
	ErrNotEmpty = errors.New("directory not empty")
	// ErrNoSpace reports that the disk is full.
	ErrNoSpace = errors.New("no space left on device")
	// ErrTooLarge reports a write beyond the maximum file size.
	ErrTooLarge = errors.New("file too large")
	// ErrInvalid reports an invalid argument (bad path, negative
	// offset, ...).
	ErrInvalid = errors.New("invalid argument")
	// ErrUnmounted reports an operation on an unmounted file
	// system.
	ErrUnmounted = errors.New("file system is unmounted")
)

// PathError records an error from a file-system operation together
// with the operation name and the path it was applied to, in the
// manner of os.PathError. Both file systems return *PathError from
// every FileSystem method; Unwrap preserves errors.Is against the
// sentinels above.
type PathError struct {
	// Op is the operation name ("create", "write", "rename", ...).
	Op string
	// Path is the path the operation was applied to. For two-path
	// operations (Rename, Link) it is the source path.
	Path string
	// Err is the underlying error, wrapping one of the sentinels.
	Err error
}

func (e *PathError) Error() string { return e.Op + " " + e.Path + ": " + e.Err.Error() }

// Unwrap returns the underlying error, so errors.Is sees through the
// path context to the sentinel.
func (e *PathError) Unwrap() error { return e.Err }

// WrapPathError wraps err in a *PathError unless it is nil or already
// one (an op implemented in terms of another must not double-wrap).
func WrapPathError(op, path string, err error) error {
	if err == nil {
		return nil
	}
	var pe *PathError
	if errors.As(err, &pe) {
		return err
	}
	return &PathError{Op: op, Path: path, Err: err}
}

// FileInfo describes a file, as returned by Stat.
type FileInfo struct {
	// Ino is the file's inode number.
	Ino layout.Ino
	// Mode holds the type and permission bits.
	Mode layout.FileMode
	// Size is the length in bytes.
	Size int64
	// Nlink counts directory references.
	Nlink int
	// Mtime is the last modification time.
	Mtime sim.Time
	// Atime is the last access time. LFS keeps it in the inode map
	// (paper footnote 2) so reads do not relocate inodes.
	Atime sim.Time
}

// IsDir reports whether the entry is a directory.
func (fi FileInfo) IsDir() bool { return fi.Mode.IsDir() }

// FileSystem is the operation set both file systems implement. All
// paths are absolute ("/a/b"). Implementations are not safe for
// concurrent use unless documented otherwise; the simulated clock is
// single-threaded.
type FileSystem interface {
	// Create makes a new empty regular file. It fails with ErrExist
	// if the path already exists.
	Create(path string) error
	// Mkdir makes a new empty directory.
	Mkdir(path string) error
	// Write stores data at the given offset, growing the file as
	// needed; gaps read back as zeros.
	Write(path string, off int64, data []byte) error
	// Read fills buf from the given offset, returning the number of
	// bytes read. Reading at or past EOF returns 0, nil.
	Read(path string, off int64, buf []byte) (int, error)
	// Stat describes the file.
	Stat(path string) (FileInfo, error)
	// ReadDir lists a directory in name order.
	ReadDir(path string) ([]layout.DirEntry, error)
	// Remove unlinks a file or removes an empty directory.
	Remove(path string) error
	// Rename moves oldPath to newPath. newPath must not exist.
	Rename(oldPath, newPath string) error
	// Link creates a second name for an existing regular file
	// (hard link); newPath must not exist and directories cannot
	// be linked.
	Link(oldPath, newPath string) error
	// Truncate sets the file length, zero-filling on growth.
	Truncate(path string, size int64) error
	// Sync forces all buffered modifications to disk.
	Sync() error
	// Unmount syncs and detaches; further operations fail with
	// ErrUnmounted.
	Unmount() error
}
