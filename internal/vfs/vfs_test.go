package vfs_test

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"lfs/internal/fstest"
	"lfs/internal/layout"
	"lfs/internal/sim"
	"lfs/internal/vfs"
)

func TestModelConformance(t *testing.T) {
	fstest.RunConformance(t, func(t *testing.T) vfs.FileSystem {
		return vfs.NewModel(nil)
	})
}

func TestSplitPath(t *testing.T) {
	cases := []struct {
		in   string
		want []string
		err  bool
	}{
		{"/", nil, false},
		{"/a", []string{"a"}, false},
		{"/a/b/c", []string{"a", "b", "c"}, false},
		{"/a/", []string{"a"}, false},
		{"", nil, true},
		{"a/b", nil, true},
		{"/a//b", nil, true},
		{"/a/./b", nil, true},
		{"/a/../b", nil, true},
	}
	for _, c := range cases {
		got, err := vfs.SplitPath(c.in)
		if c.err {
			if err == nil {
				t.Errorf("SplitPath(%q) accepted", c.in)
			} else if !errors.Is(err, vfs.ErrInvalid) {
				t.Errorf("SplitPath(%q) error %v not ErrInvalid", c.in, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("SplitPath(%q) failed: %v", c.in, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("SplitPath(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestSplitDirBase(t *testing.T) {
	dir, base, err := vfs.SplitDirBase("/a/b/c")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dir, []string{"a", "b"}) || base != "c" {
		t.Fatalf("SplitDirBase = %v, %q", dir, base)
	}
	dir, base, err = vfs.SplitDirBase("/x")
	if err != nil || len(dir) != 0 || base != "x" {
		t.Fatalf("SplitDirBase(/x) = %v, %q, %v", dir, base, err)
	}
	if _, _, err := vfs.SplitDirBase("/"); err == nil {
		t.Fatal("SplitDirBase(/) accepted")
	}
}

func TestModelTimestamps(t *testing.T) {
	clock := sim.NewClock()
	m := vfs.NewModel(clock)
	if err := m.Create("/f"); err != nil {
		t.Fatal(err)
	}
	clock.Advance(10 * sim.Second)
	if err := m.Write("/f", 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	fi, err := m.Stat("/f")
	if err != nil {
		t.Fatal(err)
	}
	if fi.Mtime != sim.Time(10*sim.Second) {
		t.Fatalf("Mtime = %v", fi.Mtime)
	}
	clock.Advance(5 * sim.Second)
	if _, err := m.Read("/f", 0, make([]byte, 1)); err != nil {
		t.Fatal(err)
	}
	fi, _ = m.Stat("/f")
	if fi.Atime != sim.Time(15*sim.Second) {
		t.Fatalf("Atime = %v, want 15s", fi.Atime)
	}
	if fi.Mtime != sim.Time(10*sim.Second) {
		t.Fatal("read changed Mtime")
	}
}

func TestModelMaxFileSize(t *testing.T) {
	m := vfs.NewModel(nil)
	m.MaxFileSize = 1000
	if err := m.Create("/f"); err != nil {
		t.Fatal(err)
	}
	if err := m.Write("/f", 990, make([]byte, 20)); !errors.Is(err, vfs.ErrTooLarge) {
		t.Fatalf("oversize write: %v", err)
	}
	if err := m.Truncate("/f", 2000); !errors.Is(err, vfs.ErrTooLarge) {
		t.Fatalf("oversize truncate: %v", err)
	}
	if err := m.Write("/f", 0, make([]byte, 1000)); err != nil {
		t.Fatalf("exact-size write rejected: %v", err)
	}
}

func TestModelRootIno(t *testing.T) {
	m := vfs.NewModel(nil)
	fi, err := m.Stat("/")
	if err != nil {
		t.Fatal(err)
	}
	if fi.Ino != layout.RootIno {
		t.Fatalf("root ino = %d", fi.Ino)
	}
}

// Property: SplitPath of a path rebuilt from valid components returns
// exactly those components.
func TestSplitPathRoundTripProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		var parts []string
		for _, r := range raw {
			parts = append(parts, fmt.Sprintf("c%d", r))
			if len(parts) == 8 {
				break
			}
		}
		path := "/" + strings.Join(parts, "/")
		if len(parts) == 0 {
			path = "/"
		}
		got, err := vfs.SplitPath(path)
		if err != nil {
			return false
		}
		if len(got) != len(parts) {
			return false
		}
		for i := range got {
			if got[i] != parts[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
