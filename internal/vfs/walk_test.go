package vfs_test

import (
	"errors"
	"reflect"
	"testing"

	"lfs/internal/vfs"
)

func buildTree(t *testing.T) *vfs.Model {
	t.Helper()
	m := vfs.NewModel(nil)
	for _, dir := range []string{"/a", "/a/sub", "/b"} {
		if err := m.Mkdir(dir); err != nil {
			t.Fatal(err)
		}
	}
	files := map[string]int{"/top": 10, "/a/one": 20, "/a/sub/two": 30, "/b/three": 0}
	for p, size := range files {
		if err := m.Create(p); err != nil {
			t.Fatal(err)
		}
		if size > 0 {
			if err := m.Write(p, 0, make([]byte, size)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return m
}

func TestWalkOrder(t *testing.T) {
	m := buildTree(t)
	var visited []string
	err := vfs.Walk(m, "/", func(path string, fi vfs.FileInfo) error {
		visited = append(visited, path)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"/", "/a", "/a/one", "/a/sub", "/a/sub/two", "/b", "/b/three", "/top"}
	if !reflect.DeepEqual(visited, want) {
		t.Fatalf("walk order:\n got %v\nwant %v", visited, want)
	}
}

func TestWalkSubtree(t *testing.T) {
	m := buildTree(t)
	var visited []string
	if err := vfs.Walk(m, "/a", func(path string, fi vfs.FileInfo) error {
		visited = append(visited, path)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := []string{"/a", "/a/one", "/a/sub", "/a/sub/two"}
	if !reflect.DeepEqual(visited, want) {
		t.Fatalf("subtree walk = %v", visited)
	}
}

func TestWalkAbortsOnError(t *testing.T) {
	m := buildTree(t)
	boom := errors.New("stop")
	count := 0
	err := vfs.Walk(m, "/", func(path string, fi vfs.FileInfo) error {
		count++
		if count == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if count != 3 {
		t.Fatalf("visited %d after abort", count)
	}
}

func TestWalkMissingRoot(t *testing.T) {
	m := vfs.NewModel(nil)
	if err := vfs.Walk(m, "/nope", func(string, vfs.FileInfo) error { return nil }); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("err = %v", err)
	}
}

func TestTreeSize(t *testing.T) {
	m := buildTree(t)
	bytes, files, dirs, err := vfs.TreeSize(m, "/")
	if err != nil {
		t.Fatal(err)
	}
	if bytes != 60 || files != 4 || dirs != 4 {
		t.Fatalf("TreeSize = %d bytes, %d files, %d dirs", bytes, files, dirs)
	}
}
