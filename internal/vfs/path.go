package vfs

import (
	"fmt"
	"strings"

	"lfs/internal/layout"
)

// SplitPath validates an absolute path and returns its components.
// "/" returns an empty slice. Empty components (from "//") are
// rejected, as are "." and ".." — the workloads and tools in this
// repository always use canonical paths, and rejecting the relative
// forms keeps every implementation's lookup identical.
func SplitPath(path string) ([]string, error) {
	if path == "" || path[0] != '/' {
		return nil, fmt.Errorf("%w: path %q is not absolute", ErrInvalid, path)
	}
	if path == "/" {
		return nil, nil
	}
	parts := strings.Split(strings.TrimSuffix(path[1:], "/"), "/")
	for _, p := range parts {
		if p == "" || p == "." || p == ".." {
			return nil, fmt.Errorf("%w: path %q has component %q", ErrInvalid, path, p)
		}
		if err := layout.ValidName(p); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrInvalid, err)
		}
	}
	return parts, nil
}

// SplitDirBase validates path and returns the parent components and
// the final name. The root itself has no base and is rejected.
func SplitDirBase(path string) (dir []string, base string, err error) {
	parts, err := SplitPath(path)
	if err != nil {
		return nil, "", err
	}
	if len(parts) == 0 {
		return nil, "", fmt.Errorf("%w: root has no parent", ErrInvalid)
	}
	return parts[: len(parts)-1 : len(parts)-1], parts[len(parts)-1], nil
}
