package fstest_test

import (
	"reflect"
	"testing"

	"lfs/internal/core"
	"lfs/internal/fstest"
)

// TestCrashPointStrategiesAgree cross-checks the two sweep strategies:
// restoring a pre-write snapshot must reconstruct exactly the image a
// full workload replay leaves behind, so the reports — every counter
// and every failure — must match field for field.
func TestCrashPointStrategiesAgree(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.SegmentSize = 64 << 10
	cfg.CacheBlocks = 64
	cfg.MaxInodes = 512
	for _, torn := range []bool{false, true} {
		name := "lost"
		if torn {
			name = "torn"
		}
		t.Run(name, func(t *testing.T) {
			base := fstest.CrashConfig{
				FSConfig:     cfg,
				DiskCapacity: 8 << 20,
				Workload:     fstest.MixedWorkload(10, cfg.BlockSize),
				Torn:         torn,
				Stride:       7,
			}
			snapCfg, replayCfg := base, base
			replayCfg.Replay = true
			snap, err := fstest.RunCrashPoints(snapCfg)
			if err != nil {
				t.Fatalf("snapshot sweep: %v", err)
			}
			replay, err := fstest.RunCrashPoints(replayCfg)
			if err != nil {
				t.Fatalf("replay sweep: %v", err)
			}
			if snap.SnapshotPoints != snap.Points {
				t.Errorf("snapshot sweep used snapshots for %d of %d points", snap.SnapshotPoints, snap.Points)
			}
			if replay.SnapshotPoints != 0 {
				t.Errorf("replay sweep reported %d snapshot points", replay.SnapshotPoints)
			}
			// SnapshotPoints is the only field allowed to differ.
			snapCopy := *snap
			snapCopy.SnapshotPoints = 0
			if !reflect.DeepEqual(&snapCopy, replay) {
				t.Errorf("strategies diverged:\nsnapshot: %+v\nreplay:   %+v", snapCopy, *replay)
			}
		})
	}
}
