// Package fstest provides a reusable conformance suite and a
// randomized model-equivalence harness for vfs.FileSystem
// implementations. The in-memory model, the FFS baseline, and the LFS
// storage manager all run the same battery, which is what makes the
// paper's "LFS supports the full UNIX file system semantics" claim
// testable here.
package fstest

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"lfs/internal/vfs"
)

// Factory opens a fresh, empty file system for one subtest. The file
// system must be large enough for a few tens of megabytes of data.
type Factory func(t *testing.T) vfs.FileSystem

// RunConformance runs the full behavioural battery against the
// implementation produced by open.
func RunConformance(t *testing.T, open Factory) {
	t.Helper()
	tests := []struct {
		name string
		fn   func(*testing.T, vfs.FileSystem)
	}{
		{"CreateAndStat", testCreateAndStat},
		{"CreateDuplicate", testCreateDuplicate},
		{"CreateInMissingDir", testCreateInMissingDir},
		{"CreateUnderFile", testCreateUnderFile},
		{"MkdirNested", testMkdirNested},
		{"WriteReadRoundTrip", testWriteReadRoundTrip},
		{"WriteAtOffsets", testWriteAtOffsets},
		{"SparseHolesReadZero", testSparseHolesReadZero},
		{"ReadPastEOF", testReadPastEOF},
		{"ReadPartialAtEOF", testReadPartialAtEOF},
		{"OverwriteInPlace", testOverwriteInPlace},
		{"TruncateShrinkGrow", testTruncateShrinkGrow},
		{"TruncateToZeroAndReuse", testTruncateToZeroAndReuse},
		{"RemoveFile", testRemoveFile},
		{"RemoveMissing", testRemoveMissing},
		{"RemoveNonEmptyDir", testRemoveNonEmptyDir},
		{"RemoveEmptyDir", testRemoveEmptyDir},
		{"ReadDirOrdering", testReadDirOrdering},
		{"ReadDirOnFile", testReadDirOnFile},
		{"ManyFilesOneDir", testManyFilesOneDir},
		{"DeepPaths", testDeepPaths},
		{"Rename", testRename},
		{"RenameDirWithContents", testRenameDirWithContents},
		{"RenameErrors", testRenameErrors},
		{"FileOpsOnDir", testFileOpsOnDir},
		{"DirOpsOnFile", testDirOpsOnFile},
		{"InvalidPaths", testInvalidPaths},
		{"InvalidOffsets", testInvalidOffsets},
		{"StatRoot", testStatRoot},
		{"SyncIsIdempotent", testSyncIsIdempotent},
		{"UnmountRejectsFurtherOps", testUnmountRejectsFurtherOps},
		{"LargeFileThroughIndirects", testLargeFileThroughIndirects},
		{"ManySmallFilesChurn", testManySmallFilesChurn},
		{"InodeNumbersDistinct", testInodeNumbersDistinct},
		{"DirInodeReuseNoStaleNames", testDirInodeReuseNoStaleNames},
		{"RenameSwapNames", testRenameSwapNames},
		{"HardLinkBasics", testHardLinkBasics},
		{"HardLinkUnlinkOrder", testHardLinkUnlinkOrder},
		{"HardLinkErrors", testHardLinkErrors},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			tc.fn(t, open(t))
		})
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func wantErrIs(t *testing.T, err, sentinel error) {
	t.Helper()
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want %v", err, sentinel)
	}
}

func testCreateAndStat(t *testing.T, fs vfs.FileSystem) {
	must(t, fs.Create("/a"))
	fi, err := fs.Stat("/a")
	must(t, err)
	if fi.IsDir() || fi.Size != 0 || !fi.Mode.IsRegular() {
		t.Fatalf("fresh file info = %+v", fi)
	}
	if fi.Nlink != 1 {
		t.Fatalf("Nlink = %d, want 1", fi.Nlink)
	}
}

func testCreateDuplicate(t *testing.T, fs vfs.FileSystem) {
	must(t, fs.Create("/a"))
	wantErrIs(t, fs.Create("/a"), vfs.ErrExist)
	must(t, fs.Mkdir("/d"))
	wantErrIs(t, fs.Mkdir("/d"), vfs.ErrExist)
	wantErrIs(t, fs.Create("/d"), vfs.ErrExist)
	wantErrIs(t, fs.Mkdir("/a"), vfs.ErrExist)
}

func testCreateInMissingDir(t *testing.T, fs vfs.FileSystem) {
	wantErrIs(t, fs.Create("/no/file"), vfs.ErrNotExist)
	wantErrIs(t, fs.Mkdir("/no/dir"), vfs.ErrNotExist)
}

func testCreateUnderFile(t *testing.T, fs vfs.FileSystem) {
	must(t, fs.Create("/f"))
	err := fs.Create("/f/child")
	if !errors.Is(err, vfs.ErrNotDir) && !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("create under file: %v", err)
	}
}

func testMkdirNested(t *testing.T, fs vfs.FileSystem) {
	must(t, fs.Mkdir("/a"))
	must(t, fs.Mkdir("/a/b"))
	must(t, fs.Mkdir("/a/b/c"))
	fi, err := fs.Stat("/a/b/c")
	must(t, err)
	if !fi.IsDir() {
		t.Fatal("nested mkdir did not produce a directory")
	}
}

func testWriteReadRoundTrip(t *testing.T, fs vfs.FileSystem) {
	must(t, fs.Create("/f"))
	want := []byte("the quick brown fox jumps over the lazy dog")
	must(t, fs.Write("/f", 0, want))
	got := make([]byte, len(want))
	n, err := fs.Read("/f", 0, got)
	must(t, err)
	if n != len(want) || !bytes.Equal(got, want) {
		t.Fatalf("read back %d bytes %q", n, got[:n])
	}
	fi, err := fs.Stat("/f")
	must(t, err)
	if fi.Size != int64(len(want)) {
		t.Fatalf("Size = %d, want %d", fi.Size, len(want))
	}
}

func testWriteAtOffsets(t *testing.T, fs vfs.FileSystem) {
	must(t, fs.Create("/f"))
	// Write three chunks out of order, spanning block boundaries.
	must(t, fs.Write("/f", 8000, []byte("CCC")))
	must(t, fs.Write("/f", 0, []byte("AAA")))
	must(t, fs.Write("/f", 4094, []byte("BBBB"))) // straddles a 4K boundary
	buf := make([]byte, 8003)
	n, err := fs.Read("/f", 0, buf)
	must(t, err)
	if n != 8003 {
		t.Fatalf("read %d bytes, want 8003", n)
	}
	if string(buf[0:3]) != "AAA" || string(buf[4094:4098]) != "BBBB" || string(buf[8000:8003]) != "CCC" {
		t.Fatal("offset writes misplaced")
	}
}

func testSparseHolesReadZero(t *testing.T, fs vfs.FileSystem) {
	must(t, fs.Create("/f"))
	must(t, fs.Write("/f", 100000, []byte("tail")))
	buf := make([]byte, 4096)
	n, err := fs.Read("/f", 40960, buf)
	must(t, err)
	if n != 4096 {
		t.Fatalf("hole read returned %d", n)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("hole byte %d = %#x", i, b)
		}
	}
}

func testReadPastEOF(t *testing.T, fs vfs.FileSystem) {
	must(t, fs.Create("/f"))
	must(t, fs.Write("/f", 0, []byte("xy")))
	n, err := fs.Read("/f", 2, make([]byte, 8))
	must(t, err)
	if n != 0 {
		t.Fatalf("read at EOF returned %d", n)
	}
	n, err = fs.Read("/f", 100, make([]byte, 8))
	must(t, err)
	if n != 0 {
		t.Fatalf("read past EOF returned %d", n)
	}
}

func testReadPartialAtEOF(t *testing.T, fs vfs.FileSystem) {
	must(t, fs.Create("/f"))
	must(t, fs.Write("/f", 0, []byte("hello")))
	buf := make([]byte, 10)
	n, err := fs.Read("/f", 3, buf)
	must(t, err)
	if n != 2 || string(buf[:n]) != "lo" {
		t.Fatalf("partial read = %d %q", n, buf[:n])
	}
}

func testOverwriteInPlace(t *testing.T, fs vfs.FileSystem) {
	must(t, fs.Create("/f"))
	must(t, fs.Write("/f", 0, bytes.Repeat([]byte{1}, 12000)))
	must(t, fs.Write("/f", 4000, bytes.Repeat([]byte{2}, 4000)))
	buf := make([]byte, 12000)
	n, err := fs.Read("/f", 0, buf)
	must(t, err)
	if n != 12000 {
		t.Fatalf("read %d", n)
	}
	for i := 0; i < 12000; i++ {
		want := byte(1)
		if i >= 4000 && i < 8000 {
			want = 2
		}
		if buf[i] != want {
			t.Fatalf("byte %d = %d, want %d", i, buf[i], want)
		}
	}
	fi, _ := fs.Stat("/f")
	if fi.Size != 12000 {
		t.Fatalf("overwrite changed size to %d", fi.Size)
	}
}

func testTruncateShrinkGrow(t *testing.T, fs vfs.FileSystem) {
	must(t, fs.Create("/f"))
	must(t, fs.Write("/f", 0, bytes.Repeat([]byte{7}, 10000)))
	must(t, fs.Truncate("/f", 3000))
	fi, _ := fs.Stat("/f")
	if fi.Size != 3000 {
		t.Fatalf("shrunk size = %d", fi.Size)
	}
	must(t, fs.Truncate("/f", 6000))
	fi, _ = fs.Stat("/f")
	if fi.Size != 6000 {
		t.Fatalf("grown size = %d", fi.Size)
	}
	buf := make([]byte, 6000)
	n, err := fs.Read("/f", 0, buf)
	must(t, err)
	if n != 6000 {
		t.Fatalf("read %d", n)
	}
	for i := 0; i < 3000; i++ {
		if buf[i] != 7 {
			t.Fatalf("byte %d lost by truncate", i)
		}
	}
	for i := 3000; i < 6000; i++ {
		if buf[i] != 0 {
			t.Fatalf("regrown byte %d = %d, want 0", i, buf[i])
		}
	}
}

func testTruncateToZeroAndReuse(t *testing.T, fs vfs.FileSystem) {
	must(t, fs.Create("/f"))
	must(t, fs.Write("/f", 0, bytes.Repeat([]byte{9}, 50000)))
	must(t, fs.Truncate("/f", 0))
	fi, _ := fs.Stat("/f")
	if fi.Size != 0 {
		t.Fatalf("size after truncate 0 = %d", fi.Size)
	}
	must(t, fs.Write("/f", 0, []byte("fresh")))
	buf := make([]byte, 5)
	n, err := fs.Read("/f", 0, buf)
	must(t, err)
	if n != 5 || string(buf) != "fresh" {
		t.Fatalf("reuse read = %q", buf[:n])
	}
}

func testRemoveFile(t *testing.T, fs vfs.FileSystem) {
	must(t, fs.Create("/f"))
	must(t, fs.Write("/f", 0, []byte("data")))
	must(t, fs.Remove("/f"))
	_, err := fs.Stat("/f")
	wantErrIs(t, err, vfs.ErrNotExist)
	// The name is reusable.
	must(t, fs.Create("/f"))
	fi, err := fs.Stat("/f")
	must(t, err)
	if fi.Size != 0 {
		t.Fatalf("recreated file has size %d", fi.Size)
	}
}

func testRemoveMissing(t *testing.T, fs vfs.FileSystem) {
	wantErrIs(t, fs.Remove("/nope"), vfs.ErrNotExist)
	wantErrIs(t, fs.Remove("/no/deep/path"), vfs.ErrNotExist)
}

func testRemoveNonEmptyDir(t *testing.T, fs vfs.FileSystem) {
	must(t, fs.Mkdir("/d"))
	must(t, fs.Create("/d/f"))
	wantErrIs(t, fs.Remove("/d"), vfs.ErrNotEmpty)
	must(t, fs.Remove("/d/f"))
	must(t, fs.Remove("/d"))
}

func testRemoveEmptyDir(t *testing.T, fs vfs.FileSystem) {
	must(t, fs.Mkdir("/d"))
	must(t, fs.Remove("/d"))
	_, err := fs.Stat("/d")
	wantErrIs(t, err, vfs.ErrNotExist)
}

func testReadDirOrdering(t *testing.T, fs vfs.FileSystem) {
	must(t, fs.Mkdir("/d"))
	for _, name := range []string{"zebra", "alpha", "mike", "bravo"} {
		must(t, fs.Create("/d/"+name))
	}
	entries, err := fs.ReadDir("/d")
	must(t, err)
	var names []string
	for _, e := range entries {
		names = append(names, e.Name)
	}
	if strings.Join(names, ",") != "alpha,bravo,mike,zebra" {
		t.Fatalf("ReadDir order = %v", names)
	}
}

func testReadDirOnFile(t *testing.T, fs vfs.FileSystem) {
	must(t, fs.Create("/f"))
	_, err := fs.ReadDir("/f")
	wantErrIs(t, err, vfs.ErrNotDir)
}

func testManyFilesOneDir(t *testing.T, fs vfs.FileSystem) {
	must(t, fs.Mkdir("/big"))
	const n = 600 // enough to need several directory blocks
	for i := 0; i < n; i++ {
		must(t, fs.Create(fmt.Sprintf("/big/file-%04d", i)))
	}
	entries, err := fs.ReadDir("/big")
	must(t, err)
	if len(entries) != n {
		t.Fatalf("ReadDir found %d entries, want %d", len(entries), n)
	}
	for i, e := range entries {
		if e.Name != fmt.Sprintf("file-%04d", i) {
			t.Fatalf("entry %d = %q", i, e.Name)
		}
	}
	// Remove every third file and re-list.
	for i := 0; i < n; i += 3 {
		must(t, fs.Remove(fmt.Sprintf("/big/file-%04d", i)))
	}
	entries, err = fs.ReadDir("/big")
	must(t, err)
	if len(entries) != n-n/3 {
		t.Fatalf("after removal: %d entries", len(entries))
	}
}

func testDeepPaths(t *testing.T, fs vfs.FileSystem) {
	path := ""
	for i := 0; i < 12; i++ {
		path += fmt.Sprintf("/dir%d", i)
		must(t, fs.Mkdir(path))
	}
	must(t, fs.Create(path+"/leaf"))
	must(t, fs.Write(path+"/leaf", 0, []byte("deep")))
	buf := make([]byte, 4)
	n, err := fs.Read(path+"/leaf", 0, buf)
	must(t, err)
	if n != 4 || string(buf) != "deep" {
		t.Fatalf("deep read = %q", buf[:n])
	}
}

func testRename(t *testing.T, fs vfs.FileSystem) {
	must(t, fs.Create("/a"))
	must(t, fs.Write("/a", 0, []byte("payload")))
	must(t, fs.Mkdir("/d"))
	must(t, fs.Rename("/a", "/d/b"))
	_, err := fs.Stat("/a")
	wantErrIs(t, err, vfs.ErrNotExist)
	buf := make([]byte, 7)
	n, err := fs.Read("/d/b", 0, buf)
	must(t, err)
	if n != 7 || string(buf) != "payload" {
		t.Fatalf("renamed file content = %q", buf[:n])
	}
}

func testRenameDirWithContents(t *testing.T, fs vfs.FileSystem) {
	must(t, fs.Mkdir("/src"))
	must(t, fs.Create("/src/f"))
	must(t, fs.Write("/src/f", 0, []byte("x")))
	must(t, fs.Rename("/src", "/dst"))
	fi, err := fs.Stat("/dst/f")
	must(t, err)
	if fi.Size != 1 {
		t.Fatalf("moved child size = %d", fi.Size)
	}
}

func testRenameErrors(t *testing.T, fs vfs.FileSystem) {
	wantErrIs(t, fs.Rename("/missing", "/x"), vfs.ErrNotExist)
	must(t, fs.Create("/a"))
	must(t, fs.Create("/b"))
	wantErrIs(t, fs.Rename("/a", "/b"), vfs.ErrExist)
	wantErrIs(t, fs.Rename("/a", "/no/dir/x"), vfs.ErrNotExist)
	must(t, fs.Mkdir("/d"))
	wantErrIs(t, fs.Rename("/d", "/d/sub"), vfs.ErrInvalid)
}

func testFileOpsOnDir(t *testing.T, fs vfs.FileSystem) {
	must(t, fs.Mkdir("/d"))
	wantErrIs(t, fs.Write("/d", 0, []byte("x")), vfs.ErrIsDir)
	_, err := fs.Read("/d", 0, make([]byte, 1))
	wantErrIs(t, err, vfs.ErrIsDir)
	wantErrIs(t, fs.Truncate("/d", 0), vfs.ErrIsDir)
}

func testDirOpsOnFile(t *testing.T, fs vfs.FileSystem) {
	must(t, fs.Create("/f"))
	_, err := fs.Stat("/f/child")
	if !errors.Is(err, vfs.ErrNotDir) && !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("stat through file: %v", err)
	}
}

func testInvalidPaths(t *testing.T, fs vfs.FileSystem) {
	for _, p := range []string{"", "rel/path", "/a//b", "/a/./b", "/a/../b"} {
		if err := fs.Create(p); !errors.Is(err, vfs.ErrInvalid) {
			t.Errorf("Create(%q) = %v, want ErrInvalid", p, err)
		}
	}
	if err := fs.Create("/"); !errors.Is(err, vfs.ErrInvalid) {
		t.Errorf("Create(/) = %v, want ErrInvalid", fs.Create("/"))
	}
}

func testInvalidOffsets(t *testing.T, fs vfs.FileSystem) {
	must(t, fs.Create("/f"))
	wantErrIs(t, fs.Write("/f", -1, []byte("x")), vfs.ErrInvalid)
	_, err := fs.Read("/f", -1, make([]byte, 1))
	wantErrIs(t, err, vfs.ErrInvalid)
	wantErrIs(t, fs.Truncate("/f", -1), vfs.ErrInvalid)
}

func testStatRoot(t *testing.T, fs vfs.FileSystem) {
	fi, err := fs.Stat("/")
	must(t, err)
	if !fi.IsDir() {
		t.Fatal("root is not a directory")
	}
	entries, err := fs.ReadDir("/")
	must(t, err)
	if len(entries) != 0 {
		t.Fatalf("fresh root has %d entries", len(entries))
	}
}

func testSyncIsIdempotent(t *testing.T, fs vfs.FileSystem) {
	must(t, fs.Create("/f"))
	must(t, fs.Write("/f", 0, []byte("abc")))
	must(t, fs.Sync())
	must(t, fs.Sync())
	buf := make([]byte, 3)
	n, err := fs.Read("/f", 0, buf)
	must(t, err)
	if n != 3 || string(buf) != "abc" {
		t.Fatalf("post-sync read = %q", buf[:n])
	}
}

func testUnmountRejectsFurtherOps(t *testing.T, fs vfs.FileSystem) {
	must(t, fs.Create("/f"))
	must(t, fs.Unmount())
	wantErrIs(t, fs.Create("/g"), vfs.ErrUnmounted)
	_, err := fs.Stat("/f")
	wantErrIs(t, err, vfs.ErrUnmounted)
	wantErrIs(t, fs.Sync(), vfs.ErrUnmounted)
}

func testLargeFileThroughIndirects(t *testing.T, fs vfs.FileSystem) {
	must(t, fs.Create("/big"))
	// 2 MB is far beyond NDirect*4K = 48K, exercising single and
	// (for 4K blocks with 1024 addrs) staying within single
	// indirection; write a tail chunk past 4.2 MB to force double
	// indirection for 4K blocks.
	pattern := func(i int64) byte { return byte(i*7 + 3) }
	chunk := make([]byte, 64*1024)
	for off := int64(0); off < 2<<20; off += int64(len(chunk)) {
		for i := range chunk {
			chunk[i] = pattern(off + int64(i))
		}
		must(t, fs.Write("/big", off, chunk))
	}
	tailOff := int64(4<<20 + 300*1024)
	must(t, fs.Write("/big", tailOff, []byte("tail-marker")))

	buf := make([]byte, len(chunk))
	for _, off := range []int64{0, 1 << 20, 2<<20 - int64(len(chunk))} {
		n, err := fs.Read("/big", off, buf)
		must(t, err)
		if n != len(buf) {
			t.Fatalf("read %d at %d", n, off)
		}
		for i := 0; i < n; i += 997 {
			if buf[i] != pattern(off+int64(i)) {
				t.Fatalf("byte %d wrong at offset %d", i, off)
			}
		}
	}
	tail := make([]byte, 11)
	n, err := fs.Read("/big", tailOff, tail)
	must(t, err)
	if n != 11 || string(tail) != "tail-marker" {
		t.Fatalf("tail read = %q", tail[:n])
	}
}

func testManySmallFilesChurn(t *testing.T, fs vfs.FileSystem) {
	must(t, fs.Mkdir("/work"))
	payload := bytes.Repeat([]byte{0xA5}, 1024)
	// Three generations of create/delete, the paper's short-lifetime
	// workload in miniature.
	for gen := 0; gen < 3; gen++ {
		for i := 0; i < 120; i++ {
			p := fmt.Sprintf("/work/g%d-%03d", gen, i)
			must(t, fs.Create(p))
			must(t, fs.Write(p, 0, payload))
		}
		if gen > 0 {
			for i := 0; i < 120; i++ {
				must(t, fs.Remove(fmt.Sprintf("/work/g%d-%03d", gen-1, i)))
			}
		}
	}
	entries, err := fs.ReadDir("/work")
	must(t, err)
	if len(entries) != 120 {
		t.Fatalf("%d entries after churn, want 120 (only the last generation survives)", len(entries))
	}
	buf := make([]byte, 1024)
	n, err := fs.Read("/work/g2-077", 0, buf)
	must(t, err)
	if n != 1024 || !bytes.Equal(buf, payload) {
		t.Fatal("survivor content corrupted by churn")
	}
}

// testDirInodeReuseNoStaleNames guards name-cache implementations: a
// removed directory's inode number may be reused by a new directory,
// which must not inherit the old directory's names.
func testDirInodeReuseNoStaleNames(t *testing.T, fs vfs.FileSystem) {
	must(t, fs.Mkdir("/old"))
	must(t, fs.Create("/old/ghost"))
	must(t, fs.Remove("/old/ghost"))
	must(t, fs.Remove("/old"))
	// The new directory very likely reuses /old's inode number.
	must(t, fs.Mkdir("/new"))
	_, err := fs.Stat("/new/ghost")
	wantErrIs(t, err, vfs.ErrNotExist)
	entries, err := fs.ReadDir("/new")
	must(t, err)
	if len(entries) != 0 {
		t.Fatalf("fresh directory lists %d stale entries", len(entries))
	}
	// And names created under the old incarnation's path don't
	// leak either.
	must(t, fs.Create("/new/real"))
	if _, err := fs.Stat("/new/real"); err != nil {
		t.Fatal(err)
	}
}

// testRenameSwapNames exercises name-cache invalidation across
// renames within and across directories.
func testRenameSwapNames(t *testing.T, fs vfs.FileSystem) {
	must(t, fs.Mkdir("/a"))
	must(t, fs.Mkdir("/b"))
	must(t, fs.Create("/a/x"))
	must(t, fs.Write("/a/x", 0, []byte("one")))
	must(t, fs.Rename("/a/x", "/b/y"))
	must(t, fs.Create("/a/x")) // recreate the old name
	must(t, fs.Write("/a/x", 0, []byte("two")))
	buf := make([]byte, 3)
	n, err := fs.Read("/b/y", 0, buf)
	must(t, err)
	if string(buf[:n]) != "one" {
		t.Fatalf("/b/y reads %q", buf[:n])
	}
	n, err = fs.Read("/a/x", 0, buf)
	must(t, err)
	if string(buf[:n]) != "two" {
		t.Fatalf("recreated /a/x reads %q", buf[:n])
	}
	// Rename back over the chain.
	must(t, fs.Rename("/b/y", "/b/z"))
	if _, err := fs.Stat("/b/y"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("/b/y still visible after second rename: %v", err)
	}
}

// testHardLinkBasics: a link shares the inode and the data; writes
// through one name are visible through the other.
func testHardLinkBasics(t *testing.T, fs vfs.FileSystem) {
	must(t, fs.Create("/orig"))
	must(t, fs.Write("/orig", 0, []byte("shared")))
	must(t, fs.Mkdir("/d"))
	must(t, fs.Link("/orig", "/d/alias"))
	fiA, err := fs.Stat("/orig")
	must(t, err)
	fiB, err := fs.Stat("/d/alias")
	must(t, err)
	if fiA.Ino != fiB.Ino {
		t.Fatalf("link has ino %d, original %d", fiB.Ino, fiA.Ino)
	}
	if fiA.Nlink != 2 || fiB.Nlink != 2 {
		t.Fatalf("nlink = %d/%d, want 2/2", fiA.Nlink, fiB.Nlink)
	}
	buf := make([]byte, 6)
	n, err := fs.Read("/d/alias", 0, buf)
	must(t, err)
	if string(buf[:n]) != "shared" {
		t.Fatalf("alias reads %q", buf[:n])
	}
	// A write through the alias is visible through the original.
	must(t, fs.Write("/d/alias", 0, []byte("SHARED")))
	n, err = fs.Read("/orig", 0, buf)
	must(t, err)
	if string(buf[:n]) != "SHARED" {
		t.Fatalf("original reads %q after alias write", buf[:n])
	}
}

// testHardLinkUnlinkOrder: data survives until the last name goes.
func testHardLinkUnlinkOrder(t *testing.T, fs vfs.FileSystem) {
	must(t, fs.Create("/a"))
	must(t, fs.Write("/a", 0, []byte("payload")))
	must(t, fs.Link("/a", "/b"))
	must(t, fs.Remove("/a"))
	fi, err := fs.Stat("/b")
	must(t, err)
	if fi.Nlink != 1 {
		t.Fatalf("nlink after first unlink = %d, want 1", fi.Nlink)
	}
	buf := make([]byte, 7)
	n, err := fs.Read("/b", 0, buf)
	must(t, err)
	if string(buf[:n]) != "payload" {
		t.Fatalf("survivor reads %q", buf[:n])
	}
	must(t, fs.Remove("/b"))
	_, err = fs.Stat("/b")
	wantErrIs(t, err, vfs.ErrNotExist)
	// The space is reusable afterwards.
	must(t, fs.Create("/c"))
	must(t, fs.Write("/c", 0, []byte("fresh")))
}

// testHardLinkErrors: directories cannot be linked; existing targets
// and missing sources fail.
func testHardLinkErrors(t *testing.T, fs vfs.FileSystem) {
	must(t, fs.Mkdir("/dir"))
	err := fs.Link("/dir", "/dirlink")
	wantErrIs(t, err, vfs.ErrIsDir)
	wantErrIs(t, fs.Link("/missing", "/x"), vfs.ErrNotExist)
	must(t, fs.Create("/f"))
	must(t, fs.Create("/g"))
	wantErrIs(t, fs.Link("/f", "/g"), vfs.ErrExist)
	wantErrIs(t, fs.Link("/f", "/no/dir/x"), vfs.ErrNotExist)
}

func testInodeNumbersDistinct(t *testing.T, fs vfs.FileSystem) {
	seen := map[uint64]string{}
	for i := 0; i < 40; i++ {
		p := fmt.Sprintf("/f%d", i)
		must(t, fs.Create(p))
		fi, err := fs.Stat(p)
		must(t, err)
		if prev, dup := seen[uint64(fi.Ino)]; dup {
			t.Fatalf("inode %d shared by %s and %s", fi.Ino, prev, p)
		}
		seen[uint64(fi.Ino)] = p
	}
}
