package fstest

// Crash-point enumeration: run a workload once to count its disk
// writes, then replay it against a fresh image for every write k with
// power cut during write k, and require full recovery each time. This
// verifies the paper's §4.4 claim — after any crash LFS restores a
// consistent state from the checkpoint regions plus a roll-forward of
// the log tail — at every crash point instead of a few hand-picked
// ones.
//
// Replays are deterministic because the simulated clock, the disk
// model, and the segment writer are: an identical operation stream
// produces an identical disk-write stream, so "cut power during write
// k" lands at the same point in the file system's life every time.
//
// Two execution strategies produce the same report. The snapshot path
// (default) records the workload once on a copy-on-write store, taking
// an O(1) snapshot before every disk write; each crash point then
// restores the pre-write image — plus the fatal write's torn prefix,
// when tearing — and runs recovery directly, making the sweep
// O(points) instead of O(points × writes). The replay path
// (CrashConfig.Replay, the original behaviour) re-runs the workload
// for every point; it needs no snapshot capability and cross-checks
// the snapshot path in tests.

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strings"

	"lfs/internal/core"
	"lfs/internal/disk"
	"lfs/internal/sim"
)

// CrashOpKind enumerates the operations a crash-point workload can
// perform.
type CrashOpKind int

const (
	// OpCreate makes an empty file at Path.
	OpCreate CrashOpKind = iota
	// OpMkdir makes a directory at Path.
	OpMkdir
	// OpWrite writes Data at Off in Path.
	OpWrite
	// OpRemove unlinks Path.
	OpRemove
	// OpTruncate resizes Path to Size.
	OpTruncate
	// OpSync flushes all dirty data to the log.
	OpSync
	// OpCheckpoint forces a checkpoint; state as of this step must
	// survive any later crash.
	OpCheckpoint
	// OpClean runs one cleaner pass.
	OpClean
)

// CrashOp is one scripted step of a crash-point workload. Steps are
// scripted (rather than an opaque function) so the harness can keep an
// exact shadow history of every path and check recovered state
// against it.
type CrashOp struct {
	Kind CrashOpKind
	Path string
	Off  int64
	Data []byte
	Size int64
}

// CrashConfig configures a crash-point enumeration run.
type CrashConfig struct {
	// FSConfig is the file system configuration (RollForward should
	// be on; the harness derives the checkpoint-only configuration
	// itself).
	FSConfig core.Config
	// DiskCapacity is the simulated disk size in bytes.
	DiskCapacity int64
	// Workload is the scripted operation sequence.
	Workload []CrashOp
	// Torn tears the fatal write at its sector-boundary midpoint
	// instead of losing it whole, exercising torn checkpoint regions
	// and partially written log units.
	Torn bool
	// Stride tests every Stride-th crash point (default 1: all).
	Stride int
	// MaxPoints caps the number of crash points tested (0: no cap).
	MaxPoints int
	// Replay forces the O(points × writes) replay strategy instead of
	// snapshot-restore — the pre-snapshot behaviour, kept for
	// cross-checking and benchmarking the two paths.
	Replay bool
}

// CrashFailure is one recovery invariant violation at one crash point.
type CrashFailure struct {
	// CutWrite is the 1-based disk write during which power was cut.
	CutWrite int64
	// Torn reports whether the fatal write was torn rather than lost.
	Torn bool
	// Stage names the failed step: "replay", "mount-noroll",
	// "check-noroll", "mount", "check", "content", "unmount", "fsck".
	Stage string
	// Detail describes the violation.
	Detail string
}

func (f CrashFailure) String() string {
	kind := "lost"
	if f.Torn {
		kind = "torn"
	}
	return fmt.Sprintf("crash at write %d (%s): [%s] %s", f.CutWrite, kind, f.Stage, f.Detail)
}

// CrashReport summarises a crash-point enumeration.
type CrashReport struct {
	// TotalWrites is the number of disk writes the workload issued.
	TotalWrites int64
	// Points is the number of crash points replayed.
	Points int
	// RollForwardPoints counts crash points where recovery replayed
	// at least one log unit beyond the checkpoint.
	RollForwardPoints int
	// SnapshotPoints counts crash points reconstructed by restoring a
	// copy-on-write snapshot rather than replaying the workload.
	SnapshotPoints int
	// Failures lists every invariant violation found.
	Failures []CrashFailure
}

// Ok reports whether every crash point recovered cleanly.
func (r *CrashReport) Ok() bool { return len(r.Failures) == 0 }

// crashState is a point-in-time shadow state of one path.
type crashState struct {
	exists  bool
	isDir   bool
	content []byte
}

func (s crashState) describe() string {
	switch {
	case !s.exists:
		return "absent"
	case s.isDir:
		return "directory"
	default:
		return fmt.Sprintf("file of %d bytes", len(s.content))
	}
}

func (s crashState) equal(o crashState) bool {
	if s.exists != o.exists {
		return false
	}
	if !s.exists {
		return true
	}
	return s.isDir == o.isDir && (s.isDir || bytes.Equal(s.content, o.content))
}

// crashHistory is the full version history of one path: the state it
// entered at each workload step that changed it. Step -1 is the
// pre-workload state.
type crashHistory struct {
	steps  []int
	states []crashState
}

func (h *crashHistory) record(step int, st crashState) {
	if n := len(h.steps); n > 0 && h.steps[n-1] == step {
		h.states[n-1] = st
		return
	}
	h.steps = append(h.steps, step)
	h.states = append(h.states, st)
}

// at returns the state in effect after the given step.
func (h *crashHistory) at(step int) crashState {
	st := crashState{}
	for i, s := range h.steps {
		if s > step {
			break
		}
		st = h.states[i]
	}
	return st
}

// window returns every distinct state the path held between floor and
// last inclusive — the states recovery is allowed to restore when the
// newest durable checkpoint covers step floor.
func (h *crashHistory) window(floor, last int) []crashState {
	out := []crashState{h.at(floor)}
	for i, s := range h.steps {
		if s > floor && s <= last {
			out = append(out, h.states[i])
		}
	}
	return out
}

// RunCrashPoints records the workload's write stream, then replays it
// with a power cut at each crash point and verifies recovery. It
// returns an error only when the harness itself cannot run (the
// recording pass fails); recovery violations are reported in the
// CrashReport.
func RunCrashPoints(cfg CrashConfig) (*CrashReport, error) {
	r := &crashRunner{cfg: cfg, lastStep: len(cfg.Workload) - 1}
	if err := r.recordPass(); err != nil {
		return nil, err
	}
	rep := &CrashReport{TotalWrites: r.totalWrites}
	stride := cfg.Stride
	if stride < 1 {
		stride = 1
	}
	for k := int64(1); k <= r.totalWrites; k += int64(stride) {
		if cfg.MaxPoints > 0 && rep.Points >= cfg.MaxPoints {
			break
		}
		rep.Points++
		var rolled bool
		var fails []CrashFailure
		if r.rec != nil {
			rep.SnapshotPoints++
			rolled, fails = r.snapshotPoint(k)
		} else {
			rolled, fails = r.replayPoint(k)
		}
		if rolled {
			rep.RollForwardPoints++
		}
		rep.Failures = append(rep.Failures, fails...)
	}
	r.release()
	return rep, nil
}

// crashRunner carries the recording-pass results across crash points.
type crashRunner struct {
	cfg      CrashConfig
	lastStep int

	histories   map[string]*crashHistory
	totalWrites int64
	// stepWrites[i] and stepCkpts[i] are the cumulative disk-write
	// and checkpoint counts after workload step i.
	stepWrites []int64
	stepCkpts  []int64
	baseCkpts  int64

	// geom is the recording volume's geometry, shared by every
	// snapshot-path recovery disk.
	geom disk.Geometry
	// base is the copy-on-write store the recording pass ran on;
	// rec is the wrapper that captured one snapshot per disk write.
	// Both are nil on the replay path.
	base *disk.CowMemStore
	rec  *snapRecorder
}

// snapRecorder wraps the recording store: once armed, it captures a
// copy-on-write snapshot immediately before every write — the image a
// crash during that write starts from — plus, when tearing, the prefix
// of the write that would survive (CrashPlan keeps the leading half,
// rounded down to a sector boundary).
type snapRecorder struct {
	disk.Store                 // the underlying CowMemStore
	snaps      []disk.Snapshot // snaps[k-1] = image before write k
	prefixes   [][]byte        // torn prefix of write k (nil entries when not tearing)
	prefixOffs []int64
	armed      bool
	torn       bool
	err        error // first snapshot failure, checked after recording
}

// WriteAt snapshots the pre-write image, then applies the write.
func (s *snapRecorder) WriteAt(p []byte, off int64) error {
	if s.armed && s.err == nil {
		sn, err := s.Store.(disk.Snapshotter).Snapshot()
		if err != nil {
			s.err = err
		} else {
			s.snaps = append(s.snaps, sn)
			var prefix []byte
			if s.torn {
				if keep := len(p) / disk.SectorSize / 2 * disk.SectorSize; keep > 0 {
					prefix = append([]byte(nil), p[:keep]...)
				}
			}
			s.prefixes = append(s.prefixes, prefix)
			s.prefixOffs = append(s.prefixOffs, off)
		}
	}
	return s.Store.WriteAt(p, off)
}

// release frees the recorded snapshots.
func (r *crashRunner) release() {
	if r.rec == nil {
		return
	}
	for _, sn := range r.rec.snaps {
		sn.Release()
	}
	r.base.Close()
	r.rec = nil
}

// freshImage formats a new volume and mounts it, returning the disk
// and file system. Format and mount writes precede the fault policy,
// so write numbering starts at the first workload-induced write.
func (r *crashRunner) freshImage() (*disk.Disk, *core.FS, error) {
	d := disk.NewMem(r.cfg.DiskCapacity, sim.NewClock())
	if err := core.Format(d, r.cfg.FSConfig); err != nil {
		return nil, nil, fmt.Errorf("fstest: format: %w", err)
	}
	fs, err := core.Mount(d, r.cfg.FSConfig)
	if err != nil {
		return nil, nil, fmt.Errorf("fstest: mount: %w", err)
	}
	return d, fs, nil
}

// recordPass runs the workload fault-free, counting writes and
// checkpoints per step and building the shadow history of every path.
// On the snapshot path the volume lives on a copy-on-write store and
// every disk write leaves behind the image a crash during it would
// start from.
func (r *crashRunner) recordPass() error {
	var d *disk.Disk
	var fs *core.FS
	var err error
	if r.cfg.Replay {
		d, fs, err = r.freshImage()
		if err != nil {
			return err
		}
	} else {
		r.geom = disk.GeometryForCapacity(r.cfg.DiskCapacity)
		r.base = disk.NewCowMemStore(r.geom.TotalBytes())
		r.rec = &snapRecorder{Store: r.base, torn: r.cfg.Torn}
		d, err = disk.New(r.rec, r.geom, disk.WrenIVModel(), sim.NewClock())
		if err != nil {
			return fmt.Errorf("fstest: recording disk: %w", err)
		}
		if err := core.Format(d, r.cfg.FSConfig); err != nil {
			return fmt.Errorf("fstest: format: %w", err)
		}
		fs, err = core.Mount(d, r.cfg.FSConfig)
		if err != nil {
			return fmt.Errorf("fstest: mount: %w", err)
		}
		r.rec.armed = true // snapshot numbering matches policy write numbering from here
	}
	d.SetFaultPolicy(&disk.CrashPlan{}) // pure sequence counter
	r.baseCkpts = fs.Stats().Checkpoints
	r.histories = make(map[string]*crashHistory)
	r.recordState(-1, "/", crashState{exists: true, isDir: true})
	cur := map[string]crashState{"/": {exists: true, isDir: true}}
	r.stepWrites = make([]int64, len(r.cfg.Workload))
	r.stepCkpts = make([]int64, len(r.cfg.Workload))
	for i, op := range r.cfg.Workload {
		if err := applyCrashOp(fs, op); err != nil {
			return fmt.Errorf("fstest: recording step %d: %w", i, err)
		}
		r.applyShadow(cur, i, op)
		r.stepWrites[i] = d.PolicyWrites()
		r.stepCkpts[i] = fs.Stats().Checkpoints
	}
	r.totalWrites = d.PolicyWrites()
	if r.rec != nil {
		r.rec.armed = false
		if r.rec.err != nil {
			return fmt.Errorf("fstest: snapshotting the recording pass: %w", r.rec.err)
		}
		if int64(len(r.rec.snaps)) != r.totalWrites {
			return fmt.Errorf("fstest: recorded %d snapshots for %d writes", len(r.rec.snaps), r.totalWrites)
		}
	}
	return nil
}

func (r *crashRunner) recordState(step int, path string, st crashState) {
	h := r.histories[path]
	if h == nil {
		h = &crashHistory{}
		r.histories[path] = h
	}
	h.record(step, st)
}

// applyShadow mirrors one op into the shadow model.
func (r *crashRunner) applyShadow(cur map[string]crashState, step int, op CrashOp) {
	switch op.Kind {
	case OpCreate:
		st := crashState{exists: true, content: []byte{}}
		cur[op.Path] = st
		r.recordState(step, op.Path, st)
	case OpMkdir:
		st := crashState{exists: true, isDir: true}
		cur[op.Path] = st
		r.recordState(step, op.Path, st)
	case OpWrite:
		prev := cur[op.Path].content
		end := op.Off + int64(len(op.Data))
		n := int64(len(prev))
		if end > n {
			n = end
		}
		content := make([]byte, n)
		copy(content, prev)
		copy(content[op.Off:], op.Data)
		st := crashState{exists: true, content: content}
		cur[op.Path] = st
		r.recordState(step, op.Path, st)
	case OpTruncate:
		prev := cur[op.Path].content
		content := make([]byte, op.Size)
		copy(content, prev)
		st := crashState{exists: true, content: content}
		cur[op.Path] = st
		r.recordState(step, op.Path, st)
	case OpRemove:
		cur[op.Path] = crashState{}
		r.recordState(step, op.Path, crashState{})
	}
}

// applyCrashOp performs one workload step against the file system.
func applyCrashOp(fs *core.FS, op CrashOp) error {
	switch op.Kind {
	case OpCreate:
		return fs.Create(op.Path)
	case OpMkdir:
		return fs.Mkdir(op.Path)
	case OpWrite:
		return fs.Write(op.Path, op.Off, op.Data)
	case OpRemove:
		return fs.Remove(op.Path)
	case OpTruncate:
		return fs.Truncate(op.Path, op.Size)
	case OpSync:
		return fs.Sync()
	case OpCheckpoint:
		return fs.Checkpoint()
	case OpClean:
		_, err := fs.CleanOnce()
		return err
	}
	return fmt.Errorf("fstest: unknown op kind %d", op.Kind)
}

// floorFor returns the newest workload step whose checkpoint is
// guaranteed durable when writes 1..k-1 persisted: a checkpoint
// completed during that step and every write up to the step's end
// reached disk. Step -1 (the formatted empty volume) is always
// durable. The floor is conservative — a checkpoint inside step i
// whose region write persisted but whose step issued later writes
// is not counted — which only weakens the assertion, never makes it
// wrong.
func (r *crashRunner) floorFor(k int64) int {
	floor := -1
	prev := r.baseCkpts
	for i := range r.stepCkpts {
		if r.stepCkpts[i] > prev && r.stepWrites[i] <= k-1 {
			floor = i
		}
		prev = r.stepCkpts[i]
	}
	return floor
}

// replayPoint replays the workload with power cut during write k and
// verifies recovery. It reports whether recovery rolled forward past
// the checkpoint, plus any invariant violations.
func (r *crashRunner) replayPoint(k int64) (rolledForward bool, fails []CrashFailure) {
	fail := func(stage, format string, args ...any) {
		fails = append(fails, CrashFailure{
			CutWrite: k, Torn: r.cfg.Torn, Stage: stage,
			Detail: fmt.Sprintf(format, args...),
		})
	}

	d, fs, err := r.freshImage()
	if err != nil {
		fail("replay", "%v", err)
		return false, fails
	}
	d.SetFaultPolicy(&disk.CrashPlan{CutWrite: k, TearFatalWrite: r.cfg.Torn})
	crashed := false
	for i, op := range r.cfg.Workload {
		if err := applyCrashOp(fs, op); err != nil {
			if errors.Is(err, disk.ErrPowerLoss) {
				crashed = true
				break
			}
			fail("replay", "step %d failed with a non-crash error: %v", i, err)
			return false, fails
		}
	}
	if !crashed {
		fail("replay", "power cut never fired: replay diverged from the recording pass")
		return false, fails
	}
	// Reboot: the device comes back with whatever persisted; the old
	// FS instance is dead memory.
	d.Thaw()
	d.SetFaultPolicy(nil)
	return r.verifyRecovery(d, k)
}

// snapshotPoint reconstructs the post-crash image for write k by
// restoring the pre-write snapshot — plus the fatal write's surviving
// prefix, when tearing — and verifies recovery on it directly, without
// re-running the workload.
func (r *crashRunner) snapshotPoint(k int64) (rolledForward bool, fails []CrashFailure) {
	fail := func(stage, format string, args ...any) {
		fails = append(fails, CrashFailure{
			CutWrite: k, Torn: r.cfg.Torn, Stage: stage,
			Detail: fmt.Sprintf(format, args...),
		})
	}
	if err := r.rec.snaps[k-1].Restore(); err != nil {
		fail("restore", "restoring the pre-write image: %v", err)
		return false, fails
	}
	if prefix := r.rec.prefixes[k-1]; len(prefix) > 0 {
		if err := r.base.WriteAt(prefix, r.rec.prefixOffs[k-1]); err != nil {
			fail("restore", "applying the torn prefix: %v", err)
			return false, fails
		}
	}
	// Reboot onto the reconstructed image: a fresh device and clock,
	// exactly as a replayed crash leaves behind.
	d, err := disk.New(r.base, r.geom, disk.WrenIVModel(), sim.NewClock())
	if err != nil {
		fail("restore", "reopening the device: %v", err)
		return false, fails
	}
	return r.verifyRecovery(d, k)
}

// verifyRecovery runs the recovery invariants against a device holding
// the post-crash image: checkpoint-only mount must be consistent, full
// recovery must mount and check clean, recovered contents must be
// explainable by the shadow history, and the unmounted image must pass
// fsck. Both crash-point strategies share it.
func (r *crashRunner) verifyRecovery(d *disk.Disk, k int64) (rolledForward bool, fails []CrashFailure) {
	fail := func(stage, format string, args ...any) {
		fails = append(fails, CrashFailure{
			CutWrite: k, Torn: r.cfg.Torn, Stage: stage,
			Detail: fmt.Sprintf(format, args...),
		})
	}

	// (1) Checkpoint-only recovery. Mounting without roll-forward
	// reads only the checkpoint regions and the structures they name,
	// writes nothing, and must already yield a consistent tree —
	// the paper's base recovery guarantee.
	noroll := r.cfg.FSConfig
	noroll.RollForward = false
	if fsNR, err := core.Mount(d, noroll); err != nil {
		fail("mount-noroll", "checkpoint-only mount failed: %v", err)
	} else if chk, err := fsNR.Check(); err != nil {
		fail("check-noroll", "checker failed: %v", err)
	} else if !chk.Ok() {
		fail("check-noroll", "%s", strings.Join(chk.Problems, "; "))
	}

	// (2) Full recovery: checkpoint plus roll-forward.
	fs2, err := core.Mount(d, r.cfg.FSConfig)
	if err != nil {
		fail("mount", "recovery mount failed: %v", err)
		return false, fails
	}
	rolledForward = fs2.Stats().RollForwardUnits > 0
	if chk, err := fs2.Check(); err != nil {
		fail("check", "checker failed: %v", err)
	} else if !chk.Ok() {
		fail("check", "%s", strings.Join(chk.Problems, "; "))
	}

	// (3) Recovered contents must be explainable: every path must be
	// in some state it actually held at or after the durable floor,
	// and nothing acknowledged by the floor checkpoint may be lost.
	fails = append(fails, r.verifyContent(fs2, k)...)

	// (4) The offline-tool path: unmount (stabilising recovery with a
	// checkpoint), then fsck the image exactly as cmd/lfsck would.
	if err := fs2.Unmount(); err != nil {
		fail("unmount", "%v", err)
		return rolledForward, fails
	}
	if chk, err := core.Fsck(d, r.cfg.FSConfig); err != nil {
		fail("fsck", "%v", err)
	} else if !chk.Ok() {
		fail("fsck", "%s", strings.Join(chk.Problems, "; "))
	}
	return rolledForward, fails
}

// verifyContent walks the recovered tree and checks every path —
// recovered or shadow-known — against the shadow history window
// [floor, lastStep].
func (r *crashRunner) verifyContent(fs *core.FS, k int64) []CrashFailure {
	var fails []CrashFailure
	fail := func(format string, args ...any) {
		fails = append(fails, CrashFailure{
			CutWrite: k, Torn: r.cfg.Torn, Stage: "content",
			Detail: fmt.Sprintf(format, args...),
		})
	}
	recovered := map[string]crashState{}
	if err := collectTree(fs, "/", recovered); err != nil {
		fail("walking the recovered tree: %v", err)
		return fails
	}
	floor := r.floorFor(k)

	paths := make([]string, 0, len(r.histories))
	for p := range r.histories {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		h := r.histories[p]
		got := recovered[p]
		allowed := h.window(floor, r.lastStep)
		ok := false
		for _, st := range allowed {
			if got.equal(st) {
				ok = true
				break
			}
		}
		if !ok {
			fail("%s: recovered as %s, which matches no state the path held between durable step %d and step %d (floor state: %s)",
				p, got.describe(), floor, r.lastStep, h.at(floor).describe())
		}
	}
	// Unknown-path failures report in sorted order too: CrashFailure
	// details feed test output and goldens, so they must not inherit
	// map iteration order.
	unknown := make([]string, 0, len(recovered))
	for p := range recovered {
		unknown = append(unknown, p)
	}
	sort.Strings(unknown)
	for _, p := range unknown {
		if _, known := r.histories[p]; !known {
			fails = append(fails, CrashFailure{
				CutWrite: k, Torn: r.cfg.Torn, Stage: "content",
				Detail: p + ": recovered but never created by the workload",
			})
		}
	}
	return fails
}

// collectTree reads the full recovered tree into out.
func collectTree(fs *core.FS, path string, out map[string]crashState) error {
	entries, err := fs.ReadDir(path)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	out[path] = crashState{exists: true, isDir: true}
	for _, e := range entries {
		child := path + "/" + e.Name
		if path == "/" {
			child = "/" + e.Name
		}
		info, err := fs.Stat(child)
		if err != nil {
			return fmt.Errorf("%s: %w", child, err)
		}
		if info.Mode.IsDir() {
			if err := collectTree(fs, child, out); err != nil {
				return err
			}
			continue
		}
		content := make([]byte, info.Size)
		if info.Size > 0 {
			if _, err := fs.Read(child, 0, content); err != nil {
				return fmt.Errorf("%s: %w", child, err)
			}
		}
		out[child] = crashState{exists: true, content: content}
	}
	return nil
}

// MixedWorkload builds a deterministic create/write/overwrite/delete
// workload of nFiles small files across two directories, with periodic
// syncs, checkpoints, and cleaner passes — the mix the acceptance
// criteria name. Sized so files span several blocks and deletions
// leave fragmented segments for the cleaner.
func MixedWorkload(nFiles, blockSize int) []CrashOp {
	var ops []CrashOp
	ops = append(ops,
		CrashOp{Kind: OpMkdir, Path: "/a"},
		CrashOp{Kind: OpMkdir, Path: "/b"},
	)
	pattern := func(i, gen int) []byte {
		b := make([]byte, 3*blockSize+blockSize/2)
		for j := range b {
			b[j] = byte(i*31 + gen*7 + j)
		}
		return b
	}
	name := func(i int) string {
		dir := "/a"
		if i%2 == 1 {
			dir = "/b"
		}
		return fmt.Sprintf("%s/f%02d", dir, i)
	}
	for i := 0; i < nFiles; i++ {
		p := name(i)
		ops = append(ops,
			CrashOp{Kind: OpCreate, Path: p},
			CrashOp{Kind: OpWrite, Path: p, Off: 0, Data: pattern(i, 0)},
		)
		switch i % 4 {
		case 1:
			// Overwrite, killing the first generation's blocks.
			ops = append(ops, CrashOp{Kind: OpWrite, Path: p, Off: 0, Data: pattern(i, 1)})
		case 2:
			ops = append(ops, CrashOp{Kind: OpTruncate, Path: p, Size: int64(blockSize / 2)})
		}
		if i%3 == 2 {
			ops = append(ops, CrashOp{Kind: OpSync})
		}
		if i%5 == 4 {
			ops = append(ops, CrashOp{Kind: OpCheckpoint})
		}
		if i > 0 && i%6 == 5 {
			// Delete an older file, fragmenting its segments.
			ops = append(ops, CrashOp{Kind: OpRemove, Path: name(i - 3)})
		}
		if i > 0 && i%8 == 7 {
			ops = append(ops, CrashOp{Kind: OpClean})
		}
	}
	ops = append(ops, CrashOp{Kind: OpCheckpoint})
	return ops
}
