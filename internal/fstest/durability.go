package fstest

import (
	"math/rand"
	"testing"

	"lfs/internal/vfs"
)

// ReopenableFactory opens a fresh file system and returns it together
// with a reopen function that unmount-remounts the same volume
// (returning a new handle backed by the same disk).
type ReopenableFactory func(t *testing.T) (fs vfs.FileSystem, reopen func() vfs.FileSystem)

// RunDurabilityEquivalence drives the implementation and the
// in-memory model with the same random operations, then unmounts,
// remounts, and requires the remounted tree to match the model
// exactly — a clean unmount must persist everything.
func RunDurabilityEquivalence(t *testing.T, open ReopenableFactory, seed int64, nOps int) {
	t.Helper()
	fs, reopen := open(t)
	model := vfs.NewModel(nil)
	rng := rand.New(rand.NewSource(seed))
	g := newOpGen(rng)

	for i := 0; i < nOps; i++ {
		op := g.next()
		applyBoth(t, fs, model, op, i)
		// Interleave syncs so the log sees partial-segment writes,
		// multiple units, and age-threshold-like patterns.
		if rng.Intn(40) == 0 {
			if err := fs.Sync(); err != nil {
				t.Fatalf("step %d: sync: %v", i, err)
			}
		}
	}
	if err := fs.Unmount(); err != nil {
		t.Fatalf("unmount: %v", err)
	}
	remounted := reopen()
	compareTrees(t, remounted, model, "/")
}
