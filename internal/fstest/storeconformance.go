package fstest

// Store-level conformance: the block-store analogue of RunConformance.
// Every Store backend (in-memory, copy-on-write, sparse file, mmap)
// must pass one exported battery, including the two clauses the
// simulation depends on: fault injection behaves identically through
// every backend, and the same seeded request stream leaves the same
// bytes on every backend — images are backend-independent.

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"lfs/internal/disk"
	"lfs/internal/sim"
)

// StoreFactory opens a fresh, empty store for one subtest. The store
// must be at least 4 MB; the factory (typically via t.TempDir and
// t.Cleanup) owns any backing files. The suite closes the store when a
// clause finishes — Close must be idempotent.
type StoreFactory func(t *testing.T) disk.Store

// storeMinSize is the capacity floor RunStoreConformance demands.
const storeMinSize = 4 << 20

// RunStoreConformance runs the full store battery against the backend
// produced by open. Capability clauses (snapshots, allocation
// reporting) are skipped for stores that do not implement the
// corresponding optional interface.
func RunStoreConformance(t *testing.T, open StoreFactory) {
	t.Helper()
	tests := []struct {
		name string
		fn   func(*testing.T, StoreFactory)
	}{
		{"UnwrittenReadsZero", testStoreUnwrittenReadsZero},
		{"RoundTripDifferential", testStoreRoundTripDifferential},
		{"ZeroLengthIO", testStoreZeroLengthIO},
		{"OutOfRange", testStoreOutOfRange},
		{"CloseSemantics", testStoreCloseSemantics},
		{"SyncPersists", testStoreSyncPersists},
		{"SameSeedIdenticalImage", testStoreSameSeedIdenticalImage},
		{"FaultInjectionIdentical", testStoreFaultInjectionIdentical},
		{"SnapshotRewind", testStoreSnapshotRewind},
		{"SnapshotIndependence", testStoreSnapshotIndependence},
		{"AllocatedBytes", testStoreAllocatedBytes},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			tc.fn(t, open)
		})
	}
}

// openChecked opens a store and enforces the suite's size floor.
func openChecked(t *testing.T, open StoreFactory) disk.Store {
	t.Helper()
	s := open(t)
	if s == nil {
		t.Fatal("factory returned a nil store")
	}
	if s.Size() < storeMinSize {
		t.Fatalf("store of %d bytes is below the conformance floor of %d", s.Size(), storeMinSize)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// storeImage reads the full store contents.
func storeImage(t *testing.T, s disk.Store) []byte {
	t.Helper()
	img := make([]byte, s.Size())
	const step = 1 << 20
	for off := int64(0); off < s.Size(); off += step {
		n := s.Size() - off
		if n > step {
			n = step
		}
		if err := s.ReadAt(img[off:off+n], off); err != nil {
			t.Fatalf("reading image at %d: %v", off, err)
		}
	}
	return img
}

func testStoreUnwrittenReadsZero(t *testing.T, open StoreFactory) {
	s := openChecked(t, open)
	buf := make([]byte, 4096)
	for _, off := range []int64{0, 512, s.Size() / 2, s.Size() - int64(len(buf))} {
		for i := range buf {
			buf[i] = 0xFF
		}
		if err := s.ReadAt(buf, off); err != nil {
			t.Fatalf("read at %d: %v", off, err)
		}
		for i, b := range buf {
			if b != 0 {
				t.Fatalf("unwritten byte at %d+%d = %#x, want 0", off, i, b)
			}
		}
	}
}

// storeOpStream drives a seeded stream of sector-aligned writes, reads,
// and syncs against the store, mirroring every write into a flat model
// image. When snapshots is true and the store supports them, the
// stream also snapshots and restores (mirroring both into model
// copies). It returns the final model image.
func storeOpStream(t *testing.T, s disk.Store, seed int64, ops int, snapshots bool) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	model := make([]byte, s.Size())
	sectors := s.Size() / disk.SectorSize

	snapper, canSnap := s.(disk.Snapshotter)
	canSnap = canSnap && snapshots
	type snapPair struct {
		snap  disk.Snapshot
		model []byte
	}
	var snaps []snapPair

	buf := make([]byte, 64*disk.SectorSize)
	for i := 0; i < ops; i++ {
		n := (1 + rng.Intn(64)) * disk.SectorSize
		sector := rng.Int63n(sectors - 64)
		off := sector * disk.SectorSize
		switch k := rng.Intn(100); {
		case k < 55: // write
			p := buf[:n]
			for j := range p {
				p[j] = byte(rng.Intn(256))
			}
			if err := s.WriteAt(p, off); err != nil {
				t.Fatalf("op %d: write [%d,%d): %v", i, off, off+int64(n), err)
			}
			copy(model[off:], p)
		case k < 85: // read and compare against the model
			p := buf[:n]
			if err := s.ReadAt(p, off); err != nil {
				t.Fatalf("op %d: read [%d,%d): %v", i, off, off+int64(n), err)
			}
			if !bytes.Equal(p, model[off:off+int64(n)]) {
				t.Fatalf("op %d: read [%d,%d) diverged from the model", i, off, off+int64(n))
			}
		case k < 90: // sync
			if err := s.Sync(); err != nil {
				t.Fatalf("op %d: sync: %v", i, err)
			}
		case k < 95 && canSnap: // snapshot
			sn, err := snapper.Snapshot()
			if err != nil {
				t.Fatalf("op %d: snapshot: %v", i, err)
			}
			m := make([]byte, len(model))
			copy(m, model)
			snaps = append(snaps, snapPair{sn, m})
		case canSnap && len(snaps) > 0: // restore a random snapshot
			pair := snaps[rng.Intn(len(snaps))]
			if err := pair.snap.Restore(); err != nil {
				t.Fatalf("op %d: restore: %v", i, err)
			}
			copy(model, pair.model)
		}
	}
	for _, pair := range snaps {
		if err := pair.snap.Release(); err != nil {
			t.Fatalf("release: %v", err)
		}
	}
	return model
}

func testStoreRoundTripDifferential(t *testing.T, open StoreFactory) {
	s := openChecked(t, open)
	model := storeOpStream(t, s, 1234, 400, true)
	if !bytes.Equal(storeImage(t, s), model) {
		t.Fatal("final image diverged from the flat model")
	}
}

func testStoreZeroLengthIO(t *testing.T, open StoreFactory) {
	s := openChecked(t, open)
	for _, off := range []int64{0, 512, s.Size()} {
		if err := s.ReadAt(nil, off); err != nil {
			t.Fatalf("zero-length read at %d: %v", off, err)
		}
		if err := s.WriteAt(nil, off); err != nil {
			t.Fatalf("zero-length write at %d: %v", off, err)
		}
	}
}

func testStoreOutOfRange(t *testing.T, open StoreFactory) {
	s := openChecked(t, open)
	buf := make([]byte, disk.SectorSize)
	cases := []struct {
		name string
		err  error
	}{
		{"read past capacity", s.ReadAt(buf, s.Size())},
		{"read straddling the end", s.ReadAt(buf, s.Size()-256)},
		{"read at negative offset", s.ReadAt(buf, -1)},
		{"write past capacity", s.WriteAt(buf, s.Size())},
		{"write straddling the end", s.WriteAt(buf, s.Size()-256)},
		{"write at negative offset", s.WriteAt(buf, -disk.SectorSize)},
		{"zero-length read past capacity", s.ReadAt(nil, s.Size()+1)},
	}
	for _, c := range cases {
		if !errors.Is(c.err, disk.ErrOutOfRange) {
			t.Errorf("%s: err = %v, want errors.Is(err, disk.ErrOutOfRange)", c.name, c.err)
		}
	}
}

func testStoreCloseSemantics(t *testing.T, open StoreFactory) {
	s := openChecked(t, open)
	buf := make([]byte, disk.SectorSize)
	if err := s.WriteAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second close must be a no-op, got %v", err)
	}
	if err := s.ReadAt(buf, 0); !errors.Is(err, disk.ErrClosed) {
		t.Errorf("read after close: err = %v, want errors.Is(err, disk.ErrClosed)", err)
	}
	if err := s.WriteAt(buf, 0); !errors.Is(err, disk.ErrClosed) {
		t.Errorf("write after close: err = %v, want errors.Is(err, disk.ErrClosed)", err)
	}
	if err := s.Sync(); !errors.Is(err, disk.ErrClosed) {
		t.Errorf("sync after close: err = %v, want errors.Is(err, disk.ErrClosed)", err)
	}
}

func testStoreSyncPersists(t *testing.T, open StoreFactory) {
	s := openChecked(t, open)
	want := bytes.Repeat([]byte{0x5A, 0xA5}, 8*disk.SectorSize)
	if err := s.WriteAt(want, 3*disk.SectorSize); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	got := make([]byte, len(want))
	if err := s.ReadAt(got, 3*disk.SectorSize); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("data changed across Sync")
	}
}

// testStoreSameSeedIdenticalImage runs one seeded write stream against
// the backend under test and against the reference MemStore; the final
// images must be byte-identical. This is the backend-independence
// clause: on-disk image bytes are a function of the request stream
// alone, never of the persistence technology.
func testStoreSameSeedIdenticalImage(t *testing.T, open StoreFactory) {
	s := openChecked(t, open)
	ref := disk.NewMemStore(s.Size())
	defer ref.Close()
	const seed, ops = 987, 300
	storeOpStream(t, s, seed, ops, false)
	storeOpStream(t, ref, seed, ops, false)
	if !bytes.Equal(storeImage(t, s), storeImage(t, ref)) {
		t.Fatal("same-seed images differ between the backend and the reference MemStore")
	}
}

// faultScript issues a fixed write sequence through a Disk built over
// the store, with plan attached, and returns the write index that
// observed the power cut (0 if none).
func faultScript(t *testing.T, s disk.Store, plan *disk.CrashPlan) int {
	t.Helper()
	geom := faultGeometry(s.Size())
	d, err := disk.New(s, geom, disk.WrenIVModel(), sim.NewClock())
	if err != nil {
		t.Fatalf("building disk over store: %v", err)
	}
	d.SetFaultPolicy(plan)
	rng := rand.New(rand.NewSource(55))
	cut := 0
	for i := 1; i <= 40; i++ {
		n := (1 + rng.Intn(16)) * disk.SectorSize
		sector := rng.Int63n(geom.TotalSectors() - 16)
		p := make([]byte, n)
		for j := range p {
			p[j] = byte(rng.Intn(256))
		}
		sync := i%3 == 0
		//lfslint:allow iocause raw store-conformance traffic below any file system; attribution is irrelevant here
		if err := d.WriteSectors(sector, p, sync, disk.CauseOther, "fault-script"); err != nil {
			if errors.Is(err, disk.ErrPowerLoss) {
				cut = i
				break
			}
			t.Fatalf("write %d: %v", i, err)
		}
	}
	return cut
}

// faultGeometry builds the largest WREN-IV-shaped geometry fitting the
// store.
func faultGeometry(size int64) disk.Geometry {
	g := disk.Geometry{SectorsPerTrack: 42, TracksPerCylinder: 9}
	g.Cylinders = int(size / (g.SectorsPerCylinder() * disk.SectorSize))
	return g
}

// testStoreFaultInjectionIdentical verifies the fault layer composes
// with every backend: an identical CrashPlan over an identical write
// stream cuts power at the same request and leaves a byte-identical
// image on the backend under test and on the reference MemStore —
// including the torn-write case, where only a prefix persists.
func testStoreFaultInjectionIdentical(t *testing.T, open StoreFactory) {
	for _, tc := range []struct {
		name string
		plan func() *disk.CrashPlan
	}{
		{"lost", func() *disk.CrashPlan { return &disk.CrashPlan{CutWrite: 17} }},
		{"torn", func() *disk.CrashPlan { return &disk.CrashPlan{CutWrite: 17, TearFatalWrite: true} }},
		{"dropped", func() *disk.CrashPlan {
			return &disk.CrashPlan{CutWrite: 23, DropWrites: map[int64]bool{5: true, 9: true}}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := openChecked(t, open)
			ref := disk.NewMemStore(s.Size())
			defer ref.Close()
			cut := faultScript(t, s, tc.plan())
			refCut := faultScript(t, ref, tc.plan())
			if cut == 0 || cut != refCut {
				t.Fatalf("power cut at write %d on the backend, %d on the reference", cut, refCut)
			}
			if !bytes.Equal(storeImage(t, s), storeImage(t, ref)) {
				t.Fatal("post-crash images differ between the backend and the reference MemStore")
			}
		})
	}
}

func testStoreSnapshotRewind(t *testing.T, open StoreFactory) {
	s := openChecked(t, open)
	snapper, ok := s.(disk.Snapshotter)
	if !ok {
		t.Skipf("%T does not implement disk.Snapshotter", s)
	}
	base := bytes.Repeat([]byte{1, 2, 3, 4}, 4*disk.SectorSize)
	if err := s.WriteAt(base, 0); err != nil {
		t.Fatal(err)
	}
	sn, err := snapper.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	want := storeImage(t, s)

	// Scribble widely, then rewind — twice, since snapshots must
	// survive their own restore.
	for round := 0; round < 2; round++ {
		junk := bytes.Repeat([]byte{0xEE}, 8*disk.SectorSize)
		for _, off := range []int64{0, s.Size() / 3, s.Size() - int64(len(junk))} {
			if err := s.WriteAt(junk, off); err != nil {
				t.Fatal(err)
			}
		}
		if err := sn.Restore(); err != nil {
			t.Fatalf("restore round %d: %v", round, err)
		}
		if !bytes.Equal(storeImage(t, s), want) {
			t.Fatalf("round %d: image after restore differs from the snapshot state", round)
		}
	}
	if err := sn.Release(); err != nil {
		t.Fatal(err)
	}
	if err := sn.Restore(); err == nil {
		t.Fatal("restore after Release succeeded")
	}
}

// testStoreSnapshotIndependence interleaves two snapshots and verifies
// each restores its own state regardless of restore order.
func testStoreSnapshotIndependence(t *testing.T, open StoreFactory) {
	s := openChecked(t, open)
	snapper, ok := s.(disk.Snapshotter)
	if !ok {
		t.Skipf("%T does not implement disk.Snapshotter", s)
	}
	write := func(fill byte) {
		p := bytes.Repeat([]byte{fill}, 4*disk.SectorSize)
		if err := s.WriteAt(p, int64(fill)*disk.SectorSize); err != nil {
			t.Fatal(err)
		}
	}
	write(1)
	sn1, err := snapper.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	img1 := storeImage(t, s)
	write(2)
	sn2, err := snapper.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	img2 := storeImage(t, s)
	write(3)

	if err := sn1.Restore(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(storeImage(t, s), img1) {
		t.Fatal("restoring the older snapshot did not reproduce its image")
	}
	if err := sn2.Restore(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(storeImage(t, s), img2) {
		t.Fatal("restoring the newer snapshot after the older one did not reproduce its image")
	}
	if err := sn1.Release(); err != nil {
		t.Fatal(err)
	}
	if err := sn2.Release(); err != nil {
		t.Fatal(err)
	}
}

func testStoreAllocatedBytes(t *testing.T, open StoreFactory) {
	s := openChecked(t, open)
	alloc, ok := s.(disk.Allocator)
	if !ok {
		t.Skipf("%T does not implement disk.Allocator", s)
	}
	if got := alloc.AllocatedBytes(); got < 0 {
		t.Fatalf("fresh store AllocatedBytes = %d, want >= 0", got)
	}
	// A quarter-megabyte of data plus a sync must show up in the
	// accounting, and a sparse store must not charge anywhere near
	// the full capacity for it.
	p := bytes.Repeat([]byte{0xC3}, 256<<10)
	if err := s.WriteAt(p, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	got := alloc.AllocatedBytes()
	if got <= 0 {
		t.Fatalf("AllocatedBytes = %d after writing and syncing %d bytes, want > 0", got, len(p))
	}
	if slack := s.Size() + (1 << 20); got > slack {
		t.Fatalf("AllocatedBytes = %d exceeds capacity %d plus slack", got, s.Size())
	}
}
