package fstest

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"lfs/internal/vfs"
)

// RunEquivalence drives the implementation produced by open and the
// in-memory model with the same pseudo-random operation sequence and
// fails on the first observable divergence: differing error classes,
// differing read contents, differing directory listings, or a
// differing final tree.
func RunEquivalence(t *testing.T, open Factory, seed int64, nOps int) {
	t.Helper()
	fs := open(t)
	model := vfs.NewModel(nil)
	rng := rand.New(rand.NewSource(seed))
	g := newOpGen(rng)

	for i := 0; i < nOps; i++ {
		op := g.next()
		applyBoth(t, fs, model, op, i)
	}
	compareTrees(t, fs, model, "/")
}

// errClass maps an error to the sentinel it wraps, so two
// implementations agree as long as they fail the same way.
func errClass(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, vfs.ErrNotExist):
		return "not-exist"
	case errors.Is(err, vfs.ErrExist):
		return "exist"
	case errors.Is(err, vfs.ErrIsDir):
		return "is-dir"
	case errors.Is(err, vfs.ErrNotDir):
		return "not-dir"
	case errors.Is(err, vfs.ErrNotEmpty):
		return "not-empty"
	case errors.Is(err, vfs.ErrNoSpace):
		return "no-space"
	case errors.Is(err, vfs.ErrTooLarge):
		return "too-large"
	case errors.Is(err, vfs.ErrInvalid):
		return "invalid"
	default:
		return "other:" + err.Error()
	}
}

// op is one generated operation.
type op struct {
	kind    string
	path    string
	path2   string
	off     int64
	data    []byte
	readLen int
	size    int64
}

// String renders the op for failure messages.
func (o op) String() string {
	switch o.kind {
	case "write":
		return fmt.Sprintf("write %s off=%d len=%d", o.path, o.off, len(o.data))
	case "read":
		return fmt.Sprintf("read %s off=%d len=%d", o.path, o.off, o.readLen)
	case "rename":
		return fmt.Sprintf("rename %s -> %s", o.path, o.path2)
	case "link":
		return fmt.Sprintf("link %s -> %s", o.path, o.path2)
	case "truncate":
		return fmt.Sprintf("truncate %s to %d", o.path, o.size)
	default:
		return o.kind + " " + o.path
	}
}

// opGen generates operations biased toward paths that exist, so the
// sequence exercises deep behaviour rather than erroring constantly.
type opGen struct {
	rng   *rand.Rand
	dirs  []string // existing directories, always contains "/"
	files []string // paths that were created as files (may be stale)
	next_ int
}

func newOpGen(rng *rand.Rand) *opGen {
	return &opGen{rng: rng, dirs: []string{"/"}}
}

func (g *opGen) randDir() string { return g.dirs[g.rng.Intn(len(g.dirs))] }

func (g *opGen) randFile() string {
	if len(g.files) == 0 || g.rng.Intn(10) == 0 {
		// Occasionally reference a plausible but maybe-missing path.
		return g.join(g.randDir(), fmt.Sprintf("f%d", g.rng.Intn(30)))
	}
	return g.files[g.rng.Intn(len(g.files))]
}

func (g *opGen) join(dir, name string) string {
	if dir == "/" {
		return "/" + name
	}
	return dir + "/" + name
}

func (g *opGen) newName(prefix string) string {
	g.next_++
	return fmt.Sprintf("%s%d-%d", prefix, g.next_, g.rng.Intn(8))
}

func (g *opGen) next() op {
	r := g.rng.Intn(100)
	switch {
	case r < 20: // create
		p := g.join(g.randDir(), g.newName("f"))
		g.files = append(g.files, p)
		return op{kind: "create", path: p}
	case r < 45: // write
		size := g.rng.Intn(20_000) + 1
		data := make([]byte, size)
		g.rng.Read(data)
		return op{kind: "write", path: g.randFile(), off: int64(g.rng.Intn(60_000)), data: data}
	case r < 60: // read
		return op{kind: "read", path: g.randFile(), off: int64(g.rng.Intn(80_000)), readLen: g.rng.Intn(30_000) + 1}
	case r < 70: // remove (files mostly, sometimes dirs)
		if g.rng.Intn(5) == 0 && len(g.dirs) > 1 {
			return op{kind: "remove", path: g.dirs[1+g.rng.Intn(len(g.dirs)-1)]}
		}
		return op{kind: "remove", path: g.randFile()}
	case r < 78: // mkdir
		p := g.join(g.randDir(), g.newName("d"))
		g.dirs = append(g.dirs, p)
		return op{kind: "mkdir", path: p}
	case r < 83: // readdir
		return op{kind: "readdir", path: g.randDir()}
	case r < 90: // truncate
		return op{kind: "truncate", path: g.randFile(), size: int64(g.rng.Intn(70_000))}
	case r < 92: // rename
		dst := g.join(g.randDir(), g.newName("r"))
		g.files = append(g.files, dst)
		return op{kind: "rename", path: g.randFile(), path2: dst}
	case r < 94: // hard link
		dst := g.join(g.randDir(), g.newName("l"))
		g.files = append(g.files, dst)
		return op{kind: "link", path: g.randFile(), path2: dst}
	case r < 97: // sync (exercises flush interleavings)
		return op{kind: "sync"}
	default: // stat
		return op{kind: "stat", path: g.randFile()}
	}
}

func applyBoth(t *testing.T, fs vfs.FileSystem, model *vfs.Model, o op, step int) {
	t.Helper()
	fail := func(format string, args ...any) {
		t.Helper()
		t.Fatalf("step %d (%s): %s", step, o, fmt.Sprintf(format, args...))
	}
	switch o.kind {
	case "create":
		a, b := fs.Create(o.path), model.Create(o.path)
		if errClass(a) != errClass(b) {
			fail("fs err %v, model err %v", a, b)
		}
	case "mkdir":
		a, b := fs.Mkdir(o.path), model.Mkdir(o.path)
		if errClass(a) != errClass(b) {
			fail("fs err %v, model err %v", a, b)
		}
	case "write":
		a, b := fs.Write(o.path, o.off, o.data), model.Write(o.path, o.off, o.data)
		if errClass(a) != errClass(b) {
			fail("fs err %v, model err %v", a, b)
		}
	case "read":
		bufA := make([]byte, o.readLen)
		bufB := make([]byte, o.readLen)
		nA, a := fs.Read(o.path, o.off, bufA)
		nB, b := model.Read(o.path, o.off, bufB)
		if errClass(a) != errClass(b) {
			fail("fs err %v, model err %v", a, b)
		}
		if a == nil {
			if nA != nB {
				fail("fs read %d bytes, model %d", nA, nB)
			}
			if !bytes.Equal(bufA[:nA], bufB[:nB]) {
				fail("read contents differ")
			}
		}
	case "remove":
		a, b := fs.Remove(o.path), model.Remove(o.path)
		if errClass(a) != errClass(b) {
			fail("fs err %v, model err %v", a, b)
		}
	case "readdir":
		entA, a := fs.ReadDir(o.path)
		entB, b := model.ReadDir(o.path)
		if errClass(a) != errClass(b) {
			fail("fs err %v, model err %v", a, b)
		}
		if a == nil {
			if len(entA) != len(entB) {
				fail("fs lists %d entries, model %d", len(entA), len(entB))
			}
			for i := range entA {
				if entA[i].Name != entB[i].Name {
					fail("entry %d: fs %q, model %q", i, entA[i].Name, entB[i].Name)
				}
			}
		}
	case "truncate":
		a, b := fs.Truncate(o.path, o.size), model.Truncate(o.path, o.size)
		if errClass(a) != errClass(b) {
			fail("fs err %v, model err %v", a, b)
		}
	case "rename":
		a, b := fs.Rename(o.path, o.path2), model.Rename(o.path, o.path2)
		if errClass(a) != errClass(b) {
			fail("fs err %v, model err %v", a, b)
		}
	case "link":
		a, b := fs.Link(o.path, o.path2), model.Link(o.path, o.path2)
		if errClass(a) != errClass(b) {
			fail("fs err %v, model err %v", a, b)
		}
	case "sync":
		a, b := fs.Sync(), model.Sync()
		if errClass(a) != errClass(b) {
			fail("fs err %v, model err %v", a, b)
		}
	case "stat":
		fiA, a := fs.Stat(o.path)
		fiB, b := model.Stat(o.path)
		if errClass(a) != errClass(b) {
			fail("fs err %v, model err %v", a, b)
		}
		if a == nil {
			if fiA.Size != fiB.Size || fiA.IsDir() != fiB.IsDir() {
				fail("fs stat %+v, model stat %+v", fiA, fiB)
			}
		}
	default:
		fail("unknown op kind")
	}
}

// compareTrees walks both hierarchies and requires identical structure
// and file contents.
func compareTrees(t *testing.T, fs vfs.FileSystem, model *vfs.Model, dir string) {
	t.Helper()
	entA, errA := fs.ReadDir(dir)
	entB, errB := model.ReadDir(dir)
	if errA != nil || errB != nil {
		t.Fatalf("final walk of %s: fs err %v, model err %v", dir, errA, errB)
	}
	if len(entA) != len(entB) {
		t.Fatalf("final walk of %s: fs %d entries, model %d", dir, len(entA), len(entB))
	}
	for i := range entA {
		if entA[i].Name != entB[i].Name {
			t.Fatalf("final walk of %s entry %d: %q vs %q", dir, i, entA[i].Name, entB[i].Name)
		}
		child := dir + "/" + entA[i].Name
		if dir == "/" {
			child = "/" + entA[i].Name
		}
		fiA, err := fs.Stat(child)
		if err != nil {
			t.Fatalf("final stat %s: %v", child, err)
		}
		fiB, err := model.Stat(child)
		if err != nil {
			t.Fatalf("final model stat %s: %v", child, err)
		}
		if fiA.IsDir() != fiB.IsDir() {
			t.Fatalf("final walk: %s type differs", child)
		}
		if fiA.IsDir() {
			compareTrees(t, fs, model, child)
			continue
		}
		if fiA.Size != fiB.Size {
			t.Fatalf("final walk: %s size %d vs %d", child, fiA.Size, fiB.Size)
		}
		bufA := make([]byte, fiA.Size)
		bufB := make([]byte, fiB.Size)
		if _, err := fs.Read(child, 0, bufA); err != nil {
			t.Fatalf("final read %s: %v", child, err)
		}
		if _, err := model.Read(child, 0, bufB); err != nil {
			t.Fatalf("final model read %s: %v", child, err)
		}
		if !bytes.Equal(bufA, bufB) {
			t.Fatalf("final walk: %s contents differ", child)
		}
	}
}
