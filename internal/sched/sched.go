// Package sched is a deterministic discrete-event scheduler over the
// simulated clock: an event heap keyed by sim.Time with stable
// tie-breaking, plus a seeded RNG for callers that need randomised
// arrivals. It is the substrate internal/server uses to interleave
// many closed-loop clients against one file system.
//
// The loop is single-threaded by construction — no goroutines, no
// channels, no wall clock — so a run is a pure function of the seed
// and the handlers' behaviour: two runs with the same seed produce
// the same event order, the same simulated timeline, and byte-for-byte
// identical traces. Events scheduled for the same instant fire in
// scheduling order (a monotone sequence number breaks ties), which is
// what makes the interleaving reproducible rather than map-order or
// heap-internals dependent.
package sched

import (
	"container/heap"
	"fmt"
	"math/rand"

	"lfs/internal/sim"
)

// EventID identifies a scheduled event for cancellation. The zero ID
// is never issued.
type EventID uint64

// event is one scheduled callback.
type event struct {
	at   sim.Time
	seq  uint64 // scheduling order, the tie-breaker
	name string
	fn   func()
	// cancelled events stay in the heap (removing from a heap's
	// middle is O(n)) but are discarded when they surface, without
	// advancing the clock or counting as processed.
	cancelled bool
}

// eventHeap orders events by (time, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() (out any) {
	old := *h
	n := len(old)
	out = old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return out
}

// Loop is a discrete-event loop bound to a simulated clock. It is not
// safe for concurrent use: handlers run on the caller's goroutine, in
// event order.
type Loop struct {
	clock *sim.Clock
	rng   *rand.Rand
	heap  eventHeap
	seq   uint64
	ran   int64
	// pending maps live (uncancelled, unrun) event IDs to their
	// events so Cancel is O(1); ncancelled counts tombstones still in
	// the heap so Len stays exact.
	pending    map[EventID]*event
	ncancelled int
	// running guards against re-entrant Step/Run from inside a
	// handler, which would pop events out from under the loop.
	running bool
}

// NewLoop returns an empty loop on the given clock with an RNG seeded
// from seed. The clock is shared with the systems the handlers drive
// (file systems, disks), so handler work advances the same timeline
// the heap is keyed by.
func NewLoop(clock *sim.Clock, seed int64) *Loop {
	if clock == nil {
		panic("sched: nil clock")
	}
	return &Loop{
		clock:   clock,
		rng:     rand.New(rand.NewSource(seed)),
		pending: make(map[EventID]*event),
	}
}

// Clock returns the loop's simulated clock.
func (l *Loop) Clock() *sim.Clock { return l.clock }

// RNG returns the loop's seeded random source. Handlers that need
// randomness must draw from it (or from their own seeded sources);
// anything else breaks same-seed reproducibility.
func (l *Loop) RNG() *rand.Rand { return l.rng }

// Len returns the number of pending (uncancelled) events.
func (l *Loop) Len() int { return len(l.heap) - l.ncancelled }

// Processed returns the number of events run so far.
func (l *Loop) Processed() int64 { return l.ran }

// At schedules fn at absolute simulated time t. Scheduling in the past
// is allowed — the event fires as soon as the loop reaches it, with
// the clock unchanged — because a handler may consume more simulated
// time than the gap to the next event (the server is busy; the event
// was queued). The name labels the event for debugging. The returned
// ID cancels the event via Cancel.
func (l *Loop) At(t sim.Time, name string, fn func()) EventID {
	if fn == nil {
		panic("sched: nil event func")
	}
	l.seq++
	ev := &event{at: t, seq: l.seq, name: name, fn: fn}
	heap.Push(&l.heap, ev)
	l.pending[EventID(l.seq)] = ev
	return EventID(l.seq)
}

// After schedules fn d after the current simulated time.
func (l *Loop) After(d sim.Duration, name string, fn func()) EventID {
	if d < 0 {
		panic(fmt.Sprintf("sched: negative delay %v", d))
	}
	return l.At(l.clock.Now().Add(d), name, fn)
}

// Cancel unschedules a pending event: it will not run, not advance
// the clock to its time, and not count as processed. Reports whether
// the event was still pending (false once it has run or was already
// cancelled). Cancelling from inside a handler is allowed, including
// self-cancellation of a later occurrence.
func (l *Loop) Cancel(id EventID) bool {
	ev, ok := l.pending[id]
	if !ok {
		return false
	}
	delete(l.pending, id)
	ev.cancelled = true
	ev.fn = nil
	l.ncancelled++
	return true
}

// purgeCancelled drops cancelled tombstones sitting at the front of
// the heap so the earliest live event is at the top.
func (l *Loop) purgeCancelled() {
	for len(l.heap) > 0 && l.heap[0].cancelled {
		heap.Pop(&l.heap)
		l.ncancelled--
	}
}

// Step runs the earliest pending event, advancing the clock to its
// scheduled time first (never backwards). It returns the event's name
// and true, or "" and false when no events are pending.
func (l *Loop) Step() (string, bool) {
	l.purgeCancelled()
	if len(l.heap) == 0 {
		return "", false
	}
	if l.running {
		panic("sched: re-entrant Step from inside a handler")
	}
	ev := heap.Pop(&l.heap).(*event)
	delete(l.pending, EventID(ev.seq))
	l.clock.AdvanceTo(ev.at)
	l.ran++
	l.running = true
	ev.fn()
	l.running = false
	return ev.name, true
}

// Run steps until no events remain and returns the number of events
// processed by this call. Handlers may schedule further events; the
// loop keeps going until the heap is empty.
func (l *Loop) Run() int64 {
	start := l.ran
	for {
		if _, ok := l.Step(); !ok {
			return l.ran - start
		}
	}
}

// RunUntil steps through every event scheduled at or before deadline
// and returns the number processed. Events a handler schedules inside
// the window are processed too; events beyond the deadline stay
// queued.
func (l *Loop) RunUntil(deadline sim.Time) int64 {
	start := l.ran
	for {
		l.purgeCancelled()
		if len(l.heap) == 0 || l.heap[0].at > deadline {
			return l.ran - start
		}
		l.Step()
	}
}
