package sched

import (
	"testing"

	"lfs/internal/sim"
)

// TestEventOrder verifies time ordering and stable tie-breaking: same
// instant fires in scheduling order.
func TestEventOrder(t *testing.T) {
	clock := sim.NewClock()
	l := NewLoop(clock, 1)
	var got []string
	rec := func(name string) func() { return func() { got = append(got, name) } }
	l.At(20, "c", rec("c"))
	l.At(10, "a1", rec("a1"))
	l.At(10, "a2", rec("a2"))
	l.At(15, "b", rec("b"))
	l.At(10, "a3", rec("a3"))
	if n := l.Run(); n != 5 {
		t.Fatalf("Run processed %d events, want 5", n)
	}
	want := []string{"a1", "a2", "a3", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event order %v, want %v", got, want)
		}
	}
	if clock.Now() != 20 {
		t.Errorf("clock at %v, want 20ns", clock.Now())
	}
}

// TestPastEventsRunWithoutRewind confirms an event scheduled before
// the current clock fires without moving the clock backwards.
func TestPastEventsRunWithoutRewind(t *testing.T) {
	clock := sim.NewClock()
	l := NewLoop(clock, 1)
	var at []sim.Time
	l.At(5, "slow", func() {
		clock.Advance(100) // handler consumes simulated time
		at = append(at, clock.Now())
	})
	l.At(10, "queued", func() { at = append(at, clock.Now()) })
	l.Run()
	if at[0] != 105 || at[1] != 105 {
		t.Errorf("handler times %v, want [105 105]", at)
	}
}

// TestHandlersScheduleMore verifies events scheduled from inside a
// handler are processed, and RunUntil respects its deadline.
func TestHandlersScheduleMore(t *testing.T) {
	clock := sim.NewClock()
	l := NewLoop(clock, 1)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			l.After(10, "tick", tick)
		}
	}
	l.At(0, "tick", tick)
	if n := l.RunUntil(25); n != 3 { // ticks at 0, 10, 20
		t.Fatalf("RunUntil(25) processed %d, want 3", n)
	}
	if l.Len() != 1 {
		t.Fatalf("pending events %d, want 1", l.Len())
	}
	l.Run()
	if count != 5 {
		t.Errorf("ran %d ticks, want 5", count)
	}
}

// TestDeterminism runs the same randomized schedule twice and demands
// identical event orders and timelines.
func TestDeterminism(t *testing.T) {
	run := func() ([]string, sim.Time) {
		clock := sim.NewClock()
		l := NewLoop(clock, 42)
		var names []string
		for i := 0; i < 3; i++ {
			id := byte('A' + i)
			var next func()
			n := 0
			next = func() {
				names = append(names, string(id))
				clock.Advance(sim.Duration(l.RNG().Int63n(1000)))
				n++
				if n < 20 {
					l.After(sim.Duration(l.RNG().Int63n(500)), "op", next)
				}
			}
			l.At(sim.Time(i), "op", next)
		}
		l.Run()
		return names, clock.Now()
	}
	n1, t1 := run()
	n2, t2 := run()
	if t1 != t2 {
		t.Fatalf("end times differ: %v vs %v", t1, t2)
	}
	if len(n1) != len(n2) {
		t.Fatalf("event counts differ: %d vs %d", len(n1), len(n2))
	}
	for i := range n1 {
		if n1[i] != n2[i] {
			t.Fatalf("event %d differs: %s vs %s", i, n1[i], n2[i])
		}
	}
}

// TestReentrantStepPanics guards the single-threaded contract.
func TestReentrantStepPanics(t *testing.T) {
	l := NewLoop(sim.NewClock(), 1)
	l.At(0, "outer", func() {
		defer func() {
			if recover() == nil {
				t.Error("re-entrant Step did not panic")
			}
		}()
		l.At(1, "inner", func() {})
		l.Step()
	})
	l.Run()
}

// TestCancel verifies cancelled events neither run nor advance the
// clock, and that Len/Processed exclude them.
func TestCancel(t *testing.T) {
	clock := sim.NewClock()
	l := NewLoop(clock, 1)
	var got []string
	rec := func(name string) func() { return func() { got = append(got, name) } }
	idA := l.At(10, "a", rec("a"))
	idB := l.At(20, "b", rec("b"))
	idC := l.At(30, "c", rec("c"))
	if !l.Cancel(idB) {
		t.Fatal("Cancel(b) = false, want true")
	}
	if l.Cancel(idB) {
		t.Fatal("second Cancel(b) = true, want false")
	}
	if l.Len() != 2 {
		t.Fatalf("Len() = %d after cancel, want 2", l.Len())
	}
	if n := l.Run(); n != 2 {
		t.Fatalf("Run processed %d events, want 2", n)
	}
	if len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Fatalf("ran %v, want [a c]", got)
	}
	if l.Cancel(idA) || l.Cancel(idC) {
		t.Fatal("Cancel of an already-run event = true, want false")
	}
	_ = idA
}

// TestCancelLastEventLeavesClock verifies the perturbation property
// the server's metrics pump relies on: cancelling the only remaining
// event means the loop drains without the clock reaching its time.
func TestCancelLastEventLeavesClock(t *testing.T) {
	clock := sim.NewClock()
	l := NewLoop(clock, 1)
	l.At(10, "op", func() {})
	id := l.At(1000, "pump", func() { t.Fatal("cancelled pump ran") })
	l.Step()
	if !l.Cancel(id) {
		t.Fatal("Cancel(pump) = false")
	}
	if n := l.Run(); n != 0 {
		t.Fatalf("Run processed %d events after cancel, want 0", n)
	}
	if clock.Now() != 10 {
		t.Fatalf("clock at %v, want 10 (cancelled event must not advance it)", clock.Now())
	}
	if l.Len() != 0 {
		t.Fatalf("Len() = %d, want 0", l.Len())
	}
}

// TestCancelFromHandler verifies a handler may cancel a later event,
// including via RunUntil's front-purge path.
func TestCancelFromHandler(t *testing.T) {
	clock := sim.NewClock()
	l := NewLoop(clock, 1)
	var ran []string
	var idLater EventID
	idLater = l.At(30, "later", func() { ran = append(ran, "later") })
	l.At(10, "canceller", func() {
		ran = append(ran, "canceller")
		l.Cancel(idLater)
	})
	if n := l.RunUntil(100); n != 1 {
		t.Fatalf("RunUntil processed %d events, want 1", n)
	}
	if len(ran) != 1 || ran[0] != "canceller" {
		t.Fatalf("ran %v, want [canceller]", ran)
	}
	if clock.Now() != 10 {
		t.Fatalf("clock at %v, want 10", clock.Now())
	}
}
