package sched

import (
	"testing"

	"lfs/internal/sim"
)

// TestEventOrder verifies time ordering and stable tie-breaking: same
// instant fires in scheduling order.
func TestEventOrder(t *testing.T) {
	clock := sim.NewClock()
	l := NewLoop(clock, 1)
	var got []string
	rec := func(name string) func() { return func() { got = append(got, name) } }
	l.At(20, "c", rec("c"))
	l.At(10, "a1", rec("a1"))
	l.At(10, "a2", rec("a2"))
	l.At(15, "b", rec("b"))
	l.At(10, "a3", rec("a3"))
	if n := l.Run(); n != 5 {
		t.Fatalf("Run processed %d events, want 5", n)
	}
	want := []string{"a1", "a2", "a3", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event order %v, want %v", got, want)
		}
	}
	if clock.Now() != 20 {
		t.Errorf("clock at %v, want 20ns", clock.Now())
	}
}

// TestPastEventsRunWithoutRewind confirms an event scheduled before
// the current clock fires without moving the clock backwards.
func TestPastEventsRunWithoutRewind(t *testing.T) {
	clock := sim.NewClock()
	l := NewLoop(clock, 1)
	var at []sim.Time
	l.At(5, "slow", func() {
		clock.Advance(100) // handler consumes simulated time
		at = append(at, clock.Now())
	})
	l.At(10, "queued", func() { at = append(at, clock.Now()) })
	l.Run()
	if at[0] != 105 || at[1] != 105 {
		t.Errorf("handler times %v, want [105 105]", at)
	}
}

// TestHandlersScheduleMore verifies events scheduled from inside a
// handler are processed, and RunUntil respects its deadline.
func TestHandlersScheduleMore(t *testing.T) {
	clock := sim.NewClock()
	l := NewLoop(clock, 1)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			l.After(10, "tick", tick)
		}
	}
	l.At(0, "tick", tick)
	if n := l.RunUntil(25); n != 3 { // ticks at 0, 10, 20
		t.Fatalf("RunUntil(25) processed %d, want 3", n)
	}
	if l.Len() != 1 {
		t.Fatalf("pending events %d, want 1", l.Len())
	}
	l.Run()
	if count != 5 {
		t.Errorf("ran %d ticks, want 5", count)
	}
}

// TestDeterminism runs the same randomized schedule twice and demands
// identical event orders and timelines.
func TestDeterminism(t *testing.T) {
	run := func() ([]string, sim.Time) {
		clock := sim.NewClock()
		l := NewLoop(clock, 42)
		var names []string
		for i := 0; i < 3; i++ {
			id := byte('A' + i)
			var next func()
			n := 0
			next = func() {
				names = append(names, string(id))
				clock.Advance(sim.Duration(l.RNG().Int63n(1000)))
				n++
				if n < 20 {
					l.After(sim.Duration(l.RNG().Int63n(500)), "op", next)
				}
			}
			l.At(sim.Time(i), "op", next)
		}
		l.Run()
		return names, clock.Now()
	}
	n1, t1 := run()
	n2, t2 := run()
	if t1 != t2 {
		t.Fatalf("end times differ: %v vs %v", t1, t2)
	}
	if len(n1) != len(n2) {
		t.Fatalf("event counts differ: %d vs %d", len(n1), len(n2))
	}
	for i := range n1 {
		if n1[i] != n2[i] {
			t.Fatalf("event %d differs: %s vs %s", i, n1[i], n2[i])
		}
	}
}

// TestReentrantStepPanics guards the single-threaded contract.
func TestReentrantStepPanics(t *testing.T) {
	l := NewLoop(sim.NewClock(), 1)
	l.At(0, "outer", func() {
		defer func() {
			if recover() == nil {
				t.Error("re-entrant Step did not panic")
			}
		}()
		l.At(1, "inner", func() {})
		l.Step()
	})
	l.Run()
}
