package layout

import "fmt"

// BlockPath describes how a logical block number maps onto an inode's
// pointer tree: directly, through the single indirect block, or
// through the double indirect block.
type BlockPath struct {
	// Level is 0 (direct), 1 (single indirect), or 2 (double
	// indirect).
	Level int
	// Direct is the index into Inode.Direct when Level == 0.
	Direct int
	// Outer is the index into the double indirect block when
	// Level == 2.
	Outer int
	// Inner is the index into the (innermost) indirect block when
	// Level >= 1.
	Inner int
}

// AddrsPerBlock returns how many DiskAddrs fit in one file system
// block.
func AddrsPerBlock(blockSize int) int { return blockSize / AddrSize }

// MaxFileBlocks returns the largest number of logical blocks a file
// may have under the given block size.
func MaxFileBlocks(blockSize int) int64 {
	apb := int64(AddrsPerBlock(blockSize))
	return NDirect + apb + apb*apb
}

// MapBlock computes the path to logical block lbn for the given block
// size. It fails when lbn exceeds what double indirection can address.
func MapBlock(lbn int64, blockSize int) (BlockPath, error) {
	if lbn < 0 {
		return BlockPath{}, fmt.Errorf("layout: negative logical block %d", lbn)
	}
	if lbn < NDirect {
		return BlockPath{Level: 0, Direct: int(lbn)}, nil
	}
	lbn -= NDirect
	apb := int64(AddrsPerBlock(blockSize))
	if lbn < apb {
		return BlockPath{Level: 1, Inner: int(lbn)}, nil
	}
	lbn -= apb
	if lbn < apb*apb {
		return BlockPath{Level: 2, Outer: int(lbn / apb), Inner: int(lbn % apb)}, nil
	}
	return BlockPath{}, fmt.Errorf("layout: logical block beyond double-indirect reach (max %d blocks)", MaxFileBlocks(blockSize))
}

// BlocksForSize returns the number of logical blocks needed to hold
// size bytes.
func BlocksForSize(size uint64, blockSize int) int64 {
	return int64((size + uint64(blockSize) - 1) / uint64(blockSize))
}
